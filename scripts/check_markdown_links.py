#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set (CI docs job).

Checks every inline link/image in the given markdown files:
  * relative paths must exist on disk (resolved against the file's dir);
  * #fragments pointing into a markdown file (own or linked) must match a
    heading anchor, using GitHub's anchor generation rules;
  * absolute URLs (http/https/mailto) are only syntax-checked, never
    fetched — CI must not flake on the network.

Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as file:line: message).

Usage: check_markdown_links.py FILE.md [FILE.md ...]
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor id transform (duplicate suffixes not
    modeled; none of our docs repeat a heading)."""
    text = heading.strip().replace("`", "")
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s", "-", text.lower())


def anchors_of(md_path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_anchor(m.group(1)))
    return anchors


def check_file(md_path: Path) -> list:
    failures = []
    in_fence = False
    for lineno, line in enumerate(
            md_path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            dest = md_path if not path_part else (
                md_path.parent / path_part)
            if not dest.exists():
                failures.append(
                    f"{md_path}:{lineno}: broken link: {target}")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest):
                    failures.append(
                        f"{md_path}:{lineno}: missing anchor "
                        f"#{fragment} in {dest}")
    return failures


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for name in argv[1:]:
        p = Path(name)
        if not p.exists():
            failures.append(f"{name}: file not found")
            continue
        failures.extend(check_file(p))
    for f in failures:
        print(f, file=sys.stderr)
    if not failures:
        print(f"link check: OK ({len(argv) - 1} files)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
