// Tests of the membership-recovery layer (crash/partition rejoin via
// state transfer): a joiner converges on the primary's exact committed
// sequence under concurrent load, a second failure during the transfer
// restarts cleanly (joiner death and donor death), rejoin is
// deterministic (same seed => identical commit logs), the certifier
// snapshot/restore roundtrip reproduces decisions bit-for-bit, and the
// per-site experiment report distinguishes crashed from rejoined sites.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "cert/certifier.hpp"
#include "cert/sharded_certifier.hpp"
#include "core/experiment.hpp"
#include "fault/fault_types.hpp"
#include "fault/scenarios.hpp"
#include "util/rng.hpp"

namespace dbsm::core {
namespace {

experiment_config recovery_config(std::uint64_t seed = 1234) {
  experiment_config cfg;
  cfg.sites = 3;
  cfg.cpus_per_site = 1;
  cfg.clients = 30;
  cfg.target_responses = 300;
  cfg.max_sim_time = seconds(400);
  cfg.seed = seed;
  cfg.enable_recovery = true;
  return cfg;
}

/// Crash site `victim` at `down`, recover it at `up`.
fault::scenario crash_then_recover(unsigned victim, sim_time down,
                                   sim_time up) {
  fault::scenario s("crash_then_recover");
  s.add(std::make_shared<fault::crash_fault>(
            fault::site_selector{fault::site_set{victim}}),
        down);
  s.add(std::make_shared<fault::recover_fault>(
            fault::site_selector{fault::site_set{victim}}),
        up);
  return s;
}

TEST(recovery, joiner_converges_on_exact_committed_sequence) {
  auto cfg = recovery_config();
  cfg.faults = crash_then_recover(2, seconds(8), seconds(12));

  const auto r = run_experiment(cfg);

  // The site came back: excluded view change + merge view change.
  ASSERT_EQ(r.sites.size(), 3u);
  EXPECT_EQ(r.sites[2].state, cluster::site_status::rejoined);
  EXPECT_GE(r.view_changes, 2u);

  // Safety holds over the full (transferred prefix + replay + live)
  // sequence of the rejoined site.
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  ASSERT_EQ(r.commit_logs.size(), 3u);  // all sites operational again

  // Exact convergence: element-for-element agreement with the longest
  // log, and the joiner lags by at most the in-flight window.
  const auto longest = std::max_element(
      r.commit_logs.begin(), r.commit_logs.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  const auto& joiner_log = r.commit_logs[2];
  ASSERT_LE(joiner_log.size(), longest->size());
  EXPECT_TRUE(std::equal(joiner_log.begin(), joiner_log.end(),
                         longest->begin()));
  EXPECT_GT(joiner_log.size() + 50, longest->size());

  // The system kept serving through crash and rejoin, and the rejoined
  // site's clients resumed and committed again.
  EXPECT_GT(r.stats.total_committed(), 100u);
  EXPECT_GT(r.sites[2].client_commits, 0u);
}

TEST(recovery, rejoined_site_commits_new_transactions) {
  auto cfg = recovery_config(777);
  cfg.target_responses = 400;
  cfg.faults = crash_then_recover(2, seconds(8), seconds(12));

  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.safety.ok) << r.safety.detail;
  ASSERT_EQ(r.sites[2].state, cluster::site_status::rejoined);
  // The joiner's log extends past the point where the crash-stop run
  // would have frozen it: it contains (nearly) the full sequence, so it
  // must be far longer than what was committed before the 8s crash.
  const std::uint64_t full = r.sites[0].committed_log;
  EXPECT_GT(r.sites[2].committed_log, full / 2);
  EXPECT_GT(r.duration, seconds(13));
}

TEST(recovery, double_failure_joiner_dies_during_recovery) {
  auto cfg = recovery_config(4321);
  fault::scenario s("double_failure");
  // Crash, start recovering, kill the site again inside the restart
  // window (settle + transfer), then recover once more: both the donor
  // and the joiner must unwind cleanly and the second attempt completes.
  s.add(std::make_shared<fault::crash_fault>(
            fault::site_selector{fault::site_set{2}}),
        seconds(8));
  s.add(std::make_shared<fault::recover_fault>(
            fault::site_selector{fault::site_set{2}}),
        seconds(12));
  s.add(std::make_shared<fault::crash_fault>(
            fault::site_selector{fault::site_set{2}}),
        seconds(12) + milliseconds(320));
  s.add(std::make_shared<fault::recover_fault>(
            fault::site_selector{fault::site_set{2}}),
        seconds(18));
  cfg.faults = s;
  cfg.target_responses = 400;

  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_EQ(r.sites[2].state, cluster::site_status::rejoined);
  EXPECT_GT(r.stats.total_committed(), 100u);
}

TEST(recovery, double_failure_donor_dies_during_recovery) {
  // 5 sites: site 4 recovers while site 0 — the coordinator donating the
  // state — crashes mid-protocol. The joiner times out and restarts the
  // attempt against the next coordinator (site 1), which serves it.
  auto cfg = recovery_config(99);
  cfg.sites = 5;
  cfg.clients = 40;
  cfg.target_responses = 500;
  fault::scenario s("donor_dies");
  s.add(std::make_shared<fault::crash_fault>(
            fault::site_selector{fault::site_set{4}}),
        seconds(8));
  s.add(std::make_shared<fault::recover_fault>(
            fault::site_selector{fault::site_set{4}}),
        seconds(12));
  s.add(std::make_shared<fault::crash_fault>(
            fault::site_selector{fault::site_set{0}}),
        seconds(12) + milliseconds(350));
  cfg.faults = s;

  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_EQ(r.sites[0].state, cluster::site_status::crashed);
  EXPECT_EQ(r.sites[4].state, cluster::site_status::rejoined);
  EXPECT_GT(r.sites[4].committed_log, 0u);
}

TEST(recovery, rejoin_completes_under_message_loss) {
  // Random loss overlapping the whole join (request, chunks, forwarded
  // deliveries, the commit handshake): every leg of the protocol must
  // retransmit — a forward lost around the merge install in particular
  // must be resent during the committing phase, or the join wedges.
  auto cfg = recovery_config(8888);
  cfg.target_responses = 0;
  cfg.max_sim_time = seconds(30);
  fault::scenario s("lossy_rejoin");
  s.add(std::make_shared<fault::crash_fault>(
            fault::site_selector{fault::site_set{2}}),
        seconds(8));
  s.add(std::make_shared<fault::recover_fault>(
            fault::site_selector{fault::site_set{2}}),
        seconds(12));
  s.add(fault::loss_fault::random(0.10), seconds(11), seconds(16));
  cfg.faults = s;

  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_EQ(r.sites[2].state, cluster::site_status::rejoined);
  EXPECT_GT(r.stats.total_committed(), 50u);
}

TEST(recovery, rejoin_is_deterministic) {
  auto cfg = recovery_config(2024);
  cfg.faults = crash_then_recover(2, seconds(8), seconds(12));

  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);

  EXPECT_TRUE(a.safety.ok);
  EXPECT_EQ(a.rejoined_sites(), 1u);
  EXPECT_EQ(a.rejoined_sites(), b.rejoined_sites());
  EXPECT_EQ(a.stats.total_committed(), b.stats.total_committed());
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.duration, b.duration);
  ASSERT_EQ(a.commit_logs.size(), b.commit_logs.size());
  for (std::size_t i = 0; i < a.commit_logs.size(); ++i)
    EXPECT_EQ(a.commit_logs[i], b.commit_logs[i]) << "site " << i;
}

TEST(recovery, partition_cut_heal_rejoin_campaign) {
  // The acceptance scenario: the minority site is cut, excluded, healed,
  // then rejoins via state transfer and commits new transactions, with
  // the §5.3 checker passing over the full sequence.
  auto cfg = recovery_config(7);
  fault::scenarios::params prm;
  prm.sites = cfg.sites;
  prm.onset = seconds(8);
  cfg.faults = fault::scenarios::partition_cut_heal_rejoin(prm);
  cfg.target_responses = 400;

  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_EQ(r.rejoined_sites(), 1u);
  EXPECT_EQ(r.sites[2].state, cluster::site_status::rejoined);
  EXPECT_GE(r.view_changes, 2u);  // exclusion + merge
  EXPECT_GT(r.stats.total_committed(), 100u);
}

TEST(recovery, crash_stop_site_report_without_recovery) {
  // The stats-bias fix: a crash-stop campaign reports the dead site as
  // crashed with its log frozen, so "aborted" and "site was gone" are
  // distinguishable.
  auto cfg = recovery_config(55);
  cfg.enable_recovery = false;
  fault::scenario s("crash_only");
  s.add(std::make_shared<fault::crash_fault>(
            fault::site_selector{fault::site_set{2}}),
        seconds(8));
  cfg.faults = s;

  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok);
  ASSERT_EQ(r.sites.size(), 3u);
  EXPECT_EQ(r.sites[0].state, cluster::site_status::operational);
  EXPECT_EQ(r.sites[2].state, cluster::site_status::crashed);
  EXPECT_EQ(r.rejoined_sites(), 0u);
  EXPECT_LT(r.sites[2].committed_log, r.sites[0].committed_log);
  // The crashed site served responses before the crash, none after; its
  // clients' responses stay below an operational site's.
  EXPECT_GT(r.sites[2].client_responses, 0u);
  EXPECT_LT(r.sites[2].client_responses, r.sites[0].client_responses);
}

// --- certifier snapshot/restore --------------------------------------

std::vector<db::item_id> random_set(util::rng& gen, std::size_t max_items) {
  std::vector<db::item_id> out;
  const std::size_t n =
      1 + static_cast<std::size_t>(gen.uniform_int(0, max_items - 1));
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<db::item_id>(gen.uniform_int(0, 499)));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TEST(recovery, certifier_snapshot_restore_reproduces_decisions) {
  cert::cert_config ccfg;
  ccfg.history_window = 64;  // small window: exercise eviction + backlog
  cert::certifier donor(ccfg);
  util::rng gen(321);

  auto feed = [&gen](cert::certifier& c, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      const std::uint64_t pos = c.position();
      const std::uint64_t begin =
          pos == 0 ? 0
                   : pos - static_cast<std::uint64_t>(
                               gen.uniform_int(0, std::min<std::uint64_t>(
                                                      pos, 80)));
      c.certify_update(begin, random_set(gen, 4), random_set(gen, 6));
    }
  };
  // Warm the donor past the window so the eviction backlog is non-empty.
  feed(donor, 500);

  util::buffer_writer w;
  donor.snapshot(w);
  util::buffer_reader r(w.take());
  cert::certifier joiner(ccfg);
  joiner.restore(r);

  EXPECT_EQ(joiner.position(), donor.position());
  EXPECT_EQ(joiner.oldest_retained(), donor.oldest_retained());
  EXPECT_EQ(joiner.history_size(), donor.history_size());
  EXPECT_EQ(joiner.index_size(), donor.index_size());
  EXPECT_EQ(joiner.evicted_backlog(), donor.evicted_backlog());

  // Identical decisions from here on: both replicas continue from the
  // same state through another randomized stretch.
  util::rng replay_gen(654);
  util::rng replay_gen2 = replay_gen;
  util::rng* gens[2] = {&replay_gen, &replay_gen2};
  cert::certifier* certs[2] = {&donor, &joiner};
  for (int i = 0; i < 400; ++i) {
    bool decisions[2];
    for (int k = 0; k < 2; ++k) {
      util::rng& g = *gens[k];
      cert::certifier& c = *certs[k];
      const std::uint64_t pos = c.position();
      const std::uint64_t begin =
          pos == 0 ? 0
                   : pos - static_cast<std::uint64_t>(
                               g.uniform_int(0, std::min<std::uint64_t>(
                                                    pos, 80)));
      decisions[k] =
          c.certify_update(begin, random_set(g, 4), random_set(g, 6));
    }
    ASSERT_EQ(decisions[0], decisions[1]) << "diverged at step " << i;
  }
  EXPECT_EQ(donor.commits(), joiner.commits());
  EXPECT_EQ(donor.aborts(), joiner.aborts());
}

// A recovery state transfer must be valid between ends that disagree on
// cert_config::shards (and between the sharded and single-index
// certifiers): the snapshot carries canonical full-set entries that each
// end re-partitions locally (cert/index_shard.hpp).
TEST(recovery, sharded_snapshot_is_shard_count_agnostic) {
  cert::cert_config donor_cfg;
  donor_cfg.history_window = 64;  // exercise per-shard eviction rings
  donor_cfg.shards = 4;
  donor_cfg.certify_threads = 2;
  cert::sharded_certifier donor(donor_cfg);
  util::rng gen(432);

  auto random_step = [](auto& c, util::rng& g,
                        auto make_set) -> bool {
    const std::uint64_t pos = c.position();
    const std::uint64_t begin =
        pos == 0 ? 0
                 : pos - static_cast<std::uint64_t>(
                             g.uniform_int(0, std::min<std::uint64_t>(
                                                  pos, 80)));
    return c.certify_update(begin, make_set(g, 4), make_set(g, 6));
  };
  // Warm the donor past the window so every shard ring is non-empty.
  for (int i = 0; i < 500; ++i) random_step(donor, gen, random_set);

  util::buffer_writer w;
  donor.snapshot(w);
  const auto blob = w.take();

  // Restore at a different shard count, and into the single-index
  // certifier, from the same bytes.
  cert::cert_config joiner_cfg = donor_cfg;
  joiner_cfg.shards = 2;
  joiner_cfg.certify_threads = 1;
  cert::sharded_certifier joiner(joiner_cfg);
  {
    util::buffer_reader r(blob);
    joiner.restore(r);
  }
  cert::certifier single(
      [&] {
        cert::cert_config c = donor_cfg;
        c.shards = 1;
        c.certify_threads = 1;
        return c;
      }());
  {
    util::buffer_reader r(blob);
    single.restore(r);
  }

  EXPECT_EQ(joiner.position(), donor.position());
  EXPECT_EQ(joiner.oldest_retained(), donor.oldest_retained());
  EXPECT_EQ(joiner.history_size(), donor.history_size());
  // Index *contents* (id -> last writer) are partition-invariant, so the
  // summed sizes agree across shard counts.
  EXPECT_EQ(joiner.index_size(), donor.index_size());
  EXPECT_EQ(single.index_size(), donor.index_size());

  // All three continue decision-for-decision from the transferred state
  // through another randomized stretch.
  util::rng g0(765), g1 = g0, g2 = g0;
  for (int i = 0; i < 400; ++i) {
    const bool a = random_step(donor, g0, random_set);
    const bool b = random_step(joiner, g1, random_set);
    const bool c = random_step(single, g2, random_set);
    ASSERT_EQ(a, b) << "joiner diverged at step " << i;
    ASSERT_EQ(a, c) << "single-index diverged at step " << i;
  }
  EXPECT_EQ(donor.commits(), joiner.commits());
  EXPECT_EQ(donor.commits(), single.commits());
  EXPECT_EQ(donor.aborts(), joiner.aborts());
}

}  // namespace
}  // namespace dbsm::core
