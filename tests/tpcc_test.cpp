// Tests of the TPC-C workload generator and client model (§3.2).
#include <gtest/gtest.h>

#include <map>

#include "cert/rwset.hpp"
#include "sim/simulator.hpp"
#include "tpcc/schema.hpp"
#include "tpcc/tpcc_workload.hpp"
#include "tpcc/workload.hpp"
#include "workload/client.hpp"

namespace dbsm::tpcc {
namespace {

workload make_load(unsigned warehouses = 5, std::uint64_t seed = 11) {
  return workload(workload_profile::pentium3_1ghz(), warehouses,
                  util::rng(seed));
}

TEST(schema, scaling_rule) {
  EXPECT_EQ(warehouses_for_clients(10), 1u);
  EXPECT_EQ(warehouses_for_clients(11), 2u);
  EXPECT_EQ(warehouses_for_clients(2000), 200u);
}

TEST(schema, tuple_sizes_span_paper_range) {
  // "each ranging from 8 to 655 bytes" (§3.2).
  EXPECT_EQ(tuple_bytes(table::neworder), 8u);
  EXPECT_EQ(tuple_bytes(table::customer), 655u);
}

TEST(workload, mix_fractions) {
  workload load = make_load(10, 3);
  std::map<db::txn_class, int> count;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto req = load.next(static_cast<std::uint32_t>(i % 10),
                         static_cast<std::uint32_t>(i % 10));
    ++count[req.cls];
  }
  EXPECT_NEAR(count[c_neworder] / double(n), 0.44, 0.02);
  EXPECT_NEAR((count[c_payment_long] + count[c_payment_short]) / double(n),
              0.44, 0.02);
  // 60/40 long/short split of payment.
  EXPECT_NEAR(count[c_payment_long] /
                  double(count[c_payment_long] + count[c_payment_short]),
              0.60, 0.03);
  EXPECT_NEAR(count[c_delivery] / double(n), 0.04, 0.01);
  EXPECT_NEAR(count[c_stocklevel] / double(n), 0.04, 0.01);
}

TEST(workload, neworder_shape) {
  workload load = make_load();
  auto req = load.make(c_neworder, 2, 0);
  EXPECT_FALSE(req.read_only());
  // Writes district (next_o_id) and 5..15 stock rows plus inserts.
  unsigned stock_writes = 0, district_writes = 0, orderline_writes = 0;
  for (db::item_id it : req.write_set) {
    if (db::is_granule(it)) continue;
    switch (static_cast<table>(db::item_table(it))) {
      case table::stock: ++stock_writes; break;
      case table::district: ++district_writes; break;
      case table::orderline: ++orderline_writes; break;
      default: break;
    }
  }
  EXPECT_EQ(district_writes, 1u);
  EXPECT_GE(stock_writes, 5u);
  EXPECT_LE(stock_writes, 15u);
  EXPECT_EQ(orderline_writes, stock_writes);
  // Sets are normalized.
  EXPECT_TRUE(std::is_sorted(req.read_set.begin(), req.read_set.end()));
  EXPECT_TRUE(std::is_sorted(req.write_set.begin(), req.write_set.end()));
  // The warehouse tuple is read but NOT written by neworder.
  const db::item_id wh = tuple_id(table::warehouse, 2, 0, 0);
  EXPECT_TRUE(std::binary_search(req.read_set.begin(), req.read_set.end(),
                                 wh));
  EXPECT_FALSE(std::binary_search(req.write_set.begin(),
                                  req.write_set.end(), wh));
}

TEST(workload, payment_writes_warehouse_hotspot) {
  workload load = make_load();
  auto req = load.make(c_payment_short, 3, 0);
  const db::item_id wh = tuple_id(table::warehouse, 3, 0, 0);
  EXPECT_TRUE(std::binary_search(req.write_set.begin(), req.write_set.end(),
                                 wh));
  // Two payments at the same warehouse conflict write-write.
  auto req2 = load.make(c_payment_short, 3, 0);
  EXPECT_TRUE(cert::write_write_conflicts(req.write_set, req2.write_set));
}

TEST(workload, by_name_scan_reads_customer_granule) {
  workload load = make_load();
  auto pay = load.make(c_payment_long, 1, 0);
  bool has_granule = false;
  for (db::item_id it : pay.read_set) {
    if (db::is_granule(it) &&
        db::item_table(it) == static_cast<unsigned>(table::customer))
      has_granule = true;
  }
  EXPECT_TRUE(has_granule);
  // The granule read conflicts with any payment writing a customer of the
  // same warehouse — but only through the read set, not write-write.
  auto pay2 = load.make(c_payment_short, 1, 0);
  EXPECT_TRUE(cert::intersects(pay.read_set, pay2.write_set));
}

TEST(workload, orderstatus_long_vs_short_conflict_profile) {
  workload load = make_load(1, 5);
  auto pay = load.make(c_payment_short, 0, 0);
  int long_conflicts = 0, short_conflicts = 0;
  for (int i = 0; i < 200; ++i) {
    auto os_long = load.make(c_orderstatus_long, 0, 0);
    auto os_short = load.make(c_orderstatus_short, 0, 0);
    EXPECT_TRUE(os_long.read_only());
    EXPECT_TRUE(os_short.read_only());
    if (cert::intersects(os_long.read_set, pay.write_set)) ++long_conflicts;
    if (cert::intersects(os_short.read_set, pay.write_set))
      ++short_conflicts;
  }
  // The by-name variant always sees the warehouse-level customer granule;
  // the by-id variant almost never hits the same customer tuple.
  EXPECT_EQ(long_conflicts, 200);
  EXPECT_LT(short_conflicts, 10);
}

TEST(workload, stocklevel_point_reads_no_escalation) {
  workload load = make_load(2, 6);
  auto sl = load.make(c_stocklevel, 0, 0);
  EXPECT_TRUE(sl.read_only());
  // Indexed lookups stay at tuple granularity: no granule ids at all, so
  // stocklevel can only conflict on the exact tuples it read — which is
  // why Table 1 reports 0.00% for it.
  for (db::item_id it : sl.read_set) {
    EXPECT_FALSE(db::is_granule(it));
  }
  // A neworder in a different warehouse can never intersect it.
  auto no_other = load.make(c_neworder, 1, 0);
  EXPECT_FALSE(cert::intersects(sl.read_set, no_other.write_set));
}

TEST(workload, concurrent_deliveries_target_identical_rows) {
  // The oldest undelivered order is shared database state: two deliveries
  // generated at the same instant (possibly at different sites) pick the
  // same rows and conflict write-write; later ones move on.
  workload load_a = make_load(5, 30);
  workload load_b = make_load(5, 31);  // different site (different rng)
  load_a.set_now(seconds(100));
  load_b.set_now(seconds(100));
  auto d1 = load_a.make(c_delivery, 4, 0);
  auto d2 = load_b.make(c_delivery, 4, 0);
  EXPECT_TRUE(cert::write_write_conflicts(d1.write_set, d2.write_set));
  EXPECT_FALSE(d1.read_only());
  EXPECT_GT(d1.update_bytes, 1000u);

  // Far enough apart in time, the queue head has advanced (the expected
  // delivery rate is one order per district every ~290 s).
  load_b.set_now(seconds(800));
  auto d3 = load_b.make(c_delivery, 4, 0);
  EXPECT_FALSE(cert::write_write_conflicts(d1.write_set, d3.write_set));
}

TEST(workload, order_ids_advance_per_district) {
  workload load = make_load();
  auto a = load.make(c_neworder, 0, 0);
  auto b = load.make(c_neworder, 0, 0);
  // Orders table rows must be fresh each time (no accidental write-write
  // conflicts between unrelated neworders of different districts).
  std::vector<db::item_id> a_orders, b_orders;
  for (db::item_id it : a.write_set)
    if (!db::is_granule(it) &&
        db::item_table(it) == static_cast<unsigned>(table::orders))
      a_orders.push_back(it);
  for (db::item_id it : b.write_set)
    if (!db::is_granule(it) &&
        db::item_table(it) == static_cast<unsigned>(table::orders))
      b_orders.push_back(it);
  ASSERT_EQ(a_orders.size(), 1u);
  ASSERT_EQ(b_orders.size(), 1u);
  EXPECT_NE(a_orders[0], b_orders[0]);
}

TEST(workload, ops_script_shape) {
  workload load = make_load();
  auto req = load.make(c_neworder, 0, 0);
  unsigned fetches = 0, procs = 0;
  sim_duration total_cpu = 0;
  for (const auto& op : req.ops) {
    if (op.k == db::operation::kind::fetch) ++fetches;
    if (op.k == db::operation::kind::process) {
      ++procs;
      total_cpu += op.cpu;
    }
  }
  EXPECT_EQ(fetches, 1u);
  EXPECT_EQ(procs, load.profile().process_slices);
  EXPECT_GT(total_cpu, milliseconds(1));
  EXPECT_LT(total_cpu, milliseconds(500));
}

TEST(workload, nurand_within_bounds) {
  workload load = make_load();
  for (int i = 0; i < 10000; ++i) {
    const auto v = load.nurand(1023, 0, 2999);
    EXPECT_LT(v, 3000u);
  }
}

TEST(client, closed_loop_issue_reply_think) {
  sim::simulator s;
  tpcc_workload wl(workload_profile::pentium3_1ghz());
  wl.prepare(1, 10, util::rng(9));
  std::vector<sim_time> submits;
  int inflight = 0;
  int max_inflight = 0;
  core::client::submit_fn submit =
      [&](db::txn_request, std::function<void(db::txn_outcome)> done) {
    ++inflight;
    max_inflight = std::max(max_inflight, inflight);
    submits.push_back(s.now());
    s.schedule_after(milliseconds(20), [&, done] {
      --inflight;
      done(db::txn_outcome::committed);
    });
  };
  int reported = 0;
  core::client c(s, wl.make_source({0, 0, 10}, util::rng(2)), submit,
                 [&](const core::client::result& r) {
                   ++reported;
                   EXPECT_EQ(r.outcome, db::txn_outcome::committed);
                   EXPECT_EQ(r.finished - r.submitted, milliseconds(20));
                 },
                 util::rng(4));
  c.start(0);
  s.run_until(seconds(120));
  EXPECT_GE(reported, 3);
  EXPECT_EQ(max_inflight, 1);  // single-threaded client process
  // Think time separates consecutive submissions.
  for (std::size_t i = 1; i < submits.size(); ++i)
    EXPECT_GT(submits[i] - submits[i - 1], milliseconds(20));
}

TEST(client, stop_ceases_issuing) {
  sim::simulator s;
  tpcc_workload wl(workload_profile::pentium3_1ghz());
  wl.prepare(1, 10, util::rng(10));
  int submitted = 0;
  core::client::submit_fn submit =
      [&](db::txn_request, std::function<void(db::txn_outcome)> done) {
    ++submitted;
    s.schedule_after(milliseconds(1),
                     [done] { done(db::txn_outcome::committed); });
  };
  core::client c(s, wl.make_source({0, 0, 10}, util::rng(2)), submit, {},
                 util::rng(4));
  c.start(0);
  s.schedule_at(seconds(30), [&] { c.stop(); });
  s.run_until(seconds(300));
  const int at_stop = submitted;
  s.run_until(seconds(600));
  EXPECT_EQ(submitted, at_stop);
}

}  // namespace
}  // namespace dbsm::tpcc
