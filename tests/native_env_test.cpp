// Tests of the native env bridge (§2.3): the same protocol code running on
// real UDP sockets and OS timers, on loopback.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "csrt/native_env.hpp"
#include "gcs/group.hpp"

namespace dbsm::csrt {
namespace {

std::uint16_t test_port_base(int offset) {
  // Spread across test cases to avoid rebind races.
  return static_cast<std::uint16_t>(29000 + offset * 16);
}

TEST(native_env, timers_fire_in_order) {
  native_env::config cfg;
  cfg.self = 0;
  cfg.peers = {0};
  cfg.base_port = test_port_base(0);
  native_env env(cfg, util::rng(1));

  std::vector<int> order;
  env.post([&] {
    env.set_timer(milliseconds(30), [&] { order.push_back(2); });
    env.set_timer(milliseconds(10), [&] { order.push_back(1); });
    env.set_timer(milliseconds(60), [&] {
      order.push_back(3);
      env.stop();
    });
  });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(native_env, timer_cancel) {
  native_env::config cfg;
  cfg.self = 0;
  cfg.peers = {0};
  cfg.base_port = test_port_base(1);
  native_env env(cfg, util::rng(1));
  bool fired = false;
  env.post([&] {
    const timer_id id = env.set_timer(milliseconds(20), [&] { fired = true; });
    EXPECT_TRUE(env.cancel_timer(id));
    env.set_timer(milliseconds(50), [&] { env.stop(); });
  });
  env.run();
  EXPECT_FALSE(fired);
}

TEST(native_env, loopback_datagram_between_two_nodes) {
  native_env::config c0, c1;
  c0.self = 0;
  c1.self = 1;
  c0.peers = c1.peers = {0, 1};
  c0.base_port = c1.base_port = test_port_base(2);

  native_env e0(c0, util::rng(1));
  native_env e1(c1, util::rng(2));

  std::atomic<int> got{0};
  e1.set_handler([&](node_id from, util::shared_bytes msg) {
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(msg->size(), 5u);
    got.fetch_add(1);
    e1.stop();
  });
  std::thread t1([&] { e1.run(); });

  e0.post([&] {
    util::buffer_writer w;
    w.put_padding(5);
    e0.send(1, w.take());
    e0.set_timer(milliseconds(400), [&] { e0.stop(); });
  });
  e0.run();
  t1.join();
  EXPECT_EQ(got.load(), 1);
}

TEST(native_env, now_is_monotonic) {
  native_env::config cfg;
  cfg.self = 0;
  cfg.peers = {0};
  cfg.base_port = test_port_base(3);
  native_env env(cfg, util::rng(1));
  const sim_time a = env.now();
  const sim_time b = env.now();
  EXPECT_GE(b, a);
}

// The flagship §2.3 property: the identical group-communication stack runs
// over the native bridge, unchanged.
TEST(native_env, group_total_order_over_real_sockets) {
  constexpr unsigned n = 3;
  const std::uint16_t base = test_port_base(4);

  std::vector<std::unique_ptr<native_env>> envs;
  std::vector<std::unique_ptr<gcs::group>> groups;
  std::vector<std::vector<std::string>> delivered(n);
  std::atomic<unsigned> total_delivered{0};

  for (unsigned i = 0; i < n; ++i) {
    native_env::config cfg;
    cfg.self = i;
    cfg.peers = {0, 1, 2};
    cfg.base_port = base;
    envs.push_back(std::make_unique<native_env>(cfg, util::rng(50 + i)));
    gcs::group_config gcfg;
    gcfg.members = {0, 1, 2};
    groups.push_back(std::make_unique<gcs::group>(*envs[i], gcfg));
    groups[i]->set_deliver([&, i](node_id, std::uint64_t,
                                  util::shared_bytes payload) {
      delivered[i].emplace_back(payload->begin(), payload->end());
      total_delivered.fetch_add(1);
    });
  }

  std::vector<std::thread> threads;
  for (unsigned i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      groups[i]->start();
      envs[i]->run();
    });
  }

  constexpr unsigned msgs_per_node = 5;
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned k = 0; k < msgs_per_node; ++k) {
      const std::string text =
          "n" + std::to_string(i) + "m" + std::to_string(k);
      auto payload = std::make_shared<util::bytes>(text.begin(), text.end());
      groups[i]->submit(payload);
    }
  }

  // Wait (bounded) for all deliveries everywhere.
  for (int spin = 0; spin < 400; ++spin) {
    if (total_delivered.load() >= n * n * msgs_per_node) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& e : envs) e->stop();
  for (auto& t : threads) t.join();

  ASSERT_EQ(delivered[0].size(), n * msgs_per_node);
  for (unsigned i = 1; i < n; ++i) {
    EXPECT_EQ(delivered[i], delivered[0]) << "total order differs at node "
                                          << i;
  }
}

}  // namespace
}  // namespace dbsm::csrt
