// Unit tests for the discrete-event kernel: ordering, determinism,
// cancellation, run modes.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace dbsm::sim {
namespace {

TEST(simulator, executes_in_time_order) {
  simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(simulator, fifo_within_same_instant) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(5, [&, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(simulator, events_can_schedule_events) {
  simulator s;
  int fired = 0;
  s.schedule_at(1, [&] {
    s.schedule_after(5, [&] {
      ++fired;
      EXPECT_EQ(s.now(), 6);
    });
  });
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(simulator, cancel_prevents_execution) {
  simulator s;
  bool ran = false;
  const event_id id = s.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double-cancel reports failure
  s.run();
  EXPECT_FALSE(ran);
}

TEST(simulator, cancel_after_fire_returns_false) {
  simulator s;
  const event_id id = s.schedule_at(1, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(simulator, run_until_advances_to_limit) {
  simulator s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(100, [&] { ++fired; });
  const std::size_t n = s.run_until(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50);
  s.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(simulator, run_until_executes_events_at_limit) {
  simulator s;
  bool ran = false;
  s.schedule_at(50, [&] { ran = true; });
  s.run_until(50);
  EXPECT_TRUE(ran);
}

TEST(simulator, stop_interrupts_run) {
  simulator s;
  int fired = 0;
  s.schedule_at(1, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(simulator, run_events_bounded) {
  simulator s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(s.run_events(4), 4u);
  EXPECT_EQ(fired, 4);
}

TEST(simulator, scheduling_into_past_throws) {
  simulator s;
  s.schedule_at(10, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5, [] {}), invariant_violation);
  EXPECT_THROW(s.schedule_after(-1, [] {}), invariant_violation);
}

TEST(simulator, pending_counts_live_events) {
  simulator s;
  const event_id a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(simulator, heavy_interleaving_is_deterministic) {
  auto run_once = [] {
    simulator s;
    std::vector<std::int64_t> log;
    for (int i = 0; i < 50; ++i) {
      s.schedule_at(i % 7, [&s, &log, i] {
        log.push_back(s.now() * 1000 + i);
        if (i % 3 == 0) {
          s.schedule_after(i, [&s, &log] { log.push_back(s.now()); });
        }
      });
    }
    s.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dbsm::sim
