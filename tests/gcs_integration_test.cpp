// Integration tests of the full GCS stack (reliable multicast + stability
// + total order + membership) over the simulated LAN: atomic-multicast
// semantics under no faults, message loss, sender blocking, and crashes
// with view changes.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "csrt/sim_env.hpp"
#include "gcs/group.hpp"
#include "net/lan.hpp"
#include "net/loss_model.hpp"
#include "net/udp_transport.hpp"
#include "sim/simulator.hpp"

namespace dbsm::gcs {
namespace {

struct delivery {
  node_id sender;
  std::uint64_t seq;
  std::string text;
};

struct group_harness {
  sim::simulator s;
  std::unique_ptr<net::lan> lan;
  std::vector<std::unique_ptr<csrt::cpu_pool>> cpus;
  std::vector<std::unique_ptr<net::udp_transport>> transports;
  std::vector<std::unique_ptr<csrt::sim_env>> envs;
  std::vector<std::unique_ptr<group>> groups;
  std::vector<std::vector<delivery>> delivered;
  std::vector<std::vector<std::uint32_t>> views;

  explicit group_harness(unsigned n, group_config cfg = {}) {
    lan = std::make_unique<net::lan>(s, net::lan_config{}, util::rng(7));
    std::vector<node_id> members;
    for (unsigned i = 0; i < n; ++i) members.push_back(lan->add_host());
    cfg.members = members;
    delivered.resize(n);
    views.resize(n);
    for (unsigned i = 0; i < n; ++i) {
      cpus.push_back(std::make_unique<csrt::cpu_pool>(s, 1));
      transports.push_back(std::make_unique<net::udp_transport>(*lan, i));
      csrt::sim_env::config ecfg;
      ecfg.self = i;
      ecfg.peers = members;
      envs.push_back(std::make_unique<csrt::sim_env>(
          s, *cpus.back(), *transports.back(), ecfg,
          util::rng(100 + i)));
      transports.back()->attach(*envs.back());
      groups.push_back(std::make_unique<group>(*envs.back(), cfg));
      groups.back()->set_deliver([this, i](node_id sender,
                                           std::uint64_t seq,
                                           util::shared_bytes payload) {
        delivered[i].push_back(
            {sender, seq,
             std::string(payload->begin(), payload->end())});
      });
      groups.back()->set_view_handler(
          [this, i](const view& v) { views[i].push_back(v.id); });
    }
  }

  void start() {
    for (auto& g : groups) g->start();
  }

  void send(unsigned from, const std::string& text) {
    auto data = std::make_shared<util::bytes>(text.begin(), text.end());
    groups[from]->submit(data);
  }

  /// Checks the atomic multicast contract on what was delivered.
  void expect_consistent(unsigned expected_count) {
    for (unsigned i = 0; i < delivered.size(); ++i) {
      ASSERT_EQ(delivered[i].size(), expected_count) << "node " << i;
      for (unsigned k = 0; k < delivered[i].size(); ++k) {
        EXPECT_EQ(delivered[i][k].seq, k + 1) << "node " << i;
        EXPECT_EQ(delivered[i][k].sender, delivered[0][k].sender);
        EXPECT_EQ(delivered[i][k].text, delivered[0][k].text);
      }
    }
  }
};

TEST(gcs_integration, total_order_basic) {
  group_harness h(3);
  h.start();
  h.s.schedule_at(milliseconds(10), [&] {
    h.send(0, "a0");
    h.send(1, "b0");
    h.send(2, "c0");
  });
  h.s.schedule_at(milliseconds(12), [&] {
    h.send(1, "b1");
    h.send(0, "a1");
  });
  h.s.run_until(seconds(2));
  h.expect_consistent(5);
}

TEST(gcs_integration, large_messages_fragment_and_reassemble) {
  group_harness h(3);
  h.start();
  std::string big(5000, 'x');
  big[0] = 'H';
  big[4999] = 'T';
  h.s.schedule_at(milliseconds(10), [&] { h.send(0, big); });
  h.s.run_until(seconds(2));
  for (unsigned i = 0; i < 3; ++i) {
    ASSERT_EQ(h.delivered[i].size(), 1u);
    EXPECT_EQ(h.delivered[i][0].text.size(), 5000u);
    EXPECT_EQ(h.delivered[i][0].text[0], 'H');
    EXPECT_EQ(h.delivered[i][0].text[4999], 'T');
  }
}

TEST(gcs_integration, survives_random_loss) {
  group_harness h(3);
  for (unsigned i = 0; i < 3; ++i)
    h.lan->set_rx_loss(i, net::random_loss(0.10));
  h.start();
  const unsigned burst = 60;
  for (unsigned k = 0; k < burst; ++k) {
    h.s.schedule_at(milliseconds(10 + k * 3), [&h, k] {
      h.send(k % 3, "msg" + std::to_string(k));
    });
  }
  h.s.run_until(seconds(20));
  h.expect_consistent(burst);
  // Recovery machinery actually engaged.
  std::uint64_t naks = 0;
  for (auto& g : h.groups) naks += g->rmcast_stats().naks_sent;
  EXPECT_GT(naks, 0u);
}

TEST(gcs_integration, stability_garbage_collects) {
  group_harness h(3);
  h.start();
  for (unsigned k = 0; k < 20; ++k) {
    h.s.schedule_at(milliseconds(10 + k), [&h, k] { h.send(0, "x"); });
  }
  h.s.run_until(seconds(3));
  for (auto& g : h.groups) {
    EXPECT_GT(g->stability_rounds(), 0u);
  }
  // After stability catches up, the sender's quota drains back to zero.
  EXPECT_EQ(h.groups[0]->quota_used(), 0u);
}

TEST(gcs_integration, tiny_buffer_blocks_sender_then_recovers) {
  group_config cfg;
  cfg.total_buffer_msgs = 3 * 2;      // share of 2 datagrams per member
  cfg.total_buffer_bytes = 3 * 1200;  // share of ~1.2 KB per member
  group_harness h(3, cfg);
  h.start();
  std::string payload(900, 'p');
  for (unsigned k = 0; k < 12; ++k) {
    h.s.schedule_at(milliseconds(10), [&h, payload] { h.send(0, payload); });
  }
  h.s.run_until(seconds(10));
  h.expect_consistent(12);
  EXPECT_GT(h.groups[0]->rmcast_stats().blocked_episodes, 0u);
  EXPECT_GT(h.groups[0]->rmcast_stats().blocked_time, 0);
}

TEST(gcs_integration, crash_triggers_view_change_and_sequencer_handoff) {
  group_harness h(3);
  h.start();
  // Node 0 is the initial sequencer. Traffic, then crash it.
  for (unsigned k = 0; k < 10; ++k) {
    h.s.schedule_at(milliseconds(10 + k * 2), [&h, k] {
      h.send(k % 3, "pre" + std::to_string(k));
    });
  }
  h.s.schedule_at(milliseconds(100), [&] { h.lan->isolate(0); });
  // Post-crash traffic from survivors.
  for (unsigned k = 0; k < 6; ++k) {
    h.s.schedule_at(milliseconds(800 + k * 5), [&h, k] {
      h.send(1 + (k % 2), "post" + std::to_string(k));
    });
  }
  h.s.run_until(seconds(8));

  // Survivors installed a view excluding node 0 and elected node 1.
  for (unsigned i = 1; i <= 2; ++i) {
    ASSERT_FALSE(h.views[i].empty()) << "node " << i;
    EXPECT_EQ(h.groups[i]->current_view().members,
              (std::vector<node_id>{1, 2}));
    EXPECT_EQ(h.groups[i]->current_view().sequencer(), 1u);
  }
  // Survivors delivered identical sequences including post-crash traffic.
  ASSERT_EQ(h.delivered[1].size(), h.delivered[2].size());
  for (unsigned k = 0; k < h.delivered[1].size(); ++k) {
    EXPECT_EQ(h.delivered[1][k].text, h.delivered[2][k].text);
    EXPECT_EQ(h.delivered[1][k].seq, h.delivered[2][k].seq);
  }
  // All post-crash messages made it.
  unsigned post = 0;
  for (const auto& d : h.delivered[1])
    if (d.text.rfind("post", 0) == 0) ++post;
  EXPECT_EQ(post, 6u);
}

TEST(gcs_integration, crash_during_loss_stays_consistent) {
  group_harness h(4);
  for (unsigned i = 0; i < 4; ++i)
    h.lan->set_rx_loss(i, net::random_loss(0.05));
  h.start();
  for (unsigned k = 0; k < 40; ++k) {
    h.s.schedule_at(milliseconds(10 + k * 4), [&h, k] {
      h.send(k % 4, "m" + std::to_string(k));
    });
  }
  h.s.schedule_at(milliseconds(90), [&] { h.lan->isolate(2); });
  h.s.run_until(seconds(20));

  // Consistency among survivors 0,1,3: same prefix (all delivered the
  // same total order; lengths can only differ by in-flight tails, but by
  // 20s everything should be flushed).
  const auto& ref = h.delivered[0];
  for (unsigned i : {1u, 3u}) {
    ASSERT_EQ(h.delivered[i].size(), ref.size()) << "node " << i;
    for (unsigned k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(h.delivered[i][k].text, ref[k].text);
    }
  }
}

TEST(gcs_integration, deterministic_runs) {
  auto run = [] {
    group_harness h(3);
    h.start();
    for (unsigned k = 0; k < 15; ++k) {
      h.s.schedule_at(milliseconds(10 + k), [&h, k] {
        h.send(k % 3, "d" + std::to_string(k));
      });
    }
    h.s.run_until(seconds(2));
    std::string log;
    for (const auto& d : h.delivered[0]) log += d.text + ";";
    return log;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dbsm::gcs
