// Tests of the centralized simulation runtime: CPU pool semantics (Fig 1),
// real-job priority and preemption, profiler, and the sim_env bridge
// (clock-stop technique, send/timer offsets from real code).
#include <gtest/gtest.h>

#include <vector>

#include "csrt/cpu.hpp"
#include "csrt/profiler.hpp"
#include "csrt/sim_env.hpp"
#include "sim/simulator.hpp"

namespace dbsm::csrt {
namespace {

TEST(cpu_pool, simulated_jobs_serialize_on_one_cpu) {
  sim::simulator s;
  cpu_pool cpu(s, 1);
  std::vector<sim_time> done;
  cpu.submit_simulated(100, [&] { done.push_back(s.now()); });
  cpu.submit_simulated(50, [&] { done.push_back(s.now()); });
  s.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100);
  EXPECT_EQ(done[1], 150);
}

TEST(cpu_pool, parallel_cpus_overlap) {
  sim::simulator s;
  cpu_pool cpu(s, 2);
  std::vector<sim_time> done;
  cpu.submit_simulated(100, [&] { done.push_back(s.now()); });
  cpu.submit_simulated(100, [&] { done.push_back(s.now()); });
  s.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100);
  EXPECT_EQ(done[1], 100);
}

TEST(cpu_pool, real_job_charges_returned_duration) {
  sim::simulator s;
  cpu_pool cpu(s, 1);
  sim_time finished = -1;
  bool work_ran = false;
  cpu.submit_real(
      [&]() -> sim_duration {
        work_ran = true;
        EXPECT_EQ(s.now(), 0);  // runs immediately in zero simulated time
        return 250;
      },
      [&] { finished = s.now(); });
  s.run();
  EXPECT_TRUE(work_ran);
  EXPECT_EQ(finished, 250);
}

TEST(cpu_pool, real_jobs_have_priority_over_queued_simulated) {
  sim::simulator s;
  cpu_pool cpu(s, 1);
  std::vector<int> order;
  cpu.submit_simulated(100, [&] { order.push_back(0); });  // occupies CPU
  s.schedule_at(10, [&] {
    cpu.submit_simulated(100, [&] { order.push_back(1); });
    cpu.submit_real([&]() -> sim_duration {
      order.push_back(2);
      return 10;
    });
  });
  s.run();
  // The real job preempts the running simulated job at t=10, so it runs
  // before either simulated completion.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
}

TEST(cpu_pool, preempted_simulated_job_resumes_and_totals_right) {
  sim::simulator s;
  cpu_pool cpu(s, 1);
  sim_time sim_done = 0;
  cpu.submit_simulated(100, [&] { sim_done = s.now(); });
  s.schedule_at(40, [&] {
    cpu.submit_real([]() -> sim_duration { return 30; });
  });
  s.run();
  // 40 executed + 30 preemption + 60 remaining = done at 130.
  EXPECT_EQ(sim_done, 130);
}

TEST(cpu_pool, cancel_simulated_queued_and_running) {
  sim::simulator s;
  cpu_pool cpu(s, 1);
  bool a_done = false, b_done = false;
  const job_id a = cpu.submit_simulated(100, [&] { a_done = true; });
  const job_id b = cpu.submit_simulated(100, [&] { b_done = true; });
  EXPECT_TRUE(cpu.cancel_simulated(b));  // queued
  EXPECT_TRUE(cpu.cancel_simulated(a));  // running
  s.run();
  EXPECT_FALSE(a_done);
  EXPECT_FALSE(b_done);
  EXPECT_FALSE(cpu.cancel_simulated(a));  // unknown now
}

TEST(cpu_pool, utilization_accounts_real_and_simulated) {
  sim::simulator s;
  cpu_pool cpu(s, 1);
  cpu.submit_simulated(500, {});
  cpu.submit_real([]() -> sim_duration { return 500; });
  s.run();
  s.run_until(2000);
  // 1000 busy of 2000 total.
  EXPECT_NEAR(cpu.utilization(), 0.5, 1e-9);
  EXPECT_NEAR(cpu.real_utilization(), 0.25, 1e-9);
}

TEST(profiler, measures_thread_cpu_and_pauses) {
  thread_cpu_profiler p;
  p.start();
  volatile double x = 1.0;
  // Spin until measurable CPU time accumulates (clock granularity varies
  // across kernels/containers).
  for (int i = 0; i < 2000 && p.elapsed() == 0; ++i) {
    for (int k = 0; k < 100000; ++k) x = x * 1.0000001 + 0.5;
  }
  p.pause();
  const sim_duration at_pause = p.elapsed();
  ASSERT_GT(at_pause, 0);
  // Work done while paused must not be charged (clock-stop, Fig 1b).
  for (int k = 0; k < 2000000; ++k) x = x * 1.0000001 + 0.5;
  EXPECT_EQ(p.elapsed(), at_pause);
  p.resume();
  const sim_duration total = p.stop();
  EXPECT_GE(total, at_pause);
}

// --- sim_env bridge ---

class fake_transport : public transport {
 public:
  struct sent_msg {
    node_id to;  // invalid_node for multicast
    std::size_t bytes;
    sim_time at;
  };
  explicit fake_transport(sim::simulator& s) : sim_(s) {}
  void send(node_id to, util::shared_bytes payload) override {
    log.push_back({to, payload->size(), sim_.now()});
  }
  void multicast(util::shared_bytes payload) override {
    log.push_back({invalid_node, payload->size(), sim_.now()});
  }
  unsigned multicast_fanout() const override { return 1; }
  std::size_t max_datagram() const override { return 60000; }
  std::vector<sent_msg> log;

 private:
  sim::simulator& sim_;
};

struct env_fixture {
  sim::simulator s;
  cpu_pool cpu{s, 1};
  fake_transport net{s};
  sim_env env;

  explicit env_fixture(net_cost_model costs = {}) : env(make(costs)) {}
  sim_env make(net_cost_model costs) {
    sim_env::config cfg;
    cfg.self = 0;
    cfg.peers = {0, 1, 2};
    cfg.costs = costs;
    return sim_env(s, cpu, net, cfg, util::rng(1));
  }
};

TEST(sim_env, send_charges_cost_and_offsets_injection) {
  net_cost_model costs;
  costs.send_fixed = 1000;
  costs.send_per_byte_ns = 0;
  costs.recv_fixed = 0;
  costs.recv_per_byte_ns = 0;
  env_fixture f(costs);

  f.env.post([&] {
    util::buffer_writer w;
    w.put_padding(100);
    f.env.send(1, w.take());
    f.env.send(2, w.take());  // note: w was consumed; empty payload
  });
  f.s.run();
  ASSERT_EQ(f.net.log.size(), 2u);
  // First send leaves after its own cost; second after both costs.
  EXPECT_EQ(f.net.log[0].at, 1000);
  EXPECT_EQ(f.net.log[1].at, 2000);
}

TEST(sim_env, delivery_runs_handler_as_charged_job) {
  net_cost_model costs;
  costs.recv_fixed = 500;
  costs.recv_per_byte_ns = 10;
  costs.send_fixed = 0;
  costs.send_per_byte_ns = 0;
  env_fixture f(costs);

  sim_time handled_at = -1;
  f.env.set_handler([&](node_id from, util::shared_bytes msg) {
    EXPECT_EQ(from, 1u);
    EXPECT_EQ(msg->size(), 100u);
    handled_at = f.s.now();
  });
  util::buffer_writer w;
  w.put_padding(100);
  auto payload = w.take();
  f.s.schedule_at(0, [&] { f.env.deliver_datagram(1, payload); });
  f.s.run();
  // Handler itself runs at job start (zero sim time); the CPU then stays
  // busy for recv cost: 500 + 10*100 = 1500.
  EXPECT_EQ(handled_at, 0);
  EXPECT_NEAR(f.cpu.busy_integral(), 1500.0, 1e-9);
}

TEST(sim_env, timer_from_real_code_fires_after_elapsed_offset) {
  env_fixture f;
  std::vector<sim_time> fired;
  f.env.post([&] {
    f.env.charge(1000);            // elapsed-so-far Δ1
    f.env.set_timer(500, [&] {     // must fire at 1000 + 500 (Fig 1b)
      fired.push_back(f.s.now());
    });
  });
  f.s.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1500);
}

TEST(sim_env, timer_handler_waits_for_busy_cpu) {
  env_fixture f;
  std::vector<sim_time> fired;
  f.env.post([&] {
    f.env.charge(1000);
    f.env.set_timer(500, [&] { fired.push_back(f.s.now()); });
    f.env.charge(2000);  // job holds the CPU until t=3000
  });
  f.s.run();
  // The timer event is due at 1500, but its handler is a real-code job
  // and must wait for the CPU, like a process waiting to be scheduled.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3000);
}

TEST(sim_env, now_advances_with_charges_inside_job) {
  env_fixture f;
  std::vector<sim_time> seen;
  f.env.post([&] {
    seen.push_back(f.env.now());
    f.env.charge(700);
    seen.push_back(f.env.now());
  });
  f.s.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0);
  EXPECT_EQ(seen[1], 700);
}

TEST(sim_env, timer_cancel) {
  env_fixture f;
  bool fired = false;
  f.env.post([&] {
    const timer_id id = f.env.set_timer(100, [&] { fired = true; });
    EXPECT_TRUE(f.env.cancel_timer(id));
    EXPECT_FALSE(f.env.cancel_timer(id));
  });
  f.s.run();
  EXPECT_FALSE(fired);
}

TEST(sim_env, multicast_fanout_multiplies_cost) {
  class wan_transport final : public fake_transport {
   public:
    using fake_transport::fake_transport;
    unsigned multicast_fanout() const override { return 3; }
  };
  net_cost_model costs;
  costs.send_fixed = 100;
  costs.send_per_byte_ns = 0;
  sim::simulator s;
  cpu_pool cpu(s, 1);
  wan_transport net(s);
  sim_env::config cfg;
  cfg.self = 0;
  cfg.peers = {0, 1, 2, 3};
  cfg.costs = costs;
  sim_env env(s, cpu, net, cfg, util::rng(1));

  env.post([&] {
    util::buffer_writer w;
    w.put_padding(10);
    env.multicast(w.take());
  });
  s.run();
  ASSERT_EQ(net.log.size(), 1u);
  EXPECT_EQ(net.log[0].at, 300);  // 3 unicast transmissions charged
}

TEST(sim_env, clock_drift_scales_timers_and_charges) {
  env_fixture f;
  f.env.set_clock_drift(1.0);  // everything twice as slow
  sim_time fired = 0;
  f.env.post([&] {
    f.env.charge(1000);  // charged as 500 (durations shrink)
    f.env.set_timer(1000, [&] { fired = f.s.now(); });  // postponed to 2000
  });
  f.s.run();
  EXPECT_EQ(fired, 500 + 2000);
}

}  // namespace
}  // namespace dbsm::csrt
