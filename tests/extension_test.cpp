// Tests of the extension features: partial replication (§6/[24]), the
// dedicated sequencer (§5.3 mitigation), WAN deployment, and the read-set
// escalation toggle.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace dbsm::core {
namespace {

experiment_config base(unsigned sites, unsigned clients) {
  experiment_config cfg;
  cfg.sites = sites;
  cfg.clients = clients;
  cfg.target_responses = 400;
  cfg.max_sim_time = seconds(600);
  cfg.seed = 77;
  return cfg;
}

TEST(partial_replication, reduces_disk_load_and_stays_safe) {
  auto full_cfg = base(4, 60);
  auto full = run_experiment(full_cfg);

  auto partial_cfg = base(4, 60);
  partial_cfg.placement = {place::strategy::round_robin, 2};
  auto partial = run_experiment(partial_cfg);

  EXPECT_TRUE(full.safety.ok);
  EXPECT_TRUE(partial.safety.ok) << partial.safety.detail;
  EXPECT_TRUE(partial.checks.ok) << partial.checks.summary();
  // Each update is applied at 2 of 4 sites instead of all 4: per-site
  // disk usage must drop substantially.
  EXPECT_LT(partial.disk_utilization, full.disk_utilization * 0.8);
  // Throughput must not collapse.
  EXPECT_GT(partial.tpm(), full.tpm() * 0.8);
  // The placement-aware accounting agrees: each site holds a strict
  // subset of the data a full replica holds. (Payload interest is only
  // <=: a TPC-C update spans several tables, so its granules' replica
  // sets often cover every site even at k=2 — the win is storage and
  // disk, not multicast fan-out.)
  ASSERT_EQ(partial.sites.size(), 4u);
  ASSERT_EQ(full.sites.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_LT(partial.sites[i].store_bytes, full.sites[i].store_bytes);
    EXPECT_LT(partial.sites[i].applied_update_bytes,
              full.sites[i].applied_update_bytes);
    EXPECT_LE(partial.sites[i].interested_payload_bytes,
              partial.sites[i].delivered_payload_bytes);
    EXPECT_LT(partial.sites[i].owned_granules,
              partial.sites[i].tracked_granules);
  }
}

TEST(partial_replication, commit_logs_still_identical_everywhere) {
  // Certification remains global even when application is partial: every
  // site logs the same committed sequence.
  auto cfg = base(3, 45);
  cfg.placement = {place::strategy::hashed, 1};  // single-copy storage
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  ASSERT_EQ(r.commit_logs.size(), 3u);
  EXPECT_GT(r.safety.common_prefix, 50u);
}

TEST(dedicated_sequencer, extra_site_serves_no_clients) {
  auto cfg = base(3, 45);
  cfg.dedicated_sequencer = true;
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  // Four sites participate in the protocol (logs from all of them).
  ASSERT_EQ(r.commit_logs.size(), 4u);
  EXPECT_GT(r.stats.total_committed(), 200u);
}

TEST(wan_cluster, replicates_with_unicast_fanout) {
  auto cfg = base(3, 45);
  cfg.use_wan = true;
  cfg.wan.default_latency = milliseconds(20);
  cfg.gcs.nak_delay = milliseconds(18);
  auto r = run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_GT(r.stats.total_committed(), 200u);
  // Certification pays at least one WAN round trip.
  EXPECT_GT(r.cert_latency_ms.quantile(0.5), 35.0);
}

TEST(wan_cluster, update_latency_grows_with_distance_reads_do_not) {
  auto near_cfg = base(3, 45);
  near_cfg.use_wan = true;
  near_cfg.wan.default_latency = milliseconds(5);
  auto near_r = run_experiment(near_cfg);

  auto far_cfg = base(3, 45);
  far_cfg.use_wan = true;
  far_cfg.wan.default_latency = milliseconds(40);
  far_cfg.gcs.nak_delay = milliseconds(30);
  auto far_r = run_experiment(far_cfg);

  EXPECT_GT(far_r.cert_latency_ms.quantile(0.5),
            near_r.cert_latency_ms.quantile(0.5) + 50.0);
  // Read-only latency is local in both (§5.1).
  const auto& near_ro = near_r.stats.of(tpcc::c_orderstatus_short);
  const auto& far_ro = far_r.stats.of(tpcc::c_orderstatus_short);
  if (near_ro.commit_latency_ms.size() > 3 &&
      far_ro.commit_latency_ms.size() > 3) {
    EXPECT_LT(far_ro.commit_latency_ms.quantile(0.5),
              near_ro.commit_latency_ms.quantile(0.5) + 20.0);
  }
}

TEST(escalation_toggle, disabling_removes_scan_conflicts) {
  auto on_cfg = base(3, 60);
  on_cfg.target_responses = 1200;
  auto on = run_experiment(on_cfg);

  auto off_cfg = base(3, 60);
  off_cfg.target_responses = 1200;
  off_cfg.profile.escalate_scans = false;
  auto off = run_experiment(off_cfg);

  EXPECT_TRUE(on.safety.ok);
  EXPECT_TRUE(off.safety.ok);
  // orderstatus(long) aborts only through the escalated scan channel.
  EXPECT_LE(off.stats.of(tpcc::c_orderstatus_long).aborted(),
            on.stats.of(tpcc::c_orderstatus_long).aborted());
}

}  // namespace
}  // namespace dbsm::core
