// Tests of the certification prototype (§3.3): set operations, granule
// escalation semantics, determinism, snapshot windows, and the codec.
#include <gtest/gtest.h>

#include "cert/certifier.hpp"
#include "cert/reference_certifier.hpp"
#include "cert/rwset.hpp"
#include "cert/txn_codec.hpp"
#include "db/item.hpp"
#include "util/rng.hpp"

namespace dbsm::cert {
namespace {

using db::item_id;
using db::make_granule;
using db::make_item;

TEST(item_codec, field_round_trip) {
  const item_id id = make_item(8, 123456, 9, 54321);
  EXPECT_EQ(db::item_table(id), 8u);
  EXPECT_EQ(db::item_warehouse(id), 123456u);
  EXPECT_EQ(db::item_district(id), 9u);
  EXPECT_EQ(db::item_row(id), 54321u);
  EXPECT_FALSE(db::is_granule(id));

  const item_id g = make_granule(8, 123456, 9);
  EXPECT_TRUE(db::is_granule(g));
  EXPECT_EQ(db::item_table(g), 8u);
  EXPECT_EQ(db::item_warehouse(g), 123456u);
}

TEST(item_codec, table_in_highest_bits_orders_by_table) {
  // §3.3: "including the table identifier as the highest order bits".
  EXPECT_LT(make_item(1, 0xffffff, 255, 100000),
            make_item(2, 0, 0, 0));
}

TEST(rwset, normalize_sorts_and_dedups) {
  std::vector<item_id> v{5, 3, 5, 1, 3};
  normalize(v);
  EXPECT_EQ(v, (std::vector<item_id>{1, 3, 5}));
}

TEST(rwset, intersects_sorted_sets) {
  EXPECT_TRUE(intersects({1, 3, 5}, {5, 9}));
  EXPECT_FALSE(intersects({1, 3, 5}, {2, 4, 6}));
  EXPECT_FALSE(intersects({}, {1}));
}

TEST(rwset, write_write_ignores_granule_matches) {
  const item_id g = make_granule(2, 7, 0);
  const item_id t1 = make_item(2, 7, 1, 100);
  const item_id t2 = make_item(2, 7, 1, 200);
  // Both wrote different tuples of the same granule: no tuple conflict.
  std::vector<item_id> a{t1, g}, b{t2, g};
  normalize(a);
  normalize(b);
  EXPECT_FALSE(write_write_conflicts(a, b));
  // Same tuple: conflict.
  std::vector<item_id> c{t1, g};
  normalize(c);
  EXPECT_TRUE(write_write_conflicts(a, c));
  // But an escalated READ against the granule does intersect.
  EXPECT_TRUE(intersects(std::vector<item_id>{g}, a));
}

TEST(rwset, append_scan_escalates_beyond_threshold) {
  const item_id g = make_granule(2, 7, 0);
  std::vector<item_id> small{1, 2, 3};
  std::vector<item_id> out;
  append_scan(out, small, g, 4);
  EXPECT_EQ(out.size(), 3u);  // kept tuple-level
  out.clear();
  std::vector<item_id> big{1, 2, 3, 4, 5};
  append_scan(out, big, g, 4);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], g);
}

// ---------- certifier ----------

// Handy ids: tuples are even (bit 0 clear), granules odd.
constexpr item_id tup(std::uint64_t n) { return n << 1; }
constexpr item_id gran(std::uint64_t n) { return (n << 1) | 1; }

TEST(certifier, no_conflict_commits) {
  certifier c;
  EXPECT_TRUE(c.certify_update(0, {tup(1), tup(2)}, {tup(3)}));
  EXPECT_TRUE(c.certify_update(0, {tup(4)}, {tup(5)}));
  EXPECT_EQ(c.commits(), 2u);
  EXPECT_EQ(c.position(), 2u);
}

TEST(certifier, point_reads_are_snapshot_served) {
  // Multi-version engine: a tuple-level read of a concurrently committed
  // write is served from the snapshot — no abort.
  certifier c;
  ASSERT_TRUE(c.certify_update(0, {}, {tup(10)}));
  EXPECT_TRUE(c.certify_update(0, {tup(10)}, {tup(99)}));
}

TEST(certifier, granule_read_conflicts_with_concurrent_write) {
  // Escalated scans cannot be versioned: a granule read aborts on any
  // concurrent committed write advertising that granule.
  certifier c;
  ASSERT_TRUE(c.certify_update(0, {}, {gran(7), tup(10)}));
  EXPECT_FALSE(c.certify_update(0, {gran(7)}, {tup(99)}));
  EXPECT_TRUE(c.certify_update(1, {gran(7)}, {tup(99)}));  // after: fine
}

TEST(certifier, write_write_conflict_aborts) {
  certifier c;
  ASSERT_TRUE(c.certify_update(0, {}, {tup(10)}));
  EXPECT_FALSE(c.certify_update(0, {}, {tup(10), tup(11)}));
}

TEST(certifier, granule_granule_writes_do_not_conflict) {
  // Two writers inside the same granule (different tuples) commit both.
  certifier c;
  ASSERT_TRUE(c.certify_update(0, {}, {gran(7), tup(10)}));
  EXPECT_TRUE(c.certify_update(0, {}, {gran(7), tup(11)}));
}

TEST(certifier, aborted_transactions_leave_no_trace) {
  certifier c;
  ASSERT_TRUE(c.certify_update(0, {}, {tup(10)}));
  ASSERT_FALSE(c.certify_update(0, {}, {tup(10)}));  // aborts (pos 2)
  // Conflicts come only from *committed* write sets — the aborted one at
  // position 2 is invisible to later transactions.
  EXPECT_TRUE(c.certify_update(1, {}, {tup(10)}));
}

TEST(certifier, snapshot_window_bounds_conflicts) {
  certifier c;
  ASSERT_TRUE(c.certify_update(0, {}, {tup(1), gran(1)}));  // pos 1
  ASSERT_TRUE(c.certify_update(1, {}, {tup(2), gran(2)}));  // pos 2
  ASSERT_TRUE(c.certify_update(2, {}, {tup(3), gran(3)}));  // pos 3
  // Snapshot at pos 2: only the granule-3 write is concurrent.
  EXPECT_TRUE(c.certify_update(2, {gran(1), gran(2)}, {tup(40)}));
  EXPECT_FALSE(c.certify_update(2, {gran(3)}, {tup(41)}));
}

TEST(certifier, read_only_certification_is_positionless) {
  certifier c;
  ASSERT_TRUE(c.certify_update(0, {}, {gran(4), tup(10)}));
  const auto pos = c.position();
  EXPECT_FALSE(c.certify_read_only(0, {gran(4)}));
  EXPECT_TRUE(c.certify_read_only(pos, {gran(4)}));
  EXPECT_TRUE(c.certify_read_only(0, {gran(5)}));
  EXPECT_TRUE(c.certify_read_only(0, {tup(10)}));  // snapshot-served
  EXPECT_EQ(c.position(), pos);  // unchanged
}

TEST(certifier, identical_sequences_identical_decisions) {
  // The safety core: two replicas fed the same sequence decide alike.
  certifier a, b;
  util::rng g(17);
  for (int i = 0; i < 2000; ++i) {
    const auto begin =
        static_cast<std::uint64_t>(g.uniform_int(0, a.position()));
    std::vector<item_id> rs, ws;
    for (int k = 0; k < 4; ++k)
      rs.push_back(static_cast<item_id>(g.uniform_int(0, 200)) << 1);
    for (int k = 0; k < 2; ++k)
      ws.push_back(static_cast<item_id>(g.uniform_int(0, 200)) << 1);
    normalize(rs);
    normalize(ws);
    EXPECT_EQ(a.certify_update(begin, rs, ws),
              b.certify_update(begin, rs, ws));
  }
  EXPECT_EQ(a.commits(), b.commits());
}

TEST(certifier, history_window_gc_conservative_abort) {
  cert_config cfg;
  cfg.history_window = 10;
  certifier c(cfg);
  for (int i = 0; i < 30; ++i)
    ASSERT_TRUE(c.certify_update(c.position(), {}, {tup(1000 + i)}));
  // Snapshot far behind the retained window: conservative abort even
  // without any real conflict.
  EXPECT_FALSE(c.certify_update(0, {tup(2)}, {tup(4)}));
  EXPECT_EQ(c.history_size(), 10u);
}

TEST(certifier, evict_drain_rate_controls_index_reclamation) {
  // Every delivery evicts at most one write set past the window, so a
  // larger drain rate clears the backlog faster: any positive rate keeps
  // it at <= 1 set, while rate 0 (defer cleanup) never reclaims — stale
  // entries pile up in the index, one per distinct item ever written,
  // without affecting decisions.
  constexpr std::size_t window = 10;
  constexpr int commits = 50;
  auto run = [](std::size_t rate) {
    cert_config cfg;
    cfg.history_window = window;
    cfg.evict_drain_per_delivery = rate;
    certifier c(cfg);
    for (int i = 0; i < commits; ++i) {
      EXPECT_TRUE(
          c.certify_update(c.position(), {}, {tup(5000 + i)}));
    }
    return c;
  };
  certifier never = run(0);
  certifier slow = run(1);
  certifier fast = run(8);

  // Larger rate => backlog drained at least as fast, strictly faster
  // than the disabled drain.
  EXPECT_EQ(never.evicted_backlog(), commits - window);
  EXPECT_LE(slow.evicted_backlog(), 1u);
  EXPECT_LE(fast.evicted_backlog(), slow.evicted_backlog());
  EXPECT_LT(slow.evicted_backlog(), never.evicted_backlog());

  // The index mirrors the backlog: with the drain disabled it retains
  // every item ever committed; with a positive rate it tracks the window.
  EXPECT_EQ(never.index_size(), static_cast<std::size_t>(commits));
  EXPECT_LE(slow.index_size(), window + 1);
  EXPECT_LE(fast.index_size(), window + 1);

  // Draining is memory reclamation only: decisions are identical.
  EXPECT_EQ(never.commits(), slow.commits());
  EXPECT_EQ(never.aborts(), slow.aborts());
  const std::uint64_t snap = slow.position();
  EXPECT_EQ(never.certify_read_only(snap, {gran(1)}),
            slow.certify_read_only(snap, {gran(1)}));
}

TEST(certifier, cost_model_is_window_independent_and_set_linear) {
  // Indexed certification probes each element of the transaction's own
  // sets once: the modeled cost depends only on the set sizes, never on
  // how much history the snapshot spans.
  certifier c;
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(c.certify_update(c.position(), {}, {tup(i)}));
  c.certify_update(c.position(), {gran(9999)}, {tup(8888)});
  const auto small_window = c.last_cost();
  c.certify_update(0, {gran(9999)}, {tup(8887)});
  const auto big_window = c.last_cost();
  EXPECT_EQ(big_window, small_window);

  cert_config cfg;
  certifier d(cfg);
  d.certify_update(0, {tup(1)}, {tup(2)});
  const auto two_elems = d.last_cost();
  d.certify_update(0, {tup(3), tup(4)}, {tup(5), tup(6)});
  const auto four_elems = d.last_cost();
  EXPECT_EQ(four_elems - two_elems, 2 * cfg.cost_per_element);
  EXPECT_EQ(two_elems, cfg.cost_fixed + 2 * cfg.cost_per_element);
}

TEST(reference_certifier, cost_model_scales_with_window) {
  // The reference scan keeps the historical window-proportional model.
  reference_certifier c;
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(c.certify_update(c.position(), {}, {tup(i)}));
  c.certify_update(c.position(), {gran(9999)}, {tup(8888)});
  const auto small_window = c.last_cost();
  c.certify_update(0, {gran(9999)}, {tup(8887)});
  const auto big_window = c.last_cost();
  EXPECT_GT(big_window, small_window);
}

// ---------- codec ----------

TEST(txn_codec, round_trip) {
  txn_payload p;
  p.id = 0x123456789abcull;
  p.cls = 3;
  p.origin = 2;
  p.begin_pos = 777;
  p.read_set = {make_item(1, 2, 3, 4), make_granule(2, 7, 0)};
  p.write_set = {make_item(4, 5, 6, 7)};
  p.update_bytes = 321;

  const auto raw = encode_txn(p);
  EXPECT_EQ(raw->size(), encoded_size(p));
  const txn_payload q = decode_txn(raw);
  EXPECT_EQ(q.id, p.id);
  EXPECT_EQ(q.cls, p.cls);
  EXPECT_EQ(q.origin, p.origin);
  EXPECT_EQ(q.begin_pos, p.begin_pos);
  EXPECT_EQ(q.read_set, p.read_set);
  EXPECT_EQ(q.write_set, p.write_set);
  EXPECT_EQ(q.update_bytes, p.update_bytes);
}

TEST(txn_codec, payload_size_includes_value_padding) {
  txn_payload small, big;
  small.update_bytes = 10;
  big.update_bytes = 4000;
  EXPECT_EQ(encode_txn(big)->size() - encode_txn(small)->size(), 3990u);
}

}  // namespace
}  // namespace dbsm::cert
