// Differential testing of the indexed certifier against the reference
// merge-scan certifier: both must reach the same commit/abort decision for
// every transaction of every randomized workload — including granule
// escalation, history-window expiry (conservative aborts), and the
// read-only path. The off-line safety checker and cross-replica
// determinism both rest on this equivalence.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cert/cert_index.hpp"
#include "cert/certifier.hpp"
#include "cert/reference_certifier.hpp"
#include "db/item.hpp"
#include "tpcc/workload.hpp"
#include "util/rng.hpp"

namespace dbsm::cert {
namespace {

using db::item_id;

constexpr item_id tup(std::uint64_t n) { return n << 1; }
constexpr item_id gran(std::uint64_t n) { return (n << 1) | 1; }

// ---------- last_writer_index unit tests ----------

TEST(last_writer_index, remembers_most_recent_writer_per_id) {
  last_writer_index idx;
  idx.note_commit({tup(1), tup(2), gran(9)}, 5);
  idx.note_commit({tup(2)}, 8);
  EXPECT_EQ(idx.last_writer(tup(1)), 5u);
  EXPECT_EQ(idx.last_writer(tup(2)), 8u);
  EXPECT_EQ(idx.last_writer(gran(9)), 5u);
  EXPECT_EQ(idx.last_writer(tup(3)), 0u);  // never written
  EXPECT_EQ(idx.size(), 3u);
}

TEST(last_writer_index, tuple_and_granule_ids_never_alias) {
  // A tuple id and a granule id are distinct keys even when their upper
  // bits agree — the parallel maps are split by the granule bit.
  last_writer_index idx;
  idx.note_commit({tup(7)}, 3);
  EXPECT_EQ(idx.last_writer(gran(7)), 0u);
  idx.note_commit({gran(7)}, 4);
  EXPECT_EQ(idx.last_writer(tup(7)), 3u);
  EXPECT_EQ(idx.last_writer(gran(7)), 4u);
}

TEST(last_writer_index, forget_drops_only_unsuperseded_entries) {
  last_writer_index idx;
  idx.note_commit({tup(1), tup(2)}, 5);
  idx.note_commit({tup(2)}, 8);
  idx.forget_commit({tup(1), tup(2)}, 5);  // entry at 5 leaves the window
  EXPECT_EQ(idx.last_writer(tup(1)), 0u);  // last writer was 5: dropped
  EXPECT_EQ(idx.last_writer(tup(2)), 8u);  // superseded: kept
  EXPECT_EQ(idx.size(), 1u);
}

// ---------- randomized differential property ----------

struct diff_stats {
  std::uint64_t updates = 0;
  std::uint64_t read_onlys = 0;
  std::uint64_t commits = 0;
  std::uint64_t pre_window_aborts = 0;
};

/// Drives both certifiers through `steps` random transactions and asserts
/// decision-for-decision agreement (void return: ASSERT_* requirement;
/// outcomes land in `st`). Mix knobs: size of the id space (conflict
/// probability), granule read/write rates, snapshot age spread, and the
/// history window (expiry / conservative aborts).
void run_differential(std::uint64_t seed, int steps, std::uint64_t id_space,
                      double granule_read_p, double granule_write_p,
                      std::uint64_t max_age, std::size_t window,
                      diff_stats& st) {
  cert_config cfg;
  cfg.history_window = window;
  certifier indexed(cfg);
  reference_certifier reference(cfg);
  util::rng g(seed);

  for (int i = 0; i < steps; ++i) {
    const std::uint64_t pos = indexed.position();
    const std::uint64_t lo = pos > max_age ? pos - max_age : 0;
    const auto begin = static_cast<std::uint64_t>(
        g.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(pos)));

    std::vector<item_id> rs;
    const int nr = static_cast<int>(g.uniform_int(0, 6));
    for (int k = 0; k < nr; ++k) {
      const auto n = static_cast<std::uint64_t>(
          g.uniform_int(0, static_cast<std::int64_t>(id_space)));
      rs.push_back(g.bernoulli(granule_read_p) ? gran(n >> 4) : tup(n));
    }
    normalize(rs);

    if (g.bernoulli(0.25)) {
      // Read-only path: positionless, repeated against both.
      ++st.read_onlys;
      const bool a = indexed.certify_read_only(begin, rs);
      const bool b = reference.certify_read_only(begin, rs);
      ASSERT_EQ(a, b) << "read-only seed " << seed << " step " << i;
      EXPECT_EQ(indexed.last_cost() >= cfg.cost_fixed, true);
      continue;
    }

    std::vector<item_id> ws;
    const int nw = static_cast<int>(g.uniform_int(1, 5));
    for (int k = 0; k < nw; ++k) {
      const auto n = static_cast<std::uint64_t>(
          g.uniform_int(0, static_cast<std::int64_t>(id_space)));
      ws.push_back(tup(n));
      // Advertise the granule the tuple falls into (escalation target) —
      // and occasionally a bare granule write.
      if (g.bernoulli(granule_write_p)) ws.push_back(gran(n >> 4));
    }
    normalize(ws);

    ++st.updates;
    if (begin + 1 < indexed.oldest_retained()) ++st.pre_window_aborts;
    const bool a = indexed.certify_update(begin, rs, ws);
    const bool b = reference.certify_update(begin, rs, ws);
    ASSERT_EQ(a, b) << "update seed " << seed << " step " << i
                    << " begin " << begin << " pos " << pos;
    if (a) ++st.commits;

    ASSERT_EQ(indexed.position(), reference.position());
    ASSERT_EQ(indexed.commits(), reference.commits());
    ASSERT_EQ(indexed.aborts(), reference.aborts());
    ASSERT_EQ(indexed.history_size(), reference.history_size());
    ASSERT_EQ(indexed.oldest_retained(), reference.oldest_retained());
  }
}

TEST(cert_differential, high_conflict_small_id_space) {
  diff_stats st;
  run_differential(/*seed=*/11, /*steps=*/4000, /*id_space=*/300,
                   /*granule_read_p=*/0.2, /*granule_write_p=*/0.4,
                   /*max_age=*/60, /*window=*/50000, st);
  // Sanity: the mix actually exercised both outcomes.
  EXPECT_GT(st.commits, 100u);
  EXPECT_GT(st.updates - st.commits, 100u);
}

TEST(cert_differential, window_expiry_and_conservative_aborts) {
  // Tiny window + old snapshots: many transactions fall behind
  // oldest_retained and must abort conservatively — identically.
  diff_stats st;
  run_differential(/*seed=*/23, /*steps=*/4000, /*id_space=*/5000,
                   /*granule_read_p=*/0.1, /*granule_write_p=*/0.3,
                   /*max_age=*/200, /*window=*/64, st);
  EXPECT_GT(st.pre_window_aborts, 100u);
  EXPECT_GT(st.commits, 100u);
}

TEST(cert_differential, granule_heavy_escalation_mix) {
  diff_stats st;
  run_differential(/*seed=*/37, /*steps=*/4000, /*id_space=*/20000,
                   /*granule_read_p=*/0.6, /*granule_write_p=*/0.9,
                   /*max_age=*/500, /*window=*/1000, st);
  EXPECT_GT(st.commits, 100u);
  EXPECT_GT(st.read_onlys, 500u);
}

TEST(cert_differential, low_conflict_large_id_space) {
  diff_stats st;
  run_differential(/*seed=*/53, /*steps=*/4000, /*id_space=*/1 << 22,
                   /*granule_read_p=*/0.05, /*granule_write_p=*/0.2,
                   /*max_age=*/2000, /*window=*/4096, st);
  EXPECT_GT(st.commits, 2000u);
}

TEST(cert_differential, tpcc_shaped_workload_agrees) {
  // Realistic sets: TPC-C requests with escalated customer scans and
  // advertised write granules, snapshots lagging a few dozen deliveries.
  cert_config cfg;
  cfg.history_window = 512;
  certifier indexed(cfg);
  reference_certifier reference(cfg);
  tpcc::workload load(tpcc::workload_profile::pentium3_1ghz(), 10,
                      util::rng(71));
  util::rng g(72);

  for (int i = 0; i < 6000; ++i) {
    const auto req = load.next(static_cast<std::uint32_t>(i % 10),
                               static_cast<std::uint32_t>(i % 10));
    const std::uint64_t pos = indexed.position();
    const std::uint64_t lo = pos > 700 ? pos - 700 : 0;
    const auto begin = static_cast<std::uint64_t>(
        g.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(pos)));
    if (req.read_only()) {
      ASSERT_EQ(indexed.certify_read_only(begin, req.read_set),
                reference.certify_read_only(begin, req.read_set))
          << "step " << i;
    } else {
      ASSERT_EQ(indexed.certify_update(begin, req.read_set, req.write_set),
                reference.certify_update(begin, req.read_set, req.write_set))
          << "step " << i;
    }
  }
  EXPECT_EQ(indexed.commits(), reference.commits());
  EXPECT_GT(indexed.commits(), 1000u);
}

TEST(cert_index_memory, index_stays_bounded_by_window) {
  // The lazy eviction ring must actually reclaim index entries: with a
  // small window and an ever-growing id space, the index cannot grow
  // linearly with the number of deliveries.
  cert_config cfg;
  cfg.history_window = 100;
  certifier c(cfg);
  util::rng g(91);
  for (int i = 0; i < 20000; ++i) {
    std::vector<item_id> ws;
    for (int k = 0; k < 4; ++k)
      ws.push_back(tup(static_cast<std::uint64_t>(i) * 4 + k));
    normalize(ws);
    c.certify_update(c.position(), {}, ws);
  }
  // 100 retained entries × 4 distinct tuples, plus a bounded drain lag.
  EXPECT_LE(c.index_size(), 100u * 4u + 16u);
  EXPECT_EQ(c.history_size(), 100u);
}

}  // namespace
}  // namespace dbsm::cert
