// Tests of the network model: LAN timing (serialization, MTU framing,
// receive-side capacity), multicast replication, loss models, crash
// isolation, WAN latency.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "net/lan.hpp"
#include "net/loss_model.hpp"
#include "net/trace.hpp"
#include "net/wan.hpp"
#include "sim/simulator.hpp"

namespace dbsm::net {
namespace {

util::shared_bytes payload_of(std::size_t n) {
  util::buffer_writer w;
  w.put_padding(n);
  return w.take();
}

struct lan_fixture {
  sim::simulator s;
  lan_config cfg;
  std::unique_ptr<lan> net;
  std::vector<std::vector<std::pair<node_id, std::size_t>>> received;
  std::vector<std::vector<sim_time>> arrival_times;

  explicit lan_fixture(unsigned hosts, lan_config c = {}) : cfg(c) {
    net = std::make_unique<lan>(s, cfg, util::rng(1));
    received.resize(hosts);
    arrival_times.resize(hosts);
    for (unsigned i = 0; i < hosts; ++i) {
      EXPECT_EQ(net->add_host(), i);
      net->set_receiver(i, [this, i](node_id from, util::shared_bytes p) {
        received[i].emplace_back(from, p->size());
        arrival_times[i].push_back(s.now());
      });
    }
  }
};

TEST(lan, unicast_delivery_and_timing) {
  lan_fixture f(2);
  f.net->send(0, 1, payload_of(1000));
  f.s.run();
  ASSERT_EQ(f.received[1].size(), 1u);
  EXPECT_EQ(f.received[1][0].first, 0u);
  EXPECT_EQ(f.received[1][0].second, 1000u);
  // 1000B + 28 IP/UDP + 38 frame = 1066B wire; tx + switch + rx:
  // 2 * (1066*8/100e6) + 30us = 2*85.28us + 30us ~ 200.56us.
  const double expect_us = 2 * (1066.0 * 8 / 100e6 * 1e6) + 30.0;
  EXPECT_NEAR(to_micros(f.arrival_times[1][0]), expect_us, 1.0);
}

TEST(lan, fragmentation_counts_per_frame_overhead) {
  lan_fixture f(2);
  f.net->send(0, 1, payload_of(4000));  // 3 frames (1472 payload each)
  f.s.run();
  // wire = 4000 + 3*(28+38) = 4198 bytes.
  EXPECT_EQ(f.net->wire_bytes_sent(0), 4198u);
}

TEST(lan, multicast_reaches_all_but_sender_once_on_uplink) {
  lan_fixture f(4);
  f.net->multicast(0, payload_of(500));
  f.s.run();
  EXPECT_TRUE(f.received[0].empty());
  for (unsigned i = 1; i < 4; ++i) {
    ASSERT_EQ(f.received[i].size(), 1u) << "host " << i;
  }
  // Sender pays one transmission: 500+28+38 = 566 wire bytes.
  EXPECT_EQ(f.net->wire_bytes_sent(0), 566u);
  EXPECT_EQ(f.net->multicast_fanout(0), 1u);
}

TEST(lan, receiver_serialization_caps_goodput) {
  // Two senders flooding one receiver: arrival rate is bounded by the
  // receiver downlink (~94 Mbit/s of goodput at 1472-byte fragments).
  lan_fixture f(3);
  const std::size_t msg = 1472;
  for (int i = 0; i < 50; ++i) {
    f.net->send(0, 2, payload_of(msg));
    f.net->send(1, 2, payload_of(msg));
  }
  f.s.run();
  ASSERT_EQ(f.received[2].size(), 100u);
  const double seconds = to_seconds(f.arrival_times[2].back());
  const double goodput_bps = 100.0 * msg * 8 / seconds;
  EXPECT_LT(goodput_bps, 100e6);
  EXPECT_GT(goodput_bps, 85e6);
}

TEST(lan, egress_buffer_overflow_drops) {
  lan_config cfg;
  cfg.tx_buffer_bytes = 10 * 1024;
  lan_fixture f(2, cfg);
  for (int i = 0; i < 100; ++i) f.net->send(0, 1, payload_of(1024));
  f.s.run();
  EXPECT_GT(f.net->overflow_drops(0), 0u);
  EXPECT_LT(f.received[1].size(), 100u);
  EXPECT_GT(f.received[1].size(), 5u);
}

TEST(lan, loopback_send_to_self) {
  lan_fixture f(2);
  f.net->send(1, 1, payload_of(64));
  f.s.run();
  ASSERT_EQ(f.received[1].size(), 1u);
  EXPECT_EQ(f.received[1][0].first, 1u);
}

TEST(lan, isolation_cuts_both_directions) {
  lan_fixture f(3);
  f.net->isolate(1);
  f.net->send(0, 1, payload_of(100));
  f.net->send(1, 0, payload_of(100));
  f.net->multicast(2, payload_of(100));
  f.s.run();
  EXPECT_TRUE(f.received[1].empty());
  ASSERT_EQ(f.received[0].size(), 1u);  // only host 2's multicast
  EXPECT_EQ(f.received[0][0].first, 2u);
}

TEST(lan, rx_loss_model_applied) {
  lan_fixture f(2);
  f.net->set_rx_loss(1, random_loss(1.0));
  for (int i = 0; i < 10; ++i) f.net->send(0, 1, payload_of(100));
  f.s.run();
  EXPECT_TRUE(f.received[1].empty());
  EXPECT_EQ(f.net->injected_losses(1), 10u);
}

TEST(lan, tracer_sees_events) {
  lan_fixture f(2);
  std::vector<char> kinds;
  f.net->set_tracer([&](char k, node_id, node_id, std::size_t, sim_time) {
    kinds.push_back(k);
  });
  f.net->send(0, 1, payload_of(100));
  f.s.run();
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], 's');
  EXPECT_EQ(kinds[1], 'd');
}

TEST(loss_models, random_loss_rate_converges) {
  util::rng g(5);
  auto m = random_loss(0.05);
  int dropped = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (m->drop(g)) ++dropped;
  EXPECT_NEAR(dropped / static_cast<double>(n), 0.05, 0.005);
}

TEST(loss_models, bursty_loss_rate_and_burstiness) {
  util::rng g(6);
  auto m = bursty_loss(0.05, 5.0);
  int dropped = 0, bursts = 0;
  bool prev = false;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const bool d = m->drop(g);
    if (d && !prev) ++bursts;
    if (d) ++dropped;
    prev = d;
  }
  EXPECT_NEAR(dropped / static_cast<double>(n), 0.05, 0.01);
  // Mean burst length ~5 messages.
  EXPECT_NEAR(dropped / static_cast<double>(bursts), 5.0, 1.0);
}

TEST(wan, latency_and_fanout) {
  sim::simulator s;
  wan_config cfg;
  cfg.default_latency = milliseconds(25);
  wan w(s, cfg, util::rng(1));
  std::vector<std::vector<sim_time>> at(3);
  for (unsigned i = 0; i < 3; ++i) {
    w.add_host();
    w.set_receiver(i, [&at, i, &s](node_id, util::shared_bytes) {
      at[i].push_back(s.now());
    });
  }
  w.set_latency(0, 2, milliseconds(80));
  EXPECT_EQ(w.multicast_fanout(0), 2u);

  w.multicast(0, payload_of(100));
  s.run();
  ASSERT_EQ(at[1].size(), 1u);
  ASSERT_EQ(at[2].size(), 1u);
  EXPECT_NEAR(to_millis(at[1][0]), 25.0, 1.0);
  EXPECT_NEAR(to_millis(at[2][0]), 80.0, 1.0);
}


TEST(trace, records_events_and_summarizes) {
  lan_fixture f(2);
  std::ostringstream os;
  trace_log log(&os);
  log.attach(*f.net);
  f.net->set_rx_loss(1, random_loss(1.0));
  f.net->send(0, 1, payload_of(100));
  f.s.run();
  EXPECT_EQ(log.events(), 2u);  // send + drop
  const auto& flow = log.flows().at({0u, 1u});
  EXPECT_EQ(flow.sent, 1u);
  EXPECT_EQ(flow.lost, 1u);
  EXPECT_EQ(flow.delivered, 0u);
  EXPECT_EQ(flow.bytes, 100u);
  const std::string text = os.str();
  EXPECT_NE(text.find("send 0 > 1  100 bytes"), std::string::npos);
  EXPECT_NE(text.find("drop 0 > 1"), std::string::npos);
  EXPECT_NE(log.summary().find("0 > 1"), std::string::npos);
}

}  // namespace
}  // namespace dbsm::net
