// Unit tests of group-communication building blocks: wire codecs,
// stability gossip rounds, flow control, failure detection, assignment
// batches.
#include <gtest/gtest.h>

#include "gcs/failure_detector.hpp"
#include "gcs/flow_control.hpp"
#include "gcs/sequencer.hpp"
#include "gcs/stability.hpp"
#include "gcs/wire.hpp"

namespace dbsm::gcs {
namespace {

util::shared_bytes bytes_of(std::size_t n) {
  util::buffer_writer w;
  w.put_padding(n);
  return w.take();
}

TEST(wire, data_round_trip) {
  data_msg m;
  m.hdr = {msg_type::data, 7, 3};
  m.dgram_seq = 100;
  m.app_seq = 42;
  m.frag_idx = 1;
  m.frag_cnt = 3;
  m.payload = bytes_of(50);
  const auto raw = encode(m);
  const data_msg d = decode_data(raw);
  EXPECT_EQ(d.hdr.view_id, 7u);
  EXPECT_EQ(d.hdr.sender, 3u);
  EXPECT_EQ(d.dgram_seq, 100u);
  EXPECT_EQ(d.app_seq, 42u);
  EXPECT_EQ(d.frag_idx, 1);
  EXPECT_EQ(d.frag_cnt, 3);
  EXPECT_EQ(d.payload->size(), 50u);
}

TEST(wire, nak_and_stab_round_trip) {
  nak_msg n;
  n.hdr = {msg_type::nak, 1, 2};
  n.target_sender = 9;
  n.missing = {4, 5, 9};
  const nak_msg n2 = decode_nak(encode(n));
  EXPECT_EQ(n2.target_sender, 9u);
  EXPECT_EQ(n2.missing, n.missing);

  stab_msg s;
  s.hdr = {msg_type::stab, 1, 0};
  s.round = 12;
  s.voters_bitmap = 0b101;
  s.stable = {1, 2, 3};
  s.min_received = {4, 5, 6};
  const stab_msg s2 = decode_stab(encode(s));
  EXPECT_EQ(s2.round, 12u);
  EXPECT_EQ(s2.voters_bitmap, 0b101u);
  EXPECT_EQ(s2.stable, s.stable);
  EXPECT_EQ(s2.min_received, s.min_received);
}

TEST(wire, view_messages_round_trip) {
  view_cut_msg c;
  c.hdr = {msg_type::view_cut, 3, 1};
  c.new_view_id = 4;
  c.new_members = {0, 2};
  c.cut = {10, 20, 30};
  c.sources = {0, 2, 2};
  const view_cut_msg c2 = decode_view_cut(encode(c));
  EXPECT_EQ(c2.new_view_id, 4u);
  EXPECT_EQ(c2.new_members, c.new_members);
  EXPECT_EQ(c2.cut, c.cut);
  EXPECT_EQ(c2.sources, c.sources);
}

TEST(wire, type_mismatch_throws) {
  heartbeat_msg hb;
  hb.hdr = {msg_type::heartbeat, 1, 0};
  EXPECT_THROW(decode_data(encode(hb)), invariant_violation);
}

TEST(assignments, batch_round_trip) {
  std::vector<assignment> as{{1, 10, 100}, {2, 20, 101}};
  const auto decoded = decode_assignments(encode_assignments(as));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].sender, 1u);
  EXPECT_EQ(decoded[1].global_seq, 101u);
}

// ---------- stability ----------

TEST(stability, round_completes_when_all_vote) {
  // Three members; drive gossip by hand.
  stability_tracker t0({0, 1, 2}, 0);
  stability_tracker t1({0, 1, 2}, 1);
  stability_tracker t2({0, 1, 2}, 2);
  t0.set_local_prefixes({5, 3, 7});
  t1.set_local_prefixes({4, 3, 9});
  t2.set_local_prefixes({5, 2, 9});

  t1.merge(t0.make_gossip(1));
  t2.merge(t1.make_gossip(1));
  // After t2 merges, all three votes are in: S = min per column.
  EXPECT_EQ(t2.stable(), (std::vector<std::uint64_t>{4, 2, 7}));
  EXPECT_EQ(t2.rounds_completed(), 1u);
  // S propagates back via gossip even to processes in older rounds.
  t0.merge(t2.make_gossip(1));
  EXPECT_EQ(t0.stable(), (std::vector<std::uint64_t>{4, 2, 7}));
}

TEST(stability, only_contiguous_prefixes_enter_m) {
  // The tracker takes prefixes as given — receivers must pass contiguous
  // prefixes; a lagging member caps S for everyone (§5.3 behaviour).
  stability_tracker t0({0, 1}, 0);
  stability_tracker t1({0, 1}, 1);
  t0.set_local_prefixes({100, 100});
  t1.set_local_prefixes({2, 100});  // gap at the start of sender 0
  t1.merge(t0.make_gossip(1));
  EXPECT_EQ(t1.stable()[0], 2u);
  EXPECT_EQ(t1.stable()[1], 100u);
}

TEST(stability, repeated_rounds_advance_monotonically) {
  stability_tracker a({0, 1}, 0);
  stability_tracker b({0, 1}, 1);
  std::vector<std::uint64_t> sa{0, 0}, sb{0, 0};
  for (int round = 1; round <= 10; ++round) {
    a.set_local_prefixes({static_cast<std::uint64_t>(10 * round),
                          static_cast<std::uint64_t>(10 * round)});
    b.set_local_prefixes({static_cast<std::uint64_t>(10 * round - 5),
                          static_cast<std::uint64_t>(10 * round)});
    b.merge(a.make_gossip(1));
    a.merge(b.make_gossip(1));
    EXPECT_GE(a.stable()[0], sa[0]);
    EXPECT_GE(a.stable()[1], sa[1]);
    sa = a.stable();
    sb = b.stable();
  }
  EXPECT_GT(sa[0], 0u);
}

TEST(stability, initial_stable_seed) {
  stability_tracker t({0, 1}, 0, {7, 9});
  EXPECT_EQ(t.stable(), (std::vector<std::uint64_t>{7, 9}));
}

// ---------- flow control ----------

TEST(flow_control, token_bucket_rate_limits) {
  token_bucket b(1000.0, 100);  // 1000 B/s, 100 B burst
  EXPECT_TRUE(b.try_consume(0, 100));
  EXPECT_FALSE(b.try_consume(0, 1));
  // After 50 ms, 50 bytes accumulated.
  EXPECT_TRUE(b.try_consume(milliseconds(50), 50));
  EXPECT_FALSE(b.try_consume(milliseconds(50), 1));
  const sim_duration wait = b.wait_time(milliseconds(50), 10);
  EXPECT_GT(wait, milliseconds(9));
  EXPECT_LT(wait, milliseconds(11));
}

TEST(flow_control, token_bucket_caps_burst) {
  token_bucket b(1000.0, 100);
  ASSERT_TRUE(b.try_consume(0, 100));
  // A long idle period must not accumulate more than the burst.
  EXPECT_TRUE(b.try_consume(seconds(100), 100));
  EXPECT_FALSE(b.try_consume(seconds(100), 1));
}

TEST(flow_control, buffer_quota_byte_accounting) {
  buffer_quota q(100, 1000);
  EXPECT_TRUE(q.fits(1000));
  q.add(600);
  EXPECT_TRUE(q.fits(400));
  EXPECT_FALSE(q.fits(401));
  q.remove(600);
  EXPECT_EQ(q.used(), 0u);
  EXPECT_THROW(q.remove(1), invariant_violation);
}

TEST(flow_control, buffer_quota_slot_accounting) {
  // Message slots bind before bytes: the sequencer sends many small
  // ordering messages and exhausts its share by count (§5.3).
  buffer_quota q(3, 1 << 20);
  q.add(10);
  q.add(10);
  q.add(10);
  EXPECT_FALSE(q.fits(10));
  EXPECT_EQ(q.used_msgs(), 3u);
  q.remove(10);
  EXPECT_TRUE(q.fits(10));
}

// ---------- failure detector ----------

TEST(failure_detector, suspects_after_timeout) {
  failure_detector fd({0, 1, 2}, 0, milliseconds(100), 0);
  EXPECT_TRUE(fd.suspects(milliseconds(50)).empty());
  fd.heard_from(1, milliseconds(80));
  const auto sus = fd.suspects(milliseconds(150));
  ASSERT_EQ(sus.size(), 1u);
  EXPECT_EQ(sus[0], 2u);
  EXPECT_FALSE(fd.is_suspect(1, milliseconds(150)));
  EXPECT_TRUE(fd.is_suspect(2, milliseconds(150)));
  // Never suspects self.
  EXPECT_FALSE(fd.is_suspect(0, seconds(10)));
}

TEST(failure_detector, reset_reseeds) {
  failure_detector fd({0, 1}, 0, milliseconds(100), 0);
  EXPECT_TRUE(fd.is_suspect(1, milliseconds(200)));
  fd.reset({0, 1}, milliseconds(200));
  EXPECT_FALSE(fd.is_suspect(1, milliseconds(250)));
}

TEST(failure_detector, hysteresis_needs_consecutive_misses) {
  // 20 ms heartbeat, suspect after 3 consecutive missed intervals.
  failure_detector fd({0, 1}, 0, milliseconds(100), 0, milliseconds(20), 3);
  // Past the timeout but with no scored misses: not yet a suspect.
  EXPECT_FALSE(fd.is_suspect(1, milliseconds(150)));
  fd.tick(milliseconds(150));
  fd.tick(milliseconds(170));
  EXPECT_EQ(fd.misses(1), 2u);
  EXPECT_FALSE(fd.is_suspect(1, milliseconds(170)));
  EXPECT_TRUE(fd.suspects(milliseconds(170)).empty());
  fd.tick(milliseconds(190));
  EXPECT_EQ(fd.misses(1), 3u);
  EXPECT_TRUE(fd.is_suspect(1, milliseconds(190)));
  const auto sus = fd.suspects(milliseconds(190));
  ASSERT_EQ(sus.size(), 1u);
  EXPECT_EQ(sus[0], 1u);
}

TEST(failure_detector, hysteresis_single_late_arrival_forgiven) {
  failure_detector fd({0, 1}, 0, milliseconds(100), 0, milliseconds(20), 3);
  fd.tick(milliseconds(150));
  fd.tick(milliseconds(170));
  // One datagram — even a badly delayed one — clears the streak.
  fd.heard_from(1, milliseconds(175));
  EXPECT_EQ(fd.misses(1), 0u);
  fd.tick(milliseconds(300));
  fd.tick(milliseconds(320));
  // Silent past the timeout again, but only 2 misses since the arrival.
  EXPECT_FALSE(fd.is_suspect(1, milliseconds(320)));
  fd.tick(milliseconds(340));
  EXPECT_TRUE(fd.is_suspect(1, milliseconds(340)));
}

TEST(failure_detector, hysteresis_tick_within_period_clears) {
  failure_detector fd({0, 1}, 0, milliseconds(100), 0, milliseconds(20), 3);
  fd.tick(milliseconds(150));
  EXPECT_EQ(fd.misses(1), 1u);
  fd.heard_from(1, milliseconds(160));
  // A tick within one heartbeat period of the last arrival scores nothing.
  fd.tick(milliseconds(170));
  EXPECT_EQ(fd.misses(1), 0u);
  // Self never accumulates misses.
  fd.tick(milliseconds(400));
  EXPECT_EQ(fd.misses(0), 0u);
}

TEST(failure_detector, hysteresis_disabled_is_timeout_only) {
  // suspect_misses = 0 restores the plain timeout detector: no ticks ever
  // run, yet silence past the timeout is enough.
  failure_detector fd({0, 1}, 0, milliseconds(100), 0, milliseconds(20), 0);
  EXPECT_TRUE(fd.is_suspect(1, milliseconds(150)));
}

}  // namespace
}  // namespace dbsm::gcs
