// Tests of the database server model: storage element, the multi-version
// lock policy (§3.1), and the transaction execution paths.
#include <gtest/gtest.h>

#include <vector>

#include "db/lock_table.hpp"
#include "db/server.hpp"
#include "db/storage.hpp"
#include "sim/simulator.hpp"

namespace dbsm::db {
namespace {

// ---------- storage ----------

TEST(storage, write_throughput_matches_config) {
  sim::simulator s;
  storage_config cfg;  // 4 concurrent, 1.727ms, 4KB sectors
  storage disk(s, cfg, util::rng(1));
  EXPECT_NEAR(cfg.bandwidth_bytes_per_s(), 9.486e6, 0.1e6);

  int done = 0;
  // 100 writes of one sector each.
  for (int i = 0; i < 100; ++i) disk.write(4096, [&] { ++done; });
  s.run();
  EXPECT_EQ(done, 100);
  // 100 sectors at 4 concurrent: 25 batches of 1.727ms each.
  EXPECT_NEAR(to_millis(s.now()), 25 * 1.727, 0.5);
  EXPECT_EQ(disk.sectors_written(), 100u);
}

TEST(storage, full_cache_makes_reads_free) {
  sim::simulator s;
  storage_config cfg;
  cfg.cache_hit_ratio = 1.0;
  storage disk(s, cfg, util::rng(1));
  bool done = false;
  disk.read(64 * 1024, [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(disk.sectors_read(), 0u);
}

TEST(storage, cache_misses_consume_bandwidth) {
  sim::simulator s;
  storage_config cfg;
  cfg.cache_hit_ratio = 0.0;
  storage disk(s, cfg, util::rng(1));
  bool done = false;
  disk.read(8192, [&] { done = true; });  // 2 sectors
  s.run();
  EXPECT_TRUE(done);
  EXPECT_GT(s.now(), 0);
  EXPECT_EQ(disk.sectors_read(), 2u);
}

TEST(storage, utilization_reflects_busy_slots) {
  sim::simulator s;
  storage_config cfg;
  storage disk(s, cfg, util::rng(1));
  disk.write(4 * 4096, {});  // exactly fills the 4 slots once
  s.run();
  EXPECT_NEAR(disk.utilization(), 1.0, 0.01);
}

// ---------- lock table ----------

struct lock_probe {
  bool granted = false;
  bool aborted = false;
  lock_abort_cause cause = lock_abort_cause::holder_committed;

  lock_table::granted_fn on_grant() {
    return [this] { granted = true; };
  }
  lock_table::aborted_fn on_abort() {
    return [this](lock_abort_cause c) {
      aborted = true;
      cause = c;
    };
  }
};

TEST(lock_table, atomic_grant_when_free) {
  lock_table lt;
  lock_probe p;
  const std::vector<item_id> items{1, 2, 3};
  lt.acquire(10, items, false, p.on_grant(), p.on_abort());
  EXPECT_TRUE(p.granted);
  EXPECT_TRUE(lt.holds(10));
  lt.check_invariants();
}

TEST(lock_table, conflicting_txn_waits) {
  lock_table lt;
  lock_probe a, b;
  lt.acquire(1, std::vector<item_id>{5}, false, a.on_grant(), a.on_abort());
  lt.acquire(2, std::vector<item_id>{5, 6}, false, b.on_grant(),
             b.on_abort());
  EXPECT_TRUE(a.granted);
  EXPECT_FALSE(b.granted);
  EXPECT_TRUE(lt.waiting(2));
  lt.check_invariants();
}

TEST(lock_table, holder_commit_aborts_waiters) {
  // §3.1: "When a transaction commits, all other transactions waiting on
  // the same locks are aborted due to write-write conflicts."
  lock_table lt;
  lock_probe a, b, c;
  lt.acquire(1, std::vector<item_id>{5}, false, a.on_grant(), a.on_abort());
  lt.acquire(2, std::vector<item_id>{5}, false, b.on_grant(), b.on_abort());
  lt.acquire(3, std::vector<item_id>{5}, false, c.on_grant(), c.on_abort());
  lt.release_commit(1);
  EXPECT_TRUE(b.aborted);
  EXPECT_TRUE(c.aborted);
  EXPECT_EQ(b.cause, lock_abort_cause::holder_committed);
  EXPECT_EQ(lt.held_items(), 0u);
  lt.check_invariants();
}

TEST(lock_table, holder_abort_passes_locks_on) {
  // "If the transaction aborts, the locks are released and can be
  // acquired by the next transaction."
  lock_table lt;
  lock_probe a, b;
  lt.acquire(1, std::vector<item_id>{5}, false, a.on_grant(), a.on_abort());
  lt.acquire(2, std::vector<item_id>{5}, false, b.on_grant(), b.on_abort());
  lt.release_abort(1);
  EXPECT_TRUE(b.granted);
  EXPECT_FALSE(b.aborted);
  EXPECT_TRUE(lt.holds(2));
  lt.check_invariants();
}

TEST(lock_table, atomic_acquisition_all_or_nothing) {
  lock_table lt;
  lock_probe a, b;
  lt.acquire(1, std::vector<item_id>{1}, false, a.on_grant(), a.on_abort());
  // txn 2 needs {1,2}: must hold NEITHER while waiting.
  lt.acquire(2, std::vector<item_id>{1, 2}, false, b.on_grant(),
             b.on_abort());
  EXPECT_FALSE(b.granted);
  // item 2 stays free for others.
  lock_probe c;
  lt.acquire(3, std::vector<item_id>{2}, false, c.on_grant(), c.on_abort());
  EXPECT_TRUE(c.granted);
  lt.check_invariants();
}

TEST(lock_table, certified_preempts_uncertified_holder) {
  // §3.1: remote transactions have passed certification and must commit;
  // "local transactions holding the same locks are preempted and aborted
  // right away."
  lock_table lt;
  lock_probe local, remote;
  lt.acquire(1, std::vector<item_id>{7, 8}, false, local.on_grant(),
             local.on_abort());
  EXPECT_TRUE(local.granted);
  lt.acquire(2, std::vector<item_id>{8}, true, remote.on_grant(),
             remote.on_abort());
  EXPECT_TRUE(local.aborted);
  EXPECT_EQ(local.cause, lock_abort_cause::preempted);
  EXPECT_TRUE(remote.granted);
  EXPECT_FALSE(lt.holds(1));
  lt.check_invariants();
}

TEST(lock_table, certified_waits_for_certified) {
  lock_table lt;
  lock_probe r1, r2;
  lt.acquire(1, std::vector<item_id>{7}, true, r1.on_grant(), r1.on_abort());
  lt.acquire(2, std::vector<item_id>{7}, true, r2.on_grant(), r2.on_abort());
  EXPECT_TRUE(r1.granted);
  EXPECT_FALSE(r2.granted);
  EXPECT_FALSE(r2.aborted);
  lt.release_commit(1);
  EXPECT_TRUE(r2.granted);  // certified waiters survive a commit
  lt.check_invariants();
}

TEST(lock_table, certified_beats_older_uncertified_waiter) {
  lock_table lt;
  lock_probe holder, waiter, remote;
  lt.acquire(1, std::vector<item_id>{7}, false, holder.on_grant(),
             holder.on_abort());
  lt.acquire(2, std::vector<item_id>{7}, false, waiter.on_grant(),
             waiter.on_abort());
  lt.acquire(3, std::vector<item_id>{7}, true, remote.on_grant(),
             remote.on_abort());
  // The remote takes the lock (preempting the holder); the uncertified
  // waiter keeps waiting, then aborts when the remote commits.
  EXPECT_TRUE(holder.aborted);
  EXPECT_TRUE(remote.granted);
  EXPECT_FALSE(waiter.granted);
  lt.release_commit(3);
  EXPECT_TRUE(waiter.aborted);
  lt.check_invariants();
}

TEST(lock_table, mark_certified_blocks_preemption) {
  lock_table lt;
  lock_probe local, remote;
  lt.acquire(1, std::vector<item_id>{9}, false, local.on_grant(),
             local.on_abort());
  lt.mark_certified(1);  // local transaction passed certification
  lt.acquire(2, std::vector<item_id>{9}, true, remote.on_grant(),
             remote.on_abort());
  EXPECT_FALSE(local.aborted);
  EXPECT_FALSE(remote.granted);  // queues behind the certified holder
  lt.release_commit(1);
  EXPECT_TRUE(remote.granted);
  lt.check_invariants();
}

TEST(lock_table, wait_queue_fifo_among_uncertified) {
  lock_table lt;
  lock_probe a, b, c;
  lt.acquire(1, std::vector<item_id>{4}, false, a.on_grant(), a.on_abort());
  lt.acquire(2, std::vector<item_id>{4}, false, b.on_grant(), b.on_abort());
  lt.acquire(3, std::vector<item_id>{4}, false, c.on_grant(), c.on_abort());
  lt.release_abort(1);
  EXPECT_TRUE(b.granted);
  EXPECT_FALSE(c.granted);
  lt.check_invariants();
}

// ---------- server ----------

struct server_fixture {
  sim::simulator s;
  csrt::cpu_pool cpu{s, 1};
  server_config cfg;
  std::unique_ptr<server> srv;

  server_fixture() {
    cfg.commit_cpu = milliseconds(2);
    srv = std::make_unique<server>(s, cpu, cfg, util::rng(3));
  }

  static txn_request update_txn(std::uint64_t id, item_id item,
                                sim_duration cpu_time) {
    txn_request req;
    req.id = id;
    req.cls = 0;
    req.read_set = {item};
    req.write_set = {item};
    req.update_bytes = 100;
    operation p;
    p.k = operation::kind::process;
    p.cpu = cpu_time;
    req.ops = {p};
    return req;
  }
};

TEST(server, local_execute_then_commit) {
  server_fixture f;
  bool executed = false;
  txn_outcome outcome{};
  f.srv->submit(
      server_fixture::update_txn(1, 42, milliseconds(5)),
      [&](const txn_request& r) {
        executed = true;
        // Commit point reached: server waits for the termination protocol.
        f.srv->finish_commit(r.id);
      },
      [&](std::uint64_t, txn_outcome o) { outcome = o; });
  f.s.run();
  EXPECT_TRUE(executed);
  EXPECT_EQ(outcome, txn_outcome::committed);
  // exec 5ms + commit 2ms + one sector write 1.727ms.
  EXPECT_NEAR(to_millis(f.s.now()), 8.73, 0.2);
}

TEST(server, certification_abort_releases_locks) {
  server_fixture f;
  txn_outcome o1{}, o2{};
  f.srv->submit(
      server_fixture::update_txn(1, 42, milliseconds(5)),
      [&](const txn_request& r) { f.srv->finish_abort(r.id); },
      [&](std::uint64_t, txn_outcome o) { o1 = o; });
  f.srv->submit(
      server_fixture::update_txn(2, 42, milliseconds(5)),
      [&](const txn_request& r) { f.srv->finish_commit(r.id); },
      [&](std::uint64_t, txn_outcome o) { o2 = o; });
  f.s.run();
  EXPECT_EQ(o1, txn_outcome::aborted_cert);
  EXPECT_EQ(o2, txn_outcome::committed);  // inherited the lock after abort
}

TEST(server, waiter_aborts_when_holder_commits) {
  server_fixture f;
  txn_outcome o2{};
  bool t2_executed = false;
  f.srv->submit(
      server_fixture::update_txn(1, 42, milliseconds(5)),
      [&](const txn_request& r) { f.srv->finish_commit(r.id); },
      [](std::uint64_t, txn_outcome) {});
  f.srv->submit(
      server_fixture::update_txn(2, 42, milliseconds(5)),
      [&](const txn_request&) { t2_executed = true; },
      [&](std::uint64_t, txn_outcome o) { o2 = o; });
  f.s.run();
  EXPECT_FALSE(t2_executed);  // never got the lock
  EXPECT_EQ(o2, txn_outcome::aborted_lock);
}

TEST(server, remote_apply_preempts_executing_local) {
  server_fixture f;
  txn_outcome local_outcome{};
  bool local_executed = false;
  f.srv->submit(
      server_fixture::update_txn(1, 42, milliseconds(50)),
      [&](const txn_request&) { local_executed = true; },
      [&](std::uint64_t, txn_outcome o) { local_outcome = o; });

  bool applied = false;
  f.s.schedule_at(milliseconds(10), [&] {
    f.srv->apply_remote(server_fixture::update_txn(999, 42, 0),
                        [&] { applied = true; });
  });
  f.s.run();
  EXPECT_FALSE(local_executed);
  EXPECT_EQ(local_outcome, txn_outcome::aborted_preempt);
  EXPECT_TRUE(applied);
  EXPECT_EQ(f.srv->remote_applied(), 1u);
}

TEST(server, read_only_skips_locks_and_disk) {
  server_fixture f;
  txn_request ro;
  ro.id = 5;
  operation p;
  p.k = operation::kind::process;
  p.cpu = milliseconds(3);
  ro.ops = {p};
  ro.read_set = {1, 2, 3};

  txn_outcome outcome{};
  f.srv->submit(
      ro, [&](const txn_request& r) { f.srv->finish_commit(r.id); },
      [&](std::uint64_t, txn_outcome o) { outcome = o; });
  f.s.run();
  EXPECT_EQ(outcome, txn_outcome::committed);
  EXPECT_EQ(f.srv->disk().sectors_written(), 0u);
  EXPECT_NEAR(to_millis(f.s.now()), 3.0, 0.1);
}

TEST(server, write_set_granules_do_not_hit_disk_or_locks) {
  server_fixture f;
  txn_request req = server_fixture::update_txn(1, 42, milliseconds(1));
  req.write_set.push_back(granule_of(42));
  txn_outcome outcome{};
  f.srv->submit(
      req, [&](const txn_request& r) { f.srv->finish_commit(r.id); },
      [&](std::uint64_t, txn_outcome o) { outcome = o; });
  f.s.run();
  EXPECT_EQ(outcome, txn_outcome::committed);
  EXPECT_EQ(f.srv->disk().sectors_written(), 1u);  // one real tuple only
}

}  // namespace
}  // namespace dbsm::db
