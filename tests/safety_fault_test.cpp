// The paper's §5.3 safety property as a parameterized test: under every
// fault scenario (clock drift, scheduling latency, random loss, bursty
// loss, crash, combinations — and the timed scenarios the flat plan could
// not express: partitions with healing, transient loss windows), all
// operational sites commit exactly the same sequence of transactions.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "fault/fault_types.hpp"
#include "fault/scenarios.hpp"

namespace dbsm::core {
namespace {

struct fault_case {
  const char* name;
  fault::scenario scenario;
  unsigned sites;
  unsigned clients;
  /// Run with membership recovery; expect this many rejoined sites.
  unsigned expect_rejoined = 0;
  /// Nonzero: run for this much simulated time instead of a response
  /// target (recovery cases must outlive their last rejoin).
  sim_duration run_for = 0;
};

fault_case make_case(const char* name, fault::scenario s, unsigned sites = 3,
                     unsigned clients = 30, unsigned expect_rejoined = 0,
                     sim_duration run_for = 0) {
  return fault_case{name, std::move(s), sites, clients, expect_rejoined,
                    run_for};
}

std::vector<fault_case> all_cases() {
  std::vector<fault_case> cases;
  cases.push_back(make_case("no_faults", {}));
  {
    fault::plan p;
    p.random_loss = 0.05;
    cases.push_back(make_case("random_loss_5", fault::from_plan(p)));
  }
  {
    fault::plan p;
    p.random_loss = 0.15;
    cases.push_back(make_case("random_loss_15", fault::from_plan(p)));
  }
  {
    fault::plan p;
    p.bursty_loss = 0.05;
    p.burst_len = 5;
    cases.push_back(make_case("bursty_loss_5", fault::from_plan(p)));
  }
  {
    fault::plan p;
    p.clock_drift = 0.10;
    cases.push_back(make_case("clock_drift_10pct", fault::from_plan(p)));
  }
  {
    fault::plan p;
    p.sched_latency_max = milliseconds(5);
    cases.push_back(make_case("sched_latency_5ms", fault::from_plan(p)));
  }
  {
    fault::plan p;
    p.crashes.push_back({2, seconds(20)});
    cases.push_back(make_case("crash_one_site", fault::from_plan(p)));
  }
  {
    fault::plan p;
    p.random_loss = 0.05;
    p.crashes.push_back({1, seconds(20)});
    cases.push_back(make_case("crash_under_loss", fault::from_plan(p), 4, 40));
  }
  {
    fault::plan p;
    p.clock_drift = 0.05;
    p.sched_latency_max = milliseconds(2);
    cases.push_back(make_case("drift_plus_latency", fault::from_plan(p)));
  }
  // --- timed/composed scenarios, inexpressible in the flat plan ---
  {
    // Site 2 is cut off well past the suspicion timeout, then the
    // partition heals: the majority excludes it and keeps committing; the
    // minority must stall (primary partition) rather than split-brain.
    fault::scenario s("partition_then_heal");
    s.add(std::make_shared<fault::partition_fault>(fault::site_set{2}),
          seconds(10), seconds(14));
    cases.push_back(make_case("partition_then_heal", std::move(s)));
  }
  {
    // The cut heals before the suspicion timeout fires: a purely
    // transient partition the reliability layer rides out with NAKs.
    fault::scenario s("partition_blip");
    s.add(std::make_shared<fault::partition_fault>(fault::site_set{2}),
          seconds(10), seconds(10) + milliseconds(150));
    cases.push_back(make_case("partition_blip", std::move(s)));
  }
  {
    // Heavy loss confined to a window: clean before and after.
    fault::scenario s("transient_loss_window");
    s.add(fault::loss_fault::random(0.30), seconds(5), seconds(15));
    cases.push_back(make_case("transient_loss_window", std::move(s)));
  }
  {
    // Overlapping windows: a loss burst over a sustained slow replica.
    fault::scenario s("slow_replica_plus_loss_burst");
    s.add(std::make_shared<fault::sched_latency_fault>(
        milliseconds(10), fault::site_selector{fault::site_set{2}}));
    s.add(fault::loss_fault::random(0.20), seconds(8), seconds(12));
    cases.push_back(
        make_case("slow_replica_plus_loss_burst", std::move(s)));
  }
  // --- recovery scenarios: full cut/heal/rejoin cycles. The §5.3 check
  // --- runs over every rejoined site's complete (transferred prefix +
  // --- replay + live) committed sequence.
  {
    fault::scenarios::params prm;
    prm.sites = 3;
    prm.onset = seconds(8);
    cases.push_back(make_case("partition_cut_heal_rejoin",
                              fault::scenarios::partition_cut_heal_rejoin(prm),
                              3, 30, /*expect_rejoined=*/1, seconds(30)));
    cases.push_back(make_case("crash_restart",
                              fault::scenarios::crash_restart(prm), 3, 30,
                              /*expect_rejoined=*/1, seconds(30)));
    cases.push_back(make_case("rolling_restarts",
                              fault::scenarios::rolling_restarts(prm), 3, 30,
                              /*expect_rejoined=*/3, seconds(70)));
  }
  return cases;
}

class safety_under_faults : public ::testing::TestWithParam<fault_case> {};

TEST_P(safety_under_faults, operational_sites_agree) {
  const fault_case& fc = GetParam();
  experiment_config cfg;
  cfg.sites = fc.sites;
  cfg.cpus_per_site = 1;
  cfg.clients = fc.clients;
  cfg.target_responses = fc.run_for != 0 ? 0 : 250;
  cfg.max_sim_time = fc.run_for != 0 ? fc.run_for : seconds(400);
  cfg.seed = 1234;
  cfg.faults = fc.scenario;
  cfg.enable_recovery = fc.expect_rejoined > 0;

  const auto result = run_experiment(cfg);

  // Safety: identical committed sequences (§5.3).
  EXPECT_TRUE(result.safety.ok) << fc.name << ": " << result.safety.detail;
  // The online invariant monitors must stay silent across the catalog.
  EXPECT_TRUE(result.checks.ok) << fc.name << ": " << result.checks.summary();
  // Liveness: the system made progress despite the faults.
  EXPECT_GT(result.stats.total_committed(), 50u) << fc.name;
  EXPECT_GT(result.safety.common_prefix, 10u) << fc.name;
  // Recovery: every site the scenario brings back must be in again.
  EXPECT_EQ(result.rejoined_sites(), fc.expect_rejoined) << fc.name;
}

INSTANTIATE_TEST_SUITE_P(
    fault_types, safety_under_faults, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<fault_case>& info) {
      return info.param.name;
    });

TEST(safety_checker, detects_divergence) {
  std::vector<std::vector<std::uint64_t>> logs{{1, 2, 3}, {1, 2, 4}};
  const auto report = check_commit_logs(logs);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.common_prefix, 2u);
}

TEST(safety_checker, accepts_prefix_lag) {
  std::vector<std::vector<std::uint64_t>> logs{{1, 2, 3}, {1, 2}, {1, 2, 3}};
  const auto report = check_commit_logs(logs);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.common_prefix, 2u);
}

TEST(safety_fault, loss_increases_abort_rate) {
  // Table 2's direction: random loss raises abort rates noticeably more
  // than bursty loss of the same average rate.
  experiment_config base;
  base.sites = 3;
  base.clients = 60;
  base.target_responses = 1000;
  base.max_sim_time = seconds(600);
  base.seed = 5;

  auto none = run_experiment(base);

  auto random_cfg = base;
  fault::plan loss;
  loss.random_loss = 0.05;
  random_cfg.faults = fault::from_plan(loss);
  auto random = run_experiment(random_cfg);

  EXPECT_TRUE(none.safety.ok);
  EXPECT_TRUE(random.safety.ok);
  EXPECT_GE(random.stats.abort_rate_pct(),
            none.stats.abort_rate_pct());
  // Loss engages retransmission machinery.
  EXPECT_GT(random.retransmissions, none.retransmissions);
}

TEST(safety_fault, excluding_partition_changes_view_and_stays_safe) {
  // The partition that outlives the suspicion timeout must produce a view
  // change on the majority side, and the healed minority must not have
  // committed anything beyond the common prefix.
  experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 30;
  cfg.target_responses = 250;
  cfg.max_sim_time = seconds(400);
  cfg.seed = 99;
  fault::scenario s("partition_then_heal");
  s.add(std::make_shared<fault::partition_fault>(fault::site_set{2}),
        seconds(10), seconds(14));
  cfg.faults = s;

  const auto result = run_experiment(cfg);
  EXPECT_TRUE(result.safety.ok) << result.safety.detail;
  EXPECT_TRUE(result.checks.ok) << result.checks.summary();
  EXPECT_GE(result.view_changes, 1u);
  EXPECT_GT(result.stats.total_committed(), 50u);
}

}  // namespace
}  // namespace dbsm::core
