// Cross-ordering differential conformance suite (the gcs/ordering.hpp
// seam): every total-order implementation must satisfy the same runtime
// specification — the seven online monitors, the §5.3 off-line safety
// check, and deterministic same-seed replay — across the full fault
// catalog, the paper's campaign scenarios, recovery rejoin, and the
// batching grid. The fixed sequencer (the default) is additionally held
// to the historical seed-7 anchors byte-for-byte; the rotating token is
// held to the protocol-level contract (regeneration at view change,
// retransmission until superseded, holder-only minting) by scripted
// fake-env unit tests, including token-loss and holder-crash cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fake_env.hpp"
#include "fault/scenarios.hpp"
#include "gcs/sequencer.hpp"
#include "gcs/token_order.hpp"
#include "util/distributions.hpp"
#include "workload/kv.hpp"

namespace dbsm {
namespace {

using test::fake_env;

// ---------- token wire codec ----------

TEST(token_codec, round_trips_exactly) {
  gcs::token_msg t;
  t.hdr = {gcs::msg_type::token, 42, 3};
  t.token_seq = 17;
  t.next_assign = 0xdeadbeefcafeull;
  t.holder = 2;
  const gcs::token_msg back = gcs::decode_token(gcs::encode(t));
  EXPECT_EQ(back.hdr.view_id, 42u);
  EXPECT_EQ(back.hdr.sender, 3u);
  EXPECT_EQ(back.token_seq, 17u);
  EXPECT_EQ(back.next_assign, 0xdeadbeefcafeull);
  EXPECT_EQ(back.holder, 2u);
}

TEST(token_codec, header_peek_identifies_the_type) {
  gcs::token_msg t;
  t.hdr = {gcs::msg_type::token, 7, 1};
  EXPECT_EQ(gcs::decode_header(gcs::encode(t)).type, gcs::msg_type::token);
}

// ---------- token_order protocol unit tests (scripted fake env) ----------

util::shared_bytes text_payload(const std::string& s) {
  return std::make_shared<util::bytes>(s.begin(), s.end());
}

struct token_fixture {
  fake_env env{0, {0, 1, 2}};
  gcs::group_config cfg;
  gcs::token_order to{env, cfg};
  std::vector<std::pair<std::uint64_t, std::string>> delivered;
  std::vector<util::shared_bytes> sent_mints;
  struct pass {
    std::uint64_t seq;
    std::uint64_t next_assign;
    node_id holder;
  };
  std::vector<pass> passes;

  token_fixture() {
    to.set_deliver([this](node_id, std::uint64_t seq,
                          util::shared_bytes payload) {
      delivered.emplace_back(seq,
                             std::string(payload->begin(), payload->end()));
    });
    to.set_send_batch([this](util::shared_bytes b) {
      sent_mints.push_back(std::move(b));
    });
    to.set_send_token([this](std::uint64_t seq, std::uint64_t next_assign,
                             node_id holder) {
      passes.push_back({seq, next_assign, holder});
    });
  }

  static gcs::token_msg tok(std::uint64_t seq, std::uint64_t next_assign,
                            node_id holder, node_id sender = 2) {
    gcs::token_msg t;
    t.hdr = {gcs::msg_type::token, 1, sender};
    t.token_seq = seq;
    t.next_assign = next_assign;
    t.holder = holder;
    return t;
  }
};

TEST(token_order, lead_regenerates_the_token_and_passes_when_idle) {
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 0);  // we are the lead: hold, no wire message
  EXPECT_TRUE(f.to.holds_token());
  EXPECT_TRUE(f.passes.empty());
  // Nothing of ours to order: the idle delay bounds how long we sit on it.
  f.env.advance(f.cfg.token_idle_delay + microseconds(1));
  ASSERT_EQ(f.passes.size(), 1u);
  EXPECT_EQ(f.passes[0].holder, 1u);  // next member in site-id order
  EXPECT_FALSE(f.to.holds_token());
  EXPECT_TRUE(f.sent_mints.empty());  // idle pass mints nothing
}

TEST(token_order, holder_mints_own_pending_then_passes) {
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 0);
  f.to.on_user_msg(0, 1, text_payload("mine"), 1);
  // Completion of our own message while holding: mint one batch record
  // and pass straight away — no idle wait.
  ASSERT_EQ(f.sent_mints.size(), 1u);
  const gcs::assignment_batch b =
      gcs::decode_assignment_batch(f.sent_mints[0]);
  EXPECT_EQ(b.base, 1u);
  ASSERT_EQ(b.keys.size(), 1u);
  EXPECT_EQ(b.keys[0].first, 0u);
  EXPECT_EQ(b.keys[0].second, 1u);
  ASSERT_EQ(f.passes.size(), 1u);
  EXPECT_EQ(f.passes[0].next_assign, 2u);  // numbering travels with it
  // Like the sequencer, the mint takes effect only via the wire echo.
  EXPECT_TRUE(f.delivered.empty());
  f.to.on_assignment_batch(f.sent_mints[0]);
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].second, "mine");
}

TEST(token_order, non_holder_buffers_until_the_token_arrives) {
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 1);  // lead is site 1: we wait
  EXPECT_FALSE(f.to.holds_token());
  f.to.on_user_msg(0, 1, text_payload("mine"), 1);
  EXPECT_TRUE(f.sent_mints.empty());  // no token, no mint
  f.to.on_token(token_fixture::tok(1, 1, 0));  // the token reaches us
  EXPECT_EQ(f.to.mints(), 1u);
  ASSERT_EQ(f.sent_mints.size(), 1u);
  ASSERT_EQ(f.passes.size(), 1u);
  EXPECT_EQ(f.passes[0].holder, 1u);
}

TEST(token_order, holder_never_mints_other_sites_messages) {
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 0);
  f.to.on_user_msg(1, 1, text_payload("theirs"), 1);
  f.env.advance(f.cfg.token_idle_delay + microseconds(1));
  EXPECT_TRUE(f.sent_mints.empty());  // their own hop will order it
  ASSERT_EQ(f.passes.size(), 1u);
}

TEST(token_order, duplicate_and_stale_tokens_are_ignored) {
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 1);
  f.to.on_user_msg(0, 1, text_payload("mine"), 1);
  f.to.on_token(token_fixture::tok(3, 1, 0));
  ASSERT_EQ(f.passes.size(), 1u);
  // A retransmission of the same hop must not re-acquire (we passed on),
  // and an overtaken hop must not either.
  f.to.on_token(token_fixture::tok(3, 1, 0));
  f.to.on_token(token_fixture::tok(2, 1, 0));
  EXPECT_EQ(f.passes.size(), 1u);
  EXPECT_EQ(f.to.mints(), 1u);
  EXPECT_FALSE(f.to.holds_token());
}

TEST(token_order, passer_retransmits_until_superseded) {
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 0);
  f.env.advance(f.cfg.token_idle_delay + microseconds(1));  // pass to 1
  ASSERT_EQ(f.passes.size(), 1u);
  const auto first = f.passes[0];
  // The successor stays silent: the pass is re-multicast verbatim.
  f.env.advance(f.cfg.token_retry);
  ASSERT_EQ(f.passes.size(), 2u);
  EXPECT_EQ(f.passes[1].seq, first.seq);
  EXPECT_EQ(f.passes[1].holder, first.holder);
  EXPECT_EQ(f.to.token_retries(), 1u);
  // Observing a later hop (site 1 passed to site 2) supersedes it.
  f.to.on_token(token_fixture::tok(first.seq + 1, 1, 2));
  f.env.advance(2 * f.cfg.token_retry);
  EXPECT_EQ(f.passes.size(), 2u);
}

TEST(token_order, token_returns_after_full_circulation) {
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 0);
  f.env.advance(f.cfg.token_idle_delay + microseconds(1));  // pass to 1
  const std::uint64_t hop = f.passes[0].seq;
  f.to.on_user_msg(0, 1, text_payload("mine"), 1);
  EXPECT_EQ(f.sent_mints.size(), 0u);  // not holding: buffered
  // Site 2 passes the token back to us, carrying the advanced numbering
  // (sites 1 and 2 minted two records while they held it).
  f.to.on_token(token_fixture::tok(hop + 2, 5, 0));
  ASSERT_EQ(f.sent_mints.size(), 1u);
  EXPECT_EQ(gcs::decode_assignment_batch(f.sent_mints[0]).base, 5u);
}

TEST(token_order, quiesce_stops_minting_and_the_token_clock) {
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 0);
  EXPECT_GT(f.env.pending_timers(), 0u);  // the idle hold timer
  f.to.quiesce();
  EXPECT_EQ(f.env.pending_timers(), 0u);  // clock stopped
  f.to.on_user_msg(0, 1, text_payload("mine"), 1);
  EXPECT_TRUE(f.sent_mints.empty());  // no mint while quiesced
  EXPECT_TRUE(f.passes.empty());
}

TEST(token_order, view_change_regenerates_the_token_deterministically) {
  // Token-loss-at-view-change: the member holding (or owed) the token is
  // voted out; the survivors' install must regenerate it at the new lead
  // with no wire message, and deliver the flushed backlog first.
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 1);  // site 1 holds the token...
  f.to.on_user_msg(0, 1, text_payload("mine"), 1);
  f.to.on_user_msg(2, 1, text_payload("theirs"), 1);
  f.to.quiesce();
  // ...and crashes with it. Flush cut covers both buffered messages.
  f.to.install_view({0, 1, 2}, {5, 5, 5}, {0, 2});
  ASSERT_EQ(f.delivered.size(), 2u);  // deterministic unassigned delivery
  EXPECT_EQ(f.delivered[0].second, "mine");    // (0,1) before (2,1)
  EXPECT_EQ(f.delivered[1].second, "theirs");
  f.to.set_roles({0, 2}, 0);  // new view: we are lead
  EXPECT_TRUE(f.to.holds_token());
  // Nothing left unordered, so the fresh token idles and passes on.
  f.env.advance(f.cfg.token_idle_delay + microseconds(1));
  ASSERT_EQ(f.passes.size(), 1u);
  EXPECT_EQ(f.passes[0].holder, 2u);  // site 1 is gone from the rotation
}

TEST(token_order, mint_in_flight_at_view_change_needs_no_rollback) {
  // A mint broadcast before quiesce() is covered by the flush cut: the
  // record arrives during the flush and the install delivers through it —
  // the minter must not roll those assignments back (they are
  // wire-visible, unlike the sequencer's unflushed batch).
  token_fixture f;
  f.to.set_roles({0, 1, 2}, 0);
  f.to.on_user_msg(0, 1, text_payload("mine"), 1);
  ASSERT_EQ(f.sent_mints.size(), 1u);
  f.to.quiesce();
  f.to.on_assignment_batch(f.sent_mints[0]);  // the echo, inside the cut
  ASSERT_EQ(f.delivered.size(), 1u);
  f.to.install_view({0, 1, 2}, {5, 5, 5}, {0, 2});
  f.to.set_roles({0, 2}, 0);
  EXPECT_EQ(f.delivered.size(), 1u);   // nothing double-delivered
  EXPECT_EQ(f.sent_mints.size(), 1u);  // nothing re-minted
}

TEST(token_order, single_member_view_keeps_the_token) {
  fake_env env{0, std::vector<node_id>{0}};
  gcs::group_config cfg;
  gcs::token_order to{env, cfg};
  std::vector<util::shared_bytes> mints;
  std::size_t passes = 0;
  to.set_send_batch([&](util::shared_bytes b) { mints.push_back(b); });
  to.set_send_token([&](std::uint64_t, std::uint64_t, node_id) { ++passes; });
  to.set_roles({0}, 0);
  EXPECT_TRUE(to.holds_token());
  to.on_user_msg(0, 1, text_payload("solo"), 1);
  EXPECT_EQ(mints.size(), 1u);  // mints immediately, keeps the token
  env.advance(seconds(1));
  EXPECT_EQ(passes, 0u);
  EXPECT_TRUE(to.holds_token());
}

// ---------- the fixed-sequencer anchor pin (byte-identical default) ----

std::uint64_t fnv1a(const std::vector<std::uint64_t>& log) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t v : log)
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  return h;
}

core::experiment_config campaign_cfg(const fault::scenarios::catalog_entry& e,
                                     gcs::ordering_kind ord) {
  fault::scenarios::params prm;
  prm.sites = std::max(3u, e.min_sites);
  core::experiment_config cfg;
  cfg.sites = prm.sites;
  cfg.clients = 120;
  cfg.target_responses = 1500;
  cfg.max_sim_time = seconds(900);
  cfg.seed = 7;
  cfg.faults = e.make(prm);
  cfg.enable_recovery = e.needs_recovery;
  cfg.gcs.ordering = ord;
  if (e.placement_degree > 0)
    cfg.placement = {place::strategy::round_robin, e.placement_degree};
  return cfg;
}

// The ordering seam must leave the default campaign byte-identical to the
// PR 9 anchors (ROADMAP/REPRODUCING): the six paper scenarios at seed 7
// commit exactly 1486/1486/1488/1484/1482/1489, site 0's committed
// sequence hashes to the recorded value — and the fixed sequencer never
// touches the token control plane.
TEST(ordering_anchor, fixed_sequencer_reproduces_the_pr9_campaign) {
  struct anchor {
    const char* scenario;
    std::uint64_t committed, log0_hash;
  };
  const anchor anchors[] = {
      {"no_faults", 1486, 15300083140241123095ull},
      {"clock_drift", 1486, 15300083140241123095ull},
      {"sched_latency", 1488, 16253171361519036774ull},
      {"random_loss", 1484, 13248787998320292641ull},
      {"bursty_loss", 1482, 16672813696863721401ull},
      {"crash", 1489, 15446268365123131477ull},
  };
  gcs::group_config defaults;
  EXPECT_EQ(defaults.ordering, gcs::ordering_kind::fixed_sequencer);
  for (const anchor& a : anchors) {
    const auto* e = fault::scenarios::find(a.scenario);
    ASSERT_NE(e, nullptr) << a.scenario;
    const auto r = core::run_experiment(
        campaign_cfg(*e, gcs::ordering_kind::fixed_sequencer));
    EXPECT_EQ(r.stats.total_committed(), a.committed) << a.scenario;
    ASSERT_FALSE(r.commit_logs.empty()) << a.scenario;
    EXPECT_EQ(fnv1a(r.commit_logs[0]), a.log0_hash) << a.scenario;
    EXPECT_TRUE(r.checks.ok) << a.scenario << ": " << r.checks.summary();
    EXPECT_TRUE(r.safety.ok) << a.scenario << ": " << r.safety.detail;
    for (const core::site_report& s : r.sites) {
      EXPECT_EQ(s.token_ctl_sent, 0u) << a.scenario;
    }
  }
}

// ---------- differential conformance: catalog × both orderings ----------

const std::vector<gcs::ordering_kind>& both_orderings() {
  static const std::vector<gcs::ordering_kind> k = {
      gcs::ordering_kind::fixed_sequencer,
      gcs::ordering_kind::rotating_token};
  return k;
}

core::experiment_config kv_cfg(gcs::ordering_kind ord,
                               std::size_t batch_max = 1) {
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 45;
  cfg.target_responses = 400;
  cfg.max_sim_time = seconds(900);
  cfg.seed = 7;
  kv::kv_config k;
  k.keys = 20000;
  k.preset = kv::mix::ycsb_a;
  k.zipf_theta = 0.5;
  k.think_time = util::exponential_dist(0.5);
  cfg.workload = kv::factory(k);
  cfg.gcs.ordering = ord;
  cfg.gcs.batch_max = batch_max;
  if (batch_max > 1) cfg.gcs.batch_delay = milliseconds(2);
  return cfg;
}

// Every catalog scenario under BOTH orderings: the monitors cross-check
// every certification decision and apply online, the §5.3 off-line check
// verifies identical committed sequences across operational sites, and
// rejoin scenarios must actually bring the crashed site back. This is
// the runtime specification every ordering implementation is held to.
TEST(ordering_differential, full_fault_catalog_passes_under_both) {
  bool saw_token_holder_crash = false;
  for (const auto& e : fault::scenarios::catalog()) {
    for (const gcs::ordering_kind ord : both_orderings()) {
      const unsigned sites = e.min_sites > 3 ? 5 : 3;
      auto cfg = kv_cfg(ord);
      cfg.sites = sites;
      fault::scenarios::params prm;
      prm.sites = sites;
      prm.onset = seconds(2);
      cfg.faults = e.make(prm);
      cfg.enable_recovery = e.needs_recovery;
      if (e.placement_degree != 0)
        cfg.placement = {place::strategy::round_robin, e.placement_degree};
      cfg.target_responses = 0;
      cfg.max_sim_time =
          std::string(e.name) == "rolling_restarts" ? seconds(55)
          : e.needs_recovery                        ? seconds(25)
                                                    : seconds(15);
      const char* oname = gcs::ordering_name(ord);
      const auto r = core::run_experiment(cfg);
      EXPECT_TRUE(r.checks.ok)
          << e.name << "/" << oname << ": " << r.checks.summary();
      EXPECT_TRUE(r.safety.ok)
          << e.name << "/" << oname << ": " << r.safety.detail;
      EXPECT_GT(r.stats.total_committed(), 0u) << e.name << "/" << oname;
      if (e.needs_recovery) {
        EXPECT_GE(r.rejoined_sites(), 1u) << e.name << "/" << oname;
      }
      if (std::string(e.name) == "token_holder_crash") {
        saw_token_holder_crash = true;
        if (ord == gcs::ordering_kind::rotating_token) {
          EXPECT_GE(r.view_changes, 1u) << "holder crash went unnoticed";
        }
      }
    }
  }
  EXPECT_TRUE(saw_token_holder_crash);  // the new scenario is cataloged
}

// The paper's campaign scenarios at full campaign size under the
// rotating token: no anchors here (the token legitimately produces a
// different — equally valid — total order), but zero monitor violations,
// identical committed sequences across sites, and campaign-grade
// throughput are required.
TEST(ordering_differential, rotating_token_passes_the_paper_campaigns) {
  for (const char* scenario :
       {"no_faults", "clock_drift", "sched_latency", "random_loss",
        "bursty_loss", "crash"}) {
    const auto* e = fault::scenarios::find(scenario);
    ASSERT_NE(e, nullptr) << scenario;
    const auto r = core::run_experiment(
        campaign_cfg(*e, gcs::ordering_kind::rotating_token));
    EXPECT_TRUE(r.checks.ok) << scenario << ": " << r.checks.summary();
    EXPECT_TRUE(r.safety.ok) << scenario << ": " << r.safety.detail;
    EXPECT_GT(r.stats.total_committed(), 1400u) << scenario;
    std::uint64_t token_traffic = 0;
    for (const core::site_report& s : r.sites)
      token_traffic += s.token_ctl_sent;
    EXPECT_GT(token_traffic, 0u) << scenario;
  }
}

// Token-holder crash at full campaign size: the token dies with its
// holder mid-hop; ordering must stall (not corrupt), the view change
// must regenerate the token, and throughput must recover.
TEST(ordering_differential, token_holder_crash_recovers_at_campaign_size) {
  const auto* e = fault::scenarios::find("token_holder_crash");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->rotating_token);  // runners default it to the token
  const auto r = core::run_experiment(
      campaign_cfg(*e, gcs::ordering_kind::rotating_token));
  EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_GE(r.view_changes, 1u);
  EXPECT_GT(r.stats.total_committed(), 1400u);  // recovered, not wedged
  std::uint64_t token_traffic = 0;
  for (const core::site_report& s : r.sites)
    token_traffic += s.token_ctl_sent;
  EXPECT_GT(token_traffic, 0u);  // the token actually circulated
}

// ---------- cross-ordering commit-set reconciliation ----------

// Same seed, same workload, the two orderings: the committed SEQUENCES
// legitimately differ (global sequence numbers depend on who mints), but
// the committed SETS must reconcile — the bulk of the workload commits
// under either protocol, and each run's log is internally consistent
// across sites (the safety check above). A transaction missing from one
// side must simply have certified differently under the other's order.
TEST(ordering_differential, commit_sets_reconcile_across_orderings) {
  for (const char* scenario : {"no_faults", "slow_replica"}) {
    const auto* e = fault::scenarios::find(scenario);
    ASSERT_NE(e, nullptr) << scenario;
    std::vector<std::set<std::uint64_t>> sets;
    for (const gcs::ordering_kind ord : both_orderings()) {
      auto cfg = kv_cfg(ord);
      fault::scenarios::params prm;
      prm.sites = cfg.sites;
      cfg.faults = e->make(prm);
      const auto r = core::run_experiment(cfg);
      ASSERT_TRUE(r.safety.ok) << scenario << ": " << r.safety.detail;
      ASSERT_FALSE(r.commit_logs.empty()) << scenario;
      sets.emplace_back(r.commit_logs[0].begin(), r.commit_logs[0].end());
      ASSERT_FALSE(sets.back().empty()) << scenario;
    }
    std::vector<std::uint64_t> common;
    std::set_intersection(sets[0].begin(), sets[0].end(), sets[1].begin(),
                          sets[1].end(), std::back_inserter(common));
    const std::size_t smaller = std::min(sets[0].size(), sets[1].size());
    EXPECT_GE(common.size() * 10, smaller * 9)
        << scenario << ": fixed committed " << sets[0].size()
        << ", rotating " << sets[1].size() << ", overlap " << common.size();
  }
}

// ---------- determinism: same seed => byte-identical per ordering ------

TEST(ordering_differential, rotating_token_rerun_is_deterministic) {
  for (const std::size_t batch_max : {std::size_t{1}, std::size_t{32}}) {
    const auto a = core::run_experiment(
        kv_cfg(gcs::ordering_kind::rotating_token, batch_max));
    const auto b = core::run_experiment(
        kv_cfg(gcs::ordering_kind::rotating_token, batch_max));
    ASSERT_EQ(a.commit_logs.size(), b.commit_logs.size()) << batch_max;
    EXPECT_EQ(a.commit_logs, b.commit_logs) << batch_max;
    EXPECT_EQ(a.stats.total_committed(), b.stats.total_committed())
        << batch_max;
    EXPECT_EQ(a.responses, b.responses) << batch_max;
  }
}

// ---------- batching grid points under the rotating token ----------

// Batch atomic broadcast composes with the token: the holder's mint
// records are batch records natively, and batch_max > 1 additionally
// turns on run delivery + the pipelined commit path. Both grid points
// must run clean under the monitors, and the batched one must actually
// hand out runs.
TEST(ordering_differential, rotating_token_composes_with_batching) {
  for (const std::size_t batch_max : {std::size_t{1}, std::size_t{32}}) {
    const auto r = core::run_experiment(
        kv_cfg(gcs::ordering_kind::rotating_token, batch_max));
    EXPECT_TRUE(r.checks.ok) << batch_max << ": " << r.checks.summary();
    EXPECT_TRUE(r.safety.ok) << batch_max << ": " << r.safety.detail;
    EXPECT_GT(r.stats.total_committed(), 0u) << batch_max;
    std::uint64_t runs = 0, token_traffic = 0;
    for (const core::site_report& s : r.sites) {
      runs += s.delivery_runs;
      token_traffic += s.token_ctl_sent;
    }
    EXPECT_GT(token_traffic, 0u) << batch_max;
    if (batch_max > 1) {
      EXPECT_GT(runs, 0u);
    }
  }
}

// The load-spreading claim itself: under the fixed sequencer the minting
// site multicasts (and works) far more than anyone else — the §5.3
// bottleneck; the rotating token spreads protocol CPU across the view.
// Assert the spread (max/min protocol-CPU ratio across sites) strictly
// shrinks, which is the effect bench_ablation_ordering quantifies.
TEST(ordering_differential, token_spreads_protocol_cpu_across_sites) {
  auto spread = [](const core::experiment_result& r) {
    double lo = 1.0, hi = 0.0;
    for (const core::site_report& s : r.sites) {
      lo = std::min(lo, s.protocol_cpu);
      hi = std::max(hi, s.protocol_cpu);
    }
    return hi / std::max(lo, 1e-9);
  };
  const auto fixed =
      core::run_experiment(kv_cfg(gcs::ordering_kind::fixed_sequencer));
  const auto token =
      core::run_experiment(kv_cfg(gcs::ordering_kind::rotating_token));
  ASSERT_TRUE(fixed.checks.ok && token.checks.ok);
  EXPECT_LT(spread(token), spread(fixed))
      << "fixed spread " << spread(fixed) << ", token spread "
      << spread(token);
}

}  // namespace
}  // namespace dbsm
