// Unit tests for the online invariant monitors (check/monitors.hpp): the
// checker is fed a synthetic event stream directly, so each invariant's
// accept/reject boundary is pinned down without running a simulation.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/monitors.hpp"

namespace dbsm::check {
namespace {

cert::txn_payload make_txn(std::uint64_t id, std::uint64_t begin_pos = 0,
                           std::vector<db::item_id> reads = {},
                           std::vector<db::item_id> writes = {}) {
  cert::txn_payload t;
  t.id = id;
  t.begin_pos = begin_pos;
  t.read_set = std::move(reads);
  t.write_set = std::move(writes);
  return t;
}

decision_event commit_at(unsigned site, std::uint64_t seq,
                         const cert::txn_payload& txn, std::uint64_t log_len,
                         sim_time at = 0, bool commit = true) {
  return decision_event{site, seq, &txn, commit, log_len, at};
}

view_event install(unsigned site, std::uint32_t id,
                   std::vector<node_id> members, std::uint64_t delivered,
                   sim_time at = 0) {
  view_event e;
  e.site = site;
  e.v.id = id;
  e.v.members = std::move(members);
  e.delivered = delivered;
  e.at = at;
  return e;
}

config no_halt() {
  config c;
  c.halt_on_violation = false;
  return c;
}

// ---------- (1) agreed prefix ----------

TEST(agreed_prefix, prefix_agreement_and_divergence) {
  checker c(no_halt());
  c.add(std::make_unique<agreed_prefix_monitor>());
  const auto a = make_txn(101), b = make_txn(202);
  c.decision(commit_at(0, 1, a, 1));
  c.decision(commit_at(1, 1, a, 1));  // second site agrees on position 0
  EXPECT_TRUE(c.ok());
  c.decision(commit_at(2, 1, b, 1));  // same position, different txn
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.get_report().violations[0].invariant, "agreed_prefix");
  EXPECT_EQ(c.get_report().violations[0].site, 2u);
  EXPECT_EQ(c.get_report().decisions_checked, 3u);
}

TEST(agreed_prefix, aborts_never_enter_the_order) {
  checker c(no_halt());
  c.add(std::make_unique<agreed_prefix_monitor>());
  const auto a = make_txn(1), b = make_txn(2);
  c.decision(commit_at(0, 1, a, 0, 0, /*commit=*/false));
  // The abort consumed a total-order position but no commit-log slot:
  // position 0 of the log is still up for grabs.
  c.decision(commit_at(1, 2, b, 1));
  c.decision(commit_at(0, 2, b, 1));
  EXPECT_TRUE(c.ok()) << c.get_report().summary();
}

TEST(agreed_prefix, commit_log_gaps_are_flagged) {
  checker c(no_halt());
  c.add(std::make_unique<agreed_prefix_monitor>());
  const auto a = make_txn(1);
  // First commit anywhere lands at log length 2: position 0 was skipped.
  c.decision(commit_at(0, 1, a, 2));
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.get_report().violations[0].evidence.find("jumped"),
            std::string::npos);
}

TEST(agreed_prefix, orphan_branch_rolled_back_at_view_install) {
  checker c(no_halt());
  c.add(std::make_unique<agreed_prefix_monitor>());
  const auto orphan = make_txn(11), agreed = make_txn(22), next = make_txn(33);
  // Site 0 — a partitioned-off sequencer — self-delivers its own txn
  // (non-uniform delivery) at position 0.
  c.decision(commit_at(0, 1, orphan, 1));
  // The survivors {1, 2} install view 2 before committing anything: the
  // cut is 0 and everything past it held only by site 0 is rolled back.
  c.view_installed(install(1, 2, {1, 2}, 1));
  c.view_installed(install(2, 2, {1, 2}, 1));
  // The new primary partition redefines position 0 — no divergence.
  c.decision(commit_at(1, 2, agreed, 1));
  c.decision(commit_at(2, 2, agreed, 1));
  // The excluded site extending its dead branch is skipped by this
  // monitor (the primary_partition fence polices it instead).
  c.decision(commit_at(0, 2, next, 2));
  EXPECT_TRUE(c.ok()) << c.get_report().summary();
}

TEST(agreed_prefix, state_transfer_checked_against_agreed_order) {
  checker c(no_halt());
  c.add(std::make_unique<agreed_prefix_monitor>());
  const auto a = make_txn(1), b = make_txn(2);
  c.decision(commit_at(0, 1, a, 1));
  c.decision(commit_at(0, 2, b, 2));
  const std::vector<std::uint64_t> good{1, 2};
  c.log_reset({1, &good, 0});
  EXPECT_TRUE(c.ok());
  const std::vector<std::uint64_t> diverged{1, 7};
  c.log_reset({2, &diverged, 0});
  ASSERT_EQ(c.get_report().violations.size(), 1u);
  const std::vector<std::uint64_t> too_long{1, 2, 3};
  c.log_reset({2, &too_long, 0});
  EXPECT_EQ(c.get_report().violations.size(), 2u);
  EXPECT_EQ(c.get_report().log_resets_checked, 3u);
}

// ---------- (2) view synchrony ----------

TEST(view_synchrony, members_must_match_across_sites) {
  checker c(no_halt());
  c.add(std::make_unique<view_synchrony_monitor>(3));
  c.view_installed(install(0, 2, {0, 1}, 5));
  c.view_installed(install(1, 2, {0, 1}, 5));
  EXPECT_TRUE(c.ok());
  c.view_installed(install(2, 3, {0, 1, 2}, 9));
  c.view_installed(install(0, 3, {0, 2}, 9));  // disagrees on membership
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.get_report().violations[0].invariant, "view_synchrony");
  EXPECT_EQ(c.get_report().views_checked, 4u);
}

TEST(view_synchrony, delivery_cut_must_match_and_ids_increase) {
  checker c(no_halt());
  c.add(std::make_unique<view_synchrony_monitor>(2));
  c.view_installed(install(0, 2, {0, 1}, 5));
  c.view_installed(install(1, 2, {0, 1}, 7));  // same view, different cut
  ASSERT_EQ(c.get_report().violations.size(), 1u);
  EXPECT_NE(c.get_report().violations[0].evidence.find("cut"),
            std::string::npos);
  c.view_installed(install(0, 2, {0, 1}, 5));  // id did not increase
  EXPECT_EQ(c.get_report().violations.size(), 2u);
}

// ---------- (3) primary partition ----------

TEST(primary_partition, minority_view_violates_the_chain_rule) {
  checker c(no_halt());
  c.add(std::make_unique<primary_partition_monitor>(3));
  c.view_installed(install(0, 2, {0, 1}, 4));  // 2 of 3 survive: majority
  EXPECT_TRUE(c.ok());
  c.view_installed(install(2, 2, {2}, 4));  // 1 of 3: split brain
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.get_report().violations[0].invariant, "primary_partition");
  EXPECT_NE(c.get_report().violations[0].evidence.find("strict majority"),
            std::string::npos);
}

TEST(primary_partition, chain_rule_is_relative_to_the_previous_view) {
  checker c(no_halt());
  c.add(std::make_unique<primary_partition_monitor>(4));
  // {0,1,2,3} -> {0,1,2} -> {0,1}: each step keeps a strict majority of
  // the one before, even though {0,1} is a minority of the original four.
  c.view_installed(install(0, 2, {0, 1, 2}, 4));
  c.view_installed(install(0, 3, {0, 1}, 9));
  EXPECT_TRUE(c.ok()) << c.get_report().summary();
}

TEST(primary_partition, exclusion_fence_fires_only_after_discovery) {
  checker c(no_halt());
  c.add(std::make_unique<primary_partition_monitor>(3));
  const auto t = make_txn(5), u = make_txn(6);
  // Before the site learns of its exclusion it may still be riding the
  // group's in-flight stream on a slow link: no violation.
  c.decision(commit_at(2, 1, t, 1, milliseconds(10)));
  c.excluded({2, milliseconds(20)});
  EXPECT_TRUE(c.ok());
  c.decision(commit_at(2, 2, u, 2, milliseconds(30)));
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.get_report().violations[0].evidence.find("after learning"),
            std::string::npos);
}

// ---------- (4) 1SR certification oracle ----------

TEST(cert_oracle, flags_a_decision_the_reference_rejects) {
  checker c(no_halt());
  c.add(std::make_unique<cert_oracle_monitor>(cert::cert_config{}));
  const auto w1 = make_txn(1, /*begin_pos=*/0, {}, {10});
  c.decision(commit_at(0, 1, w1, 1));
  c.decision(commit_at(1, 1, w1, 1));  // a second site agreeing is fine
  EXPECT_TRUE(c.ok());
  // w2's snapshot predates w1's committed write of item 10: the merge
  // scan says abort, so a site claiming commit is a 1SR violation.
  const auto w2 = make_txn(2, /*begin_pos=*/0, {}, {10});
  c.decision(commit_at(0, 2, w2, 2, 0, /*commit=*/true));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.get_report().violations[0].invariant, "cert_oracle");
  EXPECT_NE(c.get_report().violations[0].evidence.find("abort"),
            std::string::npos);
}

TEST(cert_oracle, flags_diverging_transaction_identity) {
  checker c(no_halt());
  c.add(std::make_unique<cert_oracle_monitor>(cert::cert_config{}));
  const auto a = make_txn(1), b = make_txn(9);
  c.decision(commit_at(0, 1, a, 1));
  c.decision(commit_at(1, 1, b, 1));  // position 1 must hold txn 1 everywhere
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.get_report().violations[0].evidence.find("first decider"),
            std::string::npos);
}

TEST(cert_oracle, orphan_rollback_rebuilds_the_oracle) {
  checker c(no_halt());
  c.add(std::make_unique<cert_oracle_monitor>(cert::cert_config{}));
  // Site 0's orphan branch commits a write of item 10 at position 1.
  const auto orphan = make_txn(11, 0, {}, {10});
  c.decision(commit_at(0, 1, orphan, 1));
  // Survivors install view 2 at cut 0: the orphan verdict is rolled back
  // and its write set leaves the oracle's history.
  c.view_installed(install(1, 2, {1, 2}, 0));
  // The survivors' own first txn also writes item 10 from snapshot 0. If
  // the orphan's write still polluted the history this would have to
  // abort; rebuilt, the oracle says commit.
  const auto fresh = make_txn(22, 0, {}, {10});
  c.decision(commit_at(1, 1, fresh, 1, 0, /*commit=*/true));
  EXPECT_TRUE(c.ok()) << c.get_report().summary();
}

// ---------- (5) recovery convergence ----------

TEST(recovery_convergence, bounded_lag_and_wedged_recoveries) {
  config cfg = no_halt();
  cfg.rejoin_max_lag = 2;
  cfg.rejoin_deadline = seconds(5);
  checker c(cfg);
  c.add(std::make_unique<recovery_convergence_monitor>(cfg));
  const auto t = make_txn(1);
  c.decision(commit_at(0, 10, t, 10));  // longest log seen anywhere: 10
  c.recovery_started({1, seconds(1)});
  c.rejoined({1, 9, seconds(2)});  // lag 1 <= bound 2
  EXPECT_TRUE(c.ok());
  c.recovery_started({2, seconds(1)});
  c.rejoined({2, 5, seconds(3)});  // lag 5 > bound 2
  ASSERT_EQ(c.get_report().violations.size(), 1u);
  EXPECT_EQ(c.get_report().violations[0].invariant, "recovery_convergence");
  // A recovery still pending long past the deadline has wedged.
  c.recovery_started({0, seconds(1)});
  c.run_end(seconds(10));
  EXPECT_EQ(c.get_report().violations.size(), 2u);
  EXPECT_NE(c.get_report().violations[1].evidence.find("never produced"),
            std::string::npos);
  EXPECT_EQ(c.get_report().rejoins_checked, 2u);
}

TEST(recovery_convergence, run_end_spares_recoveries_inside_the_deadline) {
  config cfg = no_halt();
  cfg.rejoin_deadline = seconds(5);
  checker c(cfg);
  c.add(std::make_unique<recovery_convergence_monitor>(cfg));
  c.recovery_started({1, seconds(8)});
  c.run_end(seconds(10));  // only 2 s in flight: cut short, not wedged
  EXPECT_TRUE(c.ok());
}

// ---------- the checker itself ----------

TEST(checker_core, halt_hook_fires_once_and_summary_reports_first) {
  config cfg;  // halt_on_violation = true (default)
  checker c(cfg);
  c.add(std::make_unique<view_synchrony_monitor>(2));
  int halts = 0;
  c.set_halt([&] { ++halts; });
  EXPECT_EQ(c.get_report().summary().substr(0, 2), "ok");
  c.view_installed(install(0, 2, {0, 1}, 5));
  c.view_installed(install(1, 2, {0, 1}, 9));
  EXPECT_EQ(halts, 1);
  EXPECT_FALSE(c.ok());
  // Once halted the checker ignores further events (the simulation is
  // being torn down; the offending event must stay on top).
  c.view_installed(install(1, 2, {0, 1}, 9));
  EXPECT_EQ(c.get_report().violations.size(), 1u);
  EXPECT_NE(c.get_report().summary().find("view_synchrony"),
            std::string::npos);
}

TEST(checker_core, standard_suite_carries_all_five_monitors) {
  auto c = checker::standard(no_halt(), 3, cert::cert_config{});
  const auto a = make_txn(1);
  c->decision(commit_at(0, 1, a, 1));
  c->view_installed(install(0, 2, {0, 1}, 1));
  EXPECT_TRUE(c->ok());
  EXPECT_EQ(c->get_report().decisions_checked, 1u);
  EXPECT_EQ(c->get_report().views_checked, 1u);
  // The same split-brain install trips the suite.
  c->view_installed(install(2, 2, {2}, 1));
  EXPECT_FALSE(c->ok());
}

}  // namespace
}  // namespace dbsm::check
