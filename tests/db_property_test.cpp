// Property-based tests: the lock table against a reference model under
// randomized operation sequences, storage bandwidth under parameterized
// concurrency, and certifier determinism under shuffled-but-identical
// delivery (the DBSM safety core).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "cert/certifier.hpp"
#include "cert/rwset.hpp"
#include "db/lock_table.hpp"
#include "db/storage.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace dbsm::db {
namespace {

// ---------- lock table vs. reference model ----------

struct txn_probe {
  std::vector<item_id> items;
  bool certified = false;
  bool granted = false;
  bool aborted = false;
};

class lock_table_random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(lock_table_random, invariants_hold_under_random_schedules) {
  util::rng g(GetParam());
  lock_table lt;
  std::map<std::uint64_t, txn_probe> txns;
  std::uint64_t next_id = 1;

  for (int step = 0; step < 4000; ++step) {
    const double action = g.uniform();
    if (action < 0.5) {
      // New acquisition of 1..4 random items out of a small hot set.
      const std::uint64_t id = next_id++;
      txn_probe& p = txns[id];
      const int n = static_cast<int>(g.uniform_int(1, 4));
      std::set<item_id> set;
      for (int k = 0; k < n; ++k)
        set.insert(static_cast<item_id>(g.uniform_int(0, 15)) << 1);
      p.items.assign(set.begin(), set.end());
      p.certified = g.bernoulli(0.2);
      lt.acquire(
          id, p.items, p.certified, [&p] { p.granted = true; },
          [&p](lock_abort_cause) { p.aborted = true; });
    } else {
      // Terminate a random live holding transaction.
      std::vector<std::uint64_t> holders;
      for (auto& [id, p] : txns)
        if (p.granted && !p.aborted && lt.holds(id)) holders.push_back(id);
      if (holders.empty()) continue;
      const std::uint64_t victim = holders[static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(holders.size()) - 1))];
      if (g.bernoulli(0.7)) {
        lt.release_commit(victim);
      } else {
        lt.release_abort(victim);
      }
      txns.erase(victim);
    }
    lt.check_invariants();

    // Model checks:
    for (auto& [id, p] : txns) {
      // A certified transaction is never aborted by the lock table.
      if (p.certified) EXPECT_FALSE(p.aborted) << "txn " << id;
      // granted and aborted are mutually exclusive terminal states here
      // (holders can still be preempted, which flips granted->aborted,
      // but then the table must no longer know them).
      if (p.aborted) EXPECT_FALSE(lt.holds(id));
    }
    // No item has two holders (check_invariants covers structure; this
    // asserts the external view).
  }
  // Drain: everything still holding commits; waiters abort or inherit.
  std::vector<std::uint64_t> live;
  for (auto& [id, p] : txns)
    if (lt.holds(id)) live.push_back(id);
  for (std::uint64_t id : live) lt.release_commit(id);
  lt.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(seeds, lock_table_random,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

// ---------- storage properties ----------

class storage_concurrency : public ::testing::TestWithParam<unsigned> {};

TEST_P(storage_concurrency, throughput_scales_with_parallelism) {
  const unsigned lanes = GetParam();
  sim::simulator s;
  storage_config cfg;
  cfg.max_concurrent = lanes;
  storage disk(s, cfg, util::rng(1));
  int done = 0;
  for (int i = 0; i < 120; ++i) disk.write(4096, [&] { ++done; });
  s.run();
  EXPECT_EQ(done, 120);
  // 120 sectors at `lanes` concurrency: ceil(120/lanes) waves.
  const double waves = std::ceil(120.0 / lanes);
  EXPECT_NEAR(static_cast<double>(s.now()),
              waves * static_cast<double>(cfg.request_latency),
              static_cast<double>(cfg.request_latency));
}

INSTANTIATE_TEST_SUITE_P(lanes, storage_concurrency,
                         ::testing::Values(1, 2, 4, 8));

TEST(storage_property, partial_cache_scales_read_cost) {
  // With hit ratio h, roughly (1-h) of sectors touch storage.
  sim::simulator s;
  storage_config cfg;
  cfg.cache_hit_ratio = 0.75;
  storage disk(s, cfg, util::rng(7));
  int done = 0;
  for (int i = 0; i < 400; ++i) disk.read(4096, [&] { ++done; });
  s.run();
  EXPECT_EQ(done, 400);
  EXPECT_NEAR(static_cast<double>(disk.sectors_read()), 100.0, 25.0);
}

// ---------- certifier determinism under identical sequences ----------

TEST(certifier_property, replicas_agree_for_any_seed) {
  for (std::uint64_t seed : {7u, 21u, 404u}) {
    util::rng g(seed);
    cert::certifier a, b, c;
    for (int i = 0; i < 3000; ++i) {
      const auto begin = static_cast<std::uint64_t>(
          g.uniform_int(std::max<std::int64_t>(
                            0, static_cast<std::int64_t>(a.position()) - 40),
                        a.position()));
      std::vector<item_id> rs, ws;
      const int nr = static_cast<int>(g.uniform_int(0, 6));
      for (int k = 0; k < nr; ++k) {
        item_id id = static_cast<item_id>(g.uniform_int(0, 300)) << 1;
        if (g.bernoulli(0.1)) id |= 1;  // occasional granule read
        rs.push_back(id);
      }
      const int nw = static_cast<int>(g.uniform_int(1, 5));
      for (int k = 0; k < nw; ++k) {
        const item_id id = static_cast<item_id>(g.uniform_int(0, 300)) << 1;
        ws.push_back(id);
        if (g.bernoulli(0.3)) ws.push_back(id | 1);  // advertise granule
      }
      cert::normalize(rs);
      cert::normalize(ws);
      const bool da = a.certify_update(begin, rs, ws);
      const bool db_ = b.certify_update(begin, rs, ws);
      const bool dc = c.certify_update(begin, rs, ws);
      ASSERT_EQ(da, db_) << "seed " << seed << " step " << i;
      ASSERT_EQ(da, dc) << "seed " << seed << " step " << i;
    }
    EXPECT_EQ(a.commits(), b.commits());
    EXPECT_EQ(a.position(), c.position());
  }
}

TEST(certifier_property, commit_implies_no_overlap_with_window) {
  // Soundness spot-check: after a commit decision, re-verify by hand that
  // no committed write set in the window overlapped.
  util::rng g(5);
  cert::certifier c;
  std::vector<std::pair<std::uint64_t, std::vector<item_id>>> committed;
  for (int i = 0; i < 1500; ++i) {
    const auto begin = static_cast<std::uint64_t>(
        g.uniform_int(std::max<std::int64_t>(
                          0, static_cast<std::int64_t>(c.position()) - 20),
                      c.position()));
    std::vector<item_id> ws{static_cast<item_id>(g.uniform_int(0, 50)) << 1};
    const bool decision = c.certify_update(begin, {}, ws);
    const std::uint64_t pos = c.position();
    if (decision) {
      for (const auto& [cpos, cws] : committed) {
        if (cpos > begin) {
          ASSERT_FALSE(cert::write_write_conflicts(cws, ws))
              << "at position " << pos;
        }
      }
      committed.emplace_back(pos, ws);
    }
  }
}

}  // namespace
}  // namespace dbsm::db
