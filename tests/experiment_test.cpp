// End-to-end smoke tests of the experiment harness: small replicated runs
// must complete, commit transactions, keep identical commit logs, and
// produce sane metrics.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace dbsm {
namespace {

core::experiment_config small_config(unsigned sites, unsigned clients) {
  core::experiment_config cfg;
  cfg.sites = sites;
  cfg.cpus_per_site = 1;
  cfg.clients = clients;
  cfg.target_responses = 300;
  cfg.max_sim_time = seconds(600);
  cfg.seed = 7;
  return cfg;
}

TEST(experiment, single_site_smoke) {
  auto result = core::run_experiment(small_config(1, 20));
  EXPECT_GE(result.responses, 300u);
  EXPECT_GT(result.stats.total_committed(), 200u);
  EXPECT_TRUE(result.safety.ok) << result.safety.detail;
  EXPECT_GT(result.tpm(), 0.0);
  EXPECT_GT(result.cpu_utilization, 0.0);
  EXPECT_LE(result.cpu_utilization, 1.0);
}

TEST(experiment, three_sites_smoke) {
  auto result = core::run_experiment(small_config(3, 30));
  EXPECT_GE(result.responses, 300u);
  EXPECT_GT(result.stats.total_committed(), 200u);
  EXPECT_TRUE(result.safety.ok) << result.safety.detail;
  // All sites log the same committed sequence (lengths may differ by
  // in-flight transactions at the stop instant).
  ASSERT_EQ(result.commit_logs.size(), 3u);
  EXPECT_GT(result.safety.common_prefix, 0u);
  // Network actually carried protocol traffic.
  EXPECT_GT(result.network_kbps, 0.0);
  // Certification latency was observed for update transactions.
  EXPECT_GT(result.cert_latency_ms.size(), 0u);
}

TEST(experiment, deterministic_given_seed) {
  auto a = core::run_experiment(small_config(3, 30));
  auto b = core::run_experiment(small_config(3, 30));
  EXPECT_EQ(a.stats.total_committed(), b.stats.total_committed());
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.duration, b.duration);
  ASSERT_EQ(a.commit_logs.size(), b.commit_logs.size());
  EXPECT_EQ(a.commit_logs[0], b.commit_logs[0]);
}

TEST(experiment, seed_changes_outcome) {
  auto a = core::run_experiment(small_config(3, 30));
  auto cfg = small_config(3, 30);
  cfg.seed = 99;
  auto b = core::run_experiment(cfg);
  EXPECT_NE(a.duration, b.duration);
}

TEST(experiment, read_only_latency_unaffected_by_replication) {
  // §5.1: "the latency of read-only transactions is not affected".
  auto cfg1 = small_config(1, 40);
  cfg1.target_responses = 800;
  auto r1 = core::run_experiment(cfg1);
  auto cfg3 = small_config(3, 40);
  cfg3.target_responses = 800;
  auto r3 = core::run_experiment(cfg3);
  const auto& ro1 = r1.stats.of(tpcc::c_orderstatus_short);
  const auto& ro3 = r3.stats.of(tpcc::c_orderstatus_short);
  if (ro1.commit_latency_ms.size() > 5 && ro3.commit_latency_ms.size() > 5) {
    EXPECT_LT(ro3.commit_latency_ms.mean(),
              ro1.commit_latency_ms.mean() * 2.0 + 5.0);
  }
}

}  // namespace
}  // namespace dbsm
