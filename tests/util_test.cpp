// Unit tests for util: rng, distributions, stats, buffers, tables, flags.
#include <gtest/gtest.h>

#include <cmath>

#include "util/byte_buffer.hpp"
#include "util/check.hpp"
#include "util/distributions.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dbsm::util {
namespace {

TEST(rng, deterministic_and_seed_sensitive) {
  rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  rng a2(1);
  for (int i = 0; i < 100; ++i)
    if (a2.next_u64() != c.next_u64()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(rng, fork_independent_of_parent_consumption) {
  rng a(42);
  rng fork_before = a.fork("x");
  for (int i = 0; i < 10; ++i) a.next_u64();
  rng fork_after = a.fork("x");
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
}

TEST(rng, uniform_int_bounds) {
  rng g(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = g.uniform_int(-5, 7);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(g.uniform_int(3, 3), 3);
}

TEST(rng, uniform_in_unit_interval) {
  rng g(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(rng, exponential_mean) {
  rng g(5);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += g.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(rng, normal_moments) {
  rng g(6);
  running_stats s;
  for (int i = 0; i < 50000; ++i) s.add(g.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(distributions, constant_uniform_exponential) {
  rng g(7);
  auto c = constant_dist(5.0);
  EXPECT_DOUBLE_EQ(c->sample(g), 5.0);
  EXPECT_DOUBLE_EQ(c->mean(), 5.0);

  auto u = uniform_dist(2.0, 4.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = u->sample(g);
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 4.0);
  }
  EXPECT_DOUBLE_EQ(u->mean(), 3.0);

  auto e = exponential_dist(2.0);
  running_stats s;
  for (int i = 0; i < 50000; ++i) s.add(e->sample(g));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(distributions, lognormal_matches_configured_mean_and_cv) {
  rng g(8);
  auto d = lognormal_dist(0.020, 0.3);
  running_stats s;
  for (int i = 0; i < 100000; ++i) s.add(d->sample(g));
  EXPECT_NEAR(s.mean(), 0.020, 0.001);
  EXPECT_NEAR(s.stddev() / s.mean(), 0.3, 0.05);
}

TEST(distributions, lognormal_cap_applies) {
  rng g(9);
  auto d = lognormal_dist(1.0, 2.0, 1.5);
  for (int i = 0; i < 10000; ++i) EXPECT_LE(d->sample(g), 1.5);
}

TEST(distributions, empirical_interpolates_range) {
  rng g(10);
  auto d = empirical_dist({1.0, 2.0, 3.0});
  for (int i = 0; i < 1000; ++i) {
    const double v = d->sample(g);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 3.0);
  }
  EXPECT_NEAR(d->mean(), 2.0, 1e-9);
}

TEST(distributions, mixture_weights) {
  rng g(11);
  auto d = mixture_dist({{1.0, constant_dist(0.0)}, {3.0, constant_dist(1.0)}});
  running_stats s;
  for (int i = 0; i < 40000; ++i) s.add(d->sample(g));
  EXPECT_NEAR(s.mean(), 0.75, 0.01);
  EXPECT_DOUBLE_EQ(d->mean(), 0.75);
}

TEST(stats, running_stats_basic) {
  running_stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(stats, running_stats_merge_equals_combined) {
  running_stats a, b, all;
  rng g(12);
  for (int i = 0; i < 1000; ++i) {
    const double v = g.normal(5, 2);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(stats, quantiles_and_ecdf) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.ecdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.ecdf_at(100.0), 1.0);
  EXPECT_NEAR(s.ecdf_at(50.0), 0.5, 0.01);
}

TEST(stats, qq_series_of_identical_distributions_is_diagonal) {
  rng g(13);
  sample_set a, b;
  for (int i = 0; i < 20000; ++i) {
    a.add(g.exponential(1.0));
    b.add(g.exponential(1.0));
  }
  for (const auto& [x, y] : qq_series(a, b, 20)) {
    if (x < 2.0) {
      EXPECT_NEAR(y, x, 0.15);
    }
  }
}

TEST(stats, utilization_tracker_integrates) {
  utilization_tracker t(2.0);
  t.set_busy(0, 2.0);
  t.set_busy(500, 1.0);
  // [0,500): 2 busy of 2; [500,1000): 1 of 2.
  EXPECT_NEAR(t.utilization(1000), 0.75, 1e-12);
}

TEST(byte_buffer, round_trip_all_types) {
  buffer_writer w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_i64(-42);
  w.put_double(3.25);
  w.put_string("hello");
  w.put_padding(16);
  auto data = w.take();

  buffer_reader r(data);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_double(), 3.25);
  EXPECT_EQ(r.get_string(), "hello");
  r.skip(16);
  EXPECT_TRUE(r.done());
}

TEST(byte_buffer, underflow_throws) {
  buffer_writer w;
  w.put_u16(7);
  auto data = w.take();
  buffer_reader r(data);
  r.get_u16();
  EXPECT_THROW(r.get_u8(), invariant_violation);
}

TEST(table, renders_aligned) {
  text_table t;
  t.header({"name", "value"});
  t.row({"x", "1.00"});
  t.row({"longer", "23.50"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("23.50"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(flags, parse_forms) {
  flag_set f;
  f.declare("clients", "100", "number of clients");
  f.declare("rate", "0.5", "loss rate");
  f.declare("verbose", "false", "verbosity");
  f.declare("name", "abc", "label");
  const char* argv[] = {"prog", "--clients=250", "--rate", "0.75",
                        "--verbose"};
  ASSERT_TRUE(f.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(f.get_int("clients"), 250);
  EXPECT_DOUBLE_EQ(f.get_double("rate"), 0.75);
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_string("name"), "abc");
  EXPECT_TRUE(f.is_set("clients"));
  EXPECT_FALSE(f.is_set("name"));
}

TEST(flags, unknown_flag_rejected) {
  flag_set f;
  f.declare("x", "1", "");
  const char* argv[] = {"prog", "--nope=3"};
  EXPECT_FALSE(f.parse(2, const_cast<char**>(argv)));
}

TEST(check, macros_throw_with_context) {
  EXPECT_THROW(
      [] { DBSM_CHECK_MSG(1 == 2, "custom " << 42); }(),
      invariant_violation);
  try {
    DBSM_CHECK_MSG(false, "needle " << 7);
  } catch (const invariant_violation& e) {
    EXPECT_NE(std::string(e.what()).find("needle 7"), std::string::npos);
  }
}

}  // namespace
}  // namespace dbsm::util
