// A scripted env for protocol unit tests: deterministic virtual time,
// manual timer firing, and full interception of outgoing datagrams — the
// unit-test analogue of the paper's fault injection point ("intercepting
// calls in and out of the runtime").
#ifndef DBSM_TESTS_FAKE_ENV_HPP
#define DBSM_TESTS_FAKE_ENV_HPP

#include <deque>
#include <map>
#include <vector>

#include "csrt/env.hpp"

namespace dbsm::test {

class fake_env final : public csrt::env {
 public:
  struct sent {
    node_id to = invalid_node;  // invalid_node == multicast
    util::shared_bytes payload;
  };

  fake_env(node_id self, std::vector<node_id> peers)
      : self_(self), peers_(std::move(peers)), rng_(self + 1) {}

  // --- env interface ---
  node_id self() const override { return self_; }
  const std::vector<node_id>& peers() const override { return peers_; }
  sim_time now() override { return now_; }
  csrt::timer_id set_timer(sim_duration d,
                           std::function<void()> fn) override {
    const csrt::timer_id id = next_timer_++;
    timers_[id] = {now_ + d, std::move(fn)};
    return id;
  }
  bool cancel_timer(csrt::timer_id id) override {
    return timers_.erase(id) > 0;
  }
  void send(node_id to, util::shared_bytes msg) override {
    outbox.push_back({to, std::move(msg)});
  }
  void multicast(util::shared_bytes msg) override {
    outbox.push_back({invalid_node, std::move(msg)});
  }
  void charge(sim_duration cost) override { charged += cost; }
  void set_handler(csrt::msg_handler h) override { handler_ = std::move(h); }
  void post(std::function<void()> fn) override { fn(); }  // immediate
  util::rng& random() override { return rng_; }
  std::size_t max_datagram() const override { return 1400; }

  // --- test controls ---

  /// Delivers a raw datagram to the registered handler.
  void deliver(node_id from, util::shared_bytes raw) {
    if (handler_) handler_(from, raw);
  }

  /// Advances virtual time, firing due timers in deadline order.
  void advance(sim_duration d) {
    const sim_time limit = now_ + d;
    for (;;) {
      csrt::timer_id best = 0;
      sim_time best_at = limit + 1;
      for (const auto& [id, t] : timers_) {
        if (t.at <= limit && t.at < best_at) {
          best = id;
          best_at = t.at;
        }
      }
      if (best == 0) break;
      auto fn = std::move(timers_.at(best).fn);
      timers_.erase(best);
      now_ = best_at;
      fn();
    }
    now_ = limit;
  }

  /// Drains and returns everything sent so far.
  std::vector<sent> take_outbox() {
    std::vector<sent> out(outbox.begin(), outbox.end());
    outbox.clear();
    return out;
  }

  std::size_t pending_timers() const { return timers_.size(); }

  std::deque<sent> outbox;
  sim_duration charged = 0;

 private:
  struct timer {
    sim_time at;
    std::function<void()> fn;
  };

  node_id self_;
  std::vector<node_id> peers_;
  util::rng rng_;
  sim_time now_ = 0;
  csrt::timer_id next_timer_ = 1;
  std::map<csrt::timer_id, timer> timers_;
  csrt::msg_handler handler_;
};

}  // namespace dbsm::test

#endif  // DBSM_TESTS_FAKE_ENV_HPP
