// Batch atomic broadcast + pipelined commit (PR 9): the batch assignment
// codec, the certify→install hand-off queue, and the differential
// batching-equivalence suite — the batched/amortized certification path
// must produce byte-identical decisions and committed sequences to the
// serial cert::certifier oracle at every batch_max × shards ×
// certify_threads grid point, on randomized, TPC-C-shaped, and KV
// streams. Batching off (batch_max = 1) is held to the pre-batching
// anchors; batching on is held to the invariant monitors, the §5.3
// safety check, and same-config rerun determinism, across the whole
// fault catalog (the batch-boundary crash scenario included).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cert/certifier.hpp"
#include "cert/sharded_certifier.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "fault/scenarios.hpp"
#include "gcs/sequencer.hpp"
#include "tpcc/workload.hpp"
#include "util/rng.hpp"
#include "workload/kv.hpp"

namespace dbsm {
namespace {

using db::item_id;

// ---------- gcs::assignment_batch codec ----------

TEST(assignment_batch_codec, round_trips_exactly) {
  gcs::assignment_batch b;
  b.base = 4711;
  b.keys = {{2, 1}, {0, 9}, {2, 2}, {1, 0xffffffffffffffffull}};
  const auto raw = gcs::encode_assignment_batch(b);
  const gcs::assignment_batch back = gcs::decode_assignment_batch(raw);
  EXPECT_EQ(back.base, b.base);
  ASSERT_EQ(back.keys.size(), b.keys.size());
  for (std::size_t i = 0; i < b.keys.size(); ++i) {
    EXPECT_EQ(back.keys[i].first, b.keys[i].first) << i;
    EXPECT_EQ(back.keys[i].second, b.keys[i].second) << i;
  }
}

TEST(assignment_batch_codec, empty_batch_round_trips) {
  gcs::assignment_batch b;
  b.base = 1;
  const gcs::assignment_batch back =
      gcs::decode_assignment_batch(gcs::encode_assignment_batch(b));
  EXPECT_EQ(back.base, 1u);
  EXPECT_TRUE(back.keys.empty());
}

TEST(assignment_batch_codec, beats_per_payload_assignments_on_the_wire) {
  // The point of the record: one batch of n keys must marshal smaller
  // than n per-payload assignment records (12 vs 20 bytes per payload).
  gcs::assignment_batch b;
  b.base = 100;
  std::vector<gcs::assignment> singles;
  for (std::uint64_t i = 0; i < 64; ++i) {
    b.keys.emplace_back(static_cast<node_id>(i % 5), i);
    singles.push_back({static_cast<node_id>(i % 5), i, 100 + i});
  }
  EXPECT_LT(gcs::encode_assignment_batch(b)->size(),
            gcs::encode_assignments(singles)->size());
}

// ---------- core::commit_pipeline hand-off semantics ----------

cert::txn_payload payload_with_id(std::uint64_t id) {
  cert::txn_payload p;
  p.id = id;
  return p;
}

TEST(commit_pipeline, drains_in_fifo_delivery_order) {
  core::commit_pipeline q(/*capacity=*/16);
  for (std::uint64_t id = 1; id <= 5; ++id)
    ASSERT_TRUE(q.push({payload_with_id(id), id % 2 == 0, false}));
  EXPECT_EQ(q.size(), 5u);
  std::vector<std::uint64_t> ids;
  std::vector<bool> commits;
  const std::size_t n = q.drain([&](core::commit_pipeline::item& it) {
    ids.push_back(it.txn.id);
    commits.push_back(it.commit);
  });
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(commits, (std::vector<bool>{false, true, false, true, false}));
  EXPECT_TRUE(q.empty());
}

TEST(commit_pipeline, bounded_capacity_back_pressures) {
  core::commit_pipeline q(/*capacity=*/2);
  EXPECT_TRUE(q.push({payload_with_id(1), true, false}));
  EXPECT_FALSE(q.full());
  EXPECT_TRUE(q.push({payload_with_id(2), true, false}));
  EXPECT_TRUE(q.full());
  // A push at capacity is refused and NOT queued — the caller must drain.
  EXPECT_FALSE(q.push({payload_with_id(3), true, false}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.enqueued(), 2u);
  q.drain([](core::commit_pipeline::item&) {});
  EXPECT_FALSE(q.full());
  EXPECT_TRUE(q.push({payload_with_id(3), true, false}));
}

TEST(commit_pipeline, zero_capacity_never_back_pressures) {
  core::commit_pipeline q(/*capacity=*/0);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    ASSERT_FALSE(q.full());
    ASSERT_TRUE(q.push({payload_with_id(id), true, false}));
  }
  EXPECT_EQ(q.size(), 1000u);
  EXPECT_EQ(q.high_water(), 1000u);
}

TEST(commit_pipeline, drain_covers_items_pushed_by_the_sink) {
  // Stage 2 may trigger further deliveries (origin-side finish resubmits);
  // the drain loop re-reads the queue, so nothing is stranded.
  core::commit_pipeline q(/*capacity=*/8);
  ASSERT_TRUE(q.push({payload_with_id(1), true, false}));
  std::vector<std::uint64_t> seen;
  q.drain([&](core::commit_pipeline::item& it) {
    seen.push_back(it.txn.id);
    if (it.txn.id < 3) q.push({payload_with_id(it.txn.id + 1), true, false});
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.enqueued(), 3u);
  EXPECT_EQ(q.drained(), 3u);
}

TEST(commit_pipeline, probes_track_enqueued_drained_high_water) {
  core::commit_pipeline q(/*capacity=*/4);
  for (std::uint64_t id = 0; id < 3; ++id)
    q.push({payload_with_id(id), true, false});
  EXPECT_EQ(q.high_water(), 3u);
  q.drain([](core::commit_pipeline::item&) {});
  q.push({payload_with_id(9), false, true});  // read-only keeps its slot
  EXPECT_EQ(q.enqueued(), 4u);
  EXPECT_EQ(q.drained(), 3u);
  EXPECT_EQ(q.high_water(), 3u);  // peak, not current
  bool ro = false;
  q.drain([&](core::commit_pipeline::item& it) { ro = it.read_only; });
  EXPECT_TRUE(ro);
  EXPECT_EQ(q.drained(), 4u);
}

// ---------- differential batching equivalence ----------
//
// The batched delivery path differs from the serial one in exactly two
// ways: certification runs through the sharded certifier with the fixed
// term amortized after a run's first probe, and installs drain through
// the commit_pipeline a stage behind. Neither may move a decision or a
// committed id. This harness feeds one recorded request stream through
// (a) the serial cert::certifier oracle and (b) the batched pipeline at
// a (batch_max, shards, threads) grid point, and asserts the decision
// sequence, the stage-1 commit log, and the stage-2 install sequence are
// byte-identical.

struct request {
  std::uint64_t id = 0;
  std::uint64_t begin = 0;
  bool read_only = false;
  std::vector<item_id> read_set;
  std::vector<item_id> write_set;
};

struct batch_grid_point {
  std::size_t batch_max;
  std::size_t shards;
  unsigned threads;
};

const std::vector<batch_grid_point>& batch_grid() {
  // batch_max {1, 4, 32, 256} x shards {1, 8} x threads {1, 4}.
  static const std::vector<batch_grid_point> g = [] {
    std::vector<batch_grid_point> v;
    for (const std::size_t b : {1, 4, 32, 256})
      for (const std::size_t s : {1, 8})
        for (const unsigned t : {1u, 4u}) v.push_back({b, s, t});
    return v;
  }();
  return g;
}

struct path_trace {
  std::vector<bool> decisions;          // every request, stream order
  std::vector<std::uint64_t> commit_log;  // committed update ids
  std::vector<std::uint64_t> installed;   // ids drained from the pipeline
};

/// The serial path: one certifier, per-payload delivery, installs inline.
path_trace run_serial(const std::vector<request>& stream,
                      const cert::cert_config& cfg) {
  cert::certifier oracle(cfg);
  path_trace t;
  for (const request& r : stream) {
    const bool ok =
        r.read_only
            ? oracle.certify_read_only(r.begin, r.read_set)
            : oracle.certify_update(r.begin, r.read_set, r.write_set);
    t.decisions.push_back(ok);
    if (!r.read_only && ok) {
      t.commit_log.push_back(r.id);
      t.installed.push_back(r.id);  // inline: install == decision order
    }
  }
  return t;
}

/// The batched path: the stream arrives in delivery runs of up to
/// `batch_max` payloads; stage 1 certifies back-to-back (fixed term
/// amortized after the run's first probe) and pushes certified updates
/// into the bounded hand-off queue; stage 2 drains installs after each
/// run — exactly the replica::on_deliver_batch contract.
path_trace run_batched(const std::vector<request>& stream,
                       cert::cert_config cfg, const batch_grid_point& p,
                       std::size_t pipeline_capacity) {
  cfg.shards = p.shards;
  cfg.certify_threads = p.threads;
  cert::sharded_certifier sharded(cfg);
  core::commit_pipeline pipe(pipeline_capacity);
  path_trace t;
  const auto install = [&t](core::commit_pipeline::item& it) {
    if (!it.read_only && it.commit) t.installed.push_back(it.txn.id);
  };
  for (std::size_t at = 0; at < stream.size(); at += p.batch_max) {
    const std::size_t end = std::min(at + p.batch_max, stream.size());
    bool first_cert = true;
    for (std::size_t i = at; i < end; ++i) {  // stage 1
      const request& r = stream[i];
      bool ok;
      if (r.read_only) {
        ok = sharded.certify_read_only(r.begin, r.read_set);
      } else {
        ok = sharded.certify_update(r.begin, r.read_set, r.write_set,
                                    /*amortized_fixed=*/!first_cert);
        first_cert = false;
      }
      t.decisions.push_back(ok);
      if (!r.read_only && ok) t.commit_log.push_back(r.id);
      if (pipe.full()) pipe.drain(install);  // deterministic back-pressure
      core::commit_pipeline::item it;
      it.txn.id = r.id;
      it.commit = ok;
      it.read_only = r.read_only;
      EXPECT_TRUE(pipe.push(std::move(it)));  // full() was drained above
    }
    pipe.drain(install);  // stage 2: the deferred install job
  }
  EXPECT_GT(pipe.high_water(), 0u);
  return t;
}

void expect_equivalent(const std::vector<request>& stream,
                       const cert::cert_config& cfg, const char* what) {
  const path_trace serial = run_serial(stream, cfg);
  for (const batch_grid_point& p : batch_grid()) {
    // A hand-off bound smaller than the batch forces mid-run synchronous
    // drains — the back-pressure path is exercised, decisions must not
    // notice.
    for (const std::size_t cap : {std::size_t{3}, std::size_t{1024}}) {
      const path_trace batched = run_batched(stream, cfg, p, cap);
      ASSERT_EQ(batched.decisions, serial.decisions)
          << what << ": batch " << p.batch_max << " shards " << p.shards
          << " threads " << p.threads << " cap " << cap;
      ASSERT_EQ(batched.commit_log, serial.commit_log)
          << what << ": batch " << p.batch_max << " shards " << p.shards
          << " threads " << p.threads << " cap " << cap;
      ASSERT_EQ(batched.installed, serial.installed)
          << what << ": batch " << p.batch_max << " shards " << p.shards
          << " threads " << p.threads << " cap " << cap;
    }
  }
  EXPECT_FALSE(serial.commit_log.empty()) << what;
  // The stream must carry real conflict pressure or the grid proves
  // nothing.
  EXPECT_LT(serial.commit_log.size(),
            serial.decisions.size())
      << what << ": no aborts — widen the conflict window";
}

constexpr item_id tup(std::uint64_t n) { return n << 1; }
constexpr item_id gran(std::uint64_t n) { return (n << 1) | 1; }

TEST(batching_differential, randomized_stream_agrees_at_every_point) {
  // High-conflict randomized mix over a small id space, snapshots lagging
  // up to 60 deliveries (same shape as the cert_shard differential).
  util::rng g(911);
  std::vector<request> stream;
  std::uint64_t position = 0;
  for (int i = 0; i < 1500; ++i) {
    request r;
    r.id = 1000 + static_cast<std::uint64_t>(i);
    const std::uint64_t lo = position > 60 ? position - 60 : 0;
    r.begin = static_cast<std::uint64_t>(
        g.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(position)));
    const int nr = static_cast<int>(g.uniform_int(0, 6));
    for (int k = 0; k < nr; ++k) {
      const auto n = static_cast<std::uint64_t>(g.uniform_int(0, 300));
      r.read_set.push_back(g.bernoulli(0.2) ? gran(n >> 4) : tup(n));
    }
    cert::normalize(r.read_set);
    if (g.bernoulli(0.2)) {
      r.read_only = true;
    } else {
      const int nw = static_cast<int>(g.uniform_int(1, 5));
      for (int k = 0; k < nw; ++k) {
        const auto n = static_cast<std::uint64_t>(g.uniform_int(0, 300));
        r.write_set.push_back(tup(n));
        if (g.bernoulli(0.4)) r.write_set.push_back(gran(n >> 4));
      }
      cert::normalize(r.write_set);
      ++position;  // updates consume a total-order position
    }
    stream.push_back(std::move(r));
  }
  cert::cert_config cfg;
  cfg.history_window = 50000;
  expect_equivalent(stream, cfg, "randomized");
}

TEST(batching_differential, tpcc_shaped_stream_agrees_at_every_point) {
  tpcc::workload load(tpcc::workload_profile::pentium3_1ghz(), 10,
                      util::rng(71));
  util::rng g(72);
  std::vector<request> stream;
  std::uint64_t position = 0;
  for (int i = 0; i < 1200; ++i) {
    const auto req = load.next(static_cast<std::uint32_t>(i % 10),
                               static_cast<std::uint32_t>(i % 10));
    request r;
    r.id = 5000 + static_cast<std::uint64_t>(i);
    const std::uint64_t lo = position > 120 ? position - 120 : 0;
    r.begin = static_cast<std::uint64_t>(
        g.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(position)));
    r.read_only = req.read_only();
    r.read_set = req.read_set;
    r.write_set = req.write_set;
    if (!r.read_only) ++position;
    stream.push_back(std::move(r));
  }
  cert::cert_config cfg;
  cfg.history_window = 512;  // window expiry fires identically everywhere
  expect_equivalent(stream, cfg, "tpcc");
}

TEST(batching_differential, kv_scan_stream_agrees_at_every_point) {
  kv::kv_config k;
  k.keys = 4000;
  k.keys_per_granule = 64;
  k.zipf_theta = 0.9;
  k.mix_read = 0.2;
  k.mix_update = 0.35;
  k.mix_scan = 0.3;
  kv::kv_workload wl(k);
  wl.prepare(1, 8, util::rng(81));
  auto src = wl.make_source({0, 0, 8}, util::rng(82));
  util::rng g(83);
  std::vector<request> stream;
  std::uint64_t position = 0;
  for (int i = 0; i < 1200; ++i) {
    const auto req = src->next(0);
    request r;
    r.id = 9000 + static_cast<std::uint64_t>(i);
    const std::uint64_t lo = position > 120 ? position - 120 : 0;
    r.begin = static_cast<std::uint64_t>(
        g.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(position)));
    r.read_only = req.read_only();
    r.read_set = req.read_set;
    r.write_set = req.write_set;
    if (!r.read_only) ++position;
    stream.push_back(std::move(r));
  }
  cert::cert_config cfg;
  cfg.history_window = 256;
  expect_equivalent(stream, cfg, "kv");
}

TEST(batching_differential, amortization_changes_cost_never_decisions) {
  // The fixed-term switch is the one modeled-cost difference stage 1
  // introduces: amortized probes charge cost_batch_fixed, a run's first
  // charges cost_fixed — and nothing else moves.
  cert::cert_config cfg;
  cert::sharded_certifier a(cfg), b(cfg);
  std::vector<item_id> ws = {tup(1), tup(2)};
  cert::normalize(ws);
  EXPECT_EQ(a.certify_update(0, {}, ws, /*amortized_fixed=*/false),
            b.certify_update(0, {}, ws, /*amortized_fixed=*/true));
  EXPECT_EQ(a.last_cost() - b.last_cost(),
            cfg.cost_fixed - cfg.cost_batch_fixed);
  EXPECT_EQ(a.position(), b.position());
  EXPECT_EQ(a.commits(), b.commits());
}

// ---------- batching off is bit-identical to the pre-batching tree ----

std::uint64_t fnv1a(const std::vector<std::uint64_t>& log) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t v : log)
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  return h;
}

// Same anchors as tests/read_path_test.cpp (recorded on the PR 6 tree,
// re-verified every PR since): the default TPC-C campaign with
// batch_max = 1 set *explicitly* must not move by a single commit, and
// the serial path must hand out zero delivery runs.
TEST(batching_disabled, matches_pre_batching_anchors) {
  struct anchor {
    const char* scenario;
    std::uint64_t committed, responses, log0_len, log0_hash;
  };
  const anchor anchors[] = {
      {"no_faults", 399, 400, 369, 961761018588045584ull},
      {"crash", 398, 400, 365, 10089116188003370927ull},
      {"crash_restart", 395, 400, 365, 7733846660168087355ull},
  };
  for (const anchor& a : anchors) {
    const auto* e = fault::scenarios::find(a.scenario);
    ASSERT_NE(e, nullptr) << a.scenario;
    core::experiment_config cfg;
    cfg.sites = 3;
    cfg.clients = 60;
    cfg.target_responses = 400;
    cfg.max_sim_time = seconds(900);
    cfg.seed = 7;
    EXPECT_EQ(cfg.gcs.batch_max, 1u);  // the default is off
    cfg.gcs.batch_max = 1;             // and "off" is what we anchor
    fault::scenarios::params prm;
    prm.sites = cfg.sites;
    cfg.faults = e->make(prm);
    cfg.enable_recovery = e->needs_recovery;
    const auto r = core::run_experiment(cfg);
    EXPECT_EQ(r.stats.total_committed(), a.committed) << a.scenario;
    EXPECT_EQ(r.responses, a.responses) << a.scenario;
    ASSERT_FALSE(r.commit_logs.empty());
    EXPECT_EQ(r.commit_logs[0].size(), a.log0_len) << a.scenario;
    EXPECT_EQ(fnv1a(r.commit_logs[0]), a.log0_hash) << a.scenario;
    EXPECT_TRUE(r.checks.ok) << r.checks.summary();
    for (const core::site_report& s : r.sites) {
      EXPECT_EQ(s.delivery_runs, 0u) << a.scenario;
      EXPECT_EQ(s.pipeline_high_water, 0u) << a.scenario;
    }
  }
}

// ---------- end-to-end batched runs ----------

core::experiment_config batched_kv_cfg(std::size_t batch_max) {
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 45;
  cfg.target_responses = 400;
  cfg.max_sim_time = seconds(900);
  cfg.seed = 7;
  kv::kv_config k;
  k.keys = 20000;
  k.preset = kv::mix::ycsb_a;
  k.zipf_theta = 0.5;  // most updates reach broadcast (real batches)
  k.think_time = util::exponential_dist(0.5);
  cfg.workload = kv::factory(k);
  cfg.gcs.batch_max = batch_max;
  cfg.gcs.batch_delay = milliseconds(2);
  return cfg;
}

TEST(batching_enabled, runs_clean_and_actually_batches) {
  const auto r = core::run_experiment(batched_kv_cfg(32));
  EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_GT(r.stats.total_committed(), 0u);
  std::uint64_t runs = 0, payloads = 0;
  for (const core::site_report& s : r.sites) {
    runs += s.delivery_runs;
    payloads += s.run_payloads;
  }
  EXPECT_GT(runs, 0u);          // the batched delivery path was on
  EXPECT_GE(payloads, runs);    // every run carries >= 1 payload
}

TEST(batching_enabled, same_config_rerun_is_deterministic) {
  // The pipeline hand-off must not introduce scheduling nondeterminism:
  // two runs of the identical batched config produce byte-identical
  // commit logs at every site.
  const auto a = core::run_experiment(batched_kv_cfg(32));
  const auto b = core::run_experiment(batched_kv_cfg(32));
  ASSERT_EQ(a.commit_logs.size(), b.commit_logs.size());
  EXPECT_EQ(a.commit_logs, b.commit_logs);
  EXPECT_EQ(a.stats.total_committed(), b.stats.total_committed());
  EXPECT_EQ(a.responses, b.responses);
}

// ---------- fault catalog with batching on ----------

// Every catalog scenario, batched (batch_max = 32, 2 ms close delay):
// the online monitors cross-check every decision and apply, and the
// §5.3 off-line safety check must hold — view changes land on batch
// boundaries or roll accumulated-but-unminted keys back into the
// deterministic flush. Covers the batch_boundary_crash scenario.
TEST(batching_enabled, survives_the_full_fault_catalog) {
  bool saw_batch_boundary_crash = false;
  for (const auto& e : fault::scenarios::catalog()) {
    const unsigned sites = e.min_sites > 3 ? 5 : 3;
    auto cfg = batched_kv_cfg(32);
    cfg.sites = sites;
    fault::scenarios::params prm;
    prm.sites = sites;
    prm.onset = seconds(2);  // inside the run, not past its end
    cfg.faults = e.make(prm);
    cfg.enable_recovery = e.needs_recovery;
    if (e.placement_degree != 0)
      cfg.placement = {place::strategy::round_robin, e.placement_degree};
    cfg.target_responses = 0;
    cfg.max_sim_time =
        std::string(e.name) == "rolling_restarts" ? seconds(55)
        : e.needs_recovery                        ? seconds(25)
                                                  : seconds(15);
    const auto r = core::run_experiment(cfg);
    EXPECT_TRUE(r.checks.ok) << e.name << ": " << r.checks.summary();
    EXPECT_TRUE(r.safety.ok) << e.name << ": " << r.safety.detail;
    EXPECT_GT(r.stats.total_committed(), 0u) << e.name;
    if (std::string(e.name) == "batch_boundary_crash")
      saw_batch_boundary_crash = true;
  }
  EXPECT_TRUE(saw_batch_boundary_crash);  // the new scenario is cataloged
}

// The batch-boundary crash run serially: the scenario must also be sound
// when there is no open batch to strand (batch_max = 1), so the catalog
// entry stays meaningful for both paths.
TEST(batching_disabled, batch_boundary_crash_is_sound_serially) {
  auto cfg = batched_kv_cfg(1);
  cfg.gcs.batch_delay = microseconds(500);  // back to the default
  fault::scenarios::params prm;
  prm.sites = cfg.sites;
  prm.onset = seconds(2);
  cfg.faults = fault::scenarios::batch_boundary_crash(prm);
  cfg.target_responses = 0;
  cfg.max_sim_time = seconds(15);
  const auto r = core::run_experiment(cfg);
  EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_GT(r.view_changes, 0u);  // the sequencer crash was seen
}

}  // namespace
}  // namespace dbsm
