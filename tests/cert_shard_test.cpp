// Shard-count invariance of the sharded certifier: at every
// (shards, certify_threads) combination the decisions must match
// cert::certifier transaction-for-transaction — the same differential
// discipline PR 1 used for index-vs-scan, extended over the partitioned
// parallel path. Covers randomized mixes, TPC-C-shaped sets, KV
// scan-escalation sets, the read-only path, window expiry, and the
// canonical snapshot format (byte-identical at 1 shard / 1 thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "cert/certifier.hpp"
#include "cert/sharded_certifier.hpp"
#include "db/item.hpp"
#include "tpcc/workload.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/kv.hpp"

namespace dbsm::cert {
namespace {

using db::item_id;

constexpr item_id tup(std::uint64_t n) { return n << 1; }
constexpr item_id gran(std::uint64_t n) { return (n << 1) | 1; }

struct grid_point {
  std::size_t shards;
  unsigned threads;
};

const std::vector<grid_point>& grid() {
  static const std::vector<grid_point> g = {
      {1, 1}, {1, 4}, {2, 1}, {2, 4}, {8, 1}, {8, 4}};
  return g;
}

cert_config with_sharding(cert_config cfg, const grid_point& p) {
  cfg.shards = p.shards;
  cfg.certify_threads = p.threads;
  return cfg;
}

/// Drives the oracle and one sharded instance through the same randomized
/// transaction stream and asserts decision-for-decision agreement.
void run_differential(const grid_point& p, std::uint64_t seed, int steps,
                      std::uint64_t id_space, double granule_read_p,
                      double granule_write_p, std::uint64_t max_age,
                      std::size_t window) {
  cert_config cfg;
  cfg.history_window = window;
  certifier oracle(cfg);
  sharded_certifier sharded(with_sharding(cfg, p));
  util::rng g(seed);

  for (int i = 0; i < steps; ++i) {
    const std::uint64_t pos = oracle.position();
    const std::uint64_t lo = pos > max_age ? pos - max_age : 0;
    const auto begin = static_cast<std::uint64_t>(
        g.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(pos)));

    std::vector<item_id> rs;
    const int nr = static_cast<int>(g.uniform_int(0, 6));
    for (int k = 0; k < nr; ++k) {
      const auto n = static_cast<std::uint64_t>(
          g.uniform_int(0, static_cast<std::int64_t>(id_space)));
      rs.push_back(g.bernoulli(granule_read_p) ? gran(n >> 4) : tup(n));
    }
    normalize(rs);

    if (g.bernoulli(0.25)) {
      ASSERT_EQ(sharded.certify_read_only(begin, rs),
                oracle.certify_read_only(begin, rs))
          << "read-only: shards " << p.shards << " threads " << p.threads
          << " seed " << seed << " step " << i;
      continue;
    }

    std::vector<item_id> ws;
    const int nw = static_cast<int>(g.uniform_int(1, 5));
    for (int k = 0; k < nw; ++k) {
      const auto n = static_cast<std::uint64_t>(
          g.uniform_int(0, static_cast<std::int64_t>(id_space)));
      ws.push_back(tup(n));
      if (g.bernoulli(granule_write_p)) ws.push_back(gran(n >> 4));
    }
    normalize(ws);

    ASSERT_EQ(sharded.certify_update(begin, rs, ws),
              oracle.certify_update(begin, rs, ws))
        << "update: shards " << p.shards << " threads " << p.threads
        << " seed " << seed << " step " << i << " begin " << begin;

    ASSERT_EQ(sharded.position(), oracle.position());
    ASSERT_EQ(sharded.commits(), oracle.commits());
    ASSERT_EQ(sharded.aborts(), oracle.aborts());
    ASSERT_EQ(sharded.history_size(), oracle.history_size());
    ASSERT_EQ(sharded.oldest_retained(), oracle.oldest_retained());
    // Per-shard rings drain their own fronts, so the sharded instance can
    // only be *ahead* on stale-entry cleanup, never behind on content the
    // decisions see.
    ASSERT_LE(sharded.index_size(), oracle.index_size());
    if (p.shards == 1) {
      ASSERT_EQ(sharded.index_size(), oracle.index_size());
    }
  }
  EXPECT_GT(oracle.commits(), 100u);
  EXPECT_GT(oracle.aborts(), 0u);
}

TEST(cert_shard_differential, high_conflict_small_id_space) {
  for (const grid_point& p : grid())
    run_differential(p, /*seed=*/311, /*steps=*/2500, /*id_space=*/300,
                     /*granule_read_p=*/0.2, /*granule_write_p=*/0.4,
                     /*max_age=*/60, /*window=*/50000);
}

TEST(cert_shard_differential, window_expiry_and_conservative_aborts) {
  // Tiny window + old snapshots: the global pre-window rule must fire
  // before any shard probe, identically at every fork width.
  for (const grid_point& p : grid())
    run_differential(p, /*seed=*/323, /*steps=*/2500, /*id_space=*/5000,
                     /*granule_read_p=*/0.1, /*granule_write_p=*/0.3,
                     /*max_age=*/200, /*window=*/64);
}

TEST(cert_shard_differential, tpcc_shaped_workload_agrees) {
  // Realistic TPC-C sets: escalated customer scans, advertised write
  // granules, snapshots lagging a few dozen deliveries.
  for (const grid_point& p : grid()) {
    cert_config cfg;
    cfg.history_window = 512;
    certifier oracle(cfg);
    sharded_certifier sharded(with_sharding(cfg, p));
    tpcc::workload load(tpcc::workload_profile::pentium3_1ghz(), 10,
                        util::rng(71));
    util::rng g(72);

    for (int i = 0; i < 3000; ++i) {
      const auto req = load.next(static_cast<std::uint32_t>(i % 10),
                                 static_cast<std::uint32_t>(i % 10));
      const std::uint64_t pos = oracle.position();
      const std::uint64_t lo = pos > 700 ? pos - 700 : 0;
      const auto begin = static_cast<std::uint64_t>(
          g.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(pos)));
      if (req.read_only()) {
        ASSERT_EQ(sharded.certify_read_only(begin, req.read_set),
                  oracle.certify_read_only(begin, req.read_set))
            << "shards " << p.shards << " threads " << p.threads
            << " step " << i;
      } else {
        ASSERT_EQ(
            sharded.certify_update(begin, req.read_set, req.write_set),
            oracle.certify_update(begin, req.read_set, req.write_set))
            << "shards " << p.shards << " threads " << p.threads
            << " step " << i;
      }
    }
    EXPECT_EQ(sharded.commits(), oracle.commits());
    EXPECT_GT(oracle.commits(), 500u);
  }
}

TEST(cert_shard_differential, kv_scan_escalation_agrees) {
  // KV sets are the pure certification-conflict channel: escalated
  // range-scan reads (granule ids) race hot-granule writes. Hash
  // partitioning must keep every granule probe on the shard that also
  // receives the matching advertised write granules.
  for (const grid_point& p : grid()) {
    cert_config cfg;
    cfg.history_window = 256;
    certifier oracle(cfg);
    sharded_certifier sharded(with_sharding(cfg, p));

    kv::kv_config k;
    k.keys = 4000;
    k.keys_per_granule = 64;
    k.zipf_theta = 0.9;  // hot keys: real conflicts at a small window
    k.mix_read = 0.2;
    k.mix_update = 0.35;
    k.mix_scan = 0.3;
    kv::kv_workload wl(k);
    wl.prepare(1, 8, util::rng(81));
    auto src = wl.make_source({0, 0, 8}, util::rng(82));
    util::rng g(83);

    std::uint64_t scans = 0;
    for (int i = 0; i < 2500; ++i) {
      const auto req = src->next(0);
      for (const item_id id : req.read_set)
        if (db::is_granule(id)) ++scans;
      const std::uint64_t pos = oracle.position();
      const std::uint64_t lo = pos > 120 ? pos - 120 : 0;
      const auto begin = static_cast<std::uint64_t>(
          g.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(pos)));
      if (req.read_only()) {
        ASSERT_EQ(sharded.certify_read_only(begin, req.read_set),
                  oracle.certify_read_only(begin, req.read_set))
            << "shards " << p.shards << " threads " << p.threads
            << " step " << i;
      } else {
        ASSERT_EQ(
            sharded.certify_update(begin, req.read_set, req.write_set),
            oracle.certify_update(begin, req.read_set, req.write_set))
            << "shards " << p.shards << " threads " << p.threads
            << " step " << i;
      }
    }
    EXPECT_EQ(sharded.commits(), oracle.commits());
    EXPECT_EQ(sharded.aborts(), oracle.aborts());
    EXPECT_GT(scans, 100u);     // the mix actually escalated
    EXPECT_GT(oracle.aborts(), 0u);
  }
}

TEST(cert_shard_differential, default_config_snapshot_bytes_identical) {
  // shards = 1 / certify_threads = 1 is not merely decision-equal to
  // cert::certifier — the serialized state must be byte-identical, since
  // replicas snapshot through the sharded path now.
  cert_config cfg;
  cfg.history_window = 48;
  certifier oracle(cfg);
  sharded_certifier sharded(cfg);
  util::rng g(99);
  for (int i = 0; i < 600; ++i) {
    std::vector<item_id> rs, ws;
    const auto n =
        static_cast<std::uint64_t>(g.uniform_int(0, 400));
    rs.push_back(g.bernoulli(0.3) ? gran(n >> 3) : tup(n));
    ws.push_back(tup(n + 1));
    if (g.bernoulli(0.5)) ws.push_back(gran((n + 1) >> 3));
    normalize(rs);
    normalize(ws);
    const std::uint64_t pos = oracle.position();
    const std::uint64_t begin =
        pos - std::min<std::uint64_t>(
                  pos, static_cast<std::uint64_t>(g.uniform_int(0, 60)));
    ASSERT_EQ(sharded.certify_update(begin, rs, ws),
              oracle.certify_update(begin, rs, ws));
  }
  util::buffer_writer wo, ws_;
  oracle.snapshot(wo);
  sharded.snapshot(ws_);
  const auto a = wo.take();
  const auto b = ws_.take();
  ASSERT_EQ(*a, *b);
}

TEST(cert_shard_differential, modeled_cost_parallel_term_scales) {
  // The parallel term: with enough shards and threads, the critical path
  // charges roughly elements / workers, plus the fork overhead — and one
  // worker charges exactly the certifier's set-linear model.
  cert_config cfg;
  std::vector<item_id> ws;
  for (std::uint64_t i = 0; i < 512; ++i) ws.push_back(tup(i * 7 + 1));
  normalize(ws);

  certifier oracle(cfg);
  oracle.certify_update(0, {}, ws);

  sharded_certifier serial(cfg);
  serial.certify_update(0, {}, ws);
  EXPECT_EQ(serial.last_cost(), oracle.last_cost());

  cert_config par = cfg;
  par.shards = 16;
  par.certify_threads = 4;
  sharded_certifier forked(par);
  forked.certify_update(0, {}, ws);
  EXPECT_LT(forked.last_cost(), oracle.last_cost());
  // Critical path >= perfect split, and the fork overhead is charged.
  EXPECT_GE(forked.last_cost(),
            cfg.cost_fixed + par.cost_fork_join +
                cfg.cost_per_element *
                    static_cast<sim_duration>(ws.size() / 4));
}

TEST(cert_shard_differential, modeled_cost_tracks_real_cost_order) {
  // Calibration pin for the cost model (the PR 9 re-calibration of the
  // carried ROADMAP item): the modeled charge of a warm serial
  // certification must stay the same order of magnitude as the real
  // wall-clock of the identical work on the host. The band is wide —
  // a factor of 16 either way — because CI hosts vary enormously, but
  // it still catches a units slip (ns-vs-us would be x1000) or a model
  // that silently stops tracking the probe loop. Measured on the
  // calibration host: real ~27.7 us vs modeled ~33.0 us at a 256-element
  // set (bench/BENCH_cert_shards.json), ratio 0.84.
  cert_config cfg;
  cfg.history_window = 1000;
  sharded_certifier c(cfg);
  util::rng g(2026);
  auto make_set = [&](std::size_t n) {
    std::vector<item_id> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      s.push_back(tup(static_cast<std::uint64_t>(g.uniform_int(1, 1 << 20))));
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    return s;
  };
  // Warm the history window so probes hit a populated index, as in the
  // bench's steady state.
  for (int i = 0; i < 600; ++i) c.certify_update(c.position(), {}, make_set(256));

  // Time in short chunks and keep the fastest one: a chunk that runs
  // inside a single scheduler quantum measures the unloaded cost, so the
  // minimum is robust to the rest of the (possibly parallel) test run
  // preempting this process — on a loaded 1-core CI host the mean can be
  // inflated by an order of magnitude, the min cannot.
  constexpr int kChunks = 20;
  constexpr int kItersPerChunk = 15;
  std::vector<std::vector<item_id>> sets;
  sets.reserve(kChunks * kItersPerChunk);
  for (int i = 0; i < kChunks * kItersPerChunk; ++i)
    sets.push_back(make_set(256));

  sim_duration modeled = 0;
  double best_chunk_us = 0;
  std::size_t next = 0;
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kItersPerChunk; ++i) {
      c.certify_update(c.position(), {}, sets[next]);
      modeled += c.last_cost();
      ++next;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            t1 - t0)
            .count();
    if (chunk == 0 || us < best_chunk_us) best_chunk_us = us;
  }
  const double real_us = best_chunk_us / kItersPerChunk;
  const double modeled_us =
      to_micros(modeled) / static_cast<double>(kChunks * kItersPerChunk);
  ASSERT_GT(real_us, 0.0);
  const double ratio = modeled_us / real_us;
  EXPECT_GT(ratio, 1.0 / 16.0) << "modeled " << modeled_us << " us vs real "
                               << real_us << " us per certification";
  EXPECT_LT(ratio, 16.0) << "modeled " << modeled_us << " us vs real "
                         << real_us << " us per certification";
}

TEST(cert_shard_zero_sets, short_circuit_keeps_decisions_and_state) {
  // Zero-set transactions (an empty-read-set RO probe, or an empty
  // update payload occupying a total-order slot) skip the fork-join
  // entirely — the decision is the global pre-window rule alone. The
  // short-circuit must be invisible in decisions, counters, history,
  // index contents, and serialized state; only the modeled cost drops
  // (no fork term). Interleave zero-set and real transactions against
  // the oracle at several grid points to prove it.
  for (const grid_point& p : grid()) {
    cert_config cfg;
    cfg.history_window = 32;
    certifier oracle(cfg);
    sharded_certifier sharded(with_sharding(cfg, p));
    util::rng g(4242);
    for (int i = 0; i < 800; ++i) {
      const std::uint64_t pos = oracle.position();
      const std::uint64_t begin =
          pos - std::min<std::uint64_t>(
                    pos, static_cast<std::uint64_t>(g.uniform_int(0, 50)));
      const int shape = static_cast<int>(g.uniform_int(0, 3));
      if (shape == 0) {
        // Empty read set on the read-only path.
        ASSERT_EQ(sharded.certify_read_only(begin, {}),
                  oracle.certify_read_only(begin, {}));
        ASSERT_EQ(sharded.last_cost(), cfg.cost_fixed);
      } else if (shape == 1) {
        // Both sets empty on the update path: consumes a position, can
        // only abort on the pre-window rule.
        ASSERT_EQ(sharded.certify_update(begin, {}, {}),
                  oracle.certify_update(begin, {}, {}));
        ASSERT_EQ(sharded.last_cost(), cfg.cost_fixed);
      } else {
        std::vector<item_id> rs, ws;
        const auto n = static_cast<std::uint64_t>(g.uniform_int(0, 120));
        rs.push_back(tup(n));
        ws.push_back(tup(n + 1));
        normalize(rs);
        normalize(ws);
        ASSERT_EQ(sharded.certify_update(begin, rs, ws),
                  oracle.certify_update(begin, rs, ws));
      }
      ASSERT_EQ(sharded.position(), oracle.position());
      ASSERT_EQ(sharded.commits(), oracle.commits());
      ASSERT_EQ(sharded.aborts(), oracle.aborts());
      ASSERT_EQ(sharded.history_size(), oracle.history_size());
      ASSERT_EQ(sharded.oldest_retained(), oracle.oldest_retained());
      if (p.shards == 1)
        ASSERT_EQ(sharded.index_size(), oracle.index_size());
    }
    EXPECT_GT(oracle.aborts(), 0u);  // pre-window aborts actually hit
    // At 1 shard / 1 thread the serialized state stays byte-identical
    // through the short-circuit path too.
    if (p.shards == 1 && p.threads == 1) {
      util::buffer_writer wo, ws_;
      oracle.snapshot(wo);
      sharded.snapshot(ws_);
      const auto a = wo.take();
      const auto b = ws_.take();
      ASSERT_EQ(*a, *b);
    }
  }
}

TEST(thread_pool, runs_every_task_exactly_once_across_runs) {
  util::thread_pool pool(4);
  EXPECT_EQ(pool.width(), 4u);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(97, 0);
    pool.run(97, [&](unsigned t) { ++hits[t]; });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
  // Width 1 degenerates to an inline loop (no workers to leak).
  util::thread_pool inline_pool(1);
  EXPECT_EQ(inline_pool.width(), 1u);
  int n = 0;
  inline_pool.run(5, [&](unsigned) { ++n; });
  EXPECT_EQ(n, 5);
}

}  // namespace
}  // namespace dbsm::cert
