// Tests for the deterministic fault-scenario fuzzer (fault/fuzz.hpp):
// seed-reproducibility of generation and outcomes, the serialized replay
// format, and the shrinker's minimal-reproduction contract.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "fault/fuzz.hpp"

namespace dbsm::fault::fuzz {
namespace {

config quick_cfg() {
  config c;
  c.target_responses = 150;
  return c;
}

TEST(fuzz_generate, same_seed_same_scenario) {
  const config cfg;
  for (const std::uint64_t seed : {1u, 7u, 19u, 42u}) {
    const scenario_spec a = generate(seed, cfg);
    const scenario_spec b = generate(seed, cfg);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(serialize(a), serialize(b));  // byte-identical text form
    EXPECT_EQ(a.seed, seed);
    EXPECT_FALSE(a.events.empty());
    EXPECT_LE(a.events.size(), cfg.max_faults);
  }
  EXPECT_NE(generate(1, cfg), generate(2, cfg));
}

TEST(fuzz_generate, respects_the_horizon) {
  config cfg;
  cfg.horizon = seconds(40);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const event_spec& e : generate(seed, cfg).events) {
      EXPECT_GE(e.start, 0);
      EXPECT_LE(e.start, cfg.horizon);
      EXPECT_GE(e.stop, e.start);
    }
  }
}

TEST(fuzz_run, same_spec_same_outcome) {
  const config cfg = quick_cfg();
  const scenario_spec spec = generate(7, cfg);
  const run_result a = run_spec(spec, cfg);
  const run_result b = run_spec(spec, cfg);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.ok) << a.detail;
  EXPECT_GT(a.committed, 0u);
}

TEST(fuzz_run, read_fast_path_smoke) {
  // The same fuzzed timelines, re-run with read-only clients on the fast
  // path (YCSB-B mix, read/ lease snapshots) and the read_snapshot
  // monitor armed: generation is untouched by the knob — only the system
  // under the timeline changes — and every read the fuzz cases provoke
  // must check out against the reference agreed order.
  config cfg = quick_cfg();
  cfg.read_fast_path = true;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(generate(seed, cfg), generate(seed, quick_cfg()));
    const run_result r = run_spec(generate(seed, cfg), cfg);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
    EXPECT_GT(r.committed, 0u) << "seed " << seed;
  }
}

TEST(fuzz_run, batching_smoke) {
  // The same fuzzed timelines with batch atomic broadcast + the pipelined
  // commit path on: generation is untouched by the knob (same seed, same
  // scenario), and every timeline must come out clean under the monitors
  // with the batched delivery path doing the committing.
  config cfg = quick_cfg();
  cfg.batch_max = 32;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(generate(seed, cfg), generate(seed, quick_cfg()));
    const run_result r = run_spec(generate(seed, cfg), cfg);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
    EXPECT_GT(r.committed, 0u) << "seed " << seed;
  }
}

TEST(fuzz_run, batching_rerun_is_deterministic) {
  // run_spec at batch_max = 32 is still a pure function of the spec: the
  // two-stage hand-off must not leak scheduling nondeterminism into the
  // outcome.
  config cfg = quick_cfg();
  cfg.batch_max = 32;
  const scenario_spec spec = generate(7, cfg);
  const run_result a = run_spec(spec, cfg);
  const run_result b = run_spec(spec, cfg);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.ok) << a.detail;
}

TEST(fuzz_serialize, text_round_trip_is_exact) {
  const config cfg;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const scenario_spec spec = generate(seed, cfg);
    const auto back = parse(serialize(spec));
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    EXPECT_EQ(*back, spec) << "seed " << seed;
  }
  EXPECT_FALSE(parse("not a scenario").has_value());
  EXPECT_FALSE(parse("").has_value());
}

TEST(fuzz_serialize, file_round_trip) {
  const config cfg;
  const scenario_spec spec = generate(3, cfg);
  const std::string path = "fuzz_test_roundtrip.scenario";
  ASSERT_TRUE(save(spec, path));
  const auto back = load(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, spec);
  std::remove(path.c_str());
  EXPECT_FALSE(load("fuzz_test_does_not_exist.scenario").has_value());
}

TEST(fuzz_shrink, minimal_failing_shrink_of_the_original) {
  config cfg = quick_cfg();
  // Deliberately broken build under test: the primary-partition rule is
  // off, so an isolated minority installs a solo view and the chain-rule
  // monitor has a real split-brain to catch.
  cfg.break_primary_partition = true;

  // Hand-built failing case with deliberate fat to trim: a harmless loss
  // window plus the partition that actually causes the violation.
  scenario_spec spec;
  spec.seed = 5;
  spec.sites = 3;
  event_spec loss;
  loss.kind = event_kind::loss_random;
  loss.targets = site_set{0, 1, 2};
  loss.start = seconds(1);
  loss.stop = seconds(2);
  loss.param = 0.02;
  event_spec part;
  part.kind = event_kind::partition;
  part.targets = site_set{2};
  part.start = seconds(5);
  part.stop = seconds(30);
  spec.events = {loss, part};

  const run_result broken = run_spec(spec, cfg);
  ASSERT_FALSE(broken.ok);
  EXPECT_NE(broken.detail.find("primary_partition"), std::string::npos)
      << broken.detail;

  const scenario_spec shrunk = shrink(spec, cfg);
  EXPECT_TRUE(is_shrink_of(shrunk, spec));
  // The loss window is irrelevant to the split brain: the drop pass must
  // have removed it, leaving only the partition.
  ASSERT_EQ(shrunk.events.size(), 1u);
  EXPECT_EQ(shrunk.events[0].kind, event_kind::partition);
  EXPECT_GE(shrunk.events[0].start, part.start);
  EXPECT_LE(shrunk.events[0].stop, part.stop);

  // The shrunk case still reproduces — also after a serialize round-trip,
  // which is exactly how a saved case replays (docs/REPRODUCING.md).
  const auto replay = parse(serialize(shrunk));
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(*replay, shrunk);
  const run_result res = run_spec(*replay, cfg);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.detail.find("primary_partition"), std::string::npos);
}

TEST(fuzz_shrink, passing_spec_returns_unchanged) {
  const config cfg = quick_cfg();
  const scenario_spec spec = generate(7, cfg);
  EXPECT_EQ(shrink(spec, cfg), spec);
}

TEST(fuzz_shrink, is_shrink_of_rejects_non_reductions) {
  const config cfg;
  const scenario_spec spec = generate(7, cfg);
  EXPECT_TRUE(is_shrink_of(spec, spec));  // trivially its own shrink

  scenario_spec widened = spec;
  widened.events[0].stop += seconds(1);  // window grew: not nested
  EXPECT_FALSE(is_shrink_of(widened, spec));

  scenario_spec reseeded = spec;
  reseeded.seed = spec.seed + 1;  // different run entirely
  EXPECT_FALSE(is_shrink_of(reseeded, spec));

  scenario_spec extended = spec;
  extended.events.push_back(spec.events[0]);  // not a subsequence
  EXPECT_FALSE(is_shrink_of(extended, spec));
}

}  // namespace
}  // namespace dbsm::fault::fuzz
