// Partial replication (src/place/): placement strategy properties, the
// granule-store accounting, the placement-consistency monitor's
// accept/reject boundary, and the two end-to-end guarantees — a full
// placement is bit-identical to the pre-placement code (hard-coded
// differential anchors), and a k=2 placement preserves 1SR under the
// fault campaigns with the online monitors armed.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "check/check.hpp"
#include "check/monitors.hpp"
#include "core/experiment.hpp"
#include "fault/scenarios.hpp"
#include "place/granule_store.hpp"
#include "place/placement.hpp"
#include "util/byte_buffer.hpp"

namespace dbsm {
namespace {

using place::placement;
using place::strategy;

std::vector<db::item_id> sample_items() {
  std::vector<db::item_id> items;
  for (unsigned t = 1; t <= 3; ++t)
    for (std::uint32_t w = 0; w < 17; ++w)
      for (std::uint32_t d = 0; d < 3; ++d)
        items.push_back(db::make_item(t, w, d, (w * 7 + d) % 100));
  return items;
}

TEST(placement_strategy, replica_sets_are_deterministic_and_sized) {
  for (const strategy k : {strategy::round_robin, strategy::hashed}) {
    const placement a = placement::make({k, 2}, 6);
    const placement b = placement::make({k, 2}, 6);
    EXPECT_EQ(a, b);
    std::vector<unsigned> ra, rb;
    std::set<unsigned> bases_seen;
    for (const db::item_id it : sample_items()) {
      a.replica_set(it, ra);
      b.replica_set(it, rb);
      ASSERT_EQ(ra.size(), 2u);
      EXPECT_EQ(ra, rb);  // pure function of (strategy, sites, degree, id)
      EXPECT_LT(ra[0], ra[1]);  // ascending site order
      // The primary is a member (ra is ascending, so it need not lead).
      EXPECT_NE(std::find(ra.begin(), ra.end(), a.primary(it)), ra.end());
      bases_seen.insert(a.primary(it));
      for (unsigned s = 0; s < 6; ++s) {
        const bool in_set =
            std::find(ra.begin(), ra.end(), s) != ra.end();
        EXPECT_EQ(a.stores(s, it), in_set);
      }
      // The tuple and its granule marker always land on the same set.
      EXPECT_EQ(a.primary(it), a.primary(db::granule_of(it)));
    }
    // Both strategies spread primaries across all sites for this sample.
    EXPECT_EQ(bases_seen.size(), 6u) << place::strategy_name(k);
  }
}

TEST(placement_strategy, full_gate) {
  EXPECT_TRUE(placement().is_full());            // unbound default
  EXPECT_TRUE(placement::full(4).is_full());
  EXPECT_TRUE(placement::round_robin(4, 4).is_full());  // degree == sites
  EXPECT_TRUE(placement::make({strategy::hashed, 9}, 4).is_full());
  EXPECT_FALSE(placement::round_robin(4, 2).is_full());

  const placement full = placement::full(3);
  std::vector<db::item_id> ws = sample_items(), out;
  for (unsigned s = 0; s < 3; ++s) {
    EXPECT_TRUE(full.interested(s, ws));
    full.slice(ws, s, out);
    EXPECT_EQ(out, ws);  // full replication: the slice is the write set
  }
  EXPECT_EQ(full.interested_sites(ws), 3u);
}

TEST(placement_strategy, snapshot_round_trip) {
  const placement p = placement::hashed(6, 2);
  util::buffer_writer w;
  p.snapshot(w);
  util::buffer_reader r(w.take());
  const placement q = placement::restore(r);
  EXPECT_EQ(p, q);
  EXPECT_TRUE(r.done());
  EXPECT_NE(q, placement::hashed(6, 3));
  EXPECT_NE(q, placement::round_robin(6, 2));
}

TEST(placement_strategy, slices_partition_the_write_set) {
  const placement p = placement::round_robin(5, 2);
  std::vector<db::item_id> ws;
  for (std::uint32_t w = 0; w < 12; ++w) {
    ws.push_back(db::make_item(1, w, 0, 3));
    ws.push_back(db::granule_of(ws.back()));
  }
  std::vector<db::item_id> out;
  std::size_t covered = 0;
  unsigned interested = 0;
  for (unsigned s = 0; s < 5; ++s) {
    p.slice(ws, s, out);
    covered += out.size();
    interested += !out.empty();
    EXPECT_EQ(p.interested(s, ws), !out.empty());
    // The slice is a subsequence of the input (order preserved).
    auto it = ws.begin();
    for (const db::item_id id : out) {
      it = std::find(it, ws.end(), id);
      ASSERT_NE(it, ws.end());
      ++it;
      EXPECT_TRUE(p.stores(s, id));
    }
  }
  // Every element lands in exactly `degree` slices.
  EXPECT_EQ(covered, ws.size() * 2);
  EXPECT_EQ(p.interested_sites(ws), interested);
}

TEST(granule_store, durable_accounting_follows_placement) {
  const placement p = placement::round_robin(4, 2);
  // Pick granules with distinct replica sets: one this site owns, one not.
  const unsigned self = 0;
  db::item_id owned_tuple = 0, foreign_tuple = 0;
  for (std::uint32_t w = 0; w < 16 && !(owned_tuple && foreign_tuple); ++w) {
    const db::item_id t = db::make_item(1, w, 0, 5);
    (p.stores(self, t) ? owned_tuple : foreign_tuple) = t;
  }
  ASSERT_NE(owned_tuple, 0u);
  ASSERT_NE(foreign_tuple, 0u);

  place::granule_store st(p, self);
  st.apply({owned_tuple, db::granule_of(owned_tuple)}, 100);
  EXPECT_EQ(st.durable_bytes(), 100u);
  EXPECT_EQ(st.durable_tuples(), 1u);
  EXPECT_EQ(st.applied_updates(), 1u);
  // A foreign update still enters the directory but not the durable view.
  st.apply({foreign_tuple, db::granule_of(foreign_tuple)}, 80);
  EXPECT_EQ(st.durable_bytes(), 100u);
  EXPECT_EQ(st.applied_updates(), 1u);
  EXPECT_EQ(st.tracked_granules(), 2u);
  EXPECT_EQ(st.owned_granules(), 1u);
  // Overwriting a tuple does not grow the materialized database.
  st.apply({owned_tuple, db::granule_of(owned_tuple)}, 64);
  EXPECT_EQ(st.durable_bytes(), 100u);
  EXPECT_EQ(st.durable_tuples(), 1u);
  EXPECT_EQ(st.applied_updates(), 2u);
}

TEST(granule_store, snapshot_is_placement_filtered_and_restores) {
  const placement p = placement::round_robin(4, 2);
  place::granule_store donor(p, 0);
  std::uint64_t all_bytes = 0;
  for (std::uint32_t w = 0; w < 16; ++w) {
    const db::item_id t = db::make_item(1, w, 0, 1);
    donor.apply({t, db::granule_of(t)}, 100);
    all_bytes += 100;
  }
  // The slice for a k=2 joiner is smaller than the full directory dump.
  util::buffer_writer for_joiner, for_all;
  donor.snapshot_for(for_joiner, 2);
  for (unsigned s = 0; s < 4; ++s) donor.snapshot_for(for_all, s);
  EXPECT_LT(for_joiner.size(), all_bytes);

  place::granule_store joiner(p, 2);
  util::buffer_reader r(for_joiner.take());
  joiner.restore(r);
  EXPECT_TRUE(r.done());
  // The joiner's durable view equals the donor's recomputation for it:
  // 16 granules spread over 4 sites at degree 2 -> 8 owned, 100 B each.
  EXPECT_EQ(joiner.owned_granules(), 8u);
  EXPECT_EQ(joiner.durable_bytes(), 800u);
  EXPECT_EQ(joiner.durable_tuples(), 8u);
}

// ---------- the placement-consistency monitor ----------

cert::txn_payload write_txn(std::uint64_t id, db::item_id tuple) {
  cert::txn_payload t;
  t.id = id;
  t.write_set = {tuple, db::granule_of(tuple)};
  return t;
}

check::config no_halt() {
  check::config c;
  c.halt_on_violation = false;
  return c;
}

TEST(placement_monitor, accepts_matching_apply_and_ignores_aborts) {
  const placement p = placement::round_robin(3, 1);
  check::checker c(no_halt());
  c.add(std::make_unique<check::placement_monitor>(p));
  const auto t = write_txn(1, db::make_item(1, 0, 0, 9));
  const unsigned owner = p.primary(t.write_set.front());
  for (unsigned s = 0; s < 3; ++s) {
    std::vector<db::item_id> slice;
    p.slice(t.write_set, s, slice);
    EXPECT_EQ(slice.empty(), s != owner);
    c.decision({s, 1, &t, true, 1, 0});
    c.applied({s, 1, &t, &slice, 0, 0});
  }
  // An abort consumes a position but produces no apply.
  const auto a = write_txn(2, db::make_item(1, 1, 0, 9));
  c.decision({0, 2, &a, false, 1, 0});
  const auto b = write_txn(3, db::make_item(1, 2, 0, 9));
  std::vector<db::item_id> slice;
  p.slice(b.write_set, 0, slice);
  c.decision({0, 3, &b, true, 2, 0});
  c.applied({0, 3, &b, &slice, 0, 0});
  EXPECT_TRUE(c.ok()) << c.get_report().summary();
  EXPECT_EQ(c.get_report().applies_checked, 4u);
}

TEST(placement_monitor, rejects_slice_outside_the_replica_set) {
  const placement p = placement::round_robin(3, 1);
  check::checker c(no_halt());
  c.add(std::make_unique<check::placement_monitor>(p));
  const auto t = write_txn(1, db::make_item(1, 0, 0, 9));
  const unsigned outsider = (p.primary(t.write_set.front()) + 1) % 3;
  c.decision({outsider, 1, &t, true, 1, 0});
  // The outsider claims it stored the full write set anyway.
  c.applied({outsider, 1, &t, &t.write_set, 0, 0});
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.get_report().violations[0].invariant, "placement");
  EXPECT_EQ(c.get_report().violations[0].site, outsider);
}

TEST(placement_monitor, rejects_commit_without_apply) {
  const placement p = placement::round_robin(3, 1);
  check::checker c(no_halt());
  c.add(std::make_unique<check::placement_monitor>(p));
  const auto t = write_txn(1, db::make_item(1, 0, 0, 9));
  const auto u = write_txn(2, db::make_item(1, 1, 0, 9));
  c.decision({0, 1, &t, true, 1, 0});
  // Next decision arrives with the commit still unapplied.
  c.decision({0, 2, &u, true, 2, 0});
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.get_report().violations[0].invariant, "placement");
}

// ---------- end-to-end: full placement is bit-identical ----------

// FNV-1a over the little-endian bytes of the commit log, matching the
// anchor capture. The constants below were recorded on the pre-placement
// tree (PR 6): if any of them moves, the placement layer leaked into the
// default full-replication path.
std::uint64_t fnv1a(const std::vector<std::uint64_t>& log) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t v : log)
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  return h;
}

core::experiment_config anchor_cfg() {
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 60;
  cfg.target_responses = 400;
  cfg.max_sim_time = seconds(900);
  cfg.seed = 7;
  return cfg;
}

struct anchor {
  const char* scenario;
  std::uint64_t committed, responses, log0_len, log0_hash;
};

TEST(full_placement_bit_identity, matches_pre_placement_anchors) {
  const anchor anchors[] = {
      {"no_faults", 399, 400, 369, 961761018588045584ull},
      {"crash", 398, 400, 365, 10089116188003370927ull},
      {"crash_restart", 395, 400, 365, 7733846660168087355ull},
  };
  for (const anchor& a : anchors) {
    const auto* e = fault::scenarios::find(a.scenario);
    ASSERT_NE(e, nullptr) << a.scenario;
    auto cfg = anchor_cfg();
    fault::scenarios::params prm;
    prm.sites = cfg.sites;
    cfg.faults = e->make(prm);
    cfg.enable_recovery = e->needs_recovery;
    const auto r = core::run_experiment(cfg);
    EXPECT_EQ(r.stats.total_committed(), a.committed) << a.scenario;
    EXPECT_EQ(r.responses, a.responses) << a.scenario;
    ASSERT_FALSE(r.commit_logs.empty());
    EXPECT_EQ(r.commit_logs[0].size(), a.log0_len) << a.scenario;
    EXPECT_EQ(fnv1a(r.commit_logs[0]), a.log0_hash) << a.scenario;
    EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  }
}

// ---------- end-to-end: k=2 keeps 1SR under faults ----------

core::experiment_config k2_cfg() {
  auto cfg = anchor_cfg();
  cfg.sites = 4;
  cfg.placement = {strategy::round_robin, 2};
  return cfg;
}

TEST(partial_k2, one_copy_serializability_under_fault_campaigns) {
  for (const char* name : {"no_faults", "sched_latency", "random_loss",
                           "crash", "partition_minority"}) {
    const auto* e = fault::scenarios::find(name);
    ASSERT_NE(e, nullptr) << name;
    auto cfg = k2_cfg();
    fault::scenarios::params prm;
    prm.sites = cfg.sites;
    cfg.faults = e->make(prm);
    const auto r = core::run_experiment(cfg);
    EXPECT_TRUE(r.safety.ok) << name << ": " << r.safety.detail;
    EXPECT_TRUE(r.checks.ok) << name << ": " << r.checks.summary();
    EXPECT_GT(r.checks.applies_checked, 0u) << name;
    EXPECT_GT(r.stats.total_committed(), 200u) << name;
  }
}

TEST(partial_k2, crash_rejoin_transfers_the_filtered_slice) {
  // Same crash/restart shape at degree 3 vs degree 2 of 4 sites: the
  // joiner's snapshot carries the granule slice it replicates plus its
  // modeled data bytes, so the transferred bytes must shrink with the
  // degree (the k=2 slice is a strict subset of the k=3 one). The full
  // placement is no baseline here — its legacy wire format never shipped
  // data bytes at all (and must not change, for bit-identity).
  fault::scenarios::params prm;
  prm.sites = 4;

  auto k3_cfg = anchor_cfg();
  k3_cfg.sites = 4;
  k3_cfg.placement = {strategy::round_robin, 3};
  k3_cfg.faults = fault::scenarios::crash_restart(prm);
  k3_cfg.enable_recovery = true;
  const auto k3 = core::run_experiment(k3_cfg);

  auto part_cfg = k2_cfg();
  part_cfg.faults = fault::scenarios::partial_k2_crash_rejoin(prm);
  part_cfg.enable_recovery = true;
  const auto part = core::run_experiment(part_cfg);

  for (const auto* r : {&k3, &part}) {
    EXPECT_TRUE(r->safety.ok) << r->safety.detail;
    EXPECT_TRUE(r->checks.ok) << r->checks.summary();
    EXPECT_EQ(r->rejoined_sites(), 1u);
  }
  std::uint64_t k3_snap = 0, k3_chunks = 0, part_snap = 0, part_chunks = 0;
  for (const auto& s : k3.sites) {
    k3_snap += s.join_snapshot_bytes;
    k3_chunks += s.join_chunk_bytes;
  }
  for (const auto& s : part.sites) {
    part_snap += s.join_snapshot_bytes;
    part_chunks += s.join_chunk_bytes;
  }
  EXPECT_GT(part_snap, 0u);
  EXPECT_GT(part_chunks, 0u);
  EXPECT_LT(part_snap, k3_snap);
  EXPECT_LT(part_chunks, k3_chunks);
}

}  // namespace
}  // namespace dbsm
