// The local read-only fast path (src/read/): lease grant/revoke unit
// semantics, snapshot floor bookkeeping, the end-to-end guarantees — off
// is bit-identical to the pre-read-path tree (hard-coded anchors), fast
// mode serves YCSB-C with zero read-only broadcasts under the
// read_snapshot monitor — and the fault-catalog sweep with the fast path
// armed, including the lease-revocation race scenarios.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fault/scenarios.hpp"
#include "read/lease.hpp"
#include "read/snapshot_manager.hpp"
#include "workload/kv.hpp"

namespace dbsm {
namespace {

// ---------- read::lease unit semantics ----------

TEST(read_lease, starts_unheld_and_grants_arm_it) {
  read::lease l;
  EXPECT_FALSE(l.valid());
  l.grant(1);
  EXPECT_TRUE(l.valid());
  EXPECT_EQ(l.view(), 1u);
  EXPECT_EQ(l.revocations(), 0u);
}

TEST(read_lease, view_advance_counts_one_revocation) {
  read::lease l;
  l.grant(1);
  l.grant(3);  // re-grant at a later view: the old lease died with it
  EXPECT_TRUE(l.valid());
  EXPECT_EQ(l.view(), 3u);
  EXPECT_EQ(l.revocations(), 1u);
  l.grant(3);  // same view again: nothing was revoked
  EXPECT_EQ(l.revocations(), 1u);
}

TEST(read_lease, suspicion_suspends_until_uniform_advances) {
  read::lease l;
  l.grant(1);
  l.revoke(read::revoke_reason::suspicion);
  EXPECT_FALSE(l.valid());
  EXPECT_TRUE(l.suspended());
  EXPECT_EQ(l.revocations(), 1u);
  // A second suspicion in the same episode is not a new revocation.
  l.revoke(read::revoke_reason::suspicion);
  EXPECT_EQ(l.revocations(), 1u);
  l.on_uniform_advance();  // connectivity proven: stability completed
  EXPECT_TRUE(l.valid());
  EXPECT_FALSE(l.suspended());
}

TEST(read_lease, exclusion_drops_the_lease_until_regrant) {
  read::lease l;
  l.grant(2);
  l.revoke(read::revoke_reason::exclusion);
  EXPECT_FALSE(l.valid());
  EXPECT_FALSE(l.suspended());
  EXPECT_EQ(l.revocations(), 1u);
  l.on_uniform_advance();  // no lazy re-arm from exclusion
  EXPECT_FALSE(l.valid());
  l.grant(5);  // only a merged-view re-grant brings it back
  EXPECT_TRUE(l.valid());
}

// ---------- read::snapshot_manager floor semantics ----------

TEST(read_snapshot_manager, at_returns_newest_epoch_under_watermark) {
  read::snapshot_manager m;
  m.note_delivery(/*global_seq=*/3, /*position=*/1, /*log_len=*/1,
                  /*last_commit_id=*/101);
  m.note_delivery(5, 2, 2, 102);
  m.note_delivery(9, 3, 2, 102);  // an abort: log unchanged
  // Watermark behind everything: the base (empty) snapshot.
  EXPECT_EQ(m.at(2).log_len, 0u);
  EXPECT_EQ(m.at(5).last_commit_id, 102u);
  EXPECT_EQ(m.at(5).log_len, 2u);
  // The floor is monotone: an older watermark cannot resurrect history.
  EXPECT_EQ(m.at(3).log_len, 2u);
  EXPECT_EQ(m.at(100).epoch, 9u);
  EXPECT_EQ(m.entries(), 0u);  // fully consumed into the floor
}

TEST(read_snapshot_manager, reset_replaces_history) {
  read::snapshot_manager m;
  m.note_delivery(4, 1, 1, 7);
  m.reset({/*epoch=*/20, /*position=*/9, /*log_len=*/9,
           /*last_commit_id=*/900});
  EXPECT_EQ(m.entries(), 0u);
  EXPECT_EQ(m.at(25).log_len, 9u);
  EXPECT_EQ(m.at(25).last_commit_id, 900u);
}

// ---------- end-to-end scaffolding ----------

std::uint64_t fnv1a(const std::vector<std::uint64_t>& log) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t v : log)
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  return h;
}

core::experiment_config kv_cfg(read::mode mode, kv::mix mix) {
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 45;
  cfg.target_responses = 400;
  cfg.max_sim_time = seconds(900);
  cfg.seed = 7;
  kv::kv_config k;
  k.keys = 20000;
  k.preset = mix;
  k.think_time = util::exponential_dist(0.5);
  cfg.workload = kv::factory(k);
  cfg.replica_cfg.read.path = mode;
  return cfg;
}

struct read_totals {
  std::uint64_t fast = 0, fallback = 0, bcast = 0, revoked = 0;
};

read_totals totals(const core::experiment_result& r) {
  read_totals t;
  for (const core::site_report& s : r.sites) {
    t.fast += s.fast_path_reads;
    t.fallback += s.fallback_reads;
    t.bcast += s.ro_broadcasts;
    t.revoked += s.lease_revocations;
  }
  return t;
}

// ---------- off is bit-identical to the pre-read-path tree ----------

// Same anchors as tests/place_test.cpp (recorded on the PR 6 tree,
// re-verified on PR 7): the default TPC-C campaign with the read path
// left off must not move by a single commit.
TEST(read_path_disabled, matches_pre_read_path_anchors) {
  struct anchor {
    const char* scenario;
    std::uint64_t committed, responses, log0_len, log0_hash;
  };
  const anchor anchors[] = {
      {"no_faults", 399, 400, 369, 961761018588045584ull},
      {"crash", 398, 400, 365, 10089116188003370927ull},
      {"crash_restart", 395, 400, 365, 7733846660168087355ull},
  };
  for (const anchor& a : anchors) {
    const auto* e = fault::scenarios::find(a.scenario);
    ASSERT_NE(e, nullptr) << a.scenario;
    core::experiment_config cfg;
    cfg.sites = 3;
    cfg.clients = 60;
    cfg.target_responses = 400;
    cfg.max_sim_time = seconds(900);
    cfg.seed = 7;
    EXPECT_EQ(cfg.replica_cfg.read.path, read::mode::off);  // the default
    fault::scenarios::params prm;
    prm.sites = cfg.sites;
    cfg.faults = e->make(prm);
    cfg.enable_recovery = e->needs_recovery;
    const auto r = core::run_experiment(cfg);
    EXPECT_EQ(r.stats.total_committed(), a.committed) << a.scenario;
    EXPECT_EQ(r.responses, a.responses) << a.scenario;
    ASSERT_FALSE(r.commit_logs.empty());
    EXPECT_EQ(r.commit_logs[0].size(), a.log0_len) << a.scenario;
    EXPECT_EQ(fnv1a(r.commit_logs[0]), a.log0_hash) << a.scenario;
    EXPECT_TRUE(r.checks.ok) << r.checks.summary();
    const read_totals t = totals(r);
    EXPECT_EQ(t.fast, 0u);
    EXPECT_EQ(t.bcast, 0u);
    EXPECT_EQ(t.revoked, 0u);
  }
}

// ---------- fast mode: zero broadcasts at YCSB-C ----------

TEST(read_path_fast, ycsb_c_serves_every_read_locally) {
  const auto r = core::run_experiment(
      kv_cfg(read::mode::fast, kv::mix::ycsb_c));
  EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  const read_totals t = totals(r);
  EXPECT_EQ(t.bcast, 0u);       // counter-verified: no RO broadcast
  EXPECT_EQ(t.fallback, 0u);    // healthy run: lease never stale
  EXPECT_EQ(t.fast, r.responses);
  EXPECT_EQ(r.checks.reads_checked, t.fast);  // every read monitored
  EXPECT_EQ(r.stats.total_committed(), r.responses);  // reads never abort
}

TEST(read_path_certified, ycsb_c_broadcasts_every_read) {
  const auto r = core::run_experiment(
      kv_cfg(read::mode::certified, kv::mix::ycsb_c));
  EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  const read_totals t = totals(r);
  EXPECT_EQ(t.fast, 0u);
  EXPECT_GE(t.bcast, r.responses);  // one per read (retries can add more)
}

TEST(read_path_fast, ycsb_b_mixes_reads_and_updates) {
  const auto r = core::run_experiment(
      kv_cfg(read::mode::fast, kv::mix::ycsb_b));
  EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  const read_totals t = totals(r);
  EXPECT_EQ(t.bcast, 0u);
  EXPECT_GT(t.fast, 0u);
  EXPECT_GT(r.checks.decisions_checked, 0u);  // updates still certify
}

// ---------- fault catalog under the fast path ----------

// Every catalog scenario that fits a 5-site system, run on the YCSB-B
// mix with the fast path armed: the read_snapshot monitor cross-checks
// each fast read against the reference agreed order, and the §5.3
// off-line safety check must also hold. This includes the recovery
// cycles (partition_cut_heal_rejoin et al.) and the lease-race
// scenarios.
TEST(read_path_fast, survives_the_full_fault_catalog) {
  for (const auto& e : fault::scenarios::catalog()) {
    const unsigned sites = e.min_sites > 3 ? 5 : 3;
    auto cfg = kv_cfg(read::mode::fast, kv::mix::ycsb_b);
    cfg.sites = sites;
    fault::scenarios::params prm;
    prm.sites = sites;
    prm.onset = seconds(2);  // inside the run, not past its end
    cfg.faults = e.make(prm);
    cfg.enable_recovery = e.needs_recovery;
    if (e.placement_degree != 0)
      cfg.placement = {place::strategy::round_robin, e.placement_degree};
    // Run on sim time, long enough to cover each scenario's whole
    // timeline (rolling_restarts cycles every site at 20 s apart).
    cfg.target_responses = 0;
    cfg.max_sim_time =
        std::string(e.name) == "rolling_restarts" ? seconds(55)
        : e.needs_recovery                        ? seconds(25)
                                                  : seconds(15);
    const auto r = core::run_experiment(cfg);
    EXPECT_TRUE(r.checks.ok) << e.name << ": " << r.checks.summary();
    EXPECT_TRUE(r.safety.ok) << e.name << ": " << r.safety.detail;
    const read_totals t = totals(r);
    EXPECT_GT(t.fast, 0u) << e.name;
    // A restart rebuilds the site's replica (fresh counters), so the
    // monitor may have seen more reads than the end-of-run counters hold.
    EXPECT_GE(r.checks.reads_checked, t.fast + t.fallback) << e.name;
  }
}

// The full-cut recovery scenario is the stale-snapshot case the lease
// protocol exists for: the victim's lease dies with the cut (suspicion,
// then exclusion), so its reads fall back instead of serving the frozen
// snapshot, and the majority's view change re-grants theirs.
TEST(read_path_fast, partition_cut_revokes_and_rejoin_recovers) {
  auto cfg = kv_cfg(read::mode::fast, kv::mix::ycsb_b);
  fault::scenarios::params prm;
  prm.sites = cfg.sites;
  prm.onset = seconds(2);
  cfg.faults = fault::scenarios::rejoin_stale_reads(prm);
  cfg.enable_recovery = true;
  cfg.target_responses = 0;  // run past the rejoin and post-rejoin blip
  cfg.max_sim_time = seconds(25);
  const auto r = core::run_experiment(cfg);
  EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_EQ(r.rejoined_sites(), 1u);
  const read_totals t = totals(r);
  EXPECT_GT(t.revoked, 0u);  // suspicion/exclusion/view change fired
  EXPECT_GT(t.fast, 0u);
}

// Sub-suspicion blips: no view change, the lease stays held, and the
// frozen-watermark snapshots the victim serves during each cut must all
// re-validate as agreed prefixes.
TEST(read_path_fast, lease_window_blips_stay_consistent) {
  auto cfg = kv_cfg(read::mode::fast, kv::mix::ycsb_b);
  fault::scenarios::params prm;
  prm.sites = cfg.sites;
  prm.onset = seconds(2);
  cfg.faults = fault::scenarios::partition_lease_window(prm);
  cfg.target_responses = 0;
  cfg.max_sim_time = seconds(10);
  const auto r = core::run_experiment(cfg);
  EXPECT_TRUE(r.checks.ok) << r.checks.summary();
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_EQ(r.view_changes, 0u);  // blips stay under the suspicion timeout
  EXPECT_GT(totals(r).fast, 0u);
}

}  // namespace
}  // namespace dbsm
