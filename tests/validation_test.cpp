// §4.2 validation criteria as tests: the CSRT + network model must
// reproduce the analytic reference (Fig 3) and the model's latency
// distribution must be stable across seeds (Fig 4's Q-Q diagonal).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "csrt/sim_env.hpp"
#include "net/lan.hpp"
#include "net/udp_transport.hpp"

namespace dbsm {
namespace {

struct pair_rig {
  sim::simulator sim;
  net::lan lan{sim, net::lan_config{}, util::rng(3)};
  csrt::cpu_pool cpu0{sim, 1};
  csrt::cpu_pool cpu1{sim, 1};
  std::unique_ptr<net::udp_transport> t0;
  std::unique_ptr<net::udp_transport> t1;
  std::unique_ptr<csrt::sim_env> env0;
  std::unique_ptr<csrt::sim_env> env1;

  pair_rig() {
    lan.add_host();
    lan.add_host();
    t0 = std::make_unique<net::udp_transport>(lan, 0);
    t1 = std::make_unique<net::udp_transport>(lan, 1);
    csrt::sim_env::config c0, c1;
    c0.self = 0;
    c1.self = 1;
    c0.peers = c1.peers = {0, 1};
    env0 = std::make_unique<csrt::sim_env>(sim, cpu0, *t0, c0,
                                           util::rng(10));
    env1 = std::make_unique<csrt::sim_env>(sim, cpu1, *t1, c1,
                                           util::rng(11));
    t0->attach(*env0);
    t1->attach(*env1);
  }
};

util::shared_bytes payload_of(std::size_t n) {
  util::buffer_writer w;
  w.put_padding(n);
  return w.take();
}

class fig3_sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(fig3_sizes, write_bandwidth_matches_cost_model) {
  const std::size_t size = GetParam();
  pair_rig r;
  auto msg = payload_of(size);
  sim_time done = 0;
  r.env0->post([&] {
    for (int i = 0; i < 200; ++i) r.env0->send(1, msg);
    done = r.env0->now();
  });
  r.sim.run();
  const csrt::net_cost_model costs;
  const double expect_bps =
      size * 8.0 / (static_cast<double>(costs.send_cost(size)) / 1e9);
  const double got_bps = size * 200 * 8.0 / to_seconds(done);
  EXPECT_NEAR(got_bps / expect_bps, 1.0, 0.02) << "size " << size;
}

TEST_P(fig3_sizes, receive_goodput_capped_by_wire) {
  const std::size_t size = GetParam();
  pair_rig r;
  auto msg = payload_of(size);
  std::uint64_t bytes = 0;
  sim_time last = 0;
  r.env1->set_handler([&](node_id, util::shared_bytes m) {
    bytes += m->size();
    last = r.sim.now();
  });
  r.env0->post([&] {
    for (int i = 0; i < 300; ++i) r.env0->send(1, msg);
  });
  r.sim.run();
  ASSERT_GT(last, 0);
  const double goodput = static_cast<double>(bytes) * 8.0 /
                         to_seconds(last);
  EXPECT_LT(goodput, 100e6);  // never exceeds the wire
}

INSTANTIATE_TEST_SUITE_P(sizes, fig3_sizes,
                         ::testing::Values(64, 512, 1472, 4096));

TEST(fig3, rtt_scales_linearly_with_size) {
  auto rtt_of = [](std::size_t size) {
    pair_rig r;
    auto msg = payload_of(size);
    sim_time sent = 0;
    double rtt_us = 0;
    int rounds = 20;
    r.env1->set_handler(
        [&](node_id from, util::shared_bytes m) { r.env1->send(from, m); });
    std::function<void()> ping = [&] {
      sent = r.env0->now();
      r.env0->send(1, msg);
    };
    r.env0->set_handler([&](node_id, util::shared_bytes) {
      rtt_us = to_micros(r.env0->now() - sent);
      if (--rounds > 0) ping();
    });
    r.env0->post(ping);
    r.sim.run();
    return rtt_us;
  };
  const double small = rtt_of(64);
  const double large = rtt_of(4096);
  EXPECT_GT(small, 50.0);
  EXPECT_LT(small, 500.0);   // paper: ~200 us
  EXPECT_GT(large, 1000.0);  // paper: ~1.4 ms
  EXPECT_LT(large, 3000.0);
  EXPECT_GT(large, small * 5);
}

TEST(fig4, latency_quantiles_stable_across_seeds) {
  // The Q-Q validation criterion: two independent runs of the 20-client
  // configuration produce near-identical latency quantiles.
  auto run = [](std::uint64_t seed) {
    core::experiment_config cfg;
    cfg.sites = 1;
    cfg.clients = 20;
    cfg.target_responses = 2500;
    cfg.seed = seed;
    const auto r = core::run_experiment(cfg);
    return r.stats.pooled_latency_ms();
  };
  const auto a = run(42);
  const auto b = run(1042);
  for (const auto& [x, y] : util::qq_series(a, b, 10)) {
    if (x > 5.0 && x < 300.0) {
      EXPECT_NEAR(y / x, 1.0, 0.25) << "at quantile value " << x;
    }
  }
}

}  // namespace
}  // namespace dbsm
