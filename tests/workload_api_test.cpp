// Interface-conformance tests of the pluggable workload API: both bundled
// core::workload implementations (TPC-C and the YCSB-style KV workload)
// must run through the same generic run_experiment path with correct
// stats/class-name plumbing — plus property tests of the KV workload's
// Zipfian skew (skew raises the certification abort rate, the scenario
// TPC-C's warehouse partitioning cannot express).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/experiment.hpp"
#include "tpcc/tpcc_workload.hpp"
#include "workload/kv.hpp"

namespace dbsm {
namespace {

void check_conformance(const core::experiment_result& r,
                       const std::string& workload_name,
                       std::size_t classes) {
  EXPECT_EQ(r.workload_name, workload_name);
  ASSERT_EQ(r.class_names.size(), classes);
  ASSERT_EQ(r.class_is_update.size(), classes);
  ASSERT_EQ(r.stats.classes(), classes);
  std::uint64_t responses = 0;
  for (db::txn_class cls = 0; cls < static_cast<db::txn_class>(classes);
       ++cls) {
    EXPECT_FALSE(r.class_names[cls].empty());
    responses += r.stats.of(cls).total();
  }
  // Every client-reported response landed in exactly one class bucket.
  EXPECT_EQ(responses, r.responses);
  EXPECT_GT(r.stats.total_committed(), 0u);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
}

core::experiment_config small_config() {
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 30;
  cfg.target_responses = 300;
  cfg.max_sim_time = seconds(600);
  cfg.seed = 7;
  return cfg;
}

TEST(workload_api, tpcc_runs_through_generic_path) {
  // Null factory: the default TPC-C workload, config-compatible with the
  // pre-seam API.
  auto r = core::run_experiment(small_config());
  check_conformance(r, "tpcc", tpcc::num_classes);
  EXPECT_EQ(r.class_names[tpcc::c_neworder], "neworder");
}

TEST(workload_api, explicit_tpcc_factory_matches_default) {
  auto cfg = small_config();
  const auto by_default = core::run_experiment(cfg);
  cfg.workload = tpcc::factory(cfg.profile);
  const auto by_factory = core::run_experiment(cfg);
  EXPECT_EQ(by_default.stats.total_committed(),
            by_factory.stats.total_committed());
  EXPECT_EQ(by_default.duration, by_factory.duration);
  ASSERT_FALSE(by_default.commit_logs.empty());
  EXPECT_EQ(by_default.commit_logs[0], by_factory.commit_logs[0]);
}

TEST(workload_api, kv_runs_through_generic_path) {
  auto cfg = small_config();
  cfg.workload = kv::factory();
  auto r = core::run_experiment(cfg);
  check_conformance(r, "kv", kv::num_classes);
  EXPECT_EQ(r.class_names[kv::c_read], "kv-read");
  EXPECT_EQ(r.class_names[kv::c_rmw], "kv-rmw");
  EXPECT_FALSE(r.class_is_update[kv::c_read]);
  EXPECT_TRUE(r.class_is_update[kv::c_rmw]);
  // Point-read-only transactions never certification-abort.
  EXPECT_EQ(r.stats.of(kv::c_read).aborted_cert, 0u);
}

TEST(workload_api, kv_deterministic_given_seed) {
  auto cfg = small_config();
  cfg.workload = kv::factory();
  auto a = core::run_experiment(cfg);
  auto b = core::run_experiment(cfg);
  EXPECT_EQ(a.stats.total_committed(), b.stats.total_committed());
  EXPECT_EQ(a.duration, b.duration);
  ASSERT_EQ(a.commit_logs.size(), b.commit_logs.size());
  EXPECT_EQ(a.commit_logs[0], b.commit_logs[0]);
}

// ---------- Zipf skew properties ----------

TEST(zipf_sampler, skew_concentrates_mass_on_low_ranks) {
  constexpr std::uint64_t n = 1000;
  constexpr int draws = 20000;
  util::rng g(11);
  const kv::zipf_sampler uniform(n, 0.0);
  const kv::zipf_sampler skewed(n, 0.9);
  int uniform_rank0 = 0, skewed_rank0 = 0;
  double uniform_sum = 0, skewed_sum = 0;
  for (int i = 0; i < draws; ++i) {
    const auto u = uniform.sample(g);
    const auto s = skewed.sample(g);
    ASSERT_LT(u, n);
    ASSERT_LT(s, n);
    uniform_rank0 += u == 0;
    skewed_rank0 += s == 0;
    uniform_sum += static_cast<double>(u);
    skewed_sum += static_cast<double>(s);
  }
  // theta 0 is uniform: rank 0 gets ~1/n of the draws. theta 0.9 puts
  // ~9% of the mass on the single hottest key.
  EXPECT_NEAR(uniform_rank0 / double(draws), 1.0 / double(n), 0.005);
  EXPECT_GT(skewed_rank0, 10 * std::max(uniform_rank0, 1));
  EXPECT_LT(skewed_sum / draws, 0.5 * uniform_sum / draws);
}

core::experiment_config kv_skew_config(double theta) {
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 60;
  cfg.target_responses = 2400;
  cfg.max_sim_time = seconds(600);
  cfg.seed = 21;
  kv::kv_config k;
  k.keys = 20000;
  k.keys_per_granule = 128;
  k.zipf_theta = theta;
  k.mix_read = 0.30;
  k.mix_update = 0.30;
  k.mix_scan = 0.25;
  k.think_time = util::exponential_dist(0.5);
  cfg.workload = kv::factory(k);
  return cfg;
}

TEST(workload_api, kv_zipf_skew_raises_cert_abort_rate) {
  // The scenario the seam exists for: every site hammers the same global
  // hot keys, so certification aborts (scans racing writes in the hot
  // granules) and the overall conflict abort rate rise monotonically
  // with skew. TPC-C cannot express this — its contention is partitioned
  // by home warehouse. (Tuple-level write-write losers are typically
  // preempted by the winning certified transaction before their own
  // delivery, so they count as preempt aborts; the escalated scan reads
  // are the pure certification channel.)
  double prev_cert_rate = -1.0;
  double prev_abort_pct = -1.0;
  std::uint64_t low_aborts = 0, high_aborts = 0;
  for (const double theta : {0.0, 0.6, 0.95}) {
    const auto r = core::run_experiment(kv_skew_config(theta));
    EXPECT_TRUE(r.safety.ok) << r.safety.detail;
    std::uint64_t cert_aborts = 0, responses = 0;
    for (db::txn_class cls = 0; cls < kv::num_classes; ++cls) {
      cert_aborts += r.stats.of(cls).aborted_cert;
      responses += r.stats.of(cls).total();
    }
    ASSERT_GT(responses, 0u);
    const double cert_rate =
        static_cast<double>(cert_aborts) / static_cast<double>(responses);
    EXPECT_GE(cert_rate, prev_cert_rate) << "theta " << theta;
    EXPECT_GE(r.stats.abort_rate_pct(), prev_abort_pct)
        << "theta " << theta;
    prev_cert_rate = cert_rate;
    prev_abort_pct = r.stats.abort_rate_pct();
    if (theta == 0.0) low_aborts = cert_aborts;
    if (theta == 0.95) high_aborts = cert_aborts;
  }
  // And strictly: heavy skew must produce real conflict volume.
  EXPECT_GT(high_aborts, 2 * low_aborts + 10);
}

// ---------- the "latest" (YCSB-D) key distribution ----------

kv::kv_config latest_config() {
  kv::kv_config k;
  k.keys = 2000;
  k.keys_per_granule = 16;
  k.zipf_theta = 0.99;
  k.dist = kv::key_dist::latest;
  k.mix_read = 0.0;  // all blind updates: every request carries its keys
  k.mix_update = 1.0;
  k.mix_scan = 0.0;
  return k;
}

std::uint64_t key_of(db::item_id it, std::uint32_t keys_per_granule) {
  return static_cast<std::uint64_t>(db::item_warehouse(it)) *
             keys_per_granule +
         db::item_row(it);
}

/// Median key sampled from transactions [lo, hi) of a fresh source.
std::uint64_t median_key(const kv::kv_config& k, unsigned lo, unsigned hi) {
  kv::kv_workload wl(k);
  util::rng root(5);
  wl.prepare(1, 1, root);
  core::client_slot slot;
  slot.site = 0;
  slot.index = 0;
  slot.total_clients = 1;
  auto src = wl.make_source(slot, root.fork("latest"));
  std::vector<std::uint64_t> keys;
  for (unsigned t = 0; t < hi; ++t) {
    const auto req = src->next(0);
    if (t < lo) continue;
    for (const db::item_id it : req.write_set)
      if (!db::is_granule(it)) keys.push_back(key_of(it, k.keys_per_granule));
  }
  std::sort(keys.begin(), keys.end());
  return keys[keys.size() / 2];
}

TEST(kv_latest, hot_set_trails_the_insert_frontier_and_drifts) {
  const kv::kv_config k = latest_config();
  // With one client the t-th transaction's frontier is key t: the sampled
  // keys cluster a short Zipf offset behind it, so the median tracks the
  // frontier as the run proceeds — unlike the stationary Zipfian, whose
  // hot set is forever the low ranks.
  const std::uint64_t early = median_key(k, 300, 400);
  const std::uint64_t late = median_key(k, 1300, 1400);
  EXPECT_GT(early, 100u);         // not the stationary low-rank hot set
  EXPECT_LT(early, 450u);         // but trailing the ~[300,400) frontier
  EXPECT_GT(late, early + 500);   // and drifting with it
  EXPECT_LT(late, 1450u);

  kv::kv_config stationary = latest_config();
  stationary.dist = kv::key_dist::zipfian;
  EXPECT_LT(median_key(stationary, 1300, 1400), 200u);
}

TEST(kv_latest, deterministic_and_runs_through_generic_path) {
  // Same seed, same slot: identical request streams (the frontier is a
  // pure function of the slot and the per-source transaction count).
  const kv::kv_config k = latest_config();
  for (int rep = 0; rep < 2; ++rep) {
    kv::kv_workload a(k), b(k);
    util::rng ra(9), rb(9);
    a.prepare(2, 4, ra);
    b.prepare(2, 4, rb);
    core::client_slot slot;
    slot.site = 1;
    slot.index = 3;
    slot.total_clients = 4;
    auto sa = a.make_source(slot, ra.fork("x"));
    auto sb = b.make_source(slot, rb.fork("x"));
    for (unsigned t = 0; t < 40; ++t)
      EXPECT_EQ(sa->next(0).write_set, sb->next(0).write_set);
  }
  // And end-to-end: the latest distribution runs through run_experiment
  // with intact class plumbing.
  auto cfg = small_config();
  cfg.target_responses = 300;
  kv::kv_config mix = latest_config();
  mix.mix_read = 0.40;
  mix.mix_update = 0.30;
  mix.mix_scan = 0.10;
  mix.think_time = util::exponential_dist(0.5);
  cfg.workload = kv::factory(mix);
  const auto r = core::run_experiment(cfg);
  check_conformance(r, "kv", kv::num_classes);
}

// ---------- the "scrambled" key distribution ----------

TEST(kv_scrambled, keeps_the_zipf_mass_but_scatters_the_hot_keys) {
  // Scrambled = the same Zipf rank stream pushed through a fixed
  // permutation hash: the frequency profile (mass on the hottest key) is
  // unchanged, but the hot keys are no longer the low indices — so
  // low-index locality (and granule contiguity) is broken by design.
  kv::kv_config k;
  k.keys = 2000;
  k.zipf_theta = 0.9;
  k.mix_read = 0.0;
  k.mix_update = 1.0;
  k.mix_scan = 0.0;
  kv::kv_config plain = k;
  plain.dist = kv::key_dist::zipfian;
  kv::kv_config scram = k;
  scram.dist = kv::key_dist::scrambled;

  auto key_counts = [](const kv::kv_config& cfg) {
    kv::kv_workload wl(cfg);
    util::rng root(5);
    wl.prepare(1, 1, root);
    core::client_slot slot;
    slot.site = 0;
    slot.index = 0;
    slot.total_clients = 1;
    auto src = wl.make_source(slot, root.fork("s"));
    std::map<std::uint64_t, int> counts;
    for (int t = 0; t < 2000; ++t) {
      const auto req = src->next(0);
      for (const db::item_id it : req.write_set)
        if (!db::is_granule(it)) ++counts[key_of(it, cfg.keys_per_granule)];
    }
    return counts;
  };
  const auto plain_counts = key_counts(plain);
  const auto scram_counts = key_counts(scram);

  auto top5 = [](const std::map<std::uint64_t, int>& counts) {
    std::vector<std::pair<int, std::uint64_t>> by_count;
    for (const auto& [key, n] : counts) by_count.emplace_back(n, key);
    std::sort(by_count.rbegin(), by_count.rend());
    by_count.resize(std::min<std::size_t>(by_count.size(), 5));
    return by_count;
  };
  const auto plain_top = top5(plain_counts);
  const auto scram_top = top5(scram_counts);
  // Same skew: the single hottest key draws comparable mass either way.
  EXPECT_GT(scram_top[0].first, plain_top[0].first / 2);
  EXPECT_LT(scram_top[0].first, plain_top[0].first * 2);
  // Zipfian's hot set is the low indices; scrambled scatters it (rank 0
  // is the hash's fixed point, so allow that one key to stay low).
  int plain_low = 0, scram_low = 0;
  for (const auto& [n, key] : plain_top) plain_low += key < 100;
  for (const auto& [n, key] : scram_top) scram_low += key < 100;
  EXPECT_EQ(plain_low, 5);
  EXPECT_LE(scram_low, 1);
  // Low-index mass: zipfian concentrates most draws under key 100,
  // scrambled spreads them across the keyspace.
  auto mass_below = [](const std::map<std::uint64_t, int>& counts,
                       std::uint64_t bound) {
    int n = 0, total = 0;
    for (const auto& [key, c] : counts) {
      total += c;
      if (key < bound) n += c;
    }
    return static_cast<double>(n) / std::max(total, 1);
  };
  EXPECT_GT(mass_below(plain_counts, 100), 0.5);
  EXPECT_LT(mass_below(scram_counts, 100), 0.25);
}

TEST(kv_scrambled, deterministic_and_runs_through_generic_path) {
  kv::kv_config k;
  k.keys = 5000;
  k.dist = kv::key_dist::scrambled;
  k.zipf_theta = 0.9;
  k.think_time = util::exponential_dist(0.5);
  auto cfg = small_config();
  cfg.workload = kv::factory(k);
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  check_conformance(a, "kv", kv::num_classes);
  ASSERT_FALSE(a.commit_logs.empty());
  EXPECT_EQ(a.commit_logs[0], b.commit_logs[0]);  // same seed, same run
}

// ---------- YCSB mix presets through the conformance suite ----------

core::experiment_config preset_config(kv::mix preset) {
  auto cfg = small_config();
  kv::kv_config k;
  k.keys = 10000;
  k.preset = preset;
  k.think_time = util::exponential_dist(0.5);
  cfg.workload = kv::factory(k);
  return cfg;
}

std::uint64_t update_class_responses(const core::experiment_result& r) {
  std::uint64_t n = 0;
  for (db::txn_class cls = 0; cls < kv::num_classes; ++cls)
    if (r.class_is_update[cls]) n += r.stats.of(cls).total();
  return n;
}

TEST(workload_api, ycsb_a_preset_runs_an_update_heavy_mix) {
  const auto r = core::run_experiment(preset_config(kv::mix::ycsb_a));
  check_conformance(r, "kv", kv::num_classes);
  // 50/50: both halves of the mix actually ran, in comparable volume.
  const std::uint64_t updates = update_class_responses(r);
  EXPECT_GT(updates, r.responses / 3);
  EXPECT_LT(updates, 2 * r.responses / 3);
  EXPECT_EQ(r.stats.of(kv::c_scan).total(), 0u);  // presets drop scans
}

TEST(workload_api, ycsb_b_preset_is_read_mostly) {
  const auto r = core::run_experiment(preset_config(kv::mix::ycsb_b));
  check_conformance(r, "kv", kv::num_classes);
  const std::uint64_t updates = update_class_responses(r);
  EXPECT_GT(updates, 0u);                    // the 5% update leg ran
  EXPECT_LT(updates, r.responses / 5);       // but reads dominate
  EXPECT_EQ(r.stats.of(kv::c_scan).total(), 0u);
}

TEST(workload_api, ycsb_c_preset_is_pure_reads) {
  const auto r = core::run_experiment(preset_config(kv::mix::ycsb_c));
  check_conformance(r, "kv", kv::num_classes);
  EXPECT_EQ(update_class_responses(r), 0u);
  // Point reads never conflict: every response commits.
  EXPECT_EQ(r.stats.total_committed(), r.responses);
}

}  // namespace
}  // namespace dbsm
