// Tests of the composable fault-scenario API: target-site selection
// (explicit sets drift exactly those sites — the odd-site hardwiring is
// gone), [start, stop) fault windows on the simulator timeline, network
// partition/heal and per-link delay injection, the from_plan adapter, the
// named scenario catalog, and whole-run determinism (same seed + same
// scenario => identical committed sequence).
#include <gtest/gtest.h>

#include <memory>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "csrt/cpu.hpp"
#include "csrt/sim_env.hpp"
#include "fault/fault_types.hpp"
#include "fault/scenarios.hpp"
#include "net/lan.hpp"
#include "sim/simulator.hpp"
#include "util/byte_buffer.hpp"

namespace dbsm::fault {
namespace {

util::shared_bytes payload_of(std::size_t n) {
  util::buffer_writer w;
  w.put_padding(n);
  return w.take();
}

class null_transport final : public csrt::transport {
 public:
  void send(node_id, util::shared_bytes) override {}
  void multicast(util::shared_bytes) override {}
  unsigned multicast_fanout() const override { return 1; }
  std::size_t max_datagram() const override { return 1400; }
};

/// N per-site env bridges over one simulator (and optionally a LAN whose
/// host ids line up with the site indexes) — the unit-test analogue of the
/// cluster's injection points.
struct site_rig {
  sim::simulator s;
  null_transport null_net;
  std::unique_ptr<net::lan> lan;
  std::vector<std::unique_ptr<csrt::cpu_pool>> cpus;
  std::vector<std::unique_ptr<csrt::sim_env>> envs;
  std::vector<std::vector<sim_time>> arrivals;

  explicit site_rig(unsigned n, bool with_lan = false) {
    if (with_lan) {
      lan = std::make_unique<net::lan>(s, net::lan_config{}, util::rng(1));
      arrivals.resize(n);
    }
    for (unsigned i = 0; i < n; ++i) {
      if (lan) {
        EXPECT_EQ(lan->add_host(), i);
        lan->set_receiver(i, [this, i](node_id, util::shared_bytes) {
          arrivals[i].push_back(s.now());
        });
      }
      cpus.push_back(std::make_unique<csrt::cpu_pool>(s, 1));
      csrt::sim_env::config cfg;
      cfg.self = i;
      envs.push_back(std::make_unique<csrt::sim_env>(
          s, *cpus.back(), null_net, cfg, util::rng(i + 1)));
    }
  }

  injection_points points() {
    injection_points pts;
    pts.net = lan.get();
    for (auto& e : envs) pts.envs.push_back(e.get());
    return pts;
  }

  /// Arms a 100ms timer on every env; returns the recorded fire times.
  std::vector<sim_time> timer_fires() {
    const sim_time base = s.now();
    std::vector<sim_time> fires(envs.size(), 0);
    for (std::size_t i = 0; i < envs.size(); ++i) {
      envs[i]->set_timer(milliseconds(100),
                         [this, &fires, i, base] { fires[i] = s.now() - base; });
    }
    s.run();
    return fires;
  }
};

// --- target selection -----------------------------------------------

TEST(fault_targeting, drift_hits_exactly_the_target_set) {
  // Regression for the hardwired odd-site clock drift: an explicit target
  // set drifts exactly those sites, no matter their parity.
  site_rig rig(4);
  auto pts = rig.points();
  clock_drift_fault drift(0.5, site_selector{site_set{0, 3}});
  drift.arm(pts);

  const auto fires = rig.timer_fires();
  EXPECT_EQ(fires[0], milliseconds(150));  // drifted: postponed by 1.5x
  EXPECT_EQ(fires[1], milliseconds(100));
  EXPECT_EQ(fires[2], milliseconds(100));
  EXPECT_EQ(fires[3], milliseconds(150));

  // Disarm restores nominal timing on the same sites.
  drift.disarm(pts);
  const auto after = rig.timer_fires();
  for (sim_time t : after) EXPECT_EQ(t, milliseconds(100));
}

TEST(fault_targeting, from_plan_keeps_the_papers_odd_site_drift) {
  site_rig rig(4);
  scenario s = from_plan([] {
    plan p;
    p.clock_drift = 0.10;
    return p;
  }());
  s.install(rig.s, rig.points());

  const auto fires = rig.timer_fires();
  EXPECT_EQ(fires[0], milliseconds(100));
  EXPECT_EQ(fires[1], milliseconds(110));
  EXPECT_EQ(fires[2], milliseconds(100));
  EXPECT_EQ(fires[3], milliseconds(110));
}

TEST(fault_targeting, selector_resolution) {
  EXPECT_EQ(site_selector::all().resolve(4), (site_set{0, 1, 2, 3}));
  EXPECT_EQ(site_selector::odd().resolve(5), (site_set{1, 3}));
  EXPECT_EQ(site_selector::even().resolve(5), (site_set{0, 2, 4}));
  EXPECT_EQ((site_selector{site_set{2, 0}}).resolve(3), (site_set{2, 0}));
}

// --- fault windows ----------------------------------------------------

TEST(fault_windows, loss_applies_only_inside_the_window) {
  site_rig rig(2, /*with_lan=*/true);
  scenario s("windowed_loss");
  s.add(loss_fault::random(1.0, site_selector{site_set{1}}),
        milliseconds(10), milliseconds(20));
  s.install(rig.s, rig.points());

  for (sim_time at : {milliseconds(1), milliseconds(12), milliseconds(25)}) {
    rig.s.schedule_at(at, [&rig] { rig.lan->send(0, 1, payload_of(100)); });
  }
  rig.s.run();

  ASSERT_EQ(rig.arrivals[1].size(), 2u);  // the in-window send was dropped
  EXPECT_EQ(rig.lan->injected_losses(1), 1u);
  EXPECT_LT(rig.arrivals[1][0], milliseconds(10));
  EXPECT_GT(rig.arrivals[1][1], milliseconds(25));
}

TEST(fault_windows, zero_width_window_is_a_no_op) {
  // [t, t) arms nothing — shrunk fuzzer timelines produce such windows
  // when halving, and they must not perturb the run they are replayed in.
  site_rig rig(2, /*with_lan=*/true);
  scenario s("zero_width");
  s.add(loss_fault::random(1.0, site_selector{site_set{1}}),
        milliseconds(10), milliseconds(10));
  s.install(rig.s, rig.points());

  for (sim_time at : {milliseconds(1), milliseconds(10), milliseconds(25)}) {
    rig.s.schedule_at(at, [&rig] { rig.lan->send(0, 1, payload_of(100)); });
  }
  rig.s.run();

  EXPECT_EQ(rig.arrivals[1].size(), 3u);  // nothing dropped, ever
  EXPECT_EQ(rig.lan->injected_losses(1), 0u);
}

TEST(fault_windows, sched_latency_window_disarms) {
  site_rig rig(2);
  auto pts = rig.points();
  sched_latency_fault jitter(milliseconds(5), site_selector{site_set{1}});
  jitter.arm(pts);
  auto fires = rig.timer_fires();
  EXPECT_EQ(fires[0], milliseconds(100));
  EXPECT_GE(fires[1], milliseconds(100));
  EXPECT_LE(fires[1], milliseconds(105));

  jitter.disarm(pts);
  fires = rig.timer_fires();
  EXPECT_EQ(fires[1], milliseconds(100));
}

// --- partition / link delay ------------------------------------------

TEST(partition, cut_and_heal) {
  site_rig rig(3, /*with_lan=*/true);
  auto pts = rig.points();
  partition_fault part(site_set{2});  // {2} vs {0, 1}

  part.arm(pts);
  rig.lan->send(0, 2, payload_of(100));  // crosses the cut: dropped
  rig.lan->send(0, 1, payload_of(100));  // same side: delivered
  rig.lan->multicast(2, payload_of(100));  // cut from both 0 and 1
  rig.s.run();
  EXPECT_TRUE(rig.arrivals[2].empty());
  EXPECT_EQ(rig.arrivals[1].size(), 1u);
  EXPECT_TRUE(rig.arrivals[0].empty());
  EXPECT_EQ(rig.lan->link_cut_drops(2), 1u);
  EXPECT_EQ(rig.lan->link_cut_drops(0), 1u);
  EXPECT_EQ(rig.lan->link_cut_drops(1), 1u);

  part.disarm(pts);
  rig.lan->send(0, 2, payload_of(100));
  rig.s.run();
  EXPECT_EQ(rig.arrivals[2].size(), 1u);
}

TEST(partition, cut_kills_in_flight_datagrams) {
  site_rig rig(2, /*with_lan=*/true);
  rig.lan->send(0, 1, payload_of(1000));
  // The cut lands before the datagram's reception event fires.
  rig.lan->set_link_cut(0, 1, true);
  rig.s.run();
  EXPECT_TRUE(rig.arrivals[1].empty());
  EXPECT_EQ(rig.lan->link_cut_drops(1), 1u);
}

TEST(link_delay, shifts_arrival_by_the_extra_delay) {
  site_rig rig(2, /*with_lan=*/true);
  rig.lan->send(0, 1, payload_of(100));
  rig.s.run();
  ASSERT_EQ(rig.arrivals[1].size(), 1u);
  const sim_duration nominal = rig.arrivals[1][0];

  auto pts = rig.points();
  link_delay_fault slow(milliseconds(5), site_set{0});
  slow.arm(pts);
  const sim_time sent_at = rig.s.now();
  rig.lan->send(0, 1, payload_of(100));
  rig.s.run();
  ASSERT_EQ(rig.arrivals[1].size(), 2u);
  EXPECT_EQ(rig.arrivals[1][1] - sent_at, nominal + milliseconds(5));

  slow.disarm(pts);
  const sim_time sent_again = rig.s.now();
  rig.lan->send(0, 1, payload_of(100));
  rig.s.run();
  ASSERT_EQ(rig.arrivals[1].size(), 3u);
  EXPECT_EQ(rig.arrivals[1][2] - sent_again, nominal);
}

// --- asymmetric link faults ------------------------------------------

TEST(asymmetric_faults, one_way_cut_drops_only_one_direction) {
  site_rig rig(2, /*with_lan=*/true);
  auto pts = rig.points();
  auto cut = partition_fault::one_way(site_set{0}, site_set{1});

  cut->arm(pts);
  rig.lan->send(0, 1, payload_of(100));  // 0 -> 1 crosses the cut: dropped
  rig.lan->send(1, 0, payload_of(100));  // 1 -> 0 flows
  rig.s.run();
  EXPECT_TRUE(rig.arrivals[1].empty());
  EXPECT_EQ(rig.arrivals[0].size(), 1u);
  EXPECT_EQ(rig.lan->link_cut_drops(1), 1u);
  EXPECT_EQ(rig.lan->link_cut_drops(0), 0u);

  // Heal: symmetric delivery is restored.
  cut->disarm(pts);
  rig.lan->send(0, 1, payload_of(100));
  rig.lan->send(1, 0, payload_of(100));
  rig.s.run();
  EXPECT_EQ(rig.arrivals[1].size(), 1u);
  EXPECT_EQ(rig.arrivals[0].size(), 2u);
}

TEST(asymmetric_faults, one_way_delay_shifts_only_one_direction) {
  site_rig rig(2, /*with_lan=*/true);
  rig.lan->send(0, 1, payload_of(100));
  rig.s.run();
  ASSERT_EQ(rig.arrivals[1].size(), 1u);
  const sim_duration nominal = rig.arrivals[1][0];

  auto pts = rig.points();
  auto slow = link_delay_fault::one_way(milliseconds(5), site_set{0},
                                        site_set{1});
  slow->arm(pts);
  sim_time sent_at = rig.s.now();
  rig.lan->send(0, 1, payload_of(100));  // delayed direction
  rig.s.run();
  ASSERT_EQ(rig.arrivals[1].size(), 2u);
  EXPECT_EQ(rig.arrivals[1][1] - sent_at, nominal + milliseconds(5));

  sent_at = rig.s.now();
  rig.lan->send(1, 0, payload_of(100));  // reverse direction: nominal
  rig.s.run();
  ASSERT_EQ(rig.arrivals[0].size(), 1u);
  EXPECT_EQ(rig.arrivals[0][0] - sent_at, nominal);
}

TEST(asymmetric_faults, one_way_cut_suspicion_only_on_non_receiving_side) {
  // Suspicion follows the direction of the cut, not the link: only the
  // side that stops *receiving* liveness proofs suspects.
  core::experiment_config base;
  base.sites = 3;
  base.clients = 24;
  base.target_responses = 250;
  base.max_sim_time = seconds(400);
  base.seed = 31337;

  // Outbound cut ({2} -> {0, 1}): sites 0 and 1 stop hearing site 2 and
  // exclude it; site 2 hears everyone, suspects nobody, sees the view
  // that excludes it, and stalls its sends instead of split-braining —
  // while still mirroring the majority's delivered sequence as a silent
  // listener.
  {
    auto cfg = base;
    scenario s("one_way_out_cut");
    s.add(partition_fault::one_way(site_set{2}), seconds(10), seconds(14));
    cfg.faults = s;
    const auto r = core::run_experiment(cfg);
    EXPECT_TRUE(r.safety.ok) << r.safety.detail;
    EXPECT_GE(r.view_changes, 1u);  // the hearing side excluded site 2
    EXPECT_GT(r.stats.total_committed(), 50u);
  }

  // Inbound cut ({0, 1} -> {2}): only site 2 stops hearing. It suspects
  // the others, finds itself a minority, and withholds any proposal; the
  // majority keeps hearing site 2's heartbeats and never suspects it —
  // no view change at all. The heal restores symmetric delivery and NAK
  // recovery catches site 2 back up.
  {
    auto cfg = base;
    scenario s("one_way_in_cut");
    s.add(partition_fault::one_way(site_set{0, 1}, site_set{2}),
          seconds(10), seconds(14));
    cfg.faults = s;
    const auto r = core::run_experiment(cfg);
    EXPECT_TRUE(r.safety.ok) << r.safety.detail;
    EXPECT_EQ(r.view_changes, 0u);  // nobody excluded anybody
    EXPECT_GT(r.stats.total_committed(), 50u);
  }
}

// --- failure-detector hysteresis under delay --------------------------

TEST(fault_windows, delay_only_scenario_causes_no_suspicion) {
  // A pure-delay fault shifts every datagram but loses none: heartbeats
  // keep arriving (late), so the miss-count hysteresis in the failure
  // detector must keep every site trusted — no suspicion, no view change.
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 24;
  cfg.target_responses = 250;
  cfg.max_sim_time = seconds(400);
  cfg.seed = 1717;
  scenario s("delay_only");
  s.add(std::make_shared<link_delay_fault>(milliseconds(150),
                                           site_set{0, 1, 2}),
        seconds(5), seconds(25));
  cfg.faults = s;

  const auto r = core::run_experiment(cfg);
  EXPECT_TRUE(r.safety.ok) << r.safety.detail;
  EXPECT_EQ(r.view_changes, 0u);
  EXPECT_GT(r.stats.total_committed(), 50u);
}

// --- scenario catalog -------------------------------------------------

TEST(scenario_catalog, finds_and_builds_every_entry) {
  scenarios::params prm;
  prm.sites = 5;
  for (const auto& e : scenarios::catalog()) {
    EXPECT_EQ(scenarios::find(e.name), &e);
    const scenario s = e.make(prm);
    EXPECT_EQ(s.name(), e.name);
    if (std::string_view(e.name) != "no_faults") EXPECT_FALSE(s.empty());
  }
  EXPECT_EQ(scenarios::find("does_not_exist"), nullptr);
}

TEST(scenario_catalog, partition_minority_heals_after_exclusion) {
  scenarios::params prm;
  const scenario s = scenarios::partition_minority(prm);
  ASSERT_EQ(s.events().size(), 1u);
  EXPECT_EQ(s.events()[0].start, prm.onset);
  EXPECT_EQ(s.events()[0].stop, prm.onset + 4 * prm.exclusion_timeout);
}

// --- determinism ------------------------------------------------------

TEST(fault_determinism, same_seed_same_scenario_same_committed_sequence) {
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.clients = 24;
  cfg.target_responses = 200;
  cfg.max_sim_time = seconds(400);
  cfg.seed = 4242;
  // A composed scenario exercising windows, a partition, and loss — the
  // scenario object is shared by both runs, so re-arming must not leak
  // state between them.
  scenario s("composed");
  s.add(loss_fault::random(0.10), seconds(5), seconds(12));
  s.add(std::make_shared<partition_fault>(site_set{2}), seconds(20),
        seconds(20) + milliseconds(150));
  cfg.faults = s;

  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);

  EXPECT_TRUE(a.safety.ok);
  EXPECT_EQ(a.stats.total_committed(), b.stats.total_committed());
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.duration, b.duration);
  ASSERT_EQ(a.commit_logs.size(), b.commit_logs.size());
  for (std::size_t i = 0; i < a.commit_logs.size(); ++i)
    EXPECT_EQ(a.commit_logs[i], b.commit_logs[i]) << "site " << i;
}

}  // namespace
}  // namespace dbsm::fault
