// Tests of the replica / distributed termination protocol through the
// cluster wiring: commits reach every site, certification aborts cross-site
// conflicts, remote preemption, and identical commit logs.
#include <gtest/gtest.h>

#include "cert/rwset.hpp"
#include "core/cluster.hpp"
#include "tpcc/schema.hpp"

namespace dbsm::core {
namespace {

db::txn_request update_txn(db::item_id item, sim_duration cpu_time,
                           std::uint32_t bytes = 200) {
  db::txn_request req;
  req.read_set = {item};
  req.write_set = {item};
  req.update_bytes = bytes;
  db::operation p;
  p.k = db::operation::kind::process;
  p.cpu = cpu_time;
  req.ops = {p};
  return req;
}

db::txn_request read_only_txn(db::item_id item, sim_duration cpu_time) {
  db::txn_request req;
  req.read_set = {item};
  db::operation p;
  p.k = db::operation::kind::process;
  p.cpu = cpu_time;
  req.ops = {p};
  return req;
}

cluster::config small_cluster(unsigned sites) {
  cluster::config cfg;
  cfg.sites = sites;
  cfg.cpus_per_site = 1;
  cfg.seed = 21;
  return cfg;
}

TEST(replica, local_update_commits_and_replicates) {
  cluster c(small_cluster(3));
  c.start();
  db::txn_outcome outcome{};
  bool done = false;
  c.sim().schedule_at(milliseconds(50), [&] {
    c.site(0).submit(update_txn(42 << 1, milliseconds(5)),
                     [&](db::txn_outcome o) {
                       outcome = o;
                       done = true;
                     });
  });
  c.sim().run_until(seconds(3));
  ASSERT_TRUE(done);
  EXPECT_EQ(outcome, db::txn_outcome::committed);
  // Every site logged the same single commit; remote sites applied it.
  for (unsigned i = 0; i < 3; ++i) {
    ASSERT_EQ(c.site(i).commit_log().size(), 1u) << "site " << i;
    EXPECT_EQ(c.site(i).commit_log()[0], c.site(0).commit_log()[0]);
  }
  EXPECT_EQ(c.site(1).server().remote_applied(), 1u);
  EXPECT_EQ(c.site(2).server().remote_applied(), 1u);
  // Remote application wrote to the remote disks (read one / write all).
  EXPECT_GT(c.site(1).server().disk().sectors_written(), 0u);
}

TEST(replica, cross_site_write_conflict_aborts_exactly_one) {
  cluster c(small_cluster(3));
  c.start();
  std::map<db::txn_outcome, int> outcomes;
  int done = 0;
  const db::item_id hot = 7 << 1;
  // Two sites update the same item concurrently: no distributed locking,
  // so both execute; certification aborts the one delivered second.
  c.sim().schedule_at(milliseconds(50), [&] {
    c.site(0).submit(update_txn(hot, milliseconds(5)),
                     [&](db::txn_outcome o) {
                       ++outcomes[o];
                       ++done;
                     });
    c.site(1).submit(update_txn(hot, milliseconds(5)),
                     [&](db::txn_outcome o) {
                       ++outcomes[o];
                       ++done;
                     });
  });
  c.sim().run_until(seconds(3));
  ASSERT_EQ(done, 2);
  EXPECT_EQ(outcomes[db::txn_outcome::committed], 1);
  const int aborts = outcomes[db::txn_outcome::aborted_cert] +
                     outcomes[db::txn_outcome::aborted_preempt];
  EXPECT_EQ(aborts, 1);
  // Logs identical and contain exactly the winner.
  for (unsigned i = 0; i < 3; ++i)
    EXPECT_EQ(c.site(i).commit_log().size(), 1u);
}

TEST(replica, sequential_cross_site_updates_both_commit) {
  cluster c(small_cluster(2));
  c.start();
  std::vector<db::txn_outcome> outcomes;
  const db::item_id item = 9 << 1;
  c.sim().schedule_at(milliseconds(50), [&] {
    c.site(0).submit(update_txn(item, milliseconds(2)),
                     [&](db::txn_outcome o) { outcomes.push_back(o); });
  });
  c.sim().schedule_at(seconds(1), [&] {
    c.site(1).submit(update_txn(item, milliseconds(2)),
                     [&](db::txn_outcome o) { outcomes.push_back(o); });
  });
  c.sim().run_until(seconds(4));
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], db::txn_outcome::committed);
  EXPECT_EQ(outcomes[1], db::txn_outcome::committed);
  for (unsigned i = 0; i < 2; ++i)
    EXPECT_EQ(c.site(i).commit_log().size(), 2u);
}

TEST(replica, read_only_commits_locally_without_multicast) {
  cluster c(small_cluster(3));
  c.start();
  db::txn_outcome outcome{};
  bool done = false;
  c.sim().schedule_at(milliseconds(50), [&] {
    c.site(2).submit(read_only_txn(11 << 1, milliseconds(3)),
                     [&](db::txn_outcome o) {
                       outcome = o;
                       done = true;
                     });
  });
  c.sim().run_until(seconds(2));
  ASSERT_TRUE(done);
  EXPECT_EQ(outcome, db::txn_outcome::committed);
  for (unsigned i = 0; i < 3; ++i)
    EXPECT_TRUE(c.site(i).commit_log().empty());
}

TEST(replica, read_only_scan_aborts_on_concurrent_conflicting_commit) {
  cluster c(small_cluster(2));
  c.start();
  // The read-only transaction performs an escalated scan (granule read);
  // the update writes a tuple inside that granule and advertises it.
  const db::item_id tuple = db::make_item(2, 5, 1, 100);
  const db::item_id granule = db::make_granule(2, 5, 0);
  db::txn_outcome ro_outcome{};
  bool ro_done = false;
  c.sim().schedule_at(milliseconds(50), [&] {
    db::txn_request ro = read_only_txn(granule, milliseconds(200));
    c.site(0).submit(std::move(ro), [&](db::txn_outcome o) {
      ro_outcome = o;
      ro_done = true;
    });
  });
  c.sim().schedule_at(milliseconds(60), [&] {
    db::txn_request up = update_txn(tuple, milliseconds(1));
    up.write_set.push_back(granule);
    cert::normalize(up.write_set);
    c.site(1).submit(std::move(up), [](db::txn_outcome) {});
  });
  c.sim().run_until(seconds(3));
  ASSERT_TRUE(ro_done);
  EXPECT_EQ(ro_outcome, db::txn_outcome::aborted_cert);
}

TEST(replica, read_only_point_reads_never_abort) {
  cluster c(small_cluster(2));
  c.start();
  const db::item_id tuple = db::make_item(2, 5, 1, 100);
  db::txn_outcome ro_outcome{};
  bool ro_done = false;
  c.sim().schedule_at(milliseconds(50), [&] {
    c.site(0).submit(read_only_txn(tuple, milliseconds(200)),
                     [&](db::txn_outcome o) {
                       ro_outcome = o;
                       ro_done = true;
                     });
  });
  c.sim().schedule_at(milliseconds(60), [&] {
    // A concurrent committed write of the same tuple: the reader is
    // served from its snapshot version (multi-version engine).
    c.site(1).submit(update_txn(tuple, milliseconds(1)),
                     [](db::txn_outcome) {});
  });
  c.sim().run_until(seconds(3));
  ASSERT_TRUE(ro_done);
  EXPECT_EQ(ro_outcome, db::txn_outcome::committed);
}

TEST(replica, remote_commit_preempts_local_executing_conflict) {
  cluster c(small_cluster(2));
  c.start();
  const db::item_id item = 17 << 1;
  db::txn_outcome slow_outcome{};
  bool slow_done = false;
  c.sim().schedule_at(milliseconds(50), [&] {
    // Long-running local transaction holding the lock at site 0.
    c.site(0).submit(update_txn(item, milliseconds(400)),
                     [&](db::txn_outcome o) {
                       slow_outcome = o;
                       slow_done = true;
                     });
  });
  c.sim().schedule_at(milliseconds(60), [&] {
    // Fast conflicting transaction at site 1 certifies first; its remote
    // application at site 0 preempts the local holder.
    c.site(1).submit(update_txn(item, milliseconds(1)),
                     [](db::txn_outcome) {});
  });
  c.sim().run_until(seconds(3));
  ASSERT_TRUE(slow_done);
  EXPECT_EQ(slow_outcome, db::txn_outcome::aborted_preempt);
  for (unsigned i = 0; i < 2; ++i)
    EXPECT_EQ(c.site(i).commit_log().size(), 1u);
}

TEST(replica, certification_latency_recorded_for_updates) {
  cluster c(small_cluster(3));
  c.start();
  c.sim().schedule_at(milliseconds(50), [&] {
    c.site(0).submit(update_txn(23 << 1, milliseconds(2)),
                     [](db::txn_outcome) {});
  });
  c.sim().run_until(seconds(2));
  ASSERT_EQ(c.site(0).cert_latency_ms().size(), 1u);
  const double ms = c.site(0).cert_latency_ms().sorted()[0];
  EXPECT_GT(ms, 0.0);
  EXPECT_LT(ms, 100.0);
}

TEST(replica, halted_replica_never_replies) {
  cluster c(small_cluster(2));
  c.start();
  bool replied = false;
  c.sim().schedule_at(milliseconds(50), [&] {
    c.crash_site(1);
    c.site(1).submit(update_txn(29 << 1, milliseconds(1)),
                     [&](db::txn_outcome) { replied = true; });
  });
  c.sim().run_until(seconds(2));
  EXPECT_FALSE(replied);
}

}  // namespace
}  // namespace dbsm::core
