// Protocol-level unit tests of the reliable multicast and total order
// layers, driven by a scripted fake env: exact control over datagram
// delivery, loss, reordering, and timer firing.
#include <gtest/gtest.h>

#include "fake_env.hpp"
#include "gcs/rmcast.hpp"
#include "gcs/sequencer.hpp"

namespace dbsm::gcs {
namespace {

using test::fake_env;

util::shared_bytes text_payload(const std::string& s) {
  return std::make_shared<util::bytes>(s.begin(), s.end());
}

struct rmcast_fixture {
  fake_env env{0, {0, 1, 2}};
  group_config cfg;
  std::unique_ptr<reliable_mcast> rm;
  struct delivered_msg {
    node_id sender;
    std::uint64_t app_seq;
    std::string text;
    std::uint64_t last_dgram;
  };
  std::vector<delivered_msg> delivered;

  explicit rmcast_fixture(group_config c = {}) : cfg(c) {
    rm = std::make_unique<reliable_mcast>(env, cfg, std::vector<node_id>{
                                                        0, 1, 2});
    rm->set_app_handler([this](node_id sender, std::uint64_t app_seq,
                               util::shared_bytes payload,
                               std::uint64_t last_dgram) {
      delivered.push_back({sender, app_seq,
                           std::string(payload->begin(), payload->end()),
                           last_dgram});
    });
  }

  /// Crafts a DATA datagram as peer `sender` would send it.
  static std::pair<data_msg, util::shared_bytes> make_data(
      node_id sender, std::uint64_t dgram_seq, std::uint64_t app_seq,
      const std::string& text, std::uint16_t frag_idx = 0,
      std::uint16_t frag_cnt = 1) {
    data_msg m;
    m.hdr = {msg_type::data, 1, sender};
    m.dgram_seq = dgram_seq;
    m.app_seq = app_seq;
    m.frag_idx = frag_idx;
    m.frag_cnt = frag_cnt;
    m.payload = text_payload(text);
    return {m, encode(m)};
  }

  void receive(node_id sender, std::uint64_t dgram_seq,
               std::uint64_t app_seq, const std::string& text,
               std::uint16_t frag_idx = 0, std::uint16_t frag_cnt = 1) {
    auto [m, raw] = make_data(sender, dgram_seq, app_seq, text, frag_idx,
                              frag_cnt);
    rm->on_data(m, raw);
  }
};

TEST(rmcast_protocol, broadcast_self_delivers_and_transmits) {
  rmcast_fixture f;
  f.rm->broadcast(text_payload("hello"));
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].sender, 0u);
  EXPECT_EQ(f.delivered[0].app_seq, 1u);
  EXPECT_EQ(f.delivered[0].text, "hello");
  const auto out = f.env.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, invalid_node);  // multicast
  const data_msg m = decode_data(out[0].payload);
  EXPECT_EQ(m.dgram_seq, 1u);
  EXPECT_EQ(m.frag_cnt, 1);
}

TEST(rmcast_protocol, large_payload_fragments) {
  rmcast_fixture f;
  f.rm->broadcast(text_payload(std::string(2500, 'x')));  // 1024 max frag
  const auto out = f.env.take_outbox();
  ASSERT_EQ(out.size(), 3u);
  for (unsigned i = 0; i < 3; ++i) {
    const data_msg m = decode_data(out[i].payload);
    EXPECT_EQ(m.frag_idx, i);
    EXPECT_EQ(m.frag_cnt, 3);
    EXPECT_EQ(m.app_seq, 1u);
    EXPECT_EQ(m.dgram_seq, i + 1);
  }
}

TEST(rmcast_protocol, in_order_app_delivery) {
  rmcast_fixture f;
  f.receive(1, 1, 1, "a");
  f.receive(1, 2, 2, "b");
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.delivered[0].text, "a");
  EXPECT_EQ(f.delivered[1].text, "b");
  EXPECT_EQ(f.rm->prefixes(), (std::vector<std::uint64_t>{0, 2, 0}));
}

TEST(rmcast_protocol, gap_blocks_delivery_until_filled) {
  rmcast_fixture f;
  f.receive(1, 1, 1, "a");
  f.receive(1, 3, 3, "c");  // gap at 2
  EXPECT_EQ(f.delivered.size(), 1u);
  f.receive(1, 2, 2, "b");  // fills the gap
  ASSERT_EQ(f.delivered.size(), 3u);
  EXPECT_EQ(f.delivered[1].text, "b");
  EXPECT_EQ(f.delivered[2].text, "c");
}

TEST(rmcast_protocol, gap_triggers_nak_with_backoff) {
  rmcast_fixture f;
  f.receive(1, 1, 1, "a");
  f.receive(1, 4, 4, "d");  // gaps at 2, 3
  f.env.take_outbox();
  f.env.advance(f.cfg.nak_delay + 1);
  auto out = f.env.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 1u);  // unicast to the sender
  const nak_msg nak = decode_nak(out[0].payload);
  EXPECT_EQ(nak.target_sender, 1u);
  EXPECT_EQ(nak.missing, (std::vector<std::uint64_t>{2, 3}));
  // Still missing: the next NAK fires after a doubled interval.
  f.env.advance(f.cfg.nak_delay);
  EXPECT_TRUE(f.env.take_outbox().empty());
  f.env.advance(f.cfg.nak_delay + 1);
  out = f.env.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(decode_nak(out[0].payload).missing.size(), 2u);
  EXPECT_GT(f.rm->get_stats().naks_sent, 1u);
}

TEST(rmcast_protocol, nak_stops_after_gap_closes) {
  rmcast_fixture f;
  f.receive(1, 1, 1, "a");
  f.receive(1, 3, 3, "c");
  f.receive(1, 2, 2, "b");
  f.env.take_outbox();
  f.env.advance(seconds(1));
  EXPECT_TRUE(f.env.take_outbox().empty());
}

TEST(rmcast_protocol, duplicates_are_counted_and_dropped) {
  rmcast_fixture f;
  f.receive(1, 1, 1, "a");
  f.receive(1, 1, 1, "a");
  f.receive(1, 1, 1, "a");
  EXPECT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.rm->get_stats().duplicates, 2u);
}

TEST(rmcast_protocol, serves_retransmissions_from_send_buffer) {
  rmcast_fixture f;
  f.rm->broadcast(text_payload("keepme"));
  f.env.take_outbox();
  nak_msg nak;
  nak.hdr = {msg_type::nak, 1, 2};  // node 2 asks
  nak.target_sender = 0;
  nak.missing = {1};
  f.rm->on_nak(nak);
  const auto out = f.env.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 2u);
  const data_msg m = decode_data(out[0].payload);
  EXPECT_EQ(m.dgram_seq, 1u);
  EXPECT_EQ(f.rm->get_stats().retransmissions, 1u);
}

TEST(rmcast_protocol, forwards_foreign_datagrams_from_retention) {
  // Flush-time forwarding: node 0 retains node 1's datagram and serves it
  // to node 2 on request.
  rmcast_fixture f;
  f.receive(1, 1, 1, "kept");
  f.env.take_outbox();
  nak_msg nak;
  nak.hdr = {msg_type::nak, 1, 2};
  nak.target_sender = 1;
  nak.missing = {1};
  f.rm->on_nak(nak);
  const auto out = f.env.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 2u);
  const data_msg m = decode_data(out[0].payload);
  EXPECT_EQ(m.hdr.sender, 1u);  // original sender preserved
}

TEST(rmcast_protocol, garbage_collection_frees_quota) {
  rmcast_fixture f;
  f.rm->broadcast(text_payload("a"));
  f.rm->broadcast(text_payload("b"));
  f.env.take_outbox();
  EXPECT_GT(f.rm->quota_used(), 0u);
  f.rm->collect_garbage({2, 0, 0});  // own stream stable through seq 2
  EXPECT_EQ(f.rm->quota_used(), 0u);
}

TEST(rmcast_protocol, quota_exhaustion_blocks_then_gc_unblocks) {
  group_config cfg;
  cfg.total_buffer_msgs = 3 * 2;  // share: 2 datagrams
  rmcast_fixture f(cfg);
  f.rm->broadcast(text_payload("m1"));
  f.rm->broadcast(text_payload("m2"));
  f.rm->broadcast(text_payload("m3"));  // exceeds the share
  EXPECT_EQ(f.env.take_outbox().size(), 2u);
  EXPECT_TRUE(f.rm->blocked());
  EXPECT_EQ(f.rm->tx_backlog(), 1u);
  f.rm->collect_garbage({2, 0, 0});
  EXPECT_FALSE(f.rm->blocked());
  EXPECT_EQ(f.env.take_outbox().size(), 1u);
  EXPECT_GT(f.rm->get_stats().blocked_time, -1);
  EXPECT_EQ(f.rm->get_stats().blocked_episodes, 1u);
}

TEST(rmcast_protocol, fragments_reassemble_in_order_only) {
  rmcast_fixture f;
  // Fragments arrive out of order; the message completes when the prefix
  // reaches the last fragment.
  f.receive(1, 2, 1, "B", 1, 2);
  EXPECT_TRUE(f.delivered.empty());
  f.receive(1, 1, 1, "A", 0, 2);
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].text, "AB");
  EXPECT_EQ(f.delivered[0].last_dgram, 2u);
}

TEST(rmcast_protocol, flush_reaches_cut_and_reports) {
  rmcast_fixture f;
  f.receive(1, 1, 1, "a");
  bool done = false;
  f.rm->ensure_up_to({0, 3, 0}, {0, 2, 0}, [&] { done = true; });
  EXPECT_FALSE(done);
  // The flush NAKs the designated source (node 2) for 2 and 3.
  auto out = f.env.take_outbox();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].to, 2u);
  const nak_msg nak = decode_nak(out[0].payload);
  EXPECT_EQ(nak.target_sender, 1u);
  EXPECT_EQ(nak.missing, (std::vector<std::uint64_t>{2, 3}));
  f.receive(1, 2, 2, "b");
  f.receive(1, 3, 3, "c");
  EXPECT_TRUE(done);
}

// ---------- total order ----------

struct order_fixture {
  fake_env env{0, {0, 1, 2}};
  group_config cfg;
  total_order to{env, cfg};
  std::vector<std::pair<std::uint64_t, std::string>> delivered;
  std::vector<util::shared_bytes> sent_batches;

  order_fixture() {
    to.set_deliver([this](node_id, std::uint64_t seq,
                          util::shared_bytes payload) {
      delivered.emplace_back(seq,
                             std::string(payload->begin(), payload->end()));
    });
    to.set_send_assignments([this](util::shared_bytes batch) {
      sent_batches.push_back(std::move(batch));
    });
  }
};

TEST(total_order, non_sequencer_waits_for_assignments) {
  order_fixture f;
  f.to.set_sequencer(1);  // someone else
  f.to.on_user_msg(2, 1, text_payload("x"), 1);
  EXPECT_TRUE(f.delivered.empty());
  f.to.on_assignments(encode_assignments({{2, 1, 1}}));
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].first, 1u);
}

TEST(total_order, sequencer_assignments_take_effect_via_wire_echo) {
  order_fixture f;
  f.to.set_sequencer(0);  // we are the sequencer
  f.to.on_user_msg(1, 1, text_payload("x"), 1);
  // Batch flushes on the timer; nothing delivered until the batch comes
  // back through our own reliable stream.
  f.env.advance(f.cfg.sequencer_flush + 1);
  ASSERT_EQ(f.sent_batches.size(), 1u);
  EXPECT_TRUE(f.delivered.empty());
  f.to.on_assignments(f.sent_batches[0]);
  ASSERT_EQ(f.delivered.size(), 1u);
}

TEST(total_order, batch_flushes_at_size_threshold) {
  order_fixture f;
  f.to.set_sequencer(0);
  for (std::uint64_t i = 1; i <= f.cfg.sequencer_batch; ++i)
    f.to.on_user_msg(1, i, text_payload("m"), i);
  // Full batch flushed without waiting for the timer.
  ASSERT_EQ(f.sent_batches.size(), 1u);
  EXPECT_EQ(decode_assignments(f.sent_batches[0]).size(),
            f.cfg.sequencer_batch);
}

TEST(total_order, delivery_strictly_follows_global_sequence) {
  order_fixture f;
  f.to.set_sequencer(1);
  f.to.on_user_msg(2, 1, text_payload("second"), 1);
  f.to.on_user_msg(1, 1, text_payload("first"), 1);
  // Assignments: (1,1)->1, (2,1)->2; payload for 2 arrived first.
  f.to.on_assignments(encode_assignments({{1, 1, 1}, {2, 1, 2}}));
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.delivered[0].second, "first");
  EXPECT_EQ(f.delivered[1].second, "second");
}

TEST(total_order, missing_payload_stalls_subsequent_deliveries) {
  order_fixture f;
  f.to.set_sequencer(1);
  f.to.on_assignments(encode_assignments({{1, 1, 1}, {2, 1, 2}}));
  f.to.on_user_msg(2, 1, text_payload("later"), 1);
  EXPECT_TRUE(f.delivered.empty());  // seq 1's payload still missing
  f.to.on_user_msg(1, 1, text_payload("now"), 1);
  ASSERT_EQ(f.delivered.size(), 2u);
}

TEST(total_order, install_view_delivers_backlog_deterministically) {
  // Two replicas with identical flushed state must deliver identical
  // sequences at view installation, including unassigned messages.
  auto run = [](const char* tag) {
    order_fixture f;
    f.to.set_sequencer(2);  // sequencer about to be excluded
    f.to.on_user_msg(1, 1, text_payload(std::string("u1") + tag), 5);
    f.to.on_user_msg(2, 1, text_payload("u2"), 3);
    // One wire-visible assignment for (2,1); (1,1) never got ordered.
    f.to.on_assignments(encode_assignments({{2, 1, 1}}));
    // Old view {0,1,2} with cuts; sender 2 crashed; new view {0,1}.
    f.to.install_view({0, 1, 2}, {10, 10, 10}, {0, 1});
    std::vector<std::string> texts;
    for (const auto& [seq, text] : f.delivered) texts.push_back(text);
    return texts;
  };
  const auto a = run("");
  const auto b = run("");
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 2u);  // both messages survive (within the cut)
}

TEST(total_order, install_view_drops_dead_senders_beyond_cut) {
  order_fixture f;
  f.to.set_sequencer(0);
  // Message from node 2 with last fragment beyond the agreed cut.
  f.to.on_user_msg(2, 5, text_payload("ghost"), 42);
  f.to.install_view({0, 1, 2}, {10, 10, 10}, {0, 1});
  for (const auto& [seq, text] : f.delivered) {
    EXPECT_NE(text, "ghost");
  }
  EXPECT_EQ(f.to.pending_unordered(), 0u);
}

TEST(total_order, quiesce_holds_the_flush_until_view_install) {
  // The flush-quiesce barrier directly: once a view change quiesces
  // ordering, a firing flush timer must mint nothing; the held batch
  // rolls back at install and surfaces as deterministic unassigned
  // backlog, and the continuing sequencer numbers past it.
  order_fixture f;
  f.to.set_sequencer(0);
  f.to.on_user_msg(1, 1, text_payload("held"), 1);
  f.to.quiesce();
  f.env.advance(f.cfg.sequencer_flush + 1);
  EXPECT_TRUE(f.sent_batches.empty());  // the fired timer minted nothing
  // A message completing mid-flush stays unassigned too.
  f.to.on_user_msg(2, 1, text_payload("late"), 1);
  EXPECT_TRUE(f.sent_batches.empty());
  f.to.install_view({0, 1, 2}, {10, 10, 10}, {0, 1, 2});
  ASSERT_EQ(f.delivered.size(), 2u);  // backlog, (sender, app_seq) order
  EXPECT_EQ(f.delivered[0].second, "held");
  EXPECT_EQ(f.delivered[1].second, "late");
  f.to.set_sequencer(0);  // re-elected after the install
  f.to.on_user_msg(1, 2, text_payload("next"), 2);
  f.env.advance(f.cfg.sequencer_flush + 1);
  ASSERT_EQ(f.sent_batches.size(), 1u);
  const auto as = decode_assignments(f.sent_batches[0]);
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].global_seq, 3u);  // continues past the two delivered
}

TEST(total_order, view_change_rolls_back_the_open_batch) {
  // The batch-barrier path (batch mode): keys accumulated in an open
  // batch are marked assigned but unminted; a close firing mid-quiesce
  // must hold, and the install must roll the marks back so the keys are
  // delivered as plain backlog — nothing minted, nothing lost.
  fake_env env{0, {0, 1, 2}};
  group_config cfg;
  cfg.batch_max = 8;
  cfg.batch_delay = milliseconds(2);
  total_order to{env, cfg};
  std::vector<std::pair<std::uint64_t, std::string>> delivered;
  std::vector<util::shared_bytes> sent;
  to.set_deliver([&](node_id, std::uint64_t seq, util::shared_bytes p) {
    delivered.emplace_back(seq, std::string(p->begin(), p->end()));
  });
  to.set_send_batch([&](util::shared_bytes b) { sent.push_back(b); });
  to.set_sequencer(0);
  to.on_user_msg(1, 1, text_payload("a"), 1);
  to.on_user_msg(2, 1, text_payload("b"), 1);
  EXPECT_TRUE(sent.empty());  // open batch: under size, before the delay
  to.quiesce();
  env.advance(cfg.batch_delay + 1);  // close timer fires while quiesced
  EXPECT_TRUE(sent.empty());         // barrier holds: no mint mid-flush
  to.install_view({0, 1, 2}, {10, 10, 10}, {0, 1, 2});
  ASSERT_EQ(delivered.size(), 2u);  // rolled back and delivered as backlog
  EXPECT_EQ(delivered[0].second, "a");
  EXPECT_EQ(delivered[1].second, "b");
  to.set_sequencer(0);
  to.on_user_msg(1, 2, text_payload("c"), 2);
  env.advance(cfg.batch_delay + 1);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(decode_assignment_batch(sent[0]).base, 3u);  // numbering runs on
  to.on_assignment_batch(sent[0]);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered.back().first, 3u);
  EXPECT_EQ(delivered.back().second, "c");
}

TEST(total_order, orphan_assignments_are_skipped_consistently) {
  order_fixture f;
  f.to.set_sequencer(2);
  // The crashed sequencer ordered a message nobody holds.
  f.to.on_assignments(encode_assignments({{2, 9, 1}, {1, 1, 2}}));
  f.to.on_user_msg(1, 1, text_payload("real"), 4);
  // Only seq 1 is missing its payload; delivery stalls.
  EXPECT_TRUE(f.delivered.empty());
  f.to.install_view({0, 1, 2}, {10, 10, 10}, {0, 1});
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].second, "real");
}

}  // namespace
}  // namespace dbsm::gcs
