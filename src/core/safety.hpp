// Off-line safety check (§5.3): "we ensure that all operational sites must
// commit exactly the same sequence of transactions by comparing logs
// off-line after the simulation has finished."
#ifndef DBSM_CORE_SAFETY_HPP
#define DBSM_CORE_SAFETY_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace dbsm::core {

struct safety_report {
  bool ok = true;
  /// Length of the longest common prefix across all logs (operational and
  /// rejoined sites only, in the per-site overload).
  std::size_t common_prefix = 0;
  std::string detail;  // first divergence, when !ok
  /// Index of the first site that failed a per-site check (divergence,
  /// count mismatch, or excessive rejoin lag); -1 when ok or unknown.
  int first_mismatch_site = -1;
  /// Commits held only by crashed/excluded sites past their agreement
  /// point with the live order (per-site overload only): non-uniform
  /// deliveries the surviving majority's view change discarded. Not a
  /// violation off-line — the online check layer bounds them exactly.
  std::size_t orphaned = 0;
};

/// Verifies that every log is a prefix of the longest one (sites may lag
/// by in-flight transactions at the instant the run stops, but may never
/// disagree on the order or content of what they committed).
safety_report check_commit_logs(
    const std::vector<std::vector<std::uint64_t>>& logs);

/// Per-site input for the extended check: the site's full commit log, its
/// end-of-run life-cycle state, and the committed count it reported
/// (experiment_result::sites) to cross-check against the log itself.
struct site_log_input {
  enum class kind : std::uint8_t {
    operational,  // ran the whole time: full prefix rules apply
    crashed,      // crash-stopped or mid-recovery: may lag arbitrarily
    rejoined,     // recovered: must have converged (bounded lag only)
  };
  std::vector<std::uint64_t> log;
  kind state = kind::operational;
  std::uint64_t reported_committed = 0;
};

/// Extended §5.3 check over every site, crashed included: live
/// (operational and rejoined) sites must agree position-wise — their logs
/// define the consensus order; each site's reported committed count must
/// equal its log length; a crashed-never-rejoined site may lag
/// arbitrarily, a rejoined site by at most `rejoin_max_lag` (the
/// in-flight window at the instant the run stopped). A crashed site's log
/// must match the consensus order up to its first divergence; anything
/// after that point is an orphan suffix — commits delivered non-uniformly
/// that the surviving majority's view change discarded — counted in
/// safety_report::orphaned rather than failed (off-line, the divergence
/// point cannot be validated against the view cut; the online monitors
/// do that exactly). The first offending site lands in
/// safety_report::first_mismatch_site.
safety_report check_commit_logs(const std::vector<site_log_input>& sites,
                                std::uint64_t rejoin_max_lag = 50);

}  // namespace dbsm::core

#endif  // DBSM_CORE_SAFETY_HPP
