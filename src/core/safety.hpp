// Off-line safety check (§5.3): "we ensure that all operational sites must
// commit exactly the same sequence of transactions by comparing logs
// off-line after the simulation has finished."
#ifndef DBSM_CORE_SAFETY_HPP
#define DBSM_CORE_SAFETY_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace dbsm::core {

struct safety_report {
  bool ok = true;
  /// Length of the longest common prefix across all logs.
  std::size_t common_prefix = 0;
  std::string detail;  // first divergence, when !ok
};

/// Verifies that every log is a prefix of the longest one (sites may lag
/// by in-flight transactions at the instant the run stops, but may never
/// disagree on the order or content of what they committed).
safety_report check_commit_logs(
    const std::vector<std::vector<std::uint64_t>>& logs);

}  // namespace dbsm::core

#endif  // DBSM_CORE_SAFETY_HPP
