#include "core/experiment.hpp"

#include <memory>

#include "tpcc/tpcc_workload.hpp"
#include "util/check.hpp"
#include "workload/client.hpp"

namespace dbsm::core {

experiment_result run_experiment(const experiment_config& cfg) {
  DBSM_CHECK(cfg.clients >= 1);

  // The only workload-specific line in the harness: a null factory means
  // "the paper's TPC-C workload from cfg.profile" (config-compatible with
  // the pre-seam API). Everything below is workload-agnostic.
  std::unique_ptr<workload> wl =
      cfg.workload ? cfg.workload() : tpcc::make_workload(cfg.profile);
  DBSM_CHECK(wl != nullptr);

  const unsigned total_sites =
      cfg.sites + (cfg.dedicated_sequencer ? 1 : 0);
  cluster::config ccfg;
  ccfg.sites = total_sites;
  ccfg.cpus_per_site = cfg.cpus_per_site;
  ccfg.replica_cfg = cfg.replica_cfg;
  ccfg.replica_cfg.placement =
      place::placement::make(cfg.placement, total_sites);
  // Placement-aligned certification sharding: when the data placement is
  // partial and certification is sharded, derive the shard of every id
  // from its granule's primary replica, so index partitions are congruent
  // with the storage partitioning. Decision-invariant (the map only
  // re-partitions the index); an explicitly configured map wins.
  if (!ccfg.replica_cfg.placement.is_full() &&
      ccfg.replica_cfg.cert.shards > 1 && !ccfg.replica_cfg.cert.shard_map) {
    const place::placement resolved = ccfg.replica_cfg.placement;
    ccfg.replica_cfg.cert.shard_map = [resolved](db::item_id id,
                                                 std::size_t shards) {
      return static_cast<std::size_t>(resolved.primary(id)) % shards;
    };
  }
  ccfg.gcs = cfg.gcs;
  ccfg.gcs.enable_recovery = ccfg.gcs.enable_recovery || cfg.enable_recovery;
  ccfg.costs = cfg.costs;
  ccfg.lan = cfg.lan;
  ccfg.use_wan = cfg.use_wan;
  ccfg.wan = cfg.wan;
  ccfg.measure_real_time = cfg.measure_real_time;
  ccfg.seed = cfg.seed;
  cluster c(ccfg);

  util::rng root(cfg.seed);

  // Shared workload state (e.g. one generator per site, shared by the
  // site's clients).
  wl->prepare(total_sites, cfg.clients, root);

  experiment_result result;
  result.stats = txn_stats(wl->classes());
  result.workload_name = wl->name();
  for (db::txn_class cls = 0;
       cls < static_cast<db::txn_class>(wl->classes()); ++cls) {
    result.class_names.emplace_back(wl->class_name(cls));
    result.class_is_update.push_back(wl->is_update_class(cls));
  }
  std::uint64_t responses = 0;
  struct site_counters {
    std::uint64_t commits = 0;
    std::uint64_t responses = 0;
  };
  std::vector<site_counters> by_site(total_sites);

  std::vector<std::unique_ptr<client>> clients;
  std::vector<std::vector<client*>> site_clients(total_sites);
  const double think_mean = wl->mean_think_seconds();
  util::rng stagger = root.fork("stagger");

  const unsigned first_client_site = cfg.dedicated_sequencer ? 1 : 0;
  for (unsigned i = 0; i < cfg.clients; ++i) {
    const unsigned site = first_client_site + i % cfg.sites;
    // Route through the cluster at submit time: a site's replica object is
    // rebuilt when it restarts, so no reference may be captured here.
    auto submit = [&c, site](db::txn_request req,
                             std::function<void(db::txn_outcome)> done) {
      c.site(site).submit(std::move(req), std::move(done));
    };
    auto report = [&result, &responses, &by_site, site, &c,
                   &cfg](const client::result& r) {
      result.stats.record(r.cls, r.outcome, r.submitted, r.finished);
      ++responses;
      ++by_site[site].responses;
      if (r.outcome == db::txn_outcome::committed) ++by_site[site].commits;
      if (cfg.target_responses != 0 && responses >= cfg.target_responses)
        c.sim().stop();
    };
    client_slot slot;
    slot.site = site;
    slot.index = i;
    slot.total_clients = cfg.clients;
    clients.push_back(std::make_unique<client>(
        c.sim(),
        wl->make_source(slot, root.fork("source" + std::to_string(i))),
        submit, report, root.fork("client" + std::to_string(i))));
    site_clients[site].push_back(clients.back().get());
  }

  // Install the fault scenario against this cluster's injection points:
  // whole-run faults arm now (before the protocol stacks start), timed
  // windows go onto the simulator timeline. Crashing a site also stops
  // its clients.
  fault::injection_points pts;
  pts.net = &c.network();
  for (unsigned i = 0; i < total_sites; ++i) pts.envs.push_back(&c.env(i));
  pts.crash = [&c, &site_clients](unsigned site) {
    c.crash_site(site);
    for (client* cl : site_clients[site]) cl->stop();
  };
  if (ccfg.gcs.enable_recovery) {
    // The recover hook restarts the site's stack; its clients stay
    // stopped until the rejoin completes, then resume issuing (their
    // commits land in the same stats as everyone else's).
    pts.recover = [&c, &site_clients](unsigned site) {
      for (client* cl : site_clients[site]) cl->stop();
      c.recover_site(site, [&site_clients](unsigned s) {
        for (client* cl : site_clients[s]) cl->resume();
      });
    };
  }
  cfg.faults.install(c.sim(), std::move(pts));

  // Online invariant monitors: a passive observer of the protocol event
  // stream (no simulator work, no randomness — the run is bit-identical
  // with monitors on or off). A violation stops the simulation so the run
  // ends at the offending event.
  std::unique_ptr<check::checker> checker;
  if (cfg.checks.enabled) {
    checker = check::checker::standard(cfg.checks, total_sites,
                                       ccfg.replica_cfg.cert,
                                       ccfg.replica_cfg.placement);
    checker->set_halt([&c] { c.sim().stop(); });
    cluster::observer obs;
    check::checker* ck = checker.get();
    obs.on_decision = [ck, &c](unsigned site, const cert::txn_payload& txn,
                               std::uint64_t seq, bool commit,
                               std::uint64_t len) {
      ck->decision({site, seq, &txn, commit, len, c.sim().now()});
    };
    obs.on_apply = [ck, &c](unsigned site, const cert::txn_payload& txn,
                            std::uint64_t seq,
                            const std::vector<db::item_id>& slice,
                            std::uint64_t durable_bytes) {
      ck->applied({site, seq, &txn, &slice, durable_bytes, c.sim().now()});
    };
    obs.on_view = [ck, &c](unsigned site, const gcs::view& v,
                           std::uint64_t delivered) {
      ck->view_installed({site, v, delivered, c.sim().now()});
    };
    obs.on_excluded = [ck, &c](unsigned site) {
      ck->excluded({site, c.sim().now()});
    };
    obs.on_log_reset = [ck, &c](unsigned site,
                                const std::vector<std::uint64_t>& log) {
      ck->log_reset({site, &log, c.sim().now()});
    };
    obs.on_recovery_start = [ck, &c](unsigned site) {
      ck->recovery_started({site, c.sim().now()});
    };
    obs.on_rejoined = [ck, &c](unsigned site, std::uint64_t len) {
      ck->rejoined({site, len, c.sim().now()});
    };
    obs.on_read = [ck, &c](unsigned site, bool fast, std::uint64_t epoch,
                           std::uint64_t log_len,
                           std::uint64_t last_commit_id) {
      ck->read({site, fast, epoch, log_len, last_commit_id, c.sim().now()});
    };
    c.set_observer(std::move(obs));
  }

  c.start();
  // Stagger starts uniformly across one mean think time: steady state
  // without a thundering herd.
  for (auto& cl : clients) {
    cl->start(from_seconds(stagger.uniform() * think_mean));
  }

  c.sim().run_until(cfg.max_sim_time);

  // --- gather ---
  result.duration = c.sim().now();
  result.responses = responses;

  const auto operational = c.operational_sites();
  DBSM_CHECK(!operational.empty());
  for (unsigned i : operational) {
    result.cpu_utilization += c.cpu(i).utilization();
    result.protocol_cpu_utilization += c.cpu(i).real_utilization();
    result.disk_utilization += c.site(i).server().disk().utilization();
    for (double v : c.site(i).cert_latency_ms().sorted())
      result.cert_latency_ms.add(v);
    result.commit_logs.push_back(c.site(i).commit_log());
    const auto& rs = c.group(i).rmcast_stats();
    result.naks_sent += rs.naks_sent;
    result.retransmissions += rs.retransmissions;
    result.blocked_episodes += rs.blocked_episodes;
    result.blocked_ms += to_millis(rs.blocked_time);
    result.view_changes = std::max(result.view_changes,
                                   c.group(i).view_changes());
  }
  std::vector<site_log_input> all_site_logs;
  for (unsigned i = 0; i < total_sites; ++i) {
    site_report sr;
    sr.state = c.status(i);
    sr.committed_log = c.site(i).commit_log().size();
    sr.client_commits = by_site[i].commits;
    sr.client_responses = by_site[i].responses;
    sr.disk_utilization = c.site(i).server().disk().utilization();
    sr.applied_update_bytes = c.site(i).applied_update_bytes();
    sr.store_bytes = c.site(i).store().durable_bytes();
    sr.owned_granules = c.site(i).store().owned_granules();
    sr.tracked_granules = c.site(i).store().tracked_granules();
    sr.delivered_payload_bytes = c.site(i).delivered_payload_bytes();
    sr.interested_payload_bytes = c.site(i).interested_payload_bytes();
    sr.join_snapshot_bytes = c.group(i).join_snapshot_bytes();
    sr.join_chunk_bytes = c.group(i).join_chunk_bytes();
    sr.fast_path_reads = c.site(i).fast_path_reads();
    sr.fallback_reads = c.site(i).fallback_reads();
    sr.ro_broadcasts = c.site(i).ro_broadcasts();
    sr.lease_revocations = c.site(i).lease_revocations();
    sr.delivery_runs = c.site(i).delivery_runs();
    sr.run_payloads = c.site(i).run_payloads();
    sr.pipeline_high_water = c.site(i).pipeline_high_water();
    sr.protocol_cpu = c.cpu(i).real_utilization();
    sr.token_ctl_sent = c.group(i).token_ctl_sent();
    result.sites.push_back(sr);

    site_log_input in;
    in.log = c.site(i).commit_log();
    in.state = sr.state == cluster::site_status::operational
                   ? site_log_input::kind::operational
               : sr.state == cluster::site_status::rejoined
                   ? site_log_input::kind::rejoined
                   : site_log_input::kind::crashed;
    in.reported_committed = sr.committed_log;
    all_site_logs.push_back(std::move(in));
  }
  const double n = static_cast<double>(operational.size());
  result.cpu_utilization /= n;
  result.protocol_cpu_utilization /= n;
  result.disk_utilization /= n;
  if (result.duration > 0) {
    result.network_kbps =
        static_cast<double>(c.network().total_wire_bytes()) / 1024.0 /
        to_seconds(result.duration);
  }
  result.safety = check_commit_logs(all_site_logs, cfg.checks.rejoin_max_lag);
  if (checker) {
    checker->run_end(c.sim().now());
    result.checks = checker->get_report();
  }
  return result;
}

}  // namespace dbsm::core
