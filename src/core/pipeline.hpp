// Certify→install hand-off of the batched delivery path.
//
// With gcs batch atomic broadcast on (group_config::batch_max > 1), the
// replica splits one delivery run into two stages: stage 1 probes every
// transaction of batch n against the sharded certifier back-to-back
// (decisions, commit log, monitors — all the order-dependent state), and
// stage 2 installs the certified updates into db/ from a deferred job, so
// batch n+1's probes run while batch n's installs drain. The hand-off is
// this bounded FIFO: stage 1 pushes (payload, verdict) pairs in delivery
// order, stage 2 drains them in the same order, and a full queue forces a
// synchronous drain (deterministic back-pressure — no work is dropped,
// reordered, or raced). Commit decisions and the committed sequence are
// made entirely in stage 1, so they are bit-identical to the serial
// path's for the same payload stream, whatever the queue does; the
// tests/batching_test.cpp differential suite holds the two paths to that.
#ifndef DBSM_CORE_PIPELINE_HPP
#define DBSM_CORE_PIPELINE_HPP

#include <cstdint>
#include <deque>
#include <functional>

#include "cert/txn_codec.hpp"

namespace dbsm::core {

class commit_pipeline {
 public:
  /// One certified delivery awaiting install: the unmarshaled payload and
  /// its certification verdict. Read-only broadcasts queue too (their
  /// origin-side finish must keep its delivery-order slot relative to the
  /// installs around it).
  struct item {
    cert::txn_payload txn;
    bool commit = false;
    bool read_only = false;
  };

  /// `capacity` bounds the queued items; 0 means unbounded (never
  /// back-pressures).
  explicit commit_pipeline(std::size_t capacity) : capacity_(capacity) {}

  /// At capacity? The caller must drain() before the next push.
  bool full() const { return capacity_ != 0 && q_.size() >= capacity_; }

  /// False when the queue was at capacity — the caller must drain() first
  /// (the item is NOT queued; probe full() before moving one in).
  bool push(item it) {
    if (full()) return false;
    q_.push_back(std::move(it));
    ++enqueued_;
    if (q_.size() > high_water_) high_water_ = q_.size();
    return true;
  }

  /// Drains every queued item through `sink` in FIFO (delivery) order;
  /// returns how many were drained. Items pushed by the sink itself are
  /// drained too (the loop re-reads the queue).
  std::size_t drain(const std::function<void(item&)>& sink) {
    std::size_t n = 0;
    while (!q_.empty()) {
      item it = std::move(q_.front());
      q_.pop_front();
      ++n;
      ++drained_;
      sink(it);
    }
    return n;
  }

  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  std::size_t capacity() const { return capacity_; }

  // --- probes (batching_test + bench assertions) ---
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t drained() const { return drained_; }
  std::size_t high_water() const { return high_water_; }

 private:
  std::deque<item> q_;
  std::size_t capacity_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t drained_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace dbsm::core

#endif  // DBSM_CORE_PIPELINE_HPP
