#include "core/replica.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dbsm::core {

namespace {
/// Local transaction ids carry the origin site in the top bits, so they
/// are globally unique without coordination.
std::uint64_t make_txn_id(node_id site, std::uint64_t counter) {
  return (static_cast<std::uint64_t>(site) << 40) | counter;
}

std::uint64_t txn_counter(std::uint64_t id) {
  return id & ((std::uint64_t{1} << 40) - 1);
}
}  // namespace

replica::replica(sim::simulator& sim, csrt::cpu_pool& cpu,
                 csrt::sim_env& env, gcs::group& group, config cfg,
                 util::rng gen, std::uint64_t first_local_txn)
    : sim_(sim), cpu_(cpu), env_(env), group_(group), cfg_(cfg),
      server_(sim, cpu, cfg.server, gen.fork("server")),
      cert_(cfg.cert), rng_(gen.fork("replica")),
      next_local_txn_(first_local_txn), incarnation_floor_(first_local_txn),
      store_(cfg.placement, env.self()), pipeline_(cfg.pipeline_depth) {}

util::shared_bytes replica::snapshot(node_id for_site) const {
  util::buffer_writer w;
  cert_.snapshot(w);
  w.put_u64(commit_log_.size());
  for (const std::uint64_t id : commit_log_) w.put_u64(id);
  // Only partial placements extend the wire format with the placement
  // stamp and the joiner's granule slice: the full-placement blob stays
  // byte-identical to the pre-placement protocol (both sides agree on
  // the format because they agree on the placement, checked below).
  if (!cfg_.placement.is_full()) {
    cfg_.placement.snapshot(w);
    store_.snapshot_for(w, for_site);
  }
  return w.take();
}

void replica::install_snapshot(util::shared_bytes blob) {
  util::buffer_reader r(std::move(blob));
  cert_.restore(r);
  commit_log_.clear();
  const std::uint64_t n = r.get_u64();
  commit_log_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) commit_log_.push_back(r.get_u64());
  if (!cfg_.placement.is_full()) {
    const place::placement donor_placement = place::placement::restore(r);
    DBSM_CHECK_MSG(donor_placement == cfg_.placement,
                   "state-transfer placement mismatch: donor "
                       << donor_placement.describe() << " vs joiner "
                       << cfg_.placement.describe());
    store_.restore(r);
  }
  // The transferred log replaces the recorded snapshot history wholesale;
  // rebase at epoch 0 so any watermark resolves to at least this state.
  snapshots_.reset({0, cert_.position(), commit_log_.size(),
                    commit_log_.empty() ? 0 : commit_log_.back()});
  if (on_log_reset_) on_log_reset_(commit_log_);
}

void replica::grant_lease(std::uint32_t view_id) {
  if (cfg_.read.path != read::mode::fast) return;
  lease_.grant(view_id);
}

void replica::revoke_lease(read::revoke_reason r) {
  if (cfg_.read.path != read::mode::fast) return;
  if (r == read::revoke_reason::suspicion && !lease_.suspended())
    suspend_watermark_ = group_.uniform_delivered();
  lease_.revoke(r);
}

bool replica::lease_usable() {
  if (lease_.valid()) return true;
  if (lease_.suspended() &&
      group_.uniform_delivered() > suspend_watermark_)
    lease_.on_uniform_advance();
  return lease_.valid();
}

bool replica::stores_read_set(
    const std::vector<db::item_id>& read_set) const {
  if (cfg_.placement.is_full()) return true;
  for (const db::item_id item : read_set)
    if (!cfg_.placement.stores(env_.self(), item)) return false;
  return true;
}

void replica::start() {
  if (group_.batching()) {
    group_.set_deliver_batch([this](std::vector<gcs::delivery>&& run) {
      on_deliver_batch(std::move(run));
    });
    return;
  }
  group_.set_deliver([this](node_id sender, std::uint64_t seq,
                            util::shared_bytes payload) {
    on_deliver(sender, seq, std::move(payload));
  });
}

sim_duration replica::codec_cost(std::size_t bytes) const {
  return cfg_.codec_cost_fixed + codec_cost_bytes(bytes);
}

sim_duration replica::codec_cost_bytes(std::size_t bytes) const {
  return static_cast<sim_duration>(cfg_.codec_cost_per_byte_ns *
                                   static_cast<double>(bytes));
}

void replica::submit(db::txn_request req,
                     std::function<void(db::txn_outcome)> done) {
  if (halted_) return;  // crashed replicas leave their clients blocked
  req.id = make_txn_id(env_.self(), ++next_local_txn_);
  req.origin = env_.self();

  pending_txn p;
  p.begin_pos = cert_.position();  // snapshot at transaction begin
  pending_.emplace(req.id, p);

  const std::uint64_t id = req.id;
  server_.submit(
      std::move(req),
      [this](const db::txn_request& executed) { on_executed(executed); },
      [this, done = std::move(done), id](std::uint64_t,
                                         db::txn_outcome outcome) {
        pending_.erase(id);
        if (!halted_ && done) done(outcome);
      });
}

void replica::on_executed(const db::txn_request& req) {
  if (halted_) return;  // crashed mid-execution: no termination protocol
  auto it = pending_.find(req.id);
  DBSM_CHECK(it != pending_.end());
  const std::uint64_t begin_pos = it->second.begin_pos;
  const std::uint64_t id = req.id;

  if (req.read_only()) {
    if (cfg_.read.path == read::mode::off) {
      // Read-only transactions terminate locally (§5.1: replication leaves
      // their latency unaffected): certify against the local last-writer
      // index — O(|read_set|) probes, charged via last_cost().
      env_.post([this, id, begin_pos, read_set = req.read_set] {
        env_.charge(cfg_.codec_cost_fixed);
        const bool ok = cert_.certify_read_only(begin_pos, read_set);
        env_.charge(cert_.last_cost());
        env_.call_out([this, id, ok] {
          if (!server_.active(id)) return;
          if (ok) {
            server_.finish_commit(id);
          } else {
            server_.finish_abort(id);
          }
        });
      });
      return;
    }
    if (cfg_.read.path == read::mode::fast && lease_usable() &&
        stores_read_set(req.read_set)) {
      // Fast path: serve the read AT the agreed (uniform) epoch — the
      // newest committed-prefix version every current member is
      // guaranteed to hold, which can never be rolled back within the
      // view. No certification, no broadcast; the read is serializable at
      // that snapshot point (1SR requires consistency, not freshness).
      env_.post([this, id] {
        env_.charge(cfg_.read.fast_read_cost);
        const read::snapshot snap =
            snapshots_.at(group_.uniform_delivered());
        ++fast_path_reads_;
        if (on_read_)
          on_read_(true, snap.epoch, snap.log_len, snap.last_commit_id);
        env_.call_out([this, id] {
          if (!server_.active(id)) return;
          server_.finish_commit(id);
        });
      });
      return;
    }
    // Certified baseline (read::mode::certified), or a fast-path fallback
    // on a stale lease / placement-interest miss: broadcast the
    // empty-write-set payload through the total order and certify at its
    // delivery point on the origin (all other sites skip it entirely).
    if (cfg_.read.path == read::mode::fast) {
      ++fallback_reads_;
      if (on_read_) on_read_(false, 0, 0, 0);
    }
    it->second.in_termination = true;
    const cert::txn_payload ro_payload = cert::make_payload(req, begin_pos);
    env_.post([this, id, payload = std::move(ro_payload)] {
      util::shared_bytes wire = cert::encode_txn(payload);
      env_.charge(codec_cost(wire->size()));
      ++ro_broadcasts_;
      auto pit = pending_.find(id);
      if (pit != pending_.end()) pit->second.multicast_at = env_.now();
      group_.broadcast(std::move(wire));
    });
    return;
  }

  // Update transaction: marshal the execution outcome and atomically
  // multicast it to all replicas (distributed termination, §3.3).
  it->second.in_termination = true;
  const cert::txn_payload payload = cert::make_payload(req, begin_pos);
  env_.post([this, id, payload = std::move(payload)] {
    util::shared_bytes wire = cert::encode_txn(payload);
    env_.charge(codec_cost(wire->size()));
    auto pit = pending_.find(id);
    if (pit != pending_.end()) pit->second.multicast_at = env_.now();
    group_.broadcast(std::move(wire));
  });
}

std::pair<std::size_t, std::size_t> replica::owned_tuple_split(
    const std::vector<db::item_id>& write_set) const {
  std::size_t owned = 0, total = 0;
  for (const db::item_id it : write_set) {
    if (db::is_granule(it)) continue;
    ++total;
    if (cfg_.placement.stores(env_.self(), it)) ++owned;
  }
  return {owned, total};
}

void replica::on_deliver(node_id, std::uint64_t global_seq,
                         util::shared_bytes payload) {
  if (halted_) return;
  // Runs as real code in the delivery job: unmarshal and certify against
  // the sharded last-writer index (O(|read_set| + |write_set|) probes,
  // forked across shards when configured; decisions identical to the
  // reference merge scan at every replica and at every shard count).
  env_.charge(codec_cost(payload->size()));
  const cert::txn_payload txn = cert::decode_txn(payload);

  if (txn.write_set.empty()) {
    // Read-only broadcast (read::mode::certified, or a fast-path
    // fallback). Every site pays delivery + decode, but the decision is
    // local to the origin: no update-order position, no commit-log entry,
    // no apply — certification state is untouched by an empty write set.
    delivered_payload_bytes_ += payload->size();
    if (txn.origin == env_.self() &&
        txn_counter(txn.id) > incarnation_floor_) {
      const bool ok = cert_.certify_read_only(txn.begin_pos, txn.read_set);
      env_.charge(cert_.last_cost());
      env_.call_out([this, id = txn.id, ok] {
        finish_certified_read(id, ok);
      });
    }
    return;
  }

  const bool commit =
      cert_.certify_update(txn.begin_pos, txn.read_set, txn.write_set);
  env_.charge(cert_.last_cost());
  const std::uint64_t pos = cert_.position();
  if (commit) commit_log_.push_back(txn.id);
  if (on_decision_) {
    on_decision_(txn, pos, commit, commit_log_.size());
  }
  // Version the committed prefix for the fast read path: the snapshot at
  // this delivery's global sequence (pure bookkeeping, gated so the other
  // modes carry no memory cost).
  if (cfg_.read.path == read::mode::fast)
    snapshots_.note_delivery(global_seq, pos, commit_log_.size(),
                             commit_log_.empty() ? 0 : commit_log_.back());

  // Placement bookkeeping (pure — no modeled time, no randomness, so the
  // full-placement default stays simulation-identical): account the
  // delivered payload against what a placement-aware multicast would have
  // shipped here, and fold committed writes into the granule directory.
  delivered_payload_bytes_ += payload->size();
  if (cfg_.placement.interested(env_.self(), txn.write_set))
    interested_payload_bytes_ += payload->size();
  if (commit) {
    store_.apply(txn.write_set, txn.update_bytes);
    if (on_apply_) {
      cfg_.placement.slice(txn.write_set, env_.self(), slice_scratch_);
      on_apply_(txn, pos, slice_scratch_, store_.durable_bytes());
    }
  }

  env_.call_out([this, txn = std::move(txn), commit] {
    install_decision(txn, commit);
  });
}

void replica::finish_certified_read(std::uint64_t id, bool ok) {
  if (halted_) return;
  auto it = pending_.find(id);
  if (it != pending_.end() && it->second.multicast_at != 0)
    cert_latency_.add(to_millis(sim_.now() - it->second.multicast_at));
  if (!server_.active(id)) return;
  if (ok) {
    server_.finish_commit(id);
  } else {
    server_.finish_abort(id);
  }
}

void replica::install_decision(const cert::txn_payload& txn, bool commit) {
  if (halted_) return;
  {
    const std::size_t sector = cfg_.server.storage.sector_bytes;
    // Transactions of a previous incarnation of this site (issued before a
    // crash/restart, delivered or replayed after) have no pending entry to
    // finish: they apply like remote work below.
    if (txn.origin == env_.self() &&
        txn_counter(txn.id) > incarnation_floor_) {
      auto it = pending_.find(txn.id);
      if (it != pending_.end() && it->second.multicast_at != 0) {
        cert_latency_.add(to_millis(sim_.now() - it->second.multicast_at));
      }
      if (server_.active(txn.id)) {
        if (commit) {
          if (cfg_.placement.is_full()) {
            // Full replication: byte-exact historical path.
            db::txn_request probe;
            probe.write_set = txn.write_set;
            probe.disk_sectors = txn.disk_sectors;
            applied_update_bytes_ += db::server::disk_write_bytes(probe,
                                                                  sector);
            server_.finish_commit(txn.id);
          } else {
            // Partial: the origin makes durable only its placement slice
            // (pro-rated when the workload packed explicit sectors).
            const auto [owned, total] = owned_tuple_split(txn.write_set);
            db::txn_request probe;
            probe.write_set = txn.write_set;
            probe.disk_sectors = txn.disk_sectors;
            const std::size_t full_bytes =
                db::server::disk_write_bytes(probe, sector);
            const std::size_t bytes =
                total != 0 ? full_bytes * owned / total : full_bytes;
            applied_update_bytes_ += bytes;
            server_.finish_commit_bytes(txn.id, bytes);
          }
        } else {
          server_.finish_abort(txn.id);
        }
      } else {
        // The transaction was preempted by a certified remote conflict;
        // certification must have found that same conflict.
        DBSM_CHECK_MSG(!commit,
                       "preempted transaction passed certification");
      }
      return;
    }
    if (commit) {
      // Remotely initiated: acquire locks (preempting local holders),
      // write back, release (§3.1). Under a partial placement only the
      // locally stored slice is applied; a site outside every written
      // granule's replica set skips the transaction entirely — that is
      // the disk/CPU saving partial replication buys (§6).
      db::txn_request req;
      req.id = txn.id;
      req.cls = txn.cls;
      req.origin = txn.origin;
      req.read_set = txn.read_set;
      if (cfg_.placement.is_full()) {
        req.write_set = txn.write_set;
        req.update_bytes = txn.update_bytes;
        req.disk_sectors = txn.disk_sectors;
      } else {
        cfg_.placement.slice(txn.write_set, env_.self(), slice_scratch_);
        if (slice_scratch_.empty()) return;  // not in any replica set
        const auto [owned, total] = owned_tuple_split(txn.write_set);
        if (owned == total) {
          // Whole write set stored here: apply exactly as full would.
          req.write_set = txn.write_set;
          req.update_bytes = txn.update_bytes;
          req.disk_sectors = txn.disk_sectors;
        } else {
          req.write_set = slice_scratch_;
          req.update_bytes = static_cast<std::uint32_t>(
              total != 0
                  ? static_cast<std::uint64_t>(txn.update_bytes) * owned /
                        total
                  : txn.update_bytes);
          req.disk_sectors = static_cast<std::uint16_t>(
              total != 0 ? static_cast<std::size_t>(txn.disk_sectors) *
                               owned / total
                         : txn.disk_sectors);
        }
      }
      applied_update_bytes_ += db::server::disk_write_bytes(req, sector);
      server_.apply_remote(req, {});
    }
  }
}

void replica::drain_installs() {
  if (halted_) return;
  pipeline_.drain([this](commit_pipeline::item& it) {
    if (it.read_only) {
      finish_certified_read(it.txn.id, it.commit);
    } else {
      install_decision(it.txn, it.commit);
    }
  });
}

void replica::on_deliver_batch(std::vector<gcs::delivery>&& run) {
  if (halted_ || run.empty()) return;
  // Stage 1 — certify the whole run back-to-back against the sharded
  // index. Per-payload state transitions (decisions, commit log,
  // observers, placement accounting) are exactly the serial path's, in
  // the same delivery order — only the charged CPU is amortized: the
  // fixed unmarshal cost once per run, and every update certification
  // after the first pays cert_config::cost_batch_fixed instead of
  // cost_fixed. Certified work is handed to pipeline_ instead of getting
  // one deferred job each.
  env_.charge(cfg_.codec_cost_fixed);
  ++delivery_runs_;
  run_payloads_ += run.size();
  bool first_cert = true;
  for (gcs::delivery& d : run) {
    env_.charge(codec_cost_bytes(d.payload->size()));
    cert::txn_payload txn = cert::decode_txn(d.payload);

    if (txn.write_set.empty()) {
      // Read-only broadcast: decision local to the origin (see
      // on_deliver). Its finish keeps its delivery-order slot by queuing
      // through the pipeline like an install.
      delivered_payload_bytes_ += d.payload->size();
      if (txn.origin == env_.self() &&
          txn_counter(txn.id) > incarnation_floor_) {
        const bool ok =
            cert_.certify_read_only(txn.begin_pos, txn.read_set);
        env_.charge(cert_.last_cost());
        if (pipeline_.full()) drain_installs();
        pipeline_.push({std::move(txn), ok, /*read_only=*/true});
      }
      continue;
    }

    const bool commit = cert_.certify_update(
        txn.begin_pos, txn.read_set, txn.write_set,
        /*amortized_fixed=*/!first_cert);
    first_cert = false;
    env_.charge(cert_.last_cost());
    const std::uint64_t pos = cert_.position();
    if (commit) commit_log_.push_back(txn.id);
    if (on_decision_) on_decision_(txn, pos, commit, commit_log_.size());
    if (cfg_.read.path == read::mode::fast)
      snapshots_.note_delivery(d.global_seq, pos, commit_log_.size(),
                               commit_log_.empty() ? 0 : commit_log_.back());
    delivered_payload_bytes_ += d.payload->size();
    if (cfg_.placement.interested(env_.self(), txn.write_set))
      interested_payload_bytes_ += d.payload->size();
    if (commit) {
      store_.apply(txn.write_set, txn.update_bytes);
      if (on_apply_) {
        cfg_.placement.slice(txn.write_set, env_.self(), slice_scratch_);
        on_apply_(txn, pos, slice_scratch_, store_.durable_bytes());
      }
    }
    // Bounded hand-off: a full queue drains synchronously first
    // (deterministic back-pressure), then the push succeeds.
    if (pipeline_.full()) drain_installs();
    pipeline_.push({std::move(txn), commit, /*read_only=*/false});
  }
  // Stage 2 — the installs of this run drain in a deferred job, so the
  // next run's probes (another stage-1 frame) overlap batch n's installs.
  env_.call_out([this] { drain_installs(); });
}

}  // namespace dbsm::core
