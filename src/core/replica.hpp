// One DBSM replica: database server + certifier + group communication,
// implementing the distributed termination protocol (§1, §3.3).
//
// Local path: execute under local concurrency control → marshal outcome
// (read/write sets, written values, snapshot) → atomic multicast → on
// ordered delivery, certify deterministically → commit (write back,
// release, reply) or abort. Remote path: certified transactions apply
// with preemption. Read-only transactions certify locally, without
// multicast, so their latency is unaffected by replication (§5.1).
// Certification runs on the sharded last-writer index (cert/), so the
// per-delivery work is O(|read_set| + |write_set|) regardless of the
// retained history window, and with cert_config::{shards,
// certify_threads} > 1 the probes fork across a persistent worker pool
// (decisions stay bit-identical at any shard/thread count; the default
// 1/1 runs inline exactly like cert::certifier).
#ifndef DBSM_CORE_REPLICA_HPP
#define DBSM_CORE_REPLICA_HPP

#include <unordered_map>
#include <utility>

#include "cert/sharded_certifier.hpp"
#include "cert/txn_codec.hpp"
#include "core/pipeline.hpp"
#include "csrt/sim_env.hpp"
#include "db/server.hpp"
#include "gcs/group.hpp"
#include "place/granule_store.hpp"
#include "place/placement.hpp"
#include "read/lease.hpp"
#include "read/snapshot_manager.hpp"
#include "util/stats.hpp"

namespace dbsm::core {

class replica {
 public:
  struct config {
    db::server_config server;
    cert::cert_config cert;
    /// Modeled CPU of marshaling/unmarshaling termination messages.
    sim_duration codec_cost_fixed = microseconds(15);
    double codec_cost_per_byte_ns = 2.0;

    /// Partial replication (§6 / [24], the paper's proposed mitigation of
    /// the read-one/write-all disk ceiling): each granule lives at an
    /// explicit replica set, write sets are split per the placement, and a
    /// site stores/applies/makes durable only its slice. Certification
    /// stays global (the total order is still delivered everywhere and
    /// every site logs the same committed sequence); partiality is a
    /// property of storage and application, not of the decision. The
    /// default (full) placement keeps every path bit-identical to full
    /// replication.
    place::placement placement;

    /// Read-only termination path (read/): off (historical local
    /// certification), certified (RO txns broadcast through total order —
    /// the all-certified baseline), or fast (lease-guarded snapshot reads
    /// at the gcs uniform watermark, zero broadcasts). Default off keeps
    /// every path bit-identical to the historical behavior.
    read::read_config read;

    /// Bound (in transactions) of the certify→install hand-off queue of
    /// the batched delivery path (gcs batch_max > 1): when full, the
    /// install stage drains synchronously before more certifications
    /// queue behind it — deterministic back-pressure, never dropped or
    /// reordered work. Irrelevant on the serial path.
    std::size_t pipeline_depth = 512;
  };

  /// `first_local_txn` seeds the local transaction counter: a replica
  /// rebuilt after a crash continues its predecessor's id space, so
  /// pre-crash transactions still in flight can never alias new ones.
  replica(sim::simulator& sim, csrt::cpu_pool& cpu, csrt::sim_env& env,
          gcs::group& group, config cfg, util::rng gen,
          std::uint64_t first_local_txn = 0);

  replica(const replica&) = delete;
  replica& operator=(const replica&) = delete;

  /// Wires the group delivery callback; call once before the run.
  void start();

  /// Marshals the replica state for a membership-recovery transfer: the
  /// certification state (position, history, index — in the canonical
  /// shard-count-agnostic format of cert/index_shard.hpp, so donor and
  /// joiner may run different cert_config::shards), the committed
  /// sequence, the placement (donor and joiner must agree — a mismatch
  /// would silently mis-route every slice), and the granule directory
  /// slice `for_site` replicates, with data-sized padding. Under partial
  /// replication the blob therefore shrinks with the degree. Called by
  /// the donor between deliveries.
  util::shared_bytes snapshot(node_id for_site) const;

  /// Installs a transferred snapshot on a freshly rebuilt replica; the
  /// joiner then replays forwarded deliveries through on_deliver and
  /// converges on the donor's exact committed sequence.
  void install_snapshot(util::shared_bytes blob);

  /// Local transaction counter (passed to the successor on restart).
  std::uint64_t next_local_txn() const { return next_local_txn_; }

  /// Client entry point. `done` fires exactly once with the outcome
  /// (never, if this replica crashed — its clients block, §5.3).
  void submit(db::txn_request req,
              std::function<void(db::txn_outcome)> done);

  /// Crash: stop interacting (the cluster also isolates the transport).
  void halt() { halted_ = true; }
  bool halted() const { return halted_; }

  db::server& server() { return server_; }
  const db::server& server() const { return server_; }
  const cert::sharded_certifier& certifier() const { return cert_; }

  /// Sequence of committed update transactions (identical at all
  /// operational sites — the off-line safety check input, §5.3).
  const std::vector<std::uint64_t>& commit_log() const { return commit_log_; }

  /// Certification latency at the origin site: multicast → decision
  /// applied (Fig 7b).
  const util::sample_set& cert_latency_ms() const { return cert_latency_; }

  /// Observation seam for the check layer: fired synchronously inside the
  /// delivery job after each certification decision is applied to the
  /// commit log, with (payload, update-order position, verdict, commit-log
  /// length). Observers must be passive — no simulator work, no mutation.
  using decision_observer =
      std::function<void(const cert::txn_payload&, std::uint64_t global_seq,
                         bool commit, std::uint64_t log_len)>;
  void set_decision_observer(decision_observer fn) {
    on_decision_ = std::move(fn);
  }

  /// Fired when install_snapshot replaces the commit log wholesale
  /// (recovery state transfer), with the transferred log.
  using log_reset_observer =
      std::function<void(const std::vector<std::uint64_t>&)>;
  void set_log_reset_observer(log_reset_observer fn) {
    on_log_reset_ = std::move(fn);
  }

  /// Fired synchronously inside the delivery job, right after the decision
  /// observer, for every COMMITTED update: (payload, update-order
  /// position, the write-set slice this site makes durable under its
  /// placement, cumulative durable bytes). The placement-consistency
  /// monitor pairs each commit decision with exactly this event. Observers
  /// must be passive.
  using apply_observer = std::function<void(
      const cert::txn_payload&, std::uint64_t global_seq,
      const std::vector<db::item_id>& durable_slice,
      std::uint64_t durable_bytes)>;
  void set_apply_observer(apply_observer fn) { on_apply_ = std::move(fn); }

  /// Fired for every read-only transaction terminated on the read path
  /// (read::mode::fast): fast == true for lease-guarded local snapshot
  /// reads, with the snapshot's (agreed epoch, committed log length, last
  /// committed txn id) — the read_snapshot monitor cross-checks this claim
  /// against the reference committed prefix. Observers must be passive.
  using read_observer = std::function<void(
      bool fast, std::uint64_t epoch, std::uint64_t log_len,
      std::uint64_t last_commit_id)>;
  void set_read_observer(read_observer fn) { on_read_ = std::move(fn); }

  /// Lease protocol entry points (wired by the cluster): a grant at every
  /// view install (and at cluster start), revocations on suspicion and
  /// exclusion. No-ops unless the fast read path is configured.
  void grant_lease(std::uint32_t view_id);
  void revoke_lease(read::revoke_reason r);

  // --- read-path probes ---
  std::uint64_t fast_path_reads() const { return fast_path_reads_; }
  std::uint64_t fallback_reads() const { return fallback_reads_; }
  std::uint64_t ro_broadcasts() const { return ro_broadcasts_; }
  std::uint64_t lease_revocations() const { return lease_.revocations(); }

  // --- batched-delivery probes (zero on the serial path) ---
  /// Contiguous delivery runs handed to the pipelined path.
  std::uint64_t delivery_runs() const { return delivery_runs_; }
  /// Payloads delivered inside those runs (run_payloads / delivery_runs
  /// == the mean run length the amortization actually saw).
  std::uint64_t run_payloads() const { return run_payloads_; }
  /// Peak certified-but-not-installed backlog in the hand-off queue.
  std::uint64_t pipeline_high_water() const {
    return pipeline_.high_water();
  }

  /// Placement bookkeeping: granule directory + durable accounting.
  const place::granule_store& store() const { return store_; }
  /// Total ordered user payload bytes delivered at this site.
  std::uint64_t delivered_payload_bytes() const {
    return delivered_payload_bytes_;
  }
  /// Payload bytes a placement-aware multicast would have had to ship
  /// here (== delivered when full; falls with the degree when partial).
  std::uint64_t interested_payload_bytes() const {
    return interested_payload_bytes_;
  }
  /// Disk bytes this site wrote applying committed updates (origin
  /// write-back + remote apply), placement-pro-rated when partial.
  std::uint64_t applied_update_bytes() const {
    return applied_update_bytes_;
  }

  node_id id() const { return env_.self(); }

 private:
  void on_executed(const db::txn_request& req);
  void on_deliver(node_id sender, std::uint64_t global_seq,
                  util::shared_bytes payload);
  /// Batched delivery (gcs batch mode): stage 1 certifies the whole run
  /// back-to-back with amortized fixed costs, stage 2 drains the installs
  /// from a deferred job through pipeline_.
  void on_deliver_batch(std::vector<gcs::delivery>&& run);
  /// Install stage of one certified update (the body of the serial
  /// path's deferred job): origin finish/abort with disk accounting, or
  /// remote apply with the placement slice.
  void install_decision(const cert::txn_payload& txn, bool commit);
  /// Completion of a certified read-only broadcast at its origin.
  void finish_certified_read(std::uint64_t id, bool ok);
  void drain_installs();
  sim_duration codec_cost(std::size_t bytes) const;
  /// Per-byte share of codec_cost (the batched path charges the fixed
  /// share once per run).
  sim_duration codec_cost_bytes(std::size_t bytes) const;
  /// Lease check for a fast read, with the lazy suspension re-arm: a
  /// suspicion-suspended lease recovers once the uniform watermark has
  /// advanced past its value at suspension time (a completed stability
  /// round proves full-membership connectivity).
  bool lease_usable();
  /// Whether this site replicates every granule the read set touches
  /// (always true under full placement).
  bool stores_read_set(const std::vector<db::item_id>& read_set) const;
  /// (owned non-granule tuples, total non-granule tuples) of a write set
  /// under this site's placement — the pro-rating basis for partial
  /// durability.
  std::pair<std::size_t, std::size_t> owned_tuple_split(
      const std::vector<db::item_id>& write_set) const;

  struct pending_txn {
    std::uint64_t begin_pos = 0;
    sim_time multicast_at = 0;
    bool in_termination = false;
  };

  sim::simulator& sim_;
  csrt::cpu_pool& cpu_;
  csrt::sim_env& env_;
  gcs::group& group_;
  config cfg_;
  db::server server_;
  cert::sharded_certifier cert_;
  util::rng rng_;

  std::uint64_t next_local_txn_ = 0;
  /// Counters at or below this belong to a previous incarnation of this
  /// site: their late deliveries apply like remote transactions instead
  /// of asserting against the (rebuilt, empty) pending table.
  std::uint64_t incarnation_floor_ = 0;
  std::unordered_map<std::uint64_t, pending_txn> pending_;
  std::vector<std::uint64_t> commit_log_;
  util::sample_set cert_latency_;
  decision_observer on_decision_;
  log_reset_observer on_log_reset_;
  apply_observer on_apply_;
  read_observer on_read_;
  read::lease lease_;
  read::snapshot_manager snapshots_;
  std::uint64_t suspend_watermark_ = 0;
  std::uint64_t fast_path_reads_ = 0;
  std::uint64_t fallback_reads_ = 0;
  std::uint64_t ro_broadcasts_ = 0;
  place::granule_store store_;
  /// Certify→install hand-off of the batched delivery path.
  commit_pipeline pipeline_;
  /// Reused per-delivery buffer for placement slices.
  std::vector<db::item_id> slice_scratch_;
  std::uint64_t delivery_runs_ = 0;
  std::uint64_t run_payloads_ = 0;
  std::uint64_t delivered_payload_bytes_ = 0;
  std::uint64_t interested_payload_bytes_ = 0;
  std::uint64_t applied_update_bytes_ = 0;
  bool halted_ = false;
};

}  // namespace dbsm::core

#endif  // DBSM_CORE_REPLICA_HPP
