// Experiment harness: one call runs a complete scenario — replicated (or
// centralized) database, closed-loop clients driving any core::workload,
// optional fault scenario — and returns every metric the paper's
// evaluation section reports.
#ifndef DBSM_CORE_EXPERIMENT_HPP
#define DBSM_CORE_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/cluster.hpp"
#include "core/safety.hpp"
#include "core/txn_stats.hpp"
#include "fault/fault_plan.hpp"
#include "fault/scenarios.hpp"
#include "place/placement.hpp"
#include "tpcc/profile.hpp"
#include "workload/workload.hpp"

namespace dbsm::core {

struct experiment_config {
  unsigned sites = 3;
  unsigned cpus_per_site = 1;
  unsigned clients = 500;

  /// Stop after this many client responses (the paper runs 10 000
  /// transactions per configuration, §5.1); 0 means run to max_sim_time.
  std::uint64_t target_responses = 10000;
  sim_duration max_sim_time = seconds(3600);
  std::uint64_t seed = 42;

  /// The traffic generator. Null (the default) means the paper's TPC-C
  /// workload built from `profile` — existing configs keep working
  /// unchanged. Set to tpcc::factory(...), kv::factory(...), or any
  /// user-defined core::workload factory to run something else.
  workload_factory workload;

  /// TPC-C profile used by the default (null) workload factory; ignored
  /// when `workload` is set.
  tpcc::workload_profile profile = tpcc::workload_profile::pentium3_1ghz();

  /// Per-replica engine + certification tuning. Certification sharding
  /// (replica_cfg.cert.{shards, certify_threads}) is decision-invariant
  /// at any setting — it changes the modeled (and real) certification
  /// cost only; the figure benches expose the knobs as
  /// --cert-shards / --certify-threads.
  replica::config replica_cfg;
  gcs::group_config gcs;
  csrt::net_cost_model costs;
  net::lan_config lan;
  bool use_wan = false;
  net::wan_config wan;
  bool measure_real_time = false;

  /// The fault schedule, installed against the cluster's injection points
  /// (network medium, per-site env bridges, crash and recover hooks).
  /// Build one by composing fault_types, pick a named one from
  /// fault::scenarios::, or adapt a flat paper plan with fault::from_plan.
  fault::scenario faults;

  /// Membership recovery (off by default — the paper's campaigns are
  /// crash-stop and stay bit-identical). When on, `fault::recover_fault`
  /// events bring crashed or partition-excluded sites back through the
  /// gcs rejoin protocol (state transfer + view merge), and the site's
  /// clients resume once it is live; post-rejoin commits count in the
  /// stats like any other.
  bool enable_recovery = false;

  /// §5.3 mitigation: run the fixed sequencer on a dedicated extra site
  /// that serves no clients (the protocol still elects the lowest id, so
  /// the extra site, added as id 0 ... first, becomes sequencer).
  bool dedicated_sequencer = false;

  /// §6 / [24], partial replication: the placement strategy resolved
  /// against the actual site count at cluster-build time (a spec, not a
  /// bound placement, because dedicated_sequencer may add a site). The
  /// default is full replication — bit-identical to pre-placement runs.
  place::spec placement;

  /// Online invariant monitors (check/): on by default — they observe the
  /// protocol passively, so results are bit-identical either way; a
  /// violation stops the run at the offending event and lands in
  /// experiment_result::checks.
  check::config checks;
};

/// Per-site accounting (fault campaigns need to tell "clients aborted"
/// from "the site was gone" — the aggregate stats hide it).
struct site_report {
  cluster::site_status state = cluster::site_status::operational;
  /// Certified commits in this site's log (transferred prefix included
  /// for a rejoined site).
  std::uint64_t committed_log = 0;
  /// Terminal outcomes reported by this site's clients.
  std::uint64_t client_commits = 0;
  std::uint64_t client_responses = 0;

  // Partial-replication accounting (meaningful for full placements too;
  // there disk/net figures simply coincide across sites).
  /// Busy fraction of this site's storage element.
  double disk_utilization = 0.0;
  /// Disk bytes written applying committed updates at this site
  /// (placement-pro-rated when partial).
  std::uint64_t applied_update_bytes = 0;
  /// Modeled bytes of tuple data durably held at this site.
  std::uint64_t store_bytes = 0;
  /// Granules this site replicates / granules the directory tracks.
  std::uint64_t owned_granules = 0;
  std::uint64_t tracked_granules = 0;
  /// Total-order payload bytes delivered vs what a placement-aware
  /// multicast would have shipped here.
  std::uint64_t delivered_payload_bytes = 0;
  std::uint64_t interested_payload_bytes = 0;
  /// Recovery donor accounting: snapshot blob bytes this site donated and
  /// join_chunk payload bytes it sent (placement-filtered when partial).
  std::uint64_t join_snapshot_bytes = 0;
  std::uint64_t join_chunk_bytes = 0;

  // Read-path accounting (read/): zeros unless replica_cfg.read.path is
  // certified or fast.
  /// Read-only transactions served locally off the uniform snapshot.
  std::uint64_t fast_path_reads = 0;
  /// Read-only transactions that fell back to the certified (broadcast)
  /// path — stale lease or a read set this site does not replicate.
  std::uint64_t fallback_reads = 0;
  /// Read-only payloads this site pushed through the total order.
  std::uint64_t ro_broadcasts = 0;
  /// Lease revocations observed (view change, suspicion, exclusion).
  std::uint64_t lease_revocations = 0;

  // Batched-delivery accounting (zeros on the serial gcs path).
  /// Contiguous delivery runs handed to the pipelined commit path;
  /// run_payloads / delivery_runs is the mean run length the batching
  /// amortization actually saw.
  std::uint64_t delivery_runs = 0;
  std::uint64_t run_payloads = 0;
  /// Peak certified-but-not-installed backlog in the hand-off queue.
  std::uint64_t pipeline_high_water = 0;

  // Ordering-protocol accounting (gcs/ordering.hpp seam).
  /// Busy fraction of this site's CPU spent in real protocol code. Under
  /// the fixed sequencer the minting site's figure stands out (the §5.3
  /// bottleneck); the rotating token spreads it — the contention signal
  /// bench_ablation_ordering compares.
  double protocol_cpu = 0.0;
  /// Token control datagrams this site multicast (rotating token only).
  std::uint64_t token_ctl_sent = 0;
};

struct experiment_result {
  /// Per-class metrics, sized by the workload's class count.
  txn_stats stats;
  /// The workload's identifier and per-class metadata, in class-id
  /// order — result consumers print tables and split update vs
  /// read-only classes without naming a workload type.
  std::string workload_name;
  std::vector<std::string> class_names;
  std::vector<bool> class_is_update;

  sim_duration duration = 0;  // simulated time when the run stopped
  std::uint64_t responses = 0;

  // Resource usage (mean over operational sites; Fig 6).
  double cpu_utilization = 0.0;
  double protocol_cpu_utilization = 0.0;  // real (protocol) jobs only
  double disk_utilization = 0.0;
  double network_kbps = 0.0;  // aggregate wire KB/s

  // Certification latency at origin sites (Fig 7b).
  util::sample_set cert_latency_ms;

  // Safety (§5.3): committed sequences of operational sites (a rejoined
  // site contributes its full pre-cut + post-rejoin sequence).
  std::vector<std::vector<std::uint64_t>> commit_logs;
  safety_report safety;

  /// Online monitor outcome (empty/ok when checks were disabled).
  check::report checks;

  // Per-site life cycle + counts, indexed by site (all sites, crashed
  // included).
  std::vector<site_report> sites;
  std::uint64_t rejoined_sites() const {
    std::uint64_t n = 0;
    for (const site_report& s : sites)
      if (s.state == cluster::site_status::rejoined) ++n;
    return n;
  }

  // GCS probes (§5.3 analysis).
  std::uint64_t naks_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t blocked_episodes = 0;
  double blocked_ms = 0.0;
  std::uint64_t view_changes = 0;

  double tpm() const { return stats.tpm(duration); }
};

experiment_result run_experiment(const experiment_config& cfg);

}  // namespace dbsm::core

#endif  // DBSM_CORE_EXPERIMENT_HPP
