// Per-class transaction metrics computed from client logs (§3.2: "the
// latency, throughput and abort rate of the server can then be computed
// for one or multiple users, and for all or just a subclass of the
// transactions").
#ifndef DBSM_CORE_TXN_STATS_HPP
#define DBSM_CORE_TXN_STATS_HPP

#include <vector>

#include "db/transaction.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace dbsm::core {

struct class_stats {
  std::uint64_t committed = 0;
  std::uint64_t aborted_lock = 0;
  std::uint64_t aborted_preempt = 0;
  std::uint64_t aborted_cert = 0;
  util::sample_set latency_ms;         // all responses
  util::sample_set commit_latency_ms;  // committed only

  std::uint64_t aborted() const {
    return aborted_lock + aborted_preempt + aborted_cert;
  }
  std::uint64_t total() const { return committed + aborted(); }
  double abort_rate_pct() const {
    return total() == 0 ? 0.0
                        : 100.0 * static_cast<double>(aborted()) /
                              static_cast<double>(total());
  }
};

class txn_stats {
 public:
  /// Default: zero classes; the harness re-sizes from the workload's
  /// class count before recording (record() on a zero-class instance
  /// throws).
  txn_stats() = default;
  explicit txn_stats(std::size_t classes) : per_class_(classes) {}

  void record(db::txn_class cls, db::txn_outcome outcome,
              sim_time submitted, sim_time finished) {
    class_stats& s = per_class_.at(cls);
    const double ms = to_millis(finished - submitted);
    s.latency_ms.add(ms);
    switch (outcome) {
      case db::txn_outcome::committed:
        ++s.committed;
        s.commit_latency_ms.add(ms);
        break;
      case db::txn_outcome::aborted_lock: ++s.aborted_lock; break;
      case db::txn_outcome::aborted_preempt: ++s.aborted_preempt; break;
      case db::txn_outcome::aborted_cert: ++s.aborted_cert; break;
    }
    if (first_finish_ == 0) first_finish_ = finished;
    last_finish_ = finished;
  }

  const class_stats& of(db::txn_class cls) const {
    return per_class_.at(cls);
  }
  std::size_t classes() const { return per_class_.size(); }

  std::uint64_t total_committed() const {
    std::uint64_t n = 0;
    for (const auto& s : per_class_) n += s.committed;
    return n;
  }
  std::uint64_t total_responses() const {
    std::uint64_t n = 0;
    for (const auto& s : per_class_) n += s.total();
    return n;
  }
  double abort_rate_pct() const {
    const std::uint64_t t = total_responses();
    return t == 0 ? 0.0
                  : 100.0 * static_cast<double>(t - total_committed()) /
                        static_cast<double>(t);
  }

  /// Mean latency over all responses, in milliseconds (Fig 5b).
  double mean_latency_ms() const {
    double sum = 0;
    std::uint64_t n = 0;
    for (const auto& s : per_class_) {
      sum += s.latency_ms.mean() * static_cast<double>(s.latency_ms.size());
      n += s.latency_ms.size();
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

  /// Pooled latency samples of all classes (for ECDFs, Fig 7a).
  util::sample_set pooled_latency_ms() const {
    util::sample_set out;
    for (const auto& s : per_class_) {
      for (double v : s.latency_ms.sorted()) out.add(v);
    }
    return out;
  }

  /// Committed transactions per minute over the observed span (Fig 5a).
  double tpm(sim_duration span) const {
    if (span <= 0) return 0.0;
    return static_cast<double>(total_committed()) /
           to_seconds(span) * 60.0;
  }

  sim_time first_finish() const { return first_finish_; }
  sim_time last_finish() const { return last_finish_; }

 private:
  std::vector<class_stats> per_class_;
  sim_time first_finish_ = 0;
  sim_time last_finish_ = 0;
};

}  // namespace dbsm::core

#endif  // DBSM_CORE_TXN_STATS_HPP
