#include "core/safety.hpp"

#include <algorithm>
#include <sstream>

namespace dbsm::core {

safety_report check_commit_logs(
    const std::vector<std::vector<std::uint64_t>>& logs) {
  safety_report report;
  if (logs.empty()) return report;

  std::size_t longest = 0;
  for (const auto& log : logs) longest = std::max(longest, log.size());
  std::size_t shortest = longest;
  for (const auto& log : logs) shortest = std::min(shortest, log.size());
  report.common_prefix = shortest;

  for (std::size_t pos = 0; pos < longest; ++pos) {
    std::uint64_t expect = 0;
    bool have = false;
    for (std::size_t site = 0; site < logs.size(); ++site) {
      if (pos >= logs[site].size()) continue;
      if (!have) {
        expect = logs[site][pos];
        have = true;
        continue;
      }
      if (logs[site][pos] != expect) {
        report.ok = false;
        std::ostringstream os;
        os << "divergence at position " << pos << ": site logs disagree ("
           << expect << " vs " << logs[site][pos] << " at site " << site
           << ")";
        report.detail = os.str();
        report.common_prefix = pos;
        return report;
      }
    }
  }
  return report;
}

safety_report check_commit_logs(const std::vector<site_log_input>& sites,
                                std::uint64_t rejoin_max_lag) {
  safety_report report;
  if (sites.empty()) return report;

  // Position-wise agreement among live sites: their logs define the
  // consensus order (sites may lag by in-flight transactions, never
  // disagree).
  std::vector<std::uint64_t> order;
  std::size_t longest = 0;
  for (const auto& s : sites) longest = std::max(longest, s.log.size());
  for (std::size_t pos = 0; pos < longest; ++pos) {
    std::uint64_t expect = 0;
    bool have = false;
    for (std::size_t site = 0; site < sites.size(); ++site) {
      if (sites[site].state == site_log_input::kind::crashed) continue;
      const auto& log = sites[site].log;
      if (pos >= log.size()) continue;
      if (!have) {
        expect = log[pos];
        have = true;
        continue;
      }
      if (log[pos] != expect) {
        report.ok = false;
        report.first_mismatch_site = static_cast<int>(site);
        std::ostringstream os;
        os << "divergence at position " << pos << ": site logs disagree ("
           << expect << " vs " << log[pos] << " at site " << site << ")";
        report.detail = os.str();
        report.common_prefix = pos;
        return report;
      }
    }
    if (have) order.push_back(expect);
  }

  // A crashed site must match the consensus order up to its first
  // divergence; the rest of its log is an orphan suffix — non-uniform
  // deliveries the surviving majority's view change discarded (tolerated,
  // counted). Positions beyond everything any live site committed are
  // unverifiable and treated as agreement (the site may legitimately have
  // run ahead of the survivors when it stopped).
  for (const auto& s : sites) {
    if (s.state != site_log_input::kind::crashed) continue;
    const std::size_t cmp = std::min(s.log.size(), order.size());
    std::size_t agree = 0;
    while (agree < cmp && s.log[agree] == order[agree]) ++agree;
    if (agree < cmp) report.orphaned += s.log.size() - agree;
  }

  // The agreement metric only counts sites that are required to have kept
  // up (a crashed site's short log is expected, not a disagreement).
  bool any_live = false;
  for (const auto& s : sites) {
    if (s.state == site_log_input::kind::crashed) continue;
    report.common_prefix = any_live
                               ? std::min(report.common_prefix, s.log.size())
                               : s.log.size();
    any_live = true;
  }
  if (!any_live) report.common_prefix = 0;

  for (std::size_t site = 0; site < sites.size(); ++site) {
    const auto& s = sites[site];
    if (s.reported_committed != s.log.size()) {
      report.ok = false;
      report.first_mismatch_site = static_cast<int>(site);
      std::ostringstream os;
      os << "site " << site << " reports " << s.reported_committed
         << " committed but its log holds " << s.log.size();
      report.detail = os.str();
      return report;
    }
    if (s.state == site_log_input::kind::rejoined &&
        longest - s.log.size() > rejoin_max_lag) {
      report.ok = false;
      report.first_mismatch_site = static_cast<int>(site);
      std::ostringstream os;
      os << "rejoined site " << site << " lags the longest log by "
         << (longest - s.log.size()) << " commits (bound " << rejoin_max_lag
         << ": it must have converged)";
      report.detail = os.str();
      return report;
    }
  }
  return report;
}

}  // namespace dbsm::core
