#include "core/safety.hpp"

#include <algorithm>
#include <sstream>

namespace dbsm::core {

safety_report check_commit_logs(
    const std::vector<std::vector<std::uint64_t>>& logs) {
  safety_report report;
  if (logs.empty()) return report;

  std::size_t longest = 0;
  for (const auto& log : logs) longest = std::max(longest, log.size());
  std::size_t shortest = longest;
  for (const auto& log : logs) shortest = std::min(shortest, log.size());
  report.common_prefix = shortest;

  for (std::size_t pos = 0; pos < longest; ++pos) {
    std::uint64_t expect = 0;
    bool have = false;
    for (std::size_t site = 0; site < logs.size(); ++site) {
      if (pos >= logs[site].size()) continue;
      if (!have) {
        expect = logs[site][pos];
        have = true;
        continue;
      }
      if (logs[site][pos] != expect) {
        report.ok = false;
        std::ostringstream os;
        os << "divergence at position " << pos << ": site logs disagree ("
           << expect << " vs " << logs[site][pos] << " at site " << site
           << ")";
        report.detail = os.str();
        report.common_prefix = pos;
        return report;
      }
    }
  }
  return report;
}

}  // namespace dbsm::core
