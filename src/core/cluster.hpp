// Builds and wires a replicated database over the simulated LAN: one
// simulator, one network, and per site a CPU pool, env bridge, group
// communication stack and replica (Fig 2's full architecture).
#ifndef DBSM_CORE_CLUSTER_HPP
#define DBSM_CORE_CLUSTER_HPP

#include <memory>
#include <vector>

#include "core/replica.hpp"
#include "csrt/cpu.hpp"
#include "csrt/sim_env.hpp"
#include "gcs/group.hpp"
#include "net/lan.hpp"
#include "net/udp_transport.hpp"
#include "net/wan.hpp"
#include "sim/simulator.hpp"

namespace dbsm::core {

class cluster {
 public:
  struct config {
    unsigned sites = 3;
    unsigned cpus_per_site = 1;
    replica::config replica_cfg;
    gcs::group_config gcs;  // `members` filled automatically
    csrt::net_cost_model costs;
    net::lan_config lan;
    /// Use a wide-area mesh instead of the LAN (unicast fan-out, §3.4).
    bool use_wan = false;
    net::wan_config wan;
    /// Measure real protocol execution with the thread CPU clock instead
    /// of the deterministic cost model (§2.3).
    bool measure_real_time = false;
    double measured_scale = 1.0;
    std::uint64_t seed = 42;
  };

  explicit cluster(config cfg);
  ~cluster();

  cluster(const cluster&) = delete;
  cluster& operator=(const cluster&) = delete;

  /// Boots all protocol stacks (group membership, replicas).
  void start();

  sim::simulator& sim() { return sim_; }
  net::medium& network() { return *net_; }
  unsigned sites() const { return cfg_.sites; }

  replica& site(unsigned i) { return *replicas_.at(i); }
  gcs::group& group(unsigned i) { return *groups_.at(i); }
  csrt::cpu_pool& cpu(unsigned i) { return *cpus_.at(i); }
  csrt::sim_env& env(unsigned i) { return *envs_.at(i); }

  /// Crash fault (§5.3): "a node is stopped at the specified time, thus
  /// completely stopping interaction with other nodes."
  void crash_site(unsigned i);
  bool crashed(unsigned i) const {
    return status_.at(i) == site_status::crashed ||
           status_.at(i) == site_status::excluded ||
           status_.at(i) == site_status::recovering;
  }

  /// Where a site stands in the crash/recover life cycle (fault campaigns
  /// report it per site, distinguishing "aborted" from "site was gone").
  enum class site_status : std::uint8_t {
    operational,  // never left (or only transiently partitioned)
    crashed,      // crash-stopped
    excluded,     // alive but voted out of the view: delivery has halted
    recovering,   // restart under way: quiesce, state transfer, rejoin
    rejoined,     // back in the view after a completed state transfer
  };
  site_status status(unsigned i) const { return status_.at(i); }

  /// Membership recovery (requires cfg.gcs.enable_recovery): brings a
  /// crashed or partition-excluded site back. The site's stack is
  /// quiesced, torn down once its CPU drains, rebuilt from scratch, and
  /// started in joining mode; the gcs recovery protocol then transfers
  /// state from the primary partition and merges the site back into the
  /// view. `on_rejoined` fires when the site is live again (e.g. to
  /// resume its clients). Safe to call on a live member too — it is
  /// excluded first, then rejoins (a rolling restart).
  void recover_site(unsigned i, std::function<void(unsigned)> on_rejoined = {});

  std::vector<unsigned> operational_sites() const;

  /// Observation seam for the check layer: passive callbacks fired
  /// synchronously from inside the protocol jobs. The cluster rewires
  /// every callback into a site's stack when recovery rebuilds it, so
  /// observers outlive replica/group incarnations. Callbacks must not
  /// schedule simulator work or mutate the observed objects.
  struct observer {
    /// Certification decision applied at `site` (see
    /// replica::set_decision_observer).
    std::function<void(unsigned site, const cert::txn_payload& txn,
                       std::uint64_t global_seq, bool commit,
                       std::uint64_t log_len)>
        on_decision;
    /// View installed at `site`; `delivered` is the site's delivery count
    /// at the instant of the install (the view-synchrony cut).
    std::function<void(unsigned site, const gcs::view& v,
                       std::uint64_t delivered)>
        on_view;
    /// `site` discovered that a view install excluded it (delivery halts
    /// there until it rejoins through recovery).
    std::function<void(unsigned site)> on_excluded;
    /// Committed update folded into `site`'s store: the write-set slice
    /// the site makes durable under its placement (see
    /// replica::set_apply_observer). Fires right after on_decision for
    /// every commit, at every site.
    std::function<void(unsigned site, const cert::txn_payload& txn,
                       std::uint64_t global_seq,
                       const std::vector<db::item_id>& durable_slice,
                       std::uint64_t durable_bytes)>
        on_apply;
    /// Recovery state transfer replaced `site`'s commit log.
    std::function<void(unsigned site, const std::vector<std::uint64_t>& log)>
        on_log_reset;
    std::function<void(unsigned site)> on_recovery_start;
    /// `site` is live again in the merged view with `log_len` committed.
    std::function<void(unsigned site, std::uint64_t log_len)> on_rejoined;
    /// Read-only transaction terminated on the read path at `site` (see
    /// replica::set_read_observer): fast == true claims the snapshot
    /// (epoch, log_len, last_commit_id) the read was served at.
    std::function<void(unsigned site, bool fast, std::uint64_t epoch,
                       std::uint64_t log_len, std::uint64_t last_commit_id)>
        on_read;
  };
  void set_observer(observer obs);

 private:
  void build_site_stack(unsigned i, bool joining,
                        std::uint64_t first_local_txn, unsigned restart_no);
  void wire_observer(unsigned i);
  void finish_recover(unsigned i, std::uint64_t epoch);

  config cfg_;
  sim::simulator sim_;
  std::unique_ptr<net::medium> net_;
  std::vector<std::unique_ptr<csrt::cpu_pool>> cpus_;
  std::vector<std::unique_ptr<net::udp_transport>> transports_;
  std::vector<std::unique_ptr<csrt::sim_env>> envs_;
  std::vector<std::unique_ptr<gcs::group>> groups_;
  std::vector<std::unique_ptr<replica>> replicas_;
  std::vector<site_status> status_;
  /// Bumped by every crash/recover of the site; in-flight recovery steps
  /// carry the epoch they were scheduled under and fizzle when stale.
  std::vector<std::uint64_t> recover_epoch_;
  std::vector<unsigned> restarts_;
  std::vector<std::function<void(unsigned)>> on_rejoined_;
  observer obs_;
};

}  // namespace dbsm::core

#endif  // DBSM_CORE_CLUSTER_HPP
