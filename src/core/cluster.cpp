#include "core/cluster.hpp"

#include "util/check.hpp"

namespace dbsm::core {

cluster::cluster(config cfg) : cfg_(std::move(cfg)) {
  DBSM_CHECK(cfg_.sites >= 1);
  util::rng root(cfg_.seed);
  if (cfg_.use_wan) {
    net_ = std::make_unique<net::wan>(sim_, cfg_.wan, root.fork("wan"));
  } else {
    net_ = std::make_unique<net::lan>(sim_, cfg_.lan, root.fork("lan"));
  }

  std::vector<node_id> members;
  for (unsigned i = 0; i < cfg_.sites; ++i) {
    const node_id id = net_->add_host();
    DBSM_CHECK(id == i);
    members.push_back(id);
  }
  cfg_.gcs.members = members;

  cfg_.replica_cfg.total_sites = cfg_.sites;
  for (unsigned i = 0; i < cfg_.sites; ++i) {
    util::rng site_rng = root.fork("site" + std::to_string(i));
    cpus_.push_back(
        std::make_unique<csrt::cpu_pool>(sim_, cfg_.cpus_per_site));
    transports_.push_back(std::make_unique<net::udp_transport>(*net_, i));

    csrt::sim_env::config env_cfg;
    env_cfg.self = i;
    env_cfg.peers = members;
    env_cfg.costs = cfg_.costs;
    env_cfg.measured_scale = cfg_.measured_scale;
    env_cfg.measure_real_time = cfg_.measure_real_time;
    envs_.push_back(std::make_unique<csrt::sim_env>(
        sim_, *cpus_.back(), *transports_.back(), env_cfg,
        site_rng.fork("env")));
    transports_.back()->attach(*envs_.back());

    groups_.push_back(
        std::make_unique<gcs::group>(*envs_.back(), cfg_.gcs));
    replicas_.push_back(std::make_unique<replica>(
        sim_, *cpus_.back(), *envs_.back(), *groups_.back(), cfg_.replica_cfg,
        site_rng.fork("replica")));
  }
  crashed_.assign(cfg_.sites, false);
}

cluster::~cluster() = default;

void cluster::start() {
  for (auto& r : replicas_) r->start();
  for (auto& g : groups_) g->start();
}

void cluster::crash_site(unsigned i) {
  DBSM_CHECK(i < cfg_.sites);
  if (crashed_[i]) return;
  crashed_[i] = true;
  net_->isolate(i);
  replicas_[i]->halt();
}

std::vector<unsigned> cluster::operational_sites() const {
  std::vector<unsigned> out;
  for (unsigned i = 0; i < cfg_.sites; ++i)
    if (!crashed_[i]) out.push_back(i);
  return out;
}

}  // namespace dbsm::core
