#include "core/cluster.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace dbsm::core {

namespace {
/// How long a recovering site's old stack gets to drain in-flight CPU and
/// disk work before its objects are destroyed (re-checked until idle).
constexpr sim_duration kRecoverSettle = milliseconds(300);
constexpr sim_duration kRecoverRecheck = milliseconds(50);
}  // namespace

cluster::cluster(config cfg) : cfg_(std::move(cfg)) {
  DBSM_CHECK(cfg_.sites >= 1);
  util::rng root(cfg_.seed);
  if (cfg_.use_wan) {
    net_ = std::make_unique<net::wan>(sim_, cfg_.wan, root.fork("wan"));
  } else {
    net_ = std::make_unique<net::lan>(sim_, cfg_.lan, root.fork("lan"));
  }

  std::vector<node_id> members;
  for (unsigned i = 0; i < cfg_.sites; ++i) {
    const node_id id = net_->add_host();
    DBSM_CHECK(id == i);
    members.push_back(id);
  }
  cfg_.gcs.members = members;

  DBSM_CHECK_MSG(cfg_.replica_cfg.placement.is_full() ||
                     cfg_.replica_cfg.placement.sites() == cfg_.sites,
                 "placement built for "
                     << cfg_.replica_cfg.placement.sites()
                     << " sites, cluster has " << cfg_.sites);
  groups_.resize(cfg_.sites);
  replicas_.resize(cfg_.sites);
  for (unsigned i = 0; i < cfg_.sites; ++i) {
    util::rng site_rng = root.fork("site" + std::to_string(i));
    cpus_.push_back(
        std::make_unique<csrt::cpu_pool>(sim_, cfg_.cpus_per_site));
    transports_.push_back(std::make_unique<net::udp_transport>(*net_, i));

    csrt::sim_env::config env_cfg;
    env_cfg.self = i;
    env_cfg.peers = members;
    env_cfg.costs = cfg_.costs;
    env_cfg.measured_scale = cfg_.measured_scale;
    env_cfg.measure_real_time = cfg_.measure_real_time;
    envs_.push_back(std::make_unique<csrt::sim_env>(
        sim_, *cpus_.back(), *transports_.back(), env_cfg,
        site_rng.fork("env")));
    transports_.back()->attach(*envs_.back());

    build_site_stack(i, /*joining=*/false, /*first_local_txn=*/0,
                     /*restart_no=*/0);
  }
  status_.assign(cfg_.sites, site_status::operational);
  recover_epoch_.assign(cfg_.sites, 0);
  restarts_.assign(cfg_.sites, 0);
  on_rejoined_.resize(cfg_.sites);
}

cluster::~cluster() = default;

void cluster::build_site_stack(unsigned i, bool joining,
                               std::uint64_t first_local_txn,
                               unsigned restart_no) {
  // A replica holds a reference to its group: destroy in reverse order,
  // construct group first. Restart forks a fresh deterministic rng branch
  // per incarnation so reruns with the same seed stay bit-identical.
  replicas_[i].reset();
  groups_[i].reset();

  util::rng root(cfg_.seed);
  util::rng site_rng = root.fork("site" + std::to_string(i));
  if (restart_no != 0)
    site_rng = site_rng.fork("restart" + std::to_string(restart_no));

  groups_[i] = std::make_unique<gcs::group>(*envs_[i], cfg_.gcs);
  replicas_[i] = std::make_unique<replica>(
      sim_, *cpus_[i], *envs_[i], *groups_[i], cfg_.replica_cfg,
      site_rng.fork("replica"), first_local_txn);

  if (cfg_.gcs.enable_recovery) {
    groups_[i]->set_state_transfer(
        {[r = replicas_[i].get()](node_id joiner) {
           return r->snapshot(joiner);
         },
         [r = replicas_[i].get()](util::shared_bytes blob) {
           r->install_snapshot(std::move(blob));
         }});
    groups_[i]->set_joined_handler([this, i](const gcs::view&) {
      status_[i] = site_status::rejoined;
      if (obs_.on_rejoined)
        obs_.on_rejoined(i, replicas_[i]->commit_log().size());
      if (on_rejoined_[i]) on_rejoined_[i](i);
    });
  }
  // Always wired (not part of the optional observer seam): discovering an
  // exclusion halts the site's delivery, so from here until a recovery
  // brings it back the site counts as down — its commit log may carry a
  // non-uniform orphan suffix the surviving majority discarded, which the
  // end-of-run safety check must not read as a live site's divergence.
  groups_[i]->set_excluded_handler([this, i] {
    if (status_[i] == site_status::operational ||
        status_[i] == site_status::rejoined) {
      status_[i] = site_status::excluded;
    }
    replicas_[i]->revoke_lease(read::revoke_reason::exclusion);
    if (obs_.on_excluded) obs_.on_excluded(i);
  });
  // Lease protocol wiring (no-ops unless the fast read path is on): a
  // local suspicion suspends the site's lease until connectivity is
  // proven again; every view install re-grants it.
  groups_[i]->set_suspicion_handler([this, i](node_id) {
    replicas_[i]->revoke_lease(read::revoke_reason::suspicion);
  });
  wire_observer(i);
  if (joining) {
    replicas_[i]->start();
    groups_[i]->start_joining();
  }
}

void cluster::set_observer(observer obs) {
  obs_ = std::move(obs);
  for (unsigned i = 0; i < cfg_.sites; ++i) wire_observer(i);
}

void cluster::wire_observer(unsigned i) {
  if (obs_.on_decision) {
    replicas_[i]->set_decision_observer(
        [this, i](const cert::txn_payload& txn, std::uint64_t seq,
                  bool commit, std::uint64_t len) {
          obs_.on_decision(i, txn, seq, commit, len);
        });
  }
  if (obs_.on_apply) {
    replicas_[i]->set_apply_observer(
        [this, i](const cert::txn_payload& txn, std::uint64_t seq,
                  const std::vector<db::item_id>& slice,
                  std::uint64_t durable_bytes) {
          obs_.on_apply(i, txn, seq, slice, durable_bytes);
        });
  }
  if (obs_.on_log_reset) {
    replicas_[i]->set_log_reset_observer(
        [this, i](const std::vector<std::uint64_t>& log) {
          obs_.on_log_reset(i, log);
        });
  }
  // Always wired: every view install re-grants the site's read lease
  // (the agreed cut is uniform by flush consensus). The observer hook
  // rides along when set.
  groups_[i]->set_view_handler([this, i](const gcs::view& v) {
    replicas_[i]->grant_lease(v.id);
    if (obs_.on_view) obs_.on_view(i, v, groups_[i]->delivered_count());
  });
  if (obs_.on_read) {
    replicas_[i]->set_read_observer(
        [this, i](bool fast, std::uint64_t epoch, std::uint64_t log_len,
                  std::uint64_t last_commit_id) {
          obs_.on_read(i, fast, epoch, log_len, last_commit_id);
        });
  }
}

void cluster::start() {
  for (auto& r : replicas_) r->start();
  for (auto& g : groups_) g->start();
  // The initial view (id 1) installs silently inside group construction —
  // no view callback fires — so the initial leases are granted here.
  for (auto& r : replicas_) r->grant_lease(1);
}

void cluster::crash_site(unsigned i) {
  DBSM_CHECK(i < cfg_.sites);
  if (status_[i] == site_status::crashed) return;
  status_[i] = site_status::crashed;
  ++recover_epoch_[i];  // cancels an in-flight recovery of this site
  net_->isolate(i);
  replicas_[i]->halt();
}

void cluster::recover_site(unsigned i,
                           std::function<void(unsigned)> on_rejoined) {
  DBSM_CHECK(i < cfg_.sites);
  DBSM_CHECK_MSG(cfg_.gcs.enable_recovery,
                 "recover_site() requires gcs.enable_recovery");
  const std::uint64_t epoch = ++recover_epoch_[i];
  status_[i] = site_status::recovering;
  on_rejoined_[i] = std::move(on_rejoined);
  if (obs_.on_recovery_start) obs_.on_recovery_start(i);
  DBSM_LOG(info, "core.cluster", "site " << i << " begins recovery");

  // Phase 1 — quiesce: detach the datagram handler, kill every armed
  // protocol timer, halt the replica. In-flight CPU/disk work of the old
  // stack runs to completion against the still-live objects.
  envs_[i]->set_handler({});
  envs_[i]->cancel_all_timers();
  groups_[i]->shutdown();
  replicas_[i]->halt();

  // Phase 2 — once the site's CPU and disk drain, destroy the old stack,
  // rebuild it, reconnect the network, and start the join protocol.
  sim_.schedule_after(kRecoverSettle,
                      [this, i, epoch] { finish_recover(i, epoch); });
}

void cluster::finish_recover(unsigned i, std::uint64_t epoch) {
  if (recover_epoch_[i] != epoch) return;  // crashed again meanwhile
  if (!cpus_[i]->idle() ||
      replicas_[i]->server().disk().queue_length() != 0) {
    sim_.schedule_after(kRecoverRecheck,
                        [this, i, epoch] { finish_recover(i, epoch); });
    return;
  }
  // Anything re-armed by straggler jobs since phase 1 dies here, before
  // the objects those callbacks point into are destroyed.
  envs_[i]->cancel_all_timers();
  const std::uint64_t next_txn = replicas_[i]->next_local_txn();
  ++restarts_[i];
  build_site_stack(i, /*joining=*/true, next_txn, restarts_[i]);
  net_->restore(i);
  DBSM_LOG(info, "core.cluster",
           "site " << i << " restarted (incarnation " << restarts_[i]
                   << "), joining");
}

std::vector<unsigned> cluster::operational_sites() const {
  std::vector<unsigned> out;
  for (unsigned i = 0; i < cfg_.sites; ++i)
    if (status_[i] == site_status::operational ||
        status_[i] == site_status::rejoined)
      out.push_back(i);
  return out;
}

}  // namespace dbsm::core
