#include "place/granule_store.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dbsm::place {

void granule_store::apply(const std::vector<db::item_id>& write_set,
                          std::uint32_t update_bytes) {
  // Split the write set: tuples carry data, granule markers only locate
  // it. Bytes are attributed evenly across the written tuples (the codec
  // models values the same way — one padded blob for the whole update).
  std::size_t tuples = 0;
  for (const db::item_id it : write_set)
    if (!db::is_granule(it)) ++tuples;

  touched_scratch_.clear();
  bool any_stored = false;
  const std::uint64_t share =
      tuples > 0 ? update_bytes / tuples : update_bytes;
  for (const db::item_id it : write_set) {
    const db::item_id g = db::granule_of(it);
    const bool owned = placement_.stores(self_, g);
    any_stored = any_stored || owned;
    auto& st = dir_[g];
    if (std::find(touched_scratch_.begin(), touched_scratch_.end(), g) ==
        touched_scratch_.end()) {
      touched_scratch_.push_back(g);
      if (st.updates == 0 && owned) ++owned_granules_;
      ++st.updates;
    }
    if (db::is_granule(it)) continue;
    // First write of a tuple materializes it; later writes overwrite in
    // place and do not grow the modeled database.
    if (st.tuples.insert(it).second) {
      st.data_bytes += share;
      if (owned) {
        durable_bytes_ += share;
        ++durable_tuples_;
      }
    }
  }
  if (any_stored) ++applied_updates_;
}

void granule_store::snapshot_for(util::buffer_writer& w,
                                 unsigned for_site) const {
  std::uint32_t count = 0;
  std::uint64_t data = 0;
  for (const auto& [g, st] : dir_) {
    if (!placement_.stores(for_site, g)) continue;
    ++count;
    data += st.data_bytes;
  }
  w.put_u32(count);
  for (const auto& [g, st] : dir_) {
    if (!placement_.stores(for_site, g)) continue;
    w.put_u64(g);
    w.put_u64(st.updates);
    w.put_u64(st.data_bytes);
    w.put_u32(static_cast<std::uint32_t>(st.tuples.size()));
    for (const db::item_id t : st.tuples) w.put_u64(t);
  }
  // The tuple data itself, modeled as padding of the slice's total size —
  // this is what makes a k-of-N snapshot genuinely smaller on the wire.
  w.put_padding(static_cast<std::size_t>(data));
}

void granule_store::restore(util::buffer_reader& r) {
  const std::uint32_t count = r.get_u32();
  std::uint64_t data = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const db::item_id g = r.get_u64();
    granule_state st;
    st.updates = r.get_u64();
    st.data_bytes = r.get_u64();
    const std::uint32_t ntuples = r.get_u32();
    for (std::uint32_t t = 0; t < ntuples; ++t) st.tuples.insert(r.get_u64());
    data += st.data_bytes;
    dir_[g] = std::move(st);
  }
  r.skip(static_cast<std::size_t>(data));
  recount();
}

void granule_store::recount() {
  durable_bytes_ = 0;
  durable_tuples_ = 0;
  owned_granules_ = 0;
  for (const auto& [g, st] : dir_) {
    if (!placement_.stores(self_, g)) continue;
    ++owned_granules_;
    durable_bytes_ += st.data_bytes;
    durable_tuples_ += st.tuples.size();
  }
}

}  // namespace dbsm::place
