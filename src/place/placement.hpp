// Data placement for partial replication (§6 / [24] — the paper's own
// mitigation of the read-one/write-all disk ceiling it measures in
// Fig 6(b), protocol shape after *Fault-Tolerant Partial Replication in
// Large-Scale Database Systems*).
//
// A place::placement maps every granule (db::granule_of — the unit the
// certification prototype already escalates locks to) to an explicit
// replica set of `degree` sites. Write sets are split per the placement:
// a site stores, applies and makes durable only the slice of each
// committed update that falls into granules it replicates. Certification
// stays GLOBAL — the total order is still delivered everywhere, every
// site runs the same deterministic certification over the full write
// stream and logs the same committed sequence (the §5.3 safety property
// and the check/ cert-oracle monitor both require it) — partiality is a
// property of storage, application and durability, not of the decision.
//
// Everything here is a pure function of (strategy, sites, degree) and the
// granule id: deterministic across sites and runs, snapshot-able in a few
// bytes, and cheap enough to evaluate per delivered write-set element.
// The default-constructed placement is FULL replication over any cluster
// size and is gated out of every hot path (`is_full()`), so default
// configurations stay bit-identical to the pre-placement code.
#ifndef DBSM_PLACE_PLACEMENT_HPP
#define DBSM_PLACE_PLACEMENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "db/item.hpp"
#include "util/byte_buffer.hpp"
#include "util/types.hpp"

namespace dbsm::place {

enum class strategy : std::uint8_t {
  full = 0,         // every site replicates every granule
  round_robin = 1,  // replica set = k consecutive sites from a rotating base
  hashed = 2,       // replica set = k consecutive sites from a hashed base
};

const char* strategy_name(strategy s);

/// Experiment-level placement request, resolved against the cluster size
/// at build time (experiment_config carries a spec because the total site
/// count may not be known yet — e.g. dedicated_sequencer adds one).
/// degree == 0 or degree >= sites means full replication.
struct spec {
  strategy kind = strategy::full;
  unsigned degree = 0;
};

class placement {
 public:
  /// Full replication over any cluster size (the compatibility default).
  placement() = default;

  static placement full(unsigned sites);
  static placement round_robin(unsigned sites, unsigned degree);
  static placement hashed(unsigned sites, unsigned degree);
  /// Resolves a spec against the actual cluster size (degree clamped).
  static placement make(const spec& s, unsigned sites);

  /// True when every site replicates everything — the gate that keeps the
  /// default path code-identical to pre-placement behavior.
  bool is_full() const {
    return sites_ == 0 || degree_ == 0 || degree_ >= sites_;
  }
  strategy kind() const { return kind_; }
  unsigned sites() const { return sites_; }
  /// Effective replicas per granule (== sites() when full).
  unsigned degree() const { return is_full() ? sites_ : degree_; }

  /// First replica of the item's granule (the shard-alignment anchor for
  /// placement-aligned certification sharding).
  unsigned primary(db::item_id id) const;

  /// Whether `site` replicates the granule of `id` (always true when
  /// full — including the unbound default, which knows no site count).
  bool stores(unsigned site, db::item_id id) const;

  /// The item's full replica set, ascending site order.
  void replica_set(db::item_id id, std::vector<unsigned>& out) const;

  /// Splits a write set: `out` receives the elements whose granule `site`
  /// replicates, in input order (granule markers follow their own granule,
  /// tuples follow theirs — a sorted input yields a sorted slice).
  void slice(const std::vector<db::item_id>& write_set, unsigned site,
             std::vector<db::item_id>& out) const;

  /// True when `site` replicates at least one element of the write set
  /// (a genuine multicast would ship the payload only to such sites).
  bool interested(unsigned site,
                  const std::vector<db::item_id>& write_set) const;

  /// How many sites a genuine multicast of this write set would reach.
  unsigned interested_sites(const std::vector<db::item_id>& write_set) const;

  /// A few bytes: (version, kind, sites, degree). Donor and joiner check
  /// agreement at state-transfer time (a placement mismatch would silently
  /// mis-route every slice).
  void snapshot(util::buffer_writer& w) const;
  static placement restore(util::buffer_reader& r);

  bool operator==(const placement& o) const {
    return kind_ == o.kind_ && sites_ == o.sites_ && degree_ == o.degree_;
  }
  bool operator!=(const placement& o) const { return !(*this == o); }

  /// e.g. "hash k=2 of 6" or "full".
  std::string describe() const;

 private:
  placement(strategy k, unsigned sites, unsigned degree)
      : kind_(k), sites_(sites), degree_(degree) {}

  /// First replica of a granule id (callers pass db::granule_of output).
  unsigned base_of(db::item_id granule) const;

  strategy kind_ = strategy::full;
  unsigned sites_ = 0;  // 0: unbound full placement
  unsigned degree_ = 0;
};

}  // namespace dbsm::place

#endif  // DBSM_PLACE_PLACEMENT_HPP
