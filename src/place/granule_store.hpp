// Per-site granule store bookkeeping for partial replication.
//
// Two tiers, one structure:
//
//   * The DIRECTORY tracks every granule the delivered total order has
//     ever written — update count, distinct written tuples, and the
//     modeled data bytes those tuples hold. Every site maintains it for
//     ALL granules (it is a deterministic function of the delivered
//     commit stream, which certification already ships everywhere), so
//     any snapshot donor can serialize any site's slice — in particular
//     a joiner's granules the donor itself does not replicate.
//   * The DURABLE view is the directory restricted to the granules the
//     local placement assigns to this site: only those contribute to
//     durable_bytes()/owned accounting, mirroring what the disk model
//     actually wrote.
//
// The store is pure bookkeeping: apply() runs inside the delivery job but
// never charges modeled CPU, schedules simulator work, or consumes
// randomness, so runs with any placement remain bit-identical in
// simulated behavior to runs without the store.
//
// snapshot_for(site) serializes the directory slice a joining `site`
// replicates, followed by padding bytes equal to the slice's modeled data
// size — the same convention the txn codec uses for written values
// ("padding of the same total size", §3.3) — so recovery join_chunk
// counts genuinely track the placement-filtered database size instead of
// the full one.
#ifndef DBSM_PLACE_GRANULE_STORE_HPP
#define DBSM_PLACE_GRANULE_STORE_HPP

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "db/item.hpp"
#include "place/placement.hpp"
#include "util/byte_buffer.hpp"

namespace dbsm::place {

class granule_store {
 public:
  granule_store() = default;
  granule_store(placement p, unsigned self) : placement_(p), self_(self) {}

  /// Applies one committed update's write set (granule markers and all) to
  /// the directory; durable accounting moves only for granules this site
  /// replicates. `update_bytes` is attributed evenly across the written
  /// tuples; re-writing an existing tuple does not grow the data size
  /// (the store models a materialized database, not a log).
  void apply(const std::vector<db::item_id>& write_set,
             std::uint32_t update_bytes);

  // --- accounting ---
  /// Modeled bytes of tuple data durably held at this site.
  std::uint64_t durable_bytes() const { return durable_bytes_; }
  /// Distinct tuples durably held at this site.
  std::uint64_t durable_tuples() const { return durable_tuples_; }
  /// Committed updates with at least one element stored at this site.
  std::uint64_t applied_updates() const { return applied_updates_; }
  /// Granules the directory tracks (all granules ever written).
  std::uint64_t tracked_granules() const { return dir_.size(); }
  /// Tracked granules this site replicates.
  std::uint64_t owned_granules() const { return owned_granules_; }

  /// Serializes the directory slice `for_site` replicates under this
  /// store's placement, plus data-sized padding (see header).
  void snapshot_for(util::buffer_writer& w, unsigned for_site) const;

  /// Installs a transferred slice: entries replace same-granule directory
  /// state wholesale; durable accounting is recomputed. Entries for
  /// granules this site does not replicate are still installed into the
  /// directory (they refresh the joiner's stale view of them).
  void restore(util::buffer_reader& r);

  const placement& get_placement() const { return placement_; }

 private:
  struct granule_state {
    std::uint64_t updates = 0;     // committed updates that touched it
    std::uint64_t data_bytes = 0;  // modeled materialized size
    std::set<db::item_id> tuples;  // distinct written tuples (sorted)
  };

  void recount();

  placement placement_;
  unsigned self_ = 0;
  std::map<db::item_id, granule_state> dir_;  // granule id -> state
  std::uint64_t durable_bytes_ = 0;
  std::uint64_t durable_tuples_ = 0;
  std::uint64_t owned_granules_ = 0;
  std::uint64_t applied_updates_ = 0;
  /// Scratch: granules touched by the current apply (small, reused).
  std::vector<db::item_id> touched_scratch_;
};

}  // namespace dbsm::place

#endif  // DBSM_PLACE_GRANULE_STORE_HPP
