#include "place/placement.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dbsm::place {

namespace {
/// splitmix64 finalizer — the same deterministic mixing discipline the
/// sharded certifier uses (never std::hash, whose layout may differ
/// between standard libraries and would break cross-build determinism).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

const char* strategy_name(strategy s) {
  switch (s) {
    case strategy::full: return "full";
    case strategy::round_robin: return "rr";
    case strategy::hashed: return "hash";
  }
  return "?";
}

placement placement::full(unsigned sites) {
  return placement(strategy::full, sites, sites);
}

placement placement::round_robin(unsigned sites, unsigned degree) {
  DBSM_CHECK(sites >= 1 && degree >= 1);
  return placement(strategy::round_robin, sites, std::min(degree, sites));
}

placement placement::hashed(unsigned sites, unsigned degree) {
  DBSM_CHECK(sites >= 1 && degree >= 1);
  return placement(strategy::hashed, sites, std::min(degree, sites));
}

placement placement::make(const spec& s, unsigned sites) {
  if (s.kind == strategy::full || s.degree == 0 || s.degree >= sites)
    return full(sites);
  if (s.kind == strategy::round_robin) return round_robin(sites, s.degree);
  return hashed(sites, s.degree);
}

unsigned placement::base_of(db::item_id granule) const {
  DBSM_CHECK(sites_ >= 1);
  if (kind_ == strategy::round_robin) {
    // Rotate by granule coordinates: consecutive granules (e.g. the KV
    // workload's consecutive key buckets, or TPC-C's warehouses) land on
    // consecutive bases, spreading any hot region across the ring.
    const std::uint64_t coord = db::item_table(granule) +
                                db::item_warehouse(granule) +
                                db::item_district(granule);
    return static_cast<unsigned>(coord % sites_);
  }
  return static_cast<unsigned>(mix(granule) % sites_);
}

unsigned placement::primary(db::item_id id) const {
  if (is_full()) return 0;
  return base_of(db::granule_of(id));
}

bool placement::stores(unsigned site, db::item_id id) const {
  if (is_full()) return true;
  const unsigned base = base_of(db::granule_of(id));
  return (site + sites_ - base) % sites_ < degree_;
}

void placement::replica_set(db::item_id id,
                            std::vector<unsigned>& out) const {
  out.clear();
  if (is_full()) {
    for (unsigned s = 0; s < sites_; ++s) out.push_back(s);
    return;
  }
  const unsigned base = base_of(db::granule_of(id));
  for (unsigned k = 0; k < degree_; ++k)
    out.push_back((base + k) % sites_);
  std::sort(out.begin(), out.end());
}

void placement::slice(const std::vector<db::item_id>& write_set,
                      unsigned site, std::vector<db::item_id>& out) const {
  out.clear();
  if (is_full()) {
    out = write_set;
    return;
  }
  out.reserve(write_set.size());
  for (const db::item_id it : write_set)
    if (stores(site, it)) out.push_back(it);
}

bool placement::interested(unsigned site,
                           const std::vector<db::item_id>& ws) const {
  if (is_full()) return true;
  for (const db::item_id it : ws)
    if (stores(site, it)) return true;
  return false;
}

unsigned placement::interested_sites(
    const std::vector<db::item_id>& ws) const {
  if (is_full()) return sites_;
  unsigned n = 0;
  for (unsigned s = 0; s < sites_; ++s) n += interested(s, ws);
  return n;
}

void placement::snapshot(util::buffer_writer& w) const {
  w.put_u8(1);  // format version
  w.put_u8(static_cast<std::uint8_t>(kind_));
  w.put_u32(sites_);
  w.put_u32(degree_);
}

placement placement::restore(util::buffer_reader& r) {
  const std::uint8_t ver = r.get_u8();
  DBSM_CHECK_MSG(ver == 1, "unknown placement snapshot version "
                               << static_cast<int>(ver));
  const auto kind = static_cast<strategy>(r.get_u8());
  const unsigned sites = r.get_u32();
  const unsigned degree = r.get_u32();
  return placement(kind, sites, degree);
}

std::string placement::describe() const {
  if (is_full()) return "full";
  return std::string(strategy_name(kind_)) + " k=" +
         std::to_string(degree_) + " of " + std::to_string(sites_);
}

}  // namespace dbsm::place
