// Composable fault-scenario API (§5.3). "Faults are injected by
// intercepting calls in and out of the runtime as well as by manipulating
// model state."
//
// A `fault` is an object that arms itself against the system's injection
// points (the network medium, the per-site env bridges, the cluster crash
// hook) and — for transient faults — disarms again, restoring nominal
// behavior. A `scenario` places faults on the simulator timeline: each
// fault carries a target-site selection and an optional [start, stop)
// window, so faults can begin mid-run, end, overlap, and compose.
//
// Composition rule: faults of *different* kinds overlap freely (they act
// on distinct injection knobs). Each knob, however, is single-slot — one
// rx-loss model, one drift rate, one jitter bound per site, one state per
// link — so two faults of the same kind whose windows overlap on a shared
// target are last-writer-wins, and the earlier window's disarm resets the
// knob to nominal. Give same-kind faults disjoint windows or disjoint
// targets.
//
// Concrete fault types live in fault_types.hpp, the paper-compatible flat
// plan + adapter in fault_plan.hpp, and the named scenario library in
// scenarios.hpp.
#ifndef DBSM_FAULT_FAULT_HPP
#define DBSM_FAULT_FAULT_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace dbsm::csrt {
class sim_env;
}
namespace dbsm::net {
class medium;
}

namespace dbsm::fault {

/// An explicit set of site indexes a fault acts on.
using site_set = std::vector<unsigned>;

/// Target-site selection, resolved against the system size at arm time.
/// Defaults to every site; `odd()` / `even()` express the relative-drift
/// targeting of the paper (§5.3: clocks drift against each other).
class site_selector {
 public:
  site_selector() = default;
  site_selector(site_set sites)  // NOLINT: implicit from an explicit set
      : kind_(kind::explicit_set), sites_(std::move(sites)) {}
  site_selector(std::initializer_list<unsigned> sites)
      : kind_(kind::explicit_set), sites_(sites) {}

  static site_selector all() { return site_selector(); }
  static site_selector odd() { return site_selector(kind::odd); }
  static site_selector even() { return site_selector(kind::even); }

  /// The concrete site list for a system of `sites` sites.
  site_set resolve(unsigned sites) const;

 private:
  enum class kind { all, odd, even, explicit_set };
  explicit site_selector(kind k) : kind_(k) {}

  kind kind_ = kind::all;
  site_set sites_;
};

/// The injection surfaces of one running system, bundled so a fault can be
/// written once and armed against any experiment.
struct injection_points {
  net::medium* net = nullptr;
  /// Per-site env bridges, indexed by site.
  std::vector<csrt::sim_env*> envs;
  /// Crashes a site (network isolation + replica halt + client stop).
  std::function<void(unsigned site)> crash;
  /// Brings a crashed or partition-excluded site back (restart + state
  /// transfer + view merge). Wired only when the experiment enables
  /// membership recovery; recover_fault checks.
  std::function<void(unsigned site)> recover;

  unsigned sites() const { return static_cast<unsigned>(envs.size()); }
};

/// One injectable fault. arm() activates it; disarm() ends a fault window
/// and restores nominal behavior (one-shot faults like crashes ignore it).
class fault {
 public:
  virtual ~fault() = default;
  virtual std::string name() const = 0;
  virtual void arm(injection_points& pts) = 0;
  virtual void disarm(injection_points& pts);
};

using fault_ptr = std::shared_ptr<fault>;

/// A fault placed on the scenario timeline: active over [start, stop).
struct timed_fault {
  fault_ptr f;
  sim_time start = 0;
  sim_time stop = time_never;
};

/// A named, composable fault schedule. Faults whose window has already
/// opened when the scenario is installed are armed immediately; the rest
/// arm and disarm off the simulator timeline.
class scenario {
 public:
  scenario() = default;
  explicit scenario(std::string name) : name_(std::move(name)) {}

  /// Adds a fault active for the whole run (or from `start` / over
  /// [start, stop)). Returns *this for chaining.
  scenario& add(fault_ptr f, sim_time start = 0, sim_time stop = time_never);

  const std::string& name() const { return name_; }
  scenario& set_name(std::string name) {
    name_ = std::move(name);
    return *this;
  }
  bool empty() const { return events_.empty(); }
  const std::vector<timed_fault>& events() const { return events_; }

  /// Installs every fault against the injection points: arms open windows
  /// synchronously, schedules future arm/disarm events. The bundle is kept
  /// alive by the scheduled events.
  void install(sim::simulator& sim, injection_points pts) const;

 private:
  std::string name_;
  std::vector<timed_fault> events_;
};

}  // namespace dbsm::fault

#endif  // DBSM_FAULT_FAULT_HPP
