#include "fault/fault_types.hpp"

#include <algorithm>
#include <sstream>

#include "csrt/sim_env.hpp"
#include "net/medium.hpp"
#include "util/check.hpp"

namespace dbsm::fault {

namespace {

std::string fmt_sites_label(const char* what, const site_set& sites) {
  std::ostringstream os;
  os << what << " @sites{";
  for (std::size_t i = 0; i < sites.size(); ++i)
    os << (i ? "," : "") << sites[i];
  os << "}";
  return os.str();
}

/// Every (a, b) cross pair between the two sides.
void for_each_cross_link(const site_set& a, const site_set& b,
                         const std::function<void(unsigned, unsigned)>& fn) {
  for (unsigned x : a)
    for (unsigned y : b) fn(x, y);
}

/// Resolves the (A, B) sides of a group fault: an empty B means "every
/// site not in A"; sides must be in range and disjoint.
std::pair<site_set, site_set> resolve_sides(const site_set& side_a,
                                            const site_set& side_b,
                                            unsigned sites) {
  DBSM_CHECK_MSG(!side_a.empty(), "group fault needs a non-empty side");
  site_set a = side_a;
  site_set b = side_b;
  if (b.empty()) {
    for (unsigned i = 0; i < sites; ++i)
      if (std::find(a.begin(), a.end(), i) == a.end()) b.push_back(i);
  }
  for (unsigned x : a) {
    DBSM_CHECK(x < sites);
    DBSM_CHECK_MSG(std::find(b.begin(), b.end(), x) == b.end(),
                   "group fault sides overlap at site " << x);
  }
  for (unsigned y : b) DBSM_CHECK(y < sites);
  return {std::move(a), std::move(b)};
}

}  // namespace

// ---------------------------------------------------------------- loss

fault_ptr loss_fault::random(double probability, site_selector targets) {
  std::ostringstream os;
  os << "random_loss(" << probability << ")";
  return std::make_shared<loss_fault>(
      os.str(), std::move(targets),
      [probability] { return net::random_loss(probability); });
}

fault_ptr loss_fault::bursty(double avg_loss_rate, double mean_burst_len,
                             site_selector targets) {
  std::ostringstream os;
  os << "bursty_loss(" << avg_loss_rate << ",len" << mean_burst_len << ")";
  return std::make_shared<loss_fault>(
      os.str(), std::move(targets), [avg_loss_rate, mean_burst_len] {
        return net::bursty_loss(avg_loss_rate, mean_burst_len);
      });
}

void loss_fault::arm(injection_points& pts) {
  DBSM_CHECK(pts.net != nullptr);
  // Loss is injected independently at each participant (§5.3): one fresh
  // model per target receiver.
  for (unsigned site : targets_.resolve(pts.sites()))
    pts.net->set_rx_loss(site, make_());
}

void loss_fault::disarm(injection_points& pts) {
  DBSM_CHECK(pts.net != nullptr);
  for (unsigned site : targets_.resolve(pts.sites()))
    pts.net->set_rx_loss(site, nullptr);
}

// --------------------------------------------------------------- timing

std::string clock_drift_fault::name() const {
  std::ostringstream os;
  os << "clock_drift(" << rate_ << ")";
  return os.str();
}

void clock_drift_fault::arm(injection_points& pts) {
  for (unsigned site : targets_.resolve(pts.sites()))
    pts.envs.at(site)->set_clock_drift(rate_);
}

void clock_drift_fault::disarm(injection_points& pts) {
  for (unsigned site : targets_.resolve(pts.sites()))
    pts.envs.at(site)->set_clock_drift(0.0);
}

std::string sched_latency_fault::name() const {
  std::ostringstream os;
  os << "sched_latency(<=" << to_millis(max_) << "ms)";
  return os.str();
}

void sched_latency_fault::arm(injection_points& pts) {
  for (unsigned site : targets_.resolve(pts.sites()))
    pts.envs.at(site)->set_timer_jitter(max_);
}

void sched_latency_fault::disarm(injection_points& pts) {
  for (unsigned site : targets_.resolve(pts.sites()))
    pts.envs.at(site)->set_timer_jitter(0);
}

// --------------------------------------------------------- crash/recover

std::string crash_fault::name() const { return "crash"; }

void crash_fault::arm(injection_points& pts) {
  DBSM_CHECK_MSG(pts.crash, "no crash hook in the injection points");
  for (unsigned site : targets_.resolve(pts.sites())) pts.crash(site);
}

std::string recover_fault::name() const { return "recover"; }

void recover_fault::arm(injection_points& pts) {
  DBSM_CHECK_MSG(pts.recover,
                 "no recover hook in the injection points (enable "
                 "membership recovery in the experiment config)");
  for (unsigned site : targets_.resolve(pts.sites())) pts.recover(site);
}

// ------------------------------------------------------- partition/delay

std::pair<site_set, site_set> partition_fault::sides(unsigned sites) const {
  return resolve_sides(side_a_, side_b_, sites);
}

fault_ptr partition_fault::one_way(site_set from, site_set to) {
  auto f = std::make_shared<partition_fault>(std::move(from), std::move(to));
  f->one_way_ = true;
  return f;
}

std::string partition_fault::name() const {
  return fmt_sites_label(one_way_ ? "partition_oneway" : "partition",
                         side_a_);
}

void partition_fault::apply(injection_points& pts, bool cut) {
  DBSM_CHECK(pts.net != nullptr);
  const auto [a, b] = sides(pts.sites());
  for_each_cross_link(a, b, [&](unsigned x, unsigned y) {
    if (one_way_) {
      pts.net->set_link_cut_oneway(x, y, cut);
    } else {
      pts.net->set_link_cut(x, y, cut);
    }
  });
}

void partition_fault::arm(injection_points& pts) { apply(pts, true); }

void partition_fault::disarm(injection_points& pts) { apply(pts, false); }

fault_ptr link_delay_fault::one_way(sim_duration extra, site_set from,
                                    site_set to) {
  auto f = std::make_shared<link_delay_fault>(extra, std::move(from),
                                              std::move(to));
  f->one_way_ = true;
  return f;
}

std::string link_delay_fault::name() const {
  std::ostringstream os;
  os << fmt_sites_label(one_way_ ? "link_delay_oneway" : "link_delay",
                        side_a_)
     << "+" << to_millis(extra_) << "ms";
  return os.str();
}

void link_delay_fault::apply(injection_points& pts, sim_duration extra) {
  DBSM_CHECK(pts.net != nullptr);
  const auto [a, b] = resolve_sides(side_a_, side_b_, pts.sites());
  for_each_cross_link(a, b, [&](unsigned x, unsigned y) {
    if (one_way_) {
      pts.net->set_link_extra_delay_oneway(x, y, extra);
    } else {
      pts.net->set_link_extra_delay(x, y, extra);
    }
  });
}

void link_delay_fault::arm(injection_points& pts) { apply(pts, extra_); }

void link_delay_fault::disarm(injection_points& pts) { apply(pts, 0); }

}  // namespace dbsm::fault
