#include "fault/fault_plan.hpp"

#include "net/loss_model.hpp"
#include "util/check.hpp"

namespace dbsm::fault {

void apply_loss(net::medium& net, node_id site, const plan& p) {
  DBSM_CHECK_MSG(!(p.random_loss > 0 && p.bursty_loss > 0),
                 "choose one loss model per run, as the paper does");
  if (p.random_loss > 0) {
    // Loss is injected independently at each participant (§5.3).
    net.set_rx_loss(site, net::random_loss(p.random_loss));
  } else if (p.bursty_loss > 0) {
    net.set_rx_loss(site, net::bursty_loss(p.bursty_loss, p.burst_len));
  }
}

void apply_timing(csrt::sim_env& env, unsigned site_index, const plan& p) {
  if (p.clock_drift != 0 && (site_index % 2) == 1) {
    env.set_clock_drift(p.clock_drift);
  }
  if (p.sched_latency_max > 0) {
    env.set_timer_jitter(p.sched_latency_max);
  }
}

}  // namespace dbsm::fault
