#include "fault/fault_plan.hpp"

#include "fault/fault_types.hpp"
#include "util/check.hpp"

namespace dbsm::fault {

scenario from_plan(const plan& p, std::string name) {
  DBSM_CHECK_MSG(!(p.random_loss > 0 && p.bursty_loss > 0),
                 "choose one loss model per run, as the paper does");
  scenario s(std::move(name));
  if (p.random_loss > 0) {
    s.add(loss_fault::random(p.random_loss));
  } else if (p.bursty_loss > 0) {
    s.add(loss_fault::bursty(p.bursty_loss, p.burst_len));
  }
  if (p.clock_drift != 0) {
    s.add(std::make_shared<clock_drift_fault>(p.clock_drift,
                                              site_selector::odd()));
  }
  if (p.sched_latency_max > 0) {
    s.add(std::make_shared<sched_latency_fault>(p.sched_latency_max,
                                                site_selector::all()));
  }
  for (const crash_spec& c : p.crashes) {
    s.add(std::make_shared<crash_fault>(site_selector{site_set{c.site}}),
          c.at);
  }
  return s;
}

}  // namespace dbsm::fault
