// The paper's flat fault plan (§5.3) and its adapter onto the scenario
// API (fault.hpp).
//
// `plan` describes the five whole-run fault types exactly as the paper
// injects them:
//   clock drift        — timers postponed, measured durations shrunk,
//                        applied to odd-numbered sites so clocks drift
//                        relative to each other;
//   scheduling latency — random delay added to events scheduled ahead,
//                        at all sites;
//   random loss        — per-message drop at reception, all sites;
//   bursty loss        — alternating good/bad periods (congestion);
//   crash              — a node stops at a set time.
//
// `from_plan` converts a plan into a `fault::scenario` whose execution is
// event-for-event identical to the historical static application, so the
// paper's campaigns keep reproducing their published shapes. New code
// should compose `fault::scenario`s directly (fault_types.hpp,
// scenarios.hpp) — targets and [start, stop) windows are inexpressible in
// the flat plan.
#ifndef DBSM_FAULT_FAULT_PLAN_HPP
#define DBSM_FAULT_FAULT_PLAN_HPP

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "util/types.hpp"

namespace dbsm::fault {

struct crash_spec {
  unsigned site = 0;
  sim_duration at = 0;
};

struct plan {
  /// Random loss: each message dropped at reception with this probability.
  double random_loss = 0.0;
  /// Bursty loss: average loss rate / mean burst length (messages).
  double bursty_loss = 0.0;
  double burst_len = 5.0;
  std::vector<crash_spec> crashes;
  /// Clock drift rate, applied to odd-numbered sites so clocks drift
  /// relative to each other.
  double clock_drift = 0.0;
  /// Scheduling latency: uniform random delay in [0, max] added to every
  /// timer armed by protocol code, at all sites.
  sim_duration sched_latency_max = 0;

  bool any() const {
    return random_loss > 0 || bursty_loss > 0 || !crashes.empty() ||
           clock_drift != 0 || sched_latency_max > 0;
  }
};

/// Adapts a flat plan to the scenario API: loss and timing faults become
/// whole-run faults (drift targeting odd sites, as the paper does), each
/// crash a one-shot fault at its set time.
scenario from_plan(const plan& p, std::string name = "plan");

}  // namespace dbsm::fault

#endif  // DBSM_FAULT_FAULT_PLAN_HPP
