// Fault injection plans (§5.3). "Faults are injected by intercepting calls
// in and out of the runtime as well as by manipulating model state."
//
// Five fault types, as in the paper:
//   clock drift        — timers postponed, measured durations shrunk;
//   scheduling latency — random delay added to events scheduled ahead;
//   random loss        — per-message drop at reception;
//   bursty loss        — alternating good/bad periods (congestion);
//   crash              — node stops at a set time.
//
// The helpers below act on the injection points (network medium, env
// bridge); the experiment harness applies them per site and schedules
// crashes on the cluster.
#ifndef DBSM_FAULT_FAULT_PLAN_HPP
#define DBSM_FAULT_FAULT_PLAN_HPP

#include <vector>

#include "csrt/sim_env.hpp"
#include "net/medium.hpp"
#include "util/types.hpp"

namespace dbsm::fault {

struct crash_spec {
  unsigned site = 0;
  sim_duration at = 0;
};

struct plan {
  /// Random loss: each message dropped at reception with this probability.
  double random_loss = 0.0;
  /// Bursty loss: average loss rate / mean burst length (messages).
  double bursty_loss = 0.0;
  double burst_len = 5.0;
  std::vector<crash_spec> crashes;
  /// Clock drift rate, applied to odd-numbered sites so clocks drift
  /// relative to each other.
  double clock_drift = 0.0;
  /// Scheduling latency: uniform random delay in [0, max] added to every
  /// timer armed by protocol code, at all sites.
  sim_duration sched_latency_max = 0;

  bool any() const {
    return random_loss > 0 || bursty_loss > 0 || !crashes.empty() ||
           clock_drift != 0 || sched_latency_max > 0;
  }
};

/// Installs the plan's loss model at one receiving host.
void apply_loss(net::medium& net, node_id site, const plan& p);

/// Installs the plan's timing faults on one site's env bridge.
void apply_timing(csrt::sim_env& env, unsigned site_index, const plan& p);

}  // namespace dbsm::fault

#endif  // DBSM_FAULT_FAULT_PLAN_HPP
