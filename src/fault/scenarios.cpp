#include "fault/scenarios.hpp"

#include <cstring>

#include "fault/fault_plan.hpp"
#include "fault/fault_types.hpp"
#include "util/check.hpp"

namespace dbsm::fault::scenarios {

scenario no_faults(const params&) { return scenario("no_faults"); }

scenario clock_drift(const params&) {
  plan p;
  p.clock_drift = 0.10;
  return from_plan(p, "clock_drift");
}

scenario sched_latency(const params&) {
  plan p;
  p.sched_latency_max = milliseconds(5);
  return from_plan(p, "sched_latency");
}

scenario random_loss(const params&) {
  plan p;
  p.random_loss = 0.05;
  return from_plan(p, "random_loss");
}

scenario bursty_loss(const params&) {
  plan p;
  p.bursty_loss = 0.05;
  p.burst_len = 5;
  return from_plan(p, "bursty_loss");
}

scenario crash(const params& p) {
  DBSM_CHECK(p.sites >= 2);
  plan pl;
  pl.crashes.push_back({p.sites - 1, p.onset});
  return from_plan(pl, "crash");
}

scenario partition_minority(const params& p) {
  DBSM_CHECK(p.sites >= 3);
  scenario s("partition_minority");
  s.add(std::make_shared<partition_fault>(site_set{p.sites - 1}), p.onset,
        p.onset + 4 * p.exclusion_timeout);
  return s;
}

scenario flaky_switch(const params& p) {
  scenario s("flaky_switch");
  for (int k = 0; k < 6; ++k) {
    const sim_time start = p.onset + k * seconds(4);
    s.add(loss_fault::random(0.25), start, start + seconds(1));
  }
  return s;
}

scenario slow_replica(const params& p) {
  DBSM_CHECK(p.sites >= 2);
  scenario s("slow_replica");
  s.add(std::make_shared<sched_latency_fault>(
      milliseconds(20), site_selector{site_set{p.sites - 1}}));
  return s;
}

scenario cascading_crashes(const params& p) {
  DBSM_CHECK_MSG(p.sites >= 5,
                 "cascading_crashes kills two sites; a majority must "
                 "survive both");
  scenario s("cascading_crashes");
  s.add(std::make_shared<crash_fault>(site_selector{site_set{p.sites - 1}}),
        p.onset);
  s.add(std::make_shared<crash_fault>(site_selector{site_set{p.sites - 2}}),
        p.onset + seconds(15));
  return s;
}

scenario partition_cut_heal_rejoin(const params& p) {
  DBSM_CHECK(p.sites >= 3);
  const unsigned victim = p.sites - 1;
  scenario s("partition_cut_heal_rejoin");
  const sim_time heal = p.onset + 4 * p.exclusion_timeout;
  s.add(std::make_shared<partition_fault>(site_set{victim}), p.onset, heal);
  // Recover once the heal has settled: restart, state transfer, rejoin.
  s.add(std::make_shared<recover_fault>(site_selector{site_set{victim}}),
        heal + seconds(1));
  return s;
}

scenario crash_restart(const params& p) {
  DBSM_CHECK(p.sites >= 3);
  const unsigned victim = p.sites - 1;
  scenario s("crash_restart");
  s.add(std::make_shared<crash_fault>(site_selector{site_set{victim}}),
        p.onset);
  s.add(std::make_shared<recover_fault>(site_selector{site_set{victim}}),
        p.onset + seconds(10));
  return s;
}

scenario rolling_restarts(const params& p) {
  DBSM_CHECK_MSG(p.sites >= 3, "rolling restarts need a surviving majority");
  scenario s("rolling_restarts");
  for (unsigned k = 0; k < p.sites; ++k) {
    const sim_time down = p.onset + k * seconds(20);
    s.add(std::make_shared<crash_fault>(site_selector{site_set{k}}), down);
    s.add(std::make_shared<recover_fault>(site_selector{site_set{k}}),
          down + seconds(8));
  }
  return s;
}

scenario partial_k2_crash_rejoin(const params& p) {
  DBSM_CHECK_MSG(p.sites >= 4, "k=2 partial placement needs a strict "
                               "subset and a surviving majority");
  const unsigned victim = p.sites - 1;
  scenario s("partial_k2_crash_rejoin");
  s.add(std::make_shared<crash_fault>(site_selector{site_set{victim}}),
        p.onset);
  s.add(std::make_shared<recover_fault>(site_selector{site_set{victim}}),
        p.onset + seconds(10));
  return s;
}

scenario batch_boundary_crash(const params& p) {
  DBSM_CHECK(p.sites >= 3);
  scenario s("batch_boundary_crash");
  // Crash mid-batch, between sequence and stability: from onset the
  // sequencer's (site 0's) outbound datagrams are delayed far past its
  // crash point, so batch assignment records it mints in the window are
  // sequenced locally but still in flight — covered by no stability
  // round — when it dies. The survivors' view-change flush must cut
  // through the half-propagated batches deterministically: each record
  // (with the payloads it orders) lands within the cut at every survivor
  // or is dropped at every survivor, never split. Also meaningful with
  // batching off (it then cuts through half-propagated per-payload
  // assignment runs), so the scenario guards the serial path too.
  const sim_duration window = p.exclusion_timeout / 2;
  s.add(link_delay_fault::one_way(4 * p.exclusion_timeout, site_set{0}),
        p.onset, p.onset + window);
  s.add(std::make_shared<crash_fault>(site_selector{site_set{0}}),
        p.onset + window / 2);
  return s;
}

scenario token_holder_crash(const params& p) {
  DBSM_CHECK(p.sites >= 3);
  scenario s("token_holder_crash");
  // The batch_boundary_crash shape aimed at the rotating token: site 1 (a
  // non-lead member the token visits every circulation) gets its outbound
  // datagrams delayed far past its crash point, then dies mid-window. Its
  // last token pass and any mint records are in flight — no retransmission
  // can finish the hop, so ordering stalls until the failure detector
  // forces a view change, the flush cuts through the half-propagated
  // mints, and the surviving lead regenerates the token. Site 0 survives,
  // so the view-change coordinator is unaffected by the fault.
  const sim_duration window = p.exclusion_timeout / 2;
  s.add(link_delay_fault::one_way(4 * p.exclusion_timeout, site_set{1}),
        p.onset, p.onset + window);
  s.add(std::make_shared<crash_fault>(site_selector{site_set{1}}),
        p.onset + window / 2);
  return s;
}

scenario partition_lease_window(const params& p) {
  DBSM_CHECK(p.sites >= 3);
  const unsigned victim = p.sites - 1;
  scenario s("partition_lease_window");
  // Three short blips, each under the suspicion timeout: no failure
  // detector fires and no view changes, so the victim's lease stays held
  // while each cut freezes its uniform watermark mid-stream — fast reads
  // keep serving the frozen (still agreed) snapshot and must resume
  // advancing after each heal. The race is lease validity vs watermark
  // staleness, checked read-by-read by the read_snapshot monitor.
  for (int k = 0; k < 3; ++k) {
    const sim_time start = p.onset + k * (4 * p.exclusion_timeout);
    s.add(std::make_shared<partition_fault>(site_set{victim}), start,
          start + p.exclusion_timeout / 2);
  }
  return s;
}

scenario rejoin_stale_reads(const params& p) {
  DBSM_CHECK(p.sites >= 3);
  const unsigned victim = p.sites - 1;
  scenario s("rejoin_stale_reads");
  // The partition_cut_heal_rejoin shape with a post-rejoin blip: the
  // victim rides out a full cut (snapshot frozen at its last uniform
  // watermark while the majority commits on), rejoins through state
  // transfer, then is briefly cut again — the read path must fall back
  // during both windows and never serve the stale pre-rejoin snapshot as
  // current.
  const sim_time heal = p.onset + 4 * p.exclusion_timeout;
  s.add(std::make_shared<partition_fault>(site_set{victim}), p.onset, heal);
  s.add(std::make_shared<recover_fault>(site_selector{site_set{victim}}),
        heal + seconds(1));
  const sim_time blip = heal + seconds(8);
  s.add(std::make_shared<partition_fault>(site_set{victim}), blip,
        blip + p.exclusion_timeout / 2);
  return s;
}

const std::vector<catalog_entry>& catalog() {
  static const std::vector<catalog_entry> entries = {
      {"no_faults", "fault-free baseline", 1, true, &no_faults, false},
      {"clock_drift", "10% drift on odd sites", 2, true, &clock_drift,
       false},
      {"sched_latency", "<=5ms timer delay, all sites", 1, true,
       &sched_latency, false},
      {"random_loss", "5% per-message loss", 2, true, &random_loss, false},
      {"bursty_loss", "5% loss in bursts (len 5)", 2, true, &bursty_loss,
       false},
      {"crash", "last site crashes at onset", 3, true, &crash, false},
      {"partition_minority", "cut last site, heal after exclusion", 3, true,
       &partition_minority, false},
      {"flaky_switch", "repeating 1s bursts of 25% loss", 2, false,
       &flaky_switch, false},
      {"slow_replica", "sustained 20ms sched latency on one site", 2, true,
       &slow_replica, false},
      {"cascading_crashes", "two crashes 15s apart", 5, false,
       &cascading_crashes, false},
      {"partition_cut_heal_rejoin",
       "cut last site, heal, rejoin via state transfer", 3, false,
       &partition_cut_heal_rejoin, true},
      {"crash_restart", "crash last site, restart + rejoin 10s later", 3,
       false, &crash_restart, true},
      {"rolling_restarts", "restart every site in turn (rolling upgrade)",
       3, false, &rolling_restarts, true},
      {"partial_k2_crash_rejoin",
       "k=2 placement: crash last site, placement-filtered rejoin", 4,
       false, &partial_k2_crash_rejoin, true, 2},
      {"batch_boundary_crash",
       "delay sequencer egress, crash it mid-batch before stability", 3,
       false, &batch_boundary_crash, false},
      {"token_holder_crash",
       "rotating token: delay a holder's egress, crash it mid-hop", 3,
       false, &token_holder_crash, false, 0, true},
      {"partition_lease_window",
       "sub-exclusion partition blips during the read-lease window", 3,
       false, &partition_lease_window, false},
      {"rejoin_stale_reads",
       "cut/heal/rejoin, then a blip: stale snapshot must not serve", 3,
       false, &rejoin_stale_reads, true},
  };
  return entries;
}

const catalog_entry* find(std::string_view name) {
  for (const catalog_entry& e : catalog())
    if (name == e.name) return &e;
  return nullptr;
}

}  // namespace dbsm::fault::scenarios
