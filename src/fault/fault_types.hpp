// The concrete fault library (§5.3 plus the fault families the
// dependability literature exercises beyond the paper):
//
//   loss_fault          — per-message drop at reception (random or bursty),
//                         windowable for transient loss bursts;
//   clock_drift_fault   — timers postponed, measured durations shrunk;
//   sched_latency_fault — random delay added to every timer armed;
//   crash_fault         — crash-stop of the target sites (one-shot);
//   partition_fault     — symmetric link cut between two host groups,
//                         healed at window end;
//   link_delay_fault    — extra one-way delay on every cross-group link
//                         (slow path / degraded switch).
//
// Every fault takes a target-site selection; network group faults take the
// two sides explicitly (an empty second side means "everyone else").
#ifndef DBSM_FAULT_FAULT_TYPES_HPP
#define DBSM_FAULT_FAULT_TYPES_HPP

#include <memory>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "net/loss_model.hpp"

namespace dbsm::fault {

/// Installs a loss model at each target receiver for the fault window.
/// A fresh model is built per arm so repeated windows (and repeated runs
/// sharing one scenario object) start from identical model state.
class loss_fault final : public fault {
 public:
  using model_factory = std::function<std::shared_ptr<net::loss_model>()>;

  loss_fault(std::string label, site_selector targets, model_factory make)
      : label_(std::move(label)), targets_(std::move(targets)),
        make_(std::move(make)) {}

  /// "Random loss: each message is discarded upon reception with the
  /// specified probability."
  static fault_ptr random(double probability,
                          site_selector targets = site_selector::all());
  /// "Bursty loss: alternate periods in which messages are received or
  /// discarded."
  static fault_ptr bursty(double avg_loss_rate, double mean_burst_len,
                          site_selector targets = site_selector::all());

  std::string name() const override { return label_; }
  void arm(injection_points& pts) override;
  void disarm(injection_points& pts) override;

 private:
  std::string label_;
  site_selector targets_;
  model_factory make_;
};

/// Clock drift on the target sites (the paper drifts odd-numbered sites so
/// clocks drift relative to each other — pass site_selector::odd()).
class clock_drift_fault final : public fault {
 public:
  clock_drift_fault(double rate, site_selector targets)
      : rate_(rate), targets_(std::move(targets)) {}

  std::string name() const override;
  void arm(injection_points& pts) override;
  void disarm(injection_points& pts) override;

 private:
  double rate_;
  site_selector targets_;
};

/// Scheduling latency: uniform random delay in [0, max] added to every
/// timer armed by protocol code at the target sites.
class sched_latency_fault final : public fault {
 public:
  sched_latency_fault(sim_duration max, site_selector targets)
      : max_(max), targets_(std::move(targets)) {}

  std::string name() const override;
  void arm(injection_points& pts) override;
  void disarm(injection_points& pts) override;

 private:
  sim_duration max_;
  site_selector targets_;
};

/// Crash-stop of the target sites at window start. One-shot: disarm is a
/// no-op — the complementary recover_fault (requires an experiment with
/// membership recovery enabled) brings a site back.
class crash_fault final : public fault {
 public:
  explicit crash_fault(site_selector targets) : targets_(std::move(targets)) {}

  std::string name() const override;
  void arm(injection_points& pts) override;

 private:
  site_selector targets_;
};

/// Recovery of the target sites at window start (one-shot): each site
/// restarts, obtains a state transfer from the primary partition, and is
/// merged back into the view. Requires injection_points.recover (i.e. an
/// experiment with enable_recovery set).
class recover_fault final : public fault {
 public:
  explicit recover_fault(site_selector targets)
      : targets_(std::move(targets)) {}

  std::string name() const override;
  void arm(injection_points& pts) override;

 private:
  site_selector targets_;
};

/// Network partition: cuts every link between side A and side B for the
/// fault window, then heals. An empty side B means "every site not in A".
/// In-flight datagrams crossing a cut link at reception time are dropped.
/// The one_way variant cuts only the A→B direction (B's traffic still
/// reaches A), exercising asymmetric failure-detector suspicion.
class partition_fault final : public fault {
 public:
  explicit partition_fault(site_set side_a, site_set side_b = {})
      : side_a_(std::move(side_a)), side_b_(std::move(side_b)) {}

  static fault_ptr one_way(site_set from, site_set to = {});

  std::string name() const override;
  void arm(injection_points& pts) override;
  void disarm(injection_points& pts) override;

 private:
  void apply(injection_points& pts, bool cut);
  /// The resolved (A, B) pair for this system size.
  std::pair<site_set, site_set> sides(unsigned sites) const;

  site_set side_a_;
  site_set side_b_;
  bool one_way_ = false;
};

/// Degraded path: extra one-way delay on every link between side A and
/// side B (empty side B = everyone else) for the fault window. The
/// one_way variant delays only datagrams travelling A→B.
class link_delay_fault final : public fault {
 public:
  link_delay_fault(sim_duration extra, site_set side_a, site_set side_b = {})
      : extra_(extra), side_a_(std::move(side_a)), side_b_(std::move(side_b)) {}

  static fault_ptr one_way(sim_duration extra, site_set from,
                           site_set to = {});

  std::string name() const override;
  void arm(injection_points& pts) override;
  void disarm(injection_points& pts) override;

 private:
  void apply(injection_points& pts, sim_duration extra);

  sim_duration extra_;
  site_set side_a_;
  site_set side_b_;
  bool one_way_ = false;
};

}  // namespace dbsm::fault

#endif  // DBSM_FAULT_FAULT_TYPES_HPP
