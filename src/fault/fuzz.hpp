// Deterministic fault-scenario fuzzer with shrinking.
//
// generate(seed) composes the fault library (fault_types.hpp) into a
// random timeline — loss windows, drift, scheduling latency, link delay,
// partitions (two-way and one-way), crashes, recoveries — as a plain-data
// scenario_spec: a pure function of the seed, so the same seed always
// yields the byte-identical scenario. run_spec() executes a spec under
// the online invariant monitors (check/); when a run fails, shrink()
// reduces the spec to a minimal timeline that still reproduces the
// failure, by (1) dropping whole events, (2) narrowing [start, stop)
// windows, (3) subsetting target sites — every candidate re-run under the
// monitors, within a bounded run budget. The result is always a
// "shrink-of" the original (is_shrink_of()): same seed, a subsequence of
// the events, windows nested in the originals, targets subsetted — so a
// shrunk spec serialized with save() replays the exact minimal case.
#ifndef DBSM_FAULT_FUZZ_HPP
#define DBSM_FAULT_FUZZ_HPP

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "gcs/config.hpp"

namespace dbsm::fault::fuzz {

/// The fault kinds the generator draws from (each maps onto one
/// fault_types.hpp constructor).
enum class event_kind : std::uint8_t {
  loss_random,    // param = drop probability
  loss_bursty,    // param = avg loss rate, param2 = mean burst length
  clock_drift,    // param = drift rate
  sched_latency,  // dur = max added timer delay
  link_delay,     // dur = extra one-way delay, targets vs side_b
  partition,      // targets cut from side_b (empty = rest), healed at stop
  partition_oneway,  // targets→side_b direction only
  crash,          // one-shot at start
  recover,        // one-shot at start (needs recovery-enabled run)
};

const char* kind_name(event_kind k);

/// One timeline entry, plain data so specs serialize and shrink
/// structurally. Windowed kinds are active over [start, stop); one-shot
/// kinds (crash, recover) fire at start.
struct event_spec {
  event_kind kind = event_kind::loss_random;
  site_set targets;  // side A for network-pair kinds
  site_set side_b;   // empty = "every other site"
  sim_time start = 0;
  sim_time stop = 0;
  double param = 0;
  double param2 = 0;
  sim_duration dur = 0;

  bool one_shot() const {
    return kind == event_kind::crash || kind == event_kind::recover;
  }
  bool operator==(const event_spec&) const = default;
};

/// A complete generated scenario: the seed it came from (which also seeds
/// the experiment it runs under), the system size, and the timeline.
struct scenario_spec {
  std::uint64_t seed = 0;
  unsigned sites = 3;
  std::vector<event_spec> events;

  /// Realizes the timeline as an installable fault scenario (note:
  /// `scenario` names the enclosing namespace's class, not this spec).
  scenario build() const;
  /// True when any event needs a recovery-enabled experiment.
  bool needs_recovery() const;

  bool operator==(const scenario_spec&) const = default;
};

struct config {
  unsigned sites = 3;
  unsigned clients = 24;
  /// Stop the run after this many client responses (0 = run to
  /// max_sim_time); keeps one fuzz case bounded.
  std::uint64_t target_responses = 220;
  sim_duration max_sim_time = seconds(120);
  /// Events per generated scenario: 1 ..= max_faults.
  unsigned max_faults = 4;
  /// Fault windows are placed within [0, horizon).
  sim_time horizon = seconds(40);
  /// Let the generator emit crash → recover sequences (runs get
  /// membership recovery enabled).
  bool allow_recovery = true;
  /// Deliberately broken build under test: disable the primary-partition
  /// rule (gcs::group_config::unsafe_no_primary_partition) so the
  /// monitors have a real split-brain to catch.
  bool break_primary_partition = false;
  /// Drive each run with a read-heavy KV mix (YCSB-B) and the read/ fast
  /// path enabled, racing fuzzed fault timelines against lease revocation
  /// under the read_snapshot monitor. Only run_spec() consults it, so
  /// generated timelines for a given (seed, cfg) are unchanged and
  /// existing corpus seeds stay byte-identical when it is off.
  bool read_fast_path = false;
  /// Batch atomic broadcast size for each run
  /// (gcs::group_config::batch_max; 1 keeps the serial per-payload
  /// path). Only run_spec() consults it — like read_fast_path, generated
  /// timelines for a given (seed, cfg) are unchanged, so the same corpus
  /// replays against the batched and the serial hot path.
  std::size_t batch_max = 1;
  /// Total-order protocol for each run (gcs::group_config::ordering).
  /// Only run_spec() consults it — generated timelines for a given
  /// (seed, cfg) are unchanged, so the same corpus replays against the
  /// fixed sequencer and the rotating token.
  gcs::ordering_kind ordering = gcs::ordering_kind::fixed_sequencer;
  /// Monitor configuration for each run.
  check::config checks;
  /// Maximum experiment re-runs shrink() may spend.
  unsigned shrink_budget = 96;
};

/// One fuzz case outcome. `ok` is the conjunction of the online monitors
/// and the off-line §5.3 check; `detail` carries the first violation.
struct run_result {
  bool ok = true;
  std::string detail;
  std::uint64_t committed = 0;
  std::uint64_t responses = 0;
  std::uint64_t violations = 0;

  bool operator==(const run_result&) const = default;
};

/// Generates the scenario for `seed` — a pure function of (seed, cfg).
scenario_spec generate(std::uint64_t seed, const config& cfg);

/// Runs a spec under the monitors (experiment seeded by spec.seed).
run_result run_spec(const scenario_spec& spec, const config& cfg);

/// Shrinks a failing spec to a minimal timeline that still fails, within
/// cfg.shrink_budget re-runs. Returns `spec` unchanged if it passes.
scenario_spec shrink(const scenario_spec& spec, const config& cfg);

/// True iff `shrunk` is a valid reduction of `original`: a subsequence of
/// its events with nested windows and subsetted targets.
bool is_shrink_of(const scenario_spec& shrunk, const scenario_spec& original);

/// Line-based text form, stable across runs (doubles round-trip exactly).
std::string serialize(const scenario_spec& spec);
std::optional<scenario_spec> parse(const std::string& text);

/// File round-trip for replaying shrunk cases (docs/REPRODUCING.md).
bool save(const scenario_spec& spec, const std::string& path);
std::optional<scenario_spec> load(const std::string& path);

}  // namespace dbsm::fault::fuzz

#endif  // DBSM_FAULT_FUZZ_HPP
