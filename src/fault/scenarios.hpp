// Named fault-scenario library: the paper's five §5.3 campaigns (built
// through the from_plan adapter so they reproduce the published shapes)
// plus the composed/timed scenarios the flat plan could not express.
//
// Each catalog entry is a factory over `params` (system size, fault onset,
// the GCS exclusion timeout) so one scenario definition scales to any
// experiment; `min_sites` tells the caller how many sites the scenario
// needs to be meaningful (e.g. cascading_crashes must leave a majority).
#ifndef DBSM_FAULT_SCENARIOS_HPP
#define DBSM_FAULT_SCENARIOS_HPP

#include <string_view>
#include <vector>

#include "fault/fault.hpp"

namespace dbsm::fault::scenarios {

/// Knobs shared by the named scenarios.
struct params {
  /// Sites in the experiment the scenario will be installed into.
  unsigned sites = 3;
  /// When the first timed fault strikes (whole-run faults ignore it).
  sim_time onset = seconds(30);
  /// The failure detector's suspicion timeout (gcs::group_config
  /// suspect_timeout): partition_minority heals a few multiples after it
  /// so the cut side is excluded before connectivity returns.
  sim_duration exclusion_timeout = milliseconds(300);
};

// --- the paper's five (§5.3), via the from_plan adapter ---
scenario no_faults(const params& p = {});
scenario clock_drift(const params& p = {});    // 10% drift, odd sites
scenario sched_latency(const params& p = {});  // <=5ms, all sites
scenario random_loss(const params& p = {});    // 5%
scenario bursty_loss(const params& p = {});    // 5%, mean burst 5
scenario crash(const params& p = {});          // last site at onset

// --- composed / timed scenarios beyond the flat plan ---
/// Cuts the highest site off the rest at onset, heals 4 exclusion
/// timeouts later: the majority excludes it and keeps committing, the
/// minority blocks (primary-partition rule) instead of split-braining.
scenario partition_minority(const params& p = {});
/// Repeating transient loss bursts (a flapping switch port): 25% random
/// loss for 1s, every 4s, six times from onset.
scenario flaky_switch(const params& p = {});
/// One chronically slow site: sustained scheduling latency (<=20ms) on
/// the highest site for the whole run.
scenario slow_replica(const params& p = {});
/// Two crashes 15s apart starting at onset, killing the two highest
/// sites; needs >= 5 sites so a majority survives both.
scenario cascading_crashes(const params& p = {});

// --- recovery scenarios (full cut/heal/rejoin cycles; these require the
// --- experiment to enable membership recovery) ---
/// The partition_minority shape completed: cut the highest site, heal
/// after it is excluded, then recover it — state transfer, replay, view
/// merge — so it commits new transactions alongside everyone else.
scenario partition_cut_heal_rejoin(const params& p = {});
/// Crash-stop the highest site at onset, restart it 10s later: the
/// classic kill-and-restart cycle over the crash path instead of a
/// partition.
scenario crash_restart(const params& p = {});
/// Restart every site in turn (crash, recover 8s later, next site 20s
/// after), sequencer included — a rolling upgrade with no full outage.
scenario rolling_restarts(const params& p = {});
/// The crash_restart shape run under a k=2 partial placement (the catalog
/// entry carries placement_degree = 2): the rejoining site's state
/// transfer ships only the granule slice it replicates, and the placement
/// monitor checks every post-rejoin apply. Needs >= 4 sites so "2 of N"
/// is a strict subset while a majority survives the crash.
scenario partial_k2_crash_rejoin(const params& p = {});

/// Crash mid-batch between sequence and stability: the sequencer's
/// outbound links are delayed from onset, then it crashes half a window
/// later — batch assignment records minted in the window are sequenced
/// but nowhere stable, and the survivors' flush must cut through them
/// deterministically (each record within the cut everywhere or dropped
/// everywhere). Exercises the serial per-payload path too.
scenario batch_boundary_crash(const params& p = {});

/// Rotating-token counterpart of batch_boundary_crash (the catalog entry
/// carries rotating_token = true): delay a non-lead site's egress from
/// onset, then crash it half a window later. The token regularly visits
/// the victim, so with high likelihood it dies holding (or having just
/// passed) the token with mint records still in flight — the passer's
/// retransmission cannot resurrect it and the view change must regenerate
/// the token while the flush cuts through the half-propagated mints.
scenario token_holder_crash(const params& p = {});

// --- read-path (lease) scenarios: exercise the read/ fast path's
// --- revocation races; meaningful with replica_cfg.read.path = fast ---
/// Three partition blips of the last site, each shorter than the
/// suspicion timeout: no view change fires, so the victim's lease stays
/// held while each cut freezes its uniform watermark — fast reads must
/// keep serving the frozen (still agreed) snapshot and resume advancing
/// after each heal.
scenario partition_lease_window(const params& p = {});
/// Full cut (suspicion revokes the victim's lease, the majority's view
/// change re-grants theirs), heal, rejoin via state transfer, then a
/// post-rejoin blip: the victim's pre-cut snapshot must never serve as
/// current. Requires membership recovery.
scenario rejoin_stale_reads(const params& p = {});

struct catalog_entry {
  const char* name;
  const char* description;
  /// Minimum system size for the scenario to be meaningful.
  unsigned min_sites;
  /// True for the scenarios the default fault_injection campaign runs.
  bool in_default_campaign;
  scenario (*make)(const params&);
  /// True when the scenario injects recover faults: the experiment must
  /// run with membership recovery enabled.
  bool needs_recovery = false;
  /// Non-zero when the scenario is defined over a partial placement: the
  /// runner must set experiment_config::placement to a k-of-N strategy of
  /// this degree (0 keeps the default full replication).
  unsigned placement_degree = 0;
  /// True when the scenario targets the rotating-token orderer: the
  /// runner must set gcs::group_config::ordering = rotating_token (the
  /// default campaign keeps fixed_sequencer, preserving its anchors).
  bool rotating_token = false;
};

/// Every named scenario, in campaign order.
const std::vector<catalog_entry>& catalog();

/// Looks a scenario up by name; nullptr if unknown.
const catalog_entry* find(std::string_view name);

}  // namespace dbsm::fault::scenarios

#endif  // DBSM_FAULT_SCENARIOS_HPP
