#include "fault/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "fault/fault_types.hpp"
#include "util/rng.hpp"
#include "workload/kv.hpp"

namespace dbsm::fault::fuzz {

namespace {

constexpr const char* kKindNames[] = {
    "loss_random",  "loss_bursty", "clock_drift",
    "sched_latency", "link_delay",  "partition",
    "partition_oneway", "crash",   "recover",
};

/// Smallest window the shrinker will keep halving below.
constexpr sim_duration kMinWindow = milliseconds(500);

std::string sites_str(const site_set& s) {
  if (s.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(s[i]);
  }
  return out;
}

bool parse_sites(const std::string& tok, site_set& out) {
  out.clear();
  if (tok == "-") return true;
  std::istringstream is(tok);
  std::string part;
  while (std::getline(is, part, ',')) {
    try {
      out.push_back(static_cast<unsigned>(std::stoul(part)));
    } catch (...) {
      return false;
    }
  }
  return !out.empty();
}

std::string double_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Draws a distinct random subset of [0, sites) with `count` elements.
site_set pick_sites(util::rng& r, unsigned sites, unsigned count) {
  site_set out;
  while (out.size() < count) {
    const auto s = static_cast<unsigned>(r.uniform_int(0, sites - 1));
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool is_subset(const site_set& a, const site_set& b) {
  return std::all_of(a.begin(), a.end(), [&](unsigned s) {
    return std::find(b.begin(), b.end(), s) != b.end();
  });
}

}  // namespace

const char* kind_name(event_kind k) {
  return kKindNames[static_cast<std::size_t>(k)];
}

scenario scenario_spec::build() const {
  scenario s("fuzz-" + std::to_string(seed));
  for (const event_spec& e : events) {
    fault_ptr f;
    switch (e.kind) {
      case event_kind::loss_random:
        f = loss_fault::random(e.param, site_selector(e.targets));
        break;
      case event_kind::loss_bursty:
        f = loss_fault::bursty(e.param, e.param2, site_selector(e.targets));
        break;
      case event_kind::clock_drift:
        f = std::make_shared<clock_drift_fault>(e.param,
                                                site_selector(e.targets));
        break;
      case event_kind::sched_latency:
        f = std::make_shared<sched_latency_fault>(e.dur,
                                                  site_selector(e.targets));
        break;
      case event_kind::link_delay:
        f = std::make_shared<link_delay_fault>(e.dur, e.targets, e.side_b);
        break;
      case event_kind::partition:
        f = std::make_shared<partition_fault>(e.targets, e.side_b);
        break;
      case event_kind::partition_oneway:
        f = partition_fault::one_way(e.targets, e.side_b);
        break;
      case event_kind::crash:
        f = std::make_shared<crash_fault>(site_selector(e.targets));
        break;
      case event_kind::recover:
        f = std::make_shared<recover_fault>(site_selector(e.targets));
        break;
    }
    // One-shots fire at start; a 1 ns window keeps them distinct from the
    // zero-width (never-arm) no-op.
    s.add(std::move(f), e.start, e.one_shot() ? e.start + 1 : e.stop);
  }
  return s;
}

bool scenario_spec::needs_recovery() const {
  return std::any_of(events.begin(), events.end(), [](const event_spec& e) {
    return e.kind == event_kind::recover;
  });
}

scenario_spec generate(std::uint64_t seed, const config& cfg) {
  scenario_spec spec;
  spec.seed = seed;
  spec.sites = cfg.sites;
  util::rng r = util::rng(seed).fork("fuzz");

  const unsigned max_faults = std::max(1u, cfg.max_faults);
  const auto n =
      static_cast<unsigned>(r.uniform_int(1, max_faults));
  // Never take down a majority at once: crashes and partition cuts are
  // capped at a strict minority, so every generated scenario keeps a
  // primary partition and the run stays live.
  const unsigned minority = std::max(1u, (cfg.sites - 1) / 2);
  unsigned crash_budget = cfg.sites >= 3 ? minority : 0;
  site_set crashed;  // candidates for a later recover event

  const double horizon_s = to_seconds(cfg.horizon);
  for (unsigned i = 0; i < n; ++i) {
    std::vector<event_kind> kinds = {
        event_kind::loss_random,     event_kind::loss_bursty,
        event_kind::clock_drift,     event_kind::sched_latency,
        event_kind::link_delay,      event_kind::partition,
        event_kind::partition_oneway};
    if (crash_budget > 0) kinds.push_back(event_kind::crash);
    if (cfg.allow_recovery && !crashed.empty())
      kinds.push_back(event_kind::recover);

    event_spec e;
    e.kind = kinds[static_cast<std::size_t>(
        r.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
    e.start = from_seconds(r.uniform() * horizon_s * 0.6);
    e.stop = e.start +
             from_seconds(0.5 + r.uniform() * horizon_s * 0.4);

    switch (e.kind) {
      case event_kind::loss_random:
        e.param = 0.02 + 0.28 * r.uniform();
        e.targets = pick_sites(
            r, cfg.sites,
            static_cast<unsigned>(r.uniform_int(1, cfg.sites)));
        break;
      case event_kind::loss_bursty:
        e.param = 0.02 + 0.18 * r.uniform();
        e.param2 = 2.0 + 6.0 * r.uniform();
        e.targets = pick_sites(
            r, cfg.sites,
            static_cast<unsigned>(r.uniform_int(1, cfg.sites)));
        break;
      case event_kind::clock_drift:
        e.param = 0.01 + 0.14 * r.uniform();
        e.targets = pick_sites(
            r, cfg.sites,
            static_cast<unsigned>(r.uniform_int(1, cfg.sites)));
        break;
      case event_kind::sched_latency:
        e.dur = from_millis(1.0 + 9.0 * r.uniform());
        e.targets = pick_sites(
            r, cfg.sites,
            static_cast<unsigned>(r.uniform_int(1, cfg.sites)));
        break;
      case event_kind::link_delay:
        e.dur = from_millis(50.0 + 450.0 * r.uniform());
        e.targets = pick_sites(
            r, cfg.sites,
            static_cast<unsigned>(r.uniform_int(1, minority)));
        break;
      case event_kind::partition:
      case event_kind::partition_oneway:
        e.targets = pick_sites(
            r, cfg.sites,
            static_cast<unsigned>(r.uniform_int(1, minority)));
        break;
      case event_kind::crash: {
        site_set alive;
        for (unsigned s = 0; s < cfg.sites; ++s)
          if (std::find(crashed.begin(), crashed.end(), s) == crashed.end())
            alive.push_back(s);
        e.targets = {alive[static_cast<std::size_t>(r.uniform_int(
            0, static_cast<std::int64_t>(alive.size()) - 1))]};
        e.stop = e.start;
        crashed.push_back(e.targets[0]);
        --crash_budget;
        break;
      }
      case event_kind::recover: {
        const auto idx = static_cast<std::size_t>(r.uniform_int(
            0, static_cast<std::int64_t>(crashed.size()) - 1));
        e.targets = {crashed[idx]};
        crashed.erase(crashed.begin() + static_cast<std::ptrdiff_t>(idx));
        ++crash_budget;
        // A recovery needs its crash to have happened and some slack for
        // the exclusion to settle before the rejoin starts.
        e.start += from_seconds(2.0 + 8.0 * r.uniform());
        e.stop = e.start;
        break;
      }
    }
    spec.events.push_back(std::move(e));
  }
  std::stable_sort(spec.events.begin(), spec.events.end(),
                   [](const event_spec& a, const event_spec& b) {
                     return a.start < b.start;
                   });
  // Ordering constraint the sort may have broken: a recover must follow
  // its site's crash. Rather than re-time, drop orphaned recovers (the
  // spec stays valid, just one event shorter).
  site_set down;
  std::vector<event_spec> kept;
  for (event_spec& e : spec.events) {
    if (e.kind == event_kind::crash) down.push_back(e.targets[0]);
    if (e.kind == event_kind::recover) {
      auto it = std::find(down.begin(), down.end(), e.targets[0]);
      if (it == down.end()) continue;
      down.erase(it);
    }
    kept.push_back(std::move(e));
  }
  spec.events = std::move(kept);
  return spec;
}

run_result run_spec(const scenario_spec& spec, const config& cfg) {
  core::experiment_config ec;
  ec.sites = spec.sites;
  ec.cpus_per_site = 1;
  ec.clients = cfg.clients;
  ec.target_responses = cfg.target_responses;
  ec.max_sim_time = cfg.max_sim_time;
  ec.seed = spec.seed;
  ec.faults = spec.build();
  // Recovery wiring is keyed on the config, not on whether a shrink
  // candidate still contains a recover event, so dropping one changes the
  // timeline only — not the protocol stack under it.
  ec.enable_recovery = cfg.allow_recovery || spec.needs_recovery();
  ec.gcs.unsafe_no_primary_partition = cfg.break_primary_partition;
  ec.gcs.batch_max = cfg.batch_max;
  ec.gcs.ordering = cfg.ordering;
  ec.checks = cfg.checks;
  if (cfg.read_fast_path) {
    kv::kv_config k;
    k.preset = kv::mix::ycsb_b;
    ec.workload = kv::factory(k);
    ec.replica_cfg.read.path = read::mode::fast;
  }

  const core::experiment_result res = core::run_experiment(ec);
  run_result out;
  out.committed = res.stats.total_committed();
  out.responses = res.responses;
  out.violations = res.checks.violations.size();
  if (!res.checks.ok) {
    out.ok = false;
    out.detail = res.checks.summary();
  } else if (!res.safety.ok) {
    out.ok = false;
    out.detail = "safety: " + res.safety.detail;
  }
  return out;
}

scenario_spec shrink(const scenario_spec& spec, const config& cfg) {
  unsigned budget = cfg.shrink_budget;
  const auto fails = [&](const scenario_spec& s) {
    if (budget == 0) return false;  // out of budget: keep what we have
    --budget;
    return !run_spec(s, cfg).ok;
  };

  scenario_spec cur = spec;
  // Pass 1: drop whole events, tail first (later events tend to depend on
  // earlier ones — a recover on its crash — so tail removals succeed more
  // often and never orphan a survivor). Loop to a fixed point.
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    for (std::size_t i = cur.events.size(); i-- > 0;) {
      if (cur.events.size() <= 1 || budget == 0) break;
      scenario_spec cand = cur;
      cand.events.erase(cand.events.begin() +
                        static_cast<std::ptrdiff_t>(i));
      if (fails(cand)) {
        cur = std::move(cand);
        improved = true;
      }
    }
  }
  // Pass 2: narrow windows by binary halving — from the right (earlier
  // stop), then from the left (later start). Every candidate stays nested
  // in the original window.
  for (std::size_t i = 0; i < cur.events.size() && budget > 0; ++i) {
    if (cur.events[i].one_shot()) continue;
    while (budget > 0) {
      const event_spec& e = cur.events[i];
      if (e.stop - e.start <= kMinWindow) break;
      scenario_spec cand = cur;
      cand.events[i].stop = e.start + (e.stop - e.start) / 2;
      if (!fails(cand)) break;
      cur = std::move(cand);
    }
    while (budget > 0) {
      const event_spec& e = cur.events[i];
      if (e.stop - e.start <= kMinWindow) break;
      scenario_spec cand = cur;
      cand.events[i].start = e.start + (e.stop - e.start) / 2;
      if (!fails(cand)) break;
      cur = std::move(cand);
    }
  }
  // Pass 3: subset target sites.
  for (std::size_t i = 0; i < cur.events.size() && budget > 0; ++i) {
    for (std::size_t t = 0;
         cur.events[i].targets.size() > 1 &&
         t < cur.events[i].targets.size() && budget > 0;) {
      scenario_spec cand = cur;
      cand.events[i].targets.erase(cand.events[i].targets.begin() +
                                   static_cast<std::ptrdiff_t>(t));
      if (fails(cand)) {
        cur = std::move(cand);
      } else {
        ++t;
      }
    }
  }
  return cur;
}

bool is_shrink_of(const scenario_spec& shrunk,
                  const scenario_spec& original) {
  if (shrunk.seed != original.seed || shrunk.sites != original.sites)
    return false;
  std::size_t j = 0;
  for (const event_spec& e : shrunk.events) {
    bool matched = false;
    while (j < original.events.size()) {
      const event_spec& o = original.events[j];
      ++j;
      if (o.kind == e.kind && o.param == e.param && o.param2 == e.param2 &&
          o.dur == e.dur && o.side_b == e.side_b && e.start >= o.start &&
          e.stop <= o.stop && is_subset(e.targets, o.targets)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::string serialize(const scenario_spec& spec) {
  std::ostringstream os;
  os << "fuzz-scenario v1\n";
  os << "seed " << spec.seed << "\n";
  os << "sites " << spec.sites << "\n";
  for (const event_spec& e : spec.events) {
    os << "event " << kind_name(e.kind) << " start=" << e.start
       << " stop=" << e.stop << " targets=" << sites_str(e.targets)
       << " b=" << sites_str(e.side_b) << " p=" << double_str(e.param)
       << " p2=" << double_str(e.param2) << " dur=" << e.dur << "\n";
  }
  return os.str();
}

std::optional<scenario_spec> parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "fuzz-scenario v1") return {};
  scenario_spec spec;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "seed") {
      ls >> spec.seed;
    } else if (tag == "sites") {
      ls >> spec.sites;
    } else if (tag == "event") {
      std::string kind;
      ls >> kind;
      event_spec e;
      bool found = false;
      for (std::size_t k = 0; k < std::size(kKindNames); ++k) {
        if (kind == kKindNames[k]) {
          e.kind = static_cast<event_kind>(k);
          found = true;
          break;
        }
      }
      if (!found) return {};
      std::string field;
      while (ls >> field) {
        const auto eq = field.find('=');
        if (eq == std::string::npos) return {};
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        try {
          if (key == "start") {
            e.start = std::stoll(val);
          } else if (key == "stop") {
            e.stop = std::stoll(val);
          } else if (key == "targets") {
            if (!parse_sites(val, e.targets)) return {};
          } else if (key == "b") {
            site_set b;
            if (val != "-" && !parse_sites(val, b)) return {};
            e.side_b = std::move(b);
          } else if (key == "p") {
            e.param = std::stod(val);
          } else if (key == "p2") {
            e.param2 = std::stod(val);
          } else if (key == "dur") {
            e.dur = std::stoll(val);
          } else {
            return {};
          }
        } catch (...) {
          return {};
        }
      }
      spec.events.push_back(std::move(e));
    } else {
      return {};
    }
  }
  if (spec.sites == 0) return {};
  return spec;
}

bool save(const scenario_spec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize(spec);
  return static_cast<bool>(out);
}

std::optional<scenario_spec> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return parse(os.str());
}

}  // namespace dbsm::fault::fuzz
