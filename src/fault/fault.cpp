#include "fault/fault.hpp"

#include "util/check.hpp"

namespace dbsm::fault {

site_set site_selector::resolve(unsigned sites) const {
  site_set out;
  switch (kind_) {
    case kind::all:
      for (unsigned i = 0; i < sites; ++i) out.push_back(i);
      break;
    case kind::odd:
      for (unsigned i = 1; i < sites; i += 2) out.push_back(i);
      break;
    case kind::even:
      for (unsigned i = 0; i < sites; i += 2) out.push_back(i);
      break;
    case kind::explicit_set:
      for (unsigned i : sites_) {
        DBSM_CHECK_MSG(i < sites, "fault targets site " << i
                                      << " of a " << sites << "-site system");
        out.push_back(i);
      }
      break;
  }
  return out;
}

void fault::disarm(injection_points&) {}

scenario& scenario::add(fault_ptr f, sim_time start, sim_time stop) {
  DBSM_CHECK(f != nullptr);
  DBSM_CHECK(start >= 0);
  DBSM_CHECK_MSG(stop >= start, "fault window [start, stop) is inverted");
  events_.push_back({std::move(f), start, stop});
  return *this;
}

void scenario::install(sim::simulator& sim, injection_points pts) const {
  if (events_.empty()) return;
  // Scheduled arm/disarm events share the bundle (and keep it alive).
  auto shared = std::make_shared<injection_points>(std::move(pts));
  for (const timed_fault& tf : events_) {
    // A zero-width window [t, t) is a no-op: the fault covers no instant,
    // so it never arms (shrunk fuzzer timelines produce these).
    if (tf.stop == tf.start) continue;
    if (tf.start <= sim.now()) {
      tf.f->arm(*shared);
    } else {
      sim.schedule_at(tf.start, [f = tf.f, shared] { f->arm(*shared); });
    }
    if (tf.stop != time_never) {
      sim.schedule_at(tf.stop, [f = tf.f, shared] { f->disarm(*shared); });
    }
  }
}

}  // namespace dbsm::fault
