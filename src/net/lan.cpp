#include "net/lan.hpp"

#include <utility>

#include "util/check.hpp"

namespace dbsm::net {

lan::lan(sim::simulator& sim, lan_config cfg, util::rng gen)
    : sim_(sim), cfg_(cfg), rng_(gen) {
  DBSM_CHECK(cfg_.bandwidth_bps > 0);
  DBSM_CHECK(cfg_.mtu > cfg_.ip_udp_header);
}

node_id lan::add_host() {
  hosts_.emplace_back();
  return static_cast<node_id>(hosts_.size() - 1);
}

void lan::set_receiver(node_id node, receiver_fn fn) {
  hosts_.at(node).receiver = std::move(fn);
}

void lan::set_rx_loss(node_id node, std::shared_ptr<loss_model> model) {
  hosts_.at(node).rx_loss = std::move(model);
}

void lan::isolate(node_id node) { hosts_.at(node).isolated = true; }

void lan::restore(node_id node) { hosts_.at(node).isolated = false; }

void lan::set_link_cut(node_id a, node_id b, bool cut) {
  DBSM_CHECK(a < hosts_.size() && b < hosts_.size());
  link_faults_.set_cut(a, b, cut);
}

void lan::set_link_cut_oneway(node_id from, node_id to, bool cut) {
  DBSM_CHECK(from < hosts_.size() && to < hosts_.size());
  link_faults_.set_cut_oneway(from, to, cut);
}

void lan::set_link_extra_delay(node_id a, node_id b, sim_duration extra) {
  DBSM_CHECK(a < hosts_.size() && b < hosts_.size());
  DBSM_CHECK(extra >= 0);
  link_faults_.set_extra_delay(a, b, extra);
}

void lan::set_link_extra_delay_oneway(node_id from, node_id to,
                                      sim_duration extra) {
  DBSM_CHECK(from < hosts_.size() && to < hosts_.size());
  DBSM_CHECK(extra >= 0);
  link_faults_.set_extra_delay_oneway(from, to, extra);
}

void lan::set_tracer(trace_fn fn) { tracer_ = std::move(fn); }

std::uint64_t lan::wire_bytes_sent(node_id node) const {
  return hosts_.at(node).wire_bytes;
}

std::uint64_t lan::total_wire_bytes() const {
  std::uint64_t total = 0;
  for (const host& h : hosts_) total += h.wire_bytes;
  return total;
}

std::uint64_t lan::overflow_drops(node_id node) const {
  return hosts_.at(node).overflow;
}

std::uint64_t lan::injected_losses(node_id node) const {
  return hosts_.at(node).injected_lost;
}

std::uint64_t lan::link_cut_drops(node_id node) const {
  return hosts_.at(node).cut_dropped;
}

std::size_t lan::frame_count(std::size_t payload) const {
  const std::size_t per_frame = cfg_.mtu - cfg_.ip_udp_header;
  return payload == 0 ? 1 : (payload + per_frame - 1) / per_frame;
}

std::size_t lan::wire_size(std::size_t payload) const {
  const std::size_t frames = frame_count(payload);
  return payload + frames * (cfg_.ip_udp_header + cfg_.frame_overhead);
}

sim_duration lan::serialization_time(std::size_t wire_bytes) const {
  return static_cast<sim_duration>(static_cast<double>(wire_bytes) * 8.0 /
                                   cfg_.bandwidth_bps * 1e9);
}

sim_time lan::transmit(host& sender, node_id from,
                       std::size_t payload_bytes) {
  if (sender.tx_queued_bytes + payload_bytes > cfg_.tx_buffer_bytes) {
    ++sender.overflow;
    if (tracer_) tracer_('o', from, from, payload_bytes, sim_.now());
    return time_never;
  }
  const std::size_t wire = wire_size(payload_bytes);
  const sim_time start = std::max(sim_.now(), sender.tx_free_at);
  const sim_time tx_end = start + serialization_time(wire);
  sender.tx_free_at = tx_end;
  sender.wire_bytes += wire;
  sender.tx_queued_bytes += payload_bytes;
  sim_.schedule_at(tx_end, [this, from, payload_bytes] {
    host& h = hosts_.at(from);
    DBSM_CHECK(h.tx_queued_bytes >= payload_bytes);
    h.tx_queued_bytes -= payload_bytes;
  });
  return tx_end + cfg_.switch_latency;
}

void lan::deliver(node_id from, node_id to, util::shared_bytes payload,
                  sim_time at_switch) {
  host& dest = hosts_.at(to);
  if (dest.isolated) return;
  // Degraded-path extra delay (fault injection) is propagation time, not
  // port occupancy: it must be added after the receive-port reservation.
  // Folding it into `at_switch` would book the port `extra` in the future
  // and head-of-line-block every other sender's frames to this host
  // behind one slow link.
  sim_duration extra = 0;
  if (!link_faults_.empty()) extra = link_faults_.extra_delay(from, to);
  const std::size_t wire = wire_size(payload->size());
  const sim_time start = std::max(at_switch, dest.rx_free_at);
  const sim_time rx_end = start + serialization_time(wire);
  dest.rx_free_at = rx_end;
  sim_.schedule_at(rx_end + extra, [this, from, to, payload] {
    host& h = hosts_.at(to);
    if (h.isolated) return;
    if (link_faults_.cut(from, to)) {
      ++h.cut_dropped;
      if (tracer_) tracer_('l', from, to, payload->size(), sim_.now());
      return;
    }
    if (h.rx_loss && h.rx_loss->drop(rng_)) {
      ++h.injected_lost;
      if (tracer_) tracer_('l', from, to, payload->size(), sim_.now());
      return;
    }
    if (tracer_) tracer_('d', from, to, payload->size(), sim_.now());
    if (h.receiver) h.receiver(from, payload);
  });
}

void lan::send(node_id from, node_id to, util::shared_bytes payload) {
  DBSM_CHECK(payload != nullptr);
  DBSM_CHECK_MSG(payload->size() <= cfg_.max_datagram_payload,
                 "datagram too large: " << payload->size());
  host& sender = hosts_.at(from);
  if (sender.isolated) return;
  if (tracer_) tracer_('s', from, to, payload->size(), sim_.now());
  const sim_time at_switch = transmit(sender, from, payload->size());
  if (at_switch == time_never) return;  // egress overflow
  if (to == from) {
    // Loopback delivery: skips the wire (kernel short-circuit).
    sim_.schedule_at(sim_.now(), [this, from, payload] {
      host& h = hosts_.at(from);
      if (h.receiver) h.receiver(from, payload);
    });
    return;
  }
  deliver(from, to, payload, at_switch);
}

void lan::multicast(node_id from, util::shared_bytes payload) {
  DBSM_CHECK(payload != nullptr);
  DBSM_CHECK_MSG(payload->size() <= cfg_.max_datagram_payload,
                 "datagram too large: " << payload->size());
  host& sender = hosts_.at(from);
  if (sender.isolated) return;
  if (tracer_)
    tracer_('s', from, static_cast<node_id>(hosts_.size()), payload->size(),
            sim_.now());
  // One uplink transmission; the switch replicates to every other port.
  const sim_time at_switch = transmit(sender, from, payload->size());
  if (at_switch == time_never) return;
  for (node_id to = 0; to < hosts_.size(); ++to) {
    if (to == from) continue;
    deliver(from, to, payload, at_switch);
  }
}

}  // namespace dbsm::net
