#include "net/trace.hpp"

#include <iomanip>
#include <sstream>

namespace dbsm::net {

void trace_log::attach(medium& m) {
  m.set_tracer([this](char kind, node_id from, node_id to,
                      std::size_t bytes, sim_time at) {
    record(kind, from, to, bytes, at);
  });
}

void trace_log::record(char kind, node_id from, node_id to,
                       std::size_t bytes, sim_time at) {
  ++events_;
  flow_stats& f = flows_[{from, to}];
  switch (kind) {
    case 's': ++f.sent; f.bytes += bytes; break;
    case 'd': ++f.delivered; break;
    case 'l': ++f.lost; break;
    case 'o': ++f.overflowed; break;
    default: break;
  }
  if (out_ != nullptr) {
    const char* verb = kind == 's'   ? "send"
                       : kind == 'd' ? "deliver"
                       : kind == 'l' ? "drop"
                                     : "overflow";
    *out_ << std::fixed << std::setprecision(9) << to_seconds(at) << " "
          << verb << " " << from << " > " << to << "  " << bytes
          << " bytes\n";
  }
}

std::string trace_log::summary() const {
  std::ostringstream os;
  os << "flow        sent  delivered  lost  overflow      bytes\n";
  for (const auto& [key, f] : flows_) {
    os << key.first << " > " << key.second << "  " << f.sent << "  "
       << f.delivered << "  " << f.lost << "  " << f.overflowed << "  "
       << f.bytes << "\n";
  }
  return os.str();
}

}  // namespace dbsm::net
