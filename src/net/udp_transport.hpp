// Adapter binding one host's sim_env to a simulated medium: implements the
// csrt::transport egress interface and feeds arriving datagrams back into
// the env as receive jobs.
#ifndef DBSM_NET_UDP_TRANSPORT_HPP
#define DBSM_NET_UDP_TRANSPORT_HPP

#include "csrt/sim_env.hpp"
#include "net/medium.hpp"

namespace dbsm::net {

class udp_transport final : public csrt::transport {
 public:
  udp_transport(medium& net, node_id self);

  /// Wires arriving datagrams into `env` (call once after env creation).
  void attach(csrt::sim_env& env);

  // --- csrt::transport ---
  void send(node_id to, util::shared_bytes payload) override;
  void multicast(util::shared_bytes payload) override;
  unsigned multicast_fanout() const override;
  std::size_t max_datagram() const override;

 private:
  medium& net_;
  node_id self_;
};

}  // namespace dbsm::net

#endif  // DBSM_NET_UDP_TRANSPORT_HPP
