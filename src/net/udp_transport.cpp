#include "net/udp_transport.hpp"

namespace dbsm::net {

udp_transport::udp_transport(medium& net, node_id self)
    : net_(net), self_(self) {}

void udp_transport::attach(csrt::sim_env& env) {
  net_.set_receiver(self_, [&env](node_id from, util::shared_bytes payload) {
    env.deliver_datagram(from, payload);
  });
}

void udp_transport::send(node_id to, util::shared_bytes payload) {
  net_.send(self_, to, std::move(payload));
}

void udp_transport::multicast(util::shared_bytes payload) {
  net_.multicast(self_, std::move(payload));
}

unsigned udp_transport::multicast_fanout() const {
  return net_.multicast_fanout(self_);
}

std::size_t udp_transport::max_datagram() const {
  return net_.max_datagram();
}

}  // namespace dbsm::net
