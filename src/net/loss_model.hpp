// Message-loss models for fault injection (§5.3).
#ifndef DBSM_NET_LOSS_MODEL_HPP
#define DBSM_NET_LOSS_MODEL_HPP

#include <memory>

#include "util/rng.hpp"

namespace dbsm::net {

/// Decides, per received datagram, whether to discard it.
class loss_model {
 public:
  virtual ~loss_model() = default;
  virtual bool drop(util::rng& gen) = 0;
};

/// "Random loss: each message is discarded upon reception with the
/// specified probability. Models transmission errors."
std::shared_ptr<loss_model> random_loss(double probability);

/// "Bursty loss: alternate periods with randomly generated durations in
/// which messages are received or discarded. Models congestion."
/// Period lengths are in messages, uniformly distributed with the given
/// means; mean_bad/(mean_bad+mean_good) equals the average loss rate.
std::shared_ptr<loss_model> bursty_loss(double avg_loss_rate,
                                        double mean_burst_len);

}  // namespace dbsm::net

#endif  // DBSM_NET_LOSS_MODEL_HPP
