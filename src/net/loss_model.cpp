#include "net/loss_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dbsm::net {

namespace {

class random_loss_impl final : public loss_model {
 public:
  explicit random_loss_impl(double p) : p_(p) {
    DBSM_CHECK(p >= 0.0 && p <= 1.0);
  }
  bool drop(util::rng& gen) override { return gen.bernoulli(p_); }

 private:
  double p_;
};

class bursty_loss_impl final : public loss_model {
 public:
  bursty_loss_impl(double rate, double mean_burst)
      : rate_(rate), mean_burst_(mean_burst) {
    DBSM_CHECK(rate > 0.0 && rate < 1.0);
    DBSM_CHECK(mean_burst >= 1.0);
  }

  bool drop(util::rng& gen) override {
    if (remaining_ == 0) {
      // Switch state and draw the next period length (uniform around the
      // mean, as the paper's bursts are "uniformly distributed").
      in_burst_ = !in_burst_;
      const double mean =
          in_burst_ ? mean_burst_ : mean_burst_ * (1.0 - rate_) / rate_;
      const auto hi = static_cast<std::int64_t>(2.0 * mean - 1.0);
      remaining_ = gen.uniform_int(1, std::max<std::int64_t>(1, hi));
    }
    --remaining_;
    return in_burst_;
  }

 private:
  double rate_;
  double mean_burst_;
  bool in_burst_ = true;  // flipped to good before the first message
  std::int64_t remaining_ = 0;
};

}  // namespace

std::shared_ptr<loss_model> random_loss(double probability) {
  return std::make_shared<random_loss_impl>(probability);
}

std::shared_ptr<loss_model> bursty_loss(double avg_loss_rate,
                                        double mean_burst_len) {
  return std::make_shared<bursty_loss_impl>(avg_loss_rate, mean_burst_len);
}

}  // namespace dbsm::net
