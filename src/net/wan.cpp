#include "net/wan.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace dbsm::net {

wan::wan(sim::simulator& sim, wan_config cfg, util::rng gen)
    : sim_(sim), cfg_(cfg), rng_(gen) {
  DBSM_CHECK(cfg_.access_bandwidth_bps > 0);
}

node_id wan::add_host() {
  hosts_.emplace_back();
  for (auto& row : latency_) row.push_back(cfg_.default_latency);
  latency_.emplace_back(hosts_.size(), cfg_.default_latency);
  return static_cast<node_id>(hosts_.size() - 1);
}

void wan::set_receiver(node_id node, receiver_fn fn) {
  hosts_.at(node).receiver = std::move(fn);
}

void wan::set_rx_loss(node_id node, std::shared_ptr<loss_model> model) {
  hosts_.at(node).rx_loss = std::move(model);
}

void wan::isolate(node_id node) { hosts_.at(node).isolated = true; }

void wan::restore(node_id node) { hosts_.at(node).isolated = false; }

void wan::set_link_cut(node_id a, node_id b, bool cut) {
  DBSM_CHECK(a < hosts_.size() && b < hosts_.size());
  link_faults_.set_cut(a, b, cut);
}

void wan::set_link_cut_oneway(node_id from, node_id to, bool cut) {
  DBSM_CHECK(from < hosts_.size() && to < hosts_.size());
  link_faults_.set_cut_oneway(from, to, cut);
}

void wan::set_link_extra_delay(node_id a, node_id b, sim_duration extra) {
  DBSM_CHECK(a < hosts_.size() && b < hosts_.size());
  DBSM_CHECK(extra >= 0);
  link_faults_.set_extra_delay(a, b, extra);
}

void wan::set_link_extra_delay_oneway(node_id from, node_id to,
                                      sim_duration extra) {
  DBSM_CHECK(from < hosts_.size() && to < hosts_.size());
  DBSM_CHECK(extra >= 0);
  link_faults_.set_extra_delay_oneway(from, to, extra);
}

void wan::set_tracer(trace_fn fn) { tracer_ = std::move(fn); }

void wan::set_latency(node_id a, node_id b, sim_duration one_way) {
  latency_.at(a).at(b) = one_way;
  latency_.at(b).at(a) = one_way;
}

sim_duration wan::latency(node_id a, node_id b) const {
  return latency_.at(a).at(b);
}

std::uint64_t wan::wire_bytes_sent(node_id node) const {
  return hosts_.at(node).wire_bytes;
}

std::uint64_t wan::total_wire_bytes() const {
  std::uint64_t total = 0;
  for (const host& h : hosts_) total += h.wire_bytes;
  return total;
}

unsigned wan::multicast_fanout(node_id) const {
  return hosts_.size() <= 1 ? 1
                            : static_cast<unsigned>(hosts_.size() - 1);
}

std::size_t wan::wire_size(std::size_t payload) const {
  return payload + cfg_.ip_udp_header + cfg_.link_overhead;
}

void wan::transmit_one(node_id from, node_id to,
                       util::shared_bytes payload) {
  host& sender = hosts_.at(from);
  if (sender.tx_queued_bytes + payload->size() > cfg_.tx_buffer_bytes) {
    if (tracer_) tracer_('o', from, to, payload->size(), sim_.now());
    return;
  }
  const std::size_t wire = wire_size(payload->size());
  const sim_duration ser = static_cast<sim_duration>(
      static_cast<double>(wire) * 8.0 / cfg_.access_bandwidth_bps * 1e9);
  const sim_time start = std::max(sim_.now(), sender.tx_free_at);
  const sim_time tx_end = start + ser;
  sender.tx_free_at = tx_end;
  sender.wire_bytes += wire;
  sender.tx_queued_bytes += payload->size();
  const std::size_t sz = payload->size();
  sim_.schedule_at(tx_end, [this, from, sz] {
    host& h = hosts_.at(from);
    DBSM_CHECK(h.tx_queued_bytes >= sz);
    h.tx_queued_bytes -= sz;
  });
  sim_time arrive = tx_end + latency(from, to);
  if (!link_faults_.empty()) arrive += link_faults_.extra_delay(from, to);
  sim_.schedule_at(arrive, [this, from, to, payload] {
    host& h = hosts_.at(to);
    if (h.isolated) return;
    if (link_faults_.cut(from, to)) {
      if (tracer_) tracer_('l', from, to, payload->size(), sim_.now());
      return;
    }
    if (h.rx_loss && h.rx_loss->drop(rng_)) {
      if (tracer_) tracer_('l', from, to, payload->size(), sim_.now());
      return;
    }
    if (tracer_) tracer_('d', from, to, payload->size(), sim_.now());
    if (h.receiver) h.receiver(from, payload);
  });
}

void wan::send(node_id from, node_id to, util::shared_bytes payload) {
  DBSM_CHECK(payload != nullptr);
  DBSM_CHECK(payload->size() <= cfg_.max_datagram_payload);
  host& sender = hosts_.at(from);
  if (sender.isolated) return;
  if (tracer_) tracer_('s', from, to, payload->size(), sim_.now());
  if (to == from) {
    sim_.schedule_at(sim_.now(), [this, from, payload] {
      host& h = hosts_.at(from);
      if (h.receiver) h.receiver(from, payload);
    });
    return;
  }
  transmit_one(from, to, payload);
}

void wan::multicast(node_id from, util::shared_bytes payload) {
  DBSM_CHECK(payload != nullptr);
  host& sender = hosts_.at(from);
  if (sender.isolated) return;
  // No IP multicast across the wide area: unicast fan-out (§3.4).
  for (node_id to = 0; to < hosts_.size(); ++to) {
    if (to == from) continue;
    if (tracer_) tracer_('s', from, to, payload->size(), sim_.now());
    transmit_one(from, to, payload);
  }
}

}  // namespace dbsm::net
