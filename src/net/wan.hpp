// Wide-area network: full mesh of point-to-point paths with configurable
// one-way latency, host access-link bandwidth, and no IP multicast — the
// protocols fall back to unicast fan-out, which is exactly the WAN mode of
// the paper's dissemination phase (§3.4).
#ifndef DBSM_NET_WAN_HPP
#define DBSM_NET_WAN_HPP

#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace dbsm::net {

struct wan_config {
  double access_bandwidth_bps = 10e6;           // per-host access link
  sim_duration default_latency = milliseconds(20);
  std::size_t ip_udp_header = 28;
  std::size_t link_overhead = 12;               // PPP/SONET-ish framing
  std::size_t tx_buffer_bytes = 256 * 1024;
  std::size_t max_datagram_payload = 62 * 1024;
};

class wan final : public medium {
 public:
  wan(sim::simulator& sim, wan_config cfg, util::rng gen);

  node_id add_host() override;
  void set_receiver(node_id node, receiver_fn fn) override;
  void send(node_id from, node_id to, util::shared_bytes payload) override;
  void multicast(node_id from, util::shared_bytes payload) override;
  unsigned multicast_fanout(node_id from) const override;
  std::size_t max_datagram() const override {
    return cfg_.max_datagram_payload;
  }
  void set_rx_loss(node_id node, std::shared_ptr<loss_model> model) override;
  void isolate(node_id node) override;
  void restore(node_id node) override;
  void set_link_cut(node_id a, node_id b, bool cut) override;
  void set_link_cut_oneway(node_id from, node_id to, bool cut) override;
  void set_link_extra_delay(node_id a, node_id b, sim_duration extra) override;
  void set_link_extra_delay_oneway(node_id from, node_id to,
                                   sim_duration extra) override;
  std::uint64_t wire_bytes_sent(node_id node) const override;
  std::uint64_t total_wire_bytes() const override;
  void set_tracer(trace_fn fn) override;

  /// Overrides the one-way latency between a pair (both directions).
  void set_latency(node_id a, node_id b, sim_duration one_way);

 private:
  struct host {
    receiver_fn receiver;
    std::shared_ptr<loss_model> rx_loss;
    bool isolated = false;
    sim_time tx_free_at = 0;
    std::size_t tx_queued_bytes = 0;
    std::uint64_t wire_bytes = 0;
  };

  sim_duration latency(node_id a, node_id b) const;
  std::size_t wire_size(std::size_t payload) const;
  void transmit_one(node_id from, node_id to, util::shared_bytes payload);

  sim::simulator& sim_;
  wan_config cfg_;
  util::rng rng_;
  std::vector<host> hosts_;
  std::vector<std::vector<sim_duration>> latency_;  // symmetric matrix
  link_fault_map link_faults_;
  trace_fn tracer_;
};

}  // namespace dbsm::net

#endif  // DBSM_NET_WAN_HPP
