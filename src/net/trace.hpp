// Traffic capture (§2.1): SSFNet "can be captured in the same format
// produced by tcpdump". We provide a tcpdump-style text trace of every
// datagram event on a medium — timestamped send/deliver/loss/overflow
// lines — plus per-flow summary counters, for protocol debugging.
#ifndef DBSM_NET_TRACE_HPP
#define DBSM_NET_TRACE_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "net/medium.hpp"

namespace dbsm::net {

/// Writes one line per datagram event:
///   0.001234567 send  0 > 2  1048 bytes
///   0.001345678 deliver 0 > 2  1048 bytes
/// and accumulates per-(src,dst) flow statistics.
class trace_log {
 public:
  /// Attaches to `medium`'s tracer hook; `out` must outlive the medium's
  /// traffic (pass nullptr to only collect counters).
  explicit trace_log(std::ostream* out = nullptr) : out_(out) {}

  /// Installs this log on a medium (replaces any previous tracer).
  void attach(medium& m);

  /// The raw hook (usable directly as a trace_fn).
  void record(char kind, node_id from, node_id to, std::size_t bytes,
              sim_time at);

  struct flow_stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t overflowed = 0;
    std::uint64_t bytes = 0;
  };

  /// Per-(from,to) flows; multicast sends appear with to == group size.
  const std::map<std::pair<node_id, node_id>, flow_stats>& flows() const {
    return flows_;
  }

  std::uint64_t events() const { return events_; }

  /// Renders the flow summary as an aligned table.
  std::string summary() const;

 private:
  std::ostream* out_;
  std::map<std::pair<node_id, node_id>, flow_stats> flows_;
  std::uint64_t events_ = 0;
};

}  // namespace dbsm::net

#endif  // DBSM_NET_TRACE_HPP
