// Abstract datagram network (the SSFNet substitute, §2.1).
//
// A medium connects hosts, moves unreliable unordered datagrams between
// them, models wire-level timing (serialization, queueing, switch latency,
// MTU fragmentation) and exposes the injection points used for fault
// injection (per-receiver loss models, host crash isolation, symmetric
// link cuts for partitions, per-link extra delay) and the counters behind
// Fig 6(c).
#ifndef DBSM_NET_MEDIUM_HPP
#define DBSM_NET_MEDIUM_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "net/loss_model.hpp"
#include "util/byte_buffer.hpp"
#include "util/types.hpp"

namespace dbsm::net {

/// Callback delivering a datagram payload to a host's protocol stack.
using receiver_fn = std::function<void(node_id from, util::shared_bytes)>;

/// Optional per-event trace hook (tcpdump-style observation).
/// kind: 's' sent, 'd' delivered, 'l' lost (fault injection), 'o' overflow.
using trace_fn = std::function<void(char kind, node_id from, node_id to,
                                    std::size_t bytes, sim_time at)>;

class medium {
 public:
  virtual ~medium() = default;

  /// Adds a host; returns its node id (0, 1, 2, ...).
  virtual node_id add_host() = 0;

  /// Registers the datagram receiver of `node`.
  virtual void set_receiver(node_id node, receiver_fn fn) = 0;

  /// Sends a unicast datagram. Best-effort: may be dropped by queues,
  /// loss models, or crashed endpoints.
  virtual void send(node_id from, node_id to, util::shared_bytes payload) = 0;

  /// Sends to every other host (IP multicast where the medium supports it).
  virtual void multicast(node_id from, util::shared_bytes payload) = 0;

  /// Transmissions one multicast costs the sending host's CPU/NIC.
  virtual unsigned multicast_fanout(node_id from) const = 0;

  /// Largest datagram payload the medium accepts.
  virtual std::size_t max_datagram() const = 0;

  /// Installs a loss model applied to datagrams *received* by `node`
  /// (the paper injects loss upon reception, §5.3).
  virtual void set_rx_loss(node_id node, std::shared_ptr<loss_model> model) = 0;

  /// Isolates a crashed host: nothing in, nothing out, from now on.
  virtual void isolate(node_id node) = 0;

  /// Reconnects a previously isolated host (site recovery): traffic flows
  /// again from now on; datagrams dropped while isolated stay dropped.
  virtual void restore(node_id node) = 0;

  /// Cuts (or heals) the symmetric link between two hosts: datagrams whose
  /// delivery would cross a cut link are discarded at reception time, so a
  /// cut also kills traffic already in flight. Network partitions are sets
  /// of cut links between two host groups.
  virtual void set_link_cut(node_id a, node_id b, bool cut) = 0;

  /// Directional cut: only datagrams travelling `from` → `to` are
  /// discarded; the reverse direction keeps flowing. One-way faults
  /// exercise the failure detector's asymmetric-suspicion paths.
  virtual void set_link_cut_oneway(node_id from, node_id to, bool cut) = 0;

  /// Adds extra one-way delay (both directions) to datagrams crossing the
  /// link between two hosts; 0 restores nominal timing. Models a degraded
  /// path without dropping traffic.
  virtual void set_link_extra_delay(node_id a, node_id b,
                                    sim_duration extra) = 0;

  /// Directional extra delay: applies only to datagrams travelling
  /// `from` → `to`.
  virtual void set_link_extra_delay_oneway(node_id from, node_id to,
                                           sim_duration extra) = 0;

  /// Wire-level bytes transmitted by `node` (payload + all header overhead).
  virtual std::uint64_t wire_bytes_sent(node_id node) const = 0;
  /// Sum of wire bytes transmitted by all hosts.
  virtual std::uint64_t total_wire_bytes() const = 0;

  /// Installs a trace hook (pass nullptr to disable).
  virtual void set_tracer(trace_fn fn) = 0;
};

/// Per-link fault state (cut + extra delay) keyed by *ordered* host pair,
/// so faults can act on one direction of a link only; the symmetric calls
/// are wrappers writing both directions. Shared by the medium
/// implementations; lookups take (from, to) in traffic direction.
class link_fault_map {
 public:
  void set_cut(node_id a, node_id b, bool cut) {
    set_cut_oneway(a, b, cut);
    set_cut_oneway(b, a, cut);
  }
  void set_cut_oneway(node_id from, node_id to, bool cut) {
    entry_for(from, to).cut = cut;
  }
  void set_extra_delay(node_id a, node_id b, sim_duration extra) {
    set_extra_delay_oneway(a, b, extra);
    set_extra_delay_oneway(b, a, extra);
  }
  void set_extra_delay_oneway(node_id from, node_id to, sim_duration extra) {
    entry_for(from, to).extra_delay = extra;
  }
  bool cut(node_id from, node_id to) const {
    const auto it = links_.find(key(from, to));
    return it != links_.end() && it->second.cut;
  }
  sim_duration extra_delay(node_id from, node_id to) const {
    const auto it = links_.find(key(from, to));
    return it == links_.end() ? 0 : it->second.extra_delay;
  }
  /// Fast path: no link fault was ever installed.
  bool empty() const { return links_.empty(); }

 private:
  struct entry {
    bool cut = false;
    sim_duration extra_delay = 0;
  };
  static std::uint64_t key(node_id from, node_id to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  entry& entry_for(node_id from, node_id to) { return links_[key(from, to)]; }

  std::unordered_map<std::uint64_t, entry> links_;
};

}  // namespace dbsm::net

#endif  // DBSM_NET_MEDIUM_HPP
