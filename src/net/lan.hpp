// Switched full-duplex 100 Mbps Ethernet LAN (the paper's testbed network).
//
// Timing model, per datagram:
//   * the datagram is fragmented into MTU-sized IP packets (unlike SSFNet,
//     which did not enforce the MTU for UDP — the divergence the paper's
//     Fig 3 works around by restricting packet sizes);
//   * frames serialize sequentially on the sender's uplink at the link
//     bandwidth, bounded by a finite egress buffer (overflow drops, which
//     is what a flooding UDP sender observes);
//   * each frame crosses the switch after `switch_latency`, then serializes
//     on the destination's downlink (its own copy for each multicast
//     destination — receive goodput is therefore wire-capped, Fig 3b);
//   * the datagram is delivered when its last frame finishes, as one event.
//
// Downlink capacity is reserved eagerly at send time: when long transfers
// interleave, a later frame can be pushed behind a whole earlier datagram
// rather than between its frames. With the protocols' ≤1.4 KB datagrams the
// error is below one frame time; documented trade-off for O(1) events per
// datagram.
//
// Loss models act on whole datagrams at reception (§5.3 fault semantics),
// never on individual frames.
#ifndef DBSM_NET_LAN_HPP
#define DBSM_NET_LAN_HPP

#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace dbsm::net {

struct lan_config {
  double bandwidth_bps = 100e6;                 // Fast Ethernet
  sim_duration switch_latency = microseconds(30);
  std::size_t mtu = 1500;                       // IP packet size limit
  std::size_t ip_udp_header = 28;               // IP (20) + UDP (8)
  std::size_t frame_overhead = 38;              // Eth hdr+FCS+preamble+IFG
  std::size_t tx_buffer_bytes = 256 * 1024;     // egress (socket+driver)
  std::size_t max_datagram_payload = 62 * 1024; // UDP payload limit
};

class lan final : public medium {
 public:
  lan(sim::simulator& sim, lan_config cfg, util::rng gen);

  node_id add_host() override;
  void set_receiver(node_id node, receiver_fn fn) override;
  void send(node_id from, node_id to, util::shared_bytes payload) override;
  void multicast(node_id from, util::shared_bytes payload) override;
  unsigned multicast_fanout(node_id) const override { return 1; }  // IP mcast
  std::size_t max_datagram() const override {
    return cfg_.max_datagram_payload;
  }
  void set_rx_loss(node_id node, std::shared_ptr<loss_model> model) override;
  void isolate(node_id node) override;
  void restore(node_id node) override;
  void set_link_cut(node_id a, node_id b, bool cut) override;
  void set_link_cut_oneway(node_id from, node_id to, bool cut) override;
  void set_link_extra_delay(node_id a, node_id b, sim_duration extra) override;
  void set_link_extra_delay_oneway(node_id from, node_id to,
                                   sim_duration extra) override;
  std::uint64_t wire_bytes_sent(node_id node) const override;
  std::uint64_t total_wire_bytes() const override;
  void set_tracer(trace_fn fn) override;

  /// Datagrams dropped at the sender because the egress buffer was full.
  std::uint64_t overflow_drops(node_id node) const;
  /// Datagrams discarded by the injected loss model at this receiver.
  std::uint64_t injected_losses(node_id node) const;
  /// Datagrams discarded at this receiver because their link was cut.
  std::uint64_t link_cut_drops(node_id node) const;

 private:
  struct host {
    receiver_fn receiver;
    std::shared_ptr<loss_model> rx_loss;
    bool isolated = false;
    sim_time tx_free_at = 0;
    sim_time rx_free_at = 0;
    std::size_t tx_queued_bytes = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t overflow = 0;
    std::uint64_t injected_lost = 0;
    std::uint64_t cut_dropped = 0;
  };

  /// Wire bytes of a datagram of `payload` bytes, all frames included.
  std::size_t wire_size(std::size_t payload) const;
  std::size_t frame_count(std::size_t payload) const;
  sim_duration serialization_time(std::size_t wire_bytes) const;

  /// Serializes on the sender uplink; returns the time the last frame
  /// clears the switch, or time_never if the egress buffer overflowed.
  sim_time transmit(host& sender, node_id from, std::size_t payload_bytes);

  /// Reserves downlink capacity and schedules delivery at `to`.
  void deliver(node_id from, node_id to, util::shared_bytes payload,
               sim_time at_switch);

  sim::simulator& sim_;
  lan_config cfg_;
  util::rng rng_;
  std::vector<host> hosts_;
  link_fault_map link_faults_;
  trace_fn tracer_;
};

}  // namespace dbsm::net

#endif  // DBSM_NET_LAN_HPP
