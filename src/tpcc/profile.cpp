#include "tpcc/profile.hpp"

#include "util/check.hpp"

namespace dbsm::tpcc {

const char* class_name(db::txn_class cls) {
  switch (cls) {
    case c_neworder: return "neworder";
    case c_payment_long: return "payment (long)";
    case c_payment_short: return "payment (short)";
    case c_orderstatus_long: return "orderstatus (long)";
    case c_orderstatus_short: return "orderstatus (short)";
    case c_delivery: return "delivery";
    case c_stocklevel: return "stocklevel";
    default: return "?";
  }
}

bool is_update_class(db::txn_class cls) {
  switch (cls) {
    case c_neworder:
    case c_payment_long:
    case c_payment_short:
    case c_delivery:
      return true;
    default:
      return false;
  }
}

workload_profile workload_profile::pentium3_1ghz() {
  workload_profile p;
  // Means chosen so the mix-weighted CPU demand is ~22 ms/transaction
  // (plus ~2 ms commit processing), saturating one 1 GHz CPU at ~500
  // clients with an 11.5 s mean think time — the paper's Fig 5/6 knee.
  // Coefficients of variation reflect that within-class behaviour is
  // homogeneous after the long/short splits (§4.1: stddev below 30% of
  // the mean when not saturated).
  p.cpu[c_neworder] = util::lognormal_dist(0.0215, 0.30, 0.25);
  p.cpu[c_payment_long] = util::lognormal_dist(0.013, 0.25, 0.15);
  p.cpu[c_payment_short] = util::lognormal_dist(0.0085, 0.25, 0.15);
  p.cpu[c_orderstatus_long] = util::lognormal_dist(0.013, 0.30, 0.15);
  p.cpu[c_orderstatus_short] = util::lognormal_dist(0.005, 0.25, 0.10);
  p.cpu[c_delivery] = util::lognormal_dist(0.077, 0.30, 0.60);
  p.cpu[c_stocklevel] = util::lognormal_dist(0.030, 0.35, 0.30);
  p.think_time = util::exponential_dist(11.5);
  return p;
}

}  // namespace dbsm::tpcc
