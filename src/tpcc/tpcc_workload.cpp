#include "tpcc/tpcc_workload.hpp"

#include <string>
#include <utility>

#include "util/check.hpp"

namespace dbsm::tpcc {

namespace {

/// Source for one terminal: wraps the site's shared generator with the
/// client's home (warehouse, district).
class tpcc_source final : public core::txn_source {
 public:
  tpcc_source(workload& load, std::uint32_t home_w, std::uint32_t home_d)
      : load_(load), home_w_(home_w), home_d_(home_d) {}

  db::txn_request next(sim_time now) override {
    load_.set_now(now);
    return load_.next(home_w_, home_d_);
  }

  double think_seconds(util::rng& gen) override {
    return load_.profile().think_time->sample(gen);
  }

 private:
  workload& load_;
  std::uint32_t home_w_;
  std::uint32_t home_d_;
};

}  // namespace

tpcc_workload::tpcc_workload(workload_profile profile)
    : profile_(std::move(profile)) {}

const char* tpcc_workload::class_name(db::txn_class cls) const {
  return tpcc::class_name(cls);
}

bool tpcc_workload::is_update_class(db::txn_class cls) const {
  return tpcc::is_update_class(cls);
}

double tpcc_workload::mean_think_seconds() const {
  return profile_.think_time->mean();
}

void tpcc_workload::prepare(unsigned sites, unsigned clients,
                            util::rng gen) {
  DBSM_CHECK(loads_.empty());
  const unsigned warehouses = warehouses_for_clients(clients);
  for (unsigned i = 0; i < sites; ++i) {
    loads_.push_back(std::make_unique<tpcc::workload>(
        profile_, warehouses, gen.fork("load" + std::to_string(i))));
  }
}

std::unique_ptr<core::txn_source> tpcc_workload::make_source(
    const core::client_slot& slot, util::rng /*gen*/) {
  DBSM_CHECK(slot.site < loads_.size());
  // Warehouse i/10 so that one warehouse's clients spread over all sites
  // ("an equal share of clients is assigned to each site").
  const auto home_w =
      static_cast<std::uint32_t>(slot.index / clients_per_warehouse);
  const auto home_d =
      static_cast<std::uint32_t>(slot.index % districts_per_warehouse);
  return std::make_unique<tpcc_source>(*loads_[slot.site], home_w, home_d);
}

core::workload_factory factory(workload_profile profile) {
  return [profile = std::move(profile)] { return make_workload(profile); };
}

std::unique_ptr<core::workload> make_workload(workload_profile profile) {
  return std::make_unique<tpcc_workload>(std::move(profile));
}

}  // namespace dbsm::tpcc
