// Per-class transaction cost profiles (§4.1).
//
// The paper instruments PostgreSQL with virtualized cycle counters, runs
// TPC-C, and fits empirical per-class distributions of CPU time (commit
// processing is a further, nearly constant ~2 ms). We cannot re-profile a
// 2004 PostgreSQL on a Pentium III, so this module is the documented
// substitution: calibrated log-normal distributions whose means reproduce
// the paper's operating points (a single 1 GHz CPU saturates around 500
// clients at roughly 2600 committed transactions per minute).
//
// Classes that execute code conditionally (payment, orderstatus) are split
// into -long / -short subclasses exactly as the paper splits them to keep
// each class homogeneous.
#ifndef DBSM_TPCC_PROFILE_HPP
#define DBSM_TPCC_PROFILE_HPP

#include "db/transaction.hpp"
#include "util/distributions.hpp"

namespace dbsm::tpcc {

/// Transaction classes. payment/orderstatus split per §4.1.
enum txn_class : db::txn_class {
  c_neworder = 0,
  c_payment_long = 1,   // customer selected by last name (60%)
  c_payment_short = 2,  // customer selected by id (40%)
  c_orderstatus_long = 3,
  c_orderstatus_short = 4,
  c_delivery = 5,
  c_stocklevel = 6,
  num_classes = 7,
};

const char* class_name(db::txn_class cls);

/// True for classes that update the database (92% of the mix).
bool is_update_class(db::txn_class cls);

struct workload_profile {
  /// CPU time per class, in seconds (empirical-distribution substitutes).
  util::distribution_ptr cpu[num_classes];

  /// Client think time, seconds (§3.2 single-threaded closed loop).
  util::distribution_ptr think_time;

  /// Operation script shape: processing is split into this many slices
  /// interleaved with fetches. One slice keeps CPU queueing at saturation
  /// comparable to a per-query engine (a transaction waits in the run
  /// queue once, not once per slice).
  unsigned process_slices = 1;

  /// Transaction mix (§3.2: neworder and payment 44% each; the rest of
  /// the standard mix split evenly).
  double mix_neworder = 0.44;
  double mix_payment = 0.44;
  double mix_orderstatus = 0.04;
  double mix_delivery = 0.04;
  double mix_stocklevel = 0.04;

  /// Conditional-path split: fraction of payment/orderstatus by name.
  double by_name_fraction = 0.60;

  /// Fraction of payment customers resident at a remote warehouse and of
  /// neworder order-lines supplied by a remote warehouse (TPC-C 2.5/2.4).
  double payment_remote_fraction = 0.15;
  double neworder_remote_line_fraction = 0.01;

  /// Read-set escalation threshold (tuples) for multicast-bound sets
  /// (§3.3: "a threshold may be set, which defines when a table should be
  /// locked instead of a large subset of its tuples").
  std::size_t escalation_threshold = 64;

  /// Ablation knob: when false, unindexed scans contribute their tuples
  /// instead of a granule id — certification loses the scan-conflict
  /// channel and read sets grow (bench_ablation_escalation).
  bool escalate_scans = true;

  /// Calibrated defaults for the paper's testbed (PIII 1 GHz, §4.1).
  static workload_profile pentium3_1ghz();
};

}  // namespace dbsm::tpcc

#endif  // DBSM_TPCC_PROFILE_HPP
