// TPC-C traffic generation (§3.2): builds txn_requests — execution script
// plus certification read/write sets — for each of the five transaction
// types, scaled to the number of clients.
//
// Only the workload is taken from TPC-C: throughput/screen/keying
// constraints do not apply (§3.2).
#ifndef DBSM_TPCC_WORKLOAD_HPP
#define DBSM_TPCC_WORKLOAD_HPP

#include <vector>

#include "db/transaction.hpp"
#include "tpcc/profile.hpp"
#include "tpcc/schema.hpp"
#include "util/rng.hpp"

namespace dbsm::tpcc {

/// One workload generator per site; clients of the site share it (and its
/// per-district order counters).
class workload {
 public:
  workload(workload_profile profile, unsigned warehouses, util::rng gen);

  /// Generates the next request for a client homed at (warehouse,
  /// district). The request has no id/origin yet (the replica assigns
  /// them).
  db::txn_request next(std::uint32_t home_w, std::uint32_t home_d);

  /// Informs the generator of the current simulated time; state shared
  /// across replicas (the delivery queue head) is modeled as a function
  /// of it. Clients call this before generating.
  void set_now(sim_time now) { now_ = now; }

  /// Generates a request of a specific class (tests and targeted benches).
  db::txn_request make(db::txn_class cls, std::uint32_t home_w,
                       std::uint32_t home_d);

  const workload_profile& profile() const { return profile_; }
  unsigned warehouses() const { return warehouses_; }

  /// TPC-C non-uniform random (clause 2.1.6); exposed for tests.
  std::uint32_t nurand(std::uint32_t a, std::uint32_t x, std::uint32_t y);

 private:
  struct build {
    std::vector<db::operation> ops;
    std::vector<db::item_id> reads;
    std::vector<db::item_id> writes;  // tuples + advertised granules
    std::uint32_t update_bytes = 0;
    std::uint32_t fetch_bytes = 0;
    std::uint32_t disk_sectors = 0;
    std::uint32_t orderline_writes = 0;
  };

  db::txn_request finish(db::txn_class cls, build&& b);
  void scan_customers(build& b, std::uint32_t w);
  void read_tuple(build& b, table t, std::uint32_t w, std::uint32_t d,
                  std::uint32_t row);
  void write_tuple(build& b, table t, std::uint32_t w, std::uint32_t d,
                   std::uint32_t row);

  std::uint32_t other_warehouse(std::uint32_t w);
  std::uint32_t& next_o(std::uint32_t w, std::uint32_t d);

  db::txn_request gen_neworder(std::uint32_t w);
  db::txn_request gen_payment(std::uint32_t w, bool by_name);
  db::txn_request gen_orderstatus(std::uint32_t w, bool by_name);
  db::txn_request gen_delivery(std::uint32_t w);
  db::txn_request gen_stocklevel(std::uint32_t w, std::uint32_t d);

  workload_profile profile_;
  unsigned warehouses_;
  util::rng rng_;
  sim_time now_ = 0;
  std::uint32_t nurand_c_last_ = 0;
  std::uint32_t nurand_c_id_ = 0;
  std::vector<std::uint32_t> next_o_;  // per (w, d): next order row
};

}  // namespace dbsm::tpcc

#endif  // DBSM_TPCC_WORKLOAD_HPP
