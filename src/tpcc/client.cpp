#include "tpcc/client.hpp"

#include <utility>

#include "util/check.hpp"

namespace dbsm::tpcc {

client::client(sim::simulator& sim, workload& load, std::uint32_t home_w,
               std::uint32_t home_d, submit_fn submit, report_fn report,
               util::rng gen)
    : sim_(sim), load_(load), home_w_(home_w), home_d_(home_d),
      submit_(std::move(submit)), report_(std::move(report)), rng_(gen) {
  DBSM_CHECK(submit_ != nullptr);
}

void client::start(sim_duration initial_delay) {
  sim_.schedule_after(initial_delay, [this] { issue(); });
}

void client::issue() {
  if (stopped_) return;
  load_.set_now(sim_.now());
  db::txn_request req = load_.next(home_w_, home_d_);
  const db::txn_class cls = req.cls;
  const sim_time submitted = sim_.now();
  waiting_ = true;
  submit_(std::move(req), [this, cls, submitted](db::txn_outcome outcome) {
    on_reply(cls, submitted, outcome);
  });
}

void client::on_reply(db::txn_class cls, sim_time submitted,
                      db::txn_outcome outcome) {
  waiting_ = false;
  ++completed_;
  if (report_) {
    result r;
    r.cls = cls;
    r.outcome = outcome;
    r.submitted = submitted;
    r.finished = sim_.now();
    report_(r);
  }
  if (stopped_) return;
  // Aborted transactions are not resubmitted (§5.1); the client simply
  // thinks and moves on to a fresh request.
  const double think_s = load_.profile().think_time->sample(rng_);
  sim_.schedule_after(from_seconds(std::max(think_s, 0.0)),
                      [this] { issue(); });
}

}  // namespace dbsm::tpcc
