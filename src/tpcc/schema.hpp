// TPC-C schema constants (§3.2): cardinalities and tuple sizes.
//
// "The database size is configured for each simulation run according to
// the number of clients as each warehouse supports 10 emulated clients.
// As an example, with 2000 clients, the database contains in excess of
// 10^9 tuples, each ranging from 8 to 655 bytes."
// (2000 clients -> 200 warehouses -> dominated by 100k stock rows and
// 30k customers plus history/orderlines per warehouse.)
#ifndef DBSM_TPCC_SCHEMA_HPP
#define DBSM_TPCC_SCHEMA_HPP

#include <cstdint>

#include "db/item.hpp"

namespace dbsm::tpcc {

enum class table : unsigned {
  warehouse = 0,
  district = 1,
  customer = 2,
  history = 3,
  orders = 4,
  neworder = 5,
  orderline = 6,
  item = 7,
  stock = 8,
};

constexpr unsigned table_count = 9;

/// Average tuple sizes in bytes (TPC-C clause 1.2 row definitions).
constexpr std::uint32_t tuple_bytes(table t) {
  switch (t) {
    case table::warehouse: return 89;
    case table::district: return 95;
    case table::customer: return 655;
    case table::history: return 46;
    case table::orders: return 24;
    case table::neworder: return 8;
    case table::orderline: return 54;
    case table::item: return 82;
    case table::stock: return 306;
  }
  return 0;
}

constexpr unsigned districts_per_warehouse = 10;
constexpr unsigned customers_per_district = 3000;
constexpr unsigned item_count = 100000;
constexpr unsigned stock_per_warehouse = 100000;
constexpr unsigned initial_orders_per_district = 3000;

/// §3.2: "each warehouse supports 10 emulated clients".
constexpr unsigned clients_per_warehouse = 10;

constexpr unsigned warehouses_for_clients(unsigned clients) {
  return clients == 0 ? 1
                      : (clients + clients_per_warehouse - 1) /
                            clients_per_warehouse;
}

/// Tuple id helpers over the db::item_id codec.
constexpr db::item_id tuple_id(table t, std::uint32_t w, std::uint32_t d,
                               std::uint32_t row) {
  return db::make_item(static_cast<unsigned>(t), w, d, row);
}

/// Warehouse-level granule: covers every tuple of `t` belonging to
/// warehouse `w`. Used for scans whose access path is indexed on the
/// warehouse only (customer by-name selection) — see DESIGN.md.
constexpr db::item_id wh_granule(table t, std::uint32_t w) {
  return db::make_granule(static_cast<unsigned>(t), w, 0);
}

/// District-level granule: covers the tuples of `t` in one district.
/// Used for scans indexed down to the district (the delivery transaction's
/// min-order search over NEW-ORDER).
constexpr db::item_id district_granule(table t, std::uint32_t w,
                                       std::uint32_t d) {
  return db::make_granule(static_cast<unsigned>(t), w, d);
}

/// The granule a *write* to table `t` must advertise so escalated reads
/// catch it — matching the read-side granularity per access path:
/// customer scans are warehouse-level, NEW-ORDER scans district-level,
/// and no other table has scan readers. Returns 0 for "none".
constexpr db::item_id write_granule(table t, std::uint32_t w,
                                    std::uint32_t d) {
  switch (t) {
    case table::customer: return wh_granule(table::customer, w);
    case table::neworder: return district_granule(table::neworder, w, d);
    default: return 0;
  }
}

}  // namespace dbsm::tpcc

#endif  // DBSM_TPCC_SCHEMA_HPP
