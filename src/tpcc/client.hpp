// Client model (§3.2): a single-threaded process attached to one database
// site. It issues a transaction, blocks until the reply, pauses for a
// think time, and repeats. Each terminal outcome is logged with submit and
// finish timestamps (the source of all latency/throughput/abort metrics).
#ifndef DBSM_TPCC_CLIENT_HPP
#define DBSM_TPCC_CLIENT_HPP

#include <functional>

#include "sim/simulator.hpp"
#include "tpcc/workload.hpp"

namespace dbsm::tpcc {

class client {
 public:
  /// One completed transaction, as logged by the client (§3.2).
  struct result {
    db::txn_class cls = 0;
    db::txn_outcome outcome = db::txn_outcome::committed;
    sim_time submitted = 0;
    sim_time finished = 0;
  };

  /// Hands a request to the local replica; the callback delivers the
  /// terminal outcome.
  using submit_fn =
      std::function<void(db::txn_request,
                         std::function<void(db::txn_outcome)>)>;
  using report_fn = std::function<void(const result&)>;

  client(sim::simulator& sim, workload& load, std::uint32_t home_w,
         std::uint32_t home_d, submit_fn submit, report_fn report,
         util::rng gen);

  /// Begins issuing after `initial_delay` (staggered start).
  void start(sim_duration initial_delay);

  /// Stops issuing new transactions (e.g. its site crashed).
  void stop() { stopped_ = true; }

  std::uint64_t completed() const { return completed_; }
  bool waiting_for_reply() const { return waiting_; }

 private:
  void issue();
  void on_reply(db::txn_class cls, sim_time submitted,
                db::txn_outcome outcome);

  sim::simulator& sim_;
  workload& load_;
  std::uint32_t home_w_;
  std::uint32_t home_d_;
  submit_fn submit_;
  report_fn report_;
  util::rng rng_;
  bool stopped_ = false;
  bool waiting_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace dbsm::tpcc

#endif  // DBSM_TPCC_CLIENT_HPP
