#include "tpcc/workload.hpp"

#include <algorithm>

#include "cert/rwset.hpp"
#include "util/check.hpp"

namespace dbsm::tpcc {

workload::workload(workload_profile profile, unsigned warehouses,
                   util::rng gen)
    : profile_(std::move(profile)), warehouses_(warehouses), rng_(gen) {
  DBSM_CHECK(warehouses_ >= 1);
  next_o_.assign(warehouses_ * districts_per_warehouse,
                 initial_orders_per_district);
  nurand_c_last_ = static_cast<std::uint32_t>(rng_.uniform_int(0, 255));
  nurand_c_id_ = static_cast<std::uint32_t>(rng_.uniform_int(0, 1023));
}

std::uint32_t workload::nurand(std::uint32_t a, std::uint32_t x,
                               std::uint32_t y) {
  const std::uint32_t c = a == 255 ? nurand_c_last_ : nurand_c_id_;
  const auto r1 = static_cast<std::uint32_t>(rng_.uniform_int(0, a));
  const auto r2 = static_cast<std::uint32_t>(rng_.uniform_int(x, y));
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

std::uint32_t& workload::next_o(std::uint32_t w, std::uint32_t d) {
  return next_o_.at(w * districts_per_warehouse + d);
}

std::uint32_t workload::other_warehouse(std::uint32_t w) {
  if (warehouses_ <= 1) return w;
  auto o = static_cast<std::uint32_t>(rng_.uniform_int(0, warehouses_ - 2));
  if (o >= w) ++o;
  return o;
}

void workload::read_tuple(build& b, table t, std::uint32_t w,
                          std::uint32_t d, std::uint32_t row) {
  b.reads.push_back(tuple_id(t, w, d, row));
  b.fetch_bytes += tuple_bytes(t);
}

void workload::write_tuple(build& b, table t, std::uint32_t w,
                           std::uint32_t d, std::uint32_t row) {
  b.writes.push_back(tuple_id(t, w, d, row));
  // Advertise the granule scan-readers of this table use, so escalated
  // reads certify against this write (none for unscanned tables).
  const db::item_id g = write_granule(t, w, d);
  if (g != 0) b.writes.push_back(g);
  b.update_bytes += tuple_bytes(t);
  // Disk model: scattered tuples occupy one sector each; consecutive
  // orderline inserts of one order pack several rows per page.
  if (t == table::orderline) {
    ++b.orderline_writes;
  } else {
    ++b.disk_sectors;
  }
}

void workload::scan_customers(build& b, std::uint32_t w) {
  // Selection by last name: an unindexed scan over the warehouse's
  // customers in the profiled engine. With escalation on (§3.3), the read
  // set carries the warehouse-level customer granule; otherwise the
  // matching tuples travel individually.
  const auto rows = static_cast<unsigned>(rng_.uniform_int(20, 40));
  b.fetch_bytes += tuple_bytes(table::customer) * rows;
  if (profile_.escalate_scans && rows > 0) {
    b.reads.push_back(wh_granule(table::customer, w));
    return;
  }
  b.reads.reserve(b.reads.size() + rows);
  for (unsigned i = 0; i < rows; ++i) {
    const auto d = static_cast<std::uint32_t>(
        rng_.uniform_int(0, districts_per_warehouse - 1));
    b.reads.push_back(tuple_id(
        table::customer, w, d,
        static_cast<std::uint32_t>(
            rng_.uniform_int(0, customers_per_district - 1))));
  }
}

db::txn_request workload::finish(db::txn_class cls, build&& b) {
  db::txn_request req;
  req.cls = cls;
  req.read_set = std::move(b.reads);
  req.update_bytes = b.update_bytes;
  req.write_set = std::move(b.writes);
  req.disk_sectors = static_cast<std::uint16_t>(
      b.disk_sectors + (b.orderline_writes + 3) / 4);
  cert::normalize(req.read_set);
  cert::normalize(req.write_set);

  // Execution script: one aggregate fetch (the cache model decides what
  // touches storage), processing split into slices.
  const double cpu_s = profile_.cpu[cls]->sample(rng_);
  const auto total_cpu = from_seconds(std::max(cpu_s, 0.0002));
  const unsigned slices = std::max(1u, profile_.process_slices);

  db::operation fetch;
  fetch.k = db::operation::kind::fetch;
  fetch.bytes = b.fetch_bytes;
  req.ops.push_back(fetch);
  for (unsigned i = 0; i < slices; ++i) {
    db::operation proc;
    proc.k = db::operation::kind::process;
    proc.cpu = total_cpu / slices;
    req.ops.push_back(proc);
  }
  if (!b.writes.empty()) {
    db::operation wr;
    wr.k = db::operation::kind::write;
    wr.item = b.writes.front();
    wr.bytes = b.update_bytes;
    req.ops.push_back(wr);
  }
  return req;
}

db::txn_request workload::gen_neworder(std::uint32_t w) {
  build b;
  const auto d = static_cast<std::uint32_t>(
      rng_.uniform_int(0, districts_per_warehouse - 1));
  const std::uint32_t c = nurand(1023, 0, customers_per_district - 1);

  read_tuple(b, table::warehouse, w, 0, 0);
  read_tuple(b, table::district, w, d, 0);
  read_tuple(b, table::customer, w, d, c);
  write_tuple(b, table::district, w, d, 0);  // d_next_o_id

  const auto ol_cnt = static_cast<unsigned>(rng_.uniform_int(5, 15));
  // Sizes are known up front: 2 set entries per order line plus the fixed
  // header tuples (writes double for the advertised granule markers).
  b.reads.reserve(3 + 2 * ol_cnt);
  b.writes.reserve(2 * (3 + ol_cnt + ol_cnt));
  for (unsigned line = 0; line < ol_cnt; ++line) {
    const std::uint32_t item = nurand(8191, 0, item_count - 1);
    const bool remote =
        rng_.bernoulli(profile_.neworder_remote_line_fraction);
    const std::uint32_t sw = remote ? other_warehouse(w) : w;
    read_tuple(b, table::item, 0, 0, item);
    read_tuple(b, table::stock, sw, 0, item);
    write_tuple(b, table::stock, sw, 0, item);
  }

  const std::uint32_t o = next_o(w, d)++;
  write_tuple(b, table::orders, w, d, o);
  write_tuple(b, table::neworder, w, d, o);
  for (unsigned line = 0; line < ol_cnt; ++line)
    write_tuple(b, table::orderline, w, d, o * 16 + line);

  return finish(c_neworder, std::move(b));
}

db::txn_request workload::gen_payment(std::uint32_t w, bool by_name) {
  build b;
  const auto d = static_cast<std::uint32_t>(
      rng_.uniform_int(0, districts_per_warehouse - 1));
  // 15% of customers belong to a remote warehouse.
  const bool remote = warehouses_ > 1 &&
                      rng_.bernoulli(profile_.payment_remote_fraction);
  const std::uint32_t cw = remote ? other_warehouse(w) : w;
  const auto cd = static_cast<std::uint32_t>(
      rng_.uniform_int(0, districts_per_warehouse - 1));
  const std::uint32_t c = nurand(1023, 0, customers_per_district - 1);

  read_tuple(b, table::warehouse, w, 0, 0);
  read_tuple(b, table::district, w, d, 0);
  if (by_name) scan_customers(b, cw);
  read_tuple(b, table::customer, cw, cd, c);

  write_tuple(b, table::warehouse, w, 0, 0);  // w_ytd: the hotspot
  write_tuple(b, table::district, w, d, 0);   // d_ytd
  write_tuple(b, table::customer, cw, cd, c);
  // History insert: no key, never conflicts; a random row id from a large
  // space models the heap append.
  write_tuple(b, table::history, w, d,
              static_cast<std::uint32_t>(rng_.uniform_int(0, (1 << 25) - 2)));

  return finish(by_name ? c_payment_long : c_payment_short, std::move(b));
}

db::txn_request workload::gen_orderstatus(std::uint32_t w, bool by_name) {
  build b;
  const auto d = static_cast<std::uint32_t>(
      rng_.uniform_int(0, districts_per_warehouse - 1));
  const std::uint32_t c = nurand(1023, 0, customers_per_district - 1);

  if (by_name) scan_customers(b, w);
  read_tuple(b, table::customer, w, d, c);

  // The customer's most recent order and its lines (indexed lookups).
  const std::uint32_t newest = next_o(w, d);
  const auto back = static_cast<std::uint32_t>(rng_.uniform_int(1, 20));
  const std::uint32_t o = newest > back ? newest - back : 1;
  read_tuple(b, table::orders, w, d, o);
  const auto lines = static_cast<unsigned>(rng_.uniform_int(5, 15));
  for (unsigned line = 0; line < lines; ++line)
    read_tuple(b, table::orderline, w, d, o * 16 + line);

  return finish(by_name ? c_orderstatus_long : c_orderstatus_short,
                std::move(b));
}

db::txn_request workload::gen_delivery(std::uint32_t w) {
  build b;
  // The oldest undelivered order per district is a property of the shared
  // database state: every replica's delivery transaction selects the SAME
  // rows (min o_id via index — a point lookup). We model that shared state
  // as a deterministic function of simulated time, advancing at the
  // expected delivery rate; concurrent deliveries at one warehouse thus
  // target identical rows and conflict write-write, exactly as the real
  // system's would.
  const double per_district_rate = clients_per_warehouse *
                                   profile_.mix_delivery /
                                   profile_.think_time->mean() /
                                   districts_per_warehouse;
  const auto advance = static_cast<std::uint32_t>(
      to_seconds(now_) * per_district_rate);
  // Upper bound: per district 2 header reads + 15 line reads, and twice
  // (granule markers) the 3 header writes + 15 line writes.
  b.reads.reserve(districts_per_warehouse * 17);
  b.writes.reserve(districts_per_warehouse * 36);
  for (std::uint32_t d = 0; d < districts_per_warehouse; ++d) {
    const std::uint32_t o = 2101 + advance;
    read_tuple(b, table::neworder, w, d, o);
    read_tuple(b, table::orders, w, d, o);
    write_tuple(b, table::neworder, w, d, o);  // delete
    write_tuple(b, table::orders, w, d, o);    // carrier id
    const auto lines = static_cast<unsigned>(rng_.uniform_int(5, 15));
    for (unsigned line = 0; line < lines; ++line) {
      read_tuple(b, table::orderline, w, d, o * 16 + line);
      write_tuple(b, table::orderline, w, d, o * 16 + line);
    }
    const std::uint32_t c = nurand(1023, 0, customers_per_district - 1);
    write_tuple(b, table::customer, w, d, c);  // balance
  }
  return finish(c_delivery, std::move(b));
}

db::txn_request workload::gen_stocklevel(std::uint32_t w, std::uint32_t d) {
  build b;
  read_tuple(b, table::district, w, d, 0);
  // The last 20 orders' lines and their stock entries — all indexed
  // point lookups, so the read set stays at tuple granularity.
  const std::uint32_t newest = next_o(w, d);
  b.reads.reserve(1 + 20 * 2 * 15);  // ≤15 lines × (orderline + stock) × 20
  for (unsigned k = 0; k < 20; ++k) {
    const std::uint32_t o = newest > (k + 1) ? newest - (k + 1) : 1;
    const auto lines = static_cast<unsigned>(rng_.uniform_int(5, 15));
    for (unsigned line = 0; line < lines; ++line) {
      read_tuple(b, table::orderline, w, d, o * 16 + line);
      const std::uint32_t item = nurand(8191, 0, item_count - 1);
      read_tuple(b, table::stock, w, 0, item);
    }
  }
  return finish(c_stocklevel, std::move(b));
}

db::txn_request workload::make(db::txn_class cls, std::uint32_t home_w,
                               std::uint32_t home_d) {
  switch (cls) {
    case c_neworder: return gen_neworder(home_w);
    case c_payment_long: return gen_payment(home_w, true);
    case c_payment_short: return gen_payment(home_w, false);
    case c_orderstatus_long: return gen_orderstatus(home_w, true);
    case c_orderstatus_short: return gen_orderstatus(home_w, false);
    case c_delivery: return gen_delivery(home_w);
    case c_stocklevel: return gen_stocklevel(home_w, home_d);
    default:
      DBSM_CHECK_MSG(false, "unknown class " << cls);
  }
}

db::txn_request workload::next(std::uint32_t home_w, std::uint32_t home_d) {
  DBSM_CHECK(home_w < warehouses_);
  const double pick = rng_.uniform();
  const workload_profile& p = profile_;
  double acc = p.mix_neworder;
  if (pick < acc) return gen_neworder(home_w);
  acc += p.mix_payment;
  if (pick < acc)
    return gen_payment(home_w, rng_.bernoulli(p.by_name_fraction));
  acc += p.mix_orderstatus;
  if (pick < acc)
    return gen_orderstatus(home_w, rng_.bernoulli(p.by_name_fraction));
  acc += p.mix_delivery;
  if (pick < acc) return gen_delivery(home_w);
  return gen_stocklevel(home_w, home_d);
}

}  // namespace dbsm::tpcc
