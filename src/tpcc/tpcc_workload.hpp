// TPC-C as one implementation of the core::workload interface (§3.2).
//
// The generator machinery (tpcc/workload.hpp) is unchanged; this adapter
// owns one shared generator per site — the site's clients share it and its
// per-district order counters — and assigns each client its home
// warehouse/district exactly as the paper does ("each warehouse supports
// 10 emulated clients").
#ifndef DBSM_TPCC_TPCC_WORKLOAD_HPP
#define DBSM_TPCC_TPCC_WORKLOAD_HPP

#include <vector>

#include "tpcc/workload.hpp"
#include "workload/workload.hpp"

namespace dbsm::tpcc {

class tpcc_workload final : public core::workload {
 public:
  explicit tpcc_workload(workload_profile profile);

  const char* name() const override { return "tpcc"; }
  std::size_t classes() const override { return num_classes; }
  const char* class_name(db::txn_class cls) const override;
  bool is_update_class(db::txn_class cls) const override;
  double mean_think_seconds() const override;

  void prepare(unsigned sites, unsigned clients, util::rng gen) override;
  std::unique_ptr<core::txn_source> make_source(
      const core::client_slot& slot, util::rng gen) override;

 private:
  workload_profile profile_;
  // NB: qualified — inside this class the unqualified name `workload`
  // denotes the core::workload base, not the tpcc generator.
  std::vector<std::unique_ptr<tpcc::workload>> loads_;  // one per site
};

/// Factory for experiment_config::workload. A null factory already means
/// TPC-C; use this to run TPC-C with a non-default profile explicitly.
core::workload_factory factory(workload_profile profile);

/// Builds the default TPC-C workload instance from a profile (the harness
/// calls this when experiment_config::workload is null).
std::unique_ptr<core::workload> make_workload(workload_profile profile);

}  // namespace dbsm::tpcc

#endif  // DBSM_TPCC_TPCC_WORKLOAD_HPP
