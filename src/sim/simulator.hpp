// Discrete-event simulation kernel (the SSF substitute, §2.1).
//
// A single event queue ordered by (time, insertion sequence) gives a
// deterministic total order of events: two runs with the same seed execute
// the exact same event sequence. All model components share one simulator.
#ifndef DBSM_SIM_SIMULATOR_HPP
#define DBSM_SIM_SIMULATOR_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace dbsm::sim {

/// Callback executed when an event fires.
using event_fn = std::function<void()>;

/// Handle for cancelling a scheduled event. 0 is never a valid id.
using event_id = std::uint64_t;

/// Deterministic discrete-event scheduler.
class simulator {
 public:
  simulator() = default;
  simulator(const simulator&) = delete;
  simulator& operator=(const simulator&) = delete;

  /// Current simulated time.
  sim_time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Events scheduled for the
  /// same instant fire in scheduling order.
  event_id schedule_at(sim_time t, event_fn fn);

  /// Schedules `fn` after `d` nanoseconds (>= 0).
  event_id schedule_after(sim_duration d, event_fn fn);

  /// Cancels a pending event. Returns true if it had not yet fired.
  bool cancel(event_id id);

  /// Runs until the queue is empty or stop() is called.
  /// Returns the number of events executed.
  std::size_t run();

  /// Runs all events with time <= `limit`, then advances now to `limit`.
  std::size_t run_until(sim_time limit);

  /// Executes at most `n` events.
  std::size_t run_events(std::size_t n);

  /// Executes a single event; returns false if the queue was empty.
  bool step();

  /// Requests the current run()/run_until() loop to return after the
  /// current event finishes.
  void stop() { stop_requested_ = true; }

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::size_t executed() const { return executed_; }

 private:
  struct entry {
    sim_time t;
    std::uint64_t seq;
    event_id id;
    // Heap is a max-heap by default; invert for earliest-first.
    bool operator<(const entry& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  /// Pops the next non-cancelled event and runs it. Pre: queue not empty
  /// after discarding tombstones; returns false otherwise.
  bool pop_and_run();

  sim_time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t executed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<entry> heap_;
  std::unordered_map<event_id, event_fn> callbacks_;
  std::unordered_set<event_id> cancelled_;
};

}  // namespace dbsm::sim

#endif  // DBSM_SIM_SIMULATOR_HPP
