#include "sim/simulator.hpp"

#include <utility>

namespace dbsm::sim {

event_id simulator::schedule_at(sim_time t, event_fn fn) {
  DBSM_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t
                                                           << " now=" << now_);
  DBSM_CHECK(fn != nullptr);
  const event_id id = next_seq_++;
  heap_.push(entry{t, id, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

event_id simulator::schedule_after(sim_duration d, event_fn fn) {
  DBSM_CHECK_MSG(d >= 0, "negative delay: " << d);
  return schedule_at(now_ + d, std::move(fn));
}

bool simulator::cancel(event_id id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool simulator::pop_and_run() {
  while (!heap_.empty()) {
    const entry e = heap_.top();
    heap_.pop();
    auto cit = cancelled_.find(e.id);
    if (cit != cancelled_.end()) {
      cancelled_.erase(cit);
      continue;
    }
    auto it = callbacks_.find(e.id);
    DBSM_CHECK(it != callbacks_.end());
    event_fn fn = std::move(it->second);
    callbacks_.erase(it);
    DBSM_CHECK_MSG(e.t >= now_, "event queue went backwards");
    now_ = e.t;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::size_t simulator::run() {
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && pop_and_run()) ++n;
  return n;
}

std::size_t simulator::run_until(sim_time limit) {
  DBSM_CHECK(limit >= now_);
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_) {
    // Peek the next live event without running it.
    bool found = false;
    sim_time next_t = 0;
    while (!heap_.empty()) {
      const entry& e = heap_.top();
      if (cancelled_.count(e.id)) {
        cancelled_.erase(e.id);
        heap_.pop();
        continue;
      }
      next_t = e.t;
      found = true;
      break;
    }
    if (!found || next_t > limit) break;
    pop_and_run();
    ++n;
  }
  if (!stop_requested_ && now_ < limit) now_ = limit;
  return n;
}

std::size_t simulator::run_events(std::size_t n) {
  stop_requested_ = false;
  std::size_t done = 0;
  while (done < n && !stop_requested_ && pop_and_run()) ++done;
  return done;
}

bool simulator::step() { return pop_and_run(); }

}  // namespace dbsm::sim
