// Tuple identifiers (§3.3).
//
// Every tuple is a 64-bit integer with the table identifier in the highest
// order bits, exactly as the certification prototype requires: comparing a
// tuple id against a table-granule id reduces to prefix arithmetic.
//
// Layout (most significant first):
//   [63:58] table        (6 bits)
//   [57:34] warehouse    (24 bits)
//   [33:26] district     (8 bits)
//   [25:1]  row          (25 bits)
//   [0]     granule flag (1 = identifies the whole (table, warehouse,
//                         district) granule rather than one tuple)
//
// Granule ids implement the paper's lock-escalation: when a read-set is too
// large to multicast tuple-by-tuple (a scan), it is replaced by the granule
// id — "similar to the common practice of upgrading individual locks on
// tuples to a single table lock". Point writes additionally record the
// granule they fall into, so scans and point writes conflict correctly.
#ifndef DBSM_DB_ITEM_HPP
#define DBSM_DB_ITEM_HPP

#include <cstdint>

namespace dbsm::db {

using item_id = std::uint64_t;

constexpr int table_shift = 58;
constexpr int warehouse_shift = 34;
constexpr int district_shift = 26;
constexpr int row_shift = 1;

constexpr std::uint64_t table_max = (1ull << 6) - 1;
constexpr std::uint64_t warehouse_max = (1ull << 24) - 1;
constexpr std::uint64_t district_max = (1ull << 8) - 1;
constexpr std::uint64_t row_max = (1ull << 25) - 1;

/// Builds the id of one tuple.
constexpr item_id make_item(unsigned table, std::uint32_t warehouse,
                            std::uint32_t district, std::uint32_t row) {
  return (static_cast<item_id>(table & table_max) << table_shift) |
         (static_cast<item_id>(warehouse & warehouse_max) << warehouse_shift) |
         (static_cast<item_id>(district & district_max) << district_shift) |
         (static_cast<item_id>(row & row_max) << row_shift);
}

/// Builds the escalated id covering all tuples of (table, warehouse,
/// district). district ~0 covers the whole warehouse slice of the table.
constexpr item_id make_granule(unsigned table, std::uint32_t warehouse,
                               std::uint32_t district) {
  return make_item(table, warehouse, district, 0) | 1ull;
}

constexpr bool is_granule(item_id id) { return (id & 1ull) != 0; }

constexpr unsigned item_table(item_id id) {
  return static_cast<unsigned>((id >> table_shift) & table_max);
}
constexpr std::uint32_t item_warehouse(item_id id) {
  return static_cast<std::uint32_t>((id >> warehouse_shift) & warehouse_max);
}
constexpr std::uint32_t item_district(item_id id) {
  return static_cast<std::uint32_t>((id >> district_shift) & district_max);
}
constexpr std::uint32_t item_row(item_id id) {
  return static_cast<std::uint32_t>((id >> row_shift) & row_max);
}

/// The granule a tuple id belongs to.
constexpr item_id granule_of(item_id id) {
  return (id & ~((row_max << row_shift) | 1ull)) | 1ull;
}

}  // namespace dbsm::db

#endif  // DBSM_DB_ITEM_HPP
