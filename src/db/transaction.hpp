// Transaction representation shared by the workload generator, the
// database server model, and the certification prototype.
#ifndef DBSM_DB_TRANSACTION_HPP
#define DBSM_DB_TRANSACTION_HPP

#include <cstdint>
#include <vector>

#include "db/item.hpp"
#include "util/types.hpp"

namespace dbsm::db {

/// One step of a transaction's execution script (§3.1): fetch a data item,
/// do some processing, or write back a data item.
struct operation {
  enum class kind : std::uint8_t { fetch, process, write };
  kind k = kind::process;
  item_id item = 0;          // fetch / write
  std::uint32_t bytes = 0;   // tuple size for fetch / write
  sim_duration cpu = 0;      // processing time for process ops
};

/// Workload-defined transaction class (e.g. tpcc::payment_long).
using txn_class = std::uint16_t;

/// A transaction request as issued by a client.
struct txn_request {
  std::uint64_t id = 0;      // globally unique (site in high bits)
  txn_class cls = 0;
  node_id origin = 0;        // site that executed it
  std::vector<operation> ops;

  /// Sorted, deduplicated certification sets. Read sets may contain granule
  /// ids (escalated scans); write sets contain written tuples plus the
  /// granules those tuples fall into.
  std::vector<item_id> read_set;
  std::vector<item_id> write_set;

  /// Bytes of written tuple values (sizes message padding and disk load).
  std::uint32_t update_bytes = 0;

  /// Storage sectors the commit writes (workload-computed: scattered
  /// tuples one sector each, sequential inserts packed). 0 means "one
  /// sector per written tuple".
  std::uint16_t disk_sectors = 0;

  bool read_only() const { return write_set.empty(); }

  /// Tuples to lock / write to disk: write_set minus granule markers.
  /// Fills `out` (cleared first); callers on the per-transaction hot path
  /// pass a reused scratch vector so no allocation occurs at steady state.
  void lock_items_into(std::vector<item_id>& out) const {
    out.clear();
    out.reserve(write_set.size());
    for (item_id it : write_set)
      if (!is_granule(it)) out.push_back(it);
  }

  std::vector<item_id> lock_items() const {
    std::vector<item_id> out;
    lock_items_into(out);
    return out;
  }
};

/// Terminal outcome of a transaction, with the abort cause.
enum class txn_outcome : std::uint8_t {
  committed,
  aborted_lock,     // waiter aborted by a committing lock holder
  aborted_preempt,  // holder preempted by a certified (remote) transaction
  aborted_cert,     // certification found a conflicting concurrent commit
};

constexpr const char* outcome_name(txn_outcome o) {
  switch (o) {
    case txn_outcome::committed: return "committed";
    case txn_outcome::aborted_lock: return "aborted_lock";
    case txn_outcome::aborted_preempt: return "aborted_preempt";
    case txn_outcome::aborted_cert: return "aborted_cert";
  }
  return "?";
}

}  // namespace dbsm::db

#endif  // DBSM_DB_TRANSACTION_HPP
