// Concurrency control (§3.1), modeling PostgreSQL's multi-version policy:
//
//   * fetched items are ignored; updated items are exclusively locked;
//   * all locks of a transaction are acquired atomically (all-or-nothing,
//     which avoids deadlocks: the access set is known beforehand) and
//     released atomically at commit/abort;
//   * when a holder COMMITS, every transaction waiting on any of its locks
//     aborts (first-committer-wins write-write conflict);
//   * when a holder ABORTS, its locks pass to eligible waiters;
//   * certified transactions (remotely initiated, or local ones already
//     past certification) must commit: acquiring for them preempts and
//     aborts local uncertified holders right away, and they are never
//     themselves aborted by a committing holder.
#ifndef DBSM_DB_LOCK_TABLE_HPP
#define DBSM_DB_LOCK_TABLE_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "db/item.hpp"
#include "util/types.hpp"

namespace dbsm::db {

/// Why a queued/holding transaction was aborted by the lock table.
enum class lock_abort_cause : std::uint8_t {
  holder_committed,  // waiter lost to a first committer
  preempted,         // holder displaced by a certified transaction
};

class lock_table {
 public:
  using granted_fn = std::function<void()>;
  using aborted_fn = std::function<void(lock_abort_cause)>;

  /// Atomically requests exclusive locks on `items` for `txn`.
  /// If all are free (possibly after preempting local holders when
  /// `certified`), locks are taken and `granted` is called before
  /// returning. Otherwise the transaction waits; `granted` or `aborted`
  /// fires later. `items` must be free of duplicates.
  void acquire(std::uint64_t txn, std::span<const item_id> items,
               bool certified, granted_fn granted, aborted_fn aborted);

  /// Marks a holding transaction as certified (it passed certification and
  /// can no longer be preempted).
  void mark_certified(std::uint64_t txn);

  /// Releases on commit: waiters on the same locks abort (write-write),
  /// except certified waiters, which then retry acquisition.
  void release_commit(std::uint64_t txn);

  /// Releases on abort: locks pass to the next eligible waiters.
  void release_abort(std::uint64_t txn);

  /// True if the transaction currently holds its locks.
  bool holds(std::uint64_t txn) const;
  /// True if the transaction is queued waiting.
  bool waiting(std::uint64_t txn) const;

  std::size_t held_items() const { return holders_.size(); }
  std::size_t waiting_txns() const;

  /// Invariant audit for tests: every holder/waiter structure consistent.
  void check_invariants() const;

 private:
  struct txn_rec {
    std::vector<item_id> items;
    bool certified = false;
    bool holding = false;
    std::uint64_t arrival = 0;
    granted_fn granted;
    aborted_fn aborted;
  };

  bool all_free(const std::vector<item_id>& items) const;
  void grant(std::uint64_t txn, txn_rec& rec);
  void remove_waiter_entries(std::uint64_t txn, const txn_rec& rec);
  void abort_txn(std::uint64_t txn, lock_abort_cause cause);
  /// Re-evaluates waiters of the given items in arrival order.
  void wake_waiters(const std::vector<item_id>& items);

  std::unordered_map<item_id, std::uint64_t> holders_;
  std::unordered_map<item_id, std::vector<std::uint64_t>> waiters_;
  std::unordered_map<std::uint64_t, txn_rec> txns_;
  std::uint64_t next_arrival_ = 1;
};

}  // namespace dbsm::db

#endif  // DBSM_DB_LOCK_TABLE_HPP
