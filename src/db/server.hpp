// Database server model (§3.1): a scheduler over a CPU pool, a storage
// element and the lock table. It executes the local-transaction path
// (atomic lock acquisition → fetch/process/write script → committing
// stage) and the remote path (certified apply with preemption).
//
// The server does NOT decide transaction termination: when a local
// transaction reaches its commit operation the server reports it
// "executed" and the replication layer (core::replica) runs the
// distributed termination protocol, then calls finish_commit /
// finish_abort.
#ifndef DBSM_DB_SERVER_HPP
#define DBSM_DB_SERVER_HPP

#include <functional>
#include <unordered_map>

#include "csrt/cpu.hpp"
#include "db/lock_table.hpp"
#include "db/storage.hpp"
#include "db/transaction.hpp"
#include "sim/simulator.hpp"

namespace dbsm::db {

struct server_config {
  storage_config storage;
  /// Processor time consumed by commit processing — "almost the same for
  /// all transactions (less than 2ms)" (§4.1).
  sim_duration commit_cpu = milliseconds(2);
  /// Processor time to apply a remotely-certified transaction's writes
  /// (no query processing, just installing tuple values).
  sim_duration remote_apply_cpu = milliseconds(1);
};

class server {
 public:
  /// Reports a local transaction that finished executing and entered the
  /// committing stage (locks held, ready for certification).
  using executed_fn = std::function<void(const txn_request&)>;
  /// Reports the terminal outcome of a local transaction to its submitter.
  using done_fn = std::function<void(std::uint64_t id, txn_outcome)>;

  server(sim::simulator& sim, csrt::cpu_pool& cpu, server_config cfg,
         util::rng gen);

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Starts a local transaction. `executed` fires when it reaches its
  /// commit operation; `done` fires exactly once with the terminal outcome
  /// (commit, or any abort cause, possibly before `executed`).
  void submit(txn_request req, executed_fn executed, done_fn done);

  /// Termination decision for a local update transaction in committing
  /// stage: commit — write back and release locks; `applied` fires after
  /// the disk write completes.
  void finish_commit(std::uint64_t id, std::function<void()> applied = {});

  /// finish_commit with an explicit disk-write size, for partial
  /// replication: the origin makes durable only the write-set slice its
  /// placement assigns to it (0 bytes still writes the one-sector commit
  /// record). Update transactions only.
  void finish_commit_bytes(std::uint64_t id, std::size_t disk_bytes,
                           std::function<void()> applied = {});

  /// Termination decision: certification abort.
  void finish_abort(std::uint64_t id);

  /// Applies a remotely-initiated certified transaction: acquires locks
  /// (preempting local holders), performs commit processing and disk
  /// writes, releases. `applied` fires when the writes are durable.
  void apply_remote(const txn_request& req, std::function<void()> applied);

  /// True if the local transaction is still known (not yet terminated).
  bool active(std::uint64_t id) const { return txns_.count(id) != 0; }

  storage& disk() { return storage_; }
  const storage& disk() const { return storage_; }
  lock_table& locks() { return locks_; }
  const lock_table& locks() const { return locks_; }

  std::uint64_t local_started() const { return local_started_; }
  std::uint64_t remote_applied() const { return remote_applied_; }

  /// Bytes the commit writes to disk (one sector-aligned write per tuple,
  /// unless the workload packed an explicit sector count). Exposed so the
  /// replication layer can account and pro-rate partial-placement writes.
  static std::size_t disk_write_bytes(const txn_request& req,
                                      std::size_t sector);

 private:
  enum class stage : std::uint8_t {
    acquiring,   // waiting for locks
    executing,   // running the operation script
    committing,  // executed; termination protocol in progress
    applying,    // certification passed; commit CPU + disk writes
  };

  struct active_txn {
    txn_request req;
    executed_fn executed;
    done_fn done;
    stage st = stage::acquiring;
    std::size_t next_op = 0;
    csrt::job_id cpu_job = 0;
    std::uint64_t epoch = 0;  // invalidates in-flight async callbacks
    bool has_locks = false;
  };

  void start_execution(std::uint64_t id);
  void run_ops(std::uint64_t id);
  void on_lock_abort(std::uint64_t id, lock_abort_cause cause);
  void finish(std::uint64_t id, txn_outcome outcome);

  sim::simulator& sim_;
  csrt::cpu_pool& cpu_;
  server_config cfg_;
  storage storage_;
  lock_table locks_;
  std::unordered_map<std::uint64_t, active_txn> txns_;
  /// Reused per-call buffer for lock_items_into on the submit/apply hot
  /// paths (lock_table::acquire copies, so reuse across calls is safe).
  std::vector<item_id> lock_scratch_;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t local_started_ = 0;
  std::uint64_t remote_applied_ = 0;
};

}  // namespace dbsm::db

#endif  // DBSM_DB_SERVER_HPP
