// Storage element (§3.1): "defined by its latency and number of allowed
// concurrent requests. Each request manipulates a single storage sector,
// hence storage bandwidth becomes configured indirectly. A cache hit ratio
// determines the probability of a read request being handled instantaneously
// without consuming storage resources."
//
// Defaults model the paper's testbed: IOzone measured 9.486 MB/s of
// synchronous 4 KB writes on the RAID-5 box; with 4 concurrent requests
// that is a per-request latency of 4 × 4096 B / 9.486 MB/s ≈ 1.73 ms.
#ifndef DBSM_DB_STORAGE_HPP
#define DBSM_DB_STORAGE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace dbsm::db {

struct storage_config {
  sim_duration request_latency = from_micros(1727);
  unsigned max_concurrent = 4;
  std::size_t sector_bytes = 4096;
  double cache_hit_ratio = 1.0;  // §4.1: observed > 98%, configured 100%

  /// Effective write bandwidth implied by the parameters, bytes/second.
  double bandwidth_bytes_per_s() const {
    return static_cast<double>(sector_bytes) * max_concurrent /
           to_seconds(request_latency);
  }
};

class storage {
 public:
  storage(sim::simulator& sim, storage_config cfg, util::rng gen);

  storage(const storage&) = delete;
  storage& operator=(const storage&) = delete;

  /// Reads `bytes` (rounded up to sectors). With probability
  /// cache_hit_ratio per sector the read is free; misses queue storage
  /// requests. `done` fires when all sectors are available.
  void read(std::size_t bytes, std::function<void()> done);

  /// Writes `bytes` (rounded up to sectors); writes always hit storage.
  void write(std::size_t bytes, std::function<void()> done);

  /// Busy fraction of the storage element so far (feeds Fig 6b).
  double utilization() const { return busy_.utilization(sim_.now()); }

  std::uint64_t sectors_read() const { return sectors_read_; }
  std::uint64_t sectors_written() const { return sectors_written_; }
  std::size_t queue_length() const { return queue_.size(); }

  const storage_config& config() const { return cfg_; }

 private:
  struct request_group {
    unsigned remaining;
    std::function<void()> done;
  };

  /// Enqueues `sectors` single-sector requests completing into one group.
  void enqueue(unsigned sectors, std::function<void()> done);
  void pump();
  unsigned sectors_for(std::size_t bytes) const;

  sim::simulator& sim_;
  storage_config cfg_;
  util::rng rng_;
  std::deque<std::shared_ptr<request_group>> queue_;
  unsigned active_ = 0;
  util::utilization_tracker busy_;
  std::uint64_t sectors_read_ = 0;
  std::uint64_t sectors_written_ = 0;
};

}  // namespace dbsm::db

#endif  // DBSM_DB_STORAGE_HPP
