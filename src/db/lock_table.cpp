#include "db/lock_table.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace dbsm::db {

bool lock_table::all_free(const std::vector<item_id>& items) const {
  for (item_id it : items)
    if (holders_.count(it)) return false;
  return true;
}

void lock_table::grant(std::uint64_t txn, txn_rec& rec) {
  DBSM_CHECK(!rec.holding);
  for (item_id it : rec.items) {
    auto [pos, inserted] = holders_.emplace(it, txn);
    DBSM_CHECK_MSG(inserted, "item already held while granting");
    (void)pos;
  }
  rec.holding = true;
  if (rec.granted) rec.granted();
}

void lock_table::remove_waiter_entries(std::uint64_t txn,
                                       const txn_rec& rec) {
  for (item_id it : rec.items) {
    auto wit = waiters_.find(it);
    if (wit == waiters_.end()) continue;
    auto& vec = wit->second;
    vec.erase(std::remove(vec.begin(), vec.end(), txn), vec.end());
    if (vec.empty()) waiters_.erase(wit);
  }
}

void lock_table::abort_txn(std::uint64_t txn, lock_abort_cause cause) {
  auto it = txns_.find(txn);
  DBSM_CHECK(it != txns_.end());
  txn_rec rec = std::move(it->second);
  txns_.erase(it);
  if (rec.holding) {
    for (item_id item : rec.items) {
      DBSM_CHECK(holders_.at(item) == txn);
      holders_.erase(item);
    }
  } else {
    remove_waiter_entries(txn, rec);
  }
  if (rec.aborted) rec.aborted(cause);
  // A preempted holder's other locks may now unblock waiters.
  if (rec.holding) wake_waiters(rec.items);
}

void lock_table::acquire(std::uint64_t txn, std::span<const item_id> items,
                         bool certified, granted_fn granted,
                         aborted_fn aborted) {
  DBSM_CHECK_MSG(!txns_.count(txn), "txn " << txn << " already in lock table");
  txn_rec rec;
  rec.items.assign(items.begin(), items.end());
  rec.certified = certified;
  rec.arrival = next_arrival_++;
  rec.granted = std::move(granted);
  rec.aborted = std::move(aborted);

  // Register as a waiter first so that lock hand-offs triggered below (by
  // preemption) consider this transaction — certified requests must win
  // over older uncertified waiters.
  auto [pos, inserted] = txns_.emplace(txn, std::move(rec));
  DBSM_CHECK(inserted);
  for (item_id it : pos->second.items) waiters_[it].push_back(txn);

  if (certified) {
    // Preempt local uncertified holders right away (§3.1): they would
    // abort at certification anyway.
    std::vector<std::uint64_t> victims;
    for (item_id it : pos->second.items) {
      auto hit = holders_.find(it);
      if (hit == holders_.end()) continue;
      const std::uint64_t holder = hit->second;
      if (!txns_.at(holder).certified &&
          std::find(victims.begin(), victims.end(), holder) == victims.end())
        victims.push_back(holder);
    }
    for (std::uint64_t v : victims) abort_txn(v, lock_abort_cause::preempted);
  }

  // abort_txn's hand-off may already have granted us.
  auto it = txns_.find(txn);
  if (it == txns_.end() || it->second.holding) return;
  if (all_free(it->second.items)) {
    remove_waiter_entries(txn, it->second);
    grant(txn, it->second);
  }
}

void lock_table::mark_certified(std::uint64_t txn) {
  auto it = txns_.find(txn);
  DBSM_CHECK(it != txns_.end());
  it->second.certified = true;
}

void lock_table::wake_waiters(const std::vector<item_id>& items) {
  // Collect candidate waiters in global arrival order and retry their
  // atomic acquisition. Granting one may block later candidates.
  std::vector<std::uint64_t> candidates;
  for (item_id it : items) {
    auto wit = waiters_.find(it);
    if (wit == waiters_.end()) continue;
    for (std::uint64_t w : wit->second)
      if (std::find(candidates.begin(), candidates.end(), w) ==
          candidates.end())
        candidates.push_back(w);
  }
  // Certified transactions must make progress ahead of local waiters;
  // within a class, first-come-first-served.
  std::sort(candidates.begin(), candidates.end(),
            [this](std::uint64_t a, std::uint64_t b) {
              const txn_rec& ra = txns_.at(a);
              const txn_rec& rb = txns_.at(b);
              if (ra.certified != rb.certified) return ra.certified;
              return ra.arrival < rb.arrival;
            });
  for (std::uint64_t cand : candidates) {
    auto it = txns_.find(cand);
    if (it == txns_.end() || it->second.holding) continue;
    if (all_free(it->second.items)) {
      remove_waiter_entries(cand, it->second);
      grant(cand, it->second);
    }
  }
}

void lock_table::release_commit(std::uint64_t txn) {
  auto it = txns_.find(txn);
  DBSM_CHECK_MSG(it != txns_.end() && it->second.holding,
                 "release_commit of non-holder " << txn);
  txn_rec rec = std::move(it->second);
  txns_.erase(it);
  for (item_id item : rec.items) {
    DBSM_CHECK(holders_.at(item) == txn);
    holders_.erase(item);
  }
  // First-committer-wins: waiters on the released locks have write-write
  // conflicts with the committed values and abort — unless certified,
  // in which case they must commit and simply retry acquisition.
  std::vector<std::uint64_t> to_abort;
  for (item_id item : rec.items) {
    auto wit = waiters_.find(item);
    if (wit == waiters_.end()) continue;
    for (std::uint64_t w : wit->second) {
      if (!txns_.at(w).certified &&
          std::find(to_abort.begin(), to_abort.end(), w) == to_abort.end())
        to_abort.push_back(w);
    }
  }
  for (std::uint64_t w : to_abort)
    abort_txn(w, lock_abort_cause::holder_committed);
  wake_waiters(rec.items);
}

void lock_table::release_abort(std::uint64_t txn) {
  auto it = txns_.find(txn);
  DBSM_CHECK_MSG(it != txns_.end(), "release_abort of unknown txn " << txn);
  txn_rec rec = std::move(it->second);
  txns_.erase(it);
  if (rec.holding) {
    for (item_id item : rec.items) {
      DBSM_CHECK(holders_.at(item) == txn);
      holders_.erase(item);
    }
    wake_waiters(rec.items);
  } else {
    remove_waiter_entries(txn, rec);
  }
}

bool lock_table::holds(std::uint64_t txn) const {
  auto it = txns_.find(txn);
  return it != txns_.end() && it->second.holding;
}

bool lock_table::waiting(std::uint64_t txn) const {
  auto it = txns_.find(txn);
  return it != txns_.end() && !it->second.holding;
}

std::size_t lock_table::waiting_txns() const {
  std::size_t n = 0;
  for (const auto& [id, rec] : txns_)
    if (!rec.holding) ++n;
  return n;
}

void lock_table::check_invariants() const {
  for (const auto& [item, holder] : holders_) {
    auto it = txns_.find(holder);
    DBSM_CHECK_MSG(it != txns_.end(), "holder of " << item << " unknown");
    DBSM_CHECK(it->second.holding);
    DBSM_CHECK(std::find(it->second.items.begin(), it->second.items.end(),
                         item) != it->second.items.end());
  }
  for (const auto& [item, queue] : waiters_) {
    DBSM_CHECK(!queue.empty());
    for (std::uint64_t w : queue) {
      auto it = txns_.find(w);
      DBSM_CHECK_MSG(it != txns_.end(), "waiter on " << item << " unknown");
      DBSM_CHECK(!it->second.holding);
    }
  }
  for (const auto& [id, rec] : txns_) {
    if (rec.holding) {
      for (item_id item : rec.items) DBSM_CHECK(holders_.at(item) == id);
    } else {
      for (item_id item : rec.items) {
        const auto& queue = waiters_.at(item);
        DBSM_CHECK(std::find(queue.begin(), queue.end(), id) != queue.end());
      }
    }
  }
}

}  // namespace dbsm::db
