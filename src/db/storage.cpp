#include "db/storage.hpp"

#include <utility>

#include "util/check.hpp"

namespace dbsm::db {

storage::storage(sim::simulator& sim, storage_config cfg, util::rng gen)
    : sim_(sim), cfg_(cfg), rng_(gen),
      busy_(static_cast<double>(cfg.max_concurrent)) {
  DBSM_CHECK(cfg_.max_concurrent > 0);
  DBSM_CHECK(cfg_.request_latency > 0);
  DBSM_CHECK(cfg_.sector_bytes > 0);
  DBSM_CHECK(cfg_.cache_hit_ratio >= 0.0 && cfg_.cache_hit_ratio <= 1.0);
}

unsigned storage::sectors_for(std::size_t bytes) const {
  if (bytes == 0) return 1;
  return static_cast<unsigned>((bytes + cfg_.sector_bytes - 1) /
                               cfg_.sector_bytes);
}

void storage::read(std::size_t bytes, std::function<void()> done) {
  unsigned misses = 0;
  const unsigned sectors = sectors_for(bytes);
  for (unsigned i = 0; i < sectors; ++i) {
    if (!rng_.bernoulli(cfg_.cache_hit_ratio)) ++misses;
  }
  sectors_read_ += misses;
  if (misses == 0) {
    // Cache hit: handled instantaneously, but still via an event so the
    // caller's control flow is uniform.
    sim_.schedule_at(sim_.now(), std::move(done));
    return;
  }
  enqueue(misses, std::move(done));
}

void storage::write(std::size_t bytes, std::function<void()> done) {
  const unsigned sectors = sectors_for(bytes);
  sectors_written_ += sectors;
  enqueue(sectors, std::move(done));
}

void storage::enqueue(unsigned sectors, std::function<void()> done) {
  DBSM_CHECK(sectors > 0);
  auto group = std::make_shared<request_group>();
  group->remaining = sectors;
  group->done = std::move(done);
  for (unsigned i = 0; i < sectors; ++i) queue_.push_back(group);
  pump();
}

void storage::pump() {
  while (active_ < cfg_.max_concurrent && !queue_.empty()) {
    auto group = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    busy_.set_busy(sim_.now(), static_cast<double>(active_));
    sim_.schedule_after(cfg_.request_latency, [this, group] {
      --active_;
      busy_.set_busy(sim_.now(), static_cast<double>(active_));
      if (--group->remaining == 0 && group->done) group->done();
      pump();
    });
  }
}

}  // namespace dbsm::db
