#include "db/server.hpp"

#include <utility>

#include "util/check.hpp"

namespace dbsm::db {

server::server(sim::simulator& sim, csrt::cpu_pool& cpu, server_config cfg,
               util::rng gen)
    : sim_(sim), cpu_(cpu), cfg_(cfg),
      storage_(sim, cfg.storage, gen.fork("storage")) {}

std::size_t server::disk_write_bytes(const txn_request& req,
                                     std::size_t sector) {
  // The workload computes sector counts (packing sequential inserts);
  // fall back to one single-sector request per written tuple (§3.1:
  // "each request manipulates a single storage sector").
  if (req.disk_sectors != 0) return req.disk_sectors * sector;
  std::size_t tuples = 0;
  for (item_id it : req.write_set)
    if (!is_granule(it)) ++tuples;
  return tuples * sector;
}

void server::submit(txn_request req, executed_fn executed, done_fn done) {
  const std::uint64_t id = req.id;
  DBSM_CHECK_MSG(!txns_.count(id), "duplicate txn id " << id);
  ++local_started_;

  active_txn txn;
  txn.req = std::move(req);
  txn.executed = std::move(executed);
  txn.done = std::move(done);
  txn.epoch = next_epoch_++;
  auto [pos, inserted] = txns_.emplace(id, std::move(txn));
  DBSM_CHECK(inserted);

  if (pos->second.req.read_only()) {
    // The policy ignores fetched items: no locks for read-only work.
    start_execution(id);
    return;
  }
  pos->second.req.lock_items_into(lock_scratch_);
  locks_.acquire(
      id, lock_scratch_, /*certified=*/false,
      [this, id] {
        auto it = txns_.find(id);
        if (it == txns_.end()) return;
        it->second.has_locks = true;
        start_execution(id);
      },
      [this, id](lock_abort_cause cause) { on_lock_abort(id, cause); });
}

void server::start_execution(std::uint64_t id) {
  auto it = txns_.find(id);
  DBSM_CHECK(it != txns_.end());
  it->second.st = stage::executing;
  run_ops(id);
}

void server::run_ops(std::uint64_t id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return;
  active_txn& txn = it->second;
  const std::uint64_t epoch = txn.epoch;

  while (txn.next_op < txn.req.ops.size()) {
    const operation& op = txn.req.ops[txn.next_op];
    switch (op.k) {
      case operation::kind::write:
        // Write-back is buffered; the disk is touched at commit.
        ++txn.next_op;
        continue;
      case operation::kind::process:
        txn.cpu_job = cpu_.submit_simulated(op.cpu, [this, id, epoch] {
          auto jt = txns_.find(id);
          if (jt == txns_.end() || jt->second.epoch != epoch) return;
          jt->second.cpu_job = 0;
          ++jt->second.next_op;
          run_ops(id);
        });
        return;
      case operation::kind::fetch:
        storage_.read(op.bytes, [this, id, epoch] {
          auto jt = txns_.find(id);
          if (jt == txns_.end() || jt->second.epoch != epoch) return;
          ++jt->second.next_op;
          run_ops(id);
        });
        return;
    }
  }
  // Commit operation reached: enter the committing stage; the replication
  // layer now runs the distributed termination protocol (§3.1).
  txn.st = stage::committing;
  if (txn.executed) txn.executed(txn.req);
}

void server::on_lock_abort(std::uint64_t id, lock_abort_cause cause) {
  auto it = txns_.find(id);
  DBSM_CHECK(it != txns_.end());
  active_txn& txn = it->second;
  txn.has_locks = false;  // the lock table already dropped them
  txn.epoch = next_epoch_++;  // invalidate in-flight CPU/storage callbacks
  if (txn.cpu_job != 0) {
    cpu_.cancel_simulated(txn.cpu_job);
    txn.cpu_job = 0;
  }
  finish(id, cause == lock_abort_cause::holder_committed
                 ? txn_outcome::aborted_lock
                 : txn_outcome::aborted_preempt);
}

void server::finish(std::uint64_t id, txn_outcome outcome) {
  auto it = txns_.find(id);
  DBSM_CHECK(it != txns_.end());
  done_fn done = std::move(it->second.done);
  txns_.erase(it);
  if (done) done(id, outcome);
}

void server::finish_commit(std::uint64_t id, std::function<void()> applied) {
  auto it = txns_.find(id);
  DBSM_CHECK_MSG(it != txns_.end(), "finish_commit of unknown txn " << id);
  active_txn& txn = it->second;
  DBSM_CHECK(txn.st == stage::committing);

  if (txn.req.read_only()) {
    finish(id, txn_outcome::committed);
    if (applied) applied();
    return;
  }
  finish_commit_bytes(id, disk_write_bytes(txn.req, cfg_.storage.sector_bytes),
                      std::move(applied));
}

void server::finish_commit_bytes(std::uint64_t id, std::size_t disk_bytes,
                                 std::function<void()> applied) {
  auto it = txns_.find(id);
  DBSM_CHECK_MSG(it != txns_.end(), "finish_commit of unknown txn " << id);
  active_txn& txn = it->second;
  DBSM_CHECK(txn.st == stage::committing);
  DBSM_CHECK(!txn.req.read_only());

  txn.st = stage::applying;
  // Past certification the transaction must commit; it can no longer be
  // preempted by remote transactions.
  locks_.mark_certified(id);
  cpu_.submit_simulated(
      cfg_.commit_cpu, [this, id, disk_bytes, applied = std::move(applied)] {
        storage_.write(disk_bytes, [this, id, applied] {
          auto jt = txns_.find(id);
          DBSM_CHECK(jt != txns_.end());
          locks_.release_commit(id);
          finish(id, txn_outcome::committed);
          if (applied) applied();
        });
      });
}

void server::finish_abort(std::uint64_t id) {
  auto it = txns_.find(id);
  DBSM_CHECK_MSG(it != txns_.end(), "finish_abort of unknown txn " << id);
  active_txn& txn = it->second;
  DBSM_CHECK(txn.st == stage::committing);
  if (txn.has_locks) locks_.release_abort(id);
  finish(id, txn_outcome::aborted_cert);
}

void server::apply_remote(const txn_request& req,
                          std::function<void()> applied) {
  const std::uint64_t id = req.id;
  const std::size_t bytes = disk_write_bytes(req, cfg_.storage.sector_bytes);
  req.lock_items_into(lock_scratch_);
  const auto& items = lock_scratch_;

  auto do_apply = [this, id, bytes, applied = std::move(applied),
                   locked = !items.empty()] {
    cpu_.submit_simulated(cfg_.remote_apply_cpu, [this, id, bytes, applied,
                                                  locked] {
      storage_.write(bytes, [this, id, applied, locked] {
        if (locked) locks_.release_commit(id);
        ++remote_applied_;
        if (applied) applied();
      });
    });
  };

  if (items.empty()) {
    do_apply();
    return;
  }
  locks_.acquire(id, items, /*certified=*/true, do_apply,
                 [](lock_abort_cause) {
                   DBSM_CHECK_MSG(false, "certified transaction aborted");
                 });
}

}  // namespace dbsm::db
