// Client model (§3.2): a single-threaded process attached to one database
// site. It issues a transaction, blocks until the reply, pauses for a
// think time, and repeats. Each terminal outcome is logged with submit and
// finish timestamps (the source of all latency/throughput/abort metrics).
//
// The client is workload-agnostic: requests and think times come from the
// txn_source its workload built for it (workload/workload.hpp).
#ifndef DBSM_WORKLOAD_CLIENT_HPP
#define DBSM_WORKLOAD_CLIENT_HPP

#include <functional>
#include <memory>

#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace dbsm::core {

class client {
 public:
  /// One completed transaction, as logged by the client (§3.2).
  struct result {
    db::txn_class cls = 0;
    db::txn_outcome outcome = db::txn_outcome::committed;
    sim_time submitted = 0;
    sim_time finished = 0;
  };

  /// Hands a request to the local replica; the callback delivers the
  /// terminal outcome.
  using submit_fn =
      std::function<void(db::txn_request,
                         std::function<void(db::txn_outcome)>)>;
  using report_fn = std::function<void(const result&)>;

  client(sim::simulator& sim, std::unique_ptr<txn_source> source,
         submit_fn submit, report_fn report, util::rng gen);

  /// Begins issuing after `initial_delay` (staggered start).
  void start(sim_duration initial_delay);

  /// Stops issuing new transactions (e.g. its site crashed).
  void stop() { stopped_ = true; }

  /// Resumes a stopped client after its site rejoined. A request that was
  /// in flight at the crash can never be answered (the replica was
  /// rebuilt), so it is abandoned — no outcome recorded — and the client
  /// issues afresh.
  void resume();

  std::uint64_t completed() const { return completed_; }
  bool waiting_for_reply() const { return waiting_; }

 private:
  void issue();
  void on_reply(db::txn_class cls, sim_time submitted,
                db::txn_outcome outcome);

  sim::simulator& sim_;
  std::unique_ptr<txn_source> source_;
  submit_fn submit_;
  report_fn report_;
  util::rng rng_;
  bool stopped_ = false;
  bool waiting_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace dbsm::core

#endif  // DBSM_WORKLOAD_CLIENT_HPP
