// Pluggable workload API: the seam between the experiment harness and any
// traffic generator. The paper evaluates exactly one workload (TPC-C,
// §3.2); the harness here is generic — a workload describes its
// transaction classes and builds per-client request sources, and
// run_experiment drives whichever implementation the config names
// (tpcc::tpcc_workload by default, kv::kv_workload, or a user-defined
// one — see examples/custom_workload.cpp).
//
// The interface deliberately mirrors what the harness needs and nothing
// more: class count/names for the result tables, per-class update/read
// classification for analysis, the mean think time for staggered client
// starts, and a txn_source per client that yields db::txn_requests plus
// think times.
#ifndef DBSM_WORKLOAD_WORKLOAD_HPP
#define DBSM_WORKLOAD_WORKLOAD_HPP

#include <functional>
#include <memory>

#include "db/transaction.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dbsm::core {

/// Identity of one emulated client within a run; workloads use it to
/// derive home locality (e.g. TPC-C's warehouse/district assignment).
struct client_slot {
  unsigned site = 0;           // cluster site the client attaches to
  unsigned index = 0;          // global client index in [0, total_clients)
  unsigned total_clients = 1;  // clients in the whole run
};

/// Per-client request generator (§3.2's single-threaded terminal model):
/// the client asks for the next request, submits it, and on reply asks how
/// long to think before the next one. Sources are driven from simulator
/// callbacks of one site — no synchronization is required, but a source
/// may share state with its siblings (TPC-C shares per-site order
/// counters). Sources may reference state owned by the workload that
/// built them: the workload must outlive every source it hands out.
class txn_source {
 public:
  virtual ~txn_source() = default;

  /// Builds the next request; `now` is the current simulated time (state
  /// shared across replicas may be modeled as a function of it). The
  /// request carries no id/origin — the replica assigns them.
  virtual db::txn_request next(sim_time now) = 0;

  /// Samples the think time (seconds) before the following request, using
  /// the calling client's own generator so per-client randomness never
  /// perturbs shared generator state.
  virtual double think_seconds(util::rng& gen) = 0;
};

/// A benchmark workload: transaction-class metadata plus a txn_source
/// factory. One instance serves a whole experiment run.
class workload {
 public:
  virtual ~workload() = default;

  /// Short identifier ("tpcc", "kv") for logs and result tables.
  virtual const char* name() const = 0;

  /// Number of transaction classes; stats tables are sized by this.
  virtual std::size_t classes() const = 0;
  virtual const char* class_name(db::txn_class cls) const = 0;

  /// True for classes that update the database (multicast + certify);
  /// false for read-only classes that terminate locally.
  virtual bool is_update_class(db::txn_class cls) const = 0;

  /// Mean think time in seconds (client start staggering spreads the
  /// initial burst across one mean think time).
  virtual double mean_think_seconds() const = 0;

  /// Called once by the harness before any source is built, with the
  /// cluster shape and a generator forked from the experiment seed.
  /// Workloads size shared state here (TPC-C scales warehouses to the
  /// client count and builds one shared generator per site).
  virtual void prepare(unsigned sites, unsigned clients, util::rng gen) = 0;

  /// Builds the request source for one client. `gen` is an independent
  /// stream forked from the experiment seed; implementations may use it
  /// or rely on shared per-site state prepared above.
  virtual std::unique_ptr<txn_source> make_source(const client_slot& slot,
                                                  util::rng gen) = 0;
};

/// How experiment_config names a workload: a factory, so one config can be
/// run many times and each run gets a fresh instance. A default-constructed
/// (null) factory means the built-in TPC-C workload.
using workload_factory = std::function<std::unique_ptr<workload>()>;

}  // namespace dbsm::core

#endif  // DBSM_WORKLOAD_WORKLOAD_HPP
