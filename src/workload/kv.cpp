#include "workload/kv.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cert/rwset.hpp"
#include "util/check.hpp"

namespace dbsm::kv {

namespace {

/// Table slot for the flat keyspace in the db::item_id codec. Keys are
/// bucketed into granules of keys_per_granule consecutive keys: the
/// warehouse field holds the granule number and the row field the offset
/// within it, so db::granule_of(item) is the key's scan granule.
constexpr unsigned kv_table = 1;

db::item_id item_for_key(std::uint64_t key, std::uint32_t keys_per_granule) {
  return db::make_item(
      kv_table, static_cast<std::uint32_t>(key / keys_per_granule), 0,
      static_cast<std::uint32_t>(key % keys_per_granule));
}

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

class kv_source final : public core::txn_source {
 public:
  kv_source(const kv_config& cfg, const zipf_sampler& zipf,
            const core::client_slot& slot, util::rng gen)
      : cfg_(cfg), zipf_(zipf), slot_index_(slot.index),
        total_clients_(std::max(1u, slot.total_clients)), rng_(gen) {}

  db::txn_request next(sim_time /*now*/) override {
    ++generated_;  // one modeled insert per transaction: the frontier moves
    const double pick = rng_.uniform();
    db::txn_class cls = c_rmw;
    if (pick < cfg_.mix_read) {
      cls = c_read;
    } else if (pick < cfg_.mix_read + cfg_.mix_update) {
      cls = c_update;
    } else if (pick < cfg_.mix_read + cfg_.mix_update + cfg_.mix_scan) {
      cls = c_scan;
    }
    if (cls == c_scan) return make_scan();

    const auto ops = static_cast<unsigned>(
        rng_.uniform_int(cfg_.min_ops, cfg_.max_ops));
    keys_.clear();
    keys_.reserve(ops);
    for (unsigned i = 0; i < ops; ++i)
      keys_.push_back(item_for_key(pick_key(), cfg_.keys_per_granule));

    db::txn_request req;
    req.cls = cls;
    const bool reads = cls != c_update;
    const bool writes = cls != c_read;
    if (reads) {
      req.read_set = keys_;
      cert::normalize(req.read_set);
    }
    if (writes) {
      req.write_set.reserve(2 * keys_.size());
      req.write_set.assign(keys_.begin(), keys_.end());
      // Advertise the scan granule of every written key so concurrent
      // escalated reads certify against this write (tpcc::write_granule's
      // rule, applied to the flat keyspace).
      for (const db::item_id it : keys_)
        req.write_set.push_back(db::granule_of(it));
      cert::normalize(req.write_set);
      req.update_bytes =
          cfg_.value_bytes * static_cast<std::uint32_t>(ops);
      // Uniformly drawn keys land on scattered pages: one sector per
      // distinct written tuple (granule markers are not storage writes).
      std::uint16_t sectors = 0;
      for (const db::item_id it : req.write_set)
        sectors += !db::is_granule(it);
      req.disk_sectors = sectors;
    }

    // Execution script mirrors the TPC-C shape: one aggregate fetch, one
    // processing slice, one write-back for updating classes.
    finish_script(req, ops, cfg_.value_bytes * ops, writes);
    return req;
  }

  double think_seconds(util::rng& gen) override {
    return cfg_.think_time->sample(gen);
  }

 private:
  /// Range scan (YCSB workload E): reads one whole key granule — chosen
  /// by sampling a Zipf key, so hot granules are scanned as often as
  /// they are written. The read escalates to the granule id; any write
  /// committed inside the granule during execution certification-aborts
  /// the scan (read-only transactions certify locally, §5.1).
  db::txn_request make_scan() {
    db::txn_request req;
    req.cls = c_scan;
    const db::item_id hit =
        item_for_key(pick_key(), cfg_.keys_per_granule);
    req.read_set = {db::granule_of(hit)};
    const std::uint32_t scanned =
        std::min<std::uint32_t>(cfg_.keys_per_granule, cfg_.keys);
    finish_script(req, /*ops=*/scanned / 8 + 1,
                  cfg_.value_bytes * scanned, /*writes=*/false);
    return req;
  }

  /// One aggregate fetch, one processing slice of `ops` per-op CPU
  /// samples, and a write-back when the transaction updates.
  void finish_script(db::txn_request& req, unsigned ops,
                     std::uint32_t fetch_bytes, bool writes) {
    double cpu_s = 0.0;
    for (unsigned i = 0; i < ops; ++i)
      cpu_s += cfg_.cpu_per_op->sample(rng_);
    db::operation fetch;
    fetch.k = db::operation::kind::fetch;
    fetch.bytes = fetch_bytes;
    req.ops.push_back(fetch);
    db::operation proc;
    proc.k = db::operation::kind::process;
    proc.cpu = from_seconds(std::max(cpu_s, 0.0001));
    req.ops.push_back(proc);
    if (writes) {
      db::operation wr;
      wr.k = db::operation::kind::write;
      wr.item = req.write_set.front();
      wr.bytes = req.update_bytes;
      req.ops.push_back(wr);
    }
  }

  /// Sample a key under the configured distribution. Zipfian: the rank is
  /// the key. Latest: the rank is a backward offset from this source's
  /// insert frontier — clients stripe the global append sequence by index
  /// (client i's t-th transaction inserts key i + t*clients mod keyspace),
  /// so the hot set trails the newest keys and drifts as the run proceeds.
  std::uint64_t pick_key() {
    const std::uint64_t rank = zipf_.sample(rng_);
    switch (cfg_.dist) {
      case key_dist::latest: {
        const std::uint64_t frontier =
            (slot_index_ + generated_ * total_clients_) % cfg_.keys;
        return (frontier + cfg_.keys - rank % cfg_.keys) % cfg_.keys;
      }
      case key_dist::scrambled: {
        // splitmix64 finalizer (the certifier's shard mix): same Zipf
        // frequency profile, hot keys scattered over the keyspace.
        std::uint64_t x = rank;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x % cfg_.keys;
      }
      case key_dist::zipfian:
        break;
    }
    return rank;
  }

  const kv_config& cfg_;
  const zipf_sampler& zipf_;
  std::uint64_t slot_index_ = 0;
  std::uint64_t total_clients_ = 1;
  std::uint64_t generated_ = 0;  // transactions produced = modeled inserts
  util::rng rng_;
  std::vector<db::item_id> keys_;  // per-source scratch
};

}  // namespace

const char* class_name(db::txn_class cls) {
  switch (cls) {
    case c_read: return "kv-read";
    case c_update: return "kv-update";
    case c_rmw: return "kv-rmw";
    case c_scan: return "kv-scan";
    default: return "?";
  }
}

bool is_update_class(db::txn_class cls) {
  return cls == c_update || cls == c_rmw;
}

zipf_sampler::zipf_sampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  DBSM_CHECK(n_ >= 1);
  DBSM_CHECK_MSG(theta_ >= 0.0 && theta_ < 1.0,
                 "zipf theta must be in [0, 1), got " << theta_);
  zetan_ = zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta(2, theta_) / zetan_);
  rank1_cut_ = 1.0 + std::pow(0.5, theta_);
}

std::uint64_t zipf_sampler::sample(util::rng& gen) const {
  const double u = gen.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < rank1_cut_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

kv_workload::kv_workload(kv_config cfg) : cfg_(std::move(cfg)) {
  switch (cfg_.preset) {
    case mix::custom:
      break;
    case mix::ycsb_a:
      cfg_.mix_read = 0.50;
      cfg_.mix_update = 0.50;
      cfg_.mix_scan = 0.0;
      break;
    case mix::ycsb_b:
      cfg_.mix_read = 0.95;
      cfg_.mix_update = 0.05;
      cfg_.mix_scan = 0.0;
      break;
    case mix::ycsb_c:
      cfg_.mix_read = 1.0;
      cfg_.mix_update = 0.0;
      cfg_.mix_scan = 0.0;
      break;
  }
  DBSM_CHECK(cfg_.keys >= 1);
  DBSM_CHECK(cfg_.keys_per_granule >= 1);
  DBSM_CHECK(cfg_.min_ops >= 1 && cfg_.min_ops <= cfg_.max_ops);
  DBSM_CHECK(cfg_.mix_read >= 0.0 && cfg_.mix_update >= 0.0 &&
             cfg_.mix_scan >= 0.0 &&
             cfg_.mix_read + cfg_.mix_update + cfg_.mix_scan <= 1.0);
  if (!cfg_.cpu_per_op)
    cfg_.cpu_per_op = util::lognormal_dist(0.0002, 0.30, 0.002);
  if (!cfg_.think_time) cfg_.think_time = util::exponential_dist(2.0);
}

const char* kv_workload::class_name(db::txn_class cls) const {
  return kv::class_name(cls);
}

bool kv_workload::is_update_class(db::txn_class cls) const {
  return kv::is_update_class(cls);
}

double kv_workload::mean_think_seconds() const {
  return cfg_.think_time->mean();
}

void kv_workload::prepare(unsigned /*sites*/, unsigned /*clients*/,
                          util::rng /*gen*/) {
  // The zeta prefix sum is O(keys); computed once and shared (const) by
  // every source.
  zipf_ = std::make_unique<const zipf_sampler>(cfg_.keys, cfg_.zipf_theta);
}

std::unique_ptr<core::txn_source> kv_workload::make_source(
    const core::client_slot& slot, util::rng gen) {
  DBSM_CHECK(zipf_ != nullptr);  // prepare() must have run
  return std::make_unique<kv_source>(cfg_, *zipf_, slot, gen);
}

core::workload_factory factory(kv_config cfg) {
  return [cfg = std::move(cfg)] {
    return std::make_unique<kv_workload>(cfg);
  };
}

}  // namespace dbsm::kv
