#include "workload/client.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace dbsm::core {

client::client(sim::simulator& sim, std::unique_ptr<txn_source> source,
               submit_fn submit, report_fn report, util::rng gen)
    : sim_(sim), source_(std::move(source)), submit_(std::move(submit)),
      report_(std::move(report)), rng_(gen) {
  DBSM_CHECK(source_ != nullptr);
  DBSM_CHECK(submit_ != nullptr);
}

void client::start(sim_duration initial_delay) {
  sim_.schedule_after(initial_delay, [this] { issue(); });
}

void client::resume() {
  if (!stopped_) return;
  stopped_ = false;
  waiting_ = false;  // the old reply callback died with the old replica
  sim_.schedule_after(0, [this] { issue(); });
}

void client::issue() {
  if (stopped_) return;
  db::txn_request req = source_->next(sim_.now());
  const db::txn_class cls = req.cls;
  const sim_time submitted = sim_.now();
  waiting_ = true;
  submit_(std::move(req), [this, cls, submitted](db::txn_outcome outcome) {
    on_reply(cls, submitted, outcome);
  });
}

void client::on_reply(db::txn_class cls, sim_time submitted,
                      db::txn_outcome outcome) {
  waiting_ = false;
  ++completed_;
  if (report_) {
    result r;
    r.cls = cls;
    r.outcome = outcome;
    r.submitted = submitted;
    r.finished = sim_.now();
    report_(r);
  }
  if (stopped_) return;
  // Aborted transactions are not resubmitted (§5.1); the client simply
  // thinks and moves on to a fresh request.
  const double think_s = source_->think_seconds(rng_);
  sim_.schedule_after(from_seconds(std::max(think_s, 0.0)),
                      [this] { issue(); });
}

}  // namespace dbsm::core
