// YCSB-style key-value workload: Zipfian key choice over a flat keyspace,
// a configurable read / blind-update / read-modify-write mix, and variable
// operation counts per transaction.
//
// This is the scenario the paper's TPC-C harness cannot express: TPC-C
// partitions almost all contention by home warehouse, so certification
// conflicts stay rare and local. A skewed key-value load concentrates
// writes on a global hot set that every site hammers concurrently —
// exactly the workload shape *Invalidation-Based Protocols for Replicated
// Datastores* (PAPERS.md) evaluates, and the stress case for the
// certifier's last-writer index: raising zipf_theta raises the
// certification abort rate while TPC-C barely moves.
#ifndef DBSM_WORKLOAD_KV_HPP
#define DBSM_WORKLOAD_KV_HPP

#include "util/distributions.hpp"
#include "workload/workload.hpp"

namespace dbsm::kv {

/// Transaction classes of the KV mix (YCSB A–E shapes).
enum txn_class : db::txn_class {
  c_read = 0,    // point reads only; snapshot-served, never cert-aborts
  c_update = 1,  // blind writes
  c_rmw = 2,     // read-modify-write of the same keys
  c_scan = 3,    // range scan over one key granule (escalated read, §3.3)
  num_classes = 4,
};

const char* class_name(db::txn_class cls);
bool is_update_class(db::txn_class cls);

/// Bounded Zipfian sampler over [0, n) (Gray et al., "Quickly generating
/// billion-record synthetic databases" — the YCSB generator). theta = 0 is
/// uniform; theta -> 1 concentrates mass on the lowest ranks.
class zipf_sampler {
 public:
  zipf_sampler(std::uint64_t n, double theta);
  std::uint64_t sample(util::rng& gen) const;
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double rank1_cut_;  // 1 + 0.5^theta
};

/// Key-popularity shapes (YCSB's request distributions).
enum class key_dist {
  /// Stationary Zipfian over key rank: key 0 is forever the hottest.
  zipfian,
  /// YCSB-D "latest": popularity follows an advancing insert frontier —
  /// the Zipfian offset is taken *behind* the most recently inserted key,
  /// so the hot set drifts through the keyspace as clients append. Each
  /// source advances a private frontier deterministically (its client
  /// index striped by the client count, modeling a global append sequence
  /// without cross-client coordination), keeping runs reproducible.
  latest,
  /// YCSB's scrambled Zipfian: the Zipf rank is bit-mixed (splitmix64
  /// finalizer) before mapping into the keyspace, so access frequency
  /// keeps the Zipf shape but the hot keys scatter uniformly over the id
  /// space instead of clustering at rank 0 — adjacent-granule correlation
  /// (and thus scan/placement locality artifacts) disappears.
  scrambled,
};

/// Standard YCSB operation-mix presets. A preset overwrites mix_read /
/// mix_update / mix_scan (the remainder stays read-modify-write as
/// always); `custom` leaves the hand-set mix alone.
enum class mix {
  custom,
  ycsb_a,  // 50% read / 50% update — the update-heavy contention case
  ycsb_b,  // 95% read /  5% update — read-mostly
  ycsb_c,  // 100% read            — the pure fast-path case
};

struct kv_config {
  std::uint32_t keys = 100000;  // flat keyspace size
  double zipf_theta = 0.99;     // skew; 0 = uniform, must be < 1

  /// Which key-popularity distribution drives key choice.
  key_dist dist = key_dist::zipfian;

  /// Scan granularity: consecutive keys per granule. Scans read one
  /// granule (the escalation of a key-range read, §3.3) and writes
  /// advertise the granule of every written key, so scans certify
  /// against concurrent writes — a pure certification-conflict channel
  /// the local lock table never sees.
  std::uint32_t keys_per_granule = 256;

  /// Class mix; the remainder (1 - read - update - scan) is
  /// read-modify-write.
  double mix_read = 0.45;
  double mix_update = 0.30;
  double mix_scan = 0.10;

  /// Optional standard mix preset, applied over the three fields above at
  /// workload construction (kv::mix::custom keeps them).
  mix preset = mix::custom;

  /// Keys touched per transaction, uniform in [min_ops, max_ops].
  unsigned min_ops = 4;
  unsigned max_ops = 16;

  std::uint32_t value_bytes = 100;  // per-key value size

  /// CPU time per key operation, seconds (null: calibrated default,
  /// log-normal with 0.2 ms mean).
  util::distribution_ptr cpu_per_op;

  /// Client think time, seconds (null: exponential, 2 s mean).
  util::distribution_ptr think_time;
};

class kv_workload final : public core::workload {
 public:
  explicit kv_workload(kv_config cfg);

  const char* name() const override { return "kv"; }
  std::size_t classes() const override { return num_classes; }
  const char* class_name(db::txn_class cls) const override;
  bool is_update_class(db::txn_class cls) const override;
  double mean_think_seconds() const override;

  void prepare(unsigned sites, unsigned clients, util::rng gen) override;
  std::unique_ptr<core::txn_source> make_source(
      const core::client_slot& slot, util::rng gen) override;

  const kv_config& config() const { return cfg_; }

 private:
  kv_config cfg_;
  std::unique_ptr<const zipf_sampler> zipf_;
};

/// Factory for experiment_config::workload.
core::workload_factory factory(kv_config cfg = {});

}  // namespace dbsm::kv

#endif  // DBSM_WORKLOAD_KV_HPP
