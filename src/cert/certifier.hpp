// Deterministic certification (§1, §3.3).
//
// Fed by the total order, every replica runs the same procedure over the
// same sequence and reaches the same commit/abort decisions — the property
// the off-line safety checker verifies.
//
// A transaction carries the position of the last delivery it had locally
// applied when it began (its snapshot). At its own delivery position, it
// conflicts with any transaction *committed* in between:
//   * write-write, at tuple granularity (first-committer-wins — the
//     multi-version engine's rule);
//   * granule-read vs write: point reads are served from tuple versions
//     (snapshot reads never abort), but escalated scan reads (granule ids,
//     §3.3's table-lock escalation) cannot be versioned and conflict with
//     any committed write inside the granule.
// Tuple-level reads still travel in the marshaled read set (message sizes
// match the prototype, §3.3); they are simply never a conflict source.
#ifndef DBSM_CERT_CERTIFIER_HPP
#define DBSM_CERT_CERTIFIER_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "cert/rwset.hpp"
#include "util/types.hpp"

namespace dbsm::cert {

struct cert_config {
  /// Committed write-sets retained for conflict checks. A transaction
  /// whose snapshot predates the window aborts conservatively (identical
  /// rule — thus identical decisions — at every replica).
  std::size_t history_window = 50000;
  /// Modeled CPU cost per set element visited during certification.
  sim_duration cost_per_element = nanoseconds(60);
  /// Fixed modeled CPU cost per certification.
  sim_duration cost_fixed = microseconds(10);
};

class certifier {
 public:
  explicit certifier(cert_config cfg = {});

  /// Certifies an update transaction at the next delivery position.
  /// Returns true to commit (its write set then enters the history).
  bool certify_update(std::uint64_t begin_pos,
                      const std::vector<db::item_id>& read_set,
                      const std::vector<db::item_id>& write_set);

  /// Certifies a read-only transaction against the current position
  /// without consuming one (read-only transactions terminate locally).
  bool certify_read_only(std::uint64_t begin_pos,
                         const std::vector<db::item_id>& read_set) const;

  /// Delivery positions consumed so far (== position of the last update
  /// transaction processed). New transactions snapshot this value.
  std::uint64_t position() const { return position_; }

  /// Modeled CPU cost of the most recent certify_* call.
  sim_duration last_cost() const { return last_cost_; }

  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::size_t history_size() const { return history_.size(); }

 private:
  struct entry {
    std::uint64_t pos;
    std::vector<db::item_id> write_set;
  };

  /// Conflict scan over history entries with pos in (begin_pos, +inf).
  bool conflicts(std::uint64_t begin_pos,
                 const std::vector<db::item_id>& read_set,
                 const std::vector<db::item_id>* write_set,
                 sim_duration& cost) const;

  cert_config cfg_;
  std::deque<entry> history_;  // ascending positions, committed only
  std::uint64_t position_ = 0;
  std::uint64_t oldest_retained_ = 1;
  mutable sim_duration last_cost_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
};

}  // namespace dbsm::cert

#endif  // DBSM_CERT_CERTIFIER_HPP
