// Deterministic certification (§1, §3.3), indexed.
//
// Fed by the total order, every replica runs the same procedure over the
// same sequence and reaches the same commit/abort decisions — the property
// the off-line safety checker verifies.
//
// A transaction carries the position of the last delivery it had locally
// applied when it began (its snapshot). At its own delivery position, it
// conflicts with any transaction *committed* in between:
//   * write-write, at tuple granularity (first-committer-wins — the
//     multi-version engine's rule);
//   * granule-read vs write: point reads are served from tuple versions
//     (snapshot reads never abort), but escalated scan reads (granule ids,
//     §3.3's table-lock escalation) cannot be versioned and conflict with
//     any committed write inside the granule.
// Tuple-level reads still travel in the marshaled read set (message sizes
// match the prototype, §3.3); they are simply never a conflict source.
//
// Implementation: instead of the historical merge scan over up to
// `history_window` retained write sets (kept as cert/reference_certifier
// for differential testing), certification probes an inverted last-writer
// index (cert/cert_index.hpp): an element conflicts iff its last committed
// writer position exceeds the snapshot. One certification is
// O(|read_set| + |write_set|) hash probes regardless of the window.
// Decisions are bit-identical to the reference scan; the retained history
// ring exists only to evict stale index entries as the window slides.
#ifndef DBSM_CERT_CERTIFIER_HPP
#define DBSM_CERT_CERTIFIER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cert/index_shard.hpp"
#include "cert/rwset.hpp"
#include "util/byte_buffer.hpp"
#include "util/types.hpp"

namespace dbsm::cert {

struct cert_config {
  /// Committed write-sets retained for conflict checks. A transaction
  /// whose snapshot predates the window aborts conservatively (identical
  /// rule — thus identical decisions — at every replica).
  std::size_t history_window = 50000;
  /// Modeled CPU cost per set element probed during certification. The
  /// indexed certifier visits each element of the transaction's own sets
  /// exactly once, so the modeled cost is a deterministic function of the
  /// transaction alone — independent of the history window, like the real
  /// work (the reference scan certifier keeps the historical
  /// window-proportional model).
  sim_duration cost_per_element = nanoseconds(60);
  /// Fixed modeled CPU cost per certification.
  sim_duration cost_fixed = microseconds(10);
  /// Evicted write sets whose stale index entries are drained per
  /// certify_update. Steady state evicts at most one set per delivery,
  /// so any positive rate bounds the backlog at one set; the default
  /// keeps headroom. 0 defers cleanup entirely — decisions are unchanged
  /// (stale entries predate every snapshot that survives the pre-window
  /// rule) but index memory then grows with every distinct item ever
  /// written. Larger rates clear an accumulated backlog in fewer
  /// deliveries.
  std::size_t evict_drain_per_delivery = 2;
  /// Hash partitions of the last-writer index (tuple and granule spaces
  /// both), used by cert::sharded_certifier. Decisions are
  /// shard-count-invariant; 1 keeps today's single-index layout and
  /// behavior byte-identical to cert::certifier.
  std::size_t shards = 1;
  /// Fork width of the sharded certifier's per-delivery fork-join (the
  /// delivery thread participates, so 1 runs inline and creates no
  /// threads — the default is byte-identical to cert::certifier).
  /// Meaningful only when shards > 1.
  unsigned certify_threads = 1;
  /// Modeled fork/join overhead charged once per certification when the
  /// sharded certifier actually forks (certify_threads > 1 on more than
  /// one shard) — the fixed price of the parallel term. The per-element
  /// term then follows the critical path: the fork worker whose shard
  /// range holds the most probed elements. Calibrated against the
  /// persistent-pool fork/join price bench_ablation_cert_shards measures
  /// at probe-light set sizes (2.1-3.6 us across the shard sweep; see
  /// bench/BENCH_cert_shards.json); tests/cert_shard_test.cpp pins the
  /// modeled-vs-real ratio. Never charged at the defaults (1 thread), so
  /// every historical figure and anchor is unaffected.
  sim_duration cost_fork_join = nanoseconds(2500);
  /// Fixed modeled cost of a certification *amortized over a delivery
  /// batch* (gcs batch mode): the first certification of a batch pays the
  /// full cost_fixed (cache-cold entry into the cert path), the rest pay
  /// only this — the PR 5 modeled-cost extended with the batching
  /// amortization term. Decisions are unaffected; only charged CPU is.
  sim_duration cost_batch_fixed = microseconds(2);
  /// Optional override of the sharded certifier's id -> shard map, e.g.
  /// to align certification shards with a data placement (the shard that
  /// probes a granule is derived from the granule's primary replica, so
  /// partitioned certification touches index partitions congruent with
  /// the storage partitioning). Must be a pure deterministic function of
  /// (id, shard count), identical at every site. Decisions are invariant
  /// under ANY map — it only re-partitions the index — which is exactly
  /// what tests/cert_shard_test.cpp-style differentials rely on. Unset
  /// keeps the built-in splitmix64 layout.
  std::function<std::size_t(db::item_id id, std::size_t shards)> shard_map;
};

class certifier {
 public:
  explicit certifier(cert_config cfg = {});

  /// Certifies an update transaction at the next delivery position.
  /// Returns true to commit (its write set then enters the history and
  /// the last-writer index).
  bool certify_update(std::uint64_t begin_pos,
                      const std::vector<db::item_id>& read_set,
                      const std::vector<db::item_id>& write_set);

  /// Certifies a read-only transaction against the current position
  /// without consuming one (read-only transactions terminate locally).
  bool certify_read_only(std::uint64_t begin_pos,
                         const std::vector<db::item_id>& read_set) const;

  /// Delivery positions consumed so far (== position of the last update
  /// transaction processed). New transactions snapshot this value.
  std::uint64_t position() const { return position_; }

  /// Oldest delivery position still retained in the history window;
  /// snapshots strictly older than `oldest_retained() - 1` abort
  /// conservatively.
  std::uint64_t oldest_retained() const { return oldest_retained_; }

  /// Modeled CPU cost of the most recent certify_* call.
  sim_duration last_cost() const { return last_cost_; }

  /// Serializes the full certification state — position, retained history,
  /// undrained eviction backlog — for a membership-recovery state transfer.
  /// restore() on a fresh certifier (same cert_config) reproduces the
  /// donor's decisions bit-for-bit: the last-writer index is rebuilt by
  /// replaying the serialized write sets in position order, which yields
  /// the exact same index contents (including the decision-safe stale
  /// entries of the eviction backlog).
  void snapshot(util::buffer_writer& w) const;
  void restore(util::buffer_reader& r);

  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::size_t history_size() const { return history_.size(); }
  /// Live entries in the last-writer index (bounded by the window's
  /// distinct ids plus the not-yet-drained evicted entries).
  std::size_t index_size() const { return shard_.index_size(); }
  /// Evicted write sets queued for lazy index cleanup and not yet
  /// drained (cert_config::evict_drain_per_delivery).
  std::size_t evicted_backlog() const { return shard_.evicted_backlog(); }

 private:
  /// Index probes over ids with a committed writer in (begin_pos, +inf).
  bool conflicts(std::uint64_t begin_pos,
                 const std::vector<db::item_id>& read_set,
                 const std::vector<db::item_id>* write_set) const;

  cert_config cfg_;
  /// The whole index and eviction ring as one shard (this certifier is
  /// the shards == 1 special case of the partitioned layout).
  index_shard shard_;
  std::deque<cert_entry> history_;  // ascending positions, committed only
  std::uint64_t position_ = 0;
  std::uint64_t oldest_retained_ = 1;
  mutable sim_duration last_cost_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
};

}  // namespace dbsm::cert

#endif  // DBSM_CERT_CERTIFIER_HPP
