#include "cert/certifier.hpp"

#include <utility>

#include "util/check.hpp"

namespace dbsm::cert {

certifier::certifier(cert_config cfg) : cfg_(cfg) {
  DBSM_CHECK(cfg_.history_window > 0);
}

bool certifier::conflicts(std::uint64_t begin_pos,
                          const std::vector<db::item_id>& read_set,
                          const std::vector<db::item_id>* write_set) const {
  if (begin_pos + 1 < oldest_retained_) {
    // Snapshot older than the retained history: conservative abort, by a
    // rule deterministic across replicas (depends only on positions).
    // This check also makes stale (not yet drained) index entries
    // harmless: any surviving snapshot satisfies
    // begin_pos >= oldest_retained_ - 1 >= stale entry position.
    return true;
  }
  return shard_.conflicts(begin_pos, read_set, write_set);
}

bool certifier::certify_update(std::uint64_t begin_pos,
                               const std::vector<db::item_id>& read_set,
                               const std::vector<db::item_id>& write_set) {
  DBSM_CHECK_MSG(begin_pos <= position_,
                 "snapshot " << begin_pos << " is in the future of "
                             << position_);
  ++position_;
  shard_.drain(cfg_.evict_drain_per_delivery);
  const bool conflict = conflicts(begin_pos, read_set, &write_set);
  // Modeled cost: one probe per element of the transaction's own sets —
  // deterministic and window-independent, like the real work.
  last_cost_ = cfg_.cost_fixed +
               cfg_.cost_per_element *
                   static_cast<sim_duration>(read_set.size() +
                                             write_set.size());
  if (conflict) {
    ++aborts_;
    return false;
  }
  ++commits_;
  shard_.install(write_set, position_);
  history_.push_back(cert_entry{position_, write_set});
  while (history_.size() > cfg_.history_window) {
    oldest_retained_ = history_.front().pos + 1;
    shard_.queue_eviction(std::move(history_.front()));
    history_.pop_front();
  }
  return true;
}

bool certifier::certify_read_only(
    std::uint64_t begin_pos, const std::vector<db::item_id>& read_set) const {
  const bool conflict = conflicts(begin_pos, read_set, nullptr);
  last_cost_ = cfg_.cost_fixed +
               cfg_.cost_per_element *
                   static_cast<sim_duration>(read_set.size());
  return !conflict;
}

void certifier::snapshot(util::buffer_writer& w) const {
  w.put_u64(position_);
  w.put_u64(oldest_retained_);
  w.put_u64(commits_);
  w.put_u64(aborts_);
  write_entry_block(w, shard_.evicted());
  write_entry_block(w, history_);
}

void certifier::restore(util::buffer_reader& r) {
  DBSM_CHECK_MSG(position_ == 0, "restore() needs a fresh certifier");
  position_ = r.get_u64();
  oldest_retained_ = r.get_u64();
  commits_ = r.get_u64();
  aborts_ = r.get_u64();
  // Rebuild the index by replay: evicted entries first (older positions),
  // then the retained window — identical contents to the donor's, stale
  // backlog entries included. The canonical entry blocks carry full write
  // sets, so this works no matter how many shards the donor ran.
  for (cert_entry& e : read_entry_block(r)) {
    shard_.install(e.write_set, e.pos);
    shard_.queue_eviction(std::move(e));
  }
  for (cert_entry& e : read_entry_block(r)) {
    shard_.install(e.write_set, e.pos);
    history_.push_back(std::move(e));
  }
}

}  // namespace dbsm::cert
