#include "cert/certifier.hpp"

#include <utility>

#include "util/check.hpp"

namespace dbsm::cert {

certifier::certifier(cert_config cfg) : cfg_(cfg) {
  DBSM_CHECK(cfg_.history_window > 0);
}

bool certifier::conflicts(std::uint64_t begin_pos,
                          const std::vector<db::item_id>& read_set,
                          const std::vector<db::item_id>* write_set) const {
  if (begin_pos + 1 < oldest_retained_) {
    // Snapshot older than the retained history: conservative abort, by a
    // rule deterministic across replicas (depends only on positions).
    // This check also makes stale (not yet drained) index entries
    // harmless: any surviving snapshot satisfies
    // begin_pos >= oldest_retained_ - 1 >= stale entry position.
    return true;
  }
  // Point reads are snapshot-served; only escalated (granule) reads can
  // conflict — with the last committed write advertising that granule.
  for (const db::item_id id : read_set) {
    if (db::is_granule(id) && index_.last_writer(id) > begin_pos)
      return true;
  }
  if (write_set != nullptr) {
    // Write-write at tuple granularity: granule markers are skipped
    // (two writers inside one granule do not conflict), exactly like the
    // reference scan's merge rule.
    for (const db::item_id id : *write_set) {
      if (!db::is_granule(id) && index_.last_writer(id) > begin_pos)
        return true;
    }
  }
  return false;
}

void certifier::drain_evicted(std::size_t max_entries) {
  while (max_entries-- > 0 && !evicted_.empty()) {
    const entry& e = evicted_.front();
    index_.forget_commit(e.write_set, e.pos);
    evicted_.pop_front();
  }
}

bool certifier::certify_update(std::uint64_t begin_pos,
                               const std::vector<db::item_id>& read_set,
                               const std::vector<db::item_id>& write_set) {
  DBSM_CHECK_MSG(begin_pos <= position_,
                 "snapshot " << begin_pos << " is in the future of "
                             << position_);
  ++position_;
  drain_evicted(cfg_.evict_drain_per_delivery);
  const bool conflict = conflicts(begin_pos, read_set, &write_set);
  // Modeled cost: one probe per element of the transaction's own sets —
  // deterministic and window-independent, like the real work.
  last_cost_ = cfg_.cost_fixed +
               cfg_.cost_per_element *
                   static_cast<sim_duration>(read_set.size() +
                                             write_set.size());
  if (conflict) {
    ++aborts_;
    return false;
  }
  ++commits_;
  index_.note_commit(write_set, position_);
  history_.push_back(entry{position_, write_set});
  while (history_.size() > cfg_.history_window) {
    oldest_retained_ = history_.front().pos + 1;
    evicted_.push_back(std::move(history_.front()));
    history_.pop_front();
  }
  return true;
}

bool certifier::certify_read_only(
    std::uint64_t begin_pos, const std::vector<db::item_id>& read_set) const {
  const bool conflict = conflicts(begin_pos, read_set, nullptr);
  last_cost_ = cfg_.cost_fixed +
               cfg_.cost_per_element *
                   static_cast<sim_duration>(read_set.size());
  return !conflict;
}

}  // namespace dbsm::cert
