#include "cert/certifier.hpp"

#include <utility>

#include "util/check.hpp"

namespace dbsm::cert {

certifier::certifier(cert_config cfg) : cfg_(cfg) {
  DBSM_CHECK(cfg_.history_window > 0);
}

bool certifier::conflicts(std::uint64_t begin_pos,
                          const std::vector<db::item_id>& read_set,
                          const std::vector<db::item_id>* write_set) const {
  if (begin_pos + 1 < oldest_retained_) {
    // Snapshot older than the retained history: conservative abort, by a
    // rule deterministic across replicas (depends only on positions).
    // This check also makes stale (not yet drained) index entries
    // harmless: any surviving snapshot satisfies
    // begin_pos >= oldest_retained_ - 1 >= stale entry position.
    return true;
  }
  // Point reads are snapshot-served; only escalated (granule) reads can
  // conflict — with the last committed write advertising that granule.
  for (const db::item_id id : read_set) {
    if (db::is_granule(id) && index_.last_writer(id) > begin_pos)
      return true;
  }
  if (write_set != nullptr) {
    // Write-write at tuple granularity: granule markers are skipped
    // (two writers inside one granule do not conflict), exactly like the
    // reference scan's merge rule.
    for (const db::item_id id : *write_set) {
      if (!db::is_granule(id) && index_.last_writer(id) > begin_pos)
        return true;
    }
  }
  return false;
}

void certifier::drain_evicted(std::size_t max_entries) {
  while (max_entries-- > 0 && !evicted_.empty()) {
    const entry& e = evicted_.front();
    index_.forget_commit(e.write_set, e.pos);
    evicted_.pop_front();
  }
}

bool certifier::certify_update(std::uint64_t begin_pos,
                               const std::vector<db::item_id>& read_set,
                               const std::vector<db::item_id>& write_set) {
  DBSM_CHECK_MSG(begin_pos <= position_,
                 "snapshot " << begin_pos << " is in the future of "
                             << position_);
  ++position_;
  drain_evicted(cfg_.evict_drain_per_delivery);
  const bool conflict = conflicts(begin_pos, read_set, &write_set);
  // Modeled cost: one probe per element of the transaction's own sets —
  // deterministic and window-independent, like the real work.
  last_cost_ = cfg_.cost_fixed +
               cfg_.cost_per_element *
                   static_cast<sim_duration>(read_set.size() +
                                             write_set.size());
  if (conflict) {
    ++aborts_;
    return false;
  }
  ++commits_;
  index_.note_commit(write_set, position_);
  history_.push_back(entry{position_, write_set});
  while (history_.size() > cfg_.history_window) {
    oldest_retained_ = history_.front().pos + 1;
    evicted_.push_back(std::move(history_.front()));
    history_.pop_front();
  }
  return true;
}

bool certifier::certify_read_only(
    std::uint64_t begin_pos, const std::vector<db::item_id>& read_set) const {
  const bool conflict = conflicts(begin_pos, read_set, nullptr);
  last_cost_ = cfg_.cost_fixed +
               cfg_.cost_per_element *
                   static_cast<sim_duration>(read_set.size());
  return !conflict;
}

void certifier::snapshot(util::buffer_writer& w) const {
  w.put_u64(position_);
  w.put_u64(oldest_retained_);
  w.put_u64(commits_);
  w.put_u64(aborts_);
  auto put_entries = [&w](const std::deque<entry>& entries) {
    w.put_u32(static_cast<std::uint32_t>(entries.size()));
    for (const entry& e : entries) {
      w.put_u64(e.pos);
      w.put_u32(static_cast<std::uint32_t>(e.write_set.size()));
      for (const db::item_id id : e.write_set) w.put_u64(id);
    }
  };
  put_entries(evicted_);
  put_entries(history_);
}

void certifier::restore(util::buffer_reader& r) {
  DBSM_CHECK_MSG(position_ == 0, "restore() needs a fresh certifier");
  position_ = r.get_u64();
  oldest_retained_ = r.get_u64();
  commits_ = r.get_u64();
  aborts_ = r.get_u64();
  auto get_entries = [&r](std::deque<entry>& entries) {
    const std::uint32_t n = r.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      entry e;
      e.pos = r.get_u64();
      const std::uint32_t items = r.get_u32();
      e.write_set.reserve(items);
      for (std::uint32_t j = 0; j < items; ++j)
        e.write_set.push_back(r.get_u64());
      entries.push_back(std::move(e));
    }
  };
  get_entries(evicted_);
  get_entries(history_);
  // Rebuild the index by replay: evicted entries first (older positions),
  // then the retained window — identical contents to the donor's, stale
  // backlog entries included.
  for (const entry& e : evicted_) index_.note_commit(e.write_set, e.pos);
  for (const entry& e : history_) index_.note_commit(e.write_set, e.pos);
}

}  // namespace dbsm::cert
