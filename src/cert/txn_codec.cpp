#include "cert/txn_codec.hpp"

#include "util/check.hpp"

namespace dbsm::cert {

txn_payload make_payload(const db::txn_request& req,
                         std::uint64_t begin_pos) {
  txn_payload p;
  p.id = req.id;
  p.cls = req.cls;
  p.origin = req.origin;
  p.begin_pos = begin_pos;
  p.read_set = req.read_set;
  p.write_set = req.write_set;
  p.update_bytes = req.update_bytes;
  p.disk_sectors = req.disk_sectors;
  return p;
}

std::size_t encoded_size(const txn_payload& p) {
  return 8 + 2 + 4 + 8 + 2 + 4 + 8 * p.read_set.size() + 4 +
         8 * p.write_set.size() + 4 + p.update_bytes;
}

util::shared_bytes encode_txn(const txn_payload& p) {
  util::buffer_writer w(encoded_size(p));
  w.put_u64(p.id);
  w.put_u16(p.cls);
  w.put_u32(p.origin);
  w.put_u64(p.begin_pos);
  w.put_u32(static_cast<std::uint32_t>(p.read_set.size()));
  for (db::item_id it : p.read_set) w.put_u64(it);
  w.put_u32(static_cast<std::uint32_t>(p.write_set.size()));
  for (db::item_id it : p.write_set) w.put_u64(it);
  w.put_u16(p.disk_sectors);
  w.put_u32(p.update_bytes);
  // The written values: padding of the real payload size (§3.3).
  w.put_padding(p.update_bytes);
  return w.take();
}

txn_payload decode_txn(const util::shared_bytes& raw) {
  util::buffer_reader r(raw);
  txn_payload p;
  p.id = r.get_u64();
  p.cls = r.get_u16();
  p.origin = r.get_u32();
  p.begin_pos = r.get_u64();
  const std::uint32_t nr = r.get_u32();
  p.read_set.reserve(nr);
  for (std::uint32_t i = 0; i < nr; ++i) p.read_set.push_back(r.get_u64());
  const std::uint32_t nw = r.get_u32();
  p.write_set.reserve(nw);
  for (std::uint32_t i = 0; i < nw; ++i) p.write_set.push_back(r.get_u64());
  p.disk_sectors = r.get_u16();
  p.update_bytes = r.get_u32();
  r.skip(p.update_bytes);
  DBSM_CHECK(r.done());
  return p;
}

}  // namespace dbsm::cert
