#include "cert/cert_index.hpp"

namespace dbsm::cert {

void last_writer_index::note_commit(
    const std::vector<db::item_id>& write_set, std::uint64_t pos) {
  for (const db::item_id id : write_set) map_for(id)[id] = pos;
}

void last_writer_index::forget_commit(
    const std::vector<db::item_id>& write_set, std::uint64_t pos) {
  for (const db::item_id id : write_set) {
    auto& m = map_for(id);
    const auto it = m.find(id);
    if (it != m.end() && it->second == pos) m.erase(it);
  }
}

}  // namespace dbsm::cert
