// Sharded, optionally parallel certification.
//
// The last-writer index partitions cleanly by item id: every probe and
// install touches exactly one id, so hash-splitting the tuple and granule
// spaces across N cert::index_shards makes one delivery's certification a
// fork-join — each fork worker probes/installs a contiguous shard range,
// writes its verdict into its own slot, and the verdicts are merged in
// shard order. Decisions (and therefore abort attribution downstream) are
// bit-identical to cert::certifier at every (shards, certify_threads)
// combination, because
//   * the conservative pre-window rule depends only on global delivery
//     positions and is applied before any shard is consulted;
//   * a conflict is the OR of per-shard verdicts over disjoint id sets —
//     commutative, and merged in a fixed order anyway;
//   * installs and eviction drains touch disjoint shards, so the parallel
//     pass reaches the same index contents as a serial one.
// The differential suite (tests/cert_shard_test.cpp) checks this
// decision-for-decision against cert::certifier, the way PR 1 checked the
// index against the reference scan.
//
// With the default cert_config (shards = 1, certify_threads = 1) no pool
// is created, sets are never copied or partitioned, and behavior —
// decisions, counters, modeled cost, snapshot bytes — is byte-identical
// to cert::certifier.
//
// Modeled cost: certification CPU is charged along the fork-join critical
// path — cost_fixed, plus cost_per_element times the element count of the
// worker with the most probes, plus cost_fork_join once per certification
// when the fork is real (more than one worker). At one worker this
// degenerates to the certifier's set-linear model, so figure benches can
// model multi-threaded delivery by just setting cert_config::{shards,
// certify_threads}.
//
// Snapshot/restore use the canonical shard-count-agnostic entry blocks of
// cert/index_shard.hpp: the donor merges its per-shard eviction rings
// back into full position-ordered entries; restore re-partitions by the
// local shard count. Donor and joiner may therefore disagree on
// cert_config::shards (recovery state transfer stays valid across
// heterogeneous tunings), and either end may be a cert::certifier.
#ifndef DBSM_CERT_SHARDED_CERTIFIER_HPP
#define DBSM_CERT_SHARDED_CERTIFIER_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cert/certifier.hpp"
#include "cert/index_shard.hpp"
#include "cert/rwset.hpp"
#include "util/byte_buffer.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace dbsm::cert {

class sharded_certifier {
 public:
  explicit sharded_certifier(cert_config cfg = {});

  /// Certifies an update transaction at the next delivery position.
  /// Returns true to commit (its write set then enters the history and
  /// the per-shard last-writer indexes). `amortized_fixed` switches the
  /// modeled fixed term to cert_config::cost_batch_fixed — set by the
  /// batched delivery path for every certification after a batch's first.
  /// It changes charged CPU only, never the decision.
  bool certify_update(std::uint64_t begin_pos,
                      const std::vector<db::item_id>& read_set,
                      const std::vector<db::item_id>& write_set,
                      bool amortized_fixed = false);

  /// Certifies a read-only transaction against the current position
  /// without consuming one (read-only transactions terminate locally).
  bool certify_read_only(std::uint64_t begin_pos,
                         const std::vector<db::item_id>& read_set) const;

  std::uint64_t position() const { return position_; }
  std::uint64_t oldest_retained() const { return oldest_retained_; }
  sim_duration last_cost() const { return last_cost_; }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::size_t history_size() const { return history_.size(); }

  /// Live entries summed over every shard's last-writer index.
  std::size_t index_size() const;
  /// Queued eviction slices summed over every shard's ring. Note the
  /// unit: with shards > 1 one evicted write set contributes one slice
  /// per shard that owns ids of it, so the count is comparable to
  /// cert::certifier's only at shards == 1.
  std::size_t evicted_backlog() const;

  /// Serializes the full certification state in the canonical
  /// shard-count-agnostic format (see cert/index_shard.hpp); restore()
  /// on a fresh instance — of any shard count, or a cert::certifier —
  /// reproduces the donor's decisions bit-for-bit.
  void snapshot(util::buffer_writer& w) const;
  void restore(util::buffer_reader& r);

  std::size_t shards() const { return shards_.size(); }
  /// Real fork width: min(certify_threads, shards), at least 1.
  unsigned workers() const { return workers_; }

 private:
  /// First shard of fork chunk `c` when the shard range is split evenly
  /// across `workers_` chunks (chunk c covers [begin(c), begin(c+1))).
  std::size_t chunk_begin(unsigned c) const {
    return static_cast<std::size_t>(c) * shards_.size() / workers_;
  }

  /// Deterministic id -> shard map (splitmix-style mixing; never
  /// std::hash, whose layout may differ between standard libraries).
  std::size_t shard_of(db::item_id id) const;

  /// Splits `set` into per-shard slices (scratch `slices`, cleared and
  /// refilled; slice order follows set order, so sorted sets produce
  /// sorted slices). No-op at shards == 1 — slice_of() then aliases the
  /// original set.
  void partition(const std::vector<db::item_id>& set,
                 std::vector<std::vector<db::item_id>>& slices) const;
  const std::vector<db::item_id>& slice_of(
      const std::vector<db::item_id>& full, std::size_t s,
      const std::vector<std::vector<db::item_id>>& slices) const {
    return shards_.size() == 1 ? full : slices[s];
  }

  /// Runs `per_shard` for every shard across the fork chunks. Inline when
  /// the fork width is 1 — a template so the default path never builds a
  /// std::function (no heap allocation per delivery); the type-erased
  /// wrapper exists only at the pool boundary of a real fork.
  template <typename Fn>
  void fork_join(const Fn& per_shard) const {
    if (workers_ <= 1 || pool_ == nullptr) {
      for (std::size_t s = 0; s < shards_.size(); ++s) per_shard(s);
      return;
    }
    pool_->run(workers_, [&](unsigned c) {
      const std::size_t end = chunk_begin(c + 1);
      for (std::size_t s = chunk_begin(c); s < end; ++s) per_shard(s);
    });
  }

  /// OR of the per-shard verdict slots, merged in shard order.
  bool merge_verdicts() const;

  /// Modeled cost of the last certification from the per-shard element
  /// counts in shard_elems_ (fork-join critical path; see header).
  /// `amortized_fixed` substitutes cost_batch_fixed for cost_fixed.
  sim_duration modeled_cost(bool amortized_fixed) const;

  /// Queues an entry that slid out of the window onto the owning shards'
  /// eviction rings — one partition pass. `install` additionally replays
  /// the slices into the shard indexes (restore(); on the delivery path
  /// the install already happened at commit time).
  void queue_evicted(cert_entry e, bool install = false);

  /// Per-shard eviction rings merged back into canonical full-set
  /// position-ordered entries (slices of equal position re-joined).
  std::vector<cert_entry> merged_evicted() const;

  cert_config cfg_;
  std::vector<index_shard> shards_;
  unsigned workers_ = 1;
  /// Null unless the fork is real (certify_threads > 1 and shards > 1).
  std::unique_ptr<util::thread_pool> pool_;

  std::deque<cert_entry> history_;  // full sets, ascending positions
  std::uint64_t position_ = 0;
  std::uint64_t oldest_retained_ = 1;
  mutable sim_duration last_cost_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;

  // Per-call scratch, reused so the hot path does not heap-allocate at
  // steady state. Mutable: the read-only path is logically const.
  mutable std::vector<std::vector<db::item_id>> read_slices_;
  mutable std::vector<std::vector<db::item_id>> write_slices_;
  mutable std::vector<std::vector<db::item_id>> evict_slices_;
  mutable std::vector<std::size_t> shard_elems_;
  mutable std::vector<std::uint8_t> verdicts_;
};

}  // namespace dbsm::cert

#endif  // DBSM_CERT_SHARDED_CERTIFIER_HPP
