#include "cert/index_shard.hpp"

namespace dbsm::cert {

bool index_shard::conflicts(std::uint64_t begin_pos,
                            const std::vector<db::item_id>& read_slice,
                            const std::vector<db::item_id>* write_slice)
    const {
  // Point reads are snapshot-served; only escalated (granule) reads can
  // conflict — with the last committed write advertising that granule.
  for (const db::item_id id : read_slice) {
    if (db::is_granule(id) && index_.last_writer(id) > begin_pos)
      return true;
  }
  if (write_slice != nullptr) {
    // Write-write at tuple granularity: granule markers are skipped (two
    // writers inside one granule do not conflict), exactly like the
    // reference scan's merge rule.
    for (const db::item_id id : *write_slice) {
      if (!db::is_granule(id) && index_.last_writer(id) > begin_pos)
        return true;
    }
  }
  return false;
}

void index_shard::drain(std::size_t max_entries) {
  while (max_entries-- > 0 && !evicted_.empty()) {
    const cert_entry& e = evicted_.front();
    index_.forget_commit(e.write_set, e.pos);
    evicted_.pop_front();
  }
}

std::vector<cert_entry> read_entry_block(util::buffer_reader& r) {
  std::vector<cert_entry> out;
  const std::uint32_t n = r.get_u32();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    cert_entry e;
    e.pos = r.get_u64();
    const std::uint32_t items = r.get_u32();
    e.write_set.reserve(items);
    for (std::uint32_t j = 0; j < items; ++j)
      e.write_set.push_back(r.get_u64());
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace dbsm::cert
