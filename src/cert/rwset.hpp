// Read/write-set utilities for the certification prototype (§3.3).
//
// Sets are sorted vectors of 64-bit tuple identifiers; keeping them ordered
// means every certification check is a single merge traversal. Sets may
// contain granule ids (escalated scans / the granules written tuples fall
// into) — see db/item.hpp for the escalation semantics.
#ifndef DBSM_CERT_RWSET_HPP
#define DBSM_CERT_RWSET_HPP

#include <vector>

#include "db/item.hpp"

namespace dbsm::cert {

/// Sorts and deduplicates a set in place.
void normalize(std::vector<db::item_id>& set);

/// True if the sets share any element (both must be normalized).
bool intersects(const std::vector<db::item_id>& a,
                const std::vector<db::item_id>& b);

/// Write/write conflict test: like intersects(), but granule-granule
/// matches do not count — two transactions writing different tuples of the
/// same granule do not conflict; the granule markers exist only so that
/// escalated *reads* catch point writes.
bool write_write_conflicts(const std::vector<db::item_id>& a,
                           const std::vector<db::item_id>& b);

/// Elements visited by one merge traversal (cost model input).
std::size_t merge_cost(const std::vector<db::item_id>& a,
                       const std::vector<db::item_id>& b);

/// Applies read-set escalation: if `scan_tuples` exceeds `threshold`, the
/// scan contributes only its granule id; otherwise the tuples themselves.
/// Appends to `out` (normalize afterwards).
void append_scan(std::vector<db::item_id>& out,
                 const std::vector<db::item_id>& scan_tuples,
                 db::item_id granule, std::size_t threshold);

}  // namespace dbsm::cert

#endif  // DBSM_CERT_RWSET_HPP
