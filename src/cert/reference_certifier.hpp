// Reference merge-scan certifier (§3.3) — the original O(window × |sets|)
// implementation, retained verbatim in behavior as the oracle for
// differential testing of the indexed certifier (cert/certifier.hpp).
//
// At each delivery it walks every retained committed write set newer than
// the transaction's snapshot and runs a merge traversal per set:
//   * write-write at tuple granularity (first-committer-wins);
//   * escalated granule reads against any committed write advertising the
//     granule (point reads are snapshot-served and never conflict).
// Its decisions define the protocol; the indexed certifier must match them
// bit for bit (tests/cert_index_test.cpp). Its modeled cost keeps the
// historical scan cost model — cost grows with the concurrent window — so
// the two certifiers' real and modeled costs can be compared directly.
#ifndef DBSM_CERT_REFERENCE_CERTIFIER_HPP
#define DBSM_CERT_REFERENCE_CERTIFIER_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "cert/certifier.hpp"
#include "cert/rwset.hpp"
#include "util/types.hpp"

namespace dbsm::cert {

class reference_certifier {
 public:
  explicit reference_certifier(cert_config cfg = {});

  /// Certifies an update transaction at the next delivery position.
  /// Returns true to commit (its write set then enters the history).
  bool certify_update(std::uint64_t begin_pos,
                      const std::vector<db::item_id>& read_set,
                      const std::vector<db::item_id>& write_set);

  /// Certifies a read-only transaction against the current position
  /// without consuming one (read-only transactions terminate locally).
  bool certify_read_only(std::uint64_t begin_pos,
                         const std::vector<db::item_id>& read_set) const;

  std::uint64_t position() const { return position_; }
  std::uint64_t oldest_retained() const { return oldest_retained_; }
  sim_duration last_cost() const { return last_cost_; }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::size_t history_size() const { return history_.size(); }

 private:
  struct entry {
    std::uint64_t pos;
    std::vector<db::item_id> write_set;
  };

  /// Conflict scan over history entries with pos in (begin_pos, +inf).
  bool conflicts(std::uint64_t begin_pos,
                 const std::vector<db::item_id>& read_set,
                 const std::vector<db::item_id>* write_set,
                 sim_duration& cost) const;

  cert_config cfg_;
  std::deque<entry> history_;  // ascending positions, committed only
  std::uint64_t position_ = 0;
  std::uint64_t oldest_retained_ = 1;
  mutable sim_duration last_cost_ = 0;
  /// Per-call scratch for the escalated-read subset of the read set,
  /// reused across calls so the hot path does not heap-allocate.
  mutable std::vector<db::item_id> read_granules_scratch_;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
};

}  // namespace dbsm::cert

#endif  // DBSM_CERT_REFERENCE_CERTIFIER_HPP
