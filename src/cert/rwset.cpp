#include "cert/rwset.hpp"

#include <algorithm>

namespace dbsm::cert {

void normalize(std::vector<db::item_id>& set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
}

bool intersects(const std::vector<db::item_id>& a,
                const std::vector<db::item_id>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

bool write_write_conflicts(const std::vector<db::item_id>& a,
                           const std::vector<db::item_id>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      // Equal ids are either the same tuple (conflict) or the same granule
      // marker (two writers inside one granule — not a tuple conflict).
      if (!db::is_granule(*ia)) return true;
      ++ia;
      ++ib;
    }
  }
  return false;
}

std::size_t merge_cost(const std::vector<db::item_id>& a,
                       const std::vector<db::item_id>& b) {
  return a.size() + b.size();
}

void append_scan(std::vector<db::item_id>& out,
                 const std::vector<db::item_id>& scan_tuples,
                 db::item_id granule, std::size_t threshold) {
  if (scan_tuples.size() > threshold) {
    out.push_back(granule);
  } else {
    out.insert(out.end(), scan_tuples.begin(), scan_tuples.end());
  }
}

}  // namespace dbsm::cert
