#include "cert/rwset.hpp"

#include <algorithm>

namespace dbsm::cert {

void normalize(std::vector<db::item_id>& set) {
  // Sets built by ascending scans (and already-normalized sets passing
  // through again) are common; the O(n) sortedness check dodges the
  // O(n log n) sort for them on the per-transaction hot path.
  if (!std::is_sorted(set.begin(), set.end()))
    std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
}

bool intersects(const std::vector<db::item_id>& a,
                const std::vector<db::item_id>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

bool write_write_conflicts(const std::vector<db::item_id>& a,
                           const std::vector<db::item_id>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      // Equal ids are either the same tuple (conflict) or the same granule
      // marker (two writers inside one granule — not a tuple conflict).
      if (!db::is_granule(*ia)) return true;
      ++ia;
      ++ib;
    }
  }
  return false;
}

std::size_t merge_cost(const std::vector<db::item_id>& a,
                       const std::vector<db::item_id>& b) {
  return a.size() + b.size();
}

void append_scan(std::vector<db::item_id>& out,
                 const std::vector<db::item_id>& scan_tuples,
                 db::item_id granule, std::size_t threshold) {
  if (scan_tuples.size() > threshold) {
    out.push_back(granule);
  } else {
    // No reserve here: repeated appends into one set must keep the
    // vector's geometric growth (an exact-size reserve per call would
    // force a reallocation on every subsequent append). Callers that
    // know their final size reserve up front (tpcc/workload.cpp).
    out.insert(out.end(), scan_tuples.begin(), scan_tuples.end());
  }
}

}  // namespace dbsm::cert
