// One hash-partition of the certification state, plus the canonical
// snapshot format shared by cert::certifier and cert::sharded_certifier.
//
// A shard owns the last-writer entries of the item ids that hash into it
// (tuple and granule spaces both) and the lazy-eviction ring for those
// same ids. Probes, installs and eviction drains touch only this shard's
// maps, so distinct shards can run concurrently with no synchronization:
// the sharded certifier forks one task per shard range and the
// single-index certifier simply owns one shard.
//
// Snapshot format (cert_entry blocks): a membership-recovery state
// transfer serializes write sets as flat position-ordered entries with
// *full* (unpartitioned) sets — first the not-yet-drained eviction
// backlog, then the retained window. The layout is deliberately
// independent of cert_config::shards: the donor merges its per-shard
// rings back into canonical entries and the joiner re-partitions them by
// its own shard count on restore, so donor and joiner may disagree on
// `shards` (and either end may run the single-index certifier). Replaying
// the entries in order rebuilds identical index contents — stale backlog
// entries included — at any partitioning.
#ifndef DBSM_CERT_INDEX_SHARD_HPP
#define DBSM_CERT_INDEX_SHARD_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "cert/cert_index.hpp"
#include "db/item.hpp"
#include "util/byte_buffer.hpp"

namespace dbsm::cert {

/// One committed (or evicted-pending-drain) write set at its delivery
/// position. In a shard's ring the set is this shard's slice; in the
/// canonical snapshot it is the full set.
struct cert_entry {
  std::uint64_t pos = 0;
  std::vector<db::item_id> write_set;
};

class index_shard {
 public:
  /// Probes this shard's slices of a transaction's sets: escalated
  /// (granule) reads against the last committed writer of the granule,
  /// writes against tuple-granularity write-write. The global pre-window
  /// rule is the caller's job — it depends only on positions, never on
  /// shard contents.
  bool conflicts(std::uint64_t begin_pos,
                 const std::vector<db::item_id>& read_slice,
                 const std::vector<db::item_id>* write_slice) const;

  /// Records `pos` as the last writer of this shard's slice of a
  /// committed write set.
  void install(const std::vector<db::item_id>& write_slice,
               std::uint64_t pos) {
    index_.note_commit(write_slice, pos);
  }

  /// Queues a slice that slid out of the history window for lazy index
  /// cleanup (stale entries are decision-safe; see cert_index.hpp).
  void queue_eviction(cert_entry slice) {
    evicted_.push_back(std::move(slice));
  }

  /// Removes up to `max_entries` queued slices' stale index entries.
  void drain(std::size_t max_entries);

  std::size_t index_size() const { return index_.size(); }
  std::size_t evicted_backlog() const { return evicted_.size(); }
  /// Queued slices in eviction (= position) order, for snapshot merging.
  const std::deque<cert_entry>& evicted() const { return evicted_; }

 private:
  last_writer_index index_;
  std::deque<cert_entry> evicted_;
};

/// Writes one canonical block of cert_entries (count, then pos + set per
/// entry). `Seq` is any forward range of cert_entry.
template <typename Seq>
void write_entry_block(util::buffer_writer& w, const Seq& entries) {
  w.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const cert_entry& e : entries) {
    w.put_u64(e.pos);
    w.put_u32(static_cast<std::uint32_t>(e.write_set.size()));
    for (const db::item_id id : e.write_set) w.put_u64(id);
  }
}

/// Reads one block written by write_entry_block.
std::vector<cert_entry> read_entry_block(util::buffer_reader& r);

}  // namespace dbsm::cert

#endif  // DBSM_CERT_INDEX_SHARD_HPP
