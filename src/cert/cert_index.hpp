// Inverted last-writer index over the retained certification history.
//
// Maps every identifier appearing in a committed write set to the delivery
// position of its most recent committed writer. Identifiers keep the exact
// equality semantics of the merge-scan certifier: tuple ids and granule ids
// live in two parallel maps split by the granule bit, so
//   * a point write probes the tuple index (write-write, first-committer-
//     wins — granule markers never collide with tuple ids);
//   * an escalated granule read probes the granule index, which catches
//     point writes inside its granule because write sets advertise the
//     granule marker of every written tuple (§3.3 escalation), and catches
//     committed granule writes for the same reason.
// Entries whose writer slid out of the history window are removed lazily
// (see certifier): a stale entry is harmless for decisions because its
// position precedes every snapshot that survives the conservative
// pre-window abort rule, so it can never satisfy `pos > begin_pos`.
#ifndef DBSM_CERT_CERT_INDEX_HPP
#define DBSM_CERT_CERT_INDEX_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/item.hpp"

namespace dbsm::cert {

class last_writer_index {
 public:
  /// Records `pos` as the last committed writer of every id in
  /// `write_set`. Positions are strictly increasing across calls.
  void note_commit(const std::vector<db::item_id>& write_set,
                   std::uint64_t pos);

  /// Last committed delivery position that wrote `id`, or 0 if no retained
  /// committed write set contains it (positions start at 1).
  std::uint64_t last_writer(db::item_id id) const {
    const auto& m = map_for(id);
    const auto it = m.find(id);
    return it == m.end() ? 0 : it->second;
  }

  /// Drops every id of `write_set` whose recorded last writer is exactly
  /// `pos` (nothing newer overwrote it) — called when the committed entry
  /// at `pos` leaves the history window.
  void forget_commit(const std::vector<db::item_id>& write_set,
                     std::uint64_t pos);

  /// Live index entries across both maps (memory probe for tests/bench).
  std::size_t size() const { return tuples_.size() + granules_.size(); }

 private:
  std::unordered_map<db::item_id, std::uint64_t>& map_for(db::item_id id) {
    return db::is_granule(id) ? granules_ : tuples_;
  }
  const std::unordered_map<db::item_id, std::uint64_t>& map_for(
      db::item_id id) const {
    return db::is_granule(id) ? granules_ : tuples_;
  }

  std::unordered_map<db::item_id, std::uint64_t> tuples_;
  std::unordered_map<db::item_id, std::uint64_t> granules_;
};

}  // namespace dbsm::cert

#endif  // DBSM_CERT_CERT_INDEX_HPP
