#include "cert/sharded_certifier.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.hpp"

namespace dbsm::cert {

sharded_certifier::sharded_certifier(cert_config cfg) : cfg_(cfg) {
  DBSM_CHECK(cfg_.history_window > 0);
  DBSM_CHECK(cfg_.shards > 0);
  DBSM_CHECK(cfg_.certify_threads > 0);
  shards_.resize(cfg_.shards);
  workers_ = static_cast<unsigned>(std::min<std::size_t>(
      cfg_.certify_threads, shards_.size()));
  if (workers_ > 1)
    pool_ = std::make_unique<util::thread_pool>(workers_);
  read_slices_.resize(shards_.size());
  write_slices_.resize(shards_.size());
  evict_slices_.resize(shards_.size());
  shard_elems_.resize(shards_.size());
  verdicts_.resize(shards_.size());
}

std::size_t sharded_certifier::shard_of(db::item_id id) const {
  if (cfg_.shard_map) {
    const std::size_t s = cfg_.shard_map(id, shards_.size());
    DBSM_CHECK_MSG(s < shards_.size(), "shard_map returned " << s
                                           << " of " << shards_.size());
    return s;
  }
  // splitmix64 finalizer: deterministic across platforms and runs, and
  // uncorrelated with the id layout's table/warehouse bit fields.
  std::uint64_t x = id;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards_.size());
}

void sharded_certifier::partition(
    const std::vector<db::item_id>& set,
    std::vector<std::vector<db::item_id>>& slices) const {
  if (shards_.size() == 1) return;  // slice_of() aliases the full set
  for (auto& s : slices) s.clear();
  for (const db::item_id id : set) slices[shard_of(id)].push_back(id);
}

bool sharded_certifier::merge_verdicts() const {
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (verdicts_[s] != 0) return true;
  return false;
}

sim_duration sharded_certifier::modeled_cost(bool amortized_fixed) const {
  // Critical path of the fork-join: the chunk of shards whose slices hold
  // the most elements. One worker degenerates to the set-linear model of
  // cert::certifier (total element count, no fork term).
  std::size_t worst = 0;
  for (unsigned c = 0; c < workers_; ++c) {
    std::size_t elems = 0;
    const std::size_t end = chunk_begin(c + 1);
    for (std::size_t s = chunk_begin(c); s < end; ++s)
      elems += shard_elems_[s];
    worst = std::max(worst, elems);
  }
  sim_duration cost =
      (amortized_fixed ? cfg_.cost_batch_fixed : cfg_.cost_fixed) +
      cfg_.cost_per_element * static_cast<sim_duration>(worst);
  if (workers_ > 1) cost += cfg_.cost_fork_join;
  return cost;
}

bool sharded_certifier::certify_update(
    std::uint64_t begin_pos, const std::vector<db::item_id>& read_set,
    const std::vector<db::item_id>& write_set, bool amortized_fixed) {
  DBSM_CHECK_MSG(begin_pos <= position_,
                 "snapshot " << begin_pos << " is in the future of "
                             << position_);
  ++position_;
  // Zero-set short-circuit: with nothing to probe or install, no shard can
  // produce a verdict and the decision is the global pre-window rule alone
  // — so skip the fork-join (and its modeled fork cost) entirely. The
  // eviction rings still drain serially and the (empty) entry still enters
  // the history, so index contents and drain positions stay identical to
  // the long path.
  if (read_set.empty() && write_set.empty()) {
    for (auto& s : shards_) s.drain(cfg_.evict_drain_per_delivery);
    last_cost_ = amortized_fixed ? cfg_.cost_batch_fixed : cfg_.cost_fixed;
    if (begin_pos + 1 < oldest_retained_) {
      ++aborts_;
      return false;
    }
    ++commits_;
    history_.push_back(cert_entry{position_, {}});
    while (history_.size() > cfg_.history_window) {
      oldest_retained_ = history_.front().pos + 1;
      queue_evicted(std::move(history_.front()));
      history_.pop_front();
    }
    return true;
  }
  partition(read_set, read_slices_);
  partition(write_set, write_slices_);
  // The conservative pre-window rule is global (positions only) and must
  // precede every probe, exactly like cert::certifier::conflicts.
  const bool pre_window = begin_pos + 1 < oldest_retained_;
  fork_join([&](std::size_t s) {
    shards_[s].drain(cfg_.evict_drain_per_delivery);
    const auto& rs = slice_of(read_set, s, read_slices_);
    const auto& ws = slice_of(write_set, s, write_slices_);
    shard_elems_[s] = rs.size() + ws.size();
    verdicts_[s] =
        (!pre_window && shards_[s].conflicts(begin_pos, rs, &ws)) ? 1 : 0;
  });
  const bool conflict = pre_window || merge_verdicts();
  last_cost_ = modeled_cost(amortized_fixed);
  if (conflict) {
    ++aborts_;
    return false;
  }
  ++commits_;
  fork_join([&](std::size_t s) {
    shards_[s].install(slice_of(write_set, s, write_slices_), position_);
  });
  history_.push_back(cert_entry{position_, write_set});
  while (history_.size() > cfg_.history_window) {
    oldest_retained_ = history_.front().pos + 1;
    queue_evicted(std::move(history_.front()));
    history_.pop_front();
  }
  return true;
}

bool sharded_certifier::certify_read_only(
    std::uint64_t begin_pos, const std::vector<db::item_id>& read_set) const {
  // Zero-set short-circuit (see certify_update): an empty read set can
  // only fail the global pre-window rule, so no shard is consulted.
  if (read_set.empty()) {
    last_cost_ = cfg_.cost_fixed;
    return !(begin_pos + 1 < oldest_retained_);
  }
  bool conflict = begin_pos + 1 < oldest_retained_;
  partition(read_set, read_slices_);
  fork_join([&](std::size_t s) {
    const auto& rs = slice_of(read_set, s, read_slices_);
    shard_elems_[s] = rs.size();
    verdicts_[s] =
        (!conflict && shards_[s].conflicts(begin_pos, rs, nullptr)) ? 1 : 0;
  });
  conflict = conflict || merge_verdicts();
  last_cost_ = modeled_cost(/*amortized_fixed=*/false);
  return !conflict;
}

void sharded_certifier::queue_evicted(cert_entry e, bool install) {
  if (shards_.size() == 1) {
    if (install) shards_[0].install(e.write_set, e.pos);
    shards_[0].queue_eviction(std::move(e));
    return;
  }
  partition(e.write_set, evict_slices_);
  bool queued = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (evict_slices_[s].empty()) continue;
    if (install) shards_[s].install(evict_slices_[s], e.pos);
    // Scratch slices are cleared by the next partition(); moving them
    // out here is free.
    shards_[s].queue_eviction(cert_entry{e.pos, std::move(evict_slices_[s])});
    queued = true;
  }
  // An (unusual) empty write set still occupies one ring slot, like the
  // single-index layout, so drains converge at the same positions.
  if (!queued) shards_[0].queue_eviction(cert_entry{e.pos, {}});
}

std::size_t sharded_certifier::index_size() const {
  std::size_t n = 0;
  for (const index_shard& s : shards_) n += s.index_size();
  return n;
}

std::size_t sharded_certifier::evicted_backlog() const {
  std::size_t n = 0;
  for (const index_shard& s : shards_) n += s.evicted_backlog();
  return n;
}

std::vector<cert_entry> sharded_certifier::merged_evicted() const {
  // K-way merge of the per-shard rings by position. Shards may have
  // drained to different positions (an entry's slice can be absent from a
  // shard that already dropped it, or never owned part of the set) — the
  // merged entry then carries the surviving subset, which restore replays
  // identically: stale entries are decision-safe whatever their extent.
  std::vector<cert_entry> out;
  if (shards_.size() == 1) {
    const auto& ring = shards_[0].evicted();
    out.assign(ring.begin(), ring.end());
    return out;
  }
  std::vector<std::size_t> cursor(shards_.size(), 0);
  for (;;) {
    std::uint64_t pos = std::numeric_limits<std::uint64_t>::max();
    bool any = false;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& ring = shards_[s].evicted();
      if (cursor[s] < ring.size()) {
        pos = std::min(pos, ring[cursor[s]].pos);
        any = true;
      }
    }
    if (!any) break;
    cert_entry e;
    e.pos = pos;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& ring = shards_[s].evicted();
      if (cursor[s] < ring.size() && ring[cursor[s]].pos == pos) {
        const auto& slice = ring[cursor[s]].write_set;
        e.write_set.insert(e.write_set.end(), slice.begin(), slice.end());
        ++cursor[s];
      }
    }
    // Slices are disjoint id subsets; sorting restores the canonical
    // (normalized write set) order.
    std::sort(e.write_set.begin(), e.write_set.end());
    out.push_back(std::move(e));
  }
  return out;
}

void sharded_certifier::snapshot(util::buffer_writer& w) const {
  w.put_u64(position_);
  w.put_u64(oldest_retained_);
  w.put_u64(commits_);
  w.put_u64(aborts_);
  write_entry_block(w, merged_evicted());
  write_entry_block(w, history_);
}

void sharded_certifier::restore(util::buffer_reader& r) {
  DBSM_CHECK_MSG(position_ == 0, "restore() needs a fresh certifier");
  position_ = r.get_u64();
  oldest_retained_ = r.get_u64();
  commits_ = r.get_u64();
  aborts_ = r.get_u64();
  // Replay in donor order — evicted (older) entries first, then the
  // retained window — re-partitioned by the *local* shard count: the
  // canonical blocks carry full write sets, so the donor's shard count
  // (or its use of cert::certifier) is irrelevant here. Installs run
  // inline: a per-entry fork-join would cost more than the few hash
  // inserts it parallelizes.
  for (cert_entry& e : read_entry_block(r))
    queue_evicted(std::move(e), /*install=*/true);
  for (cert_entry& e : read_entry_block(r)) {
    partition(e.write_set, write_slices_);
    for (std::size_t s = 0; s < shards_.size(); ++s)
      shards_[s].install(slice_of(e.write_set, s, write_slices_), e.pos);
    history_.push_back(std::move(e));
  }
}

}  // namespace dbsm::cert
