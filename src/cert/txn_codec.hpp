// Marshaling of transaction termination data (§3.3): "identifiers of read
// and written tuples ... the values of the written tuples ... along with
// the identifiers of the last transaction that has been committed locally,
// are marshaled into a message buffer."
//
// Written values are represented by padding of the same total size, so
// message sizes match what a real system would multicast — the padding is
// what the network and CPU cost models see.
#ifndef DBSM_CERT_TXN_CODEC_HPP
#define DBSM_CERT_TXN_CODEC_HPP

#include "db/transaction.hpp"
#include "util/byte_buffer.hpp"

namespace dbsm::cert {

/// Termination payload of one update transaction.
struct txn_payload {
  std::uint64_t id = 0;
  db::txn_class cls = 0;
  node_id origin = 0;
  std::uint64_t begin_pos = 0;  // snapshot: last locally applied position
  std::vector<db::item_id> read_set;
  std::vector<db::item_id> write_set;
  std::uint32_t update_bytes = 0;
  std::uint16_t disk_sectors = 0;
};

/// Builds the payload from an executed request and its snapshot.
txn_payload make_payload(const db::txn_request& req, std::uint64_t begin_pos);

util::shared_bytes encode_txn(const txn_payload& p);
txn_payload decode_txn(const util::shared_bytes& raw);

/// Marshaled size without building the buffer (for tests / sizing).
std::size_t encoded_size(const txn_payload& p);

}  // namespace dbsm::cert

#endif  // DBSM_CERT_TXN_CODEC_HPP
