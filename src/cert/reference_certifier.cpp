#include "cert/reference_certifier.hpp"

#include "util/check.hpp"

namespace dbsm::cert {

reference_certifier::reference_certifier(cert_config cfg) : cfg_(cfg) {
  DBSM_CHECK(cfg_.history_window > 0);
}

bool reference_certifier::conflicts(std::uint64_t begin_pos,
                                    const std::vector<db::item_id>& read_set,
                                    const std::vector<db::item_id>* write_set,
                                    sim_duration& cost) const {
  cost = cfg_.cost_fixed;
  if (begin_pos + 1 < oldest_retained_) {
    // Snapshot older than the retained history: conservative abort, by a
    // rule deterministic across replicas (depends only on positions).
    return true;
  }
  // Point reads are snapshot-served; only escalated (granule) reads can
  // conflict with committed writes.
  std::vector<db::item_id>& read_granules = read_granules_scratch_;
  read_granules.clear();
  for (db::item_id it : read_set) {
    if (db::is_granule(it)) read_granules.push_back(it);
  }
  cost += cfg_.cost_per_element *
          static_cast<sim_duration>(read_set.size());

  // Binary search for the first committed entry after the snapshot.
  std::size_t lo = 0, hi = history_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (history_[mid].pos > begin_pos) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  for (std::size_t i = lo; i < history_.size(); ++i) {
    const entry& e = history_[i];
    if (!read_granules.empty()) {
      cost += cfg_.cost_per_element * static_cast<sim_duration>(
                                          merge_cost(e.write_set,
                                                     read_granules));
      if (intersects(e.write_set, read_granules)) return true;
    }
    if (write_set != nullptr) {
      cost += cfg_.cost_per_element *
              static_cast<sim_duration>(merge_cost(e.write_set, *write_set));
      if (write_write_conflicts(e.write_set, *write_set)) return true;
    }
  }
  return false;
}

bool reference_certifier::certify_update(
    std::uint64_t begin_pos, const std::vector<db::item_id>& read_set,
    const std::vector<db::item_id>& write_set) {
  DBSM_CHECK_MSG(begin_pos <= position_,
                 "snapshot " << begin_pos << " is in the future of "
                             << position_);
  ++position_;
  sim_duration cost = 0;
  const bool conflict = conflicts(begin_pos, read_set, &write_set, cost);
  last_cost_ = cost;
  if (conflict) {
    ++aborts_;
    return false;
  }
  ++commits_;
  history_.push_back(entry{position_, write_set});
  while (history_.size() > cfg_.history_window) {
    oldest_retained_ = history_.front().pos + 1;
    history_.pop_front();
  }
  return true;
}

bool reference_certifier::certify_read_only(
    std::uint64_t begin_pos, const std::vector<db::item_id>& read_set) const {
  sim_duration cost = 0;
  const bool conflict = conflicts(begin_pos, read_set, nullptr, cost);
  last_cost_ = cost;
  return !conflict;
}

}  // namespace dbsm::cert
