#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dbsm::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

rng::rng(std::uint64_t seed) : origin_seed_(seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DBSM_CHECK_MSG(lo <= hi, "lo=" << lo << " hi=" << hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Multiply-shift rejection-free mapping is fine for simulation purposes.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double rng::exponential(double mean) {
  DBSM_CHECK_MSG(mean > 0.0, "mean=" << mean);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

rng rng::fork(std::string_view tag) const {
  return rng(origin_seed_ ^ stable_hash(tag) ^ 0x6a09e667f3bcc909ull);
}

}  // namespace dbsm::util
