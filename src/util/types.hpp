// Fundamental scalar types shared by the whole workbench.
#ifndef DBSM_UTIL_TYPES_HPP
#define DBSM_UTIL_TYPES_HPP

#include <cstdint>
#include <limits>

namespace dbsm {

/// Simulated time, in nanoseconds since the start of the simulation.
using sim_time = std::int64_t;

/// A span of simulated time, in nanoseconds.
using sim_duration = std::int64_t;

constexpr sim_duration nanoseconds(std::int64_t n) { return n; }
constexpr sim_duration microseconds(std::int64_t n) { return n * 1'000; }
constexpr sim_duration milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr sim_duration seconds(std::int64_t n) { return n * 1'000'000'000; }

/// Fractional constructors (useful for computed delays).
constexpr sim_duration from_seconds(double s) {
  return static_cast<sim_duration>(s * 1e9);
}
constexpr sim_duration from_millis(double ms) {
  return static_cast<sim_duration>(ms * 1e6);
}
constexpr sim_duration from_micros(double us) {
  return static_cast<sim_duration>(us * 1e3);
}

constexpr double to_seconds(sim_duration d) { return static_cast<double>(d) / 1e9; }
constexpr double to_millis(sim_duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_micros(sim_duration d) { return static_cast<double>(d) / 1e3; }

/// A point in time that is never reached.
constexpr sim_time time_never = std::numeric_limits<sim_time>::max();

/// Identifies one node (host / replica / process) in the system.
using node_id = std::uint32_t;

constexpr node_id invalid_node = std::numeric_limits<node_id>::max();

}  // namespace dbsm

#endif  // DBSM_UTIL_TYPES_HPP
