// Invariant checking. Violations throw, so tests can assert on them and a
// long simulation run fails loudly instead of silently corrupting results.
#ifndef DBSM_UTIL_CHECK_HPP
#define DBSM_UTIL_CHECK_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace dbsm {

/// Thrown when a DBSM_CHECK invariant fails.
class invariant_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& extra) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  throw invariant_violation(os.str());
}
}  // namespace detail

}  // namespace dbsm

/// Always-on invariant check (simulations are cheap; silent corruption is not).
#define DBSM_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) ::dbsm::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Invariant check with a streamed explanation, e.g.
/// DBSM_CHECK_MSG(a == b, "a=" << a << " b=" << b).
#define DBSM_CHECK_MSG(cond, stream_expr)                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream dbsm_check_os;                                 \
      dbsm_check_os << stream_expr;                                     \
      ::dbsm::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                   dbsm_check_os.str());                \
    }                                                                   \
  } while (false)

#endif  // DBSM_UTIL_CHECK_HPP
