// Streaming and sample-based statistics used for every reported metric:
// latency distributions (ECDF, quantiles, Q-Q), throughput, resource usage.
#ifndef DBSM_UTIL_STATS_HPP
#define DBSM_UTIL_STATS_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace dbsm::util {

/// Streaming mean/variance/min/max (Welford's algorithm).
class running_stats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  void merge(const running_stats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores samples for distribution queries. Sorting is lazy and cached.
class sample_set {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  /// Quantile q in [0,1] with linear interpolation; empty set -> 0.
  double quantile(double q) const;

  /// Empirical CDF value at x: fraction of samples <= x.
  double ecdf_at(double x) const;

  /// (x, F(x)) pairs of the full empirical CDF (one point per sample).
  std::vector<std::pair<double, double>> ecdf_points() const;

  /// Downsampled ECDF: `n` evenly spaced quantile points, suitable for
  /// printing a plot series.
  std::vector<std::pair<double, double>> ecdf_series(std::size_t n) const;

  const std::vector<double>& sorted() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Q-Q series between two sample sets: n matched quantile pairs
/// (quantile of a, quantile of b).
std::vector<std::pair<double, double>> qq_series(const sample_set& a,
                                                 const sample_set& b,
                                                 std::size_t n);

/// Fixed-bucket histogram over [lo, hi); out-of-range values clamp into the
/// first/last bucket. Used for coarse latency breakdowns in logs.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count_at(std::size_t i) const { return counts_[i]; }
  double bucket_low(std::size_t i) const;
  std::size_t total() const { return total_; }
  std::string to_string() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Tracks the busy fraction of a resource over simulated time.
/// Feed it (time, busy-units) transitions; it integrates utilization.
class utilization_tracker {
 public:
  explicit utilization_tracker(double capacity = 1.0);

  /// Records that from `now` onward, `busy_units` units are in use.
  void set_busy(std::int64_t now, double busy_units);
  /// Adds `delta` units of usage starting at `now`.
  void add_busy(std::int64_t now, double delta);

  /// Utilization in [0,1] over [start, now].
  double utilization(std::int64_t now) const;
  /// Integrated busy time (unit-nanoseconds / capacity).
  double busy_integral(std::int64_t now) const;
  double current_busy() const { return busy_; }

 private:
  double capacity_;
  double busy_ = 0.0;
  std::int64_t last_change_ = 0;
  std::int64_t start_ = 0;
  double integral_ = 0.0;  // unit-nanoseconds
};

}  // namespace dbsm::util

#endif  // DBSM_UTIL_STATS_HPP
