// Aligned text tables for printing paper-style result rows.
#ifndef DBSM_UTIL_TABLE_HPP
#define DBSM_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace dbsm::util {

/// Builds a column-aligned plain-text table (right-aligned numeric cells).
class text_table {
 public:
  /// Sets the header row.
  void header(std::vector<std::string> cols);

  /// Appends a data row; it may have fewer cells than the header.
  void row(std::vector<std::string> cells);

  /// Renders with two-space column separation and a rule under the header.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
std::string fmt(double v, int digits = 2);

/// Formats an integer count.
std::string fmt(std::int64_t v);
std::string fmt(std::size_t v);

}  // namespace dbsm::util

#endif  // DBSM_UTIL_TABLE_HPP
