// Duration / value distributions used to model profiled costs.
//
// The paper drives the simulated database with *empirical distributions*
// obtained by profiling PostgreSQL (§4.1). We substitute calibrated
// parametric and tabulated distributions behind one small interface.
#ifndef DBSM_UTIL_DISTRIBUTIONS_HPP
#define DBSM_UTIL_DISTRIBUTIONS_HPP

#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace dbsm::util {

/// A sampleable non-negative real distribution.
class distribution {
 public:
  virtual ~distribution() = default;
  /// Draws one sample using the caller's generator.
  virtual double sample(rng& gen) const = 0;
  /// Analytic or configured mean (used by load calculations and docs).
  virtual double mean() const = 0;
};

using distribution_ptr = std::shared_ptr<const distribution>;

/// Always returns the same value.
distribution_ptr constant_dist(double value);

/// Uniform over [lo, hi].
distribution_ptr uniform_dist(double lo, double hi);

/// Exponential with the given mean.
distribution_ptr exponential_dist(double mean);

/// Log-normal parameterized by its *actual* mean and coefficient of
/// variation (cv = stddev/mean), which is how calibration tables are
/// written. Samples are truncated at `cap` (<=0 means no cap).
distribution_ptr lognormal_dist(double mean, double cv, double cap = 0.0);

/// Normal truncated below at `floor` (resampled).
distribution_ptr truncated_normal_dist(double mean, double stddev,
                                       double floor = 0.0);

/// Empirical distribution: samples uniformly among the given points with
/// linear interpolation between adjacent sorted points (a smoothed
/// bootstrap of a profile log).
distribution_ptr empirical_dist(std::vector<double> points);

/// Mixture of (weight, component) pairs; weights need not be normalized.
distribution_ptr mixture_dist(
    std::vector<std::pair<double, distribution_ptr>> parts);

/// Scales every sample of `base` by `factor` (e.g. CPU-speed scaling).
distribution_ptr scaled_dist(distribution_ptr base, double factor);

}  // namespace dbsm::util

#endif  // DBSM_UTIL_DISTRIBUTIONS_HPP
