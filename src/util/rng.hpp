// Deterministic random number generation (xoshiro256**, splitmix64 seeded).
//
// Every stochastic component of the workbench owns its own rng forked from a
// single experiment seed, so adding events to one component never perturbs
// the random stream of another — runs are reproducible bit-for-bit.
#ifndef DBSM_UTIL_RNG_HPP
#define DBSM_UTIL_RNG_HPP

#include <array>
#include <cstdint>
#include <string_view>

namespace dbsm::util {

/// xoshiro256** pseudo-random generator with convenience distributions.
class rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (p clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean);

  /// Normally distributed value (Box–Muller, one spare cached).
  double normal(double mean, double stddev);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Derives an independent generator; the child stream is a pure function
  /// of (parent seed, tag), not of how much the parent has been used.
  rng fork(std::string_view tag) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t origin_seed_ = 0;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// splitmix64 step; exposed because deterministic hashing reuses it.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a byte string (FNV-1a), for fork tags.
std::uint64_t stable_hash(std::string_view s);

}  // namespace dbsm::util

#endif  // DBSM_UTIL_RNG_HPP
