#include "util/csv.hpp"

namespace dbsm::util {

csv_writer::csv_writer(const std::string& path) {
  if (!path.empty()) out_.open(path);
}

void csv_writer::row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ",";
    out_ << cells[i];
  }
  out_ << "\n";
}

}  // namespace dbsm::util
