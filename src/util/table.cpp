#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dbsm::util {

void text_table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void text_table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string text_table::to_string() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      if (i) os << "  ";
      // First column left-aligned (labels), rest right-aligned (numbers).
      if (i == 0) {
        os << cell << std::string(width[i] - cell.size(), ' ');
      } else {
        os << std::string(width[i] - cell.size(), ' ') << cell;
      }
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < ncols; ++i) rule += width[i] + (i ? 2 : 0);
    os << std::string(rule, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt(std::int64_t v) { return std::to_string(v); }
std::string fmt(std::size_t v) { return std::to_string(v); }

}  // namespace dbsm::util
