// Leveled, component-tagged logging. The simulation logs protocol events
// (the paper's tcpdump-style observability) when enabled; benches keep it
// off so runs stay fast.
#ifndef DBSM_UTIL_LOG_HPP
#define DBSM_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace dbsm::util {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global minimum level; messages below it are compiled to a cheap check.
log_level get_log_level();
void set_log_level(log_level lvl);

/// Writes one line to stderr: "[level] [tag] message".
void log_line(log_level lvl, const std::string& tag, const std::string& msg);

}  // namespace dbsm::util

#define DBSM_LOG(lvl, tag, stream_expr)                                  \
  do {                                                                   \
    if (static_cast<int>(::dbsm::util::log_level::lvl) >=                \
        static_cast<int>(::dbsm::util::get_log_level())) {               \
      std::ostringstream dbsm_log_os;                                    \
      dbsm_log_os << stream_expr;                                        \
      ::dbsm::util::log_line(::dbsm::util::log_level::lvl, (tag),        \
                             dbsm_log_os.str());                         \
    }                                                                    \
  } while (false)

#endif  // DBSM_UTIL_LOG_HPP
