#include "util/log.hpp"

#include <cstdio>

namespace dbsm::util {

namespace {
log_level g_level = log_level::warn;

const char* level_name(log_level lvl) {
  switch (lvl) {
    case log_level::debug: return "debug";
    case log_level::info: return "info";
    case log_level::warn: return "warn";
    case log_level::error: return "error";
    case log_level::off: return "off";
  }
  return "?";
}
}  // namespace

log_level get_log_level() { return g_level; }
void set_log_level(log_level lvl) { g_level = lvl; }

void log_line(log_level lvl, const std::string& tag, const std::string& msg) {
  std::fprintf(stderr, "[%s] [%s] %s\n", level_name(lvl), tag.c_str(),
               msg.c_str());
}

}  // namespace dbsm::util
