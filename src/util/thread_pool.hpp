// Persistent fork-join worker pool.
//
// `run(tasks, fn)` executes fn(0) ... fn(tasks-1) across the pool and
// returns once every call has finished. The calling thread participates,
// so a pool of width W keeps W-1 background workers; workers persist
// across run() calls (no thread spawn on the certification hot path).
//
// Task indices are claimed under a mutex, so *which* thread runs a given
// task is scheduling-dependent — callers that need deterministic results
// must make tasks write disjoint state keyed by the task index (the
// sharded certifier gives every task its own shard range and verdict
// slot), after which the outcome is independent of scheduling.
#ifndef DBSM_UTIL_THREAD_POOL_HPP
#define DBSM_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbsm::util {

class thread_pool {
 public:
  /// `width` counts the calling thread: width <= 1 spawns nothing and
  /// run() executes inline.
  explicit thread_pool(unsigned width);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Total fork width (background workers + the calling thread).
  unsigned width() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(t) for every t in [0, tasks); returns when all calls have
  /// completed. Not reentrant: one run() at a time per pool.
  void run(unsigned tasks, const std::function<void(unsigned)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;  // workers: a new job (or stop) arrived
  std::condition_variable idle_;  // caller: the current job completed
  const std::function<void(unsigned)>* job_ = nullptr;
  unsigned tasks_ = 0;
  unsigned next_ = 0;       // next unclaimed task index
  unsigned remaining_ = 0;  // claimed or unclaimed tasks not yet finished
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace dbsm::util

#endif  // DBSM_UTIL_THREAD_POOL_HPP
