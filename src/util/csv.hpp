// Minimal CSV emission for benchmark series (one file per figure).
#ifndef DBSM_UTIL_CSV_HPP
#define DBSM_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace dbsm::util {

/// Writes rows to a CSV file; silently no-ops if the path is empty, so
/// benches can make file output optional.
class csv_writer {
 public:
  csv_writer() = default;
  explicit csv_writer(const std::string& path);

  bool is_open() const { return out_.is_open(); }
  void row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
};

}  // namespace dbsm::util

#endif  // DBSM_UTIL_CSV_HPP
