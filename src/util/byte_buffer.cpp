#include "util/byte_buffer.hpp"

#include <cstring>

#include "util/check.hpp"

namespace dbsm::util {

void buffer_writer::put_u8(std::uint8_t v) { data_.push_back(v); }

void buffer_writer::put_u16(std::uint16_t v) {
  data_.push_back(static_cast<std::uint8_t>(v));
  data_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void buffer_writer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    data_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void buffer_writer::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    data_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void buffer_writer::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void buffer_writer::put_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void buffer_writer::put_bytes(const std::uint8_t* p, std::size_t n) {
  data_.insert(data_.end(), p, p + n);
}

void buffer_writer::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void buffer_writer::put_padding(std::size_t n) {
  data_.insert(data_.end(), n, std::uint8_t{0});
}

shared_bytes buffer_writer::take() {
  return std::make_shared<const bytes>(std::move(data_));
}

buffer_reader::buffer_reader(shared_bytes data)
    : owner_(std::move(data)),
      data_(owner_ ? owner_->data() : nullptr),
      size_(owner_ ? owner_->size() : 0) {}

buffer_reader::buffer_reader(const std::uint8_t* p, std::size_t n)
    : data_(p), size_(n) {}

void buffer_reader::need(std::size_t n) const {
  DBSM_CHECK_MSG(pos_ + n <= size_,
                 "buffer underflow: pos=" << pos_ << " need=" << n
                                          << " size=" << size_);
}

std::uint8_t buffer_reader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t buffer_reader::get_u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v |= static_cast<std::uint16_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 2;
  return v;
}

std::uint32_t buffer_reader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t buffer_reader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::int64_t buffer_reader::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

double buffer_reader::get_double() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void buffer_reader::get_bytes(std::uint8_t* out, std::size_t n) {
  need(n);
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::string buffer_reader::get_string() {
  const std::uint32_t n = get_u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void buffer_reader::skip(std::size_t n) {
  need(n);
  pos_ += n;
}

}  // namespace dbsm::util
