// Wire-format marshaling buffers.
//
// The certification prototype marshals transaction ids, read/write sets and
// written values into message buffers (§3.3). Encoding is little-endian,
// fixed width. Payloads are shared (shared_ptr) so that forwarding a message
// through protocol layers and the simulated network never copies it — the
// "avoid copying already-marshaled buffers" property of the paper's
// prototype.
#ifndef DBSM_UTIL_BYTE_BUFFER_HPP
#define DBSM_UTIL_BYTE_BUFFER_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dbsm::util {

using bytes = std::vector<std::uint8_t>;
using shared_bytes = std::shared_ptr<const bytes>;

/// Appends fixed-width little-endian values to a growable buffer.
class buffer_writer {
 public:
  buffer_writer() = default;
  explicit buffer_writer(std::size_t reserve) { data_.reserve(reserve); }

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_double(double v);
  void put_bytes(const std::uint8_t* p, std::size_t n);
  void put_string(std::string_view s);  // u32 length prefix + bytes

  /// Appends `n` zero bytes; models the padding the prototype adds so that
  /// message sizes match the tuple values of a real system (§3.3).
  void put_padding(std::size_t n);

  std::size_t size() const { return data_.size(); }

  /// Finishes writing and returns the buffer as an immutable shared payload.
  shared_bytes take();

 private:
  bytes data_;
};

/// Reads values written by buffer_writer. Out-of-bounds reads throw.
class buffer_reader {
 public:
  explicit buffer_reader(shared_bytes data);
  buffer_reader(const std::uint8_t* p, std::size_t n);

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_double();
  void get_bytes(std::uint8_t* out, std::size_t n);
  std::string get_string();
  void skip(std::size_t n);

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  shared_bytes owner_;  // keeps the payload alive when reading shared data
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace dbsm::util

#endif  // DBSM_UTIL_BYTE_BUFFER_HPP
