// Tiny command-line flag parser for bench and example binaries.
// Supports --name=value, --name value, and bare --bool-name.
#ifndef DBSM_UTIL_FLAGS_HPP
#define DBSM_UTIL_FLAGS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dbsm::util {

/// Declarative flag set: declare defaults, parse argv, read typed values.
class flag_set {
 public:
  /// Declares a flag with its default (as text) and a help line.
  void declare(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Parses argv; returns false (after printing usage) on unknown flags or
  /// --help.
  bool parse(int argc, char** argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  /// Unsigned read for count-like flags; dies on a negative value instead
  /// of wrapping it silently to a huge count.
  std::uint64_t get_u64(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  bool is_set(const std::string& name) const;

  std::string usage(const std::string& program) const;

 private:
  struct entry {
    std::string value;
    std::string default_value;
    std::string help;
    bool set_explicitly = false;
  };
  const entry& find(const std::string& name) const;

  std::map<std::string, entry> entries_;
};

}  // namespace dbsm::util

#endif  // DBSM_UTIL_FLAGS_HPP
