#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "util/check.hpp"

namespace dbsm::util {

namespace {

class constant_impl final : public distribution {
 public:
  explicit constant_impl(double v) : value_(v) {}
  double sample(rng&) const override { return value_; }
  double mean() const override { return value_; }

 private:
  double value_;
};

class uniform_impl final : public distribution {
 public:
  uniform_impl(double lo, double hi) : lo_(lo), hi_(hi) {
    DBSM_CHECK(lo <= hi);
  }
  double sample(rng& gen) const override {
    return lo_ + (hi_ - lo_) * gen.uniform();
  }
  double mean() const override { return (lo_ + hi_) / 2.0; }

 private:
  double lo_, hi_;
};

class exponential_impl final : public distribution {
 public:
  explicit exponential_impl(double mean) : mean_(mean) {
    DBSM_CHECK(mean > 0.0);
  }
  double sample(rng& gen) const override { return gen.exponential(mean_); }
  double mean() const override { return mean_; }

 private:
  double mean_;
};

class lognormal_impl final : public distribution {
 public:
  lognormal_impl(double mean, double cv, double cap)
      : configured_mean_(mean), cap_(cap) {
    DBSM_CHECK(mean > 0.0);
    DBSM_CHECK(cv >= 0.0);
    const double sigma2 = std::log(1.0 + cv * cv);
    sigma_ = std::sqrt(sigma2);
    mu_ = std::log(mean) - sigma2 / 2.0;
  }
  double sample(rng& gen) const override {
    double v = gen.lognormal(mu_, sigma_);
    if (cap_ > 0.0 && v > cap_) v = cap_;
    return v;
  }
  double mean() const override { return configured_mean_; }

 private:
  double configured_mean_, cap_;
  double mu_ = 0.0, sigma_ = 0.0;
};

class truncated_normal_impl final : public distribution {
 public:
  truncated_normal_impl(double mean, double stddev, double floor)
      : mean_(mean), stddev_(stddev), floor_(floor) {
    DBSM_CHECK(stddev >= 0.0);
    DBSM_CHECK_MSG(mean > floor, "mean=" << mean << " floor=" << floor);
  }
  double sample(rng& gen) const override {
    for (int i = 0; i < 64; ++i) {
      const double v = gen.normal(mean_, stddev_);
      if (v >= floor_) return v;
    }
    return floor_;  // pathological parameters; degrade gracefully
  }
  double mean() const override { return mean_; }

 private:
  double mean_, stddev_, floor_;
};

class empirical_impl final : public distribution {
 public:
  explicit empirical_impl(std::vector<double> points)
      : points_(std::move(points)) {
    DBSM_CHECK(!points_.empty());
    std::sort(points_.begin(), points_.end());
    mean_ = std::accumulate(points_.begin(), points_.end(), 0.0) /
            static_cast<double>(points_.size());
  }
  double sample(rng& gen) const override {
    if (points_.size() == 1) return points_.front();
    // Pick a random position along the sorted points and interpolate.
    const double pos =
        gen.uniform() * static_cast<double>(points_.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    return points_[idx] + frac * (points_[idx + 1] - points_[idx]);
  }
  double mean() const override { return mean_; }

 private:
  std::vector<double> points_;
  double mean_ = 0.0;
};

class mixture_impl final : public distribution {
 public:
  explicit mixture_impl(std::vector<std::pair<double, distribution_ptr>> parts)
      : parts_(std::move(parts)) {
    DBSM_CHECK(!parts_.empty());
    for (const auto& [w, d] : parts_) {
      DBSM_CHECK(w >= 0.0);
      DBSM_CHECK(d != nullptr);
      total_weight_ += w;
      mean_ += w * d->mean();
    }
    DBSM_CHECK(total_weight_ > 0.0);
    mean_ /= total_weight_;
  }
  double sample(rng& gen) const override {
    double pick = gen.uniform() * total_weight_;
    for (const auto& [w, d] : parts_) {
      if (pick < w) return d->sample(gen);
      pick -= w;
    }
    return parts_.back().second->sample(gen);
  }
  double mean() const override { return mean_; }

 private:
  std::vector<std::pair<double, distribution_ptr>> parts_;
  double total_weight_ = 0.0;
  double mean_ = 0.0;
};

class scaled_impl final : public distribution {
 public:
  scaled_impl(distribution_ptr base, double factor)
      : base_(std::move(base)), factor_(factor) {
    DBSM_CHECK(base_ != nullptr);
    DBSM_CHECK(factor >= 0.0);
  }
  double sample(rng& gen) const override {
    return base_->sample(gen) * factor_;
  }
  double mean() const override { return base_->mean() * factor_; }

 private:
  distribution_ptr base_;
  double factor_;
};

}  // namespace

distribution_ptr constant_dist(double value) {
  return std::make_shared<constant_impl>(value);
}
distribution_ptr uniform_dist(double lo, double hi) {
  return std::make_shared<uniform_impl>(lo, hi);
}
distribution_ptr exponential_dist(double mean) {
  return std::make_shared<exponential_impl>(mean);
}
distribution_ptr lognormal_dist(double mean, double cv, double cap) {
  return std::make_shared<lognormal_impl>(mean, cv, cap);
}
distribution_ptr truncated_normal_dist(double mean, double stddev,
                                       double floor) {
  return std::make_shared<truncated_normal_impl>(mean, stddev, floor);
}
distribution_ptr empirical_dist(std::vector<double> points) {
  return std::make_shared<empirical_impl>(std::move(points));
}
distribution_ptr mixture_dist(
    std::vector<std::pair<double, distribution_ptr>> parts) {
  return std::make_shared<mixture_impl>(std::move(parts));
}
distribution_ptr scaled_dist(distribution_ptr base, double factor) {
  return std::make_shared<scaled_impl>(std::move(base), factor);
}

}  // namespace dbsm::util
