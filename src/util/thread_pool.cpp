#include "util/thread_pool.hpp"

namespace dbsm::util {

thread_pool::thread_pool(unsigned width) {
  if (width <= 1) return;
  workers_.reserve(width - 1);
  for (unsigned i = 0; i + 1 < width; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void thread_pool::run(unsigned tasks,
                      const std::function<void(unsigned)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty()) {
    for (unsigned t = 0; t < tasks; ++t) fn(t);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    tasks_ = tasks;
    next_ = 0;
    remaining_ = tasks;
    ++epoch_;
  }
  wake_.notify_all();
  // The caller claims tasks alongside the workers, then waits for the
  // stragglers it did not run itself.
  std::unique_lock<std::mutex> lk(mu_);
  while (next_ < tasks_) {
    const unsigned t = next_++;
    lk.unlock();
    fn(t);
    lk.lock();
    --remaining_;
  }
  idle_.wait(lk, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void thread_pool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    wake_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    while (next_ < tasks_) {
      const unsigned t = next_++;
      const auto* job = job_;
      lk.unlock();
      (*job)(t);
      lk.lock();
      if (--remaining_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace dbsm::util
