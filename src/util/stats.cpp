#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace dbsm::util {

void running_stats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

void running_stats::merge(const running_stats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void sample_set::add(double x) {
  samples_.push_back(x);
  sorted_ = samples_.size() <= 1;
}

double sample_set::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

const std::vector<double>& sample_set::sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

double sample_set::min() const {
  return samples_.empty() ? 0.0 : sorted().front();
}

double sample_set::max() const {
  return samples_.empty() ? 0.0 : sorted().back();
}

double sample_set::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  const auto& s = sorted();
  if (s.size() == 1) return s.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= s.size()) return s.back();
  const double frac = pos - static_cast<double>(idx);
  return s[idx] + frac * (s[idx + 1] - s[idx]);
}

double sample_set::ecdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto& s = sorted();
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

std::vector<std::pair<double, double>> sample_set::ecdf_points() const {
  std::vector<std::pair<double, double>> out;
  const auto& s = sorted();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    out.emplace_back(s[i],
                     static_cast<double>(i + 1) / static_cast<double>(s.size()));
  }
  return out;
}

std::vector<std::pair<double, double>> sample_set::ecdf_series(
    std::size_t n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q =
        n == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

std::vector<std::pair<double, double>> qq_series(const sample_set& a,
                                                 const sample_set& b,
                                                 std::size_t n) {
  std::vector<std::pair<double, double>> out;
  if (a.empty() || b.empty() || n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    out.emplace_back(a.quantile(q), b.quantile(q));
  }
  return out;
}

histogram::histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  DBSM_CHECK(hi > lo);
  DBSM_CHECK(buckets > 0);
}

void histogram::add(double x) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  ++counts_[i];
  ++total_;
}

double histogram::bucket_low(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

std::string histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << bucket_low(i) << ", " << bucket_low(i + 1)
       << "): " << counts_[i] << "\n";
  }
  return os.str();
}

utilization_tracker::utilization_tracker(double capacity)
    : capacity_(capacity) {
  DBSM_CHECK(capacity > 0.0);
}

void utilization_tracker::set_busy(std::int64_t now, double busy_units) {
  DBSM_CHECK_MSG(now >= last_change_,
                 "now=" << now << " last=" << last_change_);
  DBSM_CHECK_MSG(busy_units >= -1e-9 && busy_units <= capacity_ + 1e-9,
                 "busy=" << busy_units << " capacity=" << capacity_);
  integral_ += busy_ * static_cast<double>(now - last_change_);
  busy_ = std::clamp(busy_units, 0.0, capacity_);
  last_change_ = now;
}

void utilization_tracker::add_busy(std::int64_t now, double delta) {
  set_busy(now, busy_ + delta);
}

double utilization_tracker::utilization(std::int64_t now) const {
  const auto elapsed = static_cast<double>(now - start_);
  if (elapsed <= 0.0) return 0.0;
  const double total =
      integral_ + busy_ * static_cast<double>(now - last_change_);
  return total / (elapsed * capacity_);
}

double utilization_tracker::busy_integral(std::int64_t now) const {
  return (integral_ + busy_ * static_cast<double>(now - last_change_)) /
         capacity_;
}

}  // namespace dbsm::util
