#include "util/flags.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace dbsm::util {

void flag_set::declare(const std::string& name,
                       const std::string& default_value,
                       const std::string& help) {
  entry e;
  e.value = default_value;
  e.default_value = default_value;
  e.help = help;
  entries_[name] = std::move(e);
}

bool flag_set::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = entries_.find(name);
      const bool looks_bool =
          it != entries_.end() &&
          (it->second.default_value == "true" ||
           it->second.default_value == "false");
      if (looks_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        return false;
      }
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    it->second.value = value;
    it->second.set_explicitly = true;
  }
  return true;
}

const flag_set::entry& flag_set::find(const std::string& name) const {
  auto it = entries_.find(name);
  DBSM_CHECK_MSG(it != entries_.end(), "undeclared flag " << name);
  return it->second;
}

std::string flag_set::get_string(const std::string& name) const {
  return find(name).value;
}

std::int64_t flag_set::get_int(const std::string& name) const {
  return std::strtoll(find(name).value.c_str(), nullptr, 10);
}

std::uint64_t flag_set::get_u64(const std::string& name) const {
  const std::string& v = find(name).value;
  // strtoull accepts a leading '-' (wrapping the result), so reject it
  // explicitly; also insist the whole token parsed and did not overflow.
  const char* s = v.c_str();
  while (*s == ' ' || *s == '\t') ++s;
  DBSM_CHECK_MSG(*s != '-',
                 "flag --" << name << " must be >= 0, got " << v);
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(s, &end, 10);
  DBSM_CHECK_MSG(end != s && *end == '\0' && errno != ERANGE,
                 "flag --" << name << " is not a valid unsigned integer: "
                           << v);
  return parsed;
}

double flag_set::get_double(const std::string& name) const {
  return std::strtod(find(name).value.c_str(), nullptr);
}

bool flag_set::get_bool(const std::string& name) const {
  const std::string& v = find(name).value;
  return v == "true" || v == "1" || v == "yes";
}

bool flag_set::is_set(const std::string& name) const {
  return find(name).set_explicitly;
}

std::string flag_set::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name << " (default: " << e.default_value << ")  "
       << e.help << "\n";
  }
  return os.str();
}

}  // namespace dbsm::util
