// Profiling clock for real-code jobs (§2.3).
//
// The paper virtualizes CPU cycle counters (Linux perfctr) to time real
// protocol code and stops the clock whenever the code re-enters the
// simulation runtime (Fig 1b). `thread_cpu_profiler` reproduces this with
// CLOCK_THREAD_CPUTIME_ID; pause()/resume() implement the clock-stop
// technique.
#ifndef DBSM_CSRT_PROFILER_HPP
#define DBSM_CSRT_PROFILER_HPP

#include <cstdint>

#include "util/types.hpp"

namespace dbsm::csrt {

/// Measures CPU time consumed by the current thread between start/stop,
/// excluding paused intervals.
class thread_cpu_profiler {
 public:
  /// Begins a measurement; resets the accumulator.
  void start();

  /// Stops the clock while simulation-runtime code runs (bridge calls).
  void pause();

  /// Restarts the clock when control returns to real code.
  void resume();

  /// Ends the measurement and returns total measured nanoseconds.
  sim_duration stop();

  /// Measured nanoseconds so far (callable while running or paused).
  sim_duration elapsed() const;

  bool running() const { return running_; }

 private:
  static std::int64_t thread_cpu_now();

  std::int64_t t0_ = 0;
  sim_duration accumulated_ = 0;
  bool active_ = false;   // between start and stop
  bool running_ = false;  // not paused
};

}  // namespace dbsm::csrt

#endif  // DBSM_CSRT_PROFILER_HPP
