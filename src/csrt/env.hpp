// The protocol abstraction layer (§2.3).
//
// Replication components (group communication, certification) are "real
// code": they target this single-threaded interface only — job scheduling,
// clock access and a simplified datagram interface. It is implemented twice:
//   * sim_env    — bridges into the simulation kernel / network model and
//                  charges the simulated CPU for execution time;
//   * native_env — bridges onto OS timers and UDP sockets, so the very same
//                  protocol code runs on a real network.
#ifndef DBSM_CSRT_ENV_HPP
#define DBSM_CSRT_ENV_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "util/byte_buffer.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dbsm::csrt {

/// Invoked for each datagram delivered to this node.
using msg_handler = std::function<void(node_id from, util::shared_bytes msg)>;

/// Handle for cancelling timers. 0 is never valid.
using timer_id = std::uint64_t;

/// Per-message CPU overhead of the communication path — the four CSRT
/// configuration parameters of §4.1 (fixed and size-proportional cost of
/// sending and of receiving one datagram), determined in the paper with a
/// network flooding benchmark.
struct net_cost_model {
  sim_duration send_fixed = microseconds(15);
  double send_per_byte_ns = 10.0;
  sim_duration recv_fixed = microseconds(15);
  double recv_per_byte_ns = 10.0;

  sim_duration send_cost(std::size_t bytes) const {
    return send_fixed +
           static_cast<sim_duration>(send_per_byte_ns *
                                     static_cast<double>(bytes));
  }
  sim_duration recv_cost(std::size_t bytes) const {
    return recv_fixed +
           static_cast<sim_duration>(recv_per_byte_ns *
                                     static_cast<double>(bytes));
  }
};

/// Single-threaded runtime environment for protocol code.
class env {
 public:
  virtual ~env() = default;

  /// This node's identity.
  virtual node_id self() const = 0;

  /// Static transport-level peer set (including self). Dynamic membership
  /// is the group-communication layer's business, not the transport's.
  virtual const std::vector<node_id>& peers() const = 0;

  /// Current time in nanoseconds. Inside a real-code job this advances with
  /// the job's own measured/charged execution time (clock-stop technique).
  virtual sim_time now() = 0;

  /// Runs `fn` after `d` nanoseconds, as real code.
  virtual timer_id set_timer(sim_duration d, std::function<void()> fn) = 0;

  /// Cancels a pending timer; returns false if it already fired.
  virtual bool cancel_timer(timer_id id) = 0;

  /// Sends a datagram to one peer (unreliable, unordered).
  virtual void send(node_id to, util::shared_bytes msg) = 0;

  /// Sends a datagram to all peers (IP multicast on a LAN; the transport
  /// falls back to unicast fan-out where multicast is unavailable).
  virtual void multicast(util::shared_bytes msg) = 0;

  /// Charges `cost` nanoseconds of CPU to the current job. Used by the
  /// deterministic cost model; a no-op when real measurement is active.
  virtual void charge(sim_duration cost) = 0;

  /// Registers the datagram delivery handler.
  virtual void set_handler(msg_handler h) = 0;

  /// Schedules `fn` to run as real code as soon as possible (bootstrap).
  virtual void post(std::function<void()> fn) = 0;

  /// Deterministic per-node random stream.
  virtual util::rng& random() = 0;

  /// Largest safe datagram payload, in bytes.
  virtual std::size_t max_datagram() const = 0;
};

}  // namespace dbsm::csrt

#endif  // DBSM_CSRT_ENV_HPP
