// env bridge into the simulation: SSF kernel + network model + simulated
// CPU (§2.2/2.3). Implements the semantics of Fig 1:
//   * a real-code job executes in zero simulated time, its duration Δ is
//     measured (or charged by the deterministic cost model) and the CPU is
//     held busy for Δ;
//   * events scheduled and messages sent *from inside* real code are
//     timestamped job_start + elapsed-so-far, and the profiling clock stops
//     while bridge code runs (Fig 1b).
#ifndef DBSM_CSRT_SIM_ENV_HPP
#define DBSM_CSRT_SIM_ENV_HPP

#include <unordered_set>
#include <vector>

#include "csrt/cpu.hpp"
#include "csrt/env.hpp"
#include "csrt/profiler.hpp"
#include "sim/simulator.hpp"

namespace dbsm::csrt {

/// Transport used by sim_env to inject datagrams into the simulated
/// network; implemented by the net module (udp adapter).
class transport {
 public:
  virtual ~transport() = default;
  virtual void send(node_id to, util::shared_bytes payload) = 0;
  virtual void multicast(util::shared_bytes payload) = 0;
  /// Number of distinct NIC transmissions one multicast costs the sender
  /// (1 with IP multicast, |group|-1 with unicast fan-out).
  virtual unsigned multicast_fanout() const = 0;
  virtual std::size_t max_datagram() const = 0;
};

class sim_env final : public env {
 public:
  struct config {
    node_id self = 0;
    std::vector<node_id> peers;    // transport-level peer set, incl. self
    net_cost_model costs;
    /// Scale factor applied to *measured* durations: host-ns × scale →
    /// simulated-ns (models a CPU `1/scale` times the host's speed).
    double measured_scale = 1.0;
    /// If true, time real code with the thread CPU clock; if false, rely
    /// purely on charge() costs (deterministic).
    bool measure_real_time = false;
  };

  sim_env(sim::simulator& sim, cpu_pool& cpu, transport& net, config cfg,
          util::rng rng);

  // --- env interface ---
  node_id self() const override { return cfg_.self; }
  const std::vector<node_id>& peers() const override { return cfg_.peers; }
  sim_time now() override;
  timer_id set_timer(sim_duration d, std::function<void()> fn) override;
  bool cancel_timer(timer_id id) override;
  void send(node_id to, util::shared_bytes msg) override;
  void multicast(util::shared_bytes msg) override;
  void charge(sim_duration cost) override;
  void set_handler(msg_handler h) override;
  void post(std::function<void()> fn) override;
  util::rng& random() override { return rng_; }
  std::size_t max_datagram() const override { return net_.max_datagram(); }

  // --- simulation-side interface ---

  /// Called by the network adapter when a datagram arrives at this node;
  /// enqueues a real-code job that charges the receive cost and runs the
  /// registered handler.
  void deliver_datagram(node_id from, util::shared_bytes payload);

  /// Runs `fn` at the current effective time as plain simulation code (used
  /// to hand results from real code back to simulated components without
  /// charging protocol CPU).
  void call_out(std::function<void()> fn);

  /// True while a real-code job of this env is executing.
  bool in_job() const { return in_job_; }

  /// Cancels every timer currently armed through this env (site teardown:
  /// a restarting site's protocol stack is destroyed mid-run, and no
  /// pending timer callback may outlive it).
  void cancel_all_timers();

  // --- fault injection knobs (§5.3) ---

  /// Clock drift: timers armed while the drift is active are postponed by
  /// (1 + rate) and measured/charged durations scaled down by its inverse.
  /// Idempotent and reversible — set_clock_drift(0.0) restores nominal
  /// timing (already-armed timers keep their postponed deadlines), so drift
  /// can be confined to a fault window.
  void set_clock_drift(double rate);

  /// Scheduling latency: a uniform random delay in [0, max] added to every
  /// timer armed by real code while the fault is active; 0 disarms.
  void set_timer_jitter(sim_duration max) { timer_jitter_max_ = max; }

  /// Total bytes handed to the transport (protocol egress accounting).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t datagrams_received() const { return datagrams_received_; }

 private:
  friend class bridge_guard;

  /// Submits a real-code job with an initial charged cost.
  void post_job(sim_duration pre_charge, std::function<void()> fn);

  /// Effective current time inside/outside jobs.
  sim_time effective_now();

  sim::simulator& sim_;
  cpu_pool& cpu_;
  transport& net_;
  config cfg_;
  util::rng rng_;
  msg_handler handler_;

  thread_cpu_profiler profiler_;
  bool in_job_ = false;
  sim_time job_start_ = 0;
  sim_duration job_elapsed_ = 0;

  timer_id next_timer_ = 1;
  std::unordered_map<timer_id, sim::event_id> timers_;

  double timer_scale_ = 1.0;      // clock drift: postpone factor
  double charge_scale_ = 1.0;     // clock drift: duration shrink factor
  sim_duration timer_jitter_max_ = 0;  // scheduling latency fault

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_received_ = 0;
};

}  // namespace dbsm::csrt

#endif  // DBSM_CSRT_SIM_ENV_HPP
