// Simulated CPUs (§2.2, Fig 1).
//
// A cpu_pool models `n` identical processors fed from a shared queue.
// Two job classes exist:
//   * simulated jobs — transaction-processing slices with a known duration;
//     they are preemptible;
//   * real jobs — executions of real protocol code; their duration is
//     produced by running the code under a profiling clock (or a
//     deterministic cost model). Real jobs have priority and preempt
//     simulated jobs, as in the paper.
// The pool integrates utilization separately for all jobs and for real
// (protocol) jobs, feeding Fig 6(a) and Fig 7(c).
#ifndef DBSM_CSRT_CPU_HPP
#define DBSM_CSRT_CPU_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace dbsm::csrt {

/// Handle for cancelling queued or running simulated jobs. 0 is invalid.
using job_id = std::uint64_t;

/// A pool of simulated CPUs with a shared run queue.
class cpu_pool {
 public:
  /// `n` CPUs attached to `sim`.
  cpu_pool(sim::simulator& sim, unsigned n);

  cpu_pool(const cpu_pool&) = delete;
  cpu_pool& operator=(const cpu_pool&) = delete;

  /// Enqueues a simulated job of duration `d`; `done` fires when the job has
  /// consumed `d` nanoseconds of CPU (possibly split by preemption).
  job_id submit_simulated(sim_duration d, std::function<void()> done);

  /// Enqueues a real job. When dispatched, `work` runs immediately (in zero
  /// simulated time) and returns the duration to charge; the CPU is then
  /// held for that long, after which `done` (if any) fires.
  void submit_real(std::function<sim_duration()> work,
                   std::function<void()> done = {});

  /// Cancels a simulated job (queued or running). Its `done` never fires.
  /// Returns false if the job already completed or is unknown.
  bool cancel_simulated(job_id id);

  unsigned size() const { return static_cast<unsigned>(cpus_.size()); }
  std::size_t queued() const { return real_pending_.size() + sim_pending_.size(); }

  /// True when nothing is running or queued — the gate a restarting site
  /// waits on before destroying the objects whose callbacks those jobs
  /// would have invoked.
  bool idle() const {
    if (!real_pending_.empty() || !sim_pending_.empty()) return false;
    for (const cpu_state& c : cpus_)
      if (c.busy) return false;
    return true;
  }

  /// Fraction of total CPU capacity used so far (all job classes).
  double utilization() const { return total_busy_.utilization(sim_.now()); }
  /// Fraction of total CPU capacity used by real (protocol) jobs.
  double real_utilization() const { return real_busy_.utilization(sim_.now()); }
  /// Integrated busy nanoseconds (per-CPU normalized).
  double busy_integral() const { return total_busy_.busy_integral(sim_.now()); }
  double real_busy_integral() const {
    return real_busy_.busy_integral(sim_.now());
  }

 private:
  struct pending_job {
    job_id id = 0;  // 0 for real jobs
    bool is_real = false;
    sim_duration remaining = 0;                 // simulated jobs
    std::function<sim_duration()> work;         // real jobs
    std::function<void()> done;
  };

  struct cpu_state {
    bool busy = false;
    bool running_real = false;
    job_id running_id = 0;  // simulated job being served, 0 otherwise
    sim_time end_time = 0;
    sim::event_id completion = 0;
    std::function<void()> done;
  };

  /// Tries to dispatch pending work onto idle CPUs (preempting simulated
  /// jobs for real work when no CPU is idle).
  void dispatch();
  void start_on(unsigned cpu, pending_job job);
  void complete(unsigned cpu);
  void preempt(unsigned cpu);
  int find_idle() const;
  int find_preemptible() const;
  void update_trackers();

  sim::simulator& sim_;
  std::vector<cpu_state> cpus_;
  std::deque<pending_job> real_pending_;
  std::deque<pending_job> sim_pending_;
  std::unordered_set<job_id> cancelled_;
  job_id next_job_id_ = 1;
  util::utilization_tracker total_busy_;
  util::utilization_tracker real_busy_;
};

}  // namespace dbsm::csrt

#endif  // DBSM_CSRT_CPU_HPP
