#include "csrt/cpu.hpp"

#include <algorithm>
#include <utility>

namespace dbsm::csrt {

cpu_pool::cpu_pool(sim::simulator& sim, unsigned n)
    : sim_(sim),
      cpus_(n),
      total_busy_(static_cast<double>(n)),
      real_busy_(static_cast<double>(n)) {
  DBSM_CHECK(n > 0);
}

job_id cpu_pool::submit_simulated(sim_duration d, std::function<void()> done) {
  DBSM_CHECK(d >= 0);
  pending_job job;
  job.id = next_job_id_++;
  job.is_real = false;
  job.remaining = d;
  job.done = std::move(done);
  const job_id id = job.id;
  sim_pending_.push_back(std::move(job));
  dispatch();
  return id;
}

void cpu_pool::submit_real(std::function<sim_duration()> work,
                           std::function<void()> done) {
  DBSM_CHECK(work != nullptr);
  pending_job job;
  job.is_real = true;
  job.work = std::move(work);
  job.done = std::move(done);
  real_pending_.push_back(std::move(job));
  dispatch();
}

bool cpu_pool::cancel_simulated(job_id id) {
  // Queued?
  auto it = std::find_if(sim_pending_.begin(), sim_pending_.end(),
                         [id](const pending_job& j) { return j.id == id; });
  if (it != sim_pending_.end()) {
    sim_pending_.erase(it);
    return true;
  }
  // Running?
  for (unsigned c = 0; c < cpus_.size(); ++c) {
    cpu_state& cpu = cpus_[c];
    if (cpu.busy && !cpu.running_real && cpu.running_id == id) {
      sim_.cancel(cpu.completion);
      cpu = cpu_state{};
      update_trackers();
      dispatch();
      return true;
    }
  }
  return false;
}

int cpu_pool::find_idle() const {
  for (unsigned c = 0; c < cpus_.size(); ++c)
    if (!cpus_[c].busy) return static_cast<int>(c);
  return -1;
}

int cpu_pool::find_preemptible() const {
  for (unsigned c = 0; c < cpus_.size(); ++c)
    if (cpus_[c].busy && !cpus_[c].running_real) return static_cast<int>(c);
  return -1;
}

void cpu_pool::dispatch() {
  // Real jobs first; they may preempt running simulated jobs.
  while (!real_pending_.empty()) {
    int cpu = find_idle();
    if (cpu < 0) cpu = find_preemptible();
    if (cpu < 0) break;
    if (cpus_[cpu].busy) preempt(static_cast<unsigned>(cpu));
    pending_job job = std::move(real_pending_.front());
    real_pending_.pop_front();
    start_on(static_cast<unsigned>(cpu), std::move(job));
  }
  while (!sim_pending_.empty()) {
    const int cpu = find_idle();
    if (cpu < 0) break;
    pending_job job = std::move(sim_pending_.front());
    sim_pending_.pop_front();
    start_on(static_cast<unsigned>(cpu), std::move(job));
  }
}

void cpu_pool::start_on(unsigned cpu, pending_job job) {
  cpu_state& state = cpus_[cpu];
  DBSM_CHECK(!state.busy);
  state.busy = true;
  state.running_real = job.is_real;
  state.running_id = job.is_real ? 0 : job.id;
  state.done = std::move(job.done);
  update_trackers();

  sim_duration d;
  if (job.is_real) {
    // Real code runs now, in zero simulated time; its measured/modeled
    // duration is then charged to this CPU (Fig 1a).
    d = job.work();
    DBSM_CHECK_MSG(d >= 0, "real job returned negative duration " << d);
  } else {
    d = job.remaining;
  }
  state.end_time = sim_.now() + d;
  state.completion = sim_.schedule_at(state.end_time,
                                      [this, cpu] { complete(cpu); });
}

void cpu_pool::complete(unsigned cpu) {
  cpu_state& state = cpus_[cpu];
  DBSM_CHECK(state.busy);
  std::function<void()> done = std::move(state.done);
  state = cpu_state{};
  update_trackers();
  if (done) done();
  dispatch();
}

void cpu_pool::preempt(unsigned cpu) {
  cpu_state& state = cpus_[cpu];
  DBSM_CHECK(state.busy && !state.running_real);
  sim_.cancel(state.completion);
  pending_job job;
  job.id = state.running_id;
  job.is_real = false;
  job.remaining = state.end_time - sim_.now();
  if (job.remaining < 0) job.remaining = 0;
  job.done = std::move(state.done);
  state = cpu_state{};
  // Resumes ahead of other queued simulated work.
  sim_pending_.push_front(std::move(job));
  update_trackers();
}

void cpu_pool::update_trackers() {
  double busy = 0.0, real = 0.0;
  for (const cpu_state& c : cpus_) {
    if (c.busy) {
      busy += 1.0;
      if (c.running_real) real += 1.0;
    }
  }
  total_busy_.set_busy(sim_.now(), busy);
  real_busy_.set_busy(sim_.now(), real);
}

}  // namespace dbsm::csrt
