#include "csrt/sim_env.hpp"

#include <utility>

namespace dbsm::csrt {

namespace {
/// RAII clock-stop: pauses the profiling clock while bridge (simulation
/// runtime) code executes inside a measured real-code job (Fig 1b).
class clock_stop {
 public:
  clock_stop(thread_cpu_profiler& prof, bool active)
      : prof_(prof), active_(active && prof.running()) {
    if (active_) prof_.pause();
  }
  ~clock_stop() {
    if (active_) prof_.resume();
  }
  clock_stop(const clock_stop&) = delete;
  clock_stop& operator=(const clock_stop&) = delete;

 private:
  thread_cpu_profiler& prof_;
  bool active_;
};
}  // namespace

sim_env::sim_env(sim::simulator& sim, cpu_pool& cpu, transport& net,
                 config cfg, util::rng rng)
    : sim_(sim), cpu_(cpu), net_(net), cfg_(std::move(cfg)), rng_(rng) {
  DBSM_CHECK(cfg_.measured_scale > 0.0);
}

sim_time sim_env::effective_now() {
  if (!in_job_) return sim_.now();
  sim_duration measured = 0;
  if (cfg_.measure_real_time) {
    measured = static_cast<sim_duration>(static_cast<double>(
        profiler_.elapsed()) * cfg_.measured_scale * charge_scale_);
  }
  return job_start_ + job_elapsed_ + measured;
}

sim_time sim_env::now() {
  clock_stop guard(profiler_, cfg_.measure_real_time && in_job_);
  return effective_now();
}

void sim_env::post_job(sim_duration pre_charge, std::function<void()> fn) {
  cpu_.submit_real([this, pre_charge, fn = std::move(fn)]() -> sim_duration {
    DBSM_CHECK_MSG(!in_job_, "real-code jobs cannot nest");
    in_job_ = true;
    job_start_ = sim_.now();
    job_elapsed_ = pre_charge;
    if (cfg_.measure_real_time) profiler_.start();
    fn();
    if (cfg_.measure_real_time) {
      job_elapsed_ += static_cast<sim_duration>(static_cast<double>(
          profiler_.stop()) * cfg_.measured_scale * charge_scale_);
    }
    in_job_ = false;
    return job_elapsed_;
  });
}

void sim_env::post(std::function<void()> fn) {
  clock_stop guard(profiler_, cfg_.measure_real_time && in_job_);
  post_job(0, std::move(fn));
}

void sim_env::set_clock_drift(double rate) {
  DBSM_CHECK(rate > -1.0);
  // "Scheduled events are scaled up (i.e. postponed) and elapsed durations
  // measured are scaled down by the specified rate" (§5.3). Measured
  // durations are scaled at use (effective_now / post_job), so re-arming
  // or clearing the drift never compounds.
  timer_scale_ = 1.0 + rate;
  charge_scale_ = 1.0 / (1.0 + rate);
}

timer_id sim_env::set_timer(sim_duration d, std::function<void()> fn) {
  DBSM_CHECK(d >= 0);
  clock_stop guard(profiler_, cfg_.measure_real_time && in_job_);
  sim_duration effective = d;
  if (timer_scale_ != 1.0)
    effective = static_cast<sim_duration>(static_cast<double>(d) *
                                          timer_scale_);
  if (timer_jitter_max_ > 0)
    effective += rng_.uniform_int(0, timer_jitter_max_);
  const sim_time fire_at = effective_now() + effective;
  const timer_id id = next_timer_++;
  // The simulation event hands the callback to the CPU as a real job; the
  // timer can therefore still be delayed by CPU contention, like a real
  // signal handler waiting for the process to be scheduled.
  const sim::event_id ev = sim_.schedule_at(fire_at, [this, id, fn] {
    timers_.erase(id);
    post_job(0, fn);
  });
  timers_.emplace(id, ev);
  return id;
}

void sim_env::cancel_all_timers() {
  for (const auto& [id, ev] : timers_) sim_.cancel(ev);
  timers_.clear();
}

bool sim_env::cancel_timer(timer_id id) {
  clock_stop guard(profiler_, cfg_.measure_real_time && in_job_);
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  sim_.cancel(it->second);
  timers_.erase(it);
  return true;
}

void sim_env::send(node_id to, util::shared_bytes msg) {
  DBSM_CHECK(msg != nullptr);
  clock_stop guard(profiler_, cfg_.measure_real_time && in_job_);
  DBSM_CHECK_MSG(in_job_, "send() outside a real-code job");
  DBSM_CHECK_MSG(msg->size() <= max_datagram(),
                 "datagram too large: " << msg->size());
  job_elapsed_ += cfg_.costs.send_cost(msg->size());
  bytes_sent_ += msg->size();
  ++datagrams_sent_;
  const sim_time when = job_start_ + job_elapsed_;
  sim_.schedule_at(when, [this, to, msg] { net_.send(to, msg); });
}

void sim_env::multicast(util::shared_bytes msg) {
  DBSM_CHECK(msg != nullptr);
  clock_stop guard(profiler_, cfg_.measure_real_time && in_job_);
  DBSM_CHECK_MSG(in_job_, "multicast() outside a real-code job");
  DBSM_CHECK_MSG(msg->size() <= max_datagram(),
                 "datagram too large: " << msg->size());
  const unsigned fanout = net_.multicast_fanout();
  job_elapsed_ += cfg_.costs.send_cost(msg->size()) *
                  static_cast<sim_duration>(fanout);
  bytes_sent_ += msg->size() * fanout;
  datagrams_sent_ += fanout;
  const sim_time when = job_start_ + job_elapsed_;
  sim_.schedule_at(when, [this, msg] { net_.multicast(msg); });
}

void sim_env::charge(sim_duration cost) {
  DBSM_CHECK(cost >= 0);
  DBSM_CHECK_MSG(in_job_, "charge() outside a real-code job");
  if (cfg_.measure_real_time) return;  // measurement already covers it
  job_elapsed_ += charge_scale_ == 1.0
                      ? cost
                      : static_cast<sim_duration>(
                            static_cast<double>(cost) * charge_scale_);
}

void sim_env::set_handler(msg_handler h) { handler_ = std::move(h); }

void sim_env::deliver_datagram(node_id from, util::shared_bytes payload) {
  DBSM_CHECK(payload != nullptr);
  bytes_received_ += payload->size();
  ++datagrams_received_;
  const sim_duration recv_cost = cfg_.costs.recv_cost(payload->size());
  post_job(recv_cost, [this, from, payload] {
    if (handler_) handler_(from, payload);
  });
}

void sim_env::call_out(std::function<void()> fn) {
  clock_stop guard(profiler_, cfg_.measure_real_time && in_job_);
  sim_.schedule_at(effective_now(), std::move(fn));
}

}  // namespace dbsm::csrt
