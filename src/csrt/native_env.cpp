#include "csrt/native_env.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dbsm::csrt {

namespace {
std::int64_t mono_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}
}  // namespace

native_env::native_env(config cfg, util::rng rng)
    : cfg_(std::move(cfg)), rng_(rng) {
  start_mono_ = mono_now_ns();

  sock_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  DBSM_CHECK_MSG(sock_ >= 0, "socket(): " << std::strerror(errno));
  int one = 1;
  ::setsockopt(sock_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr(
      static_cast<std::uint16_t>(cfg_.base_port + cfg_.self));
  const int rc =
      ::bind(sock_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  DBSM_CHECK_MSG(rc == 0, "bind(port=" << cfg_.base_port + cfg_.self
                                       << "): " << std::strerror(errno));

  int pipe_fds[2];
  DBSM_CHECK(::pipe(pipe_fds) == 0);
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  ::fcntl(wake_read_, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_write_, F_SETFL, O_NONBLOCK);
}

native_env::~native_env() {
  if (sock_ >= 0) ::close(sock_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

sim_time native_env::now() { return mono_now_ns() - start_mono_; }

timer_id native_env::set_timer(sim_duration d, std::function<void()> fn) {
  DBSM_CHECK(d >= 0);
  const timer_id id = next_timer_++;
  timer_heap_.push(timer_entry{now() + d, id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

bool native_env::cancel_timer(timer_id id) {
  return timer_fns_.erase(id) > 0;  // heap entry becomes a tombstone
}

void native_env::send_to_port(std::uint16_t port, const util::bytes& payload) {
  sockaddr_in addr = loopback_addr(port);
  const auto n = ::sendto(sock_, payload.data(), payload.size(), 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (n < 0) {
    // UDP is best-effort; a full socket buffer or ICMP-refused peer just
    // looks like message loss to the protocol, which must cope anyway.
    DBSM_LOG(debug, "native_env", "sendto failed: " << std::strerror(errno));
  }
}

void native_env::send(node_id to, util::shared_bytes msg) {
  DBSM_CHECK(msg != nullptr);
  DBSM_CHECK(msg->size() <= cfg_.max_datagram);
  send_to_port(static_cast<std::uint16_t>(cfg_.base_port + to), *msg);
}

void native_env::multicast(util::shared_bytes msg) {
  DBSM_CHECK(msg != nullptr);
  DBSM_CHECK(msg->size() <= cfg_.max_datagram);
  // Self-delivery is the protocol layer's responsibility (matching the
  // simulated LAN's IP-multicast semantics, which exclude the sender).
  for (node_id peer : cfg_.peers) {
    if (peer == cfg_.self) continue;
    send_to_port(static_cast<std::uint16_t>(cfg_.base_port + peer), *msg);
  }
}

void native_env::set_handler(msg_handler h) { handler_ = std::move(h); }

void native_env::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void native_env::wake() {
  const char b = 1;
  [[maybe_unused]] const auto n = ::write(wake_write_, &b, 1);
}

void native_env::stop() {
  stop_.store(true);
  wake();
}

void native_env::drain_posted() {
  std::vector<std::function<void()>> work;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    work.swap(posted_);
  }
  for (auto& fn : work) fn();
}

void native_env::fire_due_timers() {
  const sim_time t = now();
  while (!timer_heap_.empty() && timer_heap_.top().at <= t) {
    const timer_entry e = timer_heap_.top();
    timer_heap_.pop();
    auto it = timer_fns_.find(e.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
  }
}

int native_env::poll_timeout_ms() const {
  // Skip over tombstoned heads so a cancelled timer does not cause a
  // needless early wakeup storm.
  auto heap = timer_heap_;  // cheap: ids only
  while (!heap.empty() && !timer_fns_.count(heap.top().id)) heap.pop();
  if (heap.empty()) return 50;
  const sim_time t = mono_now_ns() - start_mono_;
  const sim_duration d = heap.top().at - t;
  if (d <= 0) return 0;
  const auto ms = d / 1'000'000 + 1;
  return static_cast<int>(ms > 50 ? 50 : ms);
}

void native_env::run() {
  std::vector<std::uint8_t> buf(65536);
  while (!stop_.load()) {
    drain_posted();
    fire_due_timers();
    if (stop_.load()) break;

    pollfd fds[2];
    fds[0] = {sock_, POLLIN, 0};
    fds[1] = {wake_read_, POLLIN, 0};
    const int rc = ::poll(fds, 2, poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      DBSM_CHECK_MSG(false, "poll(): " << std::strerror(errno));
    }
    if (fds[1].revents & POLLIN) {
      char scratch[256];
      while (::read(wake_read_, scratch, sizeof scratch) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) {
      sockaddr_in from{};
      socklen_t from_len = sizeof from;
      const auto n =
          ::recvfrom(sock_, buf.data(), buf.size(), MSG_DONTWAIT,
                     reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n > 0 && handler_) {
        const int port = ntohs(from.sin_port);
        const int node = port - static_cast<int>(cfg_.base_port);
        if (node >= 0) {
          auto payload = std::make_shared<const util::bytes>(
              buf.begin(), buf.begin() + n);
          handler_(static_cast<node_id>(node), payload);
        }
      }
    }
  }
}

}  // namespace dbsm::csrt
