// env bridge onto the native OS (§2.3): the same protocol code that runs
// under the simulation runs here over real UDP sockets and OS timers —
// the paper's second implementation of the abstraction layer (its Java
// version used java.util.Timer, java.lang.System and DatagramSocket).
//
// Each native_env owns one UDP socket bound to 127.0.0.1:(base_port+node)
// and a single-threaded poll loop; peers map node ids to ports. Multicast
// falls back to unicast fan-out, which is also what the paper's protocol
// does outside multicast-capable LANs.
#ifndef DBSM_CSRT_NATIVE_ENV_HPP
#define DBSM_CSRT_NATIVE_ENV_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "csrt/env.hpp"

namespace dbsm::csrt {

class native_env final : public env {
 public:
  struct config {
    node_id self = 0;
    std::vector<node_id> peers;   // includes self
    std::uint16_t base_port = 28500;
    std::size_t max_datagram = 1400;
  };

  native_env(config cfg, util::rng rng);
  ~native_env() override;

  native_env(const native_env&) = delete;
  native_env& operator=(const native_env&) = delete;

  // --- env interface ---
  node_id self() const override { return cfg_.self; }
  const std::vector<node_id>& peers() const override { return cfg_.peers; }
  sim_time now() override;
  timer_id set_timer(sim_duration d, std::function<void()> fn) override;
  bool cancel_timer(timer_id id) override;
  void send(node_id to, util::shared_bytes msg) override;
  void multicast(util::shared_bytes msg) override;
  void charge(sim_duration) override {}  // real execution needs no model
  void set_handler(msg_handler h) override;
  void post(std::function<void()> fn) override;  // thread-safe
  util::rng& random() override { return rng_; }
  std::size_t max_datagram() const override { return cfg_.max_datagram; }

  // --- loop control ---

  /// Runs the event loop on the calling thread until stop() is called.
  void run();

  /// Requests run() to return; callable from any thread.
  void stop();

 private:
  struct timer_entry {
    sim_time at;
    timer_id id;
    bool operator<(const timer_entry& o) const { return at > o.at; }
  };

  void send_to_port(std::uint16_t port, const util::bytes& payload);
  void fire_due_timers();
  int poll_timeout_ms() const;
  void drain_posted();
  void wake();

  config cfg_;
  util::rng rng_;
  msg_handler handler_;

  int sock_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::atomic<bool> stop_{false};
  std::int64_t start_mono_ = 0;

  timer_id next_timer_ = 1;
  std::priority_queue<timer_entry> timer_heap_;
  std::map<timer_id, std::function<void()>> timer_fns_;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace dbsm::csrt

#endif  // DBSM_CSRT_NATIVE_ENV_HPP
