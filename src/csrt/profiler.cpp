#include "csrt/profiler.hpp"

#include <ctime>

#include "util/check.hpp"

namespace dbsm::csrt {

std::int64_t thread_cpu_profiler::thread_cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

void thread_cpu_profiler::start() {
  DBSM_CHECK(!active_);
  active_ = true;
  running_ = true;
  accumulated_ = 0;
  t0_ = thread_cpu_now();
}

void thread_cpu_profiler::pause() {
  DBSM_CHECK(active_);
  if (!running_) return;
  accumulated_ += thread_cpu_now() - t0_;
  running_ = false;
}

void thread_cpu_profiler::resume() {
  DBSM_CHECK(active_);
  if (running_) return;
  running_ = true;
  t0_ = thread_cpu_now();
}

sim_duration thread_cpu_profiler::stop() {
  DBSM_CHECK(active_);
  if (running_) accumulated_ += thread_cpu_now() - t0_;
  active_ = false;
  running_ = false;
  return accumulated_;
}

sim_duration thread_cpu_profiler::elapsed() const {
  if (active_ && running_) return accumulated_ + (thread_cpu_now() - t0_);
  return accumulated_;
}

}  // namespace dbsm::csrt
