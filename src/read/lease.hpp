// Local read-only fast path: epoch leases (ROADMAP item 3, design after
// *Invalidation-Based Protocols for Replicated Datastores*).
//
// A lease is a per-site permission to serve read-only transactions from
// the local committed prefix without a broadcast. It is granted along the
// delivery stream (at every view install, and at cluster start for the
// initial view) and revoked by the events that could make local reads
// unserializable:
//
//   - view change     — the old view's lease dies with the view; the
//                       install itself re-grants (the agreed cut is
//                       uniform by flush consensus).
//   - suspicion       — the local failure detector suspects a member: we
//                       may be on the minority side of a partition, so
//                       the lease is suspended until a completed
//                       stability round (gcs uniform watermark advance)
//                       proves full-membership connectivity again.
//   - exclusion       — this site was voted out; permanent until the
//                       merged view re-grants after recovery.
//
// The lease is the protocol-level invalidation story; the actual safety
// anchor of the fast path is the gcs uniform-delivered watermark (reads
// are served AT the agreed epoch, never ahead of it — see
// read::snapshot_manager and docs/ARCHITECTURE.md).
#ifndef DBSM_READ_LEASE_HPP
#define DBSM_READ_LEASE_HPP

#include <cstdint>

#include "util/types.hpp"

namespace dbsm::read {

/// How the replica terminates read-only transactions.
enum class mode : std::uint8_t {
  off = 0,        // historical path: local certification, no broadcast
  certified = 1,  // all-certified baseline: RO txns broadcast through
                  // total order and certify at their delivery point
  fast = 2,       // lease-guarded snapshot reads; stale lease or
                  // placement miss falls back to the certified path
};

const char* mode_name(mode m);

struct read_config {
  mode path = mode::off;
  /// Modeled CPU cost of a fast-path snapshot read (version lookup on
  /// the local committed prefix — no certification, no broadcast).
  sim_duration fast_read_cost = microseconds(5);
};

enum class revoke_reason : std::uint8_t {
  view_change = 0,
  suspicion = 1,
  exclusion = 2,
};

const char* revoke_reason_name(revoke_reason r);

class lease {
 public:
  /// Grants (or re-grants) the lease for `view_id`. A grant for a newer
  /// view than the one held counts as a view-change revocation of the
  /// old lease.
  void grant(std::uint32_t view_id);

  void revoke(revoke_reason r);

  /// The gcs uniform watermark advanced: a stability round completed with
  /// every view member voting, so a suspicion-suspended lease re-arms
  /// (exclusion stays revoked until the merged view re-grants).
  void on_uniform_advance();

  bool valid() const { return held_ && !suspended_; }
  bool suspended() const { return held_ && suspended_; }
  std::uint32_t view() const { return view_; }
  std::uint64_t revocations() const { return revocations_; }

 private:
  bool held_ = false;
  bool suspended_ = false;  // suspicion episode in progress
  std::uint32_t view_ = 0;
  std::uint64_t revocations_ = 0;
};

}  // namespace dbsm::read

#endif  // DBSM_READ_LEASE_HPP
