// Versioned view of the committed prefix for the local read fast path.
//
// Every totally ordered delivery produces (after certification) a new
// committed-prefix version at this site; the snapshot manager records one
// entry per delivery — (global sequence, certifier position, committed
// log length, last committed txn id) — and answers "what did the
// committed prefix look like at agreed epoch E?" with a floor lookup.
//
// The replica serves fast-path read-only transactions AT the gcs
// uniform-delivered watermark: the newest snapshot whose epoch every
// current member is guaranteed to hold. That prefix can never be rolled
// back within a view (and view installs reset the watermark to the
// agreed cut), so a read served at it is serializable at that snapshot
// point — 1SR requires consistency, not freshness. Entries older than
// the queried watermark are pruned; the floor entry is retained so later
// queries with the same watermark still resolve.
#ifndef DBSM_READ_SNAPSHOT_MANAGER_HPP
#define DBSM_READ_SNAPSHOT_MANAGER_HPP

#include <cstdint>
#include <deque>

namespace dbsm::read {

struct snapshot {
  std::uint64_t epoch = 0;           // global seq of the last delivery in it
  std::uint64_t position = 0;        // certifier position
  std::uint64_t log_len = 0;         // committed log length
  std::uint64_t last_commit_id = 0;  // txn id at log_len-1 (0: empty log)
};

class snapshot_manager {
 public:
  /// Records the committed-prefix version right after the delivery at
  /// `global_seq` was certified (and, on commit, applied).
  void note_delivery(std::uint64_t global_seq, std::uint64_t position,
                     std::uint64_t log_len, std::uint64_t last_commit_id) {
    ring_.push_back({global_seq, position, log_len, last_commit_id});
  }

  /// Newest snapshot with epoch <= watermark (floor lookup); prunes what
  /// it steps over. Before any delivery this is the empty-log snapshot.
  snapshot at(std::uint64_t watermark) {
    while (!ring_.empty() && ring_.front().epoch <= watermark) {
      floor_ = ring_.front();
      ring_.pop_front();
    }
    return floor_;
  }

  /// Rebase after a state-transfer install or log rollback: the recorded
  /// history no longer describes the local log.
  void reset(const snapshot& base) {
    ring_.clear();
    floor_ = base;
  }

  std::size_t entries() const { return ring_.size(); }
  const snapshot& floor() const { return floor_; }

 private:
  std::deque<snapshot> ring_;
  snapshot floor_{};
};

}  // namespace dbsm::read

#endif  // DBSM_READ_SNAPSHOT_MANAGER_HPP
