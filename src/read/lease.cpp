#include "read/lease.hpp"

namespace dbsm::read {

const char* mode_name(mode m) {
  switch (m) {
    case mode::off:
      return "off";
    case mode::certified:
      return "certified";
    case mode::fast:
      return "fast";
  }
  return "?";
}

const char* revoke_reason_name(revoke_reason r) {
  switch (r) {
    case revoke_reason::view_change:
      return "view_change";
    case revoke_reason::suspicion:
      return "suspicion";
    case revoke_reason::exclusion:
      return "exclusion";
  }
  return "?";
}

void lease::grant(std::uint32_t view_id) {
  if (held_ && view_ != 0 && view_id > view_) ++revocations_;
  held_ = true;
  suspended_ = false;
  view_ = view_id;
}

void lease::revoke(revoke_reason r) {
  switch (r) {
    case revoke_reason::view_change:
      if (held_) ++revocations_;
      held_ = false;
      break;
    case revoke_reason::suspicion:
      // The detector re-fires every heartbeat period while the suspect
      // stays silent; count one revocation per suspension episode.
      if (held_ && !suspended_) {
        suspended_ = true;
        ++revocations_;
      }
      break;
    case revoke_reason::exclusion:
      if (held_) ++revocations_;
      held_ = false;
      suspended_ = false;
      break;
  }
}

void lease::on_uniform_advance() {
  // A completed stability round needs a vote from every view member —
  // proof the suspected member is reachable again (or a view change
  // removed it, which re-granted the lease anyway).
  suspended_ = false;
}

}  // namespace dbsm::read
