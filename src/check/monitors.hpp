// The standard invariant monitors (see check/check.hpp for the contract).
#ifndef DBSM_CHECK_MONITORS_HPP
#define DBSM_CHECK_MONITORS_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cert/reference_certifier.hpp"
#include "check/check.hpp"
#include "place/placement.hpp"

namespace dbsm::check {

/// (1) Agreed prefix: the committed sequence is a single global order and
/// every site's commit log is a prefix of it. The first site to commit at
/// log position i defines the agreed transaction for i; every later commit
/// at i (any site) must carry the same transaction id, and commits must
/// extend a site's log by exactly one (no gaps). Recovery state transfers
/// (log resets) are checked element-wise against the agreed order too.
///
/// Delivery is non-uniform, so a site the latest view excluded may hold
/// commits past that view's cut which the surviving majority never saw
/// (e.g. a partitioned-off sequencer self-delivering). Those positions are
/// not agreed: when the excluding view installs, entries past its cut
/// committed only by now-excluded sites are rolled back (the survivors
/// redefine them), and further commits by an excluded site past the cut
/// are left to the primary_partition fence and to the rejoin state
/// transfer, which replaces the orphan branch and is checked here.
class agreed_prefix_monitor final : public monitor {
 public:
  std::string_view name() const override { return "agreed_prefix"; }
  void on_decision(const decision_event& e, sink& s) override;
  void on_view(const view_event& e, sink& s) override;
  void on_log_reset(const log_reset_event& e, sink& s) override;

 private:
  bool is_member(unsigned site) const;
  std::uint64_t member_mask() const;
  struct entry {
    std::uint64_t txn_id = 0;
    std::uint64_t committers = 0;  // bitmask of sites that committed it
  };
  std::vector<entry> agreed_;    // agreed_[i] = txn at commit-log pos i
  std::vector<node_id> members_; // latest primary view (empty: all sites)
  std::uint32_t top_id_ = 1;     // highest view id installed anywhere
  std::uint64_t commit_cut_ = 0; // commit-log length at that view's cut
  std::map<unsigned, std::uint64_t> log_len_;  // site -> last log length
};

/// (2) View synchrony: all sites that install view v agree on v's
/// membership and install it at the same delivery cut (the stack delivers
/// the agreed backlog before installing, so the delivered count at install
/// is the cut). Per site, installed view ids are strictly increasing.
class view_synchrony_monitor final : public monitor {
 public:
  explicit view_synchrony_monitor(unsigned sites) : sites_(sites) {}
  std::string_view name() const override { return "view_synchrony"; }
  void on_view(const view_event& e, sink& s) override;

 private:
  struct install {
    std::vector<node_id> members;
    std::uint64_t delivered = 0;
    unsigned first_site = 0;
  };
  unsigned sites_;
  std::map<std::uint32_t, install> views_;   // view id -> first install seen
  std::map<unsigned, std::uint32_t> last_;   // site -> last installed id
};

/// (3) Primary partition: at most one partition makes progress. Two
/// checks: (a) the view chain rule — a new view must retain a strict
/// majority of the members of the installing site's previous view, so a
/// minority partition can never legitimately install a view of its own;
/// (b) the exclusion fence — once a site discovers that a view excluded
/// it, it must not commit anything further (before the discovery it may
/// legitimately still be riding the group's in-flight stream on a slow
/// link: in an asynchronous system a node cannot act on an install it has
/// not yet received).
class primary_partition_monitor final : public monitor {
 public:
  explicit primary_partition_monitor(unsigned sites);
  std::string_view name() const override { return "primary_partition"; }
  void on_view(const view_event& e, sink& s) override;
  void on_excluded(const excluded_event& e, sink& s) override;
  void on_decision(const decision_event& e, sink& s) override;
  void on_recovery_start(const recovery_start_event& e, sink& s) override;

 private:
  struct site_view {
    std::uint32_t id = 1;
    std::vector<node_id> members;
  };
  std::vector<site_view> cur_;  // per-site currently installed view
  std::uint32_t top_id_ = 1;    // highest-id view installed anywhere
  std::map<unsigned, sim_time> excluded_;  // site -> discovery time
};

/// (4) 1SR certification oracle: every site's commit/abort decision is
/// cross-checked against cert::reference_certifier (the paper's merge-scan
/// procedure). The first site to deliver total-order position n feeds the
/// oracle; all sites' decisions at n — including recovery replays — must
/// match the oracle's verdict and transaction identity.
///
/// Mirrors the agreed-prefix branch rule: positions past an excluding
/// view's cut decided only by the excluded sites are rolled back when the
/// view installs (the oracle is rebuilt by replaying the kept prefix, so
/// the discarded branch's write sets stop polluting its history), and an
/// excluded site's further decisions past the cut are ignored here.
class cert_oracle_monitor final : public monitor {
 public:
  explicit cert_oracle_monitor(const cert::cert_config& cfg)
      : cfg_(cfg), ref_(std::in_place, cfg) {}
  std::string_view name() const override { return "cert_oracle"; }
  void on_decision(const decision_event& e, sink& s) override;
  void on_view(const view_event& e, sink& s) override;

 private:
  bool is_member(unsigned site) const;
  std::uint64_t member_mask() const;
  struct verdict {
    cert::txn_payload txn;  // copy: replayed when the branch rolls back
    bool commit = false;
    std::uint64_t deciders = 0;  // bitmask of sites seen deciding it
  };
  cert::cert_config cfg_;
  std::optional<cert::reference_certifier> ref_;
  std::vector<verdict> verdicts_;  // verdicts_[n - 1] = oracle at position n
  std::vector<node_id> members_;   // latest primary view (empty: all sites)
  std::uint32_t top_id_ = 1;
  std::uint64_t cut_ = 0;  // delivered count at that view's cut
};

/// (5) Recovery convergence: a recovery, once started, produces a rejoin
/// within the configured deadline, and at the instant the rejoined site is
/// live its commit log trails the longest log observed anywhere by at most
/// rejoin_max_lag transactions (the donor's exact state up to a bounded
/// in-flight window; exactness of the content is monitor 1's job).
class recovery_convergence_monitor final : public monitor {
 public:
  explicit recovery_convergence_monitor(const config& cfg)
      : max_lag_(cfg.rejoin_max_lag), deadline_(cfg.rejoin_deadline) {}
  std::string_view name() const override { return "recovery_convergence"; }
  void on_decision(const decision_event& e, sink& s) override;
  void on_log_reset(const log_reset_event& e, sink& s) override;
  void on_recovery_start(const recovery_start_event& e, sink& s) override;
  void on_rejoin(const rejoin_event& e, sink& s) override;
  void on_run_end(sim_time now, sink& s) override;

 private:
  std::uint64_t max_lag_;
  sim_duration deadline_;
  std::uint64_t max_log_ = 0;           // longest commit log seen anywhere
  std::map<unsigned, sim_time> pending_;  // site -> recovery start time
};

/// (6) Placement consistency (partial replication): every committed update
/// is durable at exactly its replica set. Per site, each commit decision
/// must be followed — before the site's next decision — by exactly one
/// apply event for the same transaction (the replica fires them
/// back-to-back inside the delivery job), and the reported durable slice
/// must equal the placement's independent recomputation: nothing the site
/// replicates is missing, nothing outside its assignment is stored. Abort
/// decisions must produce no apply. Recovery state transfers reset the
/// pairing for the rebuilt site.
class placement_monitor final : public monitor {
 public:
  explicit placement_monitor(place::placement p) : placement_(p) {}
  std::string_view name() const override { return "placement"; }
  void on_decision(const decision_event& e, sink& s) override;
  void on_apply(const apply_event& e, sink& s) override;
  void on_log_reset(const log_reset_event& e, sink& s) override;
  void on_run_end(sim_time now, sink& s) override;

 private:
  struct pending_apply {
    std::uint64_t global_seq = 0;
    std::uint64_t txn_id = 0;
  };
  place::placement placement_;
  std::map<unsigned, pending_apply> pending_;  // site -> unapplied commit
  std::vector<db::item_id> expected_;          // recomputation scratch
};

/// (7) Read-snapshot 1SR (local read fast path): every fast-path read's
/// claimed snapshot — (commit-log length, last committed txn id) — must be
/// a prefix of the reference agreed order, both at the instant of the read
/// and retroactively: the monitor keeps its own copy of the agreed order
/// (same branch/rollback rules as the agreed-prefix monitor, silently),
/// and re-validates each site's strongest outstanding claim at every later
/// view install and at run end, so a read served off an orphan branch that
/// is only rolled back later is still caught. Claimed prefixes must also
/// be monotone per site (a site may never serve an older snapshot than one
/// it already served — reads would travel back in time).
class read_snapshot_monitor final : public monitor {
 public:
  std::string_view name() const override { return "read_snapshot"; }
  void on_decision(const decision_event& e, sink& s) override;
  void on_view(const view_event& e, sink& s) override;
  void on_read(const read_event& e, sink& s) override;
  void on_run_end(sim_time now, sink& s) override;

 private:
  struct entry {
    std::uint64_t txn_id = 0;
    std::uint64_t committers = 0;
  };
  struct claim {
    std::uint64_t log_len = 0;
    std::uint64_t last_commit_id = 0;
    sim_time at = 0;
  };
  /// Claim vs the agreed order; empty string when consistent.
  std::string check_claim(const claim& c) const;

  std::vector<entry> agreed_;
  std::vector<node_id> members_;  // latest primary view (empty: all sites)
  std::uint32_t top_id_ = 1;
  std::uint64_t commit_cut_ = 0;
  std::map<unsigned, std::uint64_t> log_len_;  // site -> last log length
  /// Per site, the strongest (longest-prefix) claim since the last
  /// revalidation — monotonicity makes it subsume the weaker ones.
  std::map<unsigned, claim> claims_;
};

}  // namespace dbsm::check

#endif  // DBSM_CHECK_MONITORS_HPP
