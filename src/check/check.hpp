// Online invariant monitors (the step past the paper's §5.3 off-line log
// diff, after *Specification and Runtime Checking of Derecho*): protocol
// invariants are encoded as passive observers of the replica/GCS event
// stream and fire AT the violating event — with the offending site, sim
// time, and evidence in hand — instead of thousands of simulated seconds
// later when the run's logs are diffed.
//
// The seam is strictly observational: monitors are fed from inside the
// delivery/install jobs but never schedule simulator events, charge CPU,
// or consume randomness, so a run with monitors on is bit-identical to the
// same run with monitors off (the determinism anchors hold either way).
//
// The standard suite (check::standard_checker) implements:
//   agreed_prefix       — every site's commit log is a prefix of the global
//                         agreed order, checked at each install;
//   view_synchrony      — all sites installing view v agree on its
//                         membership and on the delivery cut;
//   primary_partition   — views chain through majorities and no site
//                         commits after learning a view excluded it;
//   cert_oracle (1SR)   — every certification decision cross-checked
//                         against the reference merge-scan certifier;
//   recovery_convergence— a rejoined site carries the donor's exact state
//                         within a bounded lag, and started recoveries
//                         finish within a deadline.
// Concrete monitors live in check/monitors.hpp.
#ifndef DBSM_CHECK_CHECK_HPP
#define DBSM_CHECK_CHECK_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cert/certifier.hpp"
#include "cert/txn_codec.hpp"
#include "gcs/view.hpp"
#include "place/placement.hpp"
#include "util/types.hpp"

namespace dbsm::check {

/// One invariant violation, raised online at the offending event.
struct violation {
  std::string invariant;  // the raising monitor's name
  unsigned site = 0;      // the site at which the event was observed
  sim_time at = 0;        // simulated time of the offending event
  std::string evidence;   // human-readable description of the event
};

struct config {
  /// Master switch; off, the experiment neither builds a checker nor
  /// touches the observer seam (behavior identical to pre-check builds).
  bool enabled = true;
  /// Stop the simulation at the first violation so the run ends with the
  /// offending event on top instead of thousands of events later.
  bool halt_on_violation = true;
  /// Cross-check certification decisions against the reference merge-scan
  /// oracle (monitor 4). The oracle scans only the concurrency window per
  /// decision, so it is cheap at experiment scale; disable for huge runs.
  bool cert_oracle = true;
  /// A rejoined site may trail the longest observed commit log by at most
  /// this many transactions at the instant its merged view installs.
  std::uint64_t rejoin_max_lag = 50;
  /// A recovery that has not produced a rejoin after this long has wedged
  /// (flagged at run end; recoveries cut short by the run ending are not).
  sim_duration rejoin_deadline = seconds(30);
};

struct report {
  bool ok = true;
  std::vector<violation> violations;
  // Coverage counters (how much the monitors actually saw).
  std::uint64_t decisions_checked = 0;
  std::uint64_t applies_checked = 0;
  std::uint64_t views_checked = 0;
  std::uint64_t log_resets_checked = 0;
  std::uint64_t rejoins_checked = 0;
  std::uint64_t reads_checked = 0;
  /// One line: "ok (...)" or the first violation.
  std::string summary() const;
};

// --- the observed event stream ---------------------------------------

/// A certification decision at one site: global total-order position,
/// the delivered payload, the verdict, and the site's commit-log length
/// after the decision was applied.
struct decision_event {
  unsigned site = 0;
  std::uint64_t global_seq = 0;
  const cert::txn_payload* txn = nullptr;
  bool commit = false;
  std::uint64_t log_len = 0;
  sim_time at = 0;
};

/// A committed update folded into one site's store, fired right after the
/// corresponding decision_event at that site: the write-set slice the site
/// makes durable under its placement, and its cumulative durable bytes.
struct apply_event {
  unsigned site = 0;
  std::uint64_t global_seq = 0;
  const cert::txn_payload* txn = nullptr;
  const std::vector<db::item_id>* durable_slice = nullptr;
  std::uint64_t durable_bytes = 0;
  sim_time at = 0;
};

/// A view install at one site, with the site's delivered count at the
/// instant of the install (the view-synchrony cut).
struct view_event {
  unsigned site = 0;
  gcs::view v;
  std::uint64_t delivered = 0;
  sim_time at = 0;
};

/// A site's commit log was replaced wholesale (recovery state transfer).
struct log_reset_event {
  unsigned site = 0;
  const std::vector<std::uint64_t>* log = nullptr;
  sim_time at = 0;
};

/// A site discovered that a view install excluded it. From this instant
/// it must not deliver (and hence not commit) anything further until it
/// rejoins through recovery.
struct excluded_event {
  unsigned site = 0;
  sim_time at = 0;
};

struct recovery_start_event {
  unsigned site = 0;
  sim_time at = 0;
};

/// A recovered site is live in the merged view with `log_len` committed.
struct rejoin_event {
  unsigned site = 0;
  std::uint64_t log_len = 0;
  sim_time at = 0;
};

/// A read-only transaction terminated on the read path (read/). For a
/// fast-path read the event claims the committed-prefix snapshot it was
/// served at — (agreed epoch, commit-log length, last committed txn id) —
/// which the read_snapshot monitor cross-checks against the reference
/// agreed order. Fallback reads (fast == false) terminate through the
/// certified path and carry no claim.
struct read_event {
  unsigned site = 0;
  bool fast = false;
  std::uint64_t epoch = 0;
  std::uint64_t log_len = 0;
  std::uint64_t last_commit_id = 0;
  sim_time at = 0;
};

// --- the monitor contract --------------------------------------------

/// Violation sink handed to every monitor callback.
class sink {
 public:
  virtual ~sink() = default;
  virtual void raise(violation v) = 0;
};

/// One online invariant monitor. Implementations override the events they
/// care about, keep their own state, and raise() on a violation. Monitors
/// must be passive: never mutate the observed objects, schedule simulator
/// work, or consume shared randomness.
class monitor {
 public:
  virtual ~monitor() = default;
  virtual std::string_view name() const = 0;
  virtual void on_decision(const decision_event&, sink&) {}
  virtual void on_apply(const apply_event&, sink&) {}
  virtual void on_view(const view_event&, sink&) {}
  virtual void on_excluded(const excluded_event&, sink&) {}
  virtual void on_log_reset(const log_reset_event&, sink&) {}
  virtual void on_recovery_start(const recovery_start_event&, sink&) {}
  virtual void on_rejoin(const rejoin_event&, sink&) {}
  virtual void on_read(const read_event&, sink&) {}
  /// Fired once when the run stops (for deadline-style invariants).
  virtual void on_run_end(sim_time /*now*/, sink&) {}
};

// --- the checker -------------------------------------------------------

/// Dispatches the event stream to registered monitors and collects their
/// violations; on the first one it fires the halt hook (when configured)
/// so the simulation stops with the offending event in hand.
class checker final : public sink {
 public:
  explicit checker(config cfg);

  /// The standard monitor suite for a `sites`-site system whose replicas
  /// certify under `cert_cfg` (the oracle must match the window). When
  /// `placement` is partial, the suite additionally includes the
  /// placement-consistency monitor ("every committed update is durable at
  /// exactly its replica set"); a full placement keeps the historical
  /// five-monitor set, so default runs observe the identical event flow.
  static std::unique_ptr<checker> standard(
      config cfg, unsigned sites, const cert::cert_config& cert_cfg,
      const place::placement& placement = place::placement());

  void add(std::unique_ptr<monitor> m);

  /// Called on the first violation (typically sim.stop()).
  void set_halt(std::function<void()> halt) { halt_ = std::move(halt); }

  // Event entry points (wired to the cluster's observer seam).
  void decision(const decision_event& e);
  void applied(const apply_event& e);
  void view_installed(const view_event& e);
  void excluded(const excluded_event& e);
  void log_reset(const log_reset_event& e);
  void recovery_started(const recovery_start_event& e);
  void rejoined(const rejoin_event& e);
  void read(const read_event& e);
  void run_end(sim_time now);

  void raise(violation v) override;

  bool ok() const { return report_.ok; }
  const report& get_report() const { return report_; }

 private:
  config cfg_;
  std::vector<std::unique_ptr<monitor>> monitors_;
  std::function<void()> halt_;
  report report_;
  bool halted_ = false;
};

}  // namespace dbsm::check

#endif  // DBSM_CHECK_CHECK_HPP
