#include "check/check.hpp"

#include "check/monitors.hpp"

namespace dbsm::check {

std::string report::summary() const {
  if (ok) {
    return "ok (" + std::to_string(decisions_checked) + " decisions, " +
           std::to_string(views_checked) + " view installs, " +
           std::to_string(log_resets_checked) + " state transfers, " +
           std::to_string(rejoins_checked) + " rejoins checked)";
  }
  const violation& v = violations.front();
  return v.invariant + " violated at site " + std::to_string(v.site) + ", t=" +
         std::to_string(to_seconds(v.at)) + "s: " + v.evidence +
         (violations.size() > 1
              ? " (+" + std::to_string(violations.size() - 1) + " more)"
              : "");
}

checker::checker(config cfg) : cfg_(cfg) {}

std::unique_ptr<checker> checker::standard(config cfg, unsigned sites,
                                           const cert::cert_config& cert_cfg,
                                           const place::placement& placement) {
  auto c = std::make_unique<checker>(cfg);
  c->add(std::make_unique<agreed_prefix_monitor>());
  c->add(std::make_unique<view_synchrony_monitor>(sites));
  c->add(std::make_unique<primary_partition_monitor>(sites));
  if (cfg.cert_oracle) {
    c->add(std::make_unique<cert_oracle_monitor>(cert_cfg));
  }
  c->add(std::make_unique<recovery_convergence_monitor>(cfg));
  // Only partial placements add the placement-consistency monitor: full
  // runs keep the historical five-monitor set (and synthetic event-stream
  // tests that never emit apply events stay valid).
  if (!placement.is_full()) {
    c->add(std::make_unique<placement_monitor>(placement));
  }
  // The read-snapshot monitor is always registered: it sees zero read
  // events unless the fast read path is configured, and its decision/view
  // bookkeeping is silent.
  c->add(std::make_unique<read_snapshot_monitor>());
  return c;
}

void checker::add(std::unique_ptr<monitor> m) {
  monitors_.push_back(std::move(m));
}

void checker::decision(const decision_event& e) {
  if (halted_) return;
  ++report_.decisions_checked;
  for (auto& m : monitors_) m->on_decision(e, *this);
}

void checker::applied(const apply_event& e) {
  if (halted_) return;
  ++report_.applies_checked;
  for (auto& m : monitors_) m->on_apply(e, *this);
}

void checker::view_installed(const view_event& e) {
  if (halted_) return;
  ++report_.views_checked;
  for (auto& m : monitors_) m->on_view(e, *this);
}

void checker::excluded(const excluded_event& e) {
  if (halted_) return;
  for (auto& m : monitors_) m->on_excluded(e, *this);
}

void checker::log_reset(const log_reset_event& e) {
  if (halted_) return;
  ++report_.log_resets_checked;
  for (auto& m : monitors_) m->on_log_reset(e, *this);
}

void checker::recovery_started(const recovery_start_event& e) {
  if (halted_) return;
  for (auto& m : monitors_) m->on_recovery_start(e, *this);
}

void checker::rejoined(const rejoin_event& e) {
  if (halted_) return;
  ++report_.rejoins_checked;
  for (auto& m : monitors_) m->on_rejoin(e, *this);
}

void checker::read(const read_event& e) {
  if (halted_) return;
  ++report_.reads_checked;
  for (auto& m : monitors_) m->on_read(e, *this);
}

void checker::run_end(sim_time now) {
  if (halted_) return;
  for (auto& m : monitors_) m->on_run_end(now, *this);
}

void checker::raise(violation v) {
  report_.ok = false;
  report_.violations.push_back(std::move(v));
  if (cfg_.halt_on_violation && !halted_) {
    halted_ = true;
    if (halt_) halt_();
  }
}

}  // namespace dbsm::check
