#include "check/monitors.hpp"

#include <algorithm>
#include <string>

namespace dbsm::check {
namespace {

std::string view_str(const std::vector<node_id>& members, std::uint32_t id) {
  std::string s = "view " + std::to_string(id) + " {";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i != 0) s += ",";
    s += std::to_string(members[i]);
  }
  s += "}";
  return s;
}

std::vector<node_id> all_members(unsigned sites) {
  std::vector<node_id> m(sites);
  for (unsigned i = 0; i < sites; ++i) m[i] = i;
  return m;
}

std::uint64_t site_bit(unsigned site) {
  return site < 64 ? std::uint64_t{1} << site : 0;
}

std::uint64_t mask_of(const std::vector<node_id>& members) {
  if (members.empty()) return ~std::uint64_t{0};  // initial view: everyone
  std::uint64_t m = 0;
  for (node_id n : members) m |= site_bit(n);
  return m;
}

bool member_of(const std::vector<node_id>& members, unsigned site) {
  return members.empty() ||
         std::find(members.begin(), members.end(), site) != members.end();
}

}  // namespace

// --- (1) agreed prefix -------------------------------------------------

bool agreed_prefix_monitor::is_member(unsigned site) const {
  return member_of(members_, site);
}

std::uint64_t agreed_prefix_monitor::member_mask() const {
  return mask_of(members_);
}

void agreed_prefix_monitor::on_decision(const decision_event& e, sink& s) {
  if (!e.commit) return;
  log_len_[e.site] = e.log_len;
  const std::uint64_t idx = e.log_len - 1;  // position this commit filled
  if (!is_member(e.site) && idx >= commit_cut_) {
    // Non-uniform delivery on a doomed branch: the latest primary view
    // excluded this site (whether or not it has learned that yet), so
    // nothing it commits past that view's cut joins the agreed order. The
    // branch is discarded wholesale when the site rejoins — the state
    // transfer reset below re-checks it against the agreed order — and a
    // commit after the site learns of its exclusion is the
    // primary_partition fence's violation, not ours.
    return;
  }
  if (idx < agreed_.size()) {
    entry& en = agreed_[idx];
    if (en.txn_id != e.txn->id) {
      s.raise({std::string(name()), e.site, e.at,
               "commit log position " + std::to_string(idx) + " holds txn " +
                   std::to_string(e.txn->id) + " but the agreed order has " +
                   std::to_string(en.txn_id)});
      return;
    }
    en.committers |= site_bit(e.site);
    return;
  }
  if (idx > agreed_.size()) {
    s.raise({std::string(name()), e.site, e.at,
             "commit log jumped to length " + std::to_string(e.log_len) +
                 " past the agreed order (length " +
                 std::to_string(agreed_.size()) + ")"});
    return;
  }
  agreed_.push_back(entry{e.txn->id, site_bit(e.site)});
}

void agreed_prefix_monitor::on_view(const view_event& e, sink&) {
  if (e.v.id <= top_id_) return;
  top_id_ = e.v.id;
  members_ = e.v.members;
  // The installer delivered exactly the agreed backlog before installing,
  // so its commit-log length right now is the cut in commit positions.
  const auto it = log_len_.find(e.site);
  commit_cut_ = it != log_len_.end() ? it->second : 0;
  // Roll back the excluded branch: entries past the cut committed only by
  // sites outside the new view were non-uniform deliveries the surviving
  // majority never saw; the survivors now redefine those positions.
  const std::uint64_t mask = member_mask();
  for (std::size_t i = commit_cut_; i < agreed_.size(); ++i) {
    if ((agreed_[i].committers & mask) == 0) {
      agreed_.resize(i);
      break;
    }
  }
}

void agreed_prefix_monitor::on_log_reset(const log_reset_event& e, sink& s) {
  const auto& log = *e.log;
  log_len_[e.site] = log.size();
  if (log.size() > agreed_.size()) {
    s.raise({std::string(name()), e.site, e.at,
             "transferred log (length " + std::to_string(log.size()) +
                 ") is longer than the agreed order (length " +
                 std::to_string(agreed_.size()) + ")"});
    return;
  }
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i] != agreed_[i].txn_id) {
      s.raise({std::string(name()), e.site, e.at,
               "transferred log diverges at position " + std::to_string(i) +
                   ": txn " + std::to_string(log[i]) + " vs agreed " +
                   std::to_string(agreed_[i].txn_id)});
      return;
    }
  }
}

// --- (2) view synchrony ------------------------------------------------

void view_synchrony_monitor::on_view(const view_event& e, sink& s) {
  auto [last_it, fresh] = last_.try_emplace(e.site, 0);
  if (!fresh && e.v.id <= last_it->second) {
    s.raise({std::string(name()), e.site, e.at,
             "installed " + view_str(e.v.members, e.v.id) +
                 " after view " + std::to_string(last_it->second) +
                 " (view ids must increase)"});
    return;
  }
  last_it->second = e.v.id;

  auto [it, first] = views_.try_emplace(
      e.v.id, install{e.v.members, e.delivered, e.site});
  if (first) return;
  if (it->second.members != e.v.members) {
    s.raise({std::string(name()), e.site, e.at,
             "installed " + view_str(e.v.members, e.v.id) +
                 " but site " + std::to_string(it->second.first_site) +
                 " installed " +
                 view_str(it->second.members, e.v.id)});
    return;
  }
  if (it->second.delivered != e.delivered) {
    s.raise({std::string(name()), e.site, e.at,
             "installed view " + std::to_string(e.v.id) + " at delivery cut " +
                 std::to_string(e.delivered) + " but site " +
                 std::to_string(it->second.first_site) +
                 " installed it at cut " +
                 std::to_string(it->second.delivered)});
  }
}

// --- (3) primary partition --------------------------------------------

primary_partition_monitor::primary_partition_monitor(unsigned sites)
    : cur_(sites, site_view{1, all_members(sites)}) {}

void primary_partition_monitor::on_view(const view_event& e, sink& s) {
  if (e.site >= cur_.size()) return;
  const site_view& prev = cur_[e.site];
  const std::size_t survivors = static_cast<std::size_t>(std::count_if(
      e.v.members.begin(), e.v.members.end(), [&](node_id m) {
        return std::binary_search(prev.members.begin(), prev.members.end(), m);
      }));
  if (survivors * 2 <= prev.members.size()) {
    s.raise({std::string(name()), e.site, e.at,
             "installed " + view_str(e.v.members, e.v.id) + " retaining only " +
                 std::to_string(survivors) + " of the " +
                 std::to_string(prev.members.size()) + " members of " +
                 view_str(prev.members, prev.id) +
                 " (not a strict majority: a minority partition made "
                 "progress)"});
  }
  cur_[e.site] = site_view{e.v.id, e.v.members};
  excluded_.erase(e.site);  // installing a view means it is a member again
  if (e.v.id > top_id_) top_id_ = e.v.id;
}

void primary_partition_monitor::on_excluded(const excluded_event& e, sink&) {
  excluded_.try_emplace(e.site, e.at);
}

void primary_partition_monitor::on_recovery_start(
    const recovery_start_event& e, sink&) {
  // A recovering site replays the primary partition's agreed stream
  // (state-transfer forwards) before the merged view installs, so its
  // commits are the majority's progress, not a second partition's — and
  // the agreed-prefix and certification-oracle monitors still check each
  // replayed commit element-wise. Lift the fence at the hand-off.
  excluded_.erase(e.site);
}

void primary_partition_monitor::on_decision(const decision_event& e, sink& s) {
  if (!e.commit || e.site >= cur_.size()) return;
  // The exclusion fence. Before a site *learns* of its exclusion it may
  // legitimately keep committing the group's in-flight stream (a slow
  // link delays the install notice along with everything else, and the
  // agreed-prefix monitor still polices that content). Afterwards,
  // delivery must have halted — any further commit is a second partition
  // making progress.
  const auto it = excluded_.find(e.site);
  if (it != excluded_.end()) {
    s.raise({std::string(name()), e.site, e.at,
             "site committed txn " + std::to_string(e.txn->id) +
                 " at position " + std::to_string(e.global_seq) +
                 " after learning at " + std::to_string(to_seconds(it->second)) +
                 "s that view " + std::to_string(top_id_) + " excluded it"});
  }
}

// --- (4) 1SR certification oracle --------------------------------------

bool cert_oracle_monitor::is_member(unsigned site) const {
  return member_of(members_, site);
}

std::uint64_t cert_oracle_monitor::member_mask() const {
  return mask_of(members_);
}

void cert_oracle_monitor::on_decision(const decision_event& e, sink& s) {
  const std::uint64_t n = e.global_seq;
  if (n == 0) return;
  const std::uint64_t idx = n - 1;
  if (!is_member(e.site) && idx >= cut_) {
    // Excluded branch past the cut: not part of the agreed order (see the
    // agreed-prefix monitor's branch rule), so the oracle ignores it.
    return;
  }
  if (idx == verdicts_.size()) {
    // First site to reach position n: feed the oracle.
    const bool commit =
        ref_->certify_update(e.txn->begin_pos, e.txn->read_set,
                             e.txn->write_set);
    verdicts_.push_back(verdict{*e.txn, commit, 0});
  } else if (idx > verdicts_.size()) {
    s.raise({std::string(name()), e.site, e.at,
             "decision at position " + std::to_string(n) +
                 " arrived before any site decided position " +
                 std::to_string(verdicts_.size() + 1)});
    return;
  }
  verdict& v = verdicts_[idx];
  if (v.txn.id != e.txn->id) {
    s.raise({std::string(name()), e.site, e.at,
             "position " + std::to_string(n) + " delivered txn " +
                 std::to_string(e.txn->id) + " but the first decider saw txn " +
                 std::to_string(v.txn.id)});
    return;
  }
  if (v.commit != e.commit) {
    s.raise({std::string(name()), e.site, e.at,
             "txn " + std::to_string(e.txn->id) + " at position " +
                 std::to_string(n) + " decided " +
                 (e.commit ? "commit" : "abort") +
                 " but the reference certifier says " +
                 (v.commit ? "commit" : "abort")});
    return;
  }
  v.deciders |= site_bit(e.site);
}

void cert_oracle_monitor::on_view(const view_event& e, sink&) {
  if (e.v.id <= top_id_) return;
  top_id_ = e.v.id;
  members_ = e.v.members;
  cut_ = e.delivered;
  const std::uint64_t mask = member_mask();
  for (std::size_t i = cut_; i < verdicts_.size(); ++i) {
    if ((verdicts_[i].deciders & mask) == 0) {
      // Positions past the cut decided only by now-excluded sites: roll
      // them back and rebuild the oracle by replaying the kept prefix, so
      // the discarded branch's write sets stop polluting its history. The
      // replay reproduces the original verdicts (a verdict depends only
      // on the positions before it).
      verdicts_.resize(i);
      ref_.emplace(cfg_);
      for (verdict& v : verdicts_) {
        v.commit = ref_->certify_update(v.txn.begin_pos, v.txn.read_set,
                                        v.txn.write_set);
      }
      break;
    }
  }
}

// --- (5) recovery convergence ------------------------------------------

void recovery_convergence_monitor::on_decision(const decision_event& e,
                                               sink&) {
  if (e.commit && e.log_len > max_log_) max_log_ = e.log_len;
}

void recovery_convergence_monitor::on_log_reset(const log_reset_event& e,
                                                sink&) {
  if (e.log->size() > max_log_) max_log_ = e.log->size();
}

void recovery_convergence_monitor::on_recovery_start(
    const recovery_start_event& e, sink&) {
  pending_[e.site] = e.at;
}

void recovery_convergence_monitor::on_rejoin(const rejoin_event& e, sink& s) {
  pending_.erase(e.site);
  const std::uint64_t lag =
      max_log_ > e.log_len ? max_log_ - e.log_len : 0;
  if (lag > max_lag_) {
    s.raise({std::string(name()), e.site, e.at,
             "rejoined with a commit log of " + std::to_string(e.log_len) +
                 " while the longest log is " + std::to_string(max_log_) +
                 " (lag " + std::to_string(lag) + " > bound " +
                 std::to_string(max_lag_) + ")"});
  }
}

void recovery_convergence_monitor::on_run_end(sim_time now, sink& s) {
  for (const auto& [site, started] : pending_) {
    if (now - started > deadline_) {
      s.raise({std::string(name()), site, now,
               "recovery started at " +
                   std::to_string(to_seconds(started)) +
                   "s never produced a rejoin (deadline " +
                   std::to_string(to_seconds(deadline_)) + "s)"});
    }
  }
}

// --- (6) placement consistency -----------------------------------------

void placement_monitor::on_decision(const decision_event& e, sink& s) {
  const auto it = pending_.find(e.site);
  if (it != pending_.end()) {
    s.raise({std::string(name()), e.site, e.at,
             "committed txn " + std::to_string(it->second.txn_id) +
                 " at position " + std::to_string(it->second.global_seq) +
                 " was never made durable (next decision arrived first)"});
    pending_.erase(it);
  }
  if (e.commit) pending_[e.site] = {e.global_seq, e.txn->id};
}

void placement_monitor::on_apply(const apply_event& e, sink& s) {
  const auto it = pending_.find(e.site);
  if (it == pending_.end() || it->second.txn_id != e.txn->id ||
      it->second.global_seq != e.global_seq) {
    s.raise({std::string(name()), e.site, e.at,
             "apply of txn " + std::to_string(e.txn->id) + " at position " +
                 std::to_string(e.global_seq) +
                 " does not match any pending commit decision" +
                 (it != pending_.end()
                      ? " (pending: txn " +
                            std::to_string(it->second.txn_id) + " at " +
                            std::to_string(it->second.global_seq) + ")"
                      : "")});
    return;
  }
  pending_.erase(it);
  // Independent recomputation: the durable slice must be exactly what the
  // placement assigns this site — nothing missing, nothing extra.
  placement_.slice(e.txn->write_set, e.site, expected_);
  if (*e.durable_slice != expected_) {
    s.raise({std::string(name()), e.site, e.at,
             "txn " + std::to_string(e.txn->id) + " durable slice has " +
                 std::to_string(e.durable_slice->size()) +
                 " elements but the placement (" + placement_.describe() +
                 ") assigns " + std::to_string(expected_.size()) +
                 " — committed data stored outside (or missing from) the "
                 "granule's replica set"});
  }
}

void placement_monitor::on_log_reset(const log_reset_event& e, sink&) {
  // State transfer rebuilt the site wholesale; any decision/apply pair in
  // flight on the torn-down incarnation is void.
  pending_.erase(e.site);
}

void placement_monitor::on_run_end(sim_time, sink&) {
  // A decision at the very end of the run may have its apply event fire
  // in the same delivery job but after the simulation's stop was issued;
  // in-flight pairs at run end are therefore not violations.
  pending_.clear();
}

// --- (7) read-snapshot 1SR ----------------------------------------------

void read_snapshot_monitor::on_decision(const decision_event& e, sink&) {
  // Maintain a private copy of the agreed order with the agreed-prefix
  // monitor's branch rules, silently: raising on malformed commit streams
  // is that monitor's job; this one only needs the reference order to
  // validate read claims against.
  if (!e.commit) return;
  log_len_[e.site] = e.log_len;
  const std::uint64_t idx = e.log_len - 1;
  if (!member_of(members_, e.site) && idx >= commit_cut_) return;
  if (idx < agreed_.size()) {
    if (agreed_[idx].txn_id == e.txn->id)
      agreed_[idx].committers |= site_bit(e.site);
    return;
  }
  if (idx > agreed_.size()) return;
  agreed_.push_back(entry{e.txn->id, site_bit(e.site)});
}

std::string read_snapshot_monitor::check_claim(const claim& c) const {
  if (c.log_len == 0) return "";
  if (c.log_len > agreed_.size()) {
    return "fast read served a committed prefix of length " +
           std::to_string(c.log_len) +
           " that is not (or no longer) part of the agreed order (length " +
           std::to_string(agreed_.size()) + ")";
  }
  if (agreed_[c.log_len - 1].txn_id != c.last_commit_id) {
    return "fast read served a prefix ending in txn " +
           std::to_string(c.last_commit_id) + " but the agreed order has " +
           std::to_string(agreed_[c.log_len - 1].txn_id) + " at position " +
           std::to_string(c.log_len - 1);
  }
  return "";
}

void read_snapshot_monitor::on_read(const read_event& e, sink& s) {
  if (!e.fast) return;  // fallback reads certify; nothing to claim
  const claim c{e.log_len, e.last_commit_id, e.at};
  auto [it, fresh] = claims_.try_emplace(e.site, c);
  if (!fresh) {
    if (e.log_len < it->second.log_len) {
      s.raise({std::string(name()), e.site, e.at,
               "fast read served snapshot length " +
                   std::to_string(e.log_len) + " after the site already " +
                   "served length " + std::to_string(it->second.log_len) +
                   " (reads travelled back in time)"});
      return;
    }
    it->second = c;
  }
  // Immediate check; the claim stays pending for re-validation at later
  // view installs (an orphan-branch prefix can match now and be rolled
  // back later).
  const std::string err = check_claim(c);
  if (!err.empty()) s.raise({std::string(name()), e.site, e.at, err});
}

void read_snapshot_monitor::on_view(const view_event& e, sink& s) {
  if (e.v.id <= top_id_) return;
  top_id_ = e.v.id;
  members_ = e.v.members;
  const auto lit = log_len_.find(e.site);
  commit_cut_ = lit != log_len_.end() ? lit->second : 0;
  const std::uint64_t mask = mask_of(members_);
  for (std::size_t i = commit_cut_; i < agreed_.size(); ++i) {
    if ((agreed_[i].committers & mask) == 0) {
      agreed_.resize(i);
      break;
    }
  }
  // Retroactive validation: every outstanding claim must have survived
  // the rollback — a fast read served off a now-discarded branch is a
  // 1SR violation even though it looked consistent when served.
  for (const auto& [site, c] : claims_) {
    const std::string err = check_claim(c);
    if (!err.empty()) {
      s.raise({std::string(name()), site, c.at, err});
      return;
    }
  }
}

void read_snapshot_monitor::on_run_end(sim_time, sink& s) {
  for (const auto& [site, c] : claims_) {
    const std::string err = check_claim(c);
    if (!err.empty()) {
      s.raise({std::string(name()), site, c.at, err});
      return;
    }
  }
}

}  // namespace dbsm::check
