#include "gcs/group.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dbsm::gcs {

group::group(csrt::env& env, group_config cfg)
    : env_(env), cfg_(std::move(cfg)) {
  DBSM_CHECK(!cfg_.members.empty());
  std::sort(cfg_.members.begin(), cfg_.members.end());
  DBSM_CHECK_MSG(cfg_.max_fragment + 64 <= env_.max_datagram(),
                 "fragment size too large for the transport");

  view initial;
  initial.id = 1;
  initial.members = cfg_.members;

  rmcast_ = std::make_unique<reliable_mcast>(env_, cfg_, cfg_.members);
  order_ = std::make_unique<total_order>(env_, cfg_);
  stability_ = std::make_unique<stability_tracker>(cfg_.members, env_.self());
  fd_ = std::make_unique<failure_detector>(cfg_.members, env_.self(),
                                           cfg_.suspect_timeout, env_.now());

  membership::hooks h;
  h.stop_sends = [this] { rmcast_->stop_sending(); };
  h.get_prefixes = [this] { return rmcast_->prefixes(); };
  h.ensure_cut = [this](std::vector<std::uint64_t> cut,
                        std::vector<node_id> sources,
                        std::function<void()> done) {
    rmcast_->ensure_up_to(std::move(cut), std::move(sources),
                          std::move(done));
  };
  h.cancel_flush = [this] { rmcast_->cancel_flush(); };
  h.install = [this](const view& v, const std::vector<node_id>& old_members,
                     const std::vector<std::uint64_t>& cut) {
    do_install(v, old_members, cut);
  };
  h.send = [this](node_id to, util::shared_bytes raw) { send_ctl(to, raw); };
  h.mcast = [this](util::shared_bytes raw) { mcast_ctl(raw); };
  membership_ =
      std::make_unique<membership>(env_, cfg_, initial, std::move(h));

  rmcast_->set_view_id(initial.id);
  rmcast_->set_app_handler([this](node_id sender, std::uint64_t app_seq,
                                  util::shared_bytes payload,
                                  std::uint64_t last_dgram) {
    on_app_msg(sender, app_seq, std::move(payload), last_dgram);
  });
  order_->set_deliver([this](node_id sender, std::uint64_t seq,
                             util::shared_bytes payload) {
    // Strip the kind byte; hand the user payload up.
    auto user = std::make_shared<util::bytes>(payload->begin() + 1,
                                              payload->end());
    if (deliver_) deliver_(sender, seq, std::move(user));
  });
  order_->set_send_assignments([this](util::shared_bytes batch) {
    rmcast_->broadcast(wrap(kind_assignments, batch));
  });
  order_->set_sequencer(initial.sequencer());
}

group::~group() { stopped_ = true; }

util::shared_bytes group::wrap(std::uint8_t kind,
                               const util::shared_bytes& payload) {
  util::buffer_writer w(1 + payload->size());
  w.put_u8(kind);
  w.put_bytes(payload->data(), payload->size());
  return w.take();
}

void group::start() {
  DBSM_CHECK(!started_);
  started_ = true;
  env_.set_handler([this](node_id from, util::shared_bytes raw) {
    dispatch(from, std::move(raw));
  });
  env_.post([this] {
    stability_tick();
    heartbeat_tick();
  });
}

void group::submit(util::shared_bytes payload) {
  env_.post([this, payload = std::move(payload)]() mutable {
    broadcast(std::move(payload));
  });
}

void group::broadcast(util::shared_bytes payload) {
  DBSM_CHECK(payload != nullptr);
  rmcast_->broadcast(wrap(kind_user, payload));
}

void group::on_app_msg(node_id sender, std::uint64_t app_seq,
                       util::shared_bytes payload, std::uint64_t last_dgram) {
  DBSM_CHECK(!payload->empty());
  const std::uint8_t kind = (*payload)[0];
  switch (kind) {
    case kind_user:
      order_->on_user_msg(sender, app_seq, std::move(payload), last_dgram);
      break;
    case kind_assignments: {
      auto body = std::make_shared<util::bytes>(payload->begin() + 1,
                                                payload->end());
      order_->on_assignments(body);
      break;
    }
    default:
      DBSM_CHECK_MSG(false, "unknown app message kind "
                                << static_cast<int>(kind));
  }
}

void group::dispatch(node_id from, util::shared_bytes raw) {
  if (stopped_ || raw->size() < 9) return;
  env_.charge(cfg_.handler_cpu_cost);
  const header hdr = decode_header(raw);
  fd_->heard_from(hdr.sender, env_.now());
  switch (hdr.type) {
    case msg_type::data: {
      const data_msg m = decode_data(raw);
      rmcast_->on_data(m, raw);
      break;
    }
    case msg_type::nak:
      rmcast_->on_nak(decode_nak(raw));
      break;
    case msg_type::stab: {
      const stab_msg m = decode_stab(raw);
      // Only merge gossip from the same view (vector layout must match).
      if (m.hdr.view_id == membership_->current().id &&
          m.stable.size() == stability_->members().size()) {
        if (stability_->merge(m))
          rmcast_->collect_garbage(stability_->stable());
      }
      break;
    }
    case msg_type::heartbeat:
      break;  // liveness already recorded
    case msg_type::view_propose:
      membership_->on_propose(decode_view_propose(raw));
      break;
    case msg_type::view_state:
      membership_->on_state(decode_view_state(raw));
      break;
    case msg_type::view_cut:
      membership_->on_cut(decode_view_cut(raw));
      break;
    case msg_type::view_flush_ok:
      membership_->on_flush_ok(decode_view_flush_ok(raw));
      break;
    case msg_type::view_install:
      membership_->on_install(decode_view_install(raw));
      break;
  }
  (void)from;
}

void group::stability_tick() {
  if (stopped_) return;
  stability_->set_local_prefixes(rmcast_->prefixes());
  const stab_msg gossip =
      stability_->make_gossip(membership_->current().id);
  env_.multicast(encode(gossip));
  env_.set_timer(cfg_.stability_period, [this] { stability_tick(); });
}

void group::heartbeat_tick() {
  if (stopped_) return;
  heartbeat_msg hb;
  hb.hdr = {msg_type::heartbeat, membership_->current().id, env_.self()};
  env_.multicast(encode(hb));
  // Failure detection shares the heartbeat cadence.
  for (node_id s : fd_->suspects(env_.now())) membership_->suspect(s);
  env_.set_timer(cfg_.heartbeat_period, [this] { heartbeat_tick(); });
}

void group::send_ctl(node_id to, util::shared_bytes raw) {
  if (to == env_.self()) {
    dispatch(to, std::move(raw));
    return;
  }
  env_.send(to, std::move(raw));
}

void group::mcast_ctl(util::shared_bytes raw) {
  env_.multicast(raw);
  dispatch(env_.self(), std::move(raw));  // self-delivery of control plane
}

void group::do_install(const view& v,
                       const std::vector<node_id>& old_members,
                       const std::vector<std::uint64_t>& cut) {
  // Truncate reliable-multicast state of failed senders.
  rmcast_->install_view(v.members);
  rmcast_->set_view_id(v.id);

  // Deterministic delivery of the flushed backlog, then the new sequencer.
  order_->install_view(old_members, cut, v.members);
  order_->set_sequencer(v.sequencer());

  // Everything up to the cut is at every survivor: it is stable by
  // definition of the flush. Seed the new stability tracker with it.
  std::vector<std::uint64_t> stable_init(v.members.size(), 0);
  for (std::size_t i = 0; i < v.members.size(); ++i) {
    const auto it =
        std::find(old_members.begin(), old_members.end(), v.members[i]);
    if (it != old_members.end())
      stable_init[i] = cut[static_cast<std::size_t>(it - old_members.begin())];
  }
  stability_ = std::make_unique<stability_tracker>(v.members, env_.self(),
                                                   stable_init);
  rmcast_->collect_garbage(stable_init);
  fd_->reset(v.members, env_.now());
  rmcast_->resume_sending();
  if (view_cb_) view_cb_(v);
}

const view& group::current_view() const { return membership_->current(); }

bool group::am_sequencer() const {
  return current_view().sequencer() == env_.self();
}

const reliable_mcast::stats& group::rmcast_stats() const {
  return rmcast_->get_stats();
}

std::uint64_t group::stability_rounds() const {
  return stability_->rounds_completed();
}

std::uint64_t group::view_changes() const {
  return membership_->view_changes();
}

std::uint64_t group::delivered_count() const { return order_->delivered(); }

std::size_t group::quota_used() const { return rmcast_->quota_used(); }

bool group::send_blocked() const { return rmcast_->blocked(); }

}  // namespace dbsm::gcs
