#include "gcs/group.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dbsm::gcs {

group::group(csrt::env& env, group_config cfg)
    : env_(env), cfg_(std::move(cfg)) {
  DBSM_CHECK(!cfg_.members.empty());
  std::sort(cfg_.members.begin(), cfg_.members.end());
  DBSM_CHECK_MSG(cfg_.max_fragment + 64 <= env_.max_datagram(),
                 "fragment size too large for the transport");

  view initial;
  initial.id = 1;
  initial.members = cfg_.members;

  fd_ = std::make_unique<failure_detector>(
      cfg_.members, env_.self(), cfg_.suspect_timeout, env_.now(),
      cfg_.heartbeat_period, cfg_.suspect_misses);

  membership::hooks h;
  h.stop_sends = [this] { rmcast_->stop_sending(); };
  h.quiesce_order = [this] { order_->quiesce(); };
  h.get_prefixes = [this] { return rmcast_->prefixes(); };
  h.ensure_cut = [this](std::vector<std::uint64_t> cut,
                        std::vector<node_id> sources,
                        std::function<void()> done) {
    rmcast_->ensure_up_to(std::move(cut), std::move(sources),
                          std::move(done));
  };
  h.cancel_flush = [this] { rmcast_->cancel_flush(); };
  h.install = [this](const view& v, const std::vector<node_id>& old_members,
                     const std::vector<std::uint64_t>& cut) {
    do_install(v, old_members, cut);
  };
  h.excluded = [this] {
    order_->halt_delivery();
    if (excluded_cb_) excluded_cb_();
  };
  h.send = [this](node_id to, util::shared_bytes raw) { send_ctl(to, raw); };
  h.mcast = [this](util::shared_bytes raw) { mcast_ctl(raw); };
  membership_ =
      std::make_unique<membership>(env_, cfg_, initial, std::move(h));

  build_stack(initial, 0);
  if (cfg_.enable_recovery) wire_recovery();
}

group::~group() {
  stopped_ = true;
  if (stab_timer_ != 0) env_.cancel_timer(stab_timer_);
  if (hb_timer_ != 0) env_.cancel_timer(hb_timer_);
}

void group::shutdown() {
  stopped_ = true;
  if (stab_timer_ != 0) {
    env_.cancel_timer(stab_timer_);
    stab_timer_ = 0;
  }
  if (hb_timer_ != 0) {
    env_.cancel_timer(hb_timer_);
    hb_timer_ = 0;
  }
}

void group::build_stack(const view& v, std::uint64_t delivered) {
  rmcast_ = std::make_unique<reliable_mcast>(env_, cfg_, v.members);
  rmcast_->set_view_id(v.id);
  // Streams restart from zero at every merge, so traffic of earlier
  // epochs must be rejected (the initial build keeps the permissive
  // historical behavior — nothing older than view 1 exists).
  if (v.id > 1) rmcast_->set_min_accept_view(v.id);
  rmcast_->set_app_handler([this](node_id sender, std::uint64_t app_seq,
                                  util::shared_bytes payload,
                                  std::uint64_t last_dgram) {
    on_app_msg(sender, app_seq, std::move(payload), last_dgram);
  });

  order_ = make_ordering(env_, cfg_);
  if (delivered > 0) order_->start_at(delivered + 1);
  order_->set_deliver([this](node_id sender, std::uint64_t seq,
                             util::shared_bytes payload) {
    // Strip the kind byte; hand the user payload up (and, when donating a
    // state transfer, forward it to the rejoining site). View-change
    // backlog delivery comes through here even in batch mode — a batch
    // consumer gets it as a single-payload run.
    auto user = std::make_shared<util::bytes>(payload->begin() + 1,
                                              payload->end());
    if (recovery_) recovery_->on_local_deliver(sender, seq, user);
    if (deliver_batch_) {
      std::vector<delivery> one;
      one.push_back({sender, seq, std::move(user)});
      deliver_batch_(std::move(one));
      return;
    }
    if (deliver_) deliver_(sender, seq, std::move(user));
  });
  if (cfg_.batch_max > 1) {
    order_->set_deliver_run([this](std::vector<delivery>&& run) {
      for (delivery& d : run) {
        d.payload = std::make_shared<util::bytes>(d.payload->begin() + 1,
                                                  d.payload->end());
        if (recovery_)
          recovery_->on_local_deliver(d.sender, d.global_seq, d.payload);
      }
      if (deliver_batch_) {
        deliver_batch_(std::move(run));
        return;
      }
      if (deliver_)
        for (delivery& d : run)
          deliver_(d.sender, d.global_seq, std::move(d.payload));
    });
  }
  order_->set_send_assignments([this](util::shared_bytes batch) {
    rmcast_->broadcast(wrap(kind_assignments, batch));
  });
  order_->set_send_batch([this](util::shared_bytes batch) {
    rmcast_->broadcast(wrap(kind_assignment_batch, batch));
  });
  order_->set_send_token([this](std::uint64_t token_seq,
                                std::uint64_t next_assign, node_id holder) {
    // Raw control plane like heartbeats: loss is covered by the passer's
    // retransmission and, terminally, by regeneration at the next view.
    token_msg t;
    t.hdr = {msg_type::token, membership_->current().id, env_.self()};
    t.token_seq = token_seq;
    t.next_assign = next_assign;
    t.holder = holder;
    ++token_ctl_sent_;
    env_.multicast(encode(t));
  });
  order_->set_roles(v.members, v.sequencer());

  stability_ = std::make_unique<stability_tracker>(v.members, env_.self());
  reset_uniform();
}

void group::reset_uniform() {
  // A view install (or stack rebuild) makes the agreed cut itself uniform:
  // the flush consensus guarantees every member of the new view delivered
  // exactly this prefix. Samples of the old streams are meaningless
  // against the new stability vector, so the ring restarts empty.
  uniform_ring_.clear();
  uniform_ = order_ ? order_->delivered() : 0;
}

void group::advance_uniform() {
  const std::vector<std::uint64_t>& stable = stability_->stable();
  while (!uniform_ring_.empty()) {
    const uniform_sample& s = uniform_ring_.front();
    if (s.prefixes.size() != stable.size()) {
      uniform_ring_.pop_front();  // sampled against an older member list
      continue;
    }
    bool covered = true;
    for (std::size_t i = 0; i < stable.size(); ++i)
      if (stable[i] < s.prefixes[i]) {
        covered = false;
        break;
      }
    if (!covered) break;
    if (s.delivered > uniform_) uniform_ = s.delivered;
    uniform_ring_.pop_front();
  }
}

void group::wire_recovery() {
  recovery::hooks rh;
  rh.take_snapshot = [this](node_id joiner) {
    DBSM_CHECK_MSG(xfer_.take_snapshot, "state transfer hooks not wired");
    return xfer_.take_snapshot(joiner);
  };
  rh.install_snapshot = [this](util::shared_bytes blob) {
    DBSM_CHECK_MSG(xfer_.install_snapshot, "state transfer hooks not wired");
    xfer_.install_snapshot(std::move(blob));
  };
  rh.replay = [this](node_id sender, std::uint64_t seq,
                     util::shared_bytes payload) {
    // A batch consumer gets each replayed delivery as a single-payload
    // run, same as view-change backlog delivery.
    if (deliver_batch_) {
      std::vector<delivery> one;
      one.push_back({sender, seq, std::move(payload)});
      deliver_batch_(std::move(one));
      return;
    }
    if (deliver_) deliver_(sender, seq, std::move(payload));
  };
  rh.delivered = [this] { return order_->delivered(); };
  rh.is_coordinator = [this] {
    if (membership_->excluded()) return false;  // stalled: may not donate
    const view& v = membership_->current();
    return !v.members.empty() && v.members.front() == env_.self();
  };
  rh.membership_changing = [this] { return membership_->changing(); };
  rh.admit = [this](node_id joiner) { membership_->admit(joiner); };
  rh.install_merged = [this](const view& v, std::uint64_t delivered) {
    install_merged(v, delivered);
  };
  rh.send = [this](node_id to, util::shared_bytes raw) {
    send_ctl(to, std::move(raw));
  };
  rh.mcast = [this](util::shared_bytes raw) { env_.multicast(std::move(raw)); };
  recovery_ = std::make_unique<recovery>(env_, cfg_, std::move(rh));
}

util::shared_bytes group::wrap(std::uint8_t kind,
                               const util::shared_bytes& payload) {
  util::buffer_writer w(1 + payload->size());
  w.put_u8(kind);
  w.put_bytes(payload->data(), payload->size());
  return w.take();
}

void group::start() {
  DBSM_CHECK(!started_);
  started_ = true;
  env_.set_handler([this](node_id from, util::shared_bytes raw) {
    dispatch(from, std::move(raw));
  });
  env_.post([this] {
    stability_tick();
    heartbeat_tick();
  });
}

void group::start_joining() {
  DBSM_CHECK(!started_);
  DBSM_CHECK_MSG(cfg_.enable_recovery && recovery_,
                 "start_joining() requires enable_recovery");
  started_ = true;
  joining_ = true;
  env_.set_handler([this](node_id from, util::shared_bytes raw) {
    dispatch(from, std::move(raw));
  });
  env_.post([this] {
    if (!stopped_) recovery_->begin_join();
  });
}

void group::install_merged(const view& v, std::uint64_t delivered) {
  DBSM_CHECK(joining_);
  joining_ = false;
  membership_->force_view(v);
  build_stack(v, delivered);
  fd_->reset(v.members, env_.now());
  // Live from here on: gossip and heartbeats run like any member's.
  stability_tick();
  heartbeat_tick();
  if (view_cb_) view_cb_(v);
  if (joined_cb_) joined_cb_(v);
}

void group::submit(util::shared_bytes payload) {
  env_.post([this, payload = std::move(payload)]() mutable {
    broadcast(std::move(payload));
  });
}

void group::broadcast(util::shared_bytes payload) {
  DBSM_CHECK(payload != nullptr);
  rmcast_->broadcast(wrap(kind_user, payload));
}

void group::on_app_msg(node_id sender, std::uint64_t app_seq,
                       util::shared_bytes payload, std::uint64_t last_dgram) {
  DBSM_CHECK(!payload->empty());
  const std::uint8_t kind = (*payload)[0];
  switch (kind) {
    case kind_user:
      order_->on_user_msg(sender, app_seq, std::move(payload), last_dgram);
      break;
    case kind_assignments: {
      auto body = std::make_shared<util::bytes>(payload->begin() + 1,
                                                payload->end());
      order_->on_assignments(body);
      break;
    }
    case kind_assignment_batch: {
      auto body = std::make_shared<util::bytes>(payload->begin() + 1,
                                                payload->end());
      order_->on_assignment_batch(body);
      break;
    }
    default:
      DBSM_CHECK_MSG(false, "unknown app message kind "
                                << static_cast<int>(kind));
  }
}

void group::dispatch(node_id from, util::shared_bytes raw) {
  if (stopped_ || raw->size() < 9) return;
  env_.charge(cfg_.handler_cpu_cost);
  const header hdr = decode_header(raw);
  if (joining_) {
    // A recovering site runs nothing but the join protocol: the rest of
    // the stack is rebuilt when the merged view installs.
    switch (hdr.type) {
      case msg_type::join_chunk:
        recovery_->on_chunk(decode_join_chunk(raw));
        break;
      case msg_type::join_fwd:
        recovery_->on_fwd(decode_join_fwd(raw));
        break;
      case msg_type::join_commit:
        recovery_->on_commit(decode_join_commit(raw));
        break;
      default:
        break;
    }
    return;
  }
  // A header from a view we never installed means we missed the install
  // that voted us out (see membership::on_foreign_view) — e.g. it was
  // multicast while a partition cut us off. Discovering it here halts
  // delivery instead of letting the node ride (or extend) a dead branch.
  membership_->on_foreign_view(hdr.view_id);
  fd_->heard_from(hdr.sender, env_.now());
  switch (hdr.type) {
    case msg_type::data: {
      const data_msg m = decode_data(raw);
      rmcast_->on_data(m, raw);
      break;
    }
    case msg_type::nak:
      rmcast_->on_nak(decode_nak(raw));
      break;
    case msg_type::stab: {
      const stab_msg m = decode_stab(raw);
      // Only merge gossip from the same view (vector layout must match).
      if (m.hdr.view_id == membership_->current().id &&
          m.stable.size() == stability_->members().size()) {
        if (stability_->merge(m)) {
          rmcast_->collect_garbage(stability_->stable());
          advance_uniform();
        }
      }
      break;
    }
    case msg_type::heartbeat:
      // Liveness already recorded; in recovery mode the heartbeat also
      // advertises the sender's stream high water, exposing datagram gaps
      // that no later traffic would reveal (a rejoined member's blind
      // spot between the members' install and its own).
      if (cfg_.enable_recovery) {
        const heartbeat_msg hb = decode_heartbeat(raw);
        if (hb.sent_high && hb.hdr.view_id == membership_->current().id)
          rmcast_->note_sender_high(hb.hdr.sender, *hb.sent_high);
      }
      break;
    case msg_type::view_propose:
      membership_->on_propose(decode_view_propose(raw));
      break;
    case msg_type::view_state:
      membership_->on_state(decode_view_state(raw));
      break;
    case msg_type::view_cut:
      membership_->on_cut(decode_view_cut(raw));
      break;
    case msg_type::view_flush_ok:
      membership_->on_flush_ok(decode_view_flush_ok(raw));
      break;
    case msg_type::view_install:
      membership_->on_install(decode_view_install(raw));
      break;
    case msg_type::join_request:
      if (recovery_) recovery_->on_join_request(decode_join_request(raw));
      break;
    case msg_type::join_chunk_ack:
      if (recovery_) recovery_->on_chunk_ack(decode_join_chunk_ack(raw));
      break;
    case msg_type::join_fwd_ack:
      if (recovery_) recovery_->on_fwd_ack(decode_join_fwd_ack(raw));
      break;
    case msg_type::join_done:
      if (recovery_) recovery_->on_done(decode_join_done(raw));
      break;
    case msg_type::join_chunk:
    case msg_type::join_fwd:
    case msg_type::join_commit:
      break;  // stale join traffic to a live member
    case msg_type::token:
      // Rotating-token ordering control. Tokens of other views are dead —
      // every install regenerates the token at the new lead — and during
      // a view change the membership barrier holds the token clock still:
      // a hop accepted mid-flush could mint assignments that breach view
      // synchrony.
      if (hdr.view_id == membership_->current().id &&
          !membership_->barrier_active()) {
        order_->on_token(decode_token(raw));
      }
      break;
  }
  (void)from;
}

void group::stability_tick() {
  if (stopped_) return;
  stability_->set_local_prefixes(rmcast_->prefixes());
  // Snapshot (delivered, prefixes) for the uniform watermark: once a
  // future stability round covers these prefixes at every member, the
  // deliveries counted here are agreed. In batch mode the tick is
  // amortized over batches: a sample that cannot move the watermark —
  // delivery hasn't advanced past the watermark, or past the previous
  // sample (which carries lower-or-equal prefixes, i.e. covers first) —
  // is skipped. Gated on batch_max so the default ring stays
  // byte-identical to the historical behavior.
  const std::uint64_t delivered = order_->delivered();
  const bool redundant =
      cfg_.batch_max > 1 &&
      (delivered <= uniform_ ||
       (!uniform_ring_.empty() &&
        uniform_ring_.back().delivered == delivered));
  if (!redundant)
    uniform_ring_.push_back({delivered, rmcast_->prefixes()});
  const stab_msg gossip =
      stability_->make_gossip(membership_->current().id);
  env_.multicast(encode(gossip));
  stab_timer_ =
      env_.set_timer(cfg_.stability_period, [this] { stability_tick(); });
}

void group::heartbeat_tick() {
  if (stopped_) return;
  heartbeat_msg hb;
  hb.hdr = {msg_type::heartbeat, membership_->current().id, env_.self()};
  if (cfg_.enable_recovery) hb.sent_high = rmcast_->sent_high();
  env_.multicast(encode(hb));
  // Failure detection shares the heartbeat cadence.
  fd_->tick(env_.now());
  for (node_id s : fd_->suspects(env_.now())) {
    membership_->suspect(s);
    if (suspicion_cb_) suspicion_cb_(s);
  }
  hb_timer_ =
      env_.set_timer(cfg_.heartbeat_period, [this] { heartbeat_tick(); });
}

void group::send_ctl(node_id to, util::shared_bytes raw) {
  if (to == env_.self()) {
    dispatch(to, std::move(raw));
    return;
  }
  env_.send(to, std::move(raw));
}

void group::mcast_ctl(util::shared_bytes raw) {
  env_.multicast(raw);
  dispatch(env_.self(), std::move(raw));  // self-delivery of control plane
}

void group::do_install(const view& v,
                       const std::vector<node_id>& old_members,
                       const std::vector<std::uint64_t>& cut) {
  bool merge = false;
  for (node_id n : v.members)
    if (std::find(old_members.begin(), old_members.end(), n) ==
        old_members.end())
      merge = true;

  if (merge) {
    // View merge (a site rejoined): deliver the flushed backlog exactly as
    // every member does, then restart every stream from zero — the joiner
    // cannot hold the old epoch's datagram history, so the whole group
    // begins a fresh one at the agreed position. Messages this node
    // accepted but never flushed to the others are re-broadcast through
    // the fresh streams; the rebuild itself is deferred one job because
    // the install can be reached from inside an rmcast frame.
    order_->install_view(old_members, cut, v.members);
    const std::uint64_t delivered = order_->delivered();
    const auto self_it =
        std::find(old_members.begin(), old_members.end(), env_.self());
    std::uint64_t cut_self = 0;
    if (self_it != old_members.end())
      cut_self = cut[static_cast<std::size_t>(self_it - old_members.begin())];
    std::vector<util::shared_bytes> resend =
        rmcast_->unflushed_app_msgs(cut_self);
    env_.post([this, v, delivered, resend = std::move(resend)]() mutable {
      if (stopped_) return;
      rebuild_for_merge(v, delivered, std::move(resend));
    });
    return;
  }

  // Truncate reliable-multicast state of failed senders.
  rmcast_->install_view(v.members);
  rmcast_->set_view_id(v.id);

  // Deterministic delivery of the flushed backlog, then the new roles
  // (sequencer takeover / token regeneration at the new lead).
  order_->install_view(old_members, cut, v.members);
  order_->set_roles(v.members, v.sequencer());

  // Everything up to the cut is at every survivor: it is stable by
  // definition of the flush. Seed the new stability tracker with it.
  std::vector<std::uint64_t> stable_init(v.members.size(), 0);
  for (std::size_t i = 0; i < v.members.size(); ++i) {
    const auto it =
        std::find(old_members.begin(), old_members.end(), v.members[i]);
    if (it != old_members.end())
      stable_init[i] = cut[static_cast<std::size_t>(it - old_members.begin())];
  }
  stability_ = std::make_unique<stability_tracker>(v.members, env_.self(),
                                                   stable_init);
  reset_uniform();
  rmcast_->collect_garbage(stable_init);
  fd_->reset(v.members, env_.now());
  rmcast_->resume_sending();
  if (view_cb_) view_cb_(v);
}

void group::rebuild_for_merge(const view& v, std::uint64_t delivered,
                              std::vector<util::shared_bytes> resend) {
  build_stack(v, delivered);
  fd_->reset(v.members, env_.now());
  if (recovery_) recovery_->on_view_installed(v, delivered);
  if (view_cb_) view_cb_(v);
  // The salvaged payloads are already wrapped; re-inject only user
  // messages — assignment batches of the dead epoch would poison the
  // fresh sequencer state.
  for (auto& payload : resend) {
    if (!payload->empty() && (*payload)[0] == kind_user)
      rmcast_->broadcast(std::move(payload));
  }
}

const view& group::current_view() const { return membership_->current(); }

bool group::am_sequencer() const {
  return current_view().sequencer() == env_.self();
}

const reliable_mcast::stats& group::rmcast_stats() const {
  return rmcast_->get_stats();
}

std::uint64_t group::stability_rounds() const {
  return stability_->rounds_completed();
}

std::uint64_t group::view_changes() const {
  return membership_->view_changes();
}

std::uint64_t group::delivered_count() const { return order_->delivered(); }

std::size_t group::quota_used() const { return rmcast_->quota_used(); }

bool group::send_blocked() const { return rmcast_->blocked(); }

std::uint64_t group::joins_served() const {
  return recovery_ ? recovery_->joins_served() : 0;
}

std::uint64_t group::join_snapshot_bytes() const {
  return recovery_ ? recovery_->snapshot_bytes_donated() : 0;
}

std::uint64_t group::join_chunk_bytes() const {
  return recovery_ ? recovery_->chunk_bytes_sent() : 0;
}

}  // namespace dbsm::gcs
