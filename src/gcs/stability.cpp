#include "gcs/stability.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace dbsm::gcs {

stability_tracker::stability_tracker(std::vector<node_id> members,
                                     node_id self,
                                     std::vector<std::uint64_t> initial_stable)
    : members_(std::move(members)), self_(self) {
  DBSM_CHECK(!members_.empty());
  DBSM_CHECK_MSG(members_.size() <= 32, "bitmap limits groups to 32 members");
  DBSM_CHECK(std::is_sorted(members_.begin(), members_.end()));
  const auto it = std::find(members_.begin(), members_.end(), self_);
  DBSM_CHECK_MSG(it != members_.end(), "self not in member list");
  self_index_ = static_cast<std::size_t>(it - members_.begin());
  all_voted_mask_ = members_.size() == 32
                        ? ~0u
                        : ((1u << members_.size()) - 1u);
  if (initial_stable.empty()) initial_stable.assign(members_.size(), 0);
  DBSM_CHECK(initial_stable.size() == members_.size());
  stable_ = std::move(initial_stable);
  local_prefix_ = stable_;
  // No vote yet: M starts at the identity of min-merge so the first real
  // vote (with current prefixes) defines it.
  min_recv_.assign(members_.size(),
                   std::numeric_limits<std::uint64_t>::max());
  voters_ = 0;
}

void stability_tracker::set_local_prefixes(
    std::vector<std::uint64_t> prefixes) {
  DBSM_CHECK(prefixes.size() == members_.size());
  // Re-voting with unchanged prefixes is idempotent — the voter bit is
  // already set and the vote only min-merges — so skip the merge work.
  // State-identical always; the saving matters when ticks outpace
  // deliveries (batched commit path).
  if ((voters_ & (1u << self_index_)) != 0 && prefixes == local_prefix_)
    return;
  local_prefix_ = std::move(prefixes);
  vote();
}

void stability_tracker::vote() {
  // First vote in a round contributes the current prefixes; once the vote
  // is out it must not be raised (others may already have merged it), so
  // re-votes only min-merge.
  voters_ |= 1u << self_index_;
  for (std::size_t i = 0; i < members_.size(); ++i)
    min_recv_[i] = std::min(min_recv_[i], local_prefix_[i]);
}

bool stability_tracker::try_complete() {
  if (voters_ != all_voted_mask_) return false;
  bool advanced = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (min_recv_[i] > stable_[i]) {
      stable_[i] = min_recv_[i];
      advanced = true;
    }
  }
  ++completed_;
  ++round_;
  // Start the next round with our own fresh vote.
  voters_ = 1u << self_index_;
  min_recv_ = local_prefix_;
  return advanced;
}

bool stability_tracker::merge(const stab_msg& m) {
  DBSM_CHECK(m.stable.size() == members_.size());
  bool advanced = false;
  // S advances by pointwise max regardless of rounds.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (m.stable[i] > stable_[i]) {
      stable_[i] = m.stable[i];
      advanced = true;
    }
  }
  if (m.round > round_) {
    // Adopt the newer round.
    round_ = m.round;
    voters_ = m.voters_bitmap;
    min_recv_ = m.min_received;
    vote();
  } else if (m.round == round_) {
    voters_ |= m.voters_bitmap;
    for (std::size_t i = 0; i < members_.size(); ++i)
      min_recv_[i] = std::min(min_recv_[i], m.min_received[i]);
    vote();
  }
  // else: stale round, S already merged.
  if (try_complete()) advanced = true;
  return advanced;
}

stab_msg stability_tracker::make_gossip(std::uint32_t view_id) const {
  stab_msg m;
  m.hdr.type = msg_type::stab;
  m.hdr.view_id = view_id;
  m.hdr.sender = self_;
  m.round = round_;
  m.voters_bitmap = voters_;
  m.stable = stable_;
  m.min_received = min_recv_;
  return m;
}

}  // namespace dbsm::gcs
