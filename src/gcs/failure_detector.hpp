// Heartbeat failure detector driving view changes.
#ifndef DBSM_GCS_FAILURE_DETECTOR_HPP
#define DBSM_GCS_FAILURE_DETECTOR_HPP

#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace dbsm::gcs {

class failure_detector {
 public:
  failure_detector(std::vector<node_id> members, node_id self,
                   sim_duration timeout, sim_time now);

  /// Any protocol traffic from a member counts as a liveness proof.
  void heard_from(node_id n, sim_time now);

  /// Members not heard from within the timeout.
  std::vector<node_id> suspects(sim_time now) const;

  bool is_suspect(node_id n, sim_time now) const;

  /// Re-seeds after a view change.
  void reset(std::vector<node_id> members, sim_time now);

 private:
  node_id self_;
  sim_duration timeout_;
  std::unordered_map<node_id, sim_time> last_heard_;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_FAILURE_DETECTOR_HPP
