// Heartbeat failure detector driving view changes.
//
// Suspicion needs two things at once: silence longer than `timeout`, and
// at least `suspect_misses` consecutive heartbeat intervals (ticked by the
// owner at the heartbeat cadence) in which nothing was heard from the
// member. The miss counter is hysteresis against delay faults: one
// datagram arriving late — even later than the timeout — resets the count
// and is not grounds for exclusion on its own; only sustained silence is.
#ifndef DBSM_GCS_FAILURE_DETECTOR_HPP
#define DBSM_GCS_FAILURE_DETECTOR_HPP

#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace dbsm::gcs {

class failure_detector {
 public:
  /// `suspect_misses == 0` disables the hysteresis (timeout-only — the
  /// pre-hysteresis behavior, also what the defaults give callers that
  /// never tick()).
  failure_detector(std::vector<node_id> members, node_id self,
                   sim_duration timeout, sim_time now,
                   sim_duration heartbeat_period = milliseconds(20),
                   unsigned suspect_misses = 0);

  /// Any protocol traffic from a member counts as a liveness proof (and
  /// clears its consecutive-miss count).
  void heard_from(node_id n, sim_time now);

  /// Called once per heartbeat interval: every member silent for more
  /// than one interval scores a miss; anyone heard from recently resets.
  void tick(sim_time now);

  /// Members not heard from within the timeout (and, when hysteresis is
  /// on, missing for at least `suspect_misses` consecutive ticks).
  std::vector<node_id> suspects(sim_time now) const;

  bool is_suspect(node_id n, sim_time now) const;

  /// Current consecutive-miss count (test probe).
  unsigned misses(node_id n) const;

  /// Re-seeds after a view change.
  void reset(std::vector<node_id> members, sim_time now);

 private:
  node_id self_;
  sim_duration timeout_;
  sim_duration heartbeat_period_;
  unsigned suspect_misses_;
  struct member_state {
    sim_time last_heard = 0;
    unsigned misses = 0;
  };
  std::unordered_map<node_id, member_state> members_;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_FAILURE_DETECTOR_HPP
