// Membership recovery: crash/partition rejoin with state transfer.
//
// The paper treats failed sites as crash-stop (§5.3) — a healed or
// excluded site stays out forever. This module adds the missing half of
// the cycle, in the style of view-synchronous rejoin (Derecho's
// specification work runtime-checks exactly this mechanism): a recovering
// site requests readmission, the primary partition's coordinator (its
// lowest-id member, the "donor") transfers a state snapshot — database +
// certification last-writer index + commit log, marshaled by the replica
// layer — in acknowledged chunks, forwards every totally ordered delivery
// made after the snapshot so the joiner replays the exact committed
// sequence under concurrent load, and finally asks membership to merge
// the joiner into the next view. The join_commit message then tells the
// joiner the precise delivery position at which the merged view began;
// when its replay reaches it, the joiner installs the view with fresh
// streams and is indistinguishable from a member that never left.
//
// Both ends are timeout-driven: a joiner that dies mid-transfer is
// forgotten by the donor, a donor that dies is replaced when the joiner
// restarts the attempt (fresh incarnation) against the next coordinator.
// Everything rides the same unreliable datagram service as the rest of
// the GCS — chunks stop-and-wait, forwarded deliveries go-back-N.
#ifndef DBSM_GCS_RECOVERY_HPP
#define DBSM_GCS_RECOVERY_HPP

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "csrt/env.hpp"
#include "gcs/config.hpp"
#include "gcs/view.hpp"
#include "gcs/wire.hpp"

namespace dbsm::gcs {

class recovery {
 public:
  /// Everything the protocol needs from its group (and, through it, the
  /// replica): state marshaling, delivery replay, membership control.
  struct hooks {
    /// Donor: marshal the application state at the current delivery
    /// position (atomic — called between deliveries), filtered to what
    /// `joiner` replicates (full replication ignores the argument).
    std::function<util::shared_bytes(node_id joiner)> take_snapshot;
    /// Joiner: install a transferred snapshot.
    std::function<void(util::shared_bytes)> install_snapshot;
    /// Joiner: replay one forwarded delivery into the application.
    std::function<void(node_id sender, std::uint64_t global_seq,
                       util::shared_bytes payload)>
        replay;
    /// Current global delivery position.
    std::function<std::uint64_t()> delivered;
    /// True iff this node currently coordinates the primary partition
    /// (lowest id of the installed view).
    std::function<bool()> is_coordinator;
    std::function<bool()> membership_changing;
    /// Ask membership to merge the joiner into the next view.
    std::function<void(node_id joiner)> admit;
    /// Joiner: enter the merged view at the given delivered position
    /// (rebuilds the protocol stack).
    std::function<void(const view& v, std::uint64_t delivered)>
        install_merged;
    std::function<void(node_id to, util::shared_bytes raw)> send;
    std::function<void(util::shared_bytes raw)> mcast;
  };

  recovery(csrt::env& env, const group_config& cfg, hooks h);
  ~recovery();  // cancels both tick timers

  recovery(const recovery&) = delete;
  recovery& operator=(const recovery&) = delete;

  // --- joiner side ---
  /// Starts (or restarts) a join attempt; called once by start_joining().
  void begin_join();
  void on_chunk(const join_chunk_msg& m);
  void on_fwd(const join_fwd_msg& m);
  void on_commit(const join_commit_msg& m);
  bool joining() const { return joining_; }

  // --- donor side ---
  void on_join_request(const join_request_msg& m);
  void on_chunk_ack(const join_chunk_ack_msg& m);
  void on_fwd_ack(const join_fwd_ack_msg& m);
  void on_done(const join_done_msg& m);
  /// Every local totally ordered delivery (donor forwards post-snapshot
  /// ones to its joiner).
  void on_local_deliver(node_id sender, std::uint64_t global_seq,
                        util::shared_bytes payload);
  /// A view was installed locally; if it merged our joiner in, freeze the
  /// commit position and tell the joiner.
  void on_view_installed(const view& v, std::uint64_t delivered);
  bool serving_join() const { return donor_.has_value(); }
  std::uint64_t joins_served() const { return joins_served_; }
  /// Sum of snapshot blob sizes this node donated (one per served join
  /// attempt) — under partial replication this is the placement-filtered
  /// size, not the full database.
  std::uint64_t snapshot_bytes_donated() const {
    return snapshot_bytes_donated_;
  }
  /// join_chunk payload bytes actually sent, retransmissions included.
  std::uint64_t chunk_bytes_sent() const { return chunk_bytes_sent_; }

 private:
  struct fwd_entry {
    std::uint64_t seq;
    node_id sender;
    util::shared_bytes payload;
  };

  struct donor_state {
    node_id joiner = invalid_node;
    std::uint64_t incarnation = 0;
    enum class phase { transfer, catchup, committing } ph = phase::transfer;
    util::shared_bytes blob;          // full snapshot
    std::uint64_t snap_pos = 0;       // delivered position it captures
    std::uint32_t chunks = 1;
    std::uint32_t next_chunk = 0;     // first unacked chunk
    std::deque<fwd_entry> fwd;        // deliveries after snap_pos, in order
    std::uint64_t acked = 0;          // joiner's replayed_to
    std::uint64_t commit_seq = 0;     // delivered at the merge install
    view merged;                      // the view that includes the joiner
    sim_time last_progress = 0;
  };

  // Donor.
  void donor_tick();
  void arm_donor_tick();
  void send_chunk(std::uint32_t idx);
  void send_fwd_window();
  void send_commit();
  void abandon_join(const char* why);

  // Joiner.
  void joiner_tick();
  void arm_joiner_tick();
  void restart_join(const char* why);
  void note_progress() { last_progress_ = env_.now(); }
  void drain_replay();
  void maybe_finish_join();
  void send_fwd_ack();

  csrt::env& env_;
  const group_config& cfg_;
  hooks hooks_;

  // Donor side (one joiner at a time; others keep retrying).
  std::optional<donor_state> donor_;
  csrt::timer_id donor_timer_ = 0;
  std::uint64_t joins_served_ = 0;
  std::uint64_t snapshot_bytes_donated_ = 0;
  std::uint64_t chunk_bytes_sent_ = 0;

  // Joiner side.
  bool joining_ = false;
  std::uint64_t incarnation_ = 0;
  std::vector<util::shared_bytes> chunks_;
  std::uint32_t chunks_have_ = 0;
  bool snapshot_installed_ = false;
  std::uint64_t replay_pos_ = 0;
  node_id donor_id_ = invalid_node;
  std::map<std::uint64_t, fwd_entry> fwd_buf_;
  bool commit_ready_ = false;
  view commit_view_;
  std::uint64_t commit_seq_ = 0;
  sim_time last_progress_ = 0;
  csrt::timer_id joiner_timer_ = 0;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_RECOVERY_HPP
