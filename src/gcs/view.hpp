// Group views (view-synchronous membership).
#ifndef DBSM_GCS_VIEW_HPP
#define DBSM_GCS_VIEW_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace dbsm::gcs {

struct view {
  std::uint32_t id = 0;
  std::vector<node_id> members;  // sorted

  bool contains(node_id n) const {
    return std::binary_search(members.begin(), members.end(), n);
  }

  /// Fixed sequencer: the lowest-id member of the view (§3.4 — "view
  /// synchrony ensures that a single sequencer site is easily chosen and
  /// replaced when it fails").
  node_id sequencer() const {
    return members.empty() ? invalid_node : members.front();
  }

  bool operator==(const view& other) const = default;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_VIEW_HPP
