// Total order via rotating token — the leaderless alternative on the
// gcs::ordering seam (gcs/ordering.hpp).
//
// A token circulates the view's members in site-id order. Only the current
// holder mints: it assigns the next run of global sequences to its OWN
// complete-but-unordered messages (one assignment_batch record, sent
// through its reliable multicast stream exactly like the fixed sequencer's
// records), then multicasts the token naming its successor. The ordering
// load thus rotates instead of concentrating at one site — trading the
// §5.3 sequencer bottleneck for token-circulation latency.
//
// Failure handling is deliberately minimal and rides on view synchrony:
//   * token datagrams are raw control plane (like heartbeats). The passer
//     retransmits every cfg.token_retry until it observes a higher token
//     sequence (its successor passed the token on in turn);
//   * a crashed holder (or a lost token the retransmission cannot fix —
//     the successor died) stalls minting, NOT safety: messages keep
//     buffering, and the failure detector eventually forces a view change;
//   * at every view install the token is regenerated deterministically —
//     the new view's lead (lowest id) simply holds it, no agreement round
//     or wire message needed — and the membership barrier discards token
//     datagrams of the old view, so a stale token can never resurrect.
#ifndef DBSM_GCS_TOKEN_ORDER_HPP
#define DBSM_GCS_TOKEN_ORDER_HPP

#include <vector>

#include "gcs/ordering.hpp"

namespace dbsm::gcs {

class token_order : public ordering {
 public:
  token_order(csrt::env& env, const group_config& cfg);
  ~token_order() override;  // cancels hold/retry timers (mid-run teardown)

  /// Deterministic token regeneration: `lead` (the view's lowest-id
  /// member) holds the fresh token, everyone else waits for it. Called at
  /// start and after every view install — the old token died with the old
  /// view (the group drops token datagrams whose view id mismatches).
  void set_roles(const std::vector<node_id>& members, node_id lead) override;

  /// View change flush: stop minting AND the token clock — a token passed
  /// now could trigger mints that breach view synchrony, and the install
  /// regenerates it anyway.
  void quiesce() override;

  void on_token(const token_msg& t) override;

  // --- probes ---
  bool holds_token() const { return have_token_; }
  /// Token hops this node initiated (first sends, not retransmissions).
  std::uint64_t tokens_passed() const { return tokens_passed_; }
  /// Assignment-batch records this node minted while holding the token.
  std::uint64_t mints() const { return mints_; }
  /// Token retransmissions (successor slow or dead).
  std::uint64_t token_retries() const { return token_retries_; }

 protected:
  void on_complete(node_id sender, std::uint64_t app_seq) override;
  /// Every mint goes straight to the wire (no local-only batch state), so
  /// there is nothing to roll back: assignments marked at mint time are
  /// covered by the flush cut — the record was broadcast before quiesce().
  void rollback_unflushed() override {}
  void post_install(const std::vector<node_id>& new_members) override;

 private:
  void acquire(std::uint64_t next_assign);
  void service_token();
  /// Mints one assignment_batch covering this node's complete-but-
  /// unassigned messages (in app_seq order). Returns true if it minted.
  bool mint_pending();
  void pass_token();
  void arm_retry();
  void cancel_timers();

  std::vector<node_id> members_;  // current view, sorted by site id

  /// Highest token sequence observed in this view; a hop counter.
  /// Receivers deduplicate retransmitted (and overtaken) tokens on it.
  std::uint64_t token_seq_ = 0;
  bool have_token_ = false;

  // Last token this node sent, retransmitted until superseded.
  std::uint64_t sent_seq_ = 0;
  std::uint64_t sent_next_assign_ = 0;
  node_id sent_holder_ = invalid_node;

  csrt::timer_id hold_timer_ = 0;   // idle holder: pass after idle delay
  csrt::timer_id retry_timer_ = 0;  // passer: retransmit until superseded

  std::uint64_t tokens_passed_ = 0;
  std::uint64_t mints_ = 0;
  std::uint64_t token_retries_ = 0;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_TOKEN_ORDER_HPP
