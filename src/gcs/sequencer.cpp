#include "gcs/sequencer.hpp"

#include "util/check.hpp"

namespace dbsm::gcs {

total_order::total_order(csrt::env& env, const group_config& cfg)
    : ordering(env, cfg) {}

total_order::~total_order() {
  if (batch_timer_ != 0) env_.cancel_timer(batch_timer_);
}

void total_order::set_roles(const std::vector<node_id>& members,
                            node_id lead) {
  (void)members;
  set_sequencer(lead);
}

void total_order::set_sequencer(node_id sequencer) {
  sequencer_ = sequencer;
  am_sequencer_ = sequencer == env_.self();
  if (am_sequencer_ && !quiesced_) {
    // Assign everything complete but unordered, deterministically. This
    // runs on every role update (not just takeovers): after a view change
    // the continuing sequencer must pick up messages that completed while
    // ordering was quiesced for the flush.
    for (const auto& [key, msg] : complete_) {
      if (!assigned_.count(key)) maybe_assign(key.first, key.second);
    }
    flush_batch();
  }
}

void total_order::on_complete(node_id sender, std::uint64_t app_seq) {
  if (am_sequencer_) maybe_assign(sender, app_seq);
}

void total_order::maybe_assign(node_id sender, std::uint64_t app_seq) {
  const msg_key key{sender, app_seq};
  if (assigned_.count(key)) return;
  if (batch_mode()) {
    // Batch atomic broadcast: accumulate the key; global sequences are
    // minted consecutively when the batch closes (size or delay bound).
    // Marking it assigned now keeps the sequencer-rescan from double-
    // adding it; install_view() rolls the open batch back the same way
    // it rolls back the unflushed dissemination batch.
    assigned_.insert(key);
    batch_keys_.push_back(key);
    if (batch_keys_.size() >= cfg_.batch_max) {
      close_batch();
    } else if (batch_timer_ == 0) {
      batch_timer_ = env_.set_timer(cfg_.batch_delay, [this] {
        batch_timer_ = 0;
        close_batch();
      });
    }
    return;
  }
  assignment a;
  a.sender = sender;
  a.app_seq = app_seq;
  a.global_seq = next_assign_++;
  batch_.push_back(a);
  assigned_.insert(key);
  // Note: the assignment takes effect only when the batch returns through
  // the sequencer's own reliable stream (self-delivery) — everyone,
  // including the sequencer, orders from wire-visible assignments, which
  // keeps view-change flushes consistent.
  if (batch_.size() >= cfg_.sequencer_batch) {
    flush_batch();
  } else if (batch_timer_ == 0) {
    batch_timer_ = env_.set_timer(cfg_.sequencer_flush, [this] {
      batch_timer_ = 0;
      flush_batch();
    });
  }
}

void total_order::close_batch() {
  // Same hold rule as flush_batch(): a quiesced sequencer must not mint.
  if (quiesced_) return;
  if (batch_keys_.empty()) return;
  if (batch_timer_ != 0) {
    env_.cancel_timer(batch_timer_);
    batch_timer_ = 0;
  }
  assignment_batch b;
  b.base = next_assign_;
  next_assign_ += batch_keys_.size();
  b.keys.swap(batch_keys_);
  // Like per-payload assignments, the batch takes effect only when the
  // record returns through the sequencer's own reliable stream.
  if (send_batch_) send_batch_(encode_assignment_batch(b));
}

void total_order::flush_batch() {
  if (batch_mode()) {
    close_batch();
    return;
  }
  // Quiesced for a view change: hold the batch. Nothing in it reached the
  // wire, so install_view() rolls these assignments back cleanly and the
  // post-install rescan re-issues them under the new view.
  if (quiesced_) return;
  if (batch_.empty()) return;
  if (batch_timer_ != 0) {
    env_.cancel_timer(batch_timer_);
    batch_timer_ = 0;
  }
  std::vector<assignment> batch;
  batch.swap(batch_);
  if (send_assignments_) send_assignments_(encode_assignments(batch));
}

void total_order::rollback_unflushed() {
  // Assignments still sitting in the unflushed batch never reached the
  // wire, so no survivor (this node included) acted on them.
  for (const assignment& a : batch_) {
    assigned_.erase(msg_key{a.sender, a.app_seq});
  }
  batch_.clear();
  // Batch mode: the open (unminted) batch rolls back the same way — the
  // post-install rescan re-accumulates whatever survived the cut.
  for (const msg_key& key : batch_keys_) assigned_.erase(key);
  batch_keys_.clear();
}

void total_order::post_install(const std::vector<node_id>& new_members) {
  (void)new_members;
  batch_.clear();
  batch_keys_.clear();
  if (batch_timer_ != 0) {
    env_.cancel_timer(batch_timer_);
    batch_timer_ = 0;
  }
}

}  // namespace dbsm::gcs
