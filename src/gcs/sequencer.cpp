#include "gcs/sequencer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dbsm::gcs {

util::shared_bytes encode_assignments(const std::vector<assignment>& as) {
  util::buffer_writer w(4 + 20 * as.size());
  w.put_u16(static_cast<std::uint16_t>(as.size()));
  for (const assignment& a : as) {
    w.put_u32(a.sender);
    w.put_u64(a.app_seq);
    w.put_u64(a.global_seq);
  }
  return w.take();
}

std::vector<assignment> decode_assignments(const util::shared_bytes& raw) {
  util::buffer_reader r(raw);
  const std::uint16_t n = r.get_u16();
  std::vector<assignment> out;
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    assignment a;
    a.sender = r.get_u32();
    a.app_seq = r.get_u64();
    a.global_seq = r.get_u64();
    out.push_back(a);
  }
  return out;
}

util::shared_bytes encode_assignment_batch(const assignment_batch& b) {
  util::buffer_writer w(10 + 12 * b.keys.size());
  w.put_u64(b.base);
  w.put_u16(static_cast<std::uint16_t>(b.keys.size()));
  for (const auto& [sender, app_seq] : b.keys) {
    w.put_u32(sender);
    w.put_u64(app_seq);
  }
  return w.take();
}

assignment_batch decode_assignment_batch(const util::shared_bytes& raw) {
  util::buffer_reader r(raw);
  assignment_batch b;
  b.base = r.get_u64();
  const std::uint16_t n = r.get_u16();
  b.keys.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    const node_id sender = r.get_u32();
    const std::uint64_t app_seq = r.get_u64();
    b.keys.emplace_back(sender, app_seq);
  }
  return b;
}

total_order::total_order(csrt::env& env, const group_config& cfg)
    : env_(env), cfg_(cfg) {}

total_order::~total_order() {
  if (batch_timer_ != 0) env_.cancel_timer(batch_timer_);
}

void total_order::start_at(std::uint64_t next) {
  DBSM_CHECK(complete_.empty() && order_.empty() && assigned_.empty());
  DBSM_CHECK(next >= 1);
  next_deliver_ = next;
  next_assign_ = next;
}

void total_order::set_sequencer(node_id sequencer) {
  sequencer_ = sequencer;
  am_sequencer_ = sequencer == env_.self();
  if (am_sequencer_ && !quiesced_) {
    // Assign everything complete but unordered, deterministically. This
    // runs on every role update (not just takeovers): after a view change
    // the continuing sequencer must pick up messages that completed while
    // ordering was quiesced for the flush.
    for (const auto& [key, msg] : complete_) {
      if (!assigned_.count(key)) maybe_assign(key.first, key.second);
    }
    flush_batch();
  }
}

void total_order::quiesce() { quiesced_ = true; }

void total_order::halt_delivery() { halted_ = true; }

void total_order::maybe_assign(node_id sender, std::uint64_t app_seq) {
  const msg_key key{sender, app_seq};
  if (assigned_.count(key)) return;
  if (batch_mode()) {
    // Batch atomic broadcast: accumulate the key; global sequences are
    // minted consecutively when the batch closes (size or delay bound).
    // Marking it assigned now keeps the sequencer-rescan from double-
    // adding it; install_view() rolls the open batch back the same way
    // it rolls back the unflushed dissemination batch.
    assigned_.insert(key);
    batch_keys_.push_back(key);
    if (batch_keys_.size() >= cfg_.batch_max) {
      close_batch();
    } else if (batch_timer_ == 0) {
      batch_timer_ = env_.set_timer(cfg_.batch_delay, [this] {
        batch_timer_ = 0;
        close_batch();
      });
    }
    return;
  }
  assignment a;
  a.sender = sender;
  a.app_seq = app_seq;
  a.global_seq = next_assign_++;
  batch_.push_back(a);
  assigned_.insert(key);
  // Note: the assignment takes effect only when the batch returns through
  // the sequencer's own reliable stream (self-delivery) — everyone,
  // including the sequencer, orders from wire-visible assignments, which
  // keeps view-change flushes consistent.
  if (batch_.size() >= cfg_.sequencer_batch) {
    flush_batch();
  } else if (batch_timer_ == 0) {
    batch_timer_ = env_.set_timer(cfg_.sequencer_flush, [this] {
      batch_timer_ = 0;
      flush_batch();
    });
  }
}

void total_order::close_batch() {
  // Same hold rule as flush_batch(): a quiesced sequencer must not mint.
  if (quiesced_) return;
  if (batch_keys_.empty()) return;
  if (batch_timer_ != 0) {
    env_.cancel_timer(batch_timer_);
    batch_timer_ = 0;
  }
  assignment_batch b;
  b.base = next_assign_;
  next_assign_ += batch_keys_.size();
  b.keys.swap(batch_keys_);
  // Like per-payload assignments, the batch takes effect only when the
  // record returns through the sequencer's own reliable stream.
  if (send_batch_) send_batch_(encode_assignment_batch(b));
}

void total_order::flush_batch() {
  if (batch_mode()) {
    close_batch();
    return;
  }
  // Quiesced for a view change: hold the batch. Nothing in it reached the
  // wire, so install_view() rolls these assignments back cleanly and the
  // post-install rescan re-issues them under the new view.
  if (quiesced_) return;
  if (batch_.empty()) return;
  if (batch_timer_ != 0) {
    env_.cancel_timer(batch_timer_);
    batch_timer_ = 0;
  }
  std::vector<assignment> batch;
  batch.swap(batch_);
  if (send_assignments_) send_assignments_(encode_assignments(batch));
}

void total_order::on_user_msg(node_id sender, std::uint64_t app_seq,
                              util::shared_bytes payload,
                              std::uint64_t last_dgram) {
  const msg_key key{sender, app_seq};
  complete_.emplace(key, pending_msg{std::move(payload), last_dgram});
  if (am_sequencer_ && !quiesced_) maybe_assign(sender, app_seq);
  try_deliver();
}

void total_order::on_assignments(const util::shared_bytes& batch) {
  for (const assignment& a : decode_assignments(batch)) {
    const msg_key key{a.sender, a.app_seq};
    order_.emplace(a.global_seq, key);
    assigned_.insert(key);
    if (a.global_seq >= next_assign_) next_assign_ = a.global_seq + 1;
  }
  try_deliver();
}

void total_order::on_assignment_batch(const util::shared_bytes& raw) {
  const assignment_batch b = decode_assignment_batch(raw);
  std::uint64_t seq = b.base;
  for (const auto& [sender, app_seq] : b.keys) {
    const msg_key key{sender, app_seq};
    order_.emplace(seq, key);
    assigned_.insert(key);
    ++seq;
  }
  if (seq > next_assign_) next_assign_ = seq;
  try_deliver();
}

void total_order::try_deliver() {
  if (halted_) return;
  if (deliver_run_) {
    // Batch mode: hand the whole contiguous deliverable run out in one
    // callback. State transitions per payload are identical to the
    // per-payload loop below, so decisions downstream cannot depend on
    // where run boundaries fall (they differ per site with arrival
    // timing; only amortized CPU does).
    std::vector<delivery> run;
    auto it = order_.find(next_deliver_);
    while (it != order_.end()) {
      auto mit = complete_.find(it->second);
      if (mit == complete_.end()) break;  // payload not yet received
      const msg_key key = it->second;
      pending_msg msg = std::move(mit->second);
      complete_.erase(mit);
      order_.erase(it);
      assigned_.erase(key);
      run.push_back({key.first, next_deliver_++, std::move(msg.payload)});
      it = order_.find(next_deliver_);
    }
    if (!run.empty()) deliver_run_(std::move(run));
    return;
  }
  auto it = order_.find(next_deliver_);
  while (it != order_.end()) {
    auto mit = complete_.find(it->second);
    if (mit == complete_.end()) return;  // payload not yet received
    const msg_key key = it->second;
    pending_msg msg = std::move(mit->second);
    complete_.erase(mit);
    order_.erase(it);
    assigned_.erase(key);
    const std::uint64_t seq = next_deliver_++;
    if (deliver_) deliver_(key.first, seq, std::move(msg.payload));
    it = order_.find(next_deliver_);
  }
}

void total_order::install_view(const std::vector<node_id>& old_members,
                               const std::vector<std::uint64_t>& cut,
                               const std::vector<node_id>& new_members) {
  DBSM_CHECK(old_members.size() == cut.size());
  quiesced_ = false;  // the flush is over; ordering resumes in the new view
  // Roll back assignments still sitting in the unflushed batch: they never
  // reached the wire, so no survivor (this node included) acted on them.
  for (const assignment& a : batch_) {
    assigned_.erase(msg_key{a.sender, a.app_seq});
  }
  batch_.clear();
  // Batch mode: the open (unminted) batch rolls back the same way — the
  // post-install rescan re-accumulates whatever survived the cut.
  for (const msg_key& key : batch_keys_) assigned_.erase(key);
  batch_keys_.clear();
  auto cut_of = [&](node_id n) -> std::uint64_t {
    const auto it = std::find(old_members.begin(), old_members.end(), n);
    if (it == old_members.end()) return 0;
    return cut[static_cast<std::size_t>(it - old_members.begin())];
  };
  auto survives = [&](node_id n) {
    return std::binary_search(new_members.begin(), new_members.end(), n);
  };

  // 1. Drop messages of failed senders beyond the cut (no survivor holds
  //    their remaining fragments).
  for (auto it = complete_.begin(); it != complete_.end();) {
    const node_id sender = it->first.first;
    if (!survives(sender) && it->second.last_dgram > cut_of(sender)) {
      assigned_.erase(it->first);
      it = complete_.erase(it);
    } else {
      ++it;
    }
  }

  // 2. Walk the assignment sequence; deliver what survives, skip orphaned
  //    assignments. Every survivor has the same state, so this is
  //    deterministic and identical group-wide.
  std::uint64_t last_assigned = next_assign_ - 1;
  for (auto it = order_.begin(); it != order_.end();) {
    auto mit = complete_.find(it->second);
    if (mit != complete_.end()) {
      pending_msg msg = std::move(mit->second);
      const msg_key key = it->second;
      complete_.erase(mit);
      assigned_.erase(key);
      last_assigned = std::max(last_assigned, it->first);
      it = order_.erase(it);
      const std::uint64_t seq = next_deliver_++;
      if (deliver_) deliver_(key.first, seq, std::move(msg.payload));
    } else {
      // Orphan: assigned by a crashed sequencer to a message nobody holds.
      last_assigned = std::max(last_assigned, it->first);
      assigned_.erase(it->second);
      it = order_.erase(it);
    }
  }

  // 3. Deliver remaining complete-but-unassigned messages within the cut
  //    in deterministic (sender, app_seq) order.
  for (auto it = complete_.begin(); it != complete_.end();) {
    if (it->second.last_dgram <= cut_of(it->first.first)) {
      const msg_key key = it->first;
      pending_msg msg = std::move(it->second);
      it = complete_.erase(it);
      const std::uint64_t seq = next_deliver_++;
      if (deliver_) deliver_(key.first, seq, std::move(msg.payload));
    } else {
      ++it;
    }
  }

  // Renumber: the new sequencer continues after everything delivered.
  next_assign_ = std::max(last_assigned + 1, next_deliver_);
  batch_.clear();
  batch_keys_.clear();
  if (batch_timer_ != 0) {
    env_.cancel_timer(batch_timer_);
    batch_timer_ = 0;
  }
}

}  // namespace dbsm::gcs
