#include "gcs/membership.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dbsm::gcs {

membership::membership(csrt::env& env, const group_config& cfg, view initial,
                       hooks h)
    : env_(env), cfg_(cfg), hooks_(std::move(h)),
      current_(std::move(initial)) {
  DBSM_CHECK(!current_.members.empty());
  DBSM_CHECK(std::is_sorted(current_.members.begin(),
                            current_.members.end()));
}

membership::~membership() {
  if (retry_timer_ != 0) env_.cancel_timer(retry_timer_);
}

std::vector<node_id> membership::alive_members() const {
  std::vector<node_id> out;
  for (node_id m : current_.members)
    if (!suspected_.count(m)) out.push_back(m);
  return out;
}

bool membership::is_primary(std::size_t members) const {
  // Testing backdoor (group_config::unsafe_no_primary_partition): let any
  // non-empty partition claim primacy so the check layer's split-brain
  // detection can be exercised end to end.
  if (cfg_.unsafe_no_primary_partition) return members > 0;
  return members * 2 > current_.members.size();
}

void membership::suspect(node_id n) {
  if (n == env_.self() || suspected_.count(n)) return;
  if (!current_.contains(n)) return;
  suspected_.insert(n);
  DBSM_LOG(info, "gcs.membership",
           "node " << env_.self() << " suspects " << n);
  start_change();
}

void membership::admit(node_id joiner) {
  if (changing_) return;  // merge after the pending change settles
  if (current_.contains(joiner)) return;
  if (!join_candidates_.insert(joiner).second) return;
  DBSM_LOG(info, "gcs.membership",
           "node " << env_.self() << " admits joiner " << joiner);
  start_change();
}

bool membership::barrier_active() const {
  // The token barrier mirrors the flush rules the ordering layer already
  // obeys (quiesce on propose, halt on exclusion): once a change starts
  // flushing, a token hop could mint assignments that never reach the
  // other members before they install — view synchrony breached at one
  // site. The install regenerates the token, so holding the clock still
  // here loses nothing.
  return changing_ || excluded_;
}

void membership::force_view(const view& v) {
  DBSM_CHECK(!v.members.empty());
  DBSM_CHECK(std::is_sorted(v.members.begin(), v.members.end()));
  current_ = v;
  excluded_ = false;
  changing_ = false;
  member_flush_done_ = false;
  pending_view_ = v.id;
  suspected_.clear();
  join_candidates_.clear();
  states_.clear();
  flush_oks_.clear();
  cut_sent_ = false;
  ++view_changes_;
  if (retry_timer_ != 0) {
    env_.cancel_timer(retry_timer_);
    retry_timer_ = 0;
  }
}

void membership::start_change() {
  const auto alive = alive_members();
  DBSM_CHECK(!alive.empty());
  changing_ = true;
  if (hooks_.stop_sends) hooks_.stop_sends();
  if (alive.front() == env_.self()) {
    propose();
  }
  arm_retry();
}

void membership::propose() {
  const auto alive = alive_members();
  // Primary-partition rule: only a majority of the current view may form
  // the next one. A minority side (a partitioned node suspecting everyone
  // else) stalls with sends stopped — it must not install a solo view and
  // split-brain the committed sequence. The retry timer keeps firing, so
  // it recovers if suspicions turn out wrong before exclusion.
  if (!is_primary(alive.size())) {
    DBSM_LOG(info, "gcs.membership",
             "node " << env_.self() << " in minority (" << alive.size()
                     << "/" << current_.members.size()
                     << "), withholding view proposal");
    return;
  }
  pending_view_ = std::max(pending_view_, current_.id) + 1;
  pending_members_ = alive;
  // View merge: rejoining sites ride the proposal; they take no part in
  // the flush (their state arrives by transfer, not by cut recovery).
  for (node_id j : join_candidates_)
    if (!current_.contains(j)) pending_members_.push_back(j);
  std::sort(pending_members_.begin(), pending_members_.end());
  coordinator_ = env_.self();
  states_.clear();
  flush_oks_.clear();
  cut_sent_ = false;
  member_flush_done_ = false;

  view_propose_msg m;
  m.hdr = {msg_type::view_propose, current_.id, env_.self()};
  m.new_view_id = pending_view_;
  m.proposed_members = pending_members_;
  DBSM_LOG(info, "gcs.membership",
           "node " << env_.self() << " proposes view " << pending_view_);
  hooks_.mcast(encode(m));
}

void membership::on_propose(const view_propose_msg& m) {
  if (m.new_view_id <= current_.id) return;  // stale
  // Primary-partition rule over the *current* view's members only: a
  // proposal cannot vote itself into a majority by listing joiners.
  std::size_t current_members = 0;
  for (node_id n : m.proposed_members)
    if (current_.contains(n)) ++current_members;
  if (!is_primary(current_members)) return;  // minority view
  if (changing_ && (m.new_view_id < pending_view_ ||
                    (m.new_view_id == pending_view_ &&
                     m.hdr.sender > coordinator_)))
    return;  // keep the stronger proposal

  changing_ = true;
  pending_view_ = m.new_view_id;
  pending_members_ = m.proposed_members;
  coordinator_ = m.hdr.sender;
  member_flush_done_ = false;
  if (hooks_.stop_sends) hooks_.stop_sends();
  // The prefixes reported below seed the agreed cut; everything ordered
  // after this instant belongs to the next view, so the sequencer stops
  // minting assignments until the install.
  if (hooks_.quiesce_order) hooks_.quiesce_order();
  if (hooks_.cancel_flush) hooks_.cancel_flush();

  view_state_msg reply;
  reply.hdr = {msg_type::view_state, current_.id, env_.self()};
  reply.new_view_id = pending_view_;
  reply.prefixes = hooks_.get_prefixes();
  hooks_.send(coordinator_, encode(reply));
  arm_retry();
}

void membership::on_state(const view_state_msg& m) {
  if (!changing_ || coordinator_ != env_.self()) return;
  if (m.new_view_id != pending_view_) return;
  states_[m.hdr.sender] = m.prefixes;
  maybe_send_cut();
}

void membership::maybe_send_cut() {
  if (cut_sent_) return;
  // Joiners (pending members outside the current view) do not flush.
  for (node_id n : pending_members_)
    if (current_.contains(n) && !states_.count(n)) return;

  const std::size_t width = current_.members.size();
  cut_.assign(width, 0);
  sources_.assign(width, env_.self());
  for (const auto& [member, prefixes] : states_) {
    if (prefixes.size() != width) continue;  // stale layout; ignore
    for (std::size_t i = 0; i < width; ++i) {
      if (prefixes[i] > cut_[i]) {
        cut_[i] = prefixes[i];
        sources_[i] = member;
      }
    }
  }
  cut_sent_ = true;

  view_cut_msg m;
  m.hdr = {msg_type::view_cut, current_.id, env_.self()};
  m.new_view_id = pending_view_;
  m.new_members = pending_members_;
  m.cut = cut_;
  m.sources = sources_;
  hooks_.mcast(encode(m));
}

void membership::on_cut(const view_cut_msg& m) {
  if (!changing_ || m.new_view_id != pending_view_) return;
  const node_id coord = m.hdr.sender;
  if (member_flush_done_) {
    // Duplicate (retry): our earlier flush_ok may have been lost.
    view_flush_ok_msg ok;
    ok.hdr = {msg_type::view_flush_ok, current_.id, env_.self()};
    ok.new_view_id = pending_view_;
    hooks_.send(coord, encode(ok));
    return;
  }
  const std::uint32_t vid = pending_view_;
  hooks_.ensure_cut(m.cut, m.sources, [this, vid, coord] {
    if (!changing_ || pending_view_ != vid) return;
    member_flush_done_ = true;
    view_flush_ok_msg ok;
    ok.hdr = {msg_type::view_flush_ok, current_.id, env_.self()};
    ok.new_view_id = vid;
    hooks_.send(coord, encode(ok));
  });
}

void membership::on_flush_ok(const view_flush_ok_msg& m) {
  if (!changing_ || coordinator_ != env_.self()) return;
  if (m.new_view_id != pending_view_) return;
  flush_oks_.insert(m.hdr.sender);
  maybe_install();
}

void membership::maybe_install() {
  if (!cut_sent_) return;
  for (node_id n : pending_members_)
    if (current_.contains(n) && !flush_oks_.count(n)) return;

  view_install_msg m;
  m.hdr = {msg_type::view_install, current_.id, env_.self()};
  m.new_view_id = pending_view_;
  m.new_members = pending_members_;
  m.cut = cut_;
  hooks_.mcast(encode(m));
}

void membership::on_install(const view_install_msg& m) {
  if (m.new_view_id <= current_.id) return;
  if (std::find(m.new_members.begin(), m.new_members.end(), env_.self()) ==
      m.new_members.end()) {
    // We were excluded but still hear the majority (an asymmetric cut:
    // our outbound traffic is gone, inbound flows). Stall with sends
    // stopped instead of adopting a view we are not part of — recovery
    // (rejoin with state transfer) is the way back in.
    discover_excluded(m.new_view_id);
    return;
  }
  finish_install(m);
}

void membership::on_foreign_view(std::uint32_t id) {
  if (id <= current_.id) return;
  // Mid-flush toward that view (or a later one) with a primary partition
  // still alive: our own install is in flight, this is just a faster
  // member's traffic arriving first. A minority node gets no such benefit
  // of the doubt — it cannot install anything itself, so a higher view id
  // can only mean the majority moved on without it.
  if (changing_ && pending_view_ >= id &&
      is_primary(alive_members().size())) {
    return;
  }
  discover_excluded(id);
}

void membership::discover_excluded(std::uint32_t view_id) {
  DBSM_LOG(info, "gcs.membership",
           "node " << env_.self() << " sees view " << view_id
                   << " excluding itself; stalling");
  const bool first = !excluded_;
  excluded_ = true;
  if (hooks_.stop_sends) hooks_.stop_sends();
  if (first && hooks_.excluded) hooks_.excluded();
}

void membership::finish_install(const view_install_msg& m) {
  const std::vector<node_id> old_members = current_.members;
  view v;
  v.id = m.new_view_id;
  v.members = m.new_members;
  std::sort(v.members.begin(), v.members.end());
  DBSM_LOG(info, "gcs.membership",
           "node " << env_.self() << " installs view " << v.id);

  current_ = v;
  excluded_ = false;
  changing_ = false;
  member_flush_done_ = false;
  pending_view_ = v.id;
  suspected_.clear();
  join_candidates_.clear();
  states_.clear();
  flush_oks_.clear();
  cut_sent_ = false;
  ++view_changes_;
  if (retry_timer_ != 0) {
    env_.cancel_timer(retry_timer_);
    retry_timer_ = 0;
  }
  hooks_.install(v, old_members, m.cut);
}

void membership::arm_retry() {
  if (retry_timer_ != 0) return;
  retry_timer_ =
      env_.set_timer(cfg_.view_change_retry, [this] { retry_fire(); });
}

void membership::retry_fire() {
  retry_timer_ = 0;
  if (!changing_) return;
  const auto alive = alive_members();
  DBSM_CHECK(!alive.empty());
  if (alive.front() == env_.self()) {
    // Either we coordinate already (lost messages: re-propose with a fresh
    // id) or the previous coordinator was suspected meanwhile (take over).
    propose();
  }
  arm_retry();
}

}  // namespace dbsm::gcs
