#include "gcs/token_order.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dbsm::gcs {

namespace {
/// Keys per minted assignment_batch record. The wire format caps the key
/// count at u16; chunking well below that also keeps each record inside a
/// few transport fragments.
constexpr std::size_t mint_chunk = 2048;
}  // namespace

token_order::token_order(csrt::env& env, const group_config& cfg)
    : ordering(env, cfg) {}

token_order::~token_order() { cancel_timers(); }

void token_order::cancel_timers() {
  if (hold_timer_ != 0) {
    env_.cancel_timer(hold_timer_);
    hold_timer_ = 0;
  }
  if (retry_timer_ != 0) {
    env_.cancel_timer(retry_timer_);
    retry_timer_ = 0;
  }
}

void token_order::set_roles(const std::vector<node_id>& members,
                            node_id lead) {
  members_ = members;
  DBSM_CHECK(std::is_sorted(members_.begin(), members_.end()));
  cancel_timers();
  have_token_ = false;
  sent_holder_ = invalid_node;
  sent_seq_ = 0;
  sent_next_assign_ = 0;
  if (lead == env_.self() && !halted_) {
    // Regeneration: the lead of the fresh view holds hop 1 of its token
    // clock, continuing the numbering at the local next_assign_ — after a
    // view install every survivor renumbered identically, so no wire
    // message (and no agreement round) is needed.
    token_seq_ = 1;
    acquire(next_assign_);
  } else {
    token_seq_ = 0;
  }
}

void token_order::quiesce() {
  ordering::quiesce();
  // A view change is flushing: the token clock stops with it. Minting or
  // passing now would be undone anyway (the install regenerates the token
  // and the group discards old-view token datagrams).
  cancel_timers();
}

void token_order::post_install(const std::vector<node_id>& new_members) {
  (void)new_members;  // set_roles() follows every install with the list
  cancel_timers();
  have_token_ = false;
}

void token_order::on_token(const token_msg& t) {
  if (halted_) return;
  // Dedup: the hop counter only moves forward. A retransmission (same
  // seq) or a token overtaken by later hops is dropped — in particular, a
  // successor that already passed the token on cannot re-acquire it from
  // the passer's retransmission.
  if (t.token_seq <= token_seq_) return;
  token_seq_ = t.token_seq;
  if (t.holder != env_.self()) return;  // observed someone else's hop
  // The passer's next_assign accompanies the token so the numbering
  // continues even if its last mint record is still in flight to us.
  if (t.next_assign > next_assign_) next_assign_ = t.next_assign;
  acquire(t.next_assign);
}

void token_order::acquire(std::uint64_t next_assign) {
  if (next_assign > next_assign_) next_assign_ = next_assign;
  have_token_ = true;
  service_token();
}

void token_order::on_complete(node_id sender, std::uint64_t app_seq) {
  (void)app_seq;
  // Only the holder mints, and only its own messages. Everyone else
  // buffers and waits for the token (or for the holder's record).
  if (!have_token_ || sender != env_.self()) return;
  service_token();
}

void token_order::service_token() {
  if (quiesced_ || halted_ || !have_token_) return;
  const bool minted = mint_pending();
  if (members_.size() <= 1) return;  // sole member: keep the token
  if (minted) {
    pass_token();
    return;
  }
  // Idle holder: nothing of ours to order. Keep the token briefly — a
  // message may complete any moment — then pass it on so the other sites'
  // ordering latency stays bounded by one circulation.
  if (hold_timer_ == 0) {
    hold_timer_ = env_.set_timer(cfg_.token_idle_delay, [this] {
      hold_timer_ = 0;
      if (quiesced_ || halted_ || !have_token_) return;
      mint_pending();
      pass_token();
    });
  }
}

bool token_order::mint_pending() {
  // Scan this node's complete-but-unassigned messages in app_seq order
  // (complete_ is keyed by (sender, app_seq), so they are contiguous).
  std::vector<msg_key> keys;
  for (auto it = complete_.lower_bound(msg_key{env_.self(), 0});
       it != complete_.end() && it->first.first == env_.self(); ++it) {
    if (!assigned_.count(it->first)) keys.push_back(it->first);
  }
  if (keys.empty()) return false;
  // Like the sequencer's records, a mint takes effect only when it returns
  // through this node's own reliable stream — everyone (the minter
  // included) orders from wire-visible assignments, which keeps
  // view-change flushes consistent. The record was broadcast before any
  // quiesce, so the flush cut always covers it: nothing to roll back.
  for (std::size_t off = 0; off < keys.size(); off += mint_chunk) {
    const std::size_t n = std::min(mint_chunk, keys.size() - off);
    assignment_batch b;
    b.base = next_assign_;
    next_assign_ += n;
    b.keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      b.keys.emplace_back(keys[off + i].first, keys[off + i].second);
      assigned_.insert(keys[off + i]);
    }
    ++mints_;
    if (send_batch_) send_batch_(encode_assignment_batch(b));
  }
  return true;
}

void token_order::pass_token() {
  if (hold_timer_ != 0) {
    env_.cancel_timer(hold_timer_);
    hold_timer_ = 0;
  }
  // Successor: the next live member after us in site-id order, cyclically.
  const auto self_it =
      std::upper_bound(members_.begin(), members_.end(), env_.self());
  const node_id next =
      self_it != members_.end() ? *self_it : members_.front();
  if (next == env_.self()) return;  // degenerate single-member list
  ++token_seq_;
  sent_seq_ = token_seq_;
  sent_next_assign_ = next_assign_;
  sent_holder_ = next;
  have_token_ = false;
  ++tokens_passed_;
  if (send_token_) send_token_(sent_seq_, sent_next_assign_, sent_holder_);
  arm_retry();
}

void token_order::arm_retry() {
  if (retry_timer_ != 0) env_.cancel_timer(retry_timer_);
  retry_timer_ = env_.set_timer(cfg_.token_retry, [this] {
    retry_timer_ = 0;
    if (quiesced_ || halted_) return;  // view change regenerates instead
    // Superseded: we saw a later hop (the successor passed it on) or we
    // hold a regenerated token ourselves.
    if (have_token_ || token_seq_ > sent_seq_) return;
    ++token_retries_;
    if (send_token_) send_token_(sent_seq_, sent_next_assign_, sent_holder_);
    arm_retry();
  });
}

}  // namespace dbsm::gcs
