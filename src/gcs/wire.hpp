// Wire formats of the group communication protocol.
//
// Every datagram starts with: type (u8), view id (u32), sender (u32).
// DATA datagrams additionally carry two sequence spaces per sender:
//   * dgram_seq — transport-level, contiguous, drives NAK recovery,
//     stability vectors and flush cuts;
//   * app_seq / fragment indices — application messages, possibly
//     fragmented over several consecutive datagrams.
#ifndef DBSM_GCS_WIRE_HPP
#define DBSM_GCS_WIRE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "util/byte_buffer.hpp"
#include "util/types.hpp"

namespace dbsm::gcs {

enum class msg_type : std::uint8_t {
  data = 1,
  nak = 2,
  stab = 3,
  heartbeat = 4,
  view_propose = 5,
  view_state = 6,
  view_cut = 7,
  view_flush_ok = 8,
  view_install = 9,
  // Membership recovery (rejoin protocol, gcs/recovery.hpp).
  join_request = 10,
  join_chunk = 11,
  join_chunk_ack = 12,
  join_fwd = 13,
  join_fwd_ack = 14,
  join_commit = 15,
  join_done = 16,
  // Rotating-token total order (gcs/token_order.hpp).
  token = 17,
};

struct header {
  msg_type type = msg_type::heartbeat;
  std::uint32_t view_id = 0;
  node_id sender = 0;
};

struct data_msg {
  header hdr;
  std::uint64_t dgram_seq = 0;
  std::uint64_t app_seq = 0;
  std::uint16_t frag_idx = 0;
  std::uint16_t frag_cnt = 1;
  util::shared_bytes payload;  // fragment bytes
};

struct nak_msg {
  header hdr;
  node_id target_sender = 0;  // whose stream has the gaps
  std::vector<std::uint64_t> missing;
};

/// One gossip round contribution of the stability detection protocol
/// (Guo's S/W/M scheme, §3.4). Vectors are indexed by the member list of
/// the current view.
struct stab_msg {
  header hdr;
  std::uint32_t round = 0;
  std::uint32_t voters_bitmap = 0;          // W, bit i = member[i] voted
  std::vector<std::uint64_t> stable;        // S
  std::vector<std::uint64_t> min_received;  // M
};

struct heartbeat_msg {
  header hdr;
  /// Sender's own datagram-stream high water (my_dgram_seq). Carried only
  /// when membership recovery is enabled: it lets a freshly (re)joined
  /// member discover datagrams it never saw — gaps with no later traffic
  /// to expose them — and NAK for them. Absent (and ignored) otherwise,
  /// so recovery-off runs stay bit-identical to the historical protocol.
  std::optional<std::uint64_t> sent_high;
};

struct view_propose_msg {
  header hdr;
  std::uint32_t new_view_id = 0;
  std::vector<node_id> proposed_members;
};

/// Member → coordinator: per-sender contiguous receive prefixes (over the
/// OLD view's members).
struct view_state_msg {
  header hdr;
  std::uint32_t new_view_id = 0;
  std::vector<std::uint64_t> prefixes;
};

/// Coordinator → members: agreed flush cut and, per sender, a member that
/// already holds that prefix and can serve retransmissions.
struct view_cut_msg {
  header hdr;
  std::uint32_t new_view_id = 0;
  std::vector<node_id> new_members;
  std::vector<std::uint64_t> cut;      // indexed by old-view member list
  std::vector<node_id> sources;        // who to NAK for each old member
};

struct view_flush_ok_msg {
  header hdr;
  std::uint32_t new_view_id = 0;
};

struct view_install_msg {
  header hdr;
  std::uint32_t new_view_id = 0;
  std::vector<node_id> new_members;
  std::vector<std::uint64_t> cut;
};

// --- membership recovery (gcs/recovery.hpp) ---
//
// All join messages carry the joiner's `incarnation` (a fresh value per
// join attempt) so a restarted attempt never consumes stale state from an
// earlier one.

/// Joiner → everyone: request readmission with state transfer. Served by
/// the primary partition's coordinator (its lowest-id member).
struct join_request_msg {
  header hdr;
  std::uint64_t incarnation = 0;
};

/// Donor → joiner: one chunk of the state snapshot (db + certification
/// index + commit log, marshaled by the replica layer), stop-and-wait.
/// `snap_pos` is the global delivery position the snapshot captures.
struct join_chunk_msg {
  header hdr;
  std::uint64_t incarnation = 0;
  std::uint64_t snap_pos = 0;
  std::uint32_t chunk_idx = 0;
  std::uint32_t chunk_cnt = 1;
  util::shared_bytes payload;
};

/// Joiner → donor: snapshot chunk received.
struct join_chunk_ack_msg {
  header hdr;
  std::uint64_t incarnation = 0;
  std::uint32_t chunk_idx = 0;
};

/// Donor → joiner: one totally ordered delivery made after the snapshot,
/// forwarded so the joiner replays the exact committed sequence.
struct join_fwd_msg {
  header hdr;
  std::uint64_t incarnation = 0;
  std::uint64_t global_seq = 0;
  node_id orig_sender = 0;
  util::shared_bytes payload;
};

/// Joiner → donor: cumulative replay progress (go-back-N ack).
struct join_fwd_ack_msg {
  header hdr;
  std::uint64_t incarnation = 0;
  std::uint64_t replayed_to = 0;
};

/// Donor → joiner: the merged view is installed at the members; once the
/// joiner's replay reaches `commit_seq` it installs `view_id`/`members`
/// with fresh streams and goes live.
struct join_commit_msg {
  header hdr;
  std::uint64_t incarnation = 0;
  std::uint64_t commit_seq = 0;
  std::uint32_t view_id = 0;
  std::vector<node_id> members;
};

/// Joiner → donor: live in the merged view; the donor forgets the join.
struct join_done_msg {
  header hdr;
  std::uint64_t incarnation = 0;
};

/// Rotating-token total order (gcs/token_order.hpp): the passer multicasts
/// the token naming the next holder. Raw control plane like heartbeats —
/// not part of any reliable stream; loss is covered by the passer's
/// retransmission (token_retry) and, terminally, by deterministic token
/// regeneration at the next view install. `token_seq` counts completed
/// hops within the view (receivers deduplicate on it); `next_assign` is
/// the first unminted global sequence, carried so the new holder continues
/// the numbering even if it has not yet received the passer's last
/// assignment record.
struct token_msg {
  header hdr;
  std::uint64_t token_seq = 0;
  std::uint64_t next_assign = 1;
  node_id holder = 0;
};

// --- encoding ---

util::shared_bytes encode(const data_msg& m);
util::shared_bytes encode(const nak_msg& m);
util::shared_bytes encode(const stab_msg& m);
util::shared_bytes encode(const heartbeat_msg& m);
util::shared_bytes encode(const view_propose_msg& m);
util::shared_bytes encode(const view_state_msg& m);
util::shared_bytes encode(const view_cut_msg& m);
util::shared_bytes encode(const view_flush_ok_msg& m);
util::shared_bytes encode(const view_install_msg& m);
util::shared_bytes encode(const join_request_msg& m);
util::shared_bytes encode(const join_chunk_msg& m);
util::shared_bytes encode(const join_chunk_ack_msg& m);
util::shared_bytes encode(const join_fwd_msg& m);
util::shared_bytes encode(const join_fwd_ack_msg& m);
util::shared_bytes encode(const join_commit_msg& m);
util::shared_bytes encode(const join_done_msg& m);
util::shared_bytes encode(const token_msg& m);

/// Peeks the header of any protocol datagram.
header decode_header(const util::shared_bytes& raw);

// Full decoders; they throw dbsm::invariant_violation on malformed input.
data_msg decode_data(const util::shared_bytes& raw);
heartbeat_msg decode_heartbeat(const util::shared_bytes& raw);
nak_msg decode_nak(const util::shared_bytes& raw);
stab_msg decode_stab(const util::shared_bytes& raw);
view_propose_msg decode_view_propose(const util::shared_bytes& raw);
view_state_msg decode_view_state(const util::shared_bytes& raw);
view_cut_msg decode_view_cut(const util::shared_bytes& raw);
view_flush_ok_msg decode_view_flush_ok(const util::shared_bytes& raw);
view_install_msg decode_view_install(const util::shared_bytes& raw);
join_request_msg decode_join_request(const util::shared_bytes& raw);
join_chunk_msg decode_join_chunk(const util::shared_bytes& raw);
join_chunk_ack_msg decode_join_chunk_ack(const util::shared_bytes& raw);
join_fwd_msg decode_join_fwd(const util::shared_bytes& raw);
join_fwd_ack_msg decode_join_fwd_ack(const util::shared_bytes& raw);
join_commit_msg decode_join_commit(const util::shared_bytes& raw);
join_done_msg decode_join_done(const util::shared_bytes& raw);
token_msg decode_token(const util::shared_bytes& raw);

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_WIRE_HPP
