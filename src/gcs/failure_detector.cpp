#include "gcs/failure_detector.hpp"

namespace dbsm::gcs {

failure_detector::failure_detector(std::vector<node_id> members, node_id self,
                                   sim_duration timeout, sim_time now,
                                   sim_duration heartbeat_period,
                                   unsigned suspect_misses)
    : self_(self), timeout_(timeout), heartbeat_period_(heartbeat_period),
      suspect_misses_(suspect_misses) {
  reset(std::move(members), now);
}

void failure_detector::reset(std::vector<node_id> members, sim_time now) {
  members_.clear();
  for (node_id m : members) members_[m] = member_state{now, 0};
}

void failure_detector::heard_from(node_id n, sim_time now) {
  auto it = members_.find(n);
  if (it == members_.end()) return;
  if (now > it->second.last_heard) it->second.last_heard = now;
  it->second.misses = 0;
}

void failure_detector::tick(sim_time now) {
  for (auto& [n, st] : members_) {
    if (n == self_) continue;
    if (now - st.last_heard > heartbeat_period_) {
      ++st.misses;
    } else {
      st.misses = 0;
    }
  }
}

std::vector<node_id> failure_detector::suspects(sim_time now) const {
  std::vector<node_id> out;
  for (const auto& [n, st] : members_) {
    if (n == self_) continue;
    if (now - st.last_heard <= timeout_) continue;
    if (suspect_misses_ != 0 && st.misses < suspect_misses_) continue;
    out.push_back(n);
  }
  return out;
}

bool failure_detector::is_suspect(node_id n, sim_time now) const {
  if (n == self_) return false;
  auto it = members_.find(n);
  if (it == members_.end()) return false;
  if (now - it->second.last_heard <= timeout_) return false;
  return suspect_misses_ == 0 || it->second.misses >= suspect_misses_;
}

unsigned failure_detector::misses(node_id n) const {
  auto it = members_.find(n);
  return it == members_.end() ? 0 : it->second.misses;
}

}  // namespace dbsm::gcs
