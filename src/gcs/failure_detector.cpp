#include "gcs/failure_detector.hpp"

namespace dbsm::gcs {

failure_detector::failure_detector(std::vector<node_id> members, node_id self,
                                   sim_duration timeout, sim_time now)
    : self_(self), timeout_(timeout) {
  reset(std::move(members), now);
}

void failure_detector::reset(std::vector<node_id> members, sim_time now) {
  last_heard_.clear();
  for (node_id m : members) last_heard_[m] = now;
}

void failure_detector::heard_from(node_id n, sim_time now) {
  auto it = last_heard_.find(n);
  if (it != last_heard_.end() && now > it->second) it->second = now;
}

std::vector<node_id> failure_detector::suspects(sim_time now) const {
  std::vector<node_id> out;
  for (const auto& [n, t] : last_heard_) {
    if (n == self_) continue;
    if (now - t > timeout_) out.push_back(n);
  }
  return out;
}

bool failure_detector::is_suspect(node_id n, sim_time now) const {
  if (n == self_) return false;
  auto it = last_heard_.find(n);
  if (it == last_heard_.end()) return false;
  return now - it->second > timeout_;
}

}  // namespace dbsm::gcs
