// The ordering-protocol seam: every total-order implementation the group
// can run derives from gcs::ordering, which owns the protocol-independent
// machinery — the complete-message buffer, the global-sequence assignment
// index, contiguous delivery, and the deterministic view-change delivery
// algorithm (drop dead senders beyond the cut, deliver surviving
// assignments, skip orphans, deliver complete-but-unassigned messages in
// key order). Implementations differ only in WHO mints assignments and
// WHEN: the §3.4 fixed sequencer (gcs/sequencer.hpp, the default) and the
// leaderless rotating token (gcs/token_order.hpp).
//
// Interface contract (enforced by tests/ordering_test.cpp, the
// cross-ordering differential conformance suite):
//   * assignments are disseminated through reliable multicast streams and
//     take effect only when wire-visible (self-delivery included), so
//     view-change flushes agree at every survivor;
//   * on_complete() is the single mint hook — it fires per complete
//     application message while ordering is not quiesced;
//   * quiesce() stops minting until install_view(); halt_delivery() stops
//     delivery permanently (node excluded from the group);
//   * install_view() must leave every survivor with identical state:
//     rollback_unflushed() undoes local-only mint state, the base delivers
//     the flushed backlog deterministically, post_install() resets
//     per-protocol timers/batches;
//   * set_roles() re-derives the protocol's leadership from the installed
//     member list alone (no extra agreement round).
#ifndef DBSM_GCS_ORDERING_HPP
#define DBSM_GCS_ORDERING_HPP

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "csrt/env.hpp"
#include "gcs/config.hpp"
#include "gcs/wire.hpp"
#include "util/byte_buffer.hpp"

namespace dbsm::gcs {

/// One total-order assignment: (sender, app_seq) -> global sequence.
struct assignment {
  node_id sender = 0;
  std::uint64_t app_seq = 0;
  std::uint64_t global_seq = 0;
};

util::shared_bytes encode_assignments(const std::vector<assignment>& as);
std::vector<assignment> decode_assignments(const util::shared_bytes& raw);

/// Batch assignment record (group_config::batch_max > 1, and the rotating
/// token's native mint record): one base global sequence plus the
/// (sender, app_seq) keys it covers, in minting order — key i gets global
/// sequence base + i. 12 bytes per payload instead of 20, and one wire
/// record (and one handler charge) per batch.
struct assignment_batch {
  std::uint64_t base = 0;
  std::vector<std::pair<node_id, std::uint64_t>> keys;
};

util::shared_bytes encode_assignment_batch(const assignment_batch& b);
assignment_batch decode_assignment_batch(const util::shared_bytes& raw);

/// One totally ordered delivery, as handed to a batch (run) consumer.
struct delivery {
  node_id sender = 0;
  std::uint64_t global_seq = 0;
  util::shared_bytes payload;
};

class ordering {
 public:
  /// Final, totally ordered delivery to the application.
  using deliver_fn = std::function<void(node_id sender,
                                        std::uint64_t global_seq,
                                        util::shared_bytes payload)>;
  /// Contiguous run of totally ordered deliveries, handed out in one
  /// callback (set only in batch mode; try_deliver then batches instead of
  /// calling deliver_ per payload).
  using deliver_run_fn = std::function<void(std::vector<delivery>&&)>;
  /// Used by the minting site to disseminate assignment records (wired to
  /// the group facade, which wraps and reliably multicasts them).
  using send_assignments_fn =
      std::function<void(util::shared_bytes batch)>;
  /// Rotating token only: multicasts the token datagram naming the next
  /// holder (raw control plane, outside the reliable streams).
  using send_token_fn = std::function<void(std::uint64_t token_seq,
                                           std::uint64_t next_assign,
                                           node_id next_holder)>;

  ordering(csrt::env& env, const group_config& cfg);
  virtual ~ordering();

  ordering(const ordering&) = delete;
  ordering& operator=(const ordering&) = delete;

  /// Rebases a *fresh* instance so delivery and assignment continue at
  /// `next` (used when the stack is rebuilt at a view merge: the global
  /// sequence runs on across the merge while the streams restart).
  void start_at(std::uint64_t next);

  void set_deliver(deliver_fn fn) { deliver_ = std::move(fn); }
  /// Batch-mode delivery: contiguous runs go through `fn` in one call
  /// instead of per-payload deliver_ (which install_view backlog delivery
  /// still uses). Leave unset for the per-payload path.
  void set_deliver_run(deliver_run_fn fn) { deliver_run_ = std::move(fn); }
  void set_send_assignments(send_assignments_fn fn) {
    send_assignments_ = std::move(fn);
  }
  /// Dissemination of batch assignment records (the group wraps these
  /// under its own wire kind).
  void set_send_batch(send_assignments_fn fn) {
    send_batch_ = std::move(fn);
  }
  /// Token dissemination (rotating token only; a fixed sequencer never
  /// calls it).
  void set_send_token(send_token_fn fn) { send_token_ = std::move(fn); }

  /// Updates the protocol's roles from the freshly installed member list
  /// (at start and at every view change/stack rebuild). The fixed
  /// sequencer adopts `lead` as the minting site; the rotating token
  /// deterministically regenerates the token at `lead`. Implementations
  /// must (re)assign every complete-but-unordered message this node is
  /// responsible for — including ones that arrived while ordering was
  /// quiesced for a view change.
  virtual void set_roles(const std::vector<node_id>& members,
                         node_id lead) = 0;

  /// Stops assignment creation and batch dissemination until the next
  /// install_view(). Called when a view change reports its flush state:
  /// the agreed cut covers exactly what was broadcast before the report,
  /// so an assignment minted after it would self-deliver here (sends are
  /// stopped) yet never reach the other members before they install —
  /// delivering it in this view at one site only breaks view synchrony.
  /// Received traffic still buffers and within-cut delivery continues.
  virtual void quiesce();

  /// Terminal delivery stop: this node learned it was excluded from the
  /// next view. View synchrony forbids delivering in a view one is not a
  /// member of, so the in-flight stream (which may keep arriving on an
  /// asymmetric or slow link) must not commit here any more. Only a stack
  /// rebuild (recovery rejoin) resumes delivery.
  void halt_delivery();

  /// Complete application message from the reliable layer (user payload).
  void on_user_msg(node_id sender, std::uint64_t app_seq,
                   util::shared_bytes payload, std::uint64_t last_dgram);

  /// Assignment batch from the reliable layer.
  void on_assignments(const util::shared_bytes& batch);

  /// Batch assignment record from the reliable layer.
  void on_assignment_batch(const util::shared_bytes& raw);

  /// Token datagram from the control plane (rotating token only; the
  /// group gates it on view id and the membership barrier first).
  virtual void on_token(const token_msg& t);

  /// View change: removes state of failed senders beyond the cut and
  /// deterministically delivers what remains (identically at every
  /// survivor — they flushed to the same state):
  ///   1. assignments whose payload survives are delivered in order;
  ///   2. assignments whose payload is gone (assigned by a crashed
  ///      minter to a message nobody holds) are skipped;
  ///   3. complete unassigned messages within the cut are delivered in
  ///      (sender, app_seq) order.
  /// `cut` and `old_members` describe the flushed state.
  void install_view(const std::vector<node_id>& old_members,
                    const std::vector<std::uint64_t>& cut,
                    const std::vector<node_id>& new_members);

  std::uint64_t delivered() const { return next_deliver_ - 1; }
  std::size_t pending_unordered() const { return complete_.size(); }
  std::size_t pending_assignments() const { return order_.size(); }

 protected:
  using msg_key = std::pair<node_id, std::uint64_t>;

  struct pending_msg {
    util::shared_bytes payload;
    std::uint64_t last_dgram = 0;
  };

  /// The mint hook: one complete application message buffered, ordering
  /// not quiesced. The implementation decides whether this site assigns
  /// it (and when the assignment record goes to the wire).
  virtual void on_complete(node_id sender, std::uint64_t app_seq) = 0;

  /// install_view() entry: undo mint state that never reached the wire
  /// (unflushed assignment batches) so the deterministic backlog delivery
  /// sees only wire-visible assignments.
  virtual void rollback_unflushed() = 0;

  /// install_view() exit (after the renumber): reset per-protocol batch
  /// state and timers for the new view.
  virtual void post_install(const std::vector<node_id>& new_members) = 0;

  void try_deliver();

  csrt::env& env_;
  const group_config cfg_;
  deliver_fn deliver_;
  deliver_run_fn deliver_run_;
  send_assignments_fn send_assignments_;
  send_assignments_fn send_batch_;
  send_token_fn send_token_;

  bool quiesced_ = false;  // view change in progress: no new assignments
  bool halted_ = false;    // excluded from the group: no more delivery

  std::map<msg_key, pending_msg> complete_;       // received, not delivered
  std::map<std::uint64_t, msg_key> order_;        // global -> key
  std::set<msg_key> assigned_;                    // keys with an order
  std::uint64_t next_deliver_ = 1;
  std::uint64_t next_assign_ = 1;
};

/// Instantiates the configured ordering protocol (cfg.ordering).
std::unique_ptr<ordering> make_ordering(csrt::env& env,
                                        const group_config& cfg);

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_ORDERING_HPP
