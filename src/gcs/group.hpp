// Group communication facade: atomic (totally ordered, view-synchronous)
// multicast as used by the DBSM termination protocol.
//
// Wires together the reliable multicast layer, gossip stability detection,
// the configured total-order protocol (the gcs/ordering.hpp seam: fixed
// sequencer or rotating token), heartbeat failure detection, and
// view-change membership — the full §3.4 stack — on top of the env
// abstraction, so the identical protocol code runs simulated (sim_env) or
// on real sockets (native_env).
#ifndef DBSM_GCS_GROUP_HPP
#define DBSM_GCS_GROUP_HPP

#include <deque>
#include <memory>

#include "csrt/env.hpp"
#include "gcs/config.hpp"
#include "gcs/failure_detector.hpp"
#include "gcs/membership.hpp"
#include "gcs/ordering.hpp"
#include "gcs/recovery.hpp"
#include "gcs/rmcast.hpp"
#include "gcs/stability.hpp"
#include "gcs/view.hpp"

namespace dbsm::gcs {

class group {
 public:
  /// Totally ordered delivery of an application payload.
  using deliver_fn = std::function<void(node_id sender,
                                        std::uint64_t global_seq,
                                        util::shared_bytes payload)>;
  /// Totally ordered delivery of a contiguous run of payloads in one
  /// callback (batch mode, cfg.batch_max > 1): the consumer can amortize
  /// per-delivery fixed costs over the run and pipeline its stages. Run
  /// boundaries are a local timing artifact — per-payload order and state
  /// transitions are identical to deliver_fn's.
  using deliver_batch_fn = std::function<void(std::vector<delivery>&&)>;
  using view_fn = std::function<void(const view&)>;

  /// Application-state marshaling for membership recovery (wired by the
  /// cluster to the replica): the donor side serializes its state, the
  /// joiner side installs a transferred one. Replayed deliveries go
  /// through the normal deliver callback.
  struct state_transfer_hooks {
    /// Marshals donor state for `joiner` — under partial replication the
    /// replica filters the database slice by the joiner's placement, so
    /// the transfer (and its chunk count) shrinks with the degree.
    std::function<util::shared_bytes(node_id joiner)> take_snapshot;
    std::function<void(util::shared_bytes)> install_snapshot;
  };

  group(csrt::env& env, group_config cfg);
  ~group();

  group(const group&) = delete;
  group& operator=(const group&) = delete;

  void set_deliver(deliver_fn fn) { deliver_ = std::move(fn); }
  /// Batch-mode consumer; delivery then arrives as contiguous runs (view-
  /// change backlog replays arrive as single-payload runs). Meaningful
  /// only with cfg.batch_max > 1 — check batching() before wiring.
  void set_deliver_batch(deliver_batch_fn fn) {
    deliver_batch_ = std::move(fn);
  }
  void set_view_handler(view_fn fn) { view_cb_ = std::move(fn); }
  /// Requires cfg.enable_recovery; call before start()/start_joining().
  void set_state_transfer(state_transfer_hooks h) { xfer_ = std::move(h); }
  /// Fires on the joiner once it is live in the merged view.
  void set_joined_handler(view_fn fn) { joined_cb_ = std::move(fn); }
  /// Fires once when this node discovers a view install that excludes it
  /// (delivery halts at that instant; rejoin via recovery resumes it).
  void set_excluded_handler(std::function<void()> fn) {
    excluded_cb_ = std::move(fn);
  }
  /// Fires whenever the local failure detector starts suspecting a member
  /// (may fire repeatedly for the same suspect while it stays silent).
  void set_suspicion_handler(std::function<void(node_id)> fn) {
    suspicion_cb_ = std::move(fn);
  }

  /// Boots the protocol stack (registers the datagram handler, arms the
  /// gossip/heartbeat timers, installs the initial view).
  void start();

  /// Boots a *recovering* site instead: only the join protocol runs (no
  /// heartbeats, no gossip, no sends) until the merged view installs, at
  /// which point the full stack comes up seamlessly. Requires
  /// cfg.enable_recovery.
  void start_joining();

  /// Quiesces the stack for teardown mid-run (site crash/restart): stops
  /// the tick timers and makes every queued callback a no-op. The object
  /// can then be destroyed safely once the owning CPU drains.
  void shutdown();

  bool joining() const { return joining_; }

  /// Atomic multicast of an application payload; safe to call from
  /// simulation-side code (enters a real-code job via env.post).
  void submit(util::shared_bytes payload);

  /// Same, but must already run in real-code context.
  void broadcast(util::shared_bytes payload);

  const view& current_view() const;
  bool am_sequencer() const;
  /// The running total-order protocol (probe access for tests/monitors).
  const ordering& order_protocol() const { return *order_; }
  node_id self() const { return env_.self(); }
  /// Batch atomic broadcast configured (cfg.batch_max > 1)?
  bool batching() const { return cfg_.batch_max > 1; }

  // --- probes ---
  const reliable_mcast::stats& rmcast_stats() const;
  std::uint64_t stability_rounds() const;
  std::uint64_t view_changes() const;
  std::uint64_t delivered_count() const;
  /// Agreed (uniform) delivery watermark: the count of totally ordered
  /// deliveries whose underlying datagrams fall within the all-members
  /// gossip-stable prefix. Every current member holds them, so within a
  /// view they can never be rolled back — a partitioned minority cannot
  /// complete a stability round, so its watermark freezes at partition
  /// onset. Resets to the agreed cut at every view install.
  std::uint64_t uniform_delivered() const { return uniform_; }
  std::size_t quota_used() const;
  bool send_blocked() const;
  /// Completed state transfers this node donated (recovery probe).
  std::uint64_t joins_served() const;
  /// Snapshot blob bytes this node donated across join attempts.
  std::uint64_t join_snapshot_bytes() const;
  /// join_chunk payload bytes sent (retransmissions included).
  std::uint64_t join_chunk_bytes() const;
  /// Token control datagrams multicast by this node (rotating-token
  /// ordering only; passes and retransmissions).
  std::uint64_t token_ctl_sent() const { return token_ctl_sent_; }

 private:
  static constexpr std::uint8_t kind_user = 0;
  static constexpr std::uint8_t kind_assignments = 1;
  static constexpr std::uint8_t kind_assignment_batch = 2;

  void dispatch(node_id from, util::shared_bytes raw);
  void on_app_msg(node_id sender, std::uint64_t app_seq,
                  util::shared_bytes payload, std::uint64_t last_dgram);
  void stability_tick();
  void heartbeat_tick();
  void send_ctl(node_id to, util::shared_bytes raw);
  void mcast_ctl(util::shared_bytes raw);
  void do_install(const view& v, const std::vector<node_id>& old_members,
                  const std::vector<std::uint64_t>& cut);
  /// Fresh rmcast/order/stability at `v` with the global sequence
  /// continuing at `delivered` + 1 (view merges restart every stream).
  void build_stack(const view& v, std::uint64_t delivered);
  void rebuild_for_merge(const view& v, std::uint64_t delivered,
                         std::vector<util::shared_bytes> resend);
  void install_merged(const view& v, std::uint64_t delivered);
  void wire_recovery();
  static util::shared_bytes wrap(std::uint8_t kind,
                                 const util::shared_bytes& payload);

  /// One gossip-period sample: how far total order had delivered when the
  /// local contiguously-received prefixes stood at `prefixes`. Once the
  /// all-members stable vector dominates `prefixes`, every delivery up to
  /// `delivered` is agreed (assignments travel in the sequencer's own
  /// stream, so a stable prefix implies deliverability everywhere).
  struct uniform_sample {
    std::uint64_t delivered = 0;
    std::vector<std::uint64_t> prefixes;
  };

  void reset_uniform();
  void advance_uniform();

  csrt::env& env_;
  group_config cfg_;
  deliver_fn deliver_;
  deliver_batch_fn deliver_batch_;
  view_fn view_cb_;
  view_fn joined_cb_;
  std::function<void()> excluded_cb_;
  std::function<void(node_id)> suspicion_cb_;
  state_transfer_hooks xfer_;

  std::unique_ptr<reliable_mcast> rmcast_;
  std::unique_ptr<ordering> order_;
  std::unique_ptr<stability_tracker> stability_;
  std::unique_ptr<failure_detector> fd_;
  std::unique_ptr<membership> membership_;
  std::unique_ptr<recovery> recovery_;

  std::deque<uniform_sample> uniform_ring_;
  std::uint64_t uniform_ = 0;
  std::uint64_t token_ctl_sent_ = 0;

  bool started_ = false;
  bool stopped_ = false;
  bool joining_ = false;
  csrt::timer_id stab_timer_ = 0;
  csrt::timer_id hb_timer_ = 0;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_GROUP_HPP
