// Tunables of the group communication prototype (§3.4).
#ifndef DBSM_GCS_CONFIG_HPP
#define DBSM_GCS_CONFIG_HPP

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace dbsm::gcs {

/// Which total-order protocol the group runs (gcs/ordering.hpp seam).
enum class ordering_kind : std::uint8_t {
  /// §3.4 fixed sequencer: the lowest-id view member mints every global
  /// sequence (gcs/sequencer.hpp). The default — byte-identical to the
  /// historical protocol and its seed-7 anchors.
  fixed_sequencer = 0,
  /// Leaderless rotating token: a token circulates the view in site-id
  /// order; the holder mints the next run of global sequences for its own
  /// pending messages, then passes the token on (gcs/token_order.hpp).
  /// Token loss (holder crash, partition) is recovered at view change by
  /// deterministic regeneration.
  rotating_token = 1,
};

const char* ordering_name(ordering_kind k);

struct group_config {
  /// Static initial membership (node ids on the transport).
  std::vector<node_id> members;

  /// Maximum payload carried by one DATA datagram; the prototype restricts
  /// packets to a safe size well under the Ethernet MTU (§4.2).
  std::size_t max_fragment = 1024;

  // --- reliability (window-based, receiver-initiated; §3.4) ---
  sim_duration nak_delay = milliseconds(8);     // gap age before first NAK
  sim_duration nak_backoff_max = milliseconds(100);
  std::size_t nak_batch = 64;                   // max seqs per NAK message

  // --- buffering / window flow control ---
  /// Total buffer space for unstable messages; each member may only use
  /// its share (total / |members|) — the fairness rule whose exhaustion
  /// the paper observes under random loss (§5.3). Accounted in message
  /// slots (the dominant constraint for the sequencer, which multicasts
  /// the most messages) with a byte total as a secondary cap.
  std::size_t total_buffer_msgs = 120;
  std::size_t total_buffer_bytes = 256 * 1024;

  // --- rate-based flow control (dissemination phase) ---
  double send_rate_bytes_per_s = 8e6;
  std::size_t send_burst_bytes = 32 * 1024;

  // --- stability detection (gossip rounds; §3.4) ---
  sim_duration stability_period = milliseconds(40);

  // --- failure detection / view synchrony ---
  sim_duration heartbeat_period = milliseconds(20);
  sim_duration suspect_timeout = milliseconds(300);
  /// Miss-count hysteresis: a member is only suspected after this many
  /// consecutive heartbeat intervals with no traffic from it — a single
  /// late arrival (one delayed datagram past suspect_timeout) is not
  /// enough. The default adds no latency over the plain timeout (any
  /// silence longer than suspect_timeout spans well over 3 heartbeat
  /// ticks); raise it to tolerate transient link-delay windows longer
  /// than suspect_timeout without flapping views.
  unsigned suspect_misses = 3;
  sim_duration view_change_retry = milliseconds(500);

  /// TESTING ONLY — disables the primary-partition majority rule in
  /// membership, allowing a minority partition to install views and keep
  /// committing (split brain). Exists so the check layer's online
  /// monitors can be shown to catch the resulting violation; never set
  /// in real configurations.
  bool unsafe_no_primary_partition = false;

  // --- total order ---
  /// Ordering-protocol selection (the gcs/ordering.hpp seam). The default
  /// fixed sequencer reproduces the historical protocol byte-for-byte;
  /// every implementation must pass tests/ordering_test.cpp — the same
  /// fault catalog, campaigns, and online monitors — before it ships.
  ordering_kind ordering = ordering_kind::fixed_sequencer;

  // --- total order (fixed sequencer) ---
  /// Assignments accumulated before the sequencer flushes a SEQ message
  /// (a timer flushes earlier ones).
  std::size_t sequencer_batch = 16;
  sim_duration sequencer_flush = microseconds(500);

  // --- total order (rotating token) ---
  /// How long an idle token holder (nothing of its own to order) keeps the
  /// token before passing it on. Bounds the token's idle circulation rate
  /// (one hop per delay) and the extra ordering latency a busy site sees
  /// while the token sits at an idle one.
  sim_duration token_idle_delay = milliseconds(1);
  /// A passer re-multicasts its token until it observes a higher token
  /// sequence (the successor passed it on) or a view change regenerates
  /// the token; this is the retransmission cadence.
  sim_duration token_retry = milliseconds(25);

  // --- batch atomic broadcast (off by default) ---
  /// When > 1 the sequencer mints one *batch* assignment record covering
  /// up to this many payloads with consecutive global sequences (closed
  /// by this size threshold or by batch_delay), delivery hands whole
  /// contiguous runs to the application in one callback, and the
  /// stability/watermark ticks skip redundant work between batches. The
  /// default 1 keeps the per-payload assignment path byte-identical to
  /// the historical protocol (the seed-7 anchors).
  std::size_t batch_max = 1;
  /// Age of the oldest pending payload at which a partial batch closes
  /// anyway (the latency bound of batching).
  sim_duration batch_delay = microseconds(500);

  /// Deterministic CPU cost charged per handled datagram when real
  /// measurement is off (base protocol processing).
  sim_duration handler_cpu_cost = microseconds(3);

  // --- membership recovery (rejoin with state transfer; gcs/recovery.hpp) ---
  /// Master switch. Off (the default), no join protocol exists: no extra
  /// wire bytes, timers, or state — runs are bit-identical to the
  /// crash-stop protocol the paper evaluates.
  bool enable_recovery = false;
  /// State-transfer chunk payload (must fit the transport datagram limit).
  std::size_t join_chunk_bytes = 32 * 1024;
  /// Retransmission cadence of the join protocol (chunks, forwarded
  /// deliveries, commit message).
  sim_duration join_retry = milliseconds(40);
  /// A join attempt with no progress for this long is abandoned (donor
  /// side) or restarted with a fresh incarnation (joiner side) — a second
  /// failure during transfer must not wedge either end.
  sim_duration join_timeout = seconds(2);
  /// Forwarded-delivery window (go-back-N) during catch-up.
  std::size_t join_fwd_window = 32;
  /// The donor asks membership to merge the joiner in once the joiner's
  /// replay lags the live delivery position by at most this much.
  std::uint64_t join_merge_lag = 16;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_CONFIG_HPP
