// View-synchronous reliable multicast, bottom layer of the GCS (§3.4).
//
//   * Dissemination uses the transport's multicast (IP multicast on a LAN,
//     unicast fan-out elsewhere), with rate-based flow control.
//   * Reliability is a window-based receiver-initiated mechanism: gaps in
//     per-sender datagram sequences trigger NAKs (with backoff); senders
//     retransmit from their unstable-message buffers.
//   * Application messages larger than one datagram are fragmented;
//     complete messages are handed up in per-sender order.
//   * Each sender owns a share of the group's buffer space for unstable
//     (not yet garbage-collectable) datagrams; when the share fills, the
//     sender blocks — the fairness rule behind the paper's §5.3 analysis.
//   * Stability garbage collection and view-change flushing are driven
//     from above (the group facade).
#ifndef DBSM_GCS_RMCAST_HPP
#define DBSM_GCS_RMCAST_HPP

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "csrt/env.hpp"
#include "gcs/config.hpp"
#include "gcs/flow_control.hpp"
#include "gcs/wire.hpp"

namespace dbsm::gcs {

class reliable_mcast {
 public:
  /// Complete application message, delivered in per-sender order.
  /// `last_dgram` is the sequence number of its final fragment (used by
  /// view-change cuts).
  using app_msg_fn =
      std::function<void(node_id sender, std::uint64_t app_seq,
                         util::shared_bytes payload, std::uint64_t last_dgram)>;

  reliable_mcast(csrt::env& env, group_config cfg,
                 std::vector<node_id> members);
  ~reliable_mcast();  // cancels all armed timers (safe mid-run teardown)

  reliable_mcast(const reliable_mcast&) = delete;
  reliable_mcast& operator=(const reliable_mcast&) = delete;

  void set_app_handler(app_msg_fn fn) { app_handler_ = std::move(fn); }
  void set_view_id(std::uint32_t id) { view_id_ = id; }

  /// Datagrams (and NAKs) stamped with a view id below this are dropped.
  /// Raised only when the stack is rebuilt at a view merge: streams restart
  /// from zero there, so a stale in-flight datagram of the previous epoch
  /// must not be mistaken for new-stream traffic. 0 (the default) accepts
  /// everything — the historical behavior.
  void set_min_accept_view(std::uint32_t id) { min_accept_view_ = id; }

  /// Evidence of `sender`'s send-stream high water (heartbeat piggyback,
  /// recovery mode): reveals datagrams this node never saw even when no
  /// later traffic arrives to expose the gap, and NAKs for them.
  void note_sender_high(node_id sender, std::uint64_t high);

  /// Own send-stream high water (advertised in recovery-mode heartbeats).
  std::uint64_t sent_high() const { return my_dgram_seq_; }

  /// Application messages accepted by broadcast() but not yet covered by
  /// `cut_self` (this node's flush cut): they never reached the other
  /// members, and a view-merge rebuild would otherwise drop them. The
  /// caller re-broadcasts them through the fresh stack, in order.
  std::vector<util::shared_bytes> unflushed_app_msgs(
      std::uint64_t cut_self) const;

  /// Reliably multicasts an application message (must run as real code).
  /// The local copy is delivered immediately.
  void broadcast(util::shared_bytes payload);

  /// Datagram inputs (dispatched by the group facade).
  void on_data(const data_msg& m, const util::shared_bytes& raw);
  void on_nak(const nak_msg& m);

  /// Per-sender contiguously received prefixes, aligned with members()
  /// (own stream: last assigned sequence number).
  std::vector<std::uint64_t> prefixes() const;

  /// Garbage-collects buffers up to the per-sender stable prefixes and
  /// unblocks transmission.
  void collect_garbage(const std::vector<std::uint64_t>& stable);

  // --- view-change support ---
  void stop_sending();
  void resume_sending();

  /// Drives recovery until prefixes reach `cut`; missing datagrams are
  /// requested from `sources` (one serving member per old-view sender).
  /// `done` fires once every prefix reached its cut.
  void ensure_up_to(std::vector<std::uint64_t> cut,
                    std::vector<node_id> sources, std::function<void()> done);
  void cancel_flush();

  /// Installs a new membership (a subset of the old); state of removed
  /// senders is truncated at the agreed cut.
  void install_view(const std::vector<node_id>& new_members);

  const std::vector<node_id>& members() const { return members_; }

  struct stats {
    std::uint64_t app_msgs_sent = 0;
    std::uint64_t app_msgs_delivered = 0;
    std::uint64_t dgrams_sent = 0;
    std::uint64_t naks_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t blocked_episodes = 0;
    sim_duration blocked_time = 0;
  };
  const stats& get_stats() const { return stats_; }
  std::size_t quota_used() const { return quota_.used(); }
  std::size_t tx_backlog() const { return tx_queue_.size(); }
  bool blocked() const { return blocked_; }

 private:
  struct out_entry {
    util::shared_bytes raw;
    bool sent = false;
  };

  struct sender_state {
    std::uint64_t prefix = 0;    // contiguous received
    std::uint64_t max_seen = 0;
    std::map<std::uint64_t, data_msg> ooo;  // received, above the prefix
    std::map<std::uint64_t, util::shared_bytes> retention;  // raw, unstable
    // In-order reassembly of the current fragmented message.
    std::vector<util::shared_bytes> partial;
    std::uint64_t partial_app_seq = 0;
    csrt::timer_id nak_timer = 0;
    sim_duration nak_interval = 0;
  };

  std::size_t member_index(node_id n) const;
  void pump_tx();
  void pump_retx();
  void advance_prefix(node_id sender, sender_state& st);
  void deliver_fragment(node_id sender, sender_state& st, const data_msg& m);
  void arm_nak(node_id sender, sender_state& st);
  void nak_fire(node_id sender);
  void check_flush_done();
  void flush_fire();

  csrt::env& env_;
  group_config cfg_;
  std::vector<node_id> members_;
  std::uint32_t view_id_ = 1;
  std::uint32_t min_accept_view_ = 0;
  app_msg_fn app_handler_;

  // Send side.
  std::uint64_t my_dgram_seq_ = 0;
  std::uint64_t my_app_seq_ = 0;
  std::map<std::uint64_t, out_entry> send_buffer_;
  /// app_seq -> {whole payload, last fragment's dgram_seq}; consulted only
  /// at a view-merge rebuild (unflushed_app_msgs), pruned with the send
  /// buffer.
  std::map<std::uint64_t, std::pair<util::shared_bytes, std::uint64_t>>
      pending_app_;
  std::deque<std::uint64_t> tx_queue_;
  std::deque<std::pair<node_id, util::shared_bytes>> retx_queue_;
  token_bucket bucket_;
  buffer_quota quota_;
  bool sending_allowed_ = true;
  bool blocked_ = false;
  sim_time blocked_since_ = 0;
  csrt::timer_id rate_timer_ = 0;

  // Receive side.
  std::unordered_map<node_id, sender_state> senders_;

  // Flush state.
  bool flushing_ = false;
  std::vector<std::uint64_t> flush_cut_;
  std::vector<node_id> flush_sources_;
  std::vector<node_id> flush_old_members_;
  std::function<void()> flush_done_;
  csrt::timer_id flush_timer_ = 0;

  stats stats_;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_RMCAST_HPP
