#include "gcs/wire.hpp"

#include "util/check.hpp"

namespace dbsm::gcs {

namespace {

void put_header(util::buffer_writer& w, const header& h) {
  w.put_u8(static_cast<std::uint8_t>(h.type));
  w.put_u32(h.view_id);
  w.put_u32(h.sender);
}

header get_header(util::buffer_reader& r) {
  header h;
  h.type = static_cast<msg_type>(r.get_u8());
  h.view_id = r.get_u32();
  h.sender = r.get_u32();
  return h;
}

void put_u64_vec(util::buffer_writer& w, const std::vector<std::uint64_t>& v) {
  w.put_u16(static_cast<std::uint16_t>(v.size()));
  for (std::uint64_t x : v) w.put_u64(x);
}

std::vector<std::uint64_t> get_u64_vec(util::buffer_reader& r) {
  const std::uint16_t n = r.get_u16();
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) v.push_back(r.get_u64());
  return v;
}

void put_node_vec(util::buffer_writer& w, const std::vector<node_id>& v) {
  w.put_u16(static_cast<std::uint16_t>(v.size()));
  for (node_id x : v) w.put_u32(x);
}

std::vector<node_id> get_node_vec(util::buffer_reader& r) {
  const std::uint16_t n = r.get_u16();
  std::vector<node_id> v;
  v.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) v.push_back(r.get_u32());
  return v;
}

util::buffer_reader open(const util::shared_bytes& raw, msg_type expect,
                         header& h) {
  util::buffer_reader r(raw);
  h = get_header(r);
  DBSM_CHECK_MSG(h.type == expect,
                 "wire type mismatch: got " << static_cast<int>(h.type));
  return r;
}

}  // namespace

util::shared_bytes encode(const data_msg& m) {
  DBSM_CHECK(m.payload != nullptr);
  util::buffer_writer w(32 + m.payload->size());
  put_header(w, m.hdr);
  w.put_u64(m.dgram_seq);
  w.put_u64(m.app_seq);
  w.put_u16(m.frag_idx);
  w.put_u16(m.frag_cnt);
  w.put_u32(static_cast<std::uint32_t>(m.payload->size()));
  w.put_bytes(m.payload->data(), m.payload->size());
  return w.take();
}

data_msg decode_data(const util::shared_bytes& raw) {
  data_msg m;
  auto r = open(raw, msg_type::data, m.hdr);
  m.dgram_seq = r.get_u64();
  m.app_seq = r.get_u64();
  m.frag_idx = r.get_u16();
  m.frag_cnt = r.get_u16();
  const std::uint32_t len = r.get_u32();
  auto payload = std::make_shared<util::bytes>(len);
  r.get_bytes(payload->data(), len);
  m.payload = std::move(payload);
  return m;
}

util::shared_bytes encode(const nak_msg& m) {
  util::buffer_writer w(16 + 8 * m.missing.size());
  put_header(w, m.hdr);
  w.put_u32(m.target_sender);
  put_u64_vec(w, m.missing);
  return w.take();
}

nak_msg decode_nak(const util::shared_bytes& raw) {
  nak_msg m;
  auto r = open(raw, msg_type::nak, m.hdr);
  m.target_sender = r.get_u32();
  m.missing = get_u64_vec(r);
  return m;
}

util::shared_bytes encode(const stab_msg& m) {
  DBSM_CHECK(m.stable.size() == m.min_received.size());
  util::buffer_writer w(24 + 16 * m.stable.size());
  put_header(w, m.hdr);
  w.put_u32(m.round);
  w.put_u32(m.voters_bitmap);
  put_u64_vec(w, m.stable);
  put_u64_vec(w, m.min_received);
  return w.take();
}

stab_msg decode_stab(const util::shared_bytes& raw) {
  stab_msg m;
  auto r = open(raw, msg_type::stab, m.hdr);
  m.round = r.get_u32();
  m.voters_bitmap = r.get_u32();
  m.stable = get_u64_vec(r);
  m.min_received = get_u64_vec(r);
  DBSM_CHECK(m.stable.size() == m.min_received.size());
  return m;
}

util::shared_bytes encode(const heartbeat_msg& m) {
  util::buffer_writer w(24);
  put_header(w, m.hdr);
  // The high-water field travels only when recovery is enabled (the caller
  // leaves it empty otherwise), keeping the historical wire size — and the
  // serialization timing of recovery-off runs — unchanged.
  if (m.sent_high) w.put_u64(*m.sent_high);
  return w.take();
}

heartbeat_msg decode_heartbeat(const util::shared_bytes& raw) {
  heartbeat_msg m;
  auto r = open(raw, msg_type::heartbeat, m.hdr);
  if (r.remaining() >= 8) m.sent_high = r.get_u64();
  return m;
}

util::shared_bytes encode(const view_propose_msg& m) {
  util::buffer_writer w(32);
  put_header(w, m.hdr);
  w.put_u32(m.new_view_id);
  put_node_vec(w, m.proposed_members);
  return w.take();
}

view_propose_msg decode_view_propose(const util::shared_bytes& raw) {
  view_propose_msg m;
  auto r = open(raw, msg_type::view_propose, m.hdr);
  m.new_view_id = r.get_u32();
  m.proposed_members = get_node_vec(r);
  return m;
}

util::shared_bytes encode(const view_state_msg& m) {
  util::buffer_writer w(32);
  put_header(w, m.hdr);
  w.put_u32(m.new_view_id);
  put_u64_vec(w, m.prefixes);
  return w.take();
}

view_state_msg decode_view_state(const util::shared_bytes& raw) {
  view_state_msg m;
  auto r = open(raw, msg_type::view_state, m.hdr);
  m.new_view_id = r.get_u32();
  m.prefixes = get_u64_vec(r);
  return m;
}

util::shared_bytes encode(const view_cut_msg& m) {
  util::buffer_writer w(64);
  put_header(w, m.hdr);
  w.put_u32(m.new_view_id);
  put_node_vec(w, m.new_members);
  put_u64_vec(w, m.cut);
  put_node_vec(w, m.sources);
  return w.take();
}

view_cut_msg decode_view_cut(const util::shared_bytes& raw) {
  view_cut_msg m;
  auto r = open(raw, msg_type::view_cut, m.hdr);
  m.new_view_id = r.get_u32();
  m.new_members = get_node_vec(r);
  m.cut = get_u64_vec(r);
  m.sources = get_node_vec(r);
  DBSM_CHECK(m.cut.size() == m.sources.size());
  return m;
}

util::shared_bytes encode(const view_flush_ok_msg& m) {
  util::buffer_writer w(16);
  put_header(w, m.hdr);
  w.put_u32(m.new_view_id);
  return w.take();
}

view_flush_ok_msg decode_view_flush_ok(const util::shared_bytes& raw) {
  view_flush_ok_msg m;
  auto r = open(raw, msg_type::view_flush_ok, m.hdr);
  m.new_view_id = r.get_u32();
  return m;
}

util::shared_bytes encode(const view_install_msg& m) {
  util::buffer_writer w(64);
  put_header(w, m.hdr);
  w.put_u32(m.new_view_id);
  put_node_vec(w, m.new_members);
  put_u64_vec(w, m.cut);
  return w.take();
}

view_install_msg decode_view_install(const util::shared_bytes& raw) {
  view_install_msg m;
  auto r = open(raw, msg_type::view_install, m.hdr);
  m.new_view_id = r.get_u32();
  m.new_members = get_node_vec(r);
  m.cut = get_u64_vec(r);
  return m;
}

util::shared_bytes encode(const join_request_msg& m) {
  util::buffer_writer w(24);
  put_header(w, m.hdr);
  w.put_u64(m.incarnation);
  return w.take();
}

join_request_msg decode_join_request(const util::shared_bytes& raw) {
  join_request_msg m;
  auto r = open(raw, msg_type::join_request, m.hdr);
  m.incarnation = r.get_u64();
  return m;
}

util::shared_bytes encode(const join_chunk_msg& m) {
  DBSM_CHECK(m.payload != nullptr);
  util::buffer_writer w(40 + m.payload->size());
  put_header(w, m.hdr);
  w.put_u64(m.incarnation);
  w.put_u64(m.snap_pos);
  w.put_u32(m.chunk_idx);
  w.put_u32(m.chunk_cnt);
  w.put_u32(static_cast<std::uint32_t>(m.payload->size()));
  w.put_bytes(m.payload->data(), m.payload->size());
  return w.take();
}

join_chunk_msg decode_join_chunk(const util::shared_bytes& raw) {
  join_chunk_msg m;
  auto r = open(raw, msg_type::join_chunk, m.hdr);
  m.incarnation = r.get_u64();
  m.snap_pos = r.get_u64();
  m.chunk_idx = r.get_u32();
  m.chunk_cnt = r.get_u32();
  const std::uint32_t len = r.get_u32();
  auto payload = std::make_shared<util::bytes>(len);
  r.get_bytes(payload->data(), len);
  m.payload = std::move(payload);
  return m;
}

util::shared_bytes encode(const join_chunk_ack_msg& m) {
  util::buffer_writer w(24);
  put_header(w, m.hdr);
  w.put_u64(m.incarnation);
  w.put_u32(m.chunk_idx);
  return w.take();
}

join_chunk_ack_msg decode_join_chunk_ack(const util::shared_bytes& raw) {
  join_chunk_ack_msg m;
  auto r = open(raw, msg_type::join_chunk_ack, m.hdr);
  m.incarnation = r.get_u64();
  m.chunk_idx = r.get_u32();
  return m;
}

util::shared_bytes encode(const join_fwd_msg& m) {
  DBSM_CHECK(m.payload != nullptr);
  util::buffer_writer w(40 + m.payload->size());
  put_header(w, m.hdr);
  w.put_u64(m.incarnation);
  w.put_u64(m.global_seq);
  w.put_u32(m.orig_sender);
  w.put_u32(static_cast<std::uint32_t>(m.payload->size()));
  w.put_bytes(m.payload->data(), m.payload->size());
  return w.take();
}

join_fwd_msg decode_join_fwd(const util::shared_bytes& raw) {
  join_fwd_msg m;
  auto r = open(raw, msg_type::join_fwd, m.hdr);
  m.incarnation = r.get_u64();
  m.global_seq = r.get_u64();
  m.orig_sender = r.get_u32();
  const std::uint32_t len = r.get_u32();
  auto payload = std::make_shared<util::bytes>(len);
  r.get_bytes(payload->data(), len);
  m.payload = std::move(payload);
  return m;
}

util::shared_bytes encode(const join_fwd_ack_msg& m) {
  util::buffer_writer w(24);
  put_header(w, m.hdr);
  w.put_u64(m.incarnation);
  w.put_u64(m.replayed_to);
  return w.take();
}

join_fwd_ack_msg decode_join_fwd_ack(const util::shared_bytes& raw) {
  join_fwd_ack_msg m;
  auto r = open(raw, msg_type::join_fwd_ack, m.hdr);
  m.incarnation = r.get_u64();
  m.replayed_to = r.get_u64();
  return m;
}

util::shared_bytes encode(const join_commit_msg& m) {
  util::buffer_writer w(48);
  put_header(w, m.hdr);
  w.put_u64(m.incarnation);
  w.put_u64(m.commit_seq);
  w.put_u32(m.view_id);
  put_node_vec(w, m.members);
  return w.take();
}

join_commit_msg decode_join_commit(const util::shared_bytes& raw) {
  join_commit_msg m;
  auto r = open(raw, msg_type::join_commit, m.hdr);
  m.incarnation = r.get_u64();
  m.commit_seq = r.get_u64();
  m.view_id = r.get_u32();
  m.members = get_node_vec(r);
  return m;
}

util::shared_bytes encode(const join_done_msg& m) {
  util::buffer_writer w(24);
  put_header(w, m.hdr);
  w.put_u64(m.incarnation);
  return w.take();
}

join_done_msg decode_join_done(const util::shared_bytes& raw) {
  join_done_msg m;
  auto r = open(raw, msg_type::join_done, m.hdr);
  m.incarnation = r.get_u64();
  return m;
}

util::shared_bytes encode(const token_msg& m) {
  util::buffer_writer w(32);
  put_header(w, m.hdr);
  w.put_u64(m.token_seq);
  w.put_u64(m.next_assign);
  w.put_u32(m.holder);
  return w.take();
}

token_msg decode_token(const util::shared_bytes& raw) {
  token_msg m;
  auto r = open(raw, msg_type::token, m.hdr);
  m.token_seq = r.get_u64();
  m.next_assign = r.get_u64();
  m.holder = r.get_u32();
  return m;
}

header decode_header(const util::shared_bytes& raw) {
  util::buffer_reader r(raw);
  return get_header(r);
}

}  // namespace dbsm::gcs
