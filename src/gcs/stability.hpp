// Scalable stability detection (§3.4), after Guo's gossip scheme.
//
// Works in asynchronous rounds. Each process gossips:
//   S — per-sender sequence numbers known stable (received by everyone),
//   W — the set of processes that voted in the current round,
//   M — per-sender minimum of the *contiguously received* prefixes over
//       the voters of the round.
// When W covers all operational processes, S advances to M and a new round
// starts. Only contiguous prefixes enter M — the property that makes
// garbage collection collapse under independent random loss (§5.3).
//
// Pure state machine: the group drives it from timers and feeds it
// received gossip; it never touches the env directly (unit-testable).
#ifndef DBSM_GCS_STABILITY_HPP
#define DBSM_GCS_STABILITY_HPP

#include <cstdint>
#include <vector>

#include "gcs/wire.hpp"
#include "util/types.hpp"

namespace dbsm::gcs {

class stability_tracker {
 public:
  /// `members` sorted; `initial_stable` empty or aligned with members.
  stability_tracker(std::vector<node_id> members, node_id self,
                    std::vector<std::uint64_t> initial_stable = {});

  /// Updates this process's contiguously-received prefix per sender
  /// (own stream: highest assigned sequence number).
  void set_local_prefixes(std::vector<std::uint64_t> prefixes);

  /// Incorporates a peer's gossip. Returns true if S advanced.
  bool merge(const stab_msg& m);

  /// Produces this process's gossip for the current round (voting first).
  stab_msg make_gossip(std::uint32_t view_id) const;

  /// Per-sender stable prefix (aligned with the member list).
  const std::vector<std::uint64_t>& stable() const { return stable_; }

  std::uint32_t round() const { return round_; }
  std::uint64_t rounds_completed() const { return completed_; }
  const std::vector<node_id>& members() const { return members_; }

 private:
  void vote();
  /// Completes the round if every member voted; returns true if S advanced.
  bool try_complete();

  std::vector<node_id> members_;
  node_id self_;
  std::size_t self_index_ = 0;
  std::uint32_t all_voted_mask_ = 0;

  std::vector<std::uint64_t> stable_;      // S
  std::vector<std::uint64_t> min_recv_;    // M (current round)
  std::uint32_t voters_ = 0;               // W (current round)
  std::uint32_t round_ = 0;
  std::vector<std::uint64_t> local_prefix_;
  std::uint64_t completed_ = 0;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_STABILITY_HPP
