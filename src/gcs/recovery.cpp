#include "gcs/recovery.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dbsm::gcs {

recovery::recovery(csrt::env& env, const group_config& cfg, hooks h)
    : env_(env), cfg_(cfg), hooks_(std::move(h)) {
  DBSM_CHECK(cfg_.join_chunk_bytes > 0);
  DBSM_CHECK(cfg_.join_retry > 0);
  DBSM_CHECK(cfg_.join_timeout > cfg_.join_retry);
  DBSM_CHECK(cfg_.join_fwd_window > 0);
}

recovery::~recovery() {
  if (donor_timer_ != 0) env_.cancel_timer(donor_timer_);
  if (joiner_timer_ != 0) env_.cancel_timer(joiner_timer_);
}

// ------------------------------------------------------------- donor side

void recovery::on_join_request(const join_request_msg& m) {
  if (joining_) return;                 // a joiner cannot donate
  if (!hooks_.is_coordinator()) return; // only the primary's coordinator
  const node_id joiner = m.hdr.sender;
  if (donor_) {
    if (donor_->joiner != joiner) return;  // busy; that joiner keeps retrying
    if (m.incarnation == donor_->incarnation) {
      // Duplicate request (our last chunk may have been lost): nudge.
      if (donor_->ph == donor_state::phase::transfer)
        send_chunk(donor_->next_chunk);
      return;
    }
    if (m.incarnation < donor_->incarnation) return;  // stale attempt
    // The joiner restarted its attempt; drop ours and serve afresh.
  }
  donor_state d;
  d.joiner = joiner;
  d.incarnation = m.incarnation;
  // Snapshot atomically with the delivery position: both reads happen
  // between deliveries (one handler job), so the blob captures exactly
  // the state after delivery `snap_pos`.
  d.snap_pos = hooks_.delivered();
  d.blob = hooks_.take_snapshot(joiner);
  DBSM_CHECK(d.blob != nullptr);
  snapshot_bytes_donated_ += d.blob->size();
  d.chunks = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>((d.blob->size() + cfg_.join_chunk_bytes -
                                     1) /
                                    cfg_.join_chunk_bytes));
  d.acked = d.snap_pos;
  d.last_progress = env_.now();
  donor_ = std::move(d);
  DBSM_LOG(info, "gcs.recovery",
           "node " << env_.self() << " donates state to joiner " << joiner
                   << " at position " << donor_->snap_pos << " ("
                   << donor_->blob->size() << " bytes, " << donor_->chunks
                   << " chunks)");
  send_chunk(0);
  arm_donor_tick();
}

void recovery::send_chunk(std::uint32_t idx) {
  DBSM_CHECK(donor_ && idx < donor_->chunks);
  const std::size_t lo = static_cast<std::size_t>(idx) * cfg_.join_chunk_bytes;
  const std::size_t hi =
      std::min(donor_->blob->size(), lo + cfg_.join_chunk_bytes);
  join_chunk_msg m;
  m.hdr = {msg_type::join_chunk, 0, env_.self()};
  m.incarnation = donor_->incarnation;
  m.snap_pos = donor_->snap_pos;
  m.chunk_idx = idx;
  m.chunk_cnt = donor_->chunks;
  m.payload = std::make_shared<const util::bytes>(donor_->blob->begin() + lo,
                                                  donor_->blob->begin() + hi);
  chunk_bytes_sent_ += m.payload->size();
  hooks_.send(donor_->joiner, encode(m));
}

void recovery::on_chunk_ack(const join_chunk_ack_msg& m) {
  if (!donor_ || m.hdr.sender != donor_->joiner ||
      m.incarnation != donor_->incarnation)
    return;
  if (donor_->ph != donor_state::phase::transfer) return;
  if (m.chunk_idx != donor_->next_chunk) return;  // stale ack
  donor_->last_progress = env_.now();
  if (++donor_->next_chunk < donor_->chunks) {
    send_chunk(donor_->next_chunk);
    return;
  }
  donor_->ph = donor_state::phase::catchup;
  send_fwd_window();
}

void recovery::on_local_deliver(node_id sender, std::uint64_t global_seq,
                                util::shared_bytes payload) {
  if (!donor_) return;
  if (global_seq <= donor_->snap_pos) return;  // inside the snapshot
  if (donor_->ph == donor_state::phase::committing &&
      global_seq > donor_->commit_seq)
    return;  // new-epoch traffic the joiner receives as a member
  donor_->fwd.push_back({global_seq, sender, std::move(payload)});
  if (donor_->ph != donor_state::phase::transfer &&
      global_seq <= donor_->acked + cfg_.join_fwd_window) {
    const fwd_entry& e = donor_->fwd.back();
    join_fwd_msg m;
    m.hdr = {msg_type::join_fwd, 0, env_.self()};
    m.incarnation = donor_->incarnation;
    m.global_seq = e.seq;
    m.orig_sender = e.sender;
    m.payload = e.payload;
    hooks_.send(donor_->joiner, encode(m));
  }
}

void recovery::send_fwd_window() {
  DBSM_CHECK(donor_.has_value());
  const std::uint64_t hi = donor_->acked + cfg_.join_fwd_window;
  for (const fwd_entry& e : donor_->fwd) {
    if (e.seq <= donor_->acked) continue;
    if (e.seq > hi) break;
    join_fwd_msg m;
    m.hdr = {msg_type::join_fwd, 0, env_.self()};
    m.incarnation = donor_->incarnation;
    m.global_seq = e.seq;
    m.orig_sender = e.sender;
    m.payload = e.payload;
    hooks_.send(donor_->joiner, encode(m));
  }
}

void recovery::on_fwd_ack(const join_fwd_ack_msg& m) {
  if (!donor_ || m.hdr.sender != donor_->joiner ||
      m.incarnation != donor_->incarnation)
    return;
  if (m.replayed_to > donor_->acked) {
    donor_->acked = m.replayed_to;
    donor_->last_progress = env_.now();
    while (!donor_->fwd.empty() && donor_->fwd.front().seq <= donor_->acked)
      donor_->fwd.pop_front();
  }
}

void recovery::on_view_installed(const view& v, std::uint64_t delivered) {
  if (!donor_) return;
  if (donor_->ph != donor_state::phase::catchup) return;
  if (!v.contains(donor_->joiner)) return;  // unrelated change; re-admit later
  // The merge is in: everything up to `delivered` was flushed and the
  // streams restarted. Freeze the handover position and tell the joiner.
  donor_->ph = donor_state::phase::committing;
  donor_->commit_seq = delivered;
  donor_->merged = v;
  donor_->last_progress = env_.now();
  DBSM_LOG(info, "gcs.recovery",
           "node " << env_.self() << " merged joiner " << donor_->joiner
                   << " into view " << v.id << " at position " << delivered);
  send_commit();
}

void recovery::send_commit() {
  DBSM_CHECK(donor_.has_value());
  join_commit_msg m;
  m.hdr = {msg_type::join_commit, donor_->merged.id, env_.self()};
  m.incarnation = donor_->incarnation;
  m.commit_seq = donor_->commit_seq;
  m.view_id = donor_->merged.id;
  m.members = donor_->merged.members;
  hooks_.send(donor_->joiner, encode(m));
}

void recovery::on_done(const join_done_msg& m) {
  if (!donor_ || m.hdr.sender != donor_->joiner ||
      m.incarnation != donor_->incarnation)
    return;
  DBSM_LOG(info, "gcs.recovery",
           "node " << env_.self() << " completed join of " << donor_->joiner);
  donor_.reset();
  ++joins_served_;
}

void recovery::abandon_join(const char* why) {
  DBSM_CHECK(donor_.has_value());
  DBSM_LOG(info, "gcs.recovery",
           "node " << env_.self() << " abandons join of " << donor_->joiner
                   << ": " << why);
  donor_.reset();
}

void recovery::arm_donor_tick() {
  if (donor_timer_ != 0) return;
  donor_timer_ = env_.set_timer(cfg_.join_retry, [this] {
    donor_timer_ = 0;
    donor_tick();
  });
}

void recovery::donor_tick() {
  if (!donor_) return;
  if (env_.now() - donor_->last_progress > cfg_.join_timeout) {
    // Second failure during transfer: the joiner went silent. Forget it —
    // a fresh recovery restarts the protocol cleanly.
    abandon_join("no progress from joiner");
    return;
  }
  switch (donor_->ph) {
    case donor_state::phase::transfer:
      send_chunk(donor_->next_chunk);
      break;
    case donor_state::phase::catchup:
      send_fwd_window();
      // Caught up close enough? Ask membership for the view merge. The
      // request is repeated every tick until an install includes the
      // joiner (membership ignores it while another change runs).
      if (hooks_.delivered() - donor_->acked <= cfg_.join_merge_lag &&
          hooks_.is_coordinator() && !hooks_.membership_changing()) {
        hooks_.admit(donor_->joiner);
      }
      break;
    case donor_state::phase::committing:
      // Forwards lost around the install must still be retransmitted —
      // the joiner cannot reach commit_seq without them (the buffer only
      // holds seqs up to commit_seq in this phase).
      send_fwd_window();
      send_commit();
      break;
  }
  arm_donor_tick();
}

// ------------------------------------------------------------ joiner side

void recovery::begin_join() {
  joining_ = true;
  incarnation_ = static_cast<std::uint64_t>(env_.now());
  chunks_.clear();
  chunks_have_ = 0;
  snapshot_installed_ = false;
  replay_pos_ = 0;
  donor_id_ = invalid_node;
  fwd_buf_.clear();
  commit_ready_ = false;
  note_progress();
  DBSM_LOG(info, "gcs.recovery",
           "node " << env_.self() << " requests rejoin (incarnation "
                   << incarnation_ << ")");
  join_request_msg m;
  m.hdr = {msg_type::join_request, 0, env_.self()};
  m.incarnation = incarnation_;
  hooks_.mcast(encode(m));
  arm_joiner_tick();
}

void recovery::restart_join(const char* why) {
  DBSM_LOG(info, "gcs.recovery",
           "node " << env_.self() << " restarts join attempt: " << why);
  begin_join();
}

void recovery::arm_joiner_tick() {
  if (joiner_timer_ != 0) return;
  joiner_timer_ = env_.set_timer(cfg_.join_retry * 4, [this] {
    joiner_timer_ = 0;
    joiner_tick();
  });
}

void recovery::joiner_tick() {
  if (!joining_) return;
  if (env_.now() - last_progress_ > cfg_.join_timeout) {
    // The donor went silent (it may have crashed, or our request/either
    // side's traffic was lost): restart against the current coordinator
    // with a fresh incarnation — stale chunks can never mix in.
    restart_join("no progress from donor");
    return;
  }
  arm_joiner_tick();
}

void recovery::on_chunk(const join_chunk_msg& m) {
  if (!joining_ || m.incarnation != incarnation_) return;
  // One donor per attempt: the first server of this incarnation is
  // pinned; a second responder (e.g. a stalled ex-coordinator that still
  // thinks it leads) must not interleave a different snapshot.
  if (donor_id_ != invalid_node && m.hdr.sender != donor_id_) return;
  donor_id_ = m.hdr.sender;
  note_progress();
  if (snapshot_installed_) {
    // Duplicate of an already-assembled snapshot (our ack was lost):
    // re-ack without touching the replay position.
    join_chunk_ack_msg ack;
    ack.hdr = {msg_type::join_chunk_ack, 0, env_.self()};
    ack.incarnation = incarnation_;
    ack.chunk_idx = m.chunk_idx;
    hooks_.send(donor_id_, encode(ack));
    return;
  }
  if (chunks_.empty()) {
    DBSM_CHECK(m.chunk_cnt >= 1);
    chunks_.assign(m.chunk_cnt, nullptr);
    replay_pos_ = m.snap_pos;  // provisional until the snapshot installs
  }
  if (m.chunk_idx < chunks_.size() && chunks_[m.chunk_idx] == nullptr) {
    chunks_[m.chunk_idx] = m.payload;
    ++chunks_have_;
  }
  join_chunk_ack_msg ack;
  ack.hdr = {msg_type::join_chunk_ack, 0, env_.self()};
  ack.incarnation = incarnation_;
  ack.chunk_idx = m.chunk_idx;
  hooks_.send(donor_id_, encode(ack));

  if (chunks_have_ == chunks_.size()) {
    auto blob = std::make_shared<util::bytes>();
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c->size();
    blob->reserve(total);
    for (const auto& c : chunks_) blob->insert(blob->end(), c->begin(),
                                               c->end());
    chunks_.clear();
    chunks_have_ = 0;
    hooks_.install_snapshot(std::move(blob));
    snapshot_installed_ = true;
    DBSM_LOG(info, "gcs.recovery",
             "node " << env_.self() << " installed snapshot at position "
                     << replay_pos_);
    drain_replay();
    send_fwd_ack();
    maybe_finish_join();
  }
}

void recovery::on_fwd(const join_fwd_msg& m) {
  if (!joining_ || m.incarnation != incarnation_) return;
  if (donor_id_ != invalid_node && m.hdr.sender != donor_id_) return;
  donor_id_ = m.hdr.sender;
  note_progress();
  if (m.global_seq > replay_pos_)
    fwd_buf_.emplace(m.global_seq,
                     fwd_entry{m.global_seq, m.orig_sender, m.payload});
  if (snapshot_installed_) {
    drain_replay();
    send_fwd_ack();
    maybe_finish_join();
  }
}

void recovery::drain_replay() {
  DBSM_CHECK(snapshot_installed_);
  while (!fwd_buf_.empty()) {
    auto it = fwd_buf_.begin();
    if (it->first <= replay_pos_) {
      fwd_buf_.erase(it);  // duplicate from before the snapshot landed
      continue;
    }
    if (it->first != replay_pos_ + 1) break;  // gap: wait for go-back-N
    fwd_entry e = std::move(it->second);
    fwd_buf_.erase(it);
    ++replay_pos_;
    hooks_.replay(e.sender, e.seq, std::move(e.payload));
  }
}

void recovery::send_fwd_ack() {
  if (donor_id_ == invalid_node) return;
  join_fwd_ack_msg m;
  m.hdr = {msg_type::join_fwd_ack, 0, env_.self()};
  m.incarnation = incarnation_;
  m.replayed_to = replay_pos_;
  hooks_.send(donor_id_, encode(m));
}

void recovery::on_commit(const join_commit_msg& m) {
  if (!joining_ || m.incarnation != incarnation_) return;
  if (donor_id_ != invalid_node && m.hdr.sender != donor_id_) return;
  donor_id_ = m.hdr.sender;
  note_progress();
  commit_view_.id = m.view_id;
  commit_view_.members = m.members;
  std::sort(commit_view_.members.begin(), commit_view_.members.end());
  commit_seq_ = m.commit_seq;
  commit_ready_ = true;
  maybe_finish_join();
}

void recovery::maybe_finish_join() {
  if (!commit_ready_ || !snapshot_installed_) return;
  DBSM_CHECK_MSG(replay_pos_ <= commit_seq_,
                 "joiner replayed past the merge position");
  if (replay_pos_ < commit_seq_) return;  // keep replaying
  joining_ = false;
  if (joiner_timer_ != 0) {
    env_.cancel_timer(joiner_timer_);
    joiner_timer_ = 0;
  }
  join_done_msg done;
  done.hdr = {msg_type::join_done, commit_view_.id, env_.self()};
  done.incarnation = incarnation_;
  hooks_.send(donor_id_, encode(done));
  DBSM_LOG(info, "gcs.recovery",
           "node " << env_.self() << " rejoins in view " << commit_view_.id
                   << " at position " << commit_seq_);
  hooks_.install_merged(commit_view_, commit_seq_);
}

}  // namespace dbsm::gcs
