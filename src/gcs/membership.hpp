// View-synchronous membership (§3.4): crash detection triggers a
// coordinator-driven view change — a simple consensus in the style the
// paper cites (Schiper & Sandoz): propose, collect flush states, agree on
// a delivery cut, flush, install. "View synchrony uses a consensus
// protocol and imposes a negligible overhead during stable operation."
//
// The protocol tolerates lost control messages (periodic retry with fresh
// view ids) and coordinator crashes (takeover by the next lowest id).
// Membership shrinks on suspicion (crash-stop, as in the paper's
// experiments) and — when recovery is enabled — grows again through
// admit(): the recovery layer (gcs/recovery.hpp) catches a rejoining site
// up by state transfer, then asks the coordinator to merge it into the
// next view; the flush consensus still runs among the current members
// only. Only a primary partition — a majority of the current view — may
// install the next view: a minority side stalls with sends stopped rather
// than split-braining the committed sequence.
#ifndef DBSM_GCS_MEMBERSHIP_HPP
#define DBSM_GCS_MEMBERSHIP_HPP

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "csrt/env.hpp"
#include "gcs/config.hpp"
#include "gcs/view.hpp"
#include "gcs/wire.hpp"

namespace dbsm::gcs {

class membership {
 public:
  struct hooks {
    /// Pause new application sends (reliability keeps running).
    std::function<void()> stop_sends;
    /// Pause total-order assignment creation until the next install. The
    /// flush cut is computed from the prefixes reported below; assignments
    /// minted after that report would self-deliver at the sequencer only
    /// (sends are stopped) and break view synchrony — the sequencer must
    /// go quiescent for the duration of the change.
    std::function<void()> quiesce_order;
    /// Per-sender contiguous receive prefixes, aligned with the current
    /// (old) view's member list.
    std::function<std::vector<std::uint64_t>()> get_prefixes;
    /// Recover every stream up to `cut` (requesting from `sources`); call
    /// `done` when reached.
    std::function<void(std::vector<std::uint64_t> cut,
                       std::vector<node_id> sources,
                       std::function<void()> done)>
        ensure_cut;
    std::function<void()> cancel_flush;
    /// Install the agreed view; `cut` is aligned with `old_members`.
    std::function<void(const view& v,
                       const std::vector<node_id>& old_members,
                       const std::vector<std::uint64_t>& cut)>
        install;
    /// This node saw a view install that excludes it. Delivery must stop:
    /// on a slow (not cut) link the group's stream keeps arriving, and an
    /// excluded node must not go on delivering in a view it is not part
    /// of. Fires once, at the moment of discovery.
    std::function<void()> excluded;
    /// Control-plane messaging (self-delivery handled by the caller).
    std::function<void(node_id, util::shared_bytes)> send;
    std::function<void(util::shared_bytes)> mcast;
  };

  membership(csrt::env& env, const group_config& cfg, view initial,
             hooks h);
  ~membership();  // cancels the retry timer (safe mid-run teardown)

  membership(const membership&) = delete;
  membership& operator=(const membership&) = delete;

  /// Failure-detector input; triggers / widens a view change.
  void suspect(node_id n);

  /// Coordinator-side view merge (membership recovery): include `joiner`
  /// in the next proposed view. The flush consensus still runs among the
  /// current members only — the joiner's catch-up is the recovery
  /// protocol's job, not the flush's. No-op while a change is in progress
  /// (the recovery layer re-requests until the joiner is in).
  void admit(node_id joiner);

  /// Joiner-side: adopt the merged view wholesale. It arrived through the
  /// join protocol, already agreed by the primary partition — there is
  /// nothing to flush here, and the caller rebuilds the streams itself
  /// (no install hook fires).
  void force_view(const view& v);

  bool changing() const { return changing_; }
  const view& current() const { return current_; }
  std::uint64_t view_changes() const { return view_changes_; }

  /// True after this node saw a view install that excluded it (asymmetric
  /// cut: inbound alive, outbound dead). An excluded node stalls — it may
  /// not coordinate, donate state transfers, or admit joiners, even
  /// though its stale current() still lists it first.
  bool excluded() const { return excluded_; }

  /// The ordering-control barrier (rotating token): true while accepting
  /// ordering control traffic would be unsafe — a change is mid-flush, or
  /// this node was excluded. See group::dispatch (msg_type::token).
  bool barrier_active() const;

  // Control-message dispatch (from the group facade).
  void on_propose(const view_propose_msg& m);
  void on_state(const view_state_msg& m);
  void on_cut(const view_cut_msg& m);
  void on_flush_ok(const view_flush_ok_msg& m);
  void on_install(const view_install_msg& m);

  /// Called with the header view id of every incoming message. Traffic
  /// tagged with a view this node never installed (and is not mid-flush
  /// toward) reveals a missed exclusion: a view only installs with every
  /// member's flush report, so a view this node did not participate in
  /// cannot include it. The install message itself is unreliable — a
  /// partitioned-off node that missed it would otherwise never learn it
  /// was voted out and keep extending its own branch forever.
  void on_foreign_view(std::uint32_t id);

 private:
  void discover_excluded(std::uint32_t view_id);
  std::vector<node_id> alive_members() const;
  /// Primary-partition rule: true iff `members` sites are a majority of
  /// the current view, i.e. allowed to form the next view.
  bool is_primary(std::size_t members) const;
  void start_change();
  void propose();
  void maybe_send_cut();
  void maybe_install();
  void arm_retry();
  void retry_fire();
  void finish_install(const view_install_msg& m);

  csrt::env& env_;
  const group_config& cfg_;
  hooks hooks_;

  view current_;
  std::set<node_id> suspected_;
  /// Rejoining sites to include in the next proposed view (admit()).
  std::set<node_id> join_candidates_;
  std::uint64_t view_changes_ = 0;
  bool excluded_ = false;

  // Change-in-progress state (member role).
  bool changing_ = false;
  std::uint32_t pending_view_ = 0;
  std::vector<node_id> pending_members_;
  node_id coordinator_ = invalid_node;
  bool member_flush_done_ = false;
  csrt::timer_id retry_timer_ = 0;

  // Coordinator role state.
  std::map<node_id, std::vector<std::uint64_t>> states_;
  std::set<node_id> flush_oks_;
  std::vector<std::uint64_t> cut_;
  std::vector<node_id> sources_;
  bool cut_sent_ = false;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_MEMBERSHIP_HPP
