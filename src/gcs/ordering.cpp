#include "gcs/ordering.hpp"

#include <algorithm>

#include "gcs/sequencer.hpp"
#include "gcs/token_order.hpp"
#include "util/check.hpp"

namespace dbsm::gcs {

const char* ordering_name(ordering_kind k) {
  switch (k) {
    case ordering_kind::fixed_sequencer:
      return "fixed_sequencer";
    case ordering_kind::rotating_token:
      return "rotating_token";
  }
  return "?";
}

util::shared_bytes encode_assignments(const std::vector<assignment>& as) {
  util::buffer_writer w(4 + 20 * as.size());
  w.put_u16(static_cast<std::uint16_t>(as.size()));
  for (const assignment& a : as) {
    w.put_u32(a.sender);
    w.put_u64(a.app_seq);
    w.put_u64(a.global_seq);
  }
  return w.take();
}

std::vector<assignment> decode_assignments(const util::shared_bytes& raw) {
  util::buffer_reader r(raw);
  const std::uint16_t n = r.get_u16();
  std::vector<assignment> out;
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    assignment a;
    a.sender = r.get_u32();
    a.app_seq = r.get_u64();
    a.global_seq = r.get_u64();
    out.push_back(a);
  }
  return out;
}

util::shared_bytes encode_assignment_batch(const assignment_batch& b) {
  util::buffer_writer w(10 + 12 * b.keys.size());
  w.put_u64(b.base);
  w.put_u16(static_cast<std::uint16_t>(b.keys.size()));
  for (const auto& [sender, app_seq] : b.keys) {
    w.put_u32(sender);
    w.put_u64(app_seq);
  }
  return w.take();
}

assignment_batch decode_assignment_batch(const util::shared_bytes& raw) {
  util::buffer_reader r(raw);
  assignment_batch b;
  b.base = r.get_u64();
  const std::uint16_t n = r.get_u16();
  b.keys.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    const node_id sender = r.get_u32();
    const std::uint64_t app_seq = r.get_u64();
    b.keys.emplace_back(sender, app_seq);
  }
  return b;
}

ordering::ordering(csrt::env& env, const group_config& cfg)
    : env_(env), cfg_(cfg) {}

ordering::~ordering() = default;

void ordering::start_at(std::uint64_t next) {
  DBSM_CHECK(complete_.empty() && order_.empty() && assigned_.empty());
  DBSM_CHECK(next >= 1);
  next_deliver_ = next;
  next_assign_ = next;
}

void ordering::quiesce() { quiesced_ = true; }

void ordering::halt_delivery() { halted_ = true; }

void ordering::on_token(const token_msg&) {}

void ordering::on_user_msg(node_id sender, std::uint64_t app_seq,
                           util::shared_bytes payload,
                           std::uint64_t last_dgram) {
  const msg_key key{sender, app_seq};
  complete_.emplace(key, pending_msg{std::move(payload), last_dgram});
  if (!quiesced_) on_complete(sender, app_seq);
  try_deliver();
}

void ordering::on_assignments(const util::shared_bytes& batch) {
  for (const assignment& a : decode_assignments(batch)) {
    const msg_key key{a.sender, a.app_seq};
    order_.emplace(a.global_seq, key);
    assigned_.insert(key);
    if (a.global_seq >= next_assign_) next_assign_ = a.global_seq + 1;
  }
  try_deliver();
}

void ordering::on_assignment_batch(const util::shared_bytes& raw) {
  const assignment_batch b = decode_assignment_batch(raw);
  std::uint64_t seq = b.base;
  for (const auto& [sender, app_seq] : b.keys) {
    const msg_key key{sender, app_seq};
    order_.emplace(seq, key);
    assigned_.insert(key);
    ++seq;
  }
  if (seq > next_assign_) next_assign_ = seq;
  try_deliver();
}

void ordering::try_deliver() {
  if (halted_) return;
  if (deliver_run_) {
    // Batch mode: hand the whole contiguous deliverable run out in one
    // callback. State transitions per payload are identical to the
    // per-payload loop below, so decisions downstream cannot depend on
    // where run boundaries fall (they differ per site with arrival
    // timing; only amortized CPU does).
    std::vector<delivery> run;
    auto it = order_.find(next_deliver_);
    while (it != order_.end()) {
      auto mit = complete_.find(it->second);
      if (mit == complete_.end()) break;  // payload not yet received
      const msg_key key = it->second;
      pending_msg msg = std::move(mit->second);
      complete_.erase(mit);
      order_.erase(it);
      assigned_.erase(key);
      run.push_back({key.first, next_deliver_++, std::move(msg.payload)});
      it = order_.find(next_deliver_);
    }
    if (!run.empty()) deliver_run_(std::move(run));
    return;
  }
  auto it = order_.find(next_deliver_);
  while (it != order_.end()) {
    auto mit = complete_.find(it->second);
    if (mit == complete_.end()) return;  // payload not yet received
    const msg_key key = it->second;
    pending_msg msg = std::move(mit->second);
    complete_.erase(mit);
    order_.erase(it);
    assigned_.erase(key);
    const std::uint64_t seq = next_deliver_++;
    if (deliver_) deliver_(key.first, seq, std::move(msg.payload));
    it = order_.find(next_deliver_);
  }
}

void ordering::install_view(const std::vector<node_id>& old_members,
                            const std::vector<std::uint64_t>& cut,
                            const std::vector<node_id>& new_members) {
  DBSM_CHECK(old_members.size() == cut.size());
  quiesced_ = false;  // the flush is over; ordering resumes in the new view
  // Roll back mint state that never reached the wire, so no survivor (this
  // node included) acted on it.
  rollback_unflushed();
  auto cut_of = [&](node_id n) -> std::uint64_t {
    const auto it = std::find(old_members.begin(), old_members.end(), n);
    if (it == old_members.end()) return 0;
    return cut[static_cast<std::size_t>(it - old_members.begin())];
  };
  auto survives = [&](node_id n) {
    return std::binary_search(new_members.begin(), new_members.end(), n);
  };

  // 1. Drop messages of failed senders beyond the cut (no survivor holds
  //    their remaining fragments).
  for (auto it = complete_.begin(); it != complete_.end();) {
    const node_id sender = it->first.first;
    if (!survives(sender) && it->second.last_dgram > cut_of(sender)) {
      assigned_.erase(it->first);
      it = complete_.erase(it);
    } else {
      ++it;
    }
  }

  // 2. Walk the assignment sequence; deliver what survives, skip orphaned
  //    assignments. Every survivor has the same state, so this is
  //    deterministic and identical group-wide.
  std::uint64_t last_assigned = next_assign_ - 1;
  for (auto it = order_.begin(); it != order_.end();) {
    auto mit = complete_.find(it->second);
    if (mit != complete_.end()) {
      pending_msg msg = std::move(mit->second);
      const msg_key key = it->second;
      complete_.erase(mit);
      assigned_.erase(key);
      last_assigned = std::max(last_assigned, it->first);
      it = order_.erase(it);
      const std::uint64_t seq = next_deliver_++;
      if (deliver_) deliver_(key.first, seq, std::move(msg.payload));
    } else {
      // Orphan: assigned by a crashed minter to a message nobody holds.
      last_assigned = std::max(last_assigned, it->first);
      assigned_.erase(it->second);
      it = order_.erase(it);
    }
  }

  // 3. Deliver remaining complete-but-unassigned messages within the cut
  //    in deterministic (sender, app_seq) order.
  for (auto it = complete_.begin(); it != complete_.end();) {
    if (it->second.last_dgram <= cut_of(it->first.first)) {
      const msg_key key = it->first;
      pending_msg msg = std::move(it->second);
      it = complete_.erase(it);
      const std::uint64_t seq = next_deliver_++;
      if (deliver_) deliver_(key.first, seq, std::move(msg.payload));
    } else {
      ++it;
    }
  }

  // Renumber: the new minter continues after everything delivered.
  next_assign_ = std::max(last_assigned + 1, next_deliver_);
  post_install(new_members);
}

std::unique_ptr<ordering> make_ordering(csrt::env& env,
                                        const group_config& cfg) {
  switch (cfg.ordering) {
    case ordering_kind::fixed_sequencer:
      return std::make_unique<total_order>(env, cfg);
    case ordering_kind::rotating_token:
      return std::make_unique<token_order>(env, cfg);
  }
  DBSM_CHECK_MSG(false, "unknown ordering kind");
  return nullptr;
}

}  // namespace dbsm::gcs
