// Total order via fixed sequencer (§3.4): "one of the sites issues
// sequence numbers for messages. Other sites buffer and deliver messages
// according to the sequence numbers. View synchrony ensures that a single
// sequencer site is easily chosen and replaced when it fails."
//
// The sequencer assigns a global sequence number to every complete
// application message it receives (its own included) and disseminates the
// assignments — batched — through its own reliable multicast stream, so
// ordering information is itself reliable and flow-controlled. This makes
// the sequencer multicast far more than anyone else, which is precisely the
// §5.3 bottleneck the paper diagnoses.
//
// This is the default implementation of the gcs::ordering seam
// (gcs/ordering.hpp); the leaderless alternative is gcs/token_order.hpp.
#ifndef DBSM_GCS_SEQUENCER_HPP
#define DBSM_GCS_SEQUENCER_HPP

#include <vector>

#include "gcs/ordering.hpp"

namespace dbsm::gcs {

class total_order : public ordering {
 public:
  total_order(csrt::env& env, const group_config& cfg);
  ~total_order() override;  // cancels the batch timer (mid-run teardown)

  /// The seam role update: the fixed sequencer's minting site is the view
  /// lead (its lowest-id member); the member list itself is irrelevant.
  void set_roles(const std::vector<node_id>& members, node_id lead) override;

  /// Updates the sequencer role (at start and at every view change). When
  /// this node is the sequencer it (re)assigns every complete-but-unordered
  /// message — including ones that arrived while ordering was quiesced for
  /// a view change. (Public for direct protocol unit tests; the group goes
  /// through set_roles().)
  void set_sequencer(node_id sequencer);

 protected:
  void on_complete(node_id sender, std::uint64_t app_seq) override;
  void rollback_unflushed() override;
  void post_install(const std::vector<node_id>& new_members) override;

 private:
  void flush_batch();
  void close_batch();
  void maybe_assign(node_id sender, std::uint64_t app_seq);
  bool batch_mode() const { return cfg_.batch_max > 1; }

  node_id sequencer_ = invalid_node;
  bool am_sequencer_ = false;

  std::vector<assignment> batch_;
  /// Batch mode: keys accumulated for the open batch. They are marked
  /// assigned (so the rescan cannot double-add them) but their global
  /// sequences are minted only when the batch closes.
  std::vector<msg_key> batch_keys_;
  csrt::timer_id batch_timer_ = 0;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_SEQUENCER_HPP
