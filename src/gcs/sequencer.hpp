// Total order via fixed sequencer (§3.4): "one of the sites issues
// sequence numbers for messages. Other sites buffer and deliver messages
// according to the sequence numbers. View synchrony ensures that a single
// sequencer site is easily chosen and replaced when it fails."
//
// The sequencer assigns a global sequence number to every complete
// application message it receives (its own included) and disseminates the
// assignments — batched — through its own reliable multicast stream, so
// ordering information is itself reliable and flow-controlled. This makes
// the sequencer multicast far more than anyone else, which is precisely the
// §5.3 bottleneck the paper diagnoses.
#ifndef DBSM_GCS_SEQUENCER_HPP
#define DBSM_GCS_SEQUENCER_HPP

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "csrt/env.hpp"
#include "gcs/config.hpp"
#include "util/byte_buffer.hpp"

namespace dbsm::gcs {

/// One total-order assignment: (sender, app_seq) -> global sequence.
struct assignment {
  node_id sender = 0;
  std::uint64_t app_seq = 0;
  std::uint64_t global_seq = 0;
};

util::shared_bytes encode_assignments(const std::vector<assignment>& as);
std::vector<assignment> decode_assignments(const util::shared_bytes& raw);

/// Batch assignment record (group_config::batch_max > 1): one base global
/// sequence plus the (sender, app_seq) keys it covers, in minting order —
/// key i gets global sequence base + i. 12 bytes per payload instead of 20,
/// and one wire record (and one handler charge) per batch.
struct assignment_batch {
  std::uint64_t base = 0;
  std::vector<std::pair<node_id, std::uint64_t>> keys;
};

util::shared_bytes encode_assignment_batch(const assignment_batch& b);
assignment_batch decode_assignment_batch(const util::shared_bytes& raw);

/// One totally ordered delivery, as handed to a batch (run) consumer.
struct delivery {
  node_id sender = 0;
  std::uint64_t global_seq = 0;
  util::shared_bytes payload;
};

class total_order {
 public:
  /// Final, totally ordered delivery to the application.
  using deliver_fn = std::function<void(node_id sender,
                                        std::uint64_t global_seq,
                                        util::shared_bytes payload)>;
  /// Contiguous run of totally ordered deliveries, handed out in one
  /// callback (set only in batch mode; try_deliver then batches instead of
  /// calling deliver_ per payload).
  using deliver_run_fn = std::function<void(std::vector<delivery>&&)>;
  /// Used by the sequencer to disseminate assignment batches (wired to the
  /// group facade, which wraps and reliably multicasts them).
  using send_assignments_fn =
      std::function<void(util::shared_bytes batch)>;

  total_order(csrt::env& env, const group_config& cfg);
  ~total_order();  // cancels the batch timer (safe mid-run teardown)

  total_order(const total_order&) = delete;
  total_order& operator=(const total_order&) = delete;

  /// Rebases a *fresh* instance so delivery and assignment continue at
  /// `next` (used when the stack is rebuilt at a view merge: the global
  /// sequence runs on across the merge while the streams restart).
  void start_at(std::uint64_t next);

  void set_deliver(deliver_fn fn) { deliver_ = std::move(fn); }
  /// Batch-mode delivery: contiguous runs go through `fn` in one call
  /// instead of per-payload deliver_ (which install_view backlog delivery
  /// still uses). Leave unset for the per-payload path.
  void set_deliver_run(deliver_run_fn fn) { deliver_run_ = std::move(fn); }
  void set_send_assignments(send_assignments_fn fn) {
    send_assignments_ = std::move(fn);
  }
  /// Dissemination of batch assignment records (batch mode only; the group
  /// wraps these under its own wire kind).
  void set_send_batch(send_assignments_fn fn) {
    send_batch_ = std::move(fn);
  }

  /// Updates the sequencer role (at start and at every view change). When
  /// this node is the sequencer it (re)assigns every complete-but-unordered
  /// message — including ones that arrived while ordering was quiesced for
  /// a view change.
  void set_sequencer(node_id sequencer);

  /// Stops assignment creation and batch dissemination until the next
  /// install_view(). Called when a view change reports its flush state:
  /// the agreed cut covers exactly what was broadcast before the report,
  /// so an assignment minted after it would self-deliver here (sends are
  /// stopped) yet never reach the other members before they install —
  /// delivering it in this view at one site only breaks view synchrony.
  /// Received traffic still buffers and within-cut delivery continues.
  void quiesce();

  /// Terminal delivery stop: this node learned it was excluded from the
  /// next view. View synchrony forbids delivering in a view one is not a
  /// member of, so the in-flight stream (which may keep arriving on an
  /// asymmetric or slow link) must not commit here any more. Only a stack
  /// rebuild (recovery rejoin) resumes delivery.
  void halt_delivery();

  /// Complete application message from the reliable layer (user payload).
  void on_user_msg(node_id sender, std::uint64_t app_seq,
                   util::shared_bytes payload, std::uint64_t last_dgram);

  /// Assignment batch from the reliable layer.
  void on_assignments(const util::shared_bytes& batch);

  /// Batch assignment record from the reliable layer (batch mode).
  void on_assignment_batch(const util::shared_bytes& raw);

  /// View change: removes state of failed senders beyond the cut and
  /// deterministically delivers what remains (identically at every
  /// survivor — they flushed to the same state):
  ///   1. assignments whose payload survives are delivered in order;
  ///   2. assignments whose payload is gone (assigned by a crashed
  ///      sequencer to a message nobody holds) are skipped;
  ///   3. complete unassigned messages within the cut are delivered in
  ///      (sender, app_seq) order.
  /// `cut` and `old_members` describe the flushed state.
  void install_view(const std::vector<node_id>& old_members,
                    const std::vector<std::uint64_t>& cut,
                    const std::vector<node_id>& new_members);

  std::uint64_t delivered() const { return next_deliver_ - 1; }
  std::size_t pending_unordered() const { return complete_.size(); }
  std::size_t pending_assignments() const { return order_.size(); }

 private:
  using msg_key = std::pair<node_id, std::uint64_t>;

  struct pending_msg {
    util::shared_bytes payload;
    std::uint64_t last_dgram = 0;
  };

  void try_deliver();
  void flush_batch();
  void close_batch();
  void maybe_assign(node_id sender, std::uint64_t app_seq);
  bool batch_mode() const { return cfg_.batch_max > 1; }

  csrt::env& env_;
  const group_config cfg_;
  deliver_fn deliver_;
  deliver_run_fn deliver_run_;
  send_assignments_fn send_assignments_;
  send_assignments_fn send_batch_;

  node_id sequencer_ = invalid_node;
  bool am_sequencer_ = false;
  bool quiesced_ = false;  // view change in progress: no new assignments
  bool halted_ = false;    // excluded from the group: no more delivery

  std::map<msg_key, pending_msg> complete_;       // received, not delivered
  std::map<std::uint64_t, msg_key> order_;        // global -> key
  std::set<msg_key> assigned_;                    // keys with an order
  std::uint64_t next_deliver_ = 1;
  std::uint64_t next_assign_ = 1;

  std::vector<assignment> batch_;
  /// Batch mode: keys accumulated for the open batch. They are marked
  /// assigned (so the rescan cannot double-add them) but their global
  /// sequences are minted only when the batch closes.
  std::vector<msg_key> batch_keys_;
  csrt::timer_id batch_timer_ = 0;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_SEQUENCER_HPP
