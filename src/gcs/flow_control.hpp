// Flow control (§3.4): "a combination of a rate-based mechanism during the
// first phase and the window-based mechanism during the second phase".
//
//   * token_bucket  — rate-based pacing of datagram transmission;
//   * buffer_quota  — each sender's share of the group's total buffer for
//     unstable messages; a full share blocks further transmission until
//     stability detection garbage-collects (§5.3's blocking mechanism).
#ifndef DBSM_GCS_FLOW_CONTROL_HPP
#define DBSM_GCS_FLOW_CONTROL_HPP

#include <cstddef>

#include "util/check.hpp"
#include "util/types.hpp"

namespace dbsm::gcs {

class token_bucket {
 public:
  token_bucket(double rate_bytes_per_s, std::size_t burst_bytes)
      : rate_(rate_bytes_per_s), burst_(static_cast<double>(burst_bytes)),
        tokens_(static_cast<double>(burst_bytes)) {
    DBSM_CHECK(rate_bytes_per_s > 0);
    DBSM_CHECK(burst_bytes > 0);
  }

  /// Consumes `bytes` if available now; returns success.
  bool try_consume(sim_time now, std::size_t bytes) {
    refill(now);
    if (tokens_ >= static_cast<double>(bytes)) {
      tokens_ -= static_cast<double>(bytes);
      return true;
    }
    return false;
  }

  /// Time until `bytes` tokens will be available (0 if available now).
  sim_duration wait_time(sim_time now, std::size_t bytes) {
    refill(now);
    const double deficit = static_cast<double>(bytes) - tokens_;
    if (deficit <= 0) return 0;
    return static_cast<sim_duration>(deficit / rate_ * 1e9) + 1;
  }

 private:
  void refill(sim_time now) {
    if (now <= last_) return;
    tokens_ += rate_ * to_seconds(now - last_);
    if (tokens_ > burst_) tokens_ = burst_;
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  sim_time last_ = 0;
};

class buffer_quota {
 public:
  buffer_quota(std::size_t share_msgs, std::size_t share_bytes)
      : share_msgs_(share_msgs), share_bytes_(share_bytes) {
    DBSM_CHECK(share_msgs > 0);
    DBSM_CHECK(share_bytes > 0);
  }

  bool fits(std::size_t bytes) const {
    return used_msgs_ + 1 <= share_msgs_ &&
           used_bytes_ + bytes <= share_bytes_;
  }
  void add(std::size_t bytes) {
    ++used_msgs_;
    used_bytes_ += bytes;
  }
  void remove(std::size_t bytes) {
    DBSM_CHECK_MSG(used_msgs_ >= 1 && used_bytes_ >= bytes,
                   "quota underflow");
    --used_msgs_;
    used_bytes_ -= bytes;
  }
  std::size_t used() const { return used_bytes_; }
  std::size_t used_msgs() const { return used_msgs_; }
  std::size_t share_msgs() const { return share_msgs_; }
  std::size_t share_bytes() const { return share_bytes_; }

 private:
  std::size_t share_msgs_;
  std::size_t share_bytes_;
  std::size_t used_msgs_ = 0;
  std::size_t used_bytes_ = 0;
};

}  // namespace dbsm::gcs

#endif  // DBSM_GCS_FLOW_CONTROL_HPP
