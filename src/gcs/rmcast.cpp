#include "gcs/rmcast.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dbsm::gcs {

reliable_mcast::reliable_mcast(csrt::env& env, group_config cfg,
                               std::vector<node_id> members)
    : env_(env), cfg_(std::move(cfg)), members_(std::move(members)),
      bucket_(cfg_.send_rate_bytes_per_s, cfg_.send_burst_bytes),
      quota_(std::max<std::size_t>(
                 1, cfg_.total_buffer_msgs /
                        std::max<std::size_t>(1, members_.size())),
             std::max<std::size_t>(
                 1, cfg_.total_buffer_bytes /
                        std::max<std::size_t>(1, members_.size()))) {
  DBSM_CHECK(std::is_sorted(members_.begin(), members_.end()));
  for (node_id m : members_)
    if (m != env_.self()) senders_.emplace(m, sender_state{});
}

reliable_mcast::~reliable_mcast() {
  // The stack can be torn down mid-run (site restart, view-merge rebuild):
  // every armed timer holds a callback into this object and must die first.
  if (rate_timer_ != 0) env_.cancel_timer(rate_timer_);
  if (flush_timer_ != 0) env_.cancel_timer(flush_timer_);
  for (auto& [sender, st] : senders_)
    if (st.nak_timer != 0) env_.cancel_timer(st.nak_timer);
}

void reliable_mcast::note_sender_high(node_id sender, std::uint64_t high) {
  auto sit = senders_.find(sender);
  if (sit == senders_.end()) return;
  sender_state& st = sit->second;
  if (high <= st.max_seen) return;
  st.max_seen = high;
  if (st.prefix < st.max_seen) arm_nak(sender, st);
}

std::vector<util::shared_bytes> reliable_mcast::unflushed_app_msgs(
    std::uint64_t cut_self) const {
  std::vector<util::shared_bytes> out;
  for (const auto& [app_seq, entry] : pending_app_)
    if (entry.second > cut_self) out.push_back(entry.first);
  return out;
}

std::size_t reliable_mcast::member_index(node_id n) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), n);
  DBSM_CHECK_MSG(it != members_.end() && *it == n, "unknown member " << n);
  return static_cast<std::size_t>(it - members_.begin());
}

void reliable_mcast::broadcast(util::shared_bytes payload) {
  DBSM_CHECK(payload != nullptr);
  const std::size_t frag = cfg_.max_fragment;
  const std::size_t count =
      payload->empty() ? 1 : (payload->size() + frag - 1) / frag;
  DBSM_CHECK_MSG(count <= 0xffff, "app message too large");

  const std::uint64_t app_seq = ++my_app_seq_;
  for (std::size_t i = 0; i < count; ++i) {
    data_msg m;
    m.hdr = {msg_type::data, view_id_, env_.self()};
    m.dgram_seq = ++my_dgram_seq_;
    m.app_seq = app_seq;
    m.frag_idx = static_cast<std::uint16_t>(i);
    m.frag_cnt = static_cast<std::uint16_t>(count);
    const std::size_t lo = i * frag;
    const std::size_t hi = std::min(payload->size(), lo + frag);
    m.payload = std::make_shared<const util::bytes>(payload->begin() + lo,
                                                    payload->begin() + hi);
    out_entry entry;
    entry.raw = encode(m);
    send_buffer_.emplace(m.dgram_seq, std::move(entry));
    tx_queue_.push_back(m.dgram_seq);
  }
  ++stats_.app_msgs_sent;
  pending_app_.emplace(app_seq, std::make_pair(payload, my_dgram_seq_));
  // Local copy delivered immediately (the transport does not loop back).
  ++stats_.app_msgs_delivered;
  if (app_handler_)
    app_handler_(env_.self(), app_seq, std::move(payload), my_dgram_seq_);
  pump_tx();
}

void reliable_mcast::pump_tx() {
  while (sending_allowed_ && !tx_queue_.empty()) {
    const std::uint64_t seq = tx_queue_.front();
    auto it = send_buffer_.find(seq);
    if (it == send_buffer_.end() || it->second.sent) {
      // Already stable (single-member group) or force-sent during a flush.
      tx_queue_.pop_front();
      continue;
    }
    const std::size_t bytes = it->second.raw->size();
    if (!quota_.fits(bytes)) {
      // Window flow control: the share of the group buffer is exhausted;
      // block until stability detection garbage-collects (§5.3).
      if (!blocked_) {
        blocked_ = true;
        blocked_since_ = env_.now();
        ++stats_.blocked_episodes;
      }
      return;
    }
    if (!bucket_.try_consume(env_.now(), bytes)) {
      // Rate-based flow control: try again when tokens accumulate.
      if (rate_timer_ == 0) {
        const sim_duration wait = bucket_.wait_time(env_.now(), bytes);
        rate_timer_ = env_.set_timer(wait, [this] {
          rate_timer_ = 0;
          pump_tx();
          pump_retx();
        });
      }
      return;
    }
    if (blocked_) {
      blocked_ = false;
      stats_.blocked_time += env_.now() - blocked_since_;
    }
    quota_.add(bytes);
    it->second.sent = true;
    tx_queue_.pop_front();
    ++stats_.dgrams_sent;
    env_.multicast(it->second.raw);
  }
  if (blocked_ && tx_queue_.empty()) {
    blocked_ = false;
    stats_.blocked_time += env_.now() - blocked_since_;
  }
}

void reliable_mcast::pump_retx() {
  while (!retx_queue_.empty()) {
    const auto& [dest, raw] = retx_queue_.front();
    if (!bucket_.try_consume(env_.now(), raw->size())) {
      if (rate_timer_ == 0) {
        const sim_duration wait = bucket_.wait_time(env_.now(), raw->size());
        rate_timer_ = env_.set_timer(wait, [this] {
          rate_timer_ = 0;
          pump_retx();
          pump_tx();
        });
      }
      return;
    }
    ++stats_.retransmissions;
    env_.send(dest, raw);
    retx_queue_.pop_front();
  }
}

void reliable_mcast::on_data(const data_msg& m, const util::shared_bytes& raw) {
  const node_id sender = m.hdr.sender;
  if (sender == env_.self()) return;  // own datagram echoed back
  if (m.hdr.view_id < min_accept_view_) return;  // pre-merge epoch
  auto sit = senders_.find(sender);
  if (sit == senders_.end()) return;  // not (or no longer) a member
  sender_state& st = sit->second;

  if (m.dgram_seq <= st.prefix || st.ooo.count(m.dgram_seq)) {
    ++stats_.duplicates;
    return;
  }
  st.retention.emplace(m.dgram_seq, raw);
  st.ooo.emplace(m.dgram_seq, m);
  st.max_seen = std::max(st.max_seen, m.dgram_seq);
  advance_prefix(sender, st);

  if (st.prefix < st.max_seen) {
    arm_nak(sender, st);
  } else if (st.nak_timer != 0) {
    env_.cancel_timer(st.nak_timer);
    st.nak_timer = 0;
    st.nak_interval = 0;
  }
  if (flushing_) check_flush_done();
}

void reliable_mcast::advance_prefix(node_id sender, sender_state& st) {
  auto next = st.ooo.find(st.prefix + 1);
  while (next != st.ooo.end()) {
    data_msg m = std::move(next->second);
    st.ooo.erase(next);
    ++st.prefix;
    deliver_fragment(sender, st, m);
    next = st.ooo.find(st.prefix + 1);
  }
}

void reliable_mcast::deliver_fragment(node_id sender, sender_state& st,
                                      const data_msg& m) {
  if (m.frag_cnt == 1) {
    DBSM_CHECK(st.partial.empty());
    ++stats_.app_msgs_delivered;
    if (app_handler_) app_handler_(sender, m.app_seq, m.payload, m.dgram_seq);
    return;
  }
  if (m.frag_idx == 0) {
    DBSM_CHECK_MSG(st.partial.empty(),
                   "fragment interleaving from sender " << sender);
    st.partial_app_seq = m.app_seq;
  } else {
    DBSM_CHECK(st.partial_app_seq == m.app_seq);
    DBSM_CHECK(st.partial.size() == m.frag_idx);
  }
  st.partial.push_back(m.payload);
  if (st.partial.size() == m.frag_cnt) {
    std::size_t total = 0;
    for (const auto& p : st.partial) total += p->size();
    auto whole = std::make_shared<util::bytes>();
    whole->reserve(total);
    for (const auto& p : st.partial)
      whole->insert(whole->end(), p->begin(), p->end());
    st.partial.clear();
    ++stats_.app_msgs_delivered;
    if (app_handler_) app_handler_(sender, m.app_seq, whole, m.dgram_seq);
  }
}

void reliable_mcast::arm_nak(node_id sender, sender_state& st) {
  if (st.nak_timer != 0) return;  // already pending
  if (st.nak_interval == 0) st.nak_interval = cfg_.nak_delay;
  st.nak_timer = env_.set_timer(st.nak_interval,
                                [this, sender] { nak_fire(sender); });
}

void reliable_mcast::nak_fire(node_id sender) {
  auto sit = senders_.find(sender);
  if (sit == senders_.end()) return;
  sender_state& st = sit->second;
  st.nak_timer = 0;
  if (st.prefix >= st.max_seen) {
    st.nak_interval = 0;
    return;  // gap closed meanwhile
  }
  nak_msg nak;
  nak.hdr = {msg_type::nak, view_id_, env_.self()};
  nak.target_sender = sender;
  for (std::uint64_t s = st.prefix + 1;
       s <= st.max_seen && nak.missing.size() < cfg_.nak_batch; ++s) {
    if (!st.ooo.count(s)) nak.missing.push_back(s);
  }
  if (!nak.missing.empty()) {
    ++stats_.naks_sent;
    env_.send(sender, encode(nak));
  }
  // Exponential backoff while the gap persists.
  st.nak_interval = std::min(st.nak_interval * 2, cfg_.nak_backoff_max);
  st.nak_timer = env_.set_timer(st.nak_interval,
                                [this, sender] { nak_fire(sender); });
}

void reliable_mcast::on_nak(const nak_msg& m) {
  const node_id requester = m.hdr.sender;
  if (m.hdr.view_id < min_accept_view_) return;  // pre-merge epoch
  if (m.target_sender == env_.self()) {
    for (std::uint64_t seq : m.missing) {
      auto it = send_buffer_.find(seq);
      if (it == send_buffer_.end()) continue;
      if (!it->second.sent) {
        // View-change flush can legitimately request datagrams still queued
        // behind flow control (the cut covers everything assigned): force
        // them out, accounting the quota so garbage collection balances.
        it->second.sent = true;
        quota_.add(it->second.raw->size());
      }
      retx_queue_.emplace_back(requester, it->second.raw);
    }
  } else {
    // Flush-time forwarding: serve another sender's datagrams from the
    // retention buffer.
    auto sit = senders_.find(m.target_sender);
    if (sit == senders_.end()) return;
    for (std::uint64_t seq : m.missing) {
      auto it = sit->second.retention.find(seq);
      if (it == sit->second.retention.end()) continue;
      retx_queue_.emplace_back(requester, it->second);
    }
  }
  pump_retx();
}

std::vector<std::uint64_t> reliable_mcast::prefixes() const {
  std::vector<std::uint64_t> out(members_.size(), 0);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const node_id m = members_[i];
    if (m == env_.self()) {
      out[i] = my_dgram_seq_;
    } else {
      auto it = senders_.find(m);
      out[i] = it == senders_.end() ? 0 : it->second.prefix;
    }
  }
  return out;
}

void reliable_mcast::collect_garbage(
    const std::vector<std::uint64_t>& stable) {
  DBSM_CHECK(stable.size() == members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const node_id m = members_[i];
    if (m == env_.self()) {
      auto it = send_buffer_.begin();
      while (it != send_buffer_.end() && it->first <= stable[i]) {
        if (it->second.sent) quota_.remove(it->second.raw->size());
        it = send_buffer_.erase(it);
      }
      auto pit = pending_app_.begin();
      while (pit != pending_app_.end() && pit->second.second <= stable[i])
        pit = pending_app_.erase(pit);
    } else {
      auto sit = senders_.find(m);
      if (sit == senders_.end()) continue;
      auto& retention = sit->second.retention;
      auto it = retention.begin();
      while (it != retention.end() && it->first <= stable[i])
        it = retention.erase(it);
    }
  }
  pump_tx();  // freed quota may unblock transmission
}

void reliable_mcast::stop_sending() { sending_allowed_ = false; }

void reliable_mcast::resume_sending() {
  sending_allowed_ = true;
  pump_tx();
}

void reliable_mcast::ensure_up_to(std::vector<std::uint64_t> cut,
                                  std::vector<node_id> sources,
                                  std::function<void()> done) {
  DBSM_CHECK(cut.size() == members_.size());
  flushing_ = true;
  flush_cut_ = std::move(cut);
  flush_sources_ = std::move(sources);
  flush_old_members_ = members_;
  flush_done_ = std::move(done);
  flush_fire();
}

void reliable_mcast::cancel_flush() {
  flushing_ = false;
  flush_done_ = nullptr;
  if (flush_timer_ != 0) {
    env_.cancel_timer(flush_timer_);
    flush_timer_ = 0;
  }
}

void reliable_mcast::flush_fire() {
  if (!flushing_) return;
  check_flush_done();
  if (!flushing_) return;
  // Request everything still missing below the cut from the agreed source.
  for (std::size_t i = 0; i < flush_old_members_.size(); ++i) {
    const node_id m = flush_old_members_[i];
    if (m == env_.self()) continue;
    auto sit = senders_.find(m);
    if (sit == senders_.end()) continue;
    sender_state& st = sit->second;
    if (st.prefix >= flush_cut_[i]) continue;
    nak_msg nak;
    nak.hdr = {msg_type::nak, view_id_, env_.self()};
    nak.target_sender = m;
    for (std::uint64_t s = st.prefix + 1;
         s <= flush_cut_[i] && nak.missing.size() < cfg_.nak_batch; ++s) {
      if (!st.ooo.count(s)) nak.missing.push_back(s);
    }
    if (!nak.missing.empty()) {
      ++stats_.naks_sent;
      const node_id source =
          flush_sources_[i] == env_.self() ? m : flush_sources_[i];
      env_.send(source, encode(nak));
    }
  }
  if (flush_timer_ != 0) env_.cancel_timer(flush_timer_);
  flush_timer_ =
      env_.set_timer(cfg_.nak_delay * 4, [this] { flush_fire(); });
}

void reliable_mcast::check_flush_done() {
  if (!flushing_) return;
  for (std::size_t i = 0; i < flush_old_members_.size(); ++i) {
    const node_id m = flush_old_members_[i];
    if (m == env_.self()) continue;
    auto sit = senders_.find(m);
    if (sit == senders_.end()) continue;
    if (sit->second.prefix < flush_cut_[i]) return;
  }
  flushing_ = false;
  if (flush_timer_ != 0) {
    env_.cancel_timer(flush_timer_);
    flush_timer_ = 0;
  }
  auto done = std::move(flush_done_);
  flush_done_ = nullptr;
  if (done) done();
}

void reliable_mcast::install_view(const std::vector<node_id>& new_members) {
  DBSM_CHECK(std::is_sorted(new_members.begin(), new_members.end()));
  // Drop state of removed senders; everything up to the cut was processed
  // during the flush, and nothing beyond the cut may survive.
  for (auto it = senders_.begin(); it != senders_.end();) {
    if (std::binary_search(new_members.begin(), new_members.end(),
                           it->first)) {
      ++it;
      continue;
    }
    sender_state& st = it->second;
    if (st.nak_timer != 0) env_.cancel_timer(st.nak_timer);
    it = senders_.erase(it);
  }
  members_ = new_members;
}

}  // namespace dbsm::gcs
